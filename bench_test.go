package ulppip

// One testing.B benchmark per table and figure of the paper's §VI, plus
// the §VII ablations. The simulation is deterministic and the metric of
// interest is *virtual* time, so each benchmark runs the full experiment
// per iteration and reports the paper-relevant quantities as custom
// metrics (virtual nanoseconds, slowdown ratios, overlap percentages).
// Iterations are dominated by simulation work, so `go test -bench=.`
// typically executes each experiment once.

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/bench"
)

func init() {
	bench.Runs = 1 // deterministic: repeats cannot change the minimum
}

// BenchmarkTable3_Primitives regenerates Table III (context switch and
// TLS-load times) on both machines.
func BenchmarkTable3_Primitives(b *testing.B) {
	for _, m := range arch.Machines() {
		m := m
		b.Run(m.Name, func(b *testing.B) {
			var r bench.Table3Result
			var err error
			for i := 0; i < b.N; i++ {
				r, err = bench.Table3(m)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.CtxSwitch.Time.Nanoseconds(), "ctxsw-virt-ns")
			b.ReportMetric(r.LoadTLS.Time.Nanoseconds(), "tlsload-virt-ns")
		})
	}
}

// BenchmarkTable4_Yield regenerates Table IV (ULP yield vs sched_yield).
func BenchmarkTable4_Yield(b *testing.B) {
	for _, m := range arch.Machines() {
		m := m
		b.Run(m.Name, func(b *testing.B) {
			var r bench.Table4Result
			var err error
			for i := 0; i < b.N; i++ {
				r, err = bench.Table4(m)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.ULPYield.Time.Nanoseconds(), "ulp-yield-virt-ns")
			b.ReportMetric(r.SchedYield1Core.Time.Nanoseconds(), "yield-1core-virt-ns")
			b.ReportMetric(r.SchedYield2Core.Time.Nanoseconds(), "yield-2core-virt-ns")
		})
	}
}

// BenchmarkTable5_Getpid regenerates Table V (getpid under
// couple/decouple with both idle policies).
func BenchmarkTable5_Getpid(b *testing.B) {
	for _, m := range arch.Machines() {
		m := m
		b.Run(m.Name, func(b *testing.B) {
			var r bench.Table5Result
			var err error
			for i := 0; i < b.N; i++ {
				r, err = bench.Table5(m)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.Linux.Time.Nanoseconds(), "linux-virt-ns")
			b.ReportMetric(r.BusyWait.Time.Nanoseconds(), "busywait-virt-ns")
			b.ReportMetric(r.Blocking.Time.Nanoseconds(), "blocking-virt-ns")
		})
	}
}

// BenchmarkFig7_Slowdown regenerates Figure 7 (open-write-close slowdown
// vs AIO over write sizes). The reported metrics are the smallest-size
// slowdowns — the regime where mechanism overhead dominates.
func BenchmarkFig7_Slowdown(b *testing.B) {
	for _, m := range arch.Machines() {
		m := m
		b.Run(m.Name, func(b *testing.B) {
			var r bench.Fig7Result
			var err error
			for i := 0; i < b.N; i++ {
				r, err = bench.Fig7(m)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.Slowdown("ULP-BUSYWAIT")[0], "ulp-busywait-slowdown-min")
			b.ReportMetric(r.Slowdown("ULP-BLOCKING")[0], "ulp-blocking-slowdown-min")
			b.ReportMetric(r.Slowdown("AIO-return")[0], "aio-return-slowdown-min")
			b.ReportMetric(r.Slowdown("AIO-suspend")[0], "aio-suspend-slowdown-min")
		})
	}
}

// BenchmarkFig8_Overlap regenerates Figure 8 (IMB overlap ratios). The
// reported metrics are the per-mechanism overlap at the smallest write
// size (the paper's floor claims: ULP >70%/80%, AIO <70%).
func BenchmarkFig8_Overlap(b *testing.B) {
	for _, m := range arch.Machines() {
		m := m
		b.Run(m.Name, func(b *testing.B) {
			var r bench.Fig8Result
			var err error
			for i := 0; i < b.N; i++ {
				r, err = bench.Fig8(m)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.Overlap["ULP-BUSYWAIT"][0], "ulp-busywait-overlap-%")
			b.ReportMetric(r.Overlap["ULP-BLOCKING"][0], "ulp-blocking-overlap-%")
			b.ReportMetric(r.Overlap["AIO-return"][0], "aio-return-overlap-%")
			b.ReportMetric(r.Overlap["AIO-suspend"][0], "aio-suspend-overlap-%")
		})
	}
}

// BenchmarkAblateIdlePolicy quantifies the §VII latency/power trade-off
// between BUSYWAIT and BLOCKING.
func BenchmarkAblateIdlePolicy(b *testing.B) {
	for _, m := range arch.Machines() {
		m := m
		b.Run(m.Name, func(b *testing.B) {
			var r []bench.IdleAblationResult
			var err error
			for i := 0; i < b.N; i++ {
				r, err = bench.AblateIdlePolicy(m)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r[0].GetpidLatency.Nanoseconds(), "busywait-latency-virt-ns")
			b.ReportMetric(r[1].GetpidLatency.Nanoseconds(), "blocking-latency-virt-ns")
			b.ReportMetric(r[0].SpunKC.Microseconds(), "busywait-kc-spun-virt-us")
		})
	}
}

// BenchmarkAblateTLS isolates the TLS-switch share of the ULP yield.
func BenchmarkAblateTLS(b *testing.B) {
	for _, m := range arch.Machines() {
		m := m
		b.Run(m.Name, func(b *testing.B) {
			var r bench.TLSAblationResult
			var err error
			for i := 0; i < b.N; i++ {
				r, err = bench.AblateTLS(m)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.WithTLS.Nanoseconds(), "ulp-yield-virt-ns")
			b.ReportMetric(r.NoTLS.Nanoseconds(), "ult-yield-virt-ns")
		})
	}
}

// BenchmarkFig6Scenario sweeps the Fig. 6 deployment (dedicated syscall
// cores, over-subscription) and reports the best throughput found.
func BenchmarkFig6Scenario(b *testing.B) {
	for _, m := range arch.Machines() {
		m := m
		b.Run(m.Name, func(b *testing.B) {
			var pts []bench.Fig6Point
			var err error
			for i := 0; i < b.N; i++ {
				pts, err = bench.Fig6Scenario(m, []int{1, 2}, []int{0, 3})
				if err != nil {
					b.Fatal(err)
				}
			}
			best := 0.0
			for _, p := range pts {
				if p.Throughput > best {
					best = p.Throughput
				}
			}
			b.ReportMetric(best, "best-ops/virt-ms")
		})
	}
}

// BenchmarkMPIOversubscription reports per-rank efficiency of the
// §III-motivated MPI-over-ULP deployment at 8x oversubscription.
func BenchmarkMPIOversubscription(b *testing.B) {
	for _, m := range arch.Machines() {
		m := m
		b.Run(m.Name, func(b *testing.B) {
			var pts []bench.MPIPoint
			var err error
			for i := 0; i < b.N; i++ {
				pts, err = bench.MPIOversubscription(m, []int{2, 16})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pts[len(pts)-1].Efficiency, "efficiency-at-8x")
		})
	}
}

// BenchmarkHugePages reports the fault reduction of 2 MiB pages for a
// 32 MiB first touch (§VII).
func BenchmarkHugePages(b *testing.B) {
	for _, m := range arch.Machines() {
		m := m
		b.Run(m.Name, func(b *testing.B) {
			var r []bench.HugePageResult
			var err error
			for i := 0; i < b.N; i++ {
				r, err = bench.HugePages(m)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r[0].Faults), "4k-faults")
			b.ReportMetric(float64(r[1].Faults), "huge-faults")
			b.ReportMetric(r[0].TouchTime.Microseconds(), "4k-touch-virt-us")
			b.ReportMetric(r[1].TouchTime.Microseconds(), "huge-touch-virt-us")
		})
	}
}
