package sim

import "fmt"

type procState int

const (
	procReady procState = iota // has a pending resume event
	procRunning
	procParked // waiting for an explicit Unpark
	procDead
)

func (s procState) String() string {
	switch s {
	case procReady:
		return "ready"
	case procRunning:
		return "running"
	case procParked:
		return "parked"
	case procDead:
		return "dead"
	}
	return "unknown"
}

type resumeMsg struct {
	kill bool
}

// Proc is a simulation coroutine. A proc's function runs on its own
// goroutine but only ever while it holds the engine baton, so procs never
// truly race: exactly one proc (or the engine loop) executes at a time.
//
// Procs model active entities with their own control flow — in this
// repository, simulated kernel tasks (kernel contexts). Passive entities
// (queues, files, page tables) are plain data mutated by whichever proc is
// running.
type Proc struct {
	id     uint64
	name   string
	engine *Engine
	state  procState
	resume chan resumeMsg

	// ev is the proc's intrusive resume event. A live proc has at most
	// one pending resume (ready XOR running XOR parked), so Spawn,
	// Advance and Unpark all reuse this storage — the scheduler hot
	// path allocates nothing.
	ev event

	// Intrusive WaitQ links: wq is the queue the proc is currently
	// parked on (nil when not queued), wqPrev/wqNext its FIFO
	// neighbours. See WaitQ.
	wq             *WaitQ
	wqPrev, wqNext *Proc

	// Stats.
	wakeups  uint64
	advanced Duration
}

// Name returns the proc's diagnostic name.
func (p *Proc) Name() string { return p.name }

// ID returns the proc's unique id.
func (p *Proc) ID() uint64 { return p.id }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.engine }

// String implements fmt.Stringer.
func (p *Proc) String() string { return fmt.Sprintf("%s#%d", p.name, p.id) }

// Advanced reports the total virtual time this proc has consumed via
// Advance — a busy-time counter used by the power-proxy ablation.
func (p *Proc) Advanced() Duration { return p.advanced }

// Wakeups reports how many times the proc has been resumed.
func (p *Proc) Wakeups() uint64 { return p.wakeups }

func (p *Proc) run(fn func(*Proc)) {
	// Wait for the first resume before running user code.
	msg := <-p.resume
	p.wakeups++
	if msg.kill {
		p.die()
		return
	}
	defer func() {
		if r := recover(); r != nil {
			if r == ErrKilled {
				p.die()
				return
			}
			if p.engine.trapPanics {
				// Record the failure, stop the simulation and die
				// cleanly; Run/RunUntil will surface the error.
				if p.engine.panicErr == nil {
					p.engine.panicErr = fmt.Errorf("sim: proc %s panicked: %v", p, r)
				}
				p.engine.stopped = true
				p.die()
				return
			}
			// Re-panicking from a goroutine would crash the process
			// without a useful trace through the engine; annotate.
			p.die()
			panic(fmt.Sprintf("sim: proc %s panicked: %v", p, r))
		}
	}()
	fn(p)
	p.state = procDead
	delete(p.engine.procs, p.id)
	if p.engine.tracer != nil {
		p.engine.trace("exit", "proc %s", p)
	}
	p.release()
}

func (p *Proc) die() {
	p.state = procDead
	delete(p.engine.procs, p.id)
	if p.engine.tracer != nil {
		p.engine.trace("kill", "proc %s", p)
	}
	p.release()
}

// release gives up the baton for good (proc exit): in direct mode the
// dying goroutine dispatches its successor itself, otherwise it wakes the
// engine loop.
func (p *Proc) release() {
	e := p.engine
	if e.direct {
		if e.dispatchNext(nil) == chainEnded {
			e.baton <- struct{}{}
		}
		return
	}
	e.baton <- struct{}{}
}

// yield releases the baton and blocks until resumed. Must only be called
// by the proc itself while running. In direct mode the yielding goroutine
// dispatches the next event itself: if that event is its own resume it
// returns immediately (zero goroutine switches); if it is another proc's
// resume the baton is handed over directly (one switch, not two).
func (p *Proc) yield() {
	e := p.engine
	if e.direct {
		switch e.dispatchNext(p) {
		case resumedSelf:
			p.wakeups++
			return
		case chainEnded:
			e.baton <- struct{}{}
		}
	} else {
		e.baton <- struct{}{}
	}
	msg := <-p.resume
	p.wakeups++
	if msg.kill {
		panic(ErrKilled)
	}
}

func (p *Proc) checkRunning(op string) {
	if p.engine.current != p || p.state != procRunning {
		panic(fmt.Sprintf("sim: %s called on proc %s which is not the running proc", op, p))
	}
}

// Advance consumes d of virtual time: the proc is suspended and resumes
// once the clock reaches now+d. Other procs with earlier events run in
// between — this is how virtual parallelism across simulated CPU cores
// arises from a sequential engine.
//
// Fast path: when the proc's own resume would be strictly the next event
// anyway (no other event is due at or before now+d, Stop has not been
// requested, and the active Run/RunUntil limit is not crossed), the
// engine would pop it back immediately — so the clock moves forward in
// place and the two goroutine handoffs (proc→engine, engine→proc) are
// skipped entirely. The execution order is identical to the slow path.
func (p *Proc) Advance(d Duration) {
	p.checkRunning("Advance")
	if d < 0 {
		panic("sim: negative Advance")
	}
	p.advanced += d
	e := p.engine
	at := e.now.Add(d)
	if !e.stopped && at <= e.limit {
		if next := e.peek(); next == nil || at < next.at {
			e.now = at
			p.wakeups++
			return
		}
	}
	p.state = procReady
	p.ev.at = at
	e.schedule(&p.ev)
	p.yield()
}

// Park suspends the proc indefinitely; it resumes only after another proc
// or a callback calls Unpark.
func (p *Proc) Park() {
	p.checkRunning("Park")
	p.state = procParked
	// Tracing is gated at the call site so the untraced hot path does
	// not pay for boxing the variadic arguments.
	if p.engine.tracer != nil {
		p.engine.trace("park", "proc %s", p)
	}
	p.yield()
}

// Unpark schedules a parked proc to resume after delay d. It is the
// low-level wakeup primitive; the kernel layer builds run queues and
// futexes on top of it. Calling Unpark on a proc that is not parked
// panics — higher layers are responsible for state machines that make
// wakeups race-free (the engine's determinism makes such races
// programming errors, not timing accidents).
func (p *Proc) Unpark(d Duration) {
	if p.state != procParked {
		panic(fmt.Sprintf("sim: Unpark of proc %s in state %v", p, p.state))
	}
	if d < 0 {
		d = 0
	}
	p.state = procReady
	e := p.engine
	if e.tracer != nil {
		e.trace("unpark", "proc %s (+%v)", p, d)
	}
	p.ev.at = e.now.Add(d)
	e.schedule(&p.ev)
}

// Parked reports whether the proc is currently parked.
func (p *Proc) Parked() bool { return p.state == procParked }

// Dead reports whether the proc has exited.
func (p *Proc) Dead() bool { return p.state == procDead }

// Exit terminates the proc immediately from within its own code.
func (p *Proc) Exit() {
	p.checkRunning("Exit")
	panic(ErrKilled)
}
