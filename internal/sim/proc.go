package sim

import "fmt"

type procState int

const (
	procReady procState = iota // has a pending resume event
	procRunning
	procParked // waiting for an explicit Unpark
	procDead
)

func (s procState) String() string {
	switch s {
	case procReady:
		return "ready"
	case procRunning:
		return "running"
	case procParked:
		return "parked"
	case procDead:
		return "dead"
	}
	return "unknown"
}

type resumeMsg struct {
	kill bool
}

// Proc is a simulation coroutine. A proc's function runs on its own
// goroutine but only ever while it holds the engine baton, so procs never
// truly race: exactly one proc (or the engine loop) executes at a time.
//
// Procs model active entities with their own control flow — in this
// repository, simulated kernel tasks (kernel contexts). Passive entities
// (queues, files, page tables) are plain data mutated by whichever proc is
// running.
type Proc struct {
	id     uint64
	name   string
	engine *Engine
	state  procState
	resume chan resumeMsg

	// Stats.
	wakeups  uint64
	advanced Duration
}

// Name returns the proc's diagnostic name.
func (p *Proc) Name() string { return p.name }

// ID returns the proc's unique id.
func (p *Proc) ID() uint64 { return p.id }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.engine }

// String implements fmt.Stringer.
func (p *Proc) String() string { return fmt.Sprintf("%s#%d", p.name, p.id) }

// Advanced reports the total virtual time this proc has consumed via
// Advance — a busy-time counter used by the power-proxy ablation.
func (p *Proc) Advanced() Duration { return p.advanced }

// Wakeups reports how many times the proc has been resumed.
func (p *Proc) Wakeups() uint64 { return p.wakeups }

func (p *Proc) run(fn func(*Proc)) {
	// Wait for the first resume before running user code.
	msg := <-p.resume
	p.wakeups++
	if msg.kill {
		p.die()
		return
	}
	defer func() {
		if r := recover(); r != nil {
			if r == ErrKilled {
				p.die()
				return
			}
			// Re-panicking from a goroutine would crash the process
			// without a useful trace through the engine; annotate.
			p.die()
			panic(fmt.Sprintf("sim: proc %s panicked: %v", p, r))
		}
	}()
	fn(p)
	p.state = procDead
	delete(p.engine.procs, p.id)
	p.engine.trace("exit", "proc %s", p)
	p.engine.baton <- struct{}{}
}

func (p *Proc) die() {
	p.state = procDead
	delete(p.engine.procs, p.id)
	p.engine.baton <- struct{}{}
}

// yield releases the baton and blocks until resumed. Must only be called
// by the proc itself while running.
func (p *Proc) yield() {
	p.engine.baton <- struct{}{}
	msg := <-p.resume
	p.wakeups++
	if msg.kill {
		panic(ErrKilled)
	}
}

func (p *Proc) checkRunning(op string) {
	if p.engine.current != p || p.state != procRunning {
		panic(fmt.Sprintf("sim: %s called on proc %s which is not the running proc", op, p))
	}
}

// Advance consumes d of virtual time: the proc is suspended and resumes
// once the clock reaches now+d. Other procs with earlier events run in
// between — this is how virtual parallelism across simulated CPU cores
// arises from a sequential engine.
func (p *Proc) Advance(d Duration) {
	p.checkRunning("Advance")
	if d < 0 {
		panic("sim: negative Advance")
	}
	p.advanced += d
	p.state = procReady
	p.engine.schedule(&event{at: p.engine.now.Add(d), proc: p})
	p.yield()
}

// Park suspends the proc indefinitely; it resumes only after another proc
// or a callback calls Unpark.
func (p *Proc) Park() {
	p.checkRunning("Park")
	p.state = procParked
	p.engine.trace("park", "proc %s", p)
	p.yield()
}

// Unpark schedules a parked proc to resume after delay d. It is the
// low-level wakeup primitive; the kernel layer builds run queues and
// futexes on top of it. Calling Unpark on a proc that is not parked
// panics — higher layers are responsible for state machines that make
// wakeups race-free (the engine's determinism makes such races
// programming errors, not timing accidents).
func (p *Proc) Unpark(d Duration) {
	if p.state != procParked {
		panic(fmt.Sprintf("sim: Unpark of proc %s in state %v", p, p.state))
	}
	if d < 0 {
		d = 0
	}
	p.state = procReady
	p.engine.trace("unpark", "proc %s (+%v)", p, d)
	p.engine.schedule(&event{at: p.engine.now.Add(d), proc: p})
}

// Parked reports whether the proc is currently parked.
func (p *Proc) Parked() bool { return p.state == procParked }

// Dead reports whether the proc has exited.
func (p *Proc) Dead() bool { return p.state == procDead }

// Exit terminates the proc immediately from within its own code.
func (p *Proc) Exit() {
	p.checkRunning("Exit")
	panic(ErrKilled)
}
