package sim

// WaitQ is a FIFO queue of parked procs — the building block for futexes,
// semaphores and condition variables in the simulated kernel. Wakeups are
// FIFO and deterministic.
//
// Like the engine's resume events, the queue is intrusive: the links are
// embedded in the procs themselves (Proc.wqPrev/wqNext), so push, pop and
// Remove are all O(1), waiting allocates nothing, and unlinking clears
// the proc's link fields so a departed waiter is never retained. A proc
// can wait on at most one queue at a time (Wait parks the caller), which
// is what makes the embedded links sound.
type WaitQ struct {
	head, tail *Proc
	n          int
}

// Len reports the number of waiting procs.
func (q *WaitQ) Len() int { return q.n }

// Wait parks the calling proc on the queue until woken.
func (q *WaitQ) Wait(p *Proc) {
	q.enqueue(p)
	p.Park()
}

// enqueue appends p, which must not currently be on any queue.
func (q *WaitQ) enqueue(p *Proc) {
	if p.wq != nil {
		panic("sim: proc " + p.name + " waiting on a WaitQ while on another")
	}
	p.wq = q
	p.wqPrev = q.tail
	if q.tail != nil {
		q.tail.wqNext = p
	} else {
		q.head = p
	}
	q.tail = p
	q.n++
}

// unlink removes p, which must be on q, clearing its link fields.
func (q *WaitQ) unlink(p *Proc) {
	if p.wqPrev != nil {
		p.wqPrev.wqNext = p.wqNext
	} else {
		q.head = p.wqNext
	}
	if p.wqNext != nil {
		p.wqNext.wqPrev = p.wqPrev
	} else {
		q.tail = p.wqPrev
	}
	p.wq, p.wqPrev, p.wqNext = nil, nil, nil
	q.n--
}

// WakeOne unparks the oldest waiter after delay d and reports whether a
// waiter existed.
func (q *WaitQ) WakeOne(d Duration) bool {
	p := q.head
	if p == nil {
		return false
	}
	q.unlink(p)
	p.Unpark(d)
	return true
}

// WakeN unparks up to n waiters after delay d and reports how many were
// woken.
func (q *WaitQ) WakeN(n int, d Duration) int {
	woken := 0
	for woken < n && q.WakeOne(d) {
		woken++
	}
	return woken
}

// WakeAll unparks every waiter after delay d and reports how many were
// woken.
func (q *WaitQ) WakeAll(d Duration) int {
	return q.WakeN(q.n, d)
}

// Remove deletes a specific proc from the queue without waking it (used
// for timeouts and signal interruption). Reports whether it was present.
func (q *WaitQ) Remove(p *Proc) bool {
	if p.wq != q {
		return false
	}
	q.unlink(p)
	return true
}
