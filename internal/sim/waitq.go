package sim

// WaitQ is a FIFO queue of parked procs — the building block for futexes,
// semaphores and condition variables in the simulated kernel. Wakeups are
// FIFO and deterministic.
type WaitQ struct {
	waiters []*Proc
}

// Len reports the number of waiting procs.
func (q *WaitQ) Len() int { return len(q.waiters) }

// Wait parks the calling proc on the queue until woken.
func (q *WaitQ) Wait(p *Proc) {
	q.waiters = append(q.waiters, p)
	p.Park()
}

// WakeOne unparks the oldest waiter after delay d and reports whether a
// waiter existed.
func (q *WaitQ) WakeOne(d Duration) bool {
	if len(q.waiters) == 0 {
		return false
	}
	p := q.waiters[0]
	copy(q.waiters, q.waiters[1:])
	q.waiters[len(q.waiters)-1] = nil
	q.waiters = q.waiters[:len(q.waiters)-1]
	p.Unpark(d)
	return true
}

// WakeN unparks up to n waiters after delay d and reports how many were
// woken.
func (q *WaitQ) WakeN(n int, d Duration) int {
	woken := 0
	for woken < n && q.WakeOne(d) {
		woken++
	}
	return woken
}

// WakeAll unparks every waiter after delay d and reports how many were
// woken.
func (q *WaitQ) WakeAll(d Duration) int {
	return q.WakeN(len(q.waiters), d)
}

// Remove deletes a specific proc from the queue without waking it (used
// for timeouts and signal interruption). Reports whether it was present.
func (q *WaitQ) Remove(p *Proc) bool {
	for i, w := range q.waiters {
		if w == p {
			// Shift and nil the vacated tail slot (like WakeOne) so the
			// backing array does not retain the removed proc.
			copy(q.waiters[i:], q.waiters[i+1:])
			q.waiters[len(q.waiters)-1] = nil
			q.waiters = q.waiters[:len(q.waiters)-1]
			return true
		}
	}
	return false
}
