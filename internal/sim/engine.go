package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrDeadlock is returned by Run when no events remain but parked procs
// still exist: the simulation can make no further progress.
var ErrDeadlock = errors.New("sim: deadlock, parked procs remain with empty event queue")

// ErrKilled is the panic value delivered to procs that are forcibly
// terminated by Engine.Shutdown while parked.
var ErrKilled = errors.New("sim: proc killed by engine shutdown")

// event is a scheduled occurrence: either the resumption of a parked proc
// or the invocation of a callback in engine context.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among equal timestamps
	proc *Proc  // proc to resume, or nil
	fn   func() // callback to run in engine context, or nil
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event simulator. It is not safe for
// concurrent use from multiple OS threads: all interaction must happen
// either from the goroutine that calls Run or from within procs (which the
// engine serializes).
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	procs   map[uint64]*Proc // live procs by id
	nextID  uint64
	current *Proc // proc currently holding the baton, nil when engine runs

	// baton is signaled by a proc when it parks or exits, returning
	// control to the engine loop.
	baton chan struct{}

	stopped bool
	tracer  *Tracer
}

// New creates an empty engine at virtual time zero.
func New() *Engine {
	return &Engine{
		procs: make(map[uint64]*Proc),
		baton: make(chan struct{}),
	}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// SetTracer installs a tracer that records engine events; nil disables
// tracing.
func (e *Engine) SetTracer(t *Tracer) { e.tracer = t }

// Tracer returns the installed tracer, or nil.
func (e *Engine) Tracer() *Tracer { return e.tracer }

func (e *Engine) trace(kind, format string, args ...interface{}) {
	if e.tracer != nil {
		e.tracer.add(e.now, kind, fmt.Sprintf(format, args...))
	}
}

// schedule enqueues an event at absolute time at.
func (e *Engine) schedule(ev *event) {
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.queue, ev)
}

// After runs fn in engine context after delay d. fn must not park; it is a
// plain callback, useful for timers and asynchronous wakeups.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.schedule(&event{at: e.now.Add(d), fn: fn})
}

// Spawn creates a new proc executing fn and schedules its first resumption
// at the current time. fn runs on its own goroutine but only while holding
// the engine baton.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAfter(name, 0, fn)
}

// SpawnAfter is Spawn with the first resumption delayed by d.
func (e *Engine) SpawnAfter(name string, d Duration, fn func(p *Proc)) *Proc {
	e.nextID++
	p := &Proc{
		id:     e.nextID,
		name:   name,
		engine: e,
		resume: make(chan resumeMsg),
	}
	e.procs[p.id] = p
	e.trace("spawn", "proc %s", p)
	go p.run(fn)
	p.state = procReady
	e.schedule(&event{at: e.now.Add(d), proc: p})
	return p
}

// step executes the next event. It reports false when the queue is empty.
func (e *Engine) step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	if ev.at < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: %v < %v", ev.at, e.now))
	}
	e.now = ev.at
	if ev.fn != nil {
		ev.fn()
		return true
	}
	p := ev.proc
	if p.state == procDead {
		return true // stale resume for an exited proc
	}
	if p.state != procReady {
		panic(fmt.Sprintf("sim: resuming proc %s in state %v", p, p.state))
	}
	e.runProc(p, resumeMsg{})
	return true
}

// runProc hands the baton to p and waits for it to park or exit.
func (e *Engine) runProc(p *Proc, msg resumeMsg) {
	prev := e.current
	e.current = p
	p.state = procRunning
	p.resume <- msg
	<-e.baton
	e.current = prev
}

// Run executes events until the queue drains, Stop is called, or a
// deadlock is detected (parked procs with no pending events).
func (e *Engine) Run() error {
	e.stopped = false
	for !e.stopped {
		if !e.step() {
			break
		}
	}
	if e.stopped {
		return nil
	}
	var parked []string
	for _, p := range e.procs {
		if p.state == procParked {
			parked = append(parked, p.String())
		}
	}
	if len(parked) > 0 {
		sort.Strings(parked)
		return fmt.Errorf("%w: %s", ErrDeadlock, strings.Join(parked, ", "))
	}
	return nil
}

// RunUntil executes events with timestamps <= t, then returns. The clock
// is left at min(t, time of last executed event); it does not jump to t if
// the queue drains earlier.
func (e *Engine) RunUntil(t Time) error {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 || e.queue[0].at > t {
			return nil
		}
		e.step()
	}
	return nil
}

// Stop makes Run return after the current event completes. Callable from
// procs and callbacks.
func (e *Engine) Stop() { e.stopped = true }

// Shutdown forcibly terminates all parked or ready procs by delivering an
// ErrKilled panic into them. Use in tests to reap goroutines from aborted
// simulations. Must not be called from inside a proc.
func (e *Engine) Shutdown() {
	for _, p := range e.procs {
		if p.state == procParked || p.state == procReady {
			e.runProc(p, resumeMsg{kill: true})
		}
	}
}

// LiveProcs reports the number of procs that have not exited.
func (e *Engine) LiveProcs() int { return len(e.procs) }

// PendingEvents reports the number of scheduled events.
func (e *Engine) PendingEvents() int { return len(e.queue) }

// Current returns the proc holding the baton, or nil when the engine
// itself (a callback) is running.
func (e *Engine) Current() *Proc { return e.current }
