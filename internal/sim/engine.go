package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// ErrDeadlock is returned by Run when no events remain but parked procs
// still exist: the simulation can make no further progress.
var ErrDeadlock = errors.New("sim: deadlock, parked procs remain with empty event queue")

// ErrKilled is the panic value delivered to procs that are forcibly
// terminated by Engine.Shutdown while parked.
var ErrKilled = errors.New("sim: proc killed by engine shutdown")

// maxTime is the Run limit: every event timestamp is below it.
const maxTime = Time(math.MaxInt64)

// event is a scheduled occurrence: either the resumption of a parked proc
// or the invocation of a callback in engine context.
//
// Resume events are intrusive: each Proc embeds its own event (a live
// proc has at most one pending resume, so the storage can be reused for
// every Advance/Unpark without allocating). Callback events are recycled
// through the engine's freelist. In steady state the scheduler therefore
// performs zero heap allocations.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among equal timestamps
	proc *Proc  // proc to resume, or nil
	fn   func() // callback to run in engine context, or nil

	// wnext chains events within a timing-wheel slot (see wheel.go);
	// nil whenever the event is in the deferred slot, the heap, or idle.
	wnext *event
}

// eventLess orders events by (time, sequence): earlier first, FIFO among
// equal timestamps.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Engine is a deterministic discrete-event simulator. It is not safe for
// concurrent use from multiple OS threads: all interaction must happen
// either from the goroutine that calls Run or from within procs (which the
// engine serializes).
type Engine struct {
	now Time
	seq uint64

	// heap is a hand-rolled 4-ary min-heap ordered by eventLess. A
	// 4-ary layout halves the tree depth of a binary heap and keeps
	// sibling comparisons within one cache line of the slice.
	heap []*event

	// wheel holds far-future events (at least wheelHorizon ahead of
	// now): a hierarchical timing wheel with O(1) insert whose slots
	// cascade back through the heap as virtual time approaches, so a
	// million pending timers never weigh on near-event heap sifts. See
	// wheel.go for the structure and the tie-order argument.
	wheel        timerWheel
	wheelHorizon Duration

	// deferred fuses the ubiquitous push-then-pop pattern (a proc
	// schedules its next event, then the engine immediately takes the
	// minimum): the most recent schedule is parked here and only
	// migrates into the heap if a second schedule arrives first. When
	// the deferred event is the minimum it is returned without any
	// sift; when the heap head pops at the same timestamp the deferred
	// event stays out of the heap entirely, so same-time cascades never
	// pay sift-up or sift-down for it.
	deferred *event

	// free recycles callback events (proc resumes are intrusive and
	// need no pool).
	free []*event

	procs   map[uint64]*Proc // live procs by id
	nextID  uint64
	current *Proc // proc currently holding the baton, nil when engine runs

	// baton is signaled by a proc when it parks or exits, returning
	// control to the engine loop.
	baton chan struct{}

	stopped bool

	// direct is true while Run/RunUntil's event loop is active: yielding
	// procs then dispatch the next event themselves and hand the baton
	// straight to the next proc (one goroutine switch instead of two
	// through the engine goroutine). Outside the loop (Shutdown kills)
	// procs fall back to waking the engine via baton.
	direct bool

	// limit is the timestamp bound of the active Run/RunUntil loop; the
	// proc-local Advance fast path must not carry the clock past it.
	limit  Time
	tracer *Tracer

	// onTracer hooks run whenever SetTracer installs or clears the
	// tracer; the kernel's probe plane uses one to attach or detach its
	// stock trace probe in lockstep.
	onTracer []func(*Tracer)

	// chooser, when non-nil, overrides the FIFO tie-break among events
	// enabled at the same instant (see choose.go). The scratch slices are
	// reused across decision points so exploration allocates nothing in
	// steady state.
	chooser    Chooser
	candEvents []*event
	candLabels []Candidate

	// trapPanics converts proc panics into an error returned by
	// Run/RunUntil instead of crashing the process — the explorer uses
	// this so a protocol-violation panic on an adversarial schedule is a
	// failing (and shrinkable) run, not an abort.
	trapPanics bool
	panicErr   error
}

// New creates an empty engine at virtual time zero.
func New() *Engine {
	return &Engine{
		procs:        make(map[uint64]*Proc),
		baton:        make(chan struct{}),
		limit:        maxTime,
		wheelHorizon: DefaultTimerWheelHorizon,
	}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// SetTracer installs a tracer that records engine events; nil disables
// tracing. Tracer-change hooks registered with OnTracerChange run after
// the swap.
func (e *Engine) SetTracer(t *Tracer) {
	e.tracer = t
	for _, fn := range e.onTracer {
		fn(t)
	}
}

// OnTracerChange registers a hook invoked on every SetTracer call with
// the new tracer (nil on clear). It does not fire retroactively — a
// caller registering after SetTracer consults Tracer() itself.
func (e *Engine) OnTracerChange(fn func(*Tracer)) {
	e.onTracer = append(e.onTracer, fn)
}

// Tracer returns the installed tracer, or nil.
func (e *Engine) Tracer() *Tracer { return e.tracer }

func (e *Engine) trace(kind, format string, args ...interface{}) {
	if e.tracer != nil {
		e.tracer.add(e.now, kind, format, args)
	}
}

// schedule enqueues an event at its absolute time ev.at. Far-future
// events go to the timing wheel; near events land in the deferred slot,
// migrating a previously deferred event into the heap. The sequence
// number is assigned here, before routing, so tie-order at equal
// timestamps is identical whichever structure holds the event.
func (e *Engine) schedule(ev *event) {
	ev.seq = e.seq
	e.seq++
	if ev.at.Sub(e.now) >= e.wheelHorizon {
		// Guard against the wheel's tick having been cascaded past this
		// event's tick (possible when a cascade overshot because the
		// heap was empty); such events take the heap path instead.
		if t := wheelTickOf(ev.at); t > e.wheel.tick {
			e.wheel.insert(ev, t)
			return
		}
	}
	if d := e.deferred; d != nil {
		e.heapPush(d)
	}
	e.deferred = ev
}

// peek returns the earliest pending event without removing it, or nil.
func (e *Engine) peek() *event {
	if e.wheel.count > 0 {
		e.wheelSync()
	}
	d := e.deferred
	if d != nil && (len(e.heap) == 0 || eventLess(d, e.heap[0])) {
		return d
	}
	if len(e.heap) == 0 {
		return nil
	}
	return e.heap[0]
}

// popNext removes and returns the earliest pending event, or nil.
func (e *Engine) popNext() *event {
	if e.wheel.count > 0 {
		e.wheelSync()
	}
	d := e.deferred
	if d != nil && (len(e.heap) == 0 || eventLess(d, e.heap[0])) {
		e.deferred = nil
		return d
	}
	if len(e.heap) == 0 {
		return nil
	}
	return e.heapPop()
}

// heapPush inserts ev into the 4-ary heap (sift-up by hole movement: the
// event is written once, parents shift down).
func (e *Engine) heapPush(ev *event) {
	q := append(e.heap, ev)
	e.heap = q
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !eventLess(ev, q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = ev
}

// heapPop removes and returns the minimum of the 4-ary heap.
func (e *Engine) heapPop() *event {
	q := e.heap
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	q = q[:n]
	e.heap = q
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if eventLess(q[j], q[m]) {
					m = j
				}
			}
			if !eventLess(q[m], last) {
				break
			}
			q[i] = q[m]
			i = m
		}
		q[i] = last
	}
	return top
}

// acquireEvent returns a callback event from the freelist (or a new one).
func (e *Engine) acquireEvent(at Time, fn func()) *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.fn = at, fn
		return ev
	}
	return &event{at: at, fn: fn}
}

// maxFree bounds the callback freelist: steady-state workloads have few
// callbacks in flight, and an unbounded list would pin a burst of events
// (and their GC scan cost) forever.
const maxFree = 1024

// releaseEvent returns a popped callback event to the freelist.
func (e *Engine) releaseEvent(ev *event) {
	ev.fn = nil
	if len(e.free) < maxFree {
		e.free = append(e.free, ev)
	}
}

// After runs fn in engine context after delay d. fn must not park; it is a
// plain callback, useful for timers and asynchronous wakeups.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.schedule(e.acquireEvent(e.now.Add(d), fn))
}

// Spawn creates a new proc executing fn and schedules its first resumption
// at the current time. fn runs on its own goroutine but only while holding
// the engine baton.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAfter(name, 0, fn)
}

// SpawnAfter is Spawn with the first resumption delayed by d.
func (e *Engine) SpawnAfter(name string, d Duration, fn func(p *Proc)) *Proc {
	e.nextID++
	p := &Proc{
		id:     e.nextID,
		name:   name,
		engine: e,
		resume: make(chan resumeMsg),
	}
	p.ev.proc = p
	e.procs[p.id] = p
	if e.tracer != nil {
		e.trace("spawn", "proc %s", p)
	}
	go p.run(fn)
	p.state = procReady
	p.ev.at = e.now.Add(d)
	e.schedule(&p.ev)
	return p
}

// dispatchResult reports how a dispatchNext call ended.
type dispatchResult int

const (
	// chainEnded: no more events are runnable (queue drained, limit
	// reached, or Stop requested); control belongs to the engine loop.
	chainEnded dispatchResult = iota
	// handedOff: a proc other than the caller was resumed; the caller
	// must wait for its own resume (or for the baton, if it is the
	// engine loop).
	handedOff
	// resumedSelf: the next event was the calling proc's own resume; it
	// keeps running without any goroutine switch.
	resumedSelf
)

// dispatchNext executes pending callbacks and resumes the next runnable
// proc. It is called both by the engine loop (self == nil) and — in
// direct mode — by a yielding proc's own goroutine, which hands the baton
// straight to the next proc instead of bouncing through the engine
// goroutine (halving the scheduler switches per simulated context
// switch).
func (e *Engine) dispatchNext(self *Proc) dispatchResult {
	for !e.stopped {
		next := e.peek()
		if next == nil || next.at > e.limit {
			break
		}
		var ev *event
		if e.chooser != nil {
			ev = e.popChoose()
		} else {
			ev = e.popNext()
		}
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: event scheduled in the past: %v < %v", ev.at, e.now))
		}
		e.now = ev.at
		if ev.fn != nil {
			fn := ev.fn
			e.releaseEvent(ev)
			e.current = nil
			fn()
			continue
		}
		p := ev.proc
		if p.state == procDead {
			continue // stale resume for an exited proc
		}
		if p.state != procReady {
			panic(fmt.Sprintf("sim: resuming proc %s in state %v", p, p.state))
		}
		e.current = p
		p.state = procRunning
		if p == self {
			return resumedSelf
		}
		p.resume <- resumeMsg{}
		return handedOff
	}
	e.current = nil
	return chainEnded
}

// runProc hands the baton to p and waits for it to park or exit. Used
// only outside the event loop (Shutdown kill delivery).
func (e *Engine) runProc(p *Proc, msg resumeMsg) {
	prev := e.current
	e.current = p
	p.state = procRunning
	p.resume <- msg
	<-e.baton
	e.current = prev
}

// loop drives the event loop in direct-handoff mode: it starts dispatch
// chains and sleeps on the baton while procs hand control among
// themselves; a proc that finds no runnable successor wakes it back up.
func (e *Engine) loop() {
	e.direct = true
	defer func() { e.direct = false }()
	for e.dispatchNext(nil) == handedOff {
		<-e.baton
	}
}

// Run executes events until the queue drains, Stop is called, or a
// deadlock is detected (parked procs with no pending events).
func (e *Engine) Run() error {
	e.stopped = false
	e.limit = maxTime
	e.loop()
	if e.panicErr != nil {
		return e.panicErr
	}
	if e.stopped {
		return nil
	}
	var parked []string
	for _, p := range e.procs {
		if p.state == procParked {
			parked = append(parked, p.String())
		}
	}
	if len(parked) > 0 {
		sort.Strings(parked)
		return fmt.Errorf("%w: %s", ErrDeadlock, strings.Join(parked, ", "))
	}
	return nil
}

// RunUntil executes events with timestamps <= t, then returns. The clock
// is left at min(t, time of last executed event); it does not jump to t if
// the queue drains earlier.
func (e *Engine) RunUntil(t Time) error {
	e.stopped = false
	e.limit = t
	defer func() { e.limit = maxTime }()
	e.loop()
	return e.panicErr
}

// SetTrapPanics selects what happens when a proc's function panics: with
// trapping on, the panicking proc dies, the simulation stops, and
// Run/RunUntil return the panic as an error; with trapping off (the
// default) the panic propagates and crashes the process with the proc's
// stack. The explorer traps panics so that invariant panics on
// adversarial schedules become failing runs it can shrink and replay.
func (e *Engine) SetTrapPanics(on bool) { e.trapPanics = on }

// PanicErr returns the trapped proc panic that stopped the simulation,
// or nil.
func (e *Engine) PanicErr() error { return e.panicErr }

// Stop makes Run return after the current event completes. Callable from
// procs and callbacks.
func (e *Engine) Stop() { e.stopped = true }

// Shutdown forcibly terminates all parked or ready procs by delivering an
// ErrKilled panic into them. Use in tests to reap goroutines from aborted
// simulations. Must not be called from inside a proc. Procs are killed in
// ascending id order so shutdown traces are deterministic (and the live
// set is snapshotted first: killing a proc mutates e.procs).
func (e *Engine) Shutdown() {
	ids := make([]uint64, 0, len(e.procs))
	for id := range e.procs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p, ok := e.procs[id]
		if !ok {
			continue
		}
		if p.state == procParked || p.state == procReady {
			e.runProc(p, resumeMsg{kill: true})
		}
	}
}

// LiveProcs reports the number of procs that have not exited.
func (e *Engine) LiveProcs() int { return len(e.procs) }

// PendingEvents reports the number of scheduled events.
func (e *Engine) PendingEvents() int {
	n := len(e.heap) + e.wheel.count
	if e.deferred != nil {
		n++
	}
	return n
}

// Current returns the proc holding the baton, or nil when the engine
// itself (a callback) is running.
func (e *Engine) Current() *Proc { return e.current }
