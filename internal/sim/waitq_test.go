package sim

import (
	"testing"
	"testing/quick"
)

func TestWaitQFIFO(t *testing.T) {
	e := New()
	var q WaitQ
	var order []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			q.Wait(p)
			order = append(order, name)
		})
	}
	e.Spawn("waker", func(p *Proc) {
		p.Advance(10 * Nanosecond)
		for q.WakeOne(0) {
			p.Advance(Nanosecond)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"w1", "w2", "w3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order %v, want %v", order, want)
		}
	}
}

func TestWaitQWakeNNeverOverWakes(t *testing.T) {
	// Property: WakeN(n) wakes exactly min(n, len) waiters.
	f := func(nWaiters uint8, nWake uint8) bool {
		w := int(nWaiters % 20)
		k := int(nWake % 25)
		e := New()
		var q WaitQ
		woken := 0
		for i := 0; i < w; i++ {
			e.Spawn("w", func(p *Proc) {
				q.Wait(p)
				woken++
			})
		}
		ok := true
		e.Spawn("waker", func(p *Proc) {
			p.Advance(Nanosecond)
			got := q.WakeN(k, 0)
			want := k
			if w < k {
				want = w
			}
			if got != want {
				ok = false
			}
		})
		_ = e.Run() // may report deadlock when not all waiters are woken
		e.Shutdown()
		min := k
		if w < min {
			min = w
		}
		return ok && woken == min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitQRemove(t *testing.T) {
	e := New()
	var q WaitQ
	var removed *Proc
	ran := false
	removed = e.Spawn("victim", func(p *Proc) {
		q.Wait(p)
		ran = true
	})
	e.Spawn("driver", func(p *Proc) {
		p.Advance(Nanosecond)
		if !q.Remove(removed) {
			t.Error("Remove reported not found")
		}
		if q.Remove(removed) {
			t.Error("second Remove reported found")
		}
		if q.WakeOne(0) {
			t.Error("WakeOne woke someone from an empty queue")
		}
	})
	_ = e.Run()
	e.Shutdown()
	if ran {
		t.Error("removed waiter still ran")
	}
}

// retainsProc reports whether the queue (or the proc's own link fields)
// still references p — the retention leak the Remove fix closed on the
// old slice representation, and which the intrusive representation must
// not reintroduce: unlinking clears wq/wqPrev/wqNext and no surviving
// node may point at the departed proc.
func retainsProc(q *WaitQ, p *Proc) bool {
	if p.wq != nil || p.wqPrev != nil || p.wqNext != nil {
		return true
	}
	for w := q.head; w != nil; w = w.wqNext {
		if w == p || w.wqPrev == p || w.wqNext == p {
			return true
		}
	}
	return false
}

// TestWaitQRemoveDoesNotRetainProc pins the Remove retention fix: a
// removed waiter must leave no reference behind, at any queue position.
func TestWaitQRemoveDoesNotRetainProc(t *testing.T) {
	a, b, c := &Proc{name: "a"}, &Proc{name: "b"}, &Proc{name: "c"}
	var q WaitQ
	for _, p := range []*Proc{a, b, c} {
		q.enqueue(p)
	}
	if !q.Remove(c) {
		t.Fatal("Remove(tail) reported not found")
	}
	if retainsProc(&q, c) {
		t.Error("queue retains removed tail waiter")
	}
	if !q.Remove(a) {
		t.Fatal("Remove(head) reported not found")
	}
	if retainsProc(&q, a) {
		t.Error("queue retains removed head waiter")
	}
	if q.Len() != 1 || q.head != b {
		t.Error("surviving waiter lost or reordered")
	}
}

func TestWaitQWakeAll(t *testing.T) {
	e := New()
	var q WaitQ
	count := 0
	for i := 0; i < 5; i++ {
		e.Spawn("w", func(p *Proc) {
			q.Wait(p)
			count++
		})
	}
	e.Spawn("waker", func(p *Proc) {
		p.Advance(Nanosecond)
		if n := q.WakeAll(0); n != 5 {
			t.Errorf("WakeAll = %d, want 5", n)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
}
