package sim

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(150 * Nanosecond)
	if t1.Nanoseconds() != 150 {
		t.Errorf("Nanoseconds = %v, want 150", t1.Nanoseconds())
	}
	if d := t1.Sub(t0); d != 150*Nanosecond {
		t.Errorf("Sub = %v, want 150ns", d)
	}
}

func TestFromNSRoundTrip(t *testing.T) {
	f := func(ns uint32) bool {
		d := FromNS(float64(ns))
		return d == Duration(ns)*Nanosecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Picosecond, "ps"},
		{33 * Nanosecond, "ns"},
		{150 * Microsecond, "us"},
		{2 * Millisecond, "ms"},
		{3 * Second, "s"},
	}
	for _, c := range cases {
		got := c.d.String()
		if !strings.HasSuffix(got, c.want) {
			t.Errorf("(%d).String() = %q, want suffix %q", int64(c.d), got, c.want)
		}
	}
}

func TestNegLnAccuracy(t *testing.T) {
	// -ln(0.5) = 0.6931..., -ln(1) = 0, -ln(0.1) = 2.302...
	cases := []struct{ u, want float64 }{
		{1.0, 0},
		{0.5, 0.6931471805599453},
		{0.1, 2.302585092994046},
		{0.9, 0.10536051565782628},
	}
	for _, c := range cases {
		got := negLn(c.u)
		if diff := got - c.want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("negLn(%v) = %v, want %v", c.u, got, c.want)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical values", same)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 20; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGExpMeanRoughly(t *testing.T) {
	r := NewRNG(9)
	mean := 1000 * Nanosecond
	var sum Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.Exp(mean)
	}
	avg := float64(sum) / n
	if avg < 0.9*float64(mean) || avg > 1.1*float64(mean) {
		t.Errorf("Exp mean = %v, want ~%v", Duration(avg), mean)
	}
}

func TestRNGDurationRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		lo, hi := 10*Nanosecond, 20*Nanosecond
		for i := 0; i < 10; i++ {
			d := r.Duration(lo, hi)
			if d < lo || d > hi {
				return false
			}
		}
		return r.Duration(hi, lo) == hi // degenerate range returns lo arg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
