package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// chooseFn adapts a function to the Chooser interface.
type chooseFn func(now Time, cands []Candidate) int

func (f chooseFn) Choose(now Time, cands []Candidate) int { return f(now, cands) }

// spawnOrderProbes spawns n procs at the same instant, each recording
// its name.
func spawnOrderProbes(e *Engine, n int, order *[]string) {
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("p%d", i)
		e.Spawn(name, func(p *Proc) {
			*order = append(*order, name)
		})
	}
}

func TestChooserDefaultIndexZeroMatchesFIFO(t *testing.T) {
	var fifo []string
	e := New()
	spawnOrderProbes(e, 3, &fifo)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	var picked []string
	e2 := New()
	decisions := 0
	e2.SetChooser(chooseFn(func(_ Time, cands []Candidate) int {
		decisions++
		// Candidates must arrive in ascending seq order with proc names.
		for i := 1; i < len(cands); i++ {
			if cands[i].Seq <= cands[i-1].Seq {
				t.Errorf("candidates not seq-sorted: %v", cands)
			}
		}
		return 0 // index 0 == the FIFO default
	}))
	spawnOrderProbes(e2, 3, &picked)
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(fifo, ",") != strings.Join(picked, ",") {
		t.Errorf("chooser(0) order %v differs from FIFO order %v", picked, fifo)
	}
	if decisions == 0 {
		t.Error("no decision points for 3 same-instant procs")
	}
}

func TestChooserReversesTieOrder(t *testing.T) {
	var order []string
	e := New()
	e.SetChooser(chooseFn(func(_ Time, cands []Candidate) int {
		return len(cands) - 1 // always run the newest schedule
	}))
	spawnOrderProbes(e, 3, &order)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(order, ","), "p2,p1,p0"; got != want {
		t.Errorf("order = %s, want %s", got, want)
	}
}

func TestChooserOutOfRangeFallsBackToFIFO(t *testing.T) {
	var order []string
	e := New()
	e.SetChooser(chooseFn(func(_ Time, cands []Candidate) int { return 99 }))
	spawnOrderProbes(e, 3, &order)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(order, ","), "p0,p1,p2"; got != want {
		t.Errorf("order = %s, want %s", got, want)
	}
}

func TestChooserSingleCandidateNotConsulted(t *testing.T) {
	e := New()
	e.SetChooser(chooseFn(func(_ Time, cands []Candidate) int {
		if len(cands) < 2 {
			t.Errorf("chooser consulted with %d candidate(s)", len(cands))
		}
		return 0
	}))
	e.Spawn("solo", func(p *Proc) {
		p.Advance(Microsecond)
		p.Advance(Microsecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestChooserPreservesEventSet(t *testing.T) {
	// Rotating the tie order must neither lose nor duplicate events:
	// every proc runs exactly once per Advance round.
	runs := map[string]int{}
	e := New()
	pick := 0
	e.SetChooser(chooseFn(func(_ Time, cands []Candidate) int {
		pick++
		return pick % len(cands)
	}))
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("w%d", i)
		e.Spawn(name, func(p *Proc) {
			for r := 0; r < 5; r++ {
				runs[name]++
				p.Advance(Microsecond)
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for name, n := range runs {
		if n != 5 {
			t.Errorf("%s ran %d rounds, want 5", name, n)
		}
	}
}

func TestTrapPanicsReturnsErrorFromRun(t *testing.T) {
	e := New()
	e.SetTrapPanics(true)
	e.Spawn("bystander", func(p *Proc) { p.Park() })
	e.Spawn("bomb", func(p *Proc) {
		p.Advance(Microsecond)
		panic("invariant violated")
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "invariant violated") {
		t.Fatalf("Run() = %v, want trapped panic", err)
	}
	if e.PanicErr() == nil {
		t.Error("PanicErr() = nil after trapped panic")
	}
	e.Shutdown() // reap the bystander
}

func TestTrapPanicsOffStillKills(t *testing.T) {
	// ErrKilled (Shutdown) must not be affected by trap mode.
	e := New()
	e.SetTrapPanics(true)
	e.Spawn("parked", func(p *Proc) { p.Park() })
	if err := e.Run(); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("Run() = %v, want deadlock", err)
	}
	e.Shutdown()
	if e.LiveProcs() != 0 {
		t.Errorf("LiveProcs = %d after Shutdown", e.LiveProcs())
	}
	if e.PanicErr() != nil {
		t.Errorf("PanicErr = %v, want nil (kill is not a panic)", e.PanicErr())
	}
}
