package sim

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestAdvanceMovesClock(t *testing.T) {
	e := New()
	var seen []Time
	e.Spawn("a", func(p *Proc) {
		seen = append(seen, e.Now())
		p.Advance(10 * Nanosecond)
		seen = append(seen, e.Now())
		p.Advance(5 * Microsecond)
		seen = append(seen, e.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Time{0, Time(10 * Nanosecond), Time(10*Nanosecond + 5*Microsecond)}
	if len(seen) != len(want) {
		t.Fatalf("got %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("step %d: got %v, want %v", i, seen[i], want[i])
		}
	}
}

func TestInterleavingIsDeterministicByTime(t *testing.T) {
	run := func() []string {
		e := New()
		var order []string
		e.Spawn("a", func(p *Proc) {
			order = append(order, "a0")
			p.Advance(30 * Nanosecond)
			order = append(order, "a30")
		})
		e.Spawn("b", func(p *Proc) {
			order = append(order, "b0")
			p.Advance(10 * Nanosecond)
			order = append(order, "b10")
			p.Advance(10 * Nanosecond)
			order = append(order, "b20")
		})
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return order
	}
	want := []string{"a0", "b0", "b10", "b20", "a30"}
	for trial := 0; trial < 20; trial++ {
		got := run()
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %v", trial, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v, want %v", trial, got, want)
			}
		}
	}
}

func TestEqualTimestampsAreFIFO(t *testing.T) {
	e := New()
	var order []string
	for _, name := range []string{"p1", "p2", "p3"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			p.Advance(100 * Nanosecond)
			order = append(order, name)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"p1", "p2", "p3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("got %v, want %v", order, want)
		}
	}
}

func TestParkUnpark(t *testing.T) {
	e := New()
	var a *Proc
	resumedAt := Time(-1)
	a = e.Spawn("sleeper", func(p *Proc) {
		p.Park()
		resumedAt = e.Now()
	})
	e.Spawn("waker", func(p *Proc) {
		p.Advance(42 * Nanosecond)
		a.Unpark(3 * Nanosecond)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := Time(45 * Nanosecond); resumedAt != want {
		t.Errorf("resumed at %v, want %v", resumedAt, want)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := New()
	e.Spawn("stuck", func(p *Proc) { p.Park() })
	err := e.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	e.Shutdown()
	if n := e.LiveProcs(); n != 0 {
		t.Errorf("LiveProcs after Shutdown = %d, want 0", n)
	}
}

func TestAfterCallback(t *testing.T) {
	e := New()
	fired := Time(-1)
	e.After(7*Nanosecond, func() { fired = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != Time(7*Nanosecond) {
		t.Errorf("fired at %v, want 7ns", fired)
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	e := New()
	var ticks []Time
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Advance(10 * Nanosecond)
			ticks = append(ticks, e.Now())
		}
	})
	if err := e.RunUntil(Time(35 * Nanosecond)); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks (%v), want 3", len(ticks), ticks)
	}
	// Continue to completion.
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(ticks) != 10 {
		t.Fatalf("got %d ticks after full run, want 10", len(ticks))
	}
}

func TestStopFromProc(t *testing.T) {
	e := New()
	count := 0
	e.Spawn("runner", func(p *Proc) {
		for {
			p.Advance(Nanosecond)
			count++
			if count == 5 {
				e.Stop()
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	e.Shutdown()
}

func TestSpawnFromProc(t *testing.T) {
	e := New()
	var childTime Time
	e.Spawn("parent", func(p *Proc) {
		p.Advance(20 * Nanosecond)
		e.Spawn("child", func(c *Proc) {
			c.Advance(5 * Nanosecond)
			childTime = e.Now()
		})
		p.Advance(100 * Nanosecond)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := Time(25 * Nanosecond); childTime != want {
		t.Errorf("child finished at %v, want %v", childTime, want)
	}
}

func TestAdvancedAccounting(t *testing.T) {
	e := New()
	var p *Proc
	p = e.Spawn("busy", func(p *Proc) {
		p.Advance(10 * Nanosecond)
		p.Advance(15 * Nanosecond)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := p.Advanced(); got != 25*Nanosecond {
		t.Errorf("Advanced = %v, want 25ns", got)
	}
}

func TestUnparkNotParkedPanics(t *testing.T) {
	e := New()
	done := make(chan struct{})
	var target *Proc
	target = e.Spawn("t", func(p *Proc) { p.Advance(Nanosecond) })
	e.Spawn("w", func(p *Proc) {
		defer close(done)
		defer func() {
			if recover() == nil {
				t.Error("Unpark on non-parked proc did not panic")
			}
			// Recovered inside the proc: continue so the engine can
			// finish cleanly.
		}()
		target.Unpark(0)
	})
	_ = e.Run()
	<-done
}

func TestWakeupsCounted(t *testing.T) {
	e := New()
	var p *Proc
	p = e.Spawn("w", func(p *Proc) {
		p.Advance(Nanosecond)
		p.Advance(Nanosecond)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 1 initial resume + 2 advances.
	if got := p.Wakeups(); got != 3 {
		t.Errorf("Wakeups = %d, want 3", got)
	}
}

func TestTracerRecords(t *testing.T) {
	e := New()
	tr := NewTracer(100)
	e.SetTracer(tr)
	e.Spawn("a", func(p *Proc) { p.Advance(Nanosecond) })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	evs := tr.Events()
	if len(evs) == 0 {
		t.Fatal("no trace events recorded")
	}
	if evs[0].Kind != "spawn" {
		t.Errorf("first event kind = %q, want spawn", evs[0].Kind)
	}
	last := evs[len(evs)-1]
	if last.Kind != "exit" {
		t.Errorf("last event kind = %q, want exit", last.Kind)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 10; i++ {
		tr.Add(Time(i), "k", "ev%d", i)
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	if evs[0].Msg != "ev7" || evs[2].Msg != "ev9" {
		t.Errorf("ring content wrong: %v", evs)
	}
	if tr.Total() != 10 {
		t.Errorf("Total = %d, want 10", tr.Total())
	}
}

func TestAccessorsAndStringers(t *testing.T) {
	e := New()
	tr := NewTracer(10)
	e.SetTracer(tr)
	if e.Tracer() != tr {
		t.Error("Tracer accessor")
	}
	var p *Proc
	p = e.Spawn("acc", func(p *Proc) {
		if p.Name() != "acc" || p.ID() == 0 || p.Engine() != e {
			t.Error("proc accessors")
		}
		if e.Current() != p {
			t.Error("Current should be the running proc")
		}
		if p.Parked() || p.Dead() {
			t.Error("state predicates while running")
		}
		p.Advance(Nanosecond)
	})
	if e.PendingEvents() != 1 {
		t.Errorf("PendingEvents = %d, want 1", e.PendingEvents())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !p.Dead() {
		t.Error("Dead after exit")
	}
	if s := p.String(); s == "" {
		t.Error("proc String empty")
	}
	if e.Current() != nil {
		t.Error("Current after Run should be nil")
	}
}

func TestProcExit(t *testing.T) {
	e := New()
	after := false
	e.Spawn("quitter", func(p *Proc) {
		p.Advance(Nanosecond)
		p.Exit()
		after = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if after {
		t.Error("code ran after Exit")
	}
	if e.LiveProcs() != 0 {
		t.Error("proc not reaped after Exit")
	}
}

func TestTracerDumpAndEventString(t *testing.T) {
	tr := NewTracer(0) // unbounded
	tr.Add(Time(5*Nanosecond), "kind", "hello %d", 42)
	var buf bytes.Buffer
	if err := tr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "kind") || !strings.Contains(out, "hello 42") {
		t.Errorf("dump = %q", out)
	}
}

func TestWaitQLen(t *testing.T) {
	e := New()
	var q WaitQ
	e.Spawn("w", func(p *Proc) { q.Wait(p) })
	e.Spawn("check", func(p *Proc) {
		p.Advance(Nanosecond)
		if q.Len() != 1 {
			t.Errorf("Len = %d, want 1", q.Len())
		}
		q.WakeOne(0)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	if FromUS(1.5) != 1500*Nanosecond {
		t.Error("FromUS")
	}
	if (2 * Second).Seconds() != 2 {
		t.Error("Duration.Seconds")
	}
	if Time(3*Second).Seconds() != 3 {
		t.Error("Time.Seconds")
	}
	if Time(5*Nanosecond).String() == "" {
		t.Error("Time.String")
	}
}
