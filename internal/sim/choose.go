package sim

import "sort"

// Candidate describes one event enabled at the current decision point,
// presented to a Chooser. Candidates are ordered by schedule sequence, so
// index 0 is always what the engine's fixed FIFO tie-break would run —
// a chooser that constantly returns 0 reproduces the default schedule.
type Candidate struct {
	// Proc is the name of the proc the event resumes, or "" for an
	// engine callback (timer, wakeup).
	Proc string
	// Seq is the event's global schedule sequence number (FIFO order).
	Seq uint64
}

// Chooser decides which of several events enabled at the same virtual
// instant runs next. The engine consults it only when two or more events
// share the earliest timestamp; with no chooser installed (the default)
// the fixed (time, sequence) tie-break applies and the hot path pays one
// nil check.
//
// The schedule-space explorer (internal/explore) implements Chooser to
// search interleavings: because the engine is otherwise deterministic, a
// run is a pure function of the sequence of choices, so any run can be
// replayed — and shrunk — from its decision trace.
//
// Choose receives the candidates in sequence (FIFO) order and must return
// an index in [0, len(cands)); out-of-range returns fall back to 0. The
// cands slice is reused between calls and must not be retained.
type Chooser interface {
	Choose(now Time, cands []Candidate) int
}

// SetChooser installs a schedule chooser (nil restores the fixed FIFO
// tie-break). Install before the simulation runs: switching mid-run is
// legal but makes the decision trace start mid-schedule.
func (e *Engine) SetChooser(c Chooser) { e.chooser = c }

// Chooser returns the installed chooser, or nil.
func (e *Engine) Chooser() Chooser { return e.chooser }

// popChoose is popNext under an installed chooser: gather every event
// enabled at the earliest pending instant and let the chooser pick the
// one to run; the rest go back into the heap with their sequence numbers
// (and therefore their future default ordering) unchanged.
func (e *Engine) popChoose() *event {
	min := e.peek()
	if min == nil {
		return nil
	}
	at := min.at
	cands := e.candEvents[:0]
	if d := e.deferred; d != nil && d.at == at {
		e.deferred = nil
		cands = append(cands, d)
	}
	for len(e.heap) > 0 && e.heap[0].at == at {
		cands = append(cands, e.heapPop())
	}
	e.candEvents = cands[:0] // retain capacity for the next decision
	if len(cands) == 1 {
		return cands[0]
	}
	// heapPop yields equal-time events in seq order already, but the
	// deferred slot (appended first) holds the newest schedule; sort so
	// the presentation is canonical FIFO.
	sort.Slice(cands, func(i, j int) bool { return cands[i].seq < cands[j].seq })
	labels := e.candLabels[:0]
	for _, ev := range cands {
		c := Candidate{Seq: ev.seq}
		if ev.proc != nil {
			c.Proc = ev.proc.name
		}
		labels = append(labels, c)
	}
	e.candLabels = labels[:0]
	idx := e.chooser.Choose(at, labels)
	if idx < 0 || idx >= len(cands) {
		idx = 0
	}
	chosen := cands[idx]
	for i, ev := range cands {
		if i != idx {
			e.heapPush(ev)
		}
		cands[i] = nil
	}
	return chosen
}
