package sim

import (
	"math/rand"
	"testing"
)

// TestHeapPopNilsTail pins the representation detail that heapPop clears
// the vacated tail slot before truncating the slice. Without the nil
// store the backing array retains a pointer to every popped event until
// the slice is next overwritten — the same retention class as the PR 5
// WaitQueue.remove fix, but for the event heap.
func TestHeapPopNilsTail(t *testing.T) {
	e := New()
	for i := 0; i < 9; i++ {
		e.heapPush(&event{at: Time(i), seq: uint64(i)})
	}
	for n := len(e.heap); n > 0; n-- {
		if ev := e.heapPop(); ev == nil {
			t.Fatal("heapPop returned nil with events pending")
		}
		// The slot just vacated sits at the new length; re-extend the
		// slice to inspect it.
		if got := e.heap[:n][n-1]; got != nil {
			t.Fatalf("heapPop left event %v in the vacated tail slot", got)
		}
	}
}

func TestExpireMask(t *testing.T) {
	cases := []struct {
		p, delta uint64
		want     uint64
	}{
		{0, 1, 1 << 1},
		{0, 2, 1<<1 | 1<<2},
		{62, 1, 1 << 63},
		{62, 2, 1<<63 | 1<<0},    // wraps
		{63, 2, 1<<0 | 1<<1},     // starts at 0
		{5, 64, ^uint64(0)},      // full revolution
		{5, 1000, ^uint64(0)},    // more than one revolution
		{10, 0, 0},               // no movement
		{63, 64, ^uint64(0)},     // full revolution from the top
		{0, 63, ^uint64(0) &^ 1}, // everything but the start slot
	}
	for _, c := range cases {
		if got := expireMask(c.p, c.delta); got != c.want {
			t.Errorf("expireMask(%d, %d) = %#x, want %#x", c.p, c.delta, got, c.want)
		}
	}
}

// timerTraceRec is one fired timer in a timerTrace run.
type timerTraceRec struct {
	at Time
	id int
}

// randomTimerDelay mixes near events (heap territory) with delays out to
// seconds (top wheel levels), plus coarse rounding so exact-timestamp
// collisions occur and exercise tie-order.
func randomTimerDelay(rng *rand.Rand) Duration {
	var d Duration
	switch rng.Intn(5) {
	case 0:
		d = Duration(rng.Int63n(int64(2 * Microsecond)))
	case 1:
		d = Duration(rng.Int63n(int64(200 * Microsecond)))
	case 2:
		d = Duration(rng.Int63n(int64(50 * Millisecond)))
	case 3:
		d = Duration(rng.Int63n(int64(2 * Second)))
	default:
		// Quantized to force ties at the same virtual instant.
		d = Duration(rng.Int63n(20)) * 10 * Microsecond
	}
	return d
}

// timerTrace runs a randomized self-extending timer workload under the
// given wheel horizon and returns the exact (timestamp, id) firing
// order. The rng stream is consumed in firing order, so any divergence
// in event order between two horizons also diverges the traces.
func timerTrace(t *testing.T, horizon Duration, seed int64) []timerTraceRec {
	t.Helper()
	const maxEvents = 4000
	e := New()
	e.SetTimerWheelHorizon(horizon)
	rng := rand.New(rand.NewSource(seed))
	var log []timerTraceRec
	nextID := 0
	var add func()
	add = func() {
		id := nextID
		nextID++
		e.After(randomTimerDelay(rng), func() {
			log = append(log, timerTraceRec{at: e.Now(), id: id})
			if nextID >= maxEvents {
				return
			}
			for k := rng.Intn(3); k > 0; k-- {
				add()
			}
			if rng.Intn(8) == 0 {
				// A same-delay pair: both land on one instant and must
				// fire in schedule order.
				d := randomTimerDelay(rng)
				e.After(d, func() { log = append(log, timerTraceRec{at: e.Now(), id: -1}) })
				e.After(d, func() { log = append(log, timerTraceRec{at: e.Now(), id: -2}) })
			}
		})
	}
	for i := 0; i < 64; i++ {
		add()
	}
	if err := e.Run(); err != nil {
		t.Fatalf("horizon %v: %v", horizon, err)
	}
	if e.PendingEvents() != 0 || e.TimerWheelLen() != 0 {
		t.Fatalf("horizon %v: %d events (%d in wheel) left after Run",
			horizon, e.PendingEvents(), e.TimerWheelLen())
	}
	return log
}

// TestWheelHeapEquivalence is the wheel <-> heap property test: the same
// randomized timer workload driven with the wheel disabled (pure heap),
// at the default horizon, and at horizons that force nearly everything
// through the wheel must fire every event at the same timestamp in the
// same order — including FIFO tie-order at equal instants.
func TestWheelHeapEquivalence(t *testing.T) {
	horizons := []Duration{
		0, // disabled: every event through the heap (the reference)
		DefaultTimerWheelHorizon,
		Picosecond, // everything with a future tick through the wheel
		100 * Microsecond,
		10 * Millisecond,
	}
	for seed := int64(1); seed <= 5; seed++ {
		ref := timerTrace(t, horizons[0], seed)
		if len(ref) < 1000 {
			t.Fatalf("seed %d: reference run fired only %d events", seed, len(ref))
		}
		for _, h := range horizons[1:] {
			got := timerTrace(t, h, seed)
			if len(got) != len(ref) {
				t.Fatalf("seed %d horizon %v: %d events fired, reference fired %d",
					seed, h, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("seed %d horizon %v: event %d fired as (%v, id %d), reference (%v, id %d)",
						seed, h, i, got[i].at, got[i].id, ref[i].at, ref[i].id)
				}
			}
		}
	}
}

// TestWheelFarEventsLeaveHeapEmpty pins the structural claim: far-future
// events are parked in the wheel, not the heap, so near-event operations
// never sift against them.
func TestWheelFarEventsLeaveHeapEmpty(t *testing.T) {
	e := New()
	fired := 0
	for i := 0; i < 1000; i++ {
		e.After(Duration(i+1)*Millisecond, func() { fired++ })
	}
	if e.TimerWheelLen() != 1000 {
		t.Fatalf("wheel holds %d of 1000 far events", e.TimerWheelLen())
	}
	if len(e.heap) != 0 {
		t.Fatalf("heap holds %d events; far-future events should be in the wheel", len(e.heap))
	}
	if e.PendingEvents() != 1000 {
		t.Fatalf("PendingEvents = %d, want 1000", e.PendingEvents())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 1000 {
		t.Fatalf("fired %d of 1000", fired)
	}
	if e.TimerWheelLen() != 0 || e.PendingEvents() != 0 {
		t.Fatalf("wheel %d / pending %d after drain", e.TimerWheelLen(), e.PendingEvents())
	}
}

// TestWheelTickGuard exercises the schedule guard for events whose tick
// the wheel has already cascaded past: a long empty-queue jump advances
// the wheel far ahead, after which a short-delay schedule (still beyond
// the horizon measured from now) must take the heap path and fire on
// time rather than being filed behind the wheel's position.
func TestWheelTickGuard(t *testing.T) {
	e := New()
	order := []int{}
	e.After(Second, func() {
		order = append(order, 1)
		// now = 1s; the wheel cascaded all the way here. Schedule just
		// past the horizon: its tick may not be ahead of the wheel tick.
		e.After(DefaultTimerWheelHorizon, func() { order = append(order, 2) })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("fired %v, want [1 2]", order)
	}
}
