package sim

import (
	"fmt"
	"io"
)

// TraceEvent is one recorded engine event.
type TraceEvent struct {
	At   Time
	Kind string
	Msg  string
}

// String implements fmt.Stringer.
func (ev TraceEvent) String() string {
	return fmt.Sprintf("[%12.3fns] %-8s %s", ev.At.Nanoseconds(), ev.Kind, ev.Msg)
}

// Tracer records engine and subsystem events into a bounded ring buffer.
// Subsystems (kernel, blt, ulp) emit their own kinds through Add.
type Tracer struct {
	cap    int
	events []TraceEvent
	start  int // ring start index when full
	full   bool
	total  uint64
}

// NewTracer creates a tracer keeping at most capacity events (most recent
// win). capacity <= 0 means unbounded.
func NewTracer(capacity int) *Tracer {
	return &Tracer{cap: capacity}
}

func (t *Tracer) add(at Time, kind, msg string) {
	t.total++
	ev := TraceEvent{At: at, Kind: kind, Msg: msg}
	if t.cap <= 0 {
		t.events = append(t.events, ev)
		return
	}
	if len(t.events) < t.cap {
		t.events = append(t.events, ev)
		return
	}
	t.events[t.start] = ev
	t.start = (t.start + 1) % t.cap
	t.full = true
}

// Add records an event with the given timestamp, kind tag and message.
func (t *Tracer) Add(at Time, kind, format string, args ...interface{}) {
	t.add(at, kind, fmt.Sprintf(format, args...))
}

// Total reports how many events were ever recorded (including evicted
// ones).
func (t *Tracer) Total() uint64 { return t.total }

// Events returns the retained events in chronological order.
func (t *Tracer) Events() []TraceEvent {
	if !t.full {
		out := make([]TraceEvent, len(t.events))
		copy(out, t.events)
		return out
	}
	out := make([]TraceEvent, 0, len(t.events))
	out = append(out, t.events[t.start:]...)
	out = append(out, t.events[:t.start]...)
	return out
}

// Dump writes the retained events to w, one per line.
func (t *Tracer) Dump(w io.Writer) error {
	for _, ev := range t.Events() {
		if _, err := fmt.Fprintln(w, ev); err != nil {
			return err
		}
	}
	return nil
}
