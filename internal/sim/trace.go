package sim

import (
	"fmt"
	"io"
)

// TraceEvent is one recorded engine event, rendered to its final message.
type TraceEvent struct {
	At   Time
	Kind string
	Msg  string
}

// String implements fmt.Stringer.
func (ev TraceEvent) String() string {
	return fmt.Sprintf("[%12.3fns] %-8s %s", ev.At.Nanoseconds(), ev.Kind, ev.Msg)
}

// record is one unrendered trace entry. Formatting is deferred until the
// event is actually read: a bounded ring evicts most entries unread, so
// emitters never pay fmt.Sprintf for them. Arguments are captured by
// value at Add time (pointer arguments whose String output mutates would
// render their state at read time — engine args are immutable).
type record struct {
	at     Time
	kind   string
	format string
	args   []interface{} // nil or empty: format is already the message
}

// render formats the record into its user-visible event.
func (r record) render() TraceEvent {
	msg := r.format
	if len(r.args) > 0 {
		msg = fmt.Sprintf(r.format, r.args...)
	}
	return TraceEvent{At: r.at, Kind: r.kind, Msg: msg}
}

// Tracer records engine and subsystem events into a bounded ring buffer.
// Subsystems (kernel, blt, ulp) emit their own kinds through Add.
type Tracer struct {
	cap   int
	recs  []record
	start int // ring start index when full
	full  bool
	total uint64
}

// NewTracer creates a tracer keeping at most capacity events (most recent
// win). capacity <= 0 means unbounded.
func NewTracer(capacity int) *Tracer {
	return &Tracer{cap: capacity}
}

func (t *Tracer) add(at Time, kind, format string, args []interface{}) {
	t.total++
	r := record{at: at, kind: kind, format: format, args: args}
	if t.cap <= 0 {
		t.recs = append(t.recs, r)
		return
	}
	if len(t.recs) < t.cap {
		t.recs = append(t.recs, r)
		return
	}
	t.recs[t.start] = r
	t.start = (t.start + 1) % t.cap
	t.full = true
}

// Add records an event with the given timestamp, kind tag and message.
// The message is formatted lazily on Events or Dump.
func (t *Tracer) Add(at Time, kind, format string, args ...interface{}) {
	t.add(at, kind, format, args)
}

// Total reports how many events were ever recorded (including evicted
// ones).
func (t *Tracer) Total() uint64 { return t.total }

// Events returns the retained events in chronological order.
func (t *Tracer) Events() []TraceEvent {
	out := make([]TraceEvent, 0, len(t.recs))
	if t.full {
		for _, r := range t.recs[t.start:] {
			out = append(out, r.render())
		}
		for _, r := range t.recs[:t.start] {
			out = append(out, r.render())
		}
		return out
	}
	for _, r := range t.recs {
		out = append(out, r.render())
	}
	return out
}

// Dump writes the retained events to w, one per line.
func (t *Tracer) Dump(w io.Writer) error {
	for _, ev := range t.Events() {
		if _, err := fmt.Fprintln(w, ev); err != nil {
			return err
		}
	}
	return nil
}
