package sim

import (
	"fmt"
	"io"
)

// Phase classifies a trace record, mirroring the Chrome trace-event
// phases the exporter maps them to.
type Phase byte

// Phases.
const (
	// PhLog is an untyped log line (the legacy Add path).
	PhLog Phase = iota
	// PhInstant is a typed point event carrying task/core metadata.
	PhInstant
	// PhBegin opens a duration span; its id pairs it with a PhEnd.
	PhBegin
	// PhEnd closes the span opened by the PhBegin with the same id.
	PhEnd
)

// Meta is the typed context attached to an event: which task, on which
// core, emitted it. Core -1 means "not bound to a core" (engine events,
// or a task currently off-CPU).
type Meta struct {
	Task string
	PID  int
	Core int
}

// NoMeta is the Meta of events with no task context.
var NoMeta = Meta{Core: -1}

// TraceEvent is one recorded event, rendered to its final message.
type TraceEvent struct {
	At   Time
	Kind string
	Msg  string

	// Typed fields (zero values on legacy log events; Core is -1 when
	// unknown).
	Task string
	PID  int
	Core int
	Span uint64 // non-zero links a PhBegin with its PhEnd
	Ph   Phase
}

// String implements fmt.Stringer.
func (ev TraceEvent) String() string {
	return fmt.Sprintf("[%12.3fns] %-8s %s", ev.At.Nanoseconds(), ev.Kind, ev.Msg)
}

// record is one unrendered trace entry. Formatting is deferred until the
// event is actually read: a bounded ring evicts most entries unread, so
// emitters never pay fmt.Sprintf for them. Arguments are captured by
// value at Add time (pointer arguments whose String output mutates would
// render their state at read time — engine args are immutable).
type record struct {
	at     Time
	kind   string
	format string
	args   []interface{} // nil or empty: format is already the message

	task string
	pid  int
	core int
	span uint64
	ph   Phase
}

// render formats the record into its user-visible event.
func (r record) render() TraceEvent {
	msg := r.format
	if len(r.args) > 0 {
		msg = fmt.Sprintf(r.format, r.args...)
	}
	switch r.ph {
	case PhBegin:
		msg = "begin " + msg
	case PhEnd:
		if msg == "" {
			msg = "end"
		} else {
			msg = "end " + msg
		}
	}
	return TraceEvent{
		At: r.at, Kind: r.kind, Msg: msg,
		Task: r.task, PID: r.pid, Core: r.core, Span: r.span, Ph: r.ph,
	}
}

// Tracer records engine and subsystem events into a bounded ring buffer.
// Subsystems (kernel, blt, ulp) emit their own kinds through Add/Emit,
// and bracket durations with BeginSpan/EndSpan.
type Tracer struct {
	cap   int
	recs  []record
	start int // ring start index when full
	full  bool
	total uint64

	nextSpan uint64

	// rendered caches the chronological render of recs; add invalidates
	// it, so repeated Events/Dump/DumpChrome calls format each record
	// once instead of once per call.
	rendered []TraceEvent
	dirty    bool
}

// NewTracer creates a tracer keeping at most capacity events (most recent
// win). capacity <= 0 means unbounded.
func NewTracer(capacity int) *Tracer {
	return &Tracer{cap: capacity}
}

func (t *Tracer) add(at Time, kind, format string, args []interface{}) {
	t.put(record{at: at, kind: kind, format: format, args: args, core: -1})
}

func (t *Tracer) put(r record) {
	t.total++
	t.dirty = true
	if t.cap <= 0 {
		t.recs = append(t.recs, r)
		return
	}
	if len(t.recs) < t.cap {
		t.recs = append(t.recs, r)
		return
	}
	t.recs[t.start] = r
	t.start = (t.start + 1) % t.cap
	t.full = true
}

// Add records an untyped log event with the given timestamp, kind tag
// and message. The message is formatted lazily on Events or Dump.
func (t *Tracer) Add(at Time, kind, format string, args ...interface{}) {
	t.add(at, kind, format, args)
}

// Emit records a typed instant event carrying task/core metadata — the
// Chrome exporter renders these as instant markers on the core's track.
func (t *Tracer) Emit(at Time, kind string, m Meta, format string, args ...interface{}) {
	t.put(record{
		at: at, kind: kind, format: format, args: args,
		task: m.Task, pid: m.PID, core: m.Core, ph: PhInstant,
	})
}

// BeginSpan opens a duration span named name and returns its id; pass
// the id to EndSpan when the bracketed activity completes. The span is
// attributed to the core in m (couple/decouple handshakes may end on a
// different core than they began; the exporter draws the span on the
// beginning core).
func (t *Tracer) BeginSpan(at Time, kind string, m Meta, name string) uint64 {
	t.nextSpan++
	id := t.nextSpan
	t.put(record{
		at: at, kind: kind, format: name,
		task: m.Task, pid: m.PID, core: m.Core, span: id, ph: PhBegin,
	})
	return id
}

// EndSpan closes the span opened by the BeginSpan that returned id.
func (t *Tracer) EndSpan(at Time, span uint64, m Meta) {
	t.put(record{
		at: at, task: m.Task, pid: m.PID, core: m.Core, span: span, ph: PhEnd,
	})
}

// Total reports how many events were ever recorded (including evicted
// ones).
func (t *Tracer) Total() uint64 { return t.total }

// Len reports how many events are currently retained, without forcing a
// render.
func (t *Tracer) Len() int { return len(t.recs) }

// Dropped reports how many events the bounded ring evicted.
func (t *Tracer) Dropped() uint64 { return t.total - uint64(len(t.recs)) }

// events renders (or reuses) the chronological event cache.
func (t *Tracer) events() []TraceEvent {
	if !t.dirty && t.rendered != nil {
		return t.rendered
	}
	out := t.rendered[:0]
	if cap(out) < len(t.recs) {
		out = make([]TraceEvent, 0, len(t.recs))
	}
	if t.full {
		for _, r := range t.recs[t.start:] {
			out = append(out, r.render())
		}
		for _, r := range t.recs[:t.start] {
			out = append(out, r.render())
		}
	} else {
		for _, r := range t.recs {
			out = append(out, r.render())
		}
	}
	t.rendered = out
	t.dirty = false
	return out
}

// Events returns the retained events in chronological order. Rendering
// is cached: consecutive Events/Dump calls without new records reuse the
// same formatted events.
func (t *Tracer) Events() []TraceEvent {
	cached := t.events()
	out := make([]TraceEvent, len(cached))
	copy(out, cached)
	return out
}

// Dump writes the retained events to w, one per line.
func (t *Tracer) Dump(w io.Writer) error {
	for _, ev := range t.events() {
		if _, err := fmt.Fprintln(w, ev); err != nil {
			return err
		}
	}
	return nil
}
