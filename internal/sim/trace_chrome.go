package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export: the retained events serialized in the
// Trace Event Format that chrome://tracing and ui.perfetto.dev load.
// Layout:
//
//   - one process (pid 1), named after the simulated machine;
//   - one thread track per CPU core (tid = core id), plus an "engine"
//     track (tid = engineTID) for events not bound to a core;
//   - PhBegin/PhEnd pairs become complete ("X") duration slices, drawn
//     on the track of the core where the span began — couple/decouple
//     handshakes that migrate cores keep their origin track;
//   - PhInstant and legacy log events become instant ("i") markers.
//
// Timestamps are microseconds (the format's unit); virtual picoseconds
// convert at 1e-6, preserving sub-ns resolution as fractions.

// engineTID is the synthetic track for events without a core.
const engineTID = 1000

// chromeEvent is one trace-event JSON object.
type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`
	Dur  *float64               `json:"dur,omitempty"`
	PID  int                    `json:"pid"`
	TID  int                    `json:"tid"`
	S    string                 `json:"s,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func chromeTS(at Time) float64 { return float64(at) / 1e6 }

func chromeTID(core int) int {
	if core < 0 {
		return engineTID
	}
	return core
}

// DumpChrome writes the retained events as Chrome trace-event JSON.
// processName labels the single process (typically the machine name).
// Spans whose begin was evicted by the ring render nothing; spans still
// open at the end of the trace are closed at the last event's time.
func (t *Tracer) DumpChrome(w io.Writer, processName string) error {
	evs := t.events()

	type open struct {
		ev  TraceEvent
		dur float64 // set when the matching end arrives
		ok  bool
	}
	pending := make(map[uint64]*open)
	var spans []*open
	var out []chromeEvent
	tids := map[int]bool{}
	var last Time

	for _, ev := range evs {
		if ev.At > last {
			last = ev.At
		}
		switch ev.Ph {
		case PhBegin:
			o := &open{ev: ev}
			pending[ev.Span] = o
			spans = append(spans, o)
		case PhEnd:
			o := pending[ev.Span]
			if o == nil {
				continue // begin evicted by the ring
			}
			delete(pending, ev.Span)
			o.dur = chromeTS(ev.At) - chromeTS(o.ev.At)
			o.ok = true
		default:
			tid := chromeTID(ev.Core)
			tids[tid] = true
			e := chromeEvent{
				Name: ev.Msg, Cat: ev.Kind, Ph: "i",
				Ts: chromeTS(ev.At), PID: 1, TID: tid, S: "t",
			}
			if ev.Task != "" {
				e.Args = map[string]interface{}{"task": ev.Task, "taskPid": ev.PID}
			}
			out = append(out, e)
		}
	}
	for _, o := range spans {
		if !o.ok { // still open: close at the end of the trace
			o.dur = chromeTS(last) - chromeTS(o.ev.At)
		}
		tid := chromeTID(o.ev.Core)
		tids[tid] = true
		dur := o.dur
		e := chromeEvent{
			Name: spanName(o.ev), Cat: o.ev.Kind, Ph: "X",
			Ts: chromeTS(o.ev.At), Dur: &dur, PID: 1, TID: tid,
		}
		if o.ev.Task != "" {
			e.Args = map[string]interface{}{"task": o.ev.Task, "taskPid": o.ev.PID}
		}
		out = append(out, e)
	}

	// Metadata: process and per-core thread names, so Perfetto shows
	// "core N" tracks instead of bare tids.
	meta := []chromeEvent{{
		Name: "process_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]interface{}{"name": processName},
	}}
	// Surface ring eviction in the export itself: a capped trace that
	// silently dropped its oldest events reads as a complete record
	// otherwise. The counter rides as metadata so viewers ignore it but
	// tooling (and humans grepping the JSON) can see the loss.
	if dropped := t.Dropped(); dropped > 0 {
		meta = append(meta, chromeEvent{
			Name: "trace_dropped_events", Ph: "M", PID: 1, TID: 0,
			Args: map[string]interface{}{"dropped": dropped, "retained": len(evs)},
		})
	}
	ids := make([]int, 0, len(tids))
	for tid := range tids {
		ids = append(ids, tid)
	}
	sort.Ints(ids)
	for _, tid := range ids {
		name := "engine"
		if tid != engineTID {
			name = coreName(tid)
		}
		meta = append(meta,
			chromeEvent{Name: "thread_name", Ph: "M", PID: 1, TID: tid,
				Args: map[string]interface{}{"name": name}},
			chromeEvent{Name: "thread_sort_index", Ph: "M", PID: 1, TID: tid,
				Args: map[string]interface{}{"sort_index": tid}},
		)
	}

	// Stable order: metadata first, then events by (ts, tid, name) so
	// the same trace always serializes to the same bytes.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Ts != out[j].Ts {
			return out[i].Ts < out[j].Ts
		}
		if out[i].TID != out[j].TID {
			return out[i].TID < out[j].TID
		}
		return out[i].Name < out[j].Name
	})

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{
		TraceEvents:     append(meta, out...),
		DisplayTimeUnit: "ns",
	})
}

// spanName renders a span's display name: the begin record's message
// without the "begin " prefix render() adds for the text dump.
func spanName(ev TraceEvent) string {
	const prefix = "begin "
	if len(ev.Msg) > len(prefix) && ev.Msg[:len(prefix)] == prefix {
		return ev.Msg[len(prefix):]
	}
	return ev.Msg
}

func coreName(tid int) string { return fmt.Sprintf("core %d", tid) }
