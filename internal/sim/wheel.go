package sim

import "math/bits"

// This file implements the far-event side of the engine's event queue: a
// hierarchical timing wheel (Varghese & Lauck) over virtual time.
//
// The engine keeps two structures. Events due soon live in the deferred
// slot / 4-ary min-heap, which yields exact (time, seq) order. Events at
// least wheelHorizon in the future are parked in the wheel: insertion is
// O(1) regardless of how many timers are pending, instead of the heap's
// O(log n) sift against every near event. As virtual time approaches, a
// slot's events cascade back through the heap — only when their level
// turns — and the heap's comparator re-establishes the exact global
// (time, seq) order before anything pops. Tie-order at equal timestamps
// is therefore byte-identical to a heap-only engine: sequence numbers are
// assigned at schedule time, ride along through the wheel, and the heap
// is always the final arbiter.
//
// Geometry: 8 levels of 64 slots. A level-0 slot spans 2^wheelTickShift
// picoseconds (~1.05 us); each level is 64x coarser, so the wheel covers
// 64^8 * 2^20 ps — more than the entire non-negative Time range. No
// overflow list is needed.

const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 8
	// wheelTickShift is log2 of a level-0 slot width in picoseconds.
	wheelTickShift = 20
)

// DefaultTimerWheelHorizon is the default near/far boundary: events
// scheduled at least this far in the future go into the timing wheel.
// Four level-0 slots guarantees a wheel event's tick is strictly ahead
// of the wheel's current tick regardless of slot alignment.
const DefaultTimerWheelHorizon = Duration(4 << wheelTickShift)

// wheelTickOf maps an absolute virtual time to its level-0 tick.
func wheelTickOf(at Time) uint64 { return uint64(at) >> wheelTickShift }

// wheelLevel is one ring of 64 slots. Each slot is an unordered
// singly-linked list of events threaded through event.wnext; the bitmap
// has a bit set for every non-empty slot so cascades and due scans skip
// empty slots in one instruction.
type wheelLevel struct {
	bitmap uint64
	slot   [wheelSlots]*event
}

// timerWheel holds far-future events. tick is the level-0 tick the wheel
// has been advanced to; due caches the earliest possible tick of any
// held event (the exact minimum over occupied slot start ticks), so the
// engine's hot path decides "is anything in the wheel relevant yet?"
// with one comparison.
type timerWheel struct {
	tick   uint64
	due    uint64
	count  int
	levels [wheelLevels]wheelLevel
}

// insert files ev into the wheel. The caller must have checked that
// t = wheelTickOf(ev.at) is strictly greater than w.tick; the level is
// the highest one whose digit of t differs from w.tick's (the timeout.c
// scheme), which guarantees the slot index at that level is strictly
// ahead of the wheel's current position — no wrap-around bookkeeping.
func (w *timerWheel) insert(ev *event, t uint64) {
	level := (63 - bits.LeadingZeros64(t^w.tick)) / wheelBits
	if level >= wheelLevels {
		level = wheelLevels - 1
	}
	shift := uint(level * wheelBits)
	idx := (t >> shift) & wheelMask
	l := &w.levels[level]
	ev.wnext = l.slot[idx]
	l.slot[idx] = ev
	l.bitmap |= 1 << idx
	start := t &^ (uint64(1)<<shift - 1) // slot start in level-0 ticks
	if w.count == 0 || start < w.due {
		w.due = start
	}
	w.count++
}

// expireMask returns the bitmap of slot indices in the circular range
// (p, p+delta] — the slots passed when a level's position advances by
// delta. delta >= wheelSlots selects every slot.
func expireMask(p, delta uint64) uint64 {
	if delta >= wheelSlots {
		return ^uint64(0)
	}
	lo := (p + 1) & wheelMask
	if lo+delta <= wheelSlots {
		return (uint64(1)<<delta - 1) << lo
	}
	hi := lo + delta - wheelSlots
	return ^uint64(0)<<lo | (uint64(1)<<hi - 1)
}

// cascade advances the wheel to its cached due tick, expiring every slot
// whose range was passed at every level. Expired events whose tick has
// been reached go into the engine's heap; later ones re-enter the wheel
// at a strictly lower level (their remaining distance shrank), so each
// event cascades at most wheelLevels-1 times over its lifetime.
func (w *timerWheel) cascade(e *Engine) {
	newTick := w.due
	var pending *event
	for level := 0; level < wheelLevels; level++ {
		shift := uint(level * wheelBits)
		oldT := w.tick >> shift
		newT := newTick >> shift
		if oldT == newT {
			// Positions above this level have not moved either.
			break
		}
		l := &w.levels[level]
		if l.bitmap == 0 {
			continue
		}
		m := l.bitmap & expireMask(oldT&wheelMask, newT-oldT)
		for b := m; b != 0; b &= b - 1 {
			idx := bits.TrailingZeros64(b)
			for ev := l.slot[idx]; ev != nil; {
				next := ev.wnext
				ev.wnext = pending
				pending = ev
				ev = next
			}
			l.slot[idx] = nil
		}
		l.bitmap &^= m
	}
	w.tick = newTick
	for ev := pending; ev != nil; {
		next := ev.wnext
		ev.wnext = nil
		w.count--
		if t := wheelTickOf(ev.at); t > w.tick {
			w.insert(ev, t)
		} else {
			e.heapPush(ev)
		}
		ev = next
	}
	w.due = w.scanDue()
}

// scanDue recomputes the earliest occupied slot start tick across all
// levels. Only called after a cascade (inserts maintain due
// incrementally), so its cost amortizes against the slot turn.
func (w *timerWheel) scanDue() uint64 {
	best := ^uint64(0)
	if w.count == 0 {
		return best
	}
	for level := 0; level < wheelLevels; level++ {
		bm := w.levels[level].bitmap
		if bm == 0 {
			continue
		}
		shift := uint(level * wheelBits)
		cur := w.tick >> shift
		pos := cur & wheelMask
		base := cur - pos
		for b := bm; b != 0; b &= b - 1 {
			i := uint64(bits.TrailingZeros64(b))
			lt := base + i
			if i <= pos {
				// Defensive: a slot at or behind the current position
				// belongs to the next revolution.
				lt += wheelSlots
			}
			if s := lt << shift; s < best {
				best = s
			}
		}
	}
	return best
}

// wheelSync cascades due wheel slots into the heap until every event
// still in the wheel is provably later than the earliest near event
// (w.due is a lower bound on every held event's timestamp). It must run
// before any peek/pop decision so the deferred slot + heap always
// contain the global minimum; with the wheel empty it costs one counter
// check at the call site.
func (e *Engine) wheelSync() {
	w := &e.wheel
	for w.count > 0 {
		hm := maxTime
		if d := e.deferred; d != nil {
			hm = d.at
		}
		if len(e.heap) > 0 && e.heap[0].at < hm {
			hm = e.heap[0].at
		}
		if Time(w.due<<wheelTickShift) > hm {
			return
		}
		w.cascade(e)
	}
}

// SetTimerWheelHorizon tunes the near/far boundary: an event scheduled
// at least d into the future is parked in the hierarchical timing wheel
// instead of the min-heap and cascades back as virtual time approaches.
// d <= 0 disables the wheel entirely (every event goes straight to the
// heap). Pop order — including tie-order at equal timestamps — is
// identical for every setting; the knob exists for the equivalence tests
// and for tuning, not for semantics. Safe to change at any time: events
// already in the wheel still drain through it.
func (e *Engine) SetTimerWheelHorizon(d Duration) {
	if d <= 0 {
		e.wheelHorizon = Duration(maxTime)
		return
	}
	e.wheelHorizon = d
}

// TimerWheelLen reports the number of events currently parked in the
// timing wheel (for tests and diagnostics).
func (e *Engine) TimerWheelLen() int { return e.wheel.count }
