package sim

// RNG is a small deterministic pseudo-random generator (SplitMix64) used
// by workload generators. We avoid math/rand so that simulations remain
// reproducible across Go releases regardless of rand's internals, and so
// that seeding is explicit everywhere.
type RNG struct {
	state uint64
}

// NewRNG creates a generator from a seed. Equal seeds yield equal streams.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Duration returns a uniform Duration in [lo, hi].
func (r *RNG) Duration(lo, hi Duration) Duration {
	if hi <= lo {
		return lo
	}
	return lo + Duration(r.Uint64()%uint64(hi-lo+1))
}

// Exp returns an exponentially distributed Duration with the given mean,
// computed with a fixed-precision inverse-CDF so results are portable.
func (r *RNG) Exp(mean Duration) Duration {
	// -mean * ln(u); use a series-free approximation via float64 math.
	u := r.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	return Duration(float64(mean) * negLn(u))
}

// negLn computes -ln(u) for u in (0,1] without importing math, using the
// identity -ln(u) = ln(1/u) and an atanh-based series. Accuracy ~1e-9,
// ample for workload generation.
func negLn(u float64) float64 {
	x := 1 / u
	// ln(x) = 2*atanh((x-1)/(x+1)); range-reduce by halving exponent
	// via repeated sqrt-free scaling: pull out powers of 2.
	k := 0
	for x > 2 {
		x /= 2
		k++
	}
	t := (x - 1) / (x + 1)
	t2 := t * t
	// atanh series: t + t^3/3 + t^5/5 + ...
	sum := 0.0
	term := t
	for i := 1; i < 40; i += 2 {
		sum += term / float64(i)
		term *= t2
		if term < 1e-18 {
			break
		}
	}
	const ln2 = 0.6931471805599453
	return 2*sum + float64(k)*ln2
}
