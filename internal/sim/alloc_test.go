package sim

import "testing"

// The engine's steady-state hot paths must not allocate: resume events
// are intrusive (embedded in the Proc), callback events come from a
// freelist, and tracing is off by default. These tests pin that property
// with testing.AllocsPerRun so a regression fails loudly rather than
// showing up as a benchmark drift.

// runChunks drives the engine in fixed virtual-time chunks, returning a
// closure suitable for AllocsPerRun. The first call is AllocsPerRun's
// untimed warm-up, which absorbs one-time growth (heap slice, freelist).
func runChunks(e *Engine, chunk Duration) func() {
	next := e.Now()
	return func() {
		next = next.Add(chunk)
		if err := e.RunUntil(next); err != nil {
			panic(err)
		}
	}
}

func TestAdvanceResumeZeroAllocs(t *testing.T) {
	e := New()
	e.Spawn("spinner", func(p *Proc) {
		for {
			p.Advance(Microsecond)
		}
	})
	step := runChunks(e, 100*Microsecond)
	step() // warm up outside the measurement too: first chunk spawns the proc
	if got := testing.AllocsPerRun(50, step); got != 0 {
		t.Errorf("Advance→resume cycle allocates %.1f per chunk, want 0", got)
	}
	e.Stop()
	e.Shutdown()
}

func TestUnparkZeroAllocs(t *testing.T) {
	e := New()
	var a, b *Proc
	a = e.Spawn("a", func(p *Proc) {
		for {
			p.Park()
			b.Unpark(Microsecond)
		}
	})
	b = e.Spawn("b", func(p *Proc) {
		for {
			a.Unpark(Microsecond)
			p.Park()
		}
	})
	step := runChunks(e, 100*Microsecond)
	step()
	if got := testing.AllocsPerRun(50, step); got != 0 {
		t.Errorf("Park/Unpark ping-pong allocates %.1f per chunk, want 0", got)
	}
	e.Stop()
	e.Shutdown()
}

func TestWaitQZeroAllocs(t *testing.T) {
	e := New()
	var q1, q2 WaitQ
	e.Spawn("a", func(p *Proc) {
		for {
			q1.Wait(p)
			q2.WakeOne(Microsecond)
		}
	})
	e.Spawn("b", func(p *Proc) {
		for {
			q1.WakeOne(Microsecond)
			q2.Wait(p)
		}
	})
	step := runChunks(e, 100*Microsecond)
	step()
	if got := testing.AllocsPerRun(50, step); got != 0 {
		t.Errorf("WaitQ wait/wake ping-pong allocates %.1f per chunk, want 0", got)
	}
	e.Stop()
	e.Shutdown()
}

func TestAfterZeroAllocs(t *testing.T) {
	e := New()
	var tick func()
	n := 0
	tick = func() {
		n++
		e.After(Microsecond, tick)
	}
	e.After(Microsecond, tick)
	step := runChunks(e, 100*Microsecond)
	step()
	if got := testing.AllocsPerRun(50, step); got != 0 {
		t.Errorf("After callback chain allocates %.1f per chunk, want 0", got)
	}
	if n == 0 {
		t.Fatal("callback never ran")
	}
	e.Stop()
	e.Shutdown()
}
