package sim

import "testing"

// BenchmarkEngineEvents measures raw event throughput of the engine: one
// proc advancing repeatedly.
func BenchmarkEngineEvents(b *testing.B) {
	e := New()
	e.Spawn("adv", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(Nanosecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcPingPong measures park/unpark handoff between two procs
// (one wake+wait round trip per iteration).
func BenchmarkProcPingPong(b *testing.B) {
	e := New()
	var q1, q2 WaitQ
	e.Spawn("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q1.Wait(p)
			q2.WakeOne(0)
		}
	})
	e.Spawn("b", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q1.WakeOne(0)
			q2.Wait(p)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEventHeap measures scheduling many timers.
func BenchmarkEventHeap(b *testing.B) {
	e := New()
	fired := 0
	for i := 0; i < b.N; i++ {
		e.After(Duration(i%1000)*Nanosecond, func() { fired++ })
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	if fired != b.N {
		b.Fatalf("fired %d of %d", fired, b.N)
	}
}

// BenchmarkRNG measures the deterministic generator.
func BenchmarkRNG(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}
