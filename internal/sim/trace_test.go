package sim

import (
	"bytes"
	"strings"
	"testing"
)

// renderCounter counts how many times it is formatted, exposing whether
// the tracer re-renders records on repeated reads.
type renderCounter struct{ n *int }

func (rc renderCounter) String() string {
	*rc.n++
	return "x"
}

func TestTracerLenAndDropped(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Add(Time(i), "k", "e%d", i)
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d, want 3", tr.Len())
	}
	if tr.Total() != 5 {
		t.Errorf("Total = %d, want 5", tr.Total())
	}
	if tr.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 3 || evs[0].Msg != "e2" || evs[2].Msg != "e4" {
		t.Errorf("events = %v", evs)
	}
}

func TestTracerRendersEachRecordOnce(t *testing.T) {
	tr := NewTracer(0)
	n := 0
	tr.Add(1, "k", "%v", renderCounter{&n})
	var buf bytes.Buffer
	tr.Dump(&buf)
	tr.Dump(&buf)
	tr.Events()
	if n != 1 {
		t.Errorf("record rendered %d times across 3 reads, want 1", n)
	}
	// A new record invalidates the cache: everything renders once more.
	tr.Add(2, "k", "%v", renderCounter{&n})
	tr.Events()
	if n != 3 {
		t.Errorf("after invalidation rendered %d times total, want 3", n)
	}
}

func TestTracerSpansAndInstants(t *testing.T) {
	tr := NewTracer(0)
	m := Meta{Task: "w", PID: 7, Core: 2}
	id := tr.BeginSpan(10, "syscall", m, "write")
	tr.Emit(15, "fault", m, "boom %d", 1)
	tr.EndSpan(20, id, m)
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3", len(evs))
	}
	if evs[0].Ph != PhBegin || evs[0].Span != id || evs[0].Msg != "begin write" {
		t.Errorf("begin = %+v", evs[0])
	}
	if evs[1].Ph != PhInstant || evs[1].Task != "w" || evs[1].Core != 2 || evs[1].Msg != "boom 1" {
		t.Errorf("instant = %+v", evs[1])
	}
	if evs[2].Ph != PhEnd || evs[2].Span != id {
		t.Errorf("end = %+v", evs[2])
	}
}

func TestDumpChromeClosesUnmatchedSpans(t *testing.T) {
	tr := NewTracer(0)
	m := Meta{Task: "w", PID: 7, Core: 1}
	tr.BeginSpan(10, "syscall", m, "read") // never ended
	tr.Emit(50, "fault", m, "last")
	var buf bytes.Buffer
	if err := tr.DumpChrome(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The open span must render as a complete event closed at the last
	// event's timestamp (dur = 40 ps = 4e-5 us).
	if !strings.Contains(out, `"name":"read"`) || !strings.Contains(out, `"ph":"X"`) {
		t.Errorf("unmatched span missing from export:\n%s", out)
	}
	if !strings.Contains(out, `"name":"process_name"`) {
		t.Errorf("missing process metadata:\n%s", out)
	}
}

// TestDumpChromeSurfacesDroppedEvents pins the eviction metadata: a
// capped tracer that dropped events must say so in the Chrome export,
// and an uncapped one must not emit the record at all.
func TestDumpChromeSurfacesDroppedEvents(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		tr.Add(Time(i), "k", "e%d", i)
	}
	var buf bytes.Buffer
	if err := tr.DumpChrome(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"name":"trace_dropped_events"`) || !strings.Contains(out, `"dropped":3`) {
		t.Errorf("export missing the dropped-events metadata:\n%s", out)
	}
	if !strings.Contains(out, `"retained":2`) {
		t.Errorf("export missing the retained count:\n%s", out)
	}

	full := NewTracer(0)
	full.Add(1, "k", "e")
	buf.Reset()
	if err := full.DumpChrome(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "trace_dropped_events") {
		t.Errorf("lossless export claims drops:\n%s", buf.String())
	}
}
