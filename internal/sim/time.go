// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock and resumes exactly one coroutine
// ("proc") at a time, so every run of a simulation is bit-for-bit
// reproducible: there is no real concurrency, only virtual concurrency.
// Procs are backed by goroutines but hand control to each other through
// the engine, simpy-style.
//
// All higher layers of this repository (the simulated kernel, memory
// system, PiP, BLT and ULP layers) are built on this package.
package sim

import "fmt"

// Time is a point in virtual time, measured in picoseconds.
//
// Picosecond resolution is required because some modeled hardware costs
// are sub-nanosecond (e.g. the AArch64 TLS register load is 2.5 ns).
// An int64 of picoseconds covers about 106 days of virtual time, far
// beyond any simulation in this repository.
type Time int64

// Duration is a span of virtual time in picoseconds. Time and Duration
// are distinct types to keep absolute and relative values from mixing
// accidentally.
type Duration int64

// Convenient duration units.
const (
	Picosecond  Duration = 1
	Nanosecond  Duration = 1000 * Picosecond
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Nanoseconds reports t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / 1e3 }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e12 }

// Nanoseconds reports d as a floating-point number of nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / 1e3 }

// Microseconds reports d as a floating-point number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / 1e6 }

// Seconds reports d as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e12 }

// FromNS converts a (possibly fractional) nanosecond count to a Duration.
func FromNS(ns float64) Duration { return Duration(ns * 1e3) }

// FromUS converts a (possibly fractional) microsecond count to a Duration.
func FromUS(us float64) Duration { return Duration(us * 1e6) }

// String formats a Time with an adaptive unit.
func (t Time) String() string { return Duration(t).String() }

// String formats a Duration with an adaptive unit.
func (d Duration) String() string {
	abs := d
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs < Nanosecond:
		return fmt.Sprintf("%dps", int64(d))
	case abs < Microsecond:
		return fmt.Sprintf("%.3gns", d.Nanoseconds())
	case abs < Millisecond:
		return fmt.Sprintf("%.4gus", d.Microseconds())
	case abs < Second:
		return fmt.Sprintf("%.4gms", float64(d)/1e9)
	default:
		return fmt.Sprintf("%.4gs", d.Seconds())
	}
}
