package sim

import "testing"

func nopCallback() {}

// BenchmarkEngineHotPath exercises the three hot scheduling paths in one
// loop: a timer resume (Advance), a callback (After), and a park/unpark
// handoff between two procs.
func BenchmarkEngineHotPath(b *testing.B) {
	e := New()
	var driver, partner *Proc
	partner = e.Spawn("partner", func(p *Proc) {
		for {
			p.Park()
			driver.Unpark(0)
		}
	})
	driver = e.Spawn("driver", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(Nanosecond)
			e.After(Nanosecond, nopCallback)
			partner.Unpark(0)
			p.Park()
		}
		e.Stop()
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	e.Shutdown()
}
