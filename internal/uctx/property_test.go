package uctx

import (
	"fmt"
	"testing"

	"repro/internal/arch"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// TestRandomCarrierMigration steps a set of contexts from randomly
// chosen carrier tasks and checks: each context observes exactly the
// carrier that stepped it, progress counts are exact, and stale
// snapshots are always rejected.
func TestRandomCarrierMigration(t *testing.T) {
	for _, seed := range []uint64{5, 11, 404} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			e := sim.New()
			k := kernel.New(e, arch.Wallaby())
			rng := sim.NewRNG(seed)
			const nCtx = 5
			const steps = 40

			// Each context records the PID of every carrier that ran it.
			seen := make([][]int, nCtx)
			ctxs := make([]*Context, nCtx)
			for i := 0; i < nCtx; i++ {
				i := i
				ctxs[i] = New(fmt.Sprintf("c%d", i), func(c *Context) {
					for {
						seen[i] = append(seen[i], c.Carrier().TGID())
						c.Yield(nil)
					}
				})
			}

			// Driver task with two helper carriers.
			var carriers []*kernel.Task
			expect := make([][]int, nCtx) // PIDs we expect each ctx to record
			driver := k.NewTask("driver", k.NewAddressSpace(), func(task *kernel.Task) int {
				staleRejects := 0
				for s := 0; s < steps; s++ {
					ci := rng.Intn(nCtx)
					carrier := carriers[rng.Intn(len(carriers))]
					// Occasionally try a stale snapshot resume.
					if rng.Intn(4) == 0 && ctxs[ci].Steps() > 0 {
						snap := ctxs[ci].SnapshotNow()
						ctxs[ci].Step(carrierSelf(task, carrier)) // advances epoch
						expect[ci] = append(expect[ci], carrierSelf(task, carrier).TGID())
						if _, err := ctxs[ci].StepFrom(snap, task); err == nil {
							t.Error("stale snapshot accepted")
						} else {
							staleRejects++
						}
						continue
					}
					c := carrierSelf(task, carrier)
					ctxs[ci].Step(c)
					expect[ci] = append(expect[ci], c.TGID())
				}
				if staleRejects == 0 {
					t.Log("no stale-resume attempts hit; seed too tame")
				}
				for _, c := range ctxs {
					c.Kill()
				}
				return 0
			})
			// All stepping happens from the driver task itself: the
			// "carriers" vary logically via distinct kernel tasks only
			// when they are running, which needs them to do the Step.
			// For this property we simplify: the driver is the sole
			// kernel task, so every carrier is the driver. The per-step
			// expectation still checks the exact recording behaviour.
			carriers = []*kernel.Task{driver}
			k.Start(driver, 0)
			if err := e.Run(); err != nil {
				t.Fatalf("engine: %v", err)
			}
			for i := range ctxs {
				if len(seen[i]) != len(expect[i]) {
					t.Errorf("ctx %d ran %d times, want %d", i, len(seen[i]), len(expect[i]))
					continue
				}
				for j := range seen[i] {
					if seen[i][j] != expect[i][j] {
						t.Errorf("ctx %d step %d saw pid %d, want %d", i, j, seen[i][j], expect[i][j])
					}
				}
			}
		})
	}
}

// carrierSelf returns the task that is actually executing (the driver);
// kept as a seam for the multi-carrier variant below.
func carrierSelf(running *kernel.Task, _ *kernel.Task) *kernel.Task { return running }

// TestTwoKernelTasksInterleaveOneContext has two genuine kernel tasks
// alternately stepping one context through a shared turnstile, verifying
// real cross-task migration under the engine's scheduling.
func TestTwoKernelTasksInterleaveOneContext(t *testing.T) {
	e := sim.New()
	k := kernel.New(e, arch.Albireo())
	const rounds = 10
	var pids []int
	c := New("shared", func(c *Context) {
		for {
			pids = append(pids, c.Carrier().TGID())
			c.Yield(nil)
		}
	})
	turn := 0 // whose turn: 0 = a, 1 = b
	mk := func(id int, name string, core int) *kernel.Task {
		task := k.NewTask(name, k.NewAddressSpace(), func(task *kernel.Task) int {
			for i := 0; i < rounds; i++ {
				for turn != id {
					task.SchedYield()
				}
				c.Step(task)
				turn = 1 - id
			}
			return 0
		})
		task.SetAffinity(core)
		return task
	}
	a := mk(0, "a", 0)
	b := mk(1, "b", 0) // same core: interleaving via sched_yield
	k.Start(a, 0)
	k.Start(b, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	c.Kill()
	if len(pids) != 2*rounds {
		t.Fatalf("context ran %d times, want %d", len(pids), 2*rounds)
	}
	for i := 0; i < len(pids)-1; i++ {
		if pids[i] == pids[i+1] {
			t.Fatalf("carrier did not alternate at step %d: %v", i, pids)
		}
	}
}
