// Package uctx implements user contexts (the paper's UCs): lightweight
// execution contexts with fcontext semantics that are *carried* by kernel
// tasks. A context runs only while some kernel task (a KC in paper terms)
// steps it; swapping contexts on a carrier models swap_ctx(), and a
// context saved under one carrier can be resumed by a different carrier —
// the exact capability BLT's couple()/decouple() protocol exercises.
//
// A context is backed by a goroutine, but control transfer is fully
// synchronous: while a context runs, its carrier's goroutine is parked,
// and the context's code executes kernel operations *as the carrier*
// (c.Carrier().Getpid() etc.). Exactly one goroutine is ever active, so
// the engine's determinism is preserved.
//
// The package also reproduces fcontext's sharp edge: a context value is
// single-use. Resuming a stale snapshot — the Fig. 4 "busy stack" hazard
// that trampoline contexts exist to avoid — is detected and reported as
// ErrStaleContext instead of silently corrupting the stack.
package uctx

import (
	"errors"
	"fmt"

	"repro/internal/kernel"
)

// ErrStaleContext is returned by StepFrom when the snapshot does not
// match the context's current saved state: the stack has been run (and
// therefore changed) by another carrier since the snapshot was taken.
// On real hardware this is silent stack corruption; the simulation makes
// it a detectable error.
var ErrStaleContext = errors.New("uctx: stale context snapshot (stack state changed since save)")

// Kind classifies why a Step returned.
type Kind int

// Step event kinds.
const (
	// EvYield: the context parked itself via Yield and attached a tag
	// for its runtime (scheduler) to interpret.
	EvYield Kind = iota
	// EvExit: the context's body returned; the context is dead.
	EvExit
)

// Event is what a carrier receives when the context it stepped yields.
type Event struct {
	Kind Kind
	Tag  interface{} // scheduler-defined payload for EvYield
}

// Body is a context's code.
type Body func(c *Context)

// Context is one user context.
type Context struct {
	name string
	body Body

	resume  chan resumeMsg
	yieldCh chan Event

	started bool
	running bool
	done    bool
	carrier *kernel.Task

	// epoch counts saves (yields): it models the stack state. A
	// snapshot is valid only while the epoch is unchanged.
	epoch uint64

	// Stats.
	steps uint64
}

type resumeMsg struct{ kill bool }

type killSignal struct{}

// New creates a context. Its body does not start until first stepped.
func New(name string, body Body) *Context {
	return &Context{
		name:    name,
		body:    body,
		resume:  make(chan resumeMsg),
		yieldCh: make(chan Event),
	}
}

// Name returns the context's diagnostic name.
func (c *Context) Name() string { return c.name }

// Done reports whether the body has returned.
func (c *Context) Done() bool { return c.done }

// Running reports whether some carrier is currently executing the
// context.
func (c *Context) Running() bool { return c.running }

// Steps reports how many times the context has been stepped.
func (c *Context) Steps() uint64 { return c.steps }

// Carrier returns the kernel task currently carrying the context. Only
// meaningful from within the context's body while running.
func (c *Context) Carrier() *kernel.Task {
	if !c.running {
		panic(fmt.Sprintf("uctx: Carrier() outside a running step of %s", c.name))
	}
	return c.carrier
}

// String implements fmt.Stringer.
func (c *Context) String() string { return "uc:" + c.name }

// Step resumes the context on the given carrier until it yields or
// exits. This is swap_ctx() into the context's most recently saved
// state; Step panics if the context is already running (two carriers
// cannot execute one stack) or done.
func (c *Context) Step(carrier *kernel.Task) Event {
	if c.running {
		panic(fmt.Sprintf("uctx: Step of %s while already running on %s", c.name, c.carrier))
	}
	if c.done {
		panic(fmt.Sprintf("uctx: Step of finished context %s", c.name))
	}
	if carrier == nil {
		panic("uctx: Step with nil carrier")
	}
	c.carrier = carrier
	c.running = true
	c.steps++
	if !c.started {
		c.started = true
		go c.run()
	}
	c.resume <- resumeMsg{}
	ev := <-c.yieldCh
	c.running = false
	c.carrier = nil
	return ev
}

// Snapshot is a saved context value, as produced by swap_ctx's save
// half. It is valid until the context next runs.
type Snapshot struct {
	ctx   *Context
	epoch uint64
}

// SnapshotNow captures the context's current saved state. The context
// must not be running.
func (c *Context) SnapshotNow() Snapshot {
	if c.running {
		panic(fmt.Sprintf("uctx: SnapshotNow of running context %s", c.name))
	}
	return Snapshot{ctx: c, epoch: c.epoch}
}

// StepFrom resumes the context from an explicit snapshot. If the context
// has run since the snapshot was taken, the snapshot's stack image no
// longer matches reality and ErrStaleContext is returned — this is the
// decoupling hazard of the paper's Fig. 4 made visible.
func (c *Context) StepFrom(snap Snapshot, carrier *kernel.Task) (Event, error) {
	if snap.ctx != c {
		return Event{}, errors.New("uctx: snapshot belongs to a different context")
	}
	if snap.epoch != c.epoch {
		return Event{}, fmt.Errorf("%w: %s saved at epoch %d, now %d",
			ErrStaleContext, c.name, snap.epoch, c.epoch)
	}
	return c.Step(carrier), nil
}

func (c *Context) run() {
	msg := <-c.resume
	if msg.kill {
		c.done = true
		c.yieldCh <- Event{Kind: EvExit}
		return
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killSignal); ok {
				c.done = true
				c.yieldCh <- Event{Kind: EvExit}
				return
			}
			panic(r)
		}
	}()
	c.body(c)
	c.done = true
	c.yieldCh <- Event{Kind: EvExit}
}

// Yield parks the context, handing the tagged event to whichever carrier
// stepped it. It returns when the context is next stepped, possibly by a
// different carrier — the paper's context migration between KCs.
// Yielding bumps the stack epoch: previously taken snapshots go stale.
func (c *Context) Yield(tag interface{}) {
	c.assertInBody("Yield")
	c.epoch++
	c.yieldCh <- Event{Kind: EvYield, Tag: tag}
	msg := <-c.resume
	if msg.kill {
		panic(killSignal{})
	}
}

// Kill terminates a parked context (its body unwinds). Needed to reap
// contexts when a simulation is abandoned. No-op on done contexts.
func (c *Context) Kill() {
	if c.done {
		return
	}
	if c.running {
		panic(fmt.Sprintf("uctx: Kill of running context %s", c.name))
	}
	if !c.started {
		c.done = true
		return
	}
	c.resume <- resumeMsg{kill: true}
	<-c.yieldCh
}

func (c *Context) assertInBody(op string) {
	if !c.running {
		panic(fmt.Sprintf("uctx: %s called outside the running body of %s", op, c.name))
	}
}
