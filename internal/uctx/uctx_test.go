package uctx

import (
	"errors"
	"testing"

	"repro/internal/arch"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// withTask runs fn inside a running kernel task and drives the engine.
func withTask(t *testing.T, fn func(task *kernel.Task)) {
	t.Helper()
	e := sim.New()
	k := kernel.New(e, arch.Wallaby())
	task := k.NewTask("carrier", k.NewAddressSpace(), func(task *kernel.Task) int {
		fn(task)
		return 0
	})
	k.Start(task, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
}

func TestStepRunsBodyToYieldAndExit(t *testing.T) {
	withTask(t, func(task *kernel.Task) {
		trace := []string{}
		c := New("uc", func(c *Context) {
			trace = append(trace, "start")
			c.Yield("first")
			trace = append(trace, "resumed")
		})
		ev := c.Step(task)
		if ev.Kind != EvYield || ev.Tag != "first" {
			t.Fatalf("ev = %+v", ev)
		}
		if c.Done() {
			t.Fatal("done after yield")
		}
		ev = c.Step(task)
		if ev.Kind != EvExit {
			t.Fatalf("second ev = %+v", ev)
		}
		if !c.Done() {
			t.Fatal("not done after exit")
		}
		if len(trace) != 2 || trace[1] != "resumed" {
			t.Fatalf("trace = %v", trace)
		}
	})
}

func TestContextRunsKernelOpsAsCarrier(t *testing.T) {
	withTask(t, func(task *kernel.Task) {
		var pid int
		var elapsed sim.Duration
		e := task.Kernel().Engine()
		c := New("uc", func(c *Context) {
			start := e.Now()
			pid = c.Carrier().Getpid()
			elapsed = e.Now().Sub(start)
		})
		c.Step(task)
		if pid != task.TGID() {
			t.Errorf("pid = %d, want %d", pid, task.TGID())
		}
		if ns := elapsed.Nanoseconds(); ns < 66 || ns > 69 {
			t.Errorf("getpid from context = %vns, want ~67", ns)
		}
	})
}

func TestContextMigratesBetweenCarriers(t *testing.T) {
	// The BLT essence: a UC parked under carrier A resumes under
	// carrier B and observes B's kernel identity.
	e := sim.New()
	k := kernel.New(e, arch.Wallaby())
	var pids []int
	c := New("migrant", func(c *Context) {
		pids = append(pids, c.Carrier().Getpid())
		c.Yield(nil)
		pids = append(pids, c.Carrier().Getpid())
	})
	var taskB *kernel.Task
	taskA := k.NewTask("A", k.NewAddressSpace(), func(task *kernel.Task) int {
		c.Step(task)
		return 0
	})
	taskB = k.NewTask("B", k.NewAddressSpace(), func(task *kernel.Task) int {
		task.Nanosleep(10 * sim.Microsecond) // let A step first
		c.Step(task)
		return 0
	})
	taskA.SetAffinity(0)
	taskB.SetAffinity(1)
	k.Start(taskA, 0)
	k.Start(taskB, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if len(pids) != 2 || pids[0] == pids[1] {
		t.Fatalf("pids = %v, want two distinct", pids)
	}
	if pids[0] != taskA.TGID() || pids[1] != taskB.TGID() {
		t.Errorf("pids = %v, want [%d %d]", pids, taskA.TGID(), taskB.TGID())
	}
}

func TestStaleSnapshotDetected(t *testing.T) {
	// Fig. 4: KC0 saves UC0, KC1 runs UC0, KC0's saved context is now
	// stale — resuming it must fail loudly rather than corrupt.
	withTask(t, func(task *kernel.Task) {
		c := New("uc", func(c *Context) {
			c.Yield(nil)
			c.Yield(nil)
		})
		c.Step(task) // run to first yield
		stale := c.SnapshotNow()
		c.Step(task) // "another KC" runs the context: stack changes
		_, err := c.StepFrom(stale, task)
		if !errors.Is(err, ErrStaleContext) {
			t.Fatalf("err = %v, want ErrStaleContext", err)
		}
		// A fresh snapshot works.
		fresh := c.SnapshotNow()
		ev, err := c.StepFrom(fresh, task)
		if err != nil || ev.Kind != EvExit {
			t.Fatalf("fresh StepFrom = %+v, %v", ev, err)
		}
	})
}

func TestStepWhileRunningPanics(t *testing.T) {
	withTask(t, func(task *kernel.Task) {
		var c *Context
		c = New("self", func(c *Context) {
			defer func() {
				if recover() == nil {
					t.Error("re-entrant Step did not panic")
				}
			}()
			c.Step(task)
		})
		c.Step(task)
	})
}

func TestStepDoneContextPanics(t *testing.T) {
	withTask(t, func(task *kernel.Task) {
		c := New("once", func(c *Context) {})
		c.Step(task)
		defer func() {
			if recover() == nil {
				t.Error("Step of done context did not panic")
			}
		}()
		c.Step(task)
	})
}

func TestKillUnwindsParkedContext(t *testing.T) {
	withTask(t, func(task *kernel.Task) {
		cleaned := false
		c := New("victim", func(c *Context) {
			defer func() { cleaned = true }()
			c.Yield(nil)
			t.Error("body continued after kill")
		})
		c.Step(task)
		c.Kill()
		if !c.Done() {
			t.Error("not done after kill")
		}
		if !cleaned {
			t.Error("defers did not run on kill")
		}
		c.Kill() // idempotent on done contexts
	})
}

func TestKillUnstartedContext(t *testing.T) {
	c := New("never", func(c *Context) { panic("must not run") })
	c.Kill()
	if !c.Done() {
		t.Error("unstarted context not done after kill")
	}
}

func TestYieldTagsRoundTrip(t *testing.T) {
	withTask(t, func(task *kernel.Task) {
		type tag struct{ n int }
		c := New("tags", func(c *Context) {
			for i := 0; i < 5; i++ {
				c.Yield(tag{i})
			}
		})
		for i := 0; i < 5; i++ {
			ev := c.Step(task)
			if ev.Kind != EvYield || ev.Tag.(tag).n != i {
				t.Fatalf("step %d: ev = %+v", i, ev)
			}
		}
		if ev := c.Step(task); ev.Kind != EvExit {
			t.Fatalf("final ev = %+v", ev)
		}
	})
}

func TestStepsCounted(t *testing.T) {
	withTask(t, func(task *kernel.Task) {
		c := New("count", func(c *Context) {
			c.Yield(nil)
		})
		c.Step(task)
		c.Step(task)
		if c.Steps() != 2 {
			t.Errorf("Steps = %d, want 2", c.Steps())
		}
	})
}

func TestCarrierPanicsOutsideBody(t *testing.T) {
	c := New("x", func(c *Context) {})
	defer func() {
		if recover() == nil {
			t.Error("Carrier() outside body did not panic")
		}
	}()
	c.Carrier()
}

func TestSnapshotOfOtherContextRejected(t *testing.T) {
	withTask(t, func(task *kernel.Task) {
		a := New("a", func(c *Context) { c.Yield(nil) })
		b := New("b", func(c *Context) { c.Yield(nil) })
		a.Step(task)
		b.Step(task)
		snap := a.SnapshotNow()
		if _, err := b.StepFrom(snap, task); err == nil {
			t.Error("cross-context snapshot accepted")
		}
		a.Kill()
		b.Kill()
	})
}
