// Package sync is the contention lab: the classic mutual-exclusion
// algorithms of "Basic Lock Algorithms in Lightweight Thread
// Environments" (PAPERS.md) built over the simulated kernel's shared
// memory, spin costs and futex layer — test-and-set (TAS), test-and-
// test-and-set (TTAS), ticket, the queue locks MCS and CLH, and a
// glibc-style futex-backed adaptive mutex, plus condition variables
// whose broadcast drains through FUTEX_CMP_REQUEUE instead of a
// thundering herd.
//
// Every lock word lives in simulated memory, so tasks sharing an
// address space (PiP, threads) share the lock. Atomicity follows the
// simulator's interleaving model: tasks can only interleave where
// virtual time advances, so a read-modify-write charges the machine's
// AtomicOp cost *first* and then performs the memory operations at that
// instant with no further charge — the RMW is atomic by construction.
// Spin polls charge SpinNotice (the cross-core flag-observation
// latency), and because the simulated kernel is non-preemptive, every
// spin loop yields the core after a configurable burst: an unbounded
// spin with the holder descheduled would never let the holder run.
//
// With a metrics registry installed on the kernel, each lock feeds an
// acquisition-latency histogram (sync.<name>.acquire_ps) and counters
// for acquisitions and contended acquisitions; without one the hot
// path costs a nil check. A Fairness recorder can be attached to any
// lock to pin handoff order (ticket/MCS/CLH are strictly FIFO at their
// queueing point) or bound bypasses for the unfair locks.
package sync

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// DefaultSpins is the poll-burst length between yields while
// busy-waiting, and the adaptive mutex's spin budget before sleeping.
const DefaultSpins = 16

// Config tunes the spin/yield behaviour shared by all algorithms.
type Config struct {
	// Spins is the number of polls between SchedYields in spin loops
	// (and the adaptive mutex's spin budget before it parks in the
	// kernel). 0 means DefaultSpins.
	Spins int
}

func (c Config) withDefaults() Config {
	if c.Spins <= 0 {
		c.Spins = DefaultSpins
	}
	return c
}

// Lock is one mutual-exclusion algorithm over simulated memory. Locks
// are not reentrant; Unlock must be called by the holder.
type Lock interface {
	// Name returns the algorithm name ("tas", "ticket", ...).
	Name() string
	// Lock acquires the lock, spinning and/or sleeping per algorithm.
	Lock(t *kernel.Task)
	// Unlock releases the lock and hands off per algorithm.
	Unlock(t *kernel.Task)
	// SetFairness attaches a handoff-order recorder (nil detaches).
	SetFairness(f *Fairness)
}

// Names lists the lock algorithms in presentation order.
func Names() []string { return []string{"tas", "ttas", "ticket", "mcs", "clh", "futex"} }

// FIFO reports whether the named algorithm guarantees strict FIFO
// handoff at its queueing point (ticket number, queue-tail swap). The
// explorer's fairness oracle pins handoff order for these and only
// bounds bypasses for the rest.
func FIFO(name string) bool {
	switch name {
	case "ticket", "mcs", "clh":
		return true
	}
	return false
}

// New builds the named lock with its words allocated in the creator's
// address space (all tasks contending for it must share that space).
func New(creator *kernel.Task, name string, cfg Config) (Lock, error) {
	b, err := newBase(creator, name, cfg)
	if err != nil {
		return nil, err
	}
	switch name {
	case "tas":
		return newTAS(b)
	case "ttas":
		return newTTAS(b)
	case "ticket":
		return newTicket(b)
	case "mcs":
		return newMCS(b)
	case "clh":
		return newCLH(b)
	case "futex":
		return newMutex(b)
	}
	return nil, fmt.Errorf("sync: unknown lock algorithm %q (want one of %v)", name, Names())
}

const lockProt = mem.ProtRead | mem.ProtWrite

// lockBase carries what every algorithm needs: the kernel (for costs,
// yields and futexes), the shared address space holding the lock words,
// the spin configuration, and the optional fairness/metrics hooks.
type lockBase struct {
	k     *kernel.Kernel
	space *mem.AddressSpace
	costs *arch.CostModel
	name  string
	cfg   Config
	fair  *Fairness

	hAcq       *metrics.Histogram
	cAcqs      *metrics.Counter
	cContended *metrics.Counter
}

func newBase(creator *kernel.Task, name string, cfg Config) (lockBase, error) {
	b := lockBase{
		k:     creator.Kernel(),
		space: creator.Space(),
		name:  name,
		cfg:   cfg.withDefaults(),
	}
	b.costs = &b.k.Machine().Costs
	if reg := b.k.Metrics(); reg != nil {
		b.hAcq = reg.Histogram("sync." + name + ".acquire_ps")
		b.cAcqs = reg.Counter("sync." + name + ".acquisitions")
		b.cContended = reg.Counter("sync." + name + ".contended")
	}
	return b, nil
}

func (b *lockBase) Name() string            { return b.name }
func (b *lockBase) SetFairness(f *Fairness) { b.fair = f }

// word allocates one zeroed 8-byte lock word. Allocation happens at
// construction (never on the acquisition path), charged to nobody.
func (b *lockBase) word(tag string) (uint64, error) {
	return b.space.Mmap(8, lockProt, "lock."+b.name+"."+tag, true, nil)
}

// load reads a shared word with no charge — callers pay AtomicOp or
// SpinNotice first, making the access atomic at that instant.
func (b *lockBase) load(addr uint64) uint64 {
	v, err := b.space.ReadU64(addr, nil)
	if err != nil {
		panic(fmt.Sprintf("sync: %s: load %#x: %v", b.name, addr, err))
	}
	return v
}

func (b *lockBase) storeRaw(addr, v uint64) {
	if err := b.space.WriteU64(addr, v, nil); err != nil {
		panic(fmt.Sprintf("sync: %s: store %#x: %v", b.name, addr, err))
	}
}

// store is a charged store to a shared word (a release store: the
// charge advances time first, so the new value is visible to any poll
// that runs at or after this instant).
func (b *lockBase) store(t *kernel.Task, addr, v uint64) {
	t.Charge(b.costs.AtomicOp)
	b.storeRaw(addr, v)
}

// swap atomically exchanges the word's value: the AtomicOp charge
// advances time, then read and write happen at one instant.
func (b *lockBase) swap(t *kernel.Task, addr, v uint64) uint64 {
	t.Charge(b.costs.AtomicOp)
	old := b.load(addr)
	b.storeRaw(addr, v)
	return old
}

// cas atomically compares-and-swaps, reporting success.
func (b *lockBase) cas(t *kernel.Task, addr, old, new uint64) bool {
	t.Charge(b.costs.AtomicOp)
	if b.load(addr) != old {
		return false
	}
	b.storeRaw(addr, new)
	return true
}

// fetchAdd atomically adds d, returning the prior value.
func (b *lockBase) fetchAdd(t *kernel.Task, addr, d uint64) uint64 {
	t.Charge(b.costs.AtomicOp)
	old := b.load(addr)
	b.storeRaw(addr, old+d)
	return old
}

// poll is one spin-loop read: the busy-waiting core pays SpinNotice to
// observe a flag another core may have just stored.
func (b *lockBase) poll(t *kernel.Task, addr uint64) uint64 {
	t.Charge(b.costs.SpinNotice)
	return b.load(addr)
}

// relax ends one failed poll: after every cfg.Spins polls the spinner
// yields the core so a descheduled holder (or queue predecessor) can
// run — mandatory under oversubscription on a non-preemptive kernel.
func (b *lockBase) relax(t *kernel.Task, spins *int) {
	*spins++
	if *spins%b.cfg.Spins == 0 {
		t.SchedYield()
	}
}

// noteAcquire publishes one successful acquisition: the latency
// histogram (picoseconds since Lock entry), the counters, and the
// fairness recorder's acquisition event.
func (b *lockBase) noteAcquire(t *kernel.Task, start sim.Time, contended bool) {
	if b.hAcq != nil {
		b.hAcq.Observe(int64(b.k.Engine().Now().Sub(start)))
	}
	if b.cAcqs != nil {
		b.cAcqs.Inc()
		if contended {
			b.cContended.Inc()
		}
	}
	if b.fair != nil {
		b.fair.acquire(t)
	}
}

// noteArrive publishes the algorithm's queueing point to the fairness
// recorder — the instant its handoff order is decided (ticket draw,
// tail swap, first TAS attempt).
func (b *lockBase) noteArrive(t *kernel.Task) {
	if b.fair != nil {
		b.fair.arrive(t)
	}
}

func (b *lockBase) now() sim.Time { return b.k.Engine().Now() }
