package sync

import (
	"fmt"

	"repro/internal/kernel"
)

// Fairness records a lock's handoff history: the order in which tasks
// reached the algorithm's queueing point (ticket draw, queue-tail swap,
// first acquisition attempt) and the order in which they acquired the
// lock. The explorer's fairness oracle replays the two sequences
// against each other — for FIFO algorithms the handoff order must equal
// the queueing order exactly; for the unfair algorithms every waiter's
// bypass count must stay within a bound, so no waiter is passed over
// unboundedly.
//
// Recording is append-only from inside the simulation (deterministic:
// tasks interleave only at virtual-time advances) and costs two slice
// appends per acquisition; a lock without a recorder pays a nil check.
type Fairness struct {
	arrivals []int // PIDs in queueing-point order
	acquires []int // PIDs in acquisition order
}

func (f *Fairness) arrive(t *kernel.Task)  { f.arrivals = append(f.arrivals, t.PID()) }
func (f *Fairness) acquire(t *kernel.Task) { f.acquires = append(f.acquires, t.PID()) }

// Acquisitions reports how many acquisitions were recorded.
func (f *Fairness) Acquisitions() int { return len(f.acquires) }

// Load replaces the history with a synthetic one (oracle self-tests).
func (f *Fairness) Load(arrivals, acquires []int) {
	f.arrivals = append(f.arrivals[:0], arrivals...)
	f.acquires = append(f.acquires[:0], acquires...)
}

// Reset clears the history (between explorer runs reusing a recorder).
func (f *Fairness) Reset() {
	f.arrivals, f.acquires = f.arrivals[:0], f.acquires[:0]
}

// Check verifies the starvation discipline. Each acquisition is matched
// to the acquiring task's earliest unmatched arrival; at that moment it
// "passes over" every still-pending waiter that arrived earlier. With
// fifo set, zero passes are tolerated (handoff order pinned to queueing
// order); otherwise each waiter may be passed at most maxBypass times.
// Every recorded arrival must eventually acquire — a pending arrival
// left at the end is starvation outright.
func (f *Fairness) Check(fifo bool, maxBypass int) error {
	if fifo {
		maxBypass = 0
	}
	type pend struct {
		idx    int // arrival sequence number
		pid    int
		passed int
	}
	var pending []pend
	next := 0 // next arrival not yet considered pending
	for ai, pid := range f.acquires {
		// Arrivals happen strictly before their acquisition, so pull in
		// every arrival recorded up to this acquisition's position...
		// but the two sequences share no global index. Since each
		// arrive() precedes its own acquire(), it is sufficient to pull
		// arrivals until this PID has an unmatched one.
		match := -1
		for i, p := range pending {
			if p.pid == pid {
				match = i
				break
			}
		}
		for match < 0 && next < len(f.arrivals) {
			pending = append(pending, pend{idx: next, pid: f.arrivals[next]})
			if f.arrivals[next] == pid {
				match = len(pending) - 1
			}
			next++
		}
		if match < 0 {
			return fmt.Errorf("sync: fairness: acquisition %d by pid %d has no recorded arrival", ai, pid)
		}
		got := pending[match]
		for i := range pending[:match] {
			pending[i].passed++
			if pending[i].passed > maxBypass {
				if fifo {
					return fmt.Errorf("sync: fairness: FIFO handoff violated: pid %d (arrival %d) acquired before pid %d (arrival %d)",
						pid, got.idx, pending[i].pid, pending[i].idx)
				}
				return fmt.Errorf("sync: fairness: pid %d (arrival %d) passed over %d times (> %d) — starvation",
					pending[i].pid, pending[i].idx, pending[i].passed, maxBypass)
			}
		}
		pending = append(pending[:match], pending[match+1:]...)
	}
	if len(pending) > 0 {
		return fmt.Errorf("sync: fairness: %d waiters arrived but never acquired (first: pid %d)", len(pending), pending[0].pid)
	}
	return nil
}
