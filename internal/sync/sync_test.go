package sync_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/arch"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/sim"
	usync "repro/internal/sync"
)

func newKernel(t *testing.T) (*sim.Engine, *kernel.Kernel) {
	t.Helper()
	e := sim.New()
	return e, kernel.New(e, arch.Wallaby())
}

// hammer runs tasks×ops racy read-compute-write increments under l,
// with tasks pinned round-robin to the first cores cores (cores <
// tasks oversubscribes, forcing spinner yields to matter). Returns the
// final counter.
func hammer(t *testing.T, e *sim.Engine, k *kernel.Kernel, mk func(root *kernel.Task) usync.Lock,
	tasks, ops, cores int) uint64 {
	t.Helper()
	var counter uint64
	root := k.NewTask("root", k.NewAddressSpace(), func(rt *kernel.Task) int {
		l := mk(rt)
		ctr, err := rt.Mmap(8, true)
		if err != nil {
			t.Errorf("mmap: %v", err)
			return 1
		}
		space := rt.Space()
		kids := make([]*kernel.Task, tasks)
		for i := range kids {
			kids[i] = rt.ClonePinned(fmt.Sprintf("w%d", i), kernel.PThreadFlags, i%cores,
				func(t *kernel.Task) int {
					for op := 0; op < ops; op++ {
						l.Lock(t)
						v, _ := space.ReadU64(ctr, nil)
						t.Compute(300 * sim.Nanosecond)
						space.WriteU64(ctr, v+1, nil)
						l.Unlock(t)
						t.Compute(100 * sim.Nanosecond)
					}
					return 0
				})
		}
		for _, kid := range kids {
			rt.Join(kid)
		}
		counter, _ = space.ReadU64(ctr, nil)
		return 0
	})
	k.Start(root, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return counter
}

// TestMutualExclusion drives every algorithm with more contenders than
// cores: lost updates on the racy counter expose any exclusion hole,
// and a missing spin-yield would hang the (non-preemptive) run.
func TestMutualExclusion(t *testing.T) {
	const tasks, ops, cores = 8, 25, 2
	for _, name := range usync.Names() {
		t.Run(name, func(t *testing.T) {
			e, k := newKernel(t)
			got := hammer(t, e, k, func(rt *kernel.Task) usync.Lock {
				l, err := usync.New(rt, name, usync.Config{})
				if err != nil {
					t.Fatalf("New(%s): %v", name, err)
				}
				return l
			}, tasks, ops, cores)
			if want := uint64(tasks * ops); got != want {
				t.Fatalf("%s: counter=%d want %d — mutual exclusion violated", name, got, want)
			}
		})
	}
}

// TestFairness runs the fairness recorder under every algorithm: the
// FIFO locks must hand off exactly in queueing order; the unfair locks
// must still acquire every recorded arrival (no starvation) within a
// generous bypass bound.
func TestFairness(t *testing.T) {
	const tasks, ops, cores = 6, 20, 3
	for _, name := range usync.Names() {
		t.Run(name, func(t *testing.T) {
			e, k := newKernel(t)
			var fair usync.Fairness
			hammer(t, e, k, func(rt *kernel.Task) usync.Lock {
				l, err := usync.New(rt, name, usync.Config{})
				if err != nil {
					t.Fatalf("New(%s): %v", name, err)
				}
				l.SetFairness(&fair)
				return l
			}, tasks, ops, cores)
			if got, want := fair.Acquisitions(), tasks*ops; got != want {
				t.Fatalf("%s: recorded %d acquisitions, want %d", name, got, want)
			}
			if err := fair.Check(usync.FIFO(name), 3*tasks*ops); err != nil {
				t.Fatalf("%s: fairness: %v", name, err)
			}
		})
	}
}

// TestMetrics checks the lock feeds the kernel's metrics registry: the
// acquisition counter is exact and the latency histogram saw every
// acquisition.
func TestMetrics(t *testing.T) {
	const tasks, ops, cores = 4, 10, 2
	e, k := newKernel(t)
	reg := metrics.NewRegistry()
	k.SetMetrics(reg)
	hammer(t, e, k, func(rt *kernel.Task) usync.Lock {
		l, err := usync.New(rt, "ticket", usync.Config{})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return l
	}, tasks, ops, cores)
	if got := reg.Counter("sync.ticket.acquisitions").Value(); got != uint64(tasks*ops) {
		t.Fatalf("acquisitions counter = %d, want %d", got, tasks*ops)
	}
	if got := reg.Histogram("sync.ticket.acquire_ps").Count(); got != uint64(tasks*ops) {
		t.Fatalf("latency histogram count = %d, want %d", got, tasks*ops)
	}
	if reg.Counter("sync.ticket.contended").Value() == 0 {
		t.Fatalf("contended counter = 0 under %d tasks on %d cores", tasks, cores)
	}
}

// TestCondSignal is the classic bounded handoff: consumers wait on a
// predicate, a producer flips it under the mutex and signals once per
// consumer.
func TestCondSignal(t *testing.T) {
	e, k := newKernel(t)
	const consumers = 3
	var served int
	root := k.NewTask("root", k.NewAddressSpace(), func(rt *kernel.Task) int {
		m, err := usync.NewMutex(rt, usync.Config{})
		if err != nil {
			t.Errorf("NewMutex: %v", err)
			return 1
		}
		cv, err := usync.NewCond(rt, m)
		if err != nil {
			t.Errorf("NewCond: %v", err)
			return 1
		}
		tokens := 0
		kids := make([]*kernel.Task, consumers)
		for i := range kids {
			kids[i] = rt.Clone(fmt.Sprintf("c%d", i), kernel.PThreadFlags, func(t *kernel.Task) int {
				m.Lock(t)
				for tokens == 0 {
					cv.Wait(t)
				}
				tokens--
				served++
				m.Unlock(t)
				return 0
			})
		}
		rt.Compute(10 * sim.Microsecond) // let the consumers park
		for i := 0; i < consumers; i++ {
			m.Lock(rt)
			tokens++
			cv.Signal(rt)
			m.Unlock(rt)
			rt.Compute(2 * sim.Microsecond)
		}
		for _, kid := range kids {
			rt.Join(kid)
		}
		return 0
	})
	k.Start(root, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if served != consumers {
		t.Fatalf("served=%d want %d", served, consumers)
	}
}

// TestCondBroadcastRequeues parks a crowd on the condvar and releases
// it with one Broadcast: everyone must resume, and all but one waiter
// must travel the FUTEX_CMP_REQUEUE path onto the mutex word rather
// than being woken into a thundering herd.
func TestCondBroadcastRequeues(t *testing.T) {
	e, k := newKernel(t)
	const waiters = 5
	var resumed int
	root := k.NewTask("root", k.NewAddressSpace(), func(rt *kernel.Task) int {
		m, err := usync.NewMutex(rt, usync.Config{})
		if err != nil {
			t.Errorf("NewMutex: %v", err)
			return 1
		}
		cv, err := usync.NewCond(rt, m)
		if err != nil {
			t.Errorf("NewCond: %v", err)
			return 1
		}
		go_ := false
		kids := make([]*kernel.Task, waiters)
		for i := range kids {
			kids[i] = rt.Clone(fmt.Sprintf("w%d", i), kernel.PThreadFlags, func(t *kernel.Task) int {
				m.Lock(t)
				for !go_ {
					cv.Wait(t)
				}
				resumed++
				m.Unlock(t)
				return 0
			})
		}
		rt.Compute(10 * sim.Microsecond) // let every waiter park on the seq word
		m.Lock(rt)
		go_ = true
		cv.Broadcast(rt)
		m.Unlock(rt)
		for _, kid := range kids {
			rt.Join(kid)
		}
		return 0
	})
	k.Start(root, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if resumed != waiters {
		t.Fatalf("resumed=%d want %d", resumed, waiters)
	}
	st := k.FutexStats()
	if want := uint64(waiters - 1); st.Requeued != want {
		t.Fatalf("Requeued=%d want %d (broadcast must transfer all but one waiter): %+v",
			st.Requeued, want, st)
	}
	if st.Blocked != st.Resumed+st.Timeouts+st.Interrupted {
		t.Fatalf("sleep ledger not conserved: %+v", st)
	}
}

func TestUnknownLock(t *testing.T) {
	e, k := newKernel(t)
	var gotErr error
	root := k.NewTask("root", k.NewAddressSpace(), func(rt *kernel.Task) int {
		_, gotErr = usync.New(rt, "peterson", usync.Config{})
		return 0
	})
	k.Start(root, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if gotErr == nil {
		t.Fatalf("New(peterson) succeeded, want error")
	}
}

// TestFairnessCheck exercises the oracle itself on synthetic histories.
func TestFairnessCheck(t *testing.T) {
	mk := func(arrivals, acquires []int) *usync.Fairness {
		var f usync.Fairness
		f.Load(arrivals, acquires)
		return &f
	}
	if err := mk([]int{1, 2, 3}, []int{1, 2, 3}).Check(true, 0); err != nil {
		t.Fatalf("in-order FIFO flagged: %v", err)
	}
	if err := mk([]int{1, 2}, []int{2, 1}).Check(true, 0); err == nil {
		t.Fatalf("FIFO violation not flagged")
	}
	if err := mk([]int{1, 2}, []int{2, 1}).Check(false, 1); err != nil {
		t.Fatalf("single bypass within bound flagged: %v", err)
	}
	if err := mk([]int{1, 2, 2, 2}, []int{2, 2, 2, 1}).Check(false, 2); err == nil {
		t.Fatalf("unbounded bypass not flagged")
	}
	if err := mk([]int{1, 2}, []int{2}).Check(false, 10); err == nil {
		t.Fatalf("starved waiter (arrival without acquisition) not flagged")
	}
	if !errors.Is(mk([]int{1}, []int{1}).Check(true, 0), nil) {
		t.Fatalf("trivial history flagged")
	}
}
