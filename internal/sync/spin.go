package sync

import "repro/internal/kernel"

// tasLock is the test-and-set spin lock: every acquisition attempt is
// an atomic swap on the single lock word (0 free, 1 held). Maximal
// coherence traffic under contention, no fairness — the baseline of the
// lock-algorithm matrix.
type tasLock struct {
	lockBase
	word64 uint64
}

func newTAS(b lockBase) (Lock, error) {
	l := &tasLock{lockBase: b}
	var err error
	if l.word64, err = b.word("word"); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *tasLock) Lock(t *kernel.Task) {
	start := l.now()
	l.noteArrive(t)
	if l.swap(t, l.word64, 1) == 0 {
		l.noteAcquire(t, start, false)
		return
	}
	spins := 0
	for l.swap(t, l.word64, 1) != 0 {
		l.relax(t, &spins)
	}
	l.noteAcquire(t, start, true)
}

func (l *tasLock) Unlock(t *kernel.Task) {
	l.store(t, l.word64, 0)
}

// ttasLock is test-and-test-and-set: spin on plain polls of the word
// and attempt the atomic swap only after observing it free, keeping the
// word shared (not exclusive) in every spinner's cache between
// handoffs.
type ttasLock struct {
	lockBase
	word64 uint64
}

func newTTAS(b lockBase) (Lock, error) {
	l := &ttasLock{lockBase: b}
	var err error
	if l.word64, err = b.word("word"); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *ttasLock) Lock(t *kernel.Task) {
	start := l.now()
	l.noteArrive(t)
	contended := false
	spins := 0
	for {
		for l.poll(t, l.word64) != 0 {
			contended = true
			l.relax(t, &spins)
		}
		if l.swap(t, l.word64, 1) == 0 {
			l.noteAcquire(t, start, contended)
			return
		}
		contended = true
	}
}

func (l *ttasLock) Unlock(t *kernel.Task) {
	l.store(t, l.word64, 0)
}

// ticketLock is the FIFO ticket lock: a fetch-and-add draws a ticket
// from next, and the holder's unlock advances serving — handoff order
// is exactly ticket order, the first of the lab's fairness-pinned
// algorithms.
type ticketLock struct {
	lockBase
	next    uint64
	serving uint64
}

func newTicket(b lockBase) (Lock, error) {
	l := &ticketLock{lockBase: b}
	var err error
	if l.next, err = b.word("next"); err != nil {
		return nil, err
	}
	if l.serving, err = b.word("serving"); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *ticketLock) Lock(t *kernel.Task) {
	start := l.now()
	my := l.fetchAdd(t, l.next, 1)
	// The ticket draw is the queueing point: handoff order is decided
	// here, so the fairness recorder sees arrivals in ticket order.
	l.noteArrive(t)
	if l.load(l.serving) == my {
		l.noteAcquire(t, start, false)
		return
	}
	spins := 0
	for l.poll(t, l.serving) != my {
		l.relax(t, &spins)
	}
	l.noteAcquire(t, start, true)
}

func (l *ticketLock) Unlock(t *kernel.Task) {
	// Only the holder stores serving, so a charged plain store suffices.
	l.store(t, l.serving, l.load(l.serving)+1)
}
