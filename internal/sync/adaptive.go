package sync

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/sim"
)

// Recovery backoff for futex sleeps when the lost-wake fault site is
// armed: a wake aimed at us may be eaten, so the sleep is re-armed with
// a doubling timeout (latency under fault, never lost liveness) —
// the same discipline the BLT idle slot uses.
const (
	lostWakeBase = 20 * sim.Microsecond
	lostWakeMax  = 2 * sim.Millisecond
)

// Mutex is the futex-backed adaptive mutex (the glibc style): an
// atomic fast path, a bounded TTAS spin for the adaptive phase, then a
// kernel sleep on the lock word. Word states: 0 free, 1 held, 2 held
// with possible sleepers — unlock wakes one sleeper only from state 2,
// and every contended acquisition re-marks the word 2 so a sleeper
// chain drains one wake per unlock.
type Mutex struct {
	lockBase
	word64 uint64
}

func newMutex(b lockBase) (Lock, error) {
	l := &Mutex{lockBase: b}
	var err error
	if l.word64, err = b.word("word"); err != nil {
		return nil, err
	}
	return l, nil
}

// NewMutex builds the adaptive mutex directly (Cond needs the concrete
// type; New("futex") returns the same implementation as a Lock).
func NewMutex(creator *kernel.Task, cfg Config) (*Mutex, error) {
	b, err := newBase(creator, "futex", cfg)
	if err != nil {
		return nil, err
	}
	l, err := newMutex(b)
	if err != nil {
		return nil, err
	}
	return l.(*Mutex), nil
}

func (l *Mutex) Lock(t *kernel.Task) {
	start := l.now()
	l.noteArrive(t)
	if l.cas(t, l.word64, 0, 1) {
		l.noteAcquire(t, start, false)
		return
	}
	// Adaptive phase: spin for the configured budget hoping the holder
	// is mid-critical-section on another core, then give up and sleep.
	for i := 0; i < l.cfg.Spins; i++ {
		if l.poll(t, l.word64) == 0 && l.cas(t, l.word64, 0, 1) {
			l.noteAcquire(t, start, true)
			return
		}
	}
	attempts := 0
	for {
		// Announce (possible) sleepers: acquire only by swapping in 2, so
		// our own unlock passes the wake on to the next sleeper.
		if l.swap(t, l.word64, 2) == 0 {
			l.noteAcquire(t, start, true)
			return
		}
		l.futexSleep(t, &attempts)
	}
}

// futexSleep parks on the lock word while it reads "contended". Every
// return is treated as a (possibly spurious) wake — the caller re-runs
// the swap loop, which is correct under spurious wakes, EINTR, timeouts
// and lost-wake recovery alike. An admission rejection (rlimit on
// waiters or timers) degrades to a yield, keeping progress.
func (l *Mutex) futexSleep(t *kernel.Task, attempts *int) {
	var err error
	if l.k.FaultArmed(t, "futex_lost_wake") {
		d := lostWakeBase << uint(*attempts)
		if d > lostWakeMax {
			d = lostWakeMax
		}
		err = t.FutexWaitTimeout(l.word64, 2, d)
		if err == kernel.ErrTimedOut {
			*attempts++
		} else {
			*attempts = 0
		}
	} else {
		err = t.FutexWait(l.word64, 2)
	}
	switch err {
	case nil, kernel.ErrFutexAgain, kernel.ErrInterrupted, kernel.ErrTimedOut:
	case kernel.ErrFutexWaiterLimit, kernel.ErrTimerLimit:
		t.SchedYield()
	default:
		panic(fmt.Sprintf("sync: futex mutex sleep: %v", err))
	}
}

// lockContended acquires the mutex only through the announced-sleepers
// state: swap in 2, park while held. A waiter woken (or requeued) off a
// condvar MUST reacquire this way — a fast-path cas(0→1) would leave
// the word in state 1, and that unlock would never pass the wake on to
// the other sleepers still parked on the mutex word.
func (l *Mutex) lockContended(t *kernel.Task) {
	start := l.now()
	l.noteArrive(t)
	attempts := 0
	for l.swap(t, l.word64, 2) != 0 {
		l.futexSleep(t, &attempts)
	}
	l.noteAcquire(t, start, true)
}

func (l *Mutex) Unlock(t *kernel.Task) {
	switch l.swap(t, l.word64, 0) {
	case 1:
		// No sleepers announced: nothing to wake.
	case 2:
		t.FutexWake(l.word64, 1)
	default:
		panic("sync: unlock of unlocked futex mutex")
	}
}

// Cond is a condition variable over an adaptive Mutex, with the
// classic futex sequence-word protocol: Wait snapshots the sequence
// under the mutex and sleeps while it is unchanged; Signal bumps it and
// wakes one waiter; Broadcast bumps it, wakes ONE waiter and transfers
// the rest onto the mutex word via FUTEX_CMP_REQUEUE — they wake one
// per unlock as the mutex hands off, instead of stampeding for it all
// at once.
type Cond struct {
	m   *Mutex
	seq uint64
}

// NewCond builds a condition variable bound to m (Wait/Broadcast must
// be called with m held).
func NewCond(creator *kernel.Task, m *Mutex) (*Cond, error) {
	seq, err := m.word("condseq")
	if err != nil {
		return nil, err
	}
	return &Cond{m: m, seq: seq}, nil
}

// Wait atomically releases the mutex and sleeps until a Signal or
// Broadcast (or a spurious wake — callers must re-check their predicate
// in a loop, as with POSIX condvars), then reacquires the mutex.
func (c *Cond) Wait(t *kernel.Task) {
	l := c.m
	t.Charge(l.costs.AtomicOp)
	v := l.load(c.seq)
	l.Unlock(t)
	var err error
	if l.k.FaultArmed(t, "futex_lost_wake") {
		// The wake (or the requeue's eventual mutex wake) may be eaten:
		// bound the sleep and treat a timeout as a spurious wake. The
		// timer survives a requeue by design, so even a sleeper moved to
		// the mutex word gets its recovery timeout.
		err = t.FutexWaitTimeout(c.seq, v, lostWakeMax)
	} else {
		err = t.FutexWait(c.seq, v)
	}
	switch err {
	case nil, kernel.ErrFutexAgain, kernel.ErrInterrupted, kernel.ErrTimedOut,
		kernel.ErrFutexWaiterLimit, kernel.ErrTimerLimit:
	default:
		panic(fmt.Sprintf("sync: cond wait: %v", err))
	}
	l.lockContended(t)
}

// Signal wakes one waiter. May be called with or without the mutex.
func (c *Cond) Signal(t *kernel.Task) {
	c.m.fetchAdd(t, c.seq, 1)
	t.FutexWake(c.seq, 1)
}

// Broadcast wakes every waiter, requeueing all but one onto the mutex
// word. Must be called with the mutex held: the requeue marks the word
// contended (state 2) so each subsequent unlock wakes exactly one moved
// sleeper — the herd serializes through the mutex handoff rather than
// thundering.
func (c *Cond) Broadcast(t *kernel.Task) {
	l := c.m
	l.fetchAdd(t, c.seq, 1)
	t.Charge(l.costs.AtomicOp)
	nv := l.load(c.seq)
	// Holder-owned store: sleepers are about to appear on the mutex
	// word, and only an unlock that observes 2 passes the wake on.
	l.storeRaw(l.word64, 2)
	if _, err := t.FutexRequeue(c.seq, nv, 1, 1<<30, l.word64); err != nil {
		// A racing Signal bumped the sequence between our add and the
		// requeue's recheck: every waiter is already waking; make sure
		// none is left behind.
		t.FutexWake(c.seq, 1<<30)
	}
}
