package sync

import "repro/internal/kernel"

// qnodes hands out one lock-private queue node per contending task,
// allocated in the shared space on first use (never on a later
// acquisition path). Keyed by PID; only ever looked up, never iterated,
// so determinism is unaffected.
type qnodes struct {
	addrs map[int]uint64
	size  uint64
	tag   string
}

func (q *qnodes) node(b *lockBase, t *kernel.Task) uint64 {
	if n, ok := q.addrs[t.PID()]; ok {
		return n
	}
	n, err := b.space.Mmap(q.size, lockProt, "lock."+b.name+"."+q.tag, true, nil)
	if err != nil {
		panic("sync: " + b.name + ": qnode alloc: " + err.Error())
	}
	q.addrs[t.PID()] = n
	return n
}

// mcsLock is the MCS queue lock: waiters swap themselves onto the tail
// and each spins on a flag in its *own* node, which its predecessor
// clears at handoff — one cache line of spinning per waiter, strict
// FIFO in tail-swap order. Node layout: [+0] locked flag, [+8] next
// pointer (a node address, 0 for none).
type mcsLock struct {
	lockBase
	tail  uint64
	nodes qnodes
}

func newMCS(b lockBase) (Lock, error) {
	l := &mcsLock{
		lockBase: b,
		nodes:    qnodes{addrs: make(map[int]uint64), size: 16, tag: "qnode"},
	}
	var err error
	if l.tail, err = b.word("tail"); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *mcsLock) Lock(t *kernel.Task) {
	start := l.now()
	n := l.nodes.node(&l.lockBase, t)
	// Private init before the node is published by the tail swap.
	l.storeRaw(n+8, 0)
	l.storeRaw(n, 1)
	pred := l.swap(t, l.tail, n)
	// The tail swap is the queueing point: handoff is strictly in swap
	// order.
	l.noteArrive(t)
	if pred == 0 {
		l.noteAcquire(t, start, false)
		return
	}
	l.store(t, pred+8, n) // publish ourselves to the predecessor
	spins := 0
	for l.poll(t, n) != 0 {
		l.relax(t, &spins)
	}
	l.noteAcquire(t, start, true)
}

func (l *mcsLock) Unlock(t *kernel.Task) {
	n := l.nodes.node(&l.lockBase, t)
	t.Charge(l.costs.AtomicOp)
	if l.load(n+8) == 0 {
		// No announced successor: try to close the queue; if the CAS
		// fails a new waiter holds the tail and is about to publish
		// itself — wait for the link.
		if l.cas(t, l.tail, n, 0) {
			return
		}
		spins := 0
		for l.poll(t, n+8) == 0 {
			l.relax(t, &spins)
		}
	}
	l.store(t, l.load(n+8), 0) // clear the successor's spin flag
}

// clhLock is the CLH queue lock: an implicit queue where each waiter
// spins on its *predecessor's* node (locked until that task's unlock),
// strict FIFO in tail-swap order. Unlock recycles the predecessor's
// node as the caller's next node — the caller's own node may still be
// watched by its successor.
type clhLock struct {
	lockBase
	tail  uint64
	nodes qnodes
	preds map[int]uint64
}

func newCLH(b lockBase) (Lock, error) {
	l := &clhLock{
		lockBase: b,
		nodes:    qnodes{addrs: make(map[int]uint64), size: 8, tag: "clhnode"},
		preds:    make(map[int]uint64),
	}
	var err error
	if l.tail, err = b.word("tail"); err != nil {
		return nil, err
	}
	// The queue starts with a dummy unlocked node as the tail, so every
	// locker has a predecessor to spin on.
	dummy, err := b.word("dummy")
	if err != nil {
		return nil, err
	}
	l.storeRaw(l.tail, dummy)
	return l, nil
}

func (l *clhLock) Lock(t *kernel.Task) {
	start := l.now()
	n := l.nodes.node(&l.lockBase, t)
	l.storeRaw(n, 1) // private init before the tail swap publishes it
	pred := l.swap(t, l.tail, n)
	l.noteArrive(t)
	l.preds[t.PID()] = pred
	if l.load(pred) == 0 {
		l.noteAcquire(t, start, false)
		return
	}
	spins := 0
	for l.poll(t, pred) != 0 {
		l.relax(t, &spins)
	}
	l.noteAcquire(t, start, true)
}

func (l *clhLock) Unlock(t *kernel.Task) {
	pid := t.PID()
	l.store(t, l.nodes.addrs[pid], 0)
	// Take the predecessor's retired node as ours; our old node stays
	// live for the successor spinning on it.
	l.nodes.addrs[pid] = l.preds[pid]
}
