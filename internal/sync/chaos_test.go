package sync_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/chaos"
	usync "repro/internal/sync"
)

// TestChaosDigestDeterminism runs every lock algorithm under the
// futex-heavy chaos mix on both machines and requires (a) the run
// passes its built-in invariants (liveness, exact counter, claim
// conservation) and (b) a repeat with the same seed yields a
// bit-identical digest.
func TestChaosDigestDeterminism(t *testing.T) {
	seeds := []uint64{1, 0xdecade}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, m := range arch.Machines() {
		for _, name := range usync.Names() {
			for _, seed := range seeds {
				cfg := chaos.LockConfig{Machine: m, Lock: name, Seed: seed}
				d1, err := chaos.RunLock(cfg)
				if err != nil {
					t.Errorf("%s/%s seed=%d: %v", m.Name, name, seed, err)
					continue
				}
				d2, err := chaos.RunLock(cfg)
				if err != nil {
					t.Errorf("%s/%s seed=%d (repeat): %v", m.Name, name, seed, err)
					continue
				}
				if !d1.Equal(d2) {
					t.Errorf("%s/%s seed=%d: digest diverged:\n  run1: %s\n  run2: %s",
						m.Name, name, seed, d1, d2)
				}
				if d1.Injections == 0 {
					t.Logf("%s/%s seed=%d: no faults fired (still a valid determinism check)", m.Name, name, seed)
				}
			}
		}
	}
}

// TestAdaptiveChaosDigestDeterminism is the CI smoke target: the
// futex-backed adaptive mutex (the only algorithm whose slow path
// parks in the kernel) across several seeds, digests pinned.
func TestAdaptiveChaosDigestDeterminism(t *testing.T) {
	for _, seed := range []uint64{7, 21, 1<<40 + 5} {
		cfg := chaos.LockConfig{Lock: "futex", Seed: seed, Tasks: 8, Ops: 30}
		d1, err := chaos.RunLock(cfg)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		d2, err := chaos.RunLock(cfg)
		if err != nil {
			t.Fatalf("seed=%d (repeat): %v", seed, err)
		}
		if !d1.Equal(d2) {
			t.Fatalf("seed=%d: digest diverged:\n  run1: %s\n  run2: %s", seed, d1, d2)
		}
	}
}
