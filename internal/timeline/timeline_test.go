package timeline

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/blt"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/loader"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func TestRecorderBasics(t *testing.T) {
	r := New()
	r.RecordSpan(0, "a", 1, 0, sim.Time(100*sim.Nanosecond))
	r.RecordSpan(1, "b", 2, sim.Time(50*sim.Nanosecond), sim.Time(150*sim.Nanosecond))
	start, end := r.Window()
	if start != 0 || end != sim.Time(150*sim.Nanosecond) {
		t.Errorf("window = [%v,%v]", start, end)
	}
	util := r.CoreUtilization()
	if util[0] < 0.6 || util[0] > 0.7 {
		t.Errorf("core0 util = %v, want ~0.667", util[0])
	}
	res := r.TaskResidency()
	if res["a"].Busy != 100*sim.Nanosecond || !res["a"].Cores[0] {
		t.Errorf("residency a = %+v", res["a"])
	}
	if len(r.Spans()) != 2 {
		t.Errorf("spans = %d", len(r.Spans()))
	}
}

func TestKernelSpansCoverTaskRuntime(t *testing.T) {
	e := sim.New()
	k := kernel.New(e, arch.Wallaby())
	rec := New()
	k.SetTimeline(rec)
	task := k.NewTask("worker", k.NewAddressSpace(), func(task *kernel.Task) int {
		task.Compute(100 * sim.Microsecond)
		task.Nanosleep(50 * sim.Microsecond)
		task.Compute(30 * sim.Microsecond)
		return 0
	})
	task.SetAffinity(2)
	k.Start(task, 0)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// The task must appear on core 2 with roughly its busy time: two
	// compute bursts plus small syscall/exit costs, but NOT the sleep.
	res := rec.TaskResidency()
	got := res["worker"].Busy
	if got < 130*sim.Microsecond || got > 145*sim.Microsecond {
		t.Errorf("recorded busy = %v, want ~134us", got)
	}
	if !res["worker"].Cores[2] || len(res["worker"].Cores) != 1 {
		t.Errorf("cores = %v", res["worker"].Cores)
	}
	// Spans never overlap on a core.
	spans := rec.Spans()
	for i := 0; i < len(spans); i++ {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if a.Core == b.Core && a.Start < b.End && b.Start < a.End {
				t.Errorf("overlapping spans on core %d: %+v vs %+v", a.Core, a, b)
			}
		}
	}
}

func TestTimelineShowsFig6Partitioning(t *testing.T) {
	// Under the Fig. 6 deployment, scheduler tasks live on the program
	// cores and the ULP KCs appear on the syscall cores.
	e := sim.New()
	k := kernel.New(e, arch.Wallaby())
	rec := New()
	k.SetTimeline(rec)
	prog := &loader.Image{
		Name: "w", PIE: true, TextSize: 4096,
		Symbols: []loader.Symbol{{Name: "x", Size: 8}},
		Main: func(envI interface{}) int {
			env := envI.(*core.Env)
			env.Decouple()
			for i := 0; i < 3; i++ {
				env.Getpid()
				env.Compute(5 * sim.Microsecond)
				env.Yield()
			}
			env.Couple()
			return 0
		},
	}
	core.Boot(k, core.Config{
		ProgCores:    []int{0, 1},
		SyscallCores: []int{2, 3},
		Idle:         blt.Blocking,
	}, func(rt *core.Runtime) int {
		for i := 0; i < 4; i++ {
			rt.Spawn(prog, core.SpawnOpts{Scheduler: -1})
		}
		rt.WaitAll()
		rt.Shutdown()
		return 0
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	res := rec.TaskResidency()
	for name, r := range res {
		if strings.HasPrefix(name, "sched.") {
			for c := range r.Cores {
				if c > 1 {
					t.Errorf("scheduler %s ran on syscall core %d", name, c)
				}
			}
		}
		if strings.HasPrefix(name, "kc.") {
			for c := range r.Cores {
				if c < 2 {
					t.Errorf("original KC %s ran on program core %d", name, c)
				}
			}
		}
	}
	var buf bytes.Buffer
	rec.Report(&buf)
	if !strings.Contains(buf.String(), "core 0") {
		t.Errorf("report missing cores:\n%s", buf.String())
	}
	buf.Reset()
	rec.Gantt(&buf, 60)
	out := buf.String()
	if !strings.Contains(out, "core 0") || !strings.Contains(out, "│") {
		t.Errorf("gantt malformed:\n%s", out)
	}
}

// TestSpansMatchMetricsUnderStealingAndPreemption pins the agreement
// between the two observability planes under the most migration-heavy
// configuration: work-stealing schedulers plus a preemption quantum
// shorter than the compute bursts. Per core, spans must never overlap
// and must sum exactly to the kernel.core.N.busy_ps gauge the metrics
// plane publishes — both derive from the same Charge stream, so any
// divergence is double-counting in one of them.
func TestSpansMatchMetricsUnderStealingAndPreemption(t *testing.T) {
	e := sim.New()
	k := kernel.New(e, arch.Wallaby())
	rec := New()
	k.SetTimeline(rec)
	reg := metrics.NewRegistry()
	k.SetMetrics(reg)
	prog := &loader.Image{
		Name: "w", PIE: true, TextSize: 4096,
		Symbols: []loader.Symbol{{Name: "x", Size: 8}},
		Main: func(envI interface{}) int {
			env := envI.(*core.Env)
			env.Decouple()
			// Rank-skewed bursts, each several quanta long, so stealing
			// rebalances and preemption splits the bursts.
			for i := 0; i < 3; i++ {
				env.Compute(sim.Duration(20+10*env.U.Rank) * sim.Microsecond)
				env.Getpid()
				env.Yield()
			}
			env.Couple()
			return 0
		},
	}
	core.Boot(k, core.Config{
		ProgCores:      []int{0, 1},
		SyscallCores:   []int{2, 3},
		Idle:           blt.Blocking,
		WorkStealing:   true,
		PreemptQuantum: 5 * sim.Microsecond,
	}, func(rt *core.Runtime) int {
		// Pile every ULP onto scheduler 0: only stealing moves work.
		for i := 0; i < 6; i++ {
			if _, err := rt.Spawn(prog, core.SpawnOpts{Scheduler: 0}); err != nil {
				t.Error(err)
				return 1
			}
		}
		rt.WaitAll()
		rt.Shutdown()
		return 0
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	k.FinalizeMetrics()

	spans := rec.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	perCore := map[int][]Span{}
	busy := map[int]sim.Duration{}
	for _, s := range spans {
		perCore[s.Core] = append(perCore[s.Core], s)
		busy[s.Core] += s.Dur()
	}
	for c, ss := range perCore {
		for i := 0; i < len(ss); i++ {
			for j := i + 1; j < len(ss); j++ {
				a, b := ss[i], ss[j]
				if a.Start < b.End && b.Start < a.End {
					t.Fatalf("overlapping spans on core %d: %+v vs %+v", c, a, b)
				}
			}
		}
		want := reg.Gauge(fmt.Sprintf("kernel.core.%d.busy_ps", c)).Value()
		if int64(busy[c]) != want {
			t.Errorf("core %d: span sum %d ps, metrics busy %d ps", c, int64(busy[c]), want)
		}
	}
}

func TestEmptyTimeline(t *testing.T) {
	r := New()
	var buf bytes.Buffer
	r.Gantt(&buf, 40)
	if !strings.Contains(buf.String(), "empty") {
		t.Error("empty gantt")
	}
	if u := r.CoreUtilization(); len(u) != 0 {
		t.Error("utilization of empty recorder")
	}
}
