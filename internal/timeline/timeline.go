// Package timeline records and analyzes scheduling timelines of the
// simulated machine: who occupied each core when. It implements the
// kernel's TimelineRecorder hook and renders per-core utilization
// reports, per-task residency summaries and an ASCII Gantt chart —
// making the Fig. 6 partitioning (program cores vs system-call cores)
// directly visible.
package timeline

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Span is one contiguous occupancy of a core by a task.
type Span struct {
	Core       int
	Task       string
	PID        int
	Start, End sim.Time
}

// Dur reports the span length.
func (s Span) Dur() sim.Duration { return s.End.Sub(s.Start) }

// Recorder accumulates spans; install with kernel.SetTimeline.
type Recorder struct {
	spans []Span
}

// New creates an empty recorder.
func New() *Recorder { return &Recorder{} }

// RecordSpan implements kernel.TimelineRecorder.
func (r *Recorder) RecordSpan(core int, task string, pid int, start, end sim.Time) {
	r.spans = append(r.spans, Span{Core: core, Task: task, PID: pid, Start: start, End: end})
}

// Spans returns all recorded spans in record order.
func (r *Recorder) Spans() []Span {
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// Window reports the earliest start and latest end across all spans.
func (r *Recorder) Window() (start, end sim.Time) {
	if len(r.spans) == 0 {
		return 0, 0
	}
	start, end = r.spans[0].Start, r.spans[0].End
	for _, s := range r.spans {
		if s.Start < start {
			start = s.Start
		}
		if s.End > end {
			end = s.End
		}
	}
	return start, end
}

// CoreUtilization reports each core's busy fraction of the window.
func (r *Recorder) CoreUtilization() map[int]float64 {
	start, end := r.Window()
	total := float64(end.Sub(start))
	out := map[int]float64{}
	if total <= 0 {
		return out
	}
	for _, s := range r.spans {
		out[s.Core] += float64(s.Dur()) / total
	}
	return out
}

// TaskResidency reports each task's total on-CPU time and the set of
// cores it ran on.
func (r *Recorder) TaskResidency() map[string]struct {
	Busy  sim.Duration
	Cores map[int]bool
} {
	out := map[string]struct {
		Busy  sim.Duration
		Cores map[int]bool
	}{}
	for _, s := range r.spans {
		e := out[s.Task]
		if e.Cores == nil {
			e.Cores = map[int]bool{}
		}
		e.Busy += s.Dur()
		e.Cores[s.Core] = true
		out[s.Task] = e
	}
	return out
}

// Report writes a utilization and residency summary.
func (r *Recorder) Report(w io.Writer) {
	start, end := r.Window()
	fmt.Fprintf(w, "timeline: %d spans over [%v, %v]\n", len(r.spans), start, end)
	util := r.CoreUtilization()
	cores := make([]int, 0, len(util))
	for c := range util {
		cores = append(cores, c)
	}
	sort.Ints(cores)
	for _, c := range cores {
		fmt.Fprintf(w, "  core %-3d %6.1f%% busy\n", c, util[c]*100)
	}
	res := r.TaskResidency()
	names := make([]string, 0, len(res))
	for n := range res {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return res[names[i]].Busy > res[names[j]].Busy })
	for _, n := range names {
		e := res[n]
		cs := make([]int, 0, len(e.Cores))
		for c := range e.Cores {
			cs = append(cs, c)
		}
		sort.Ints(cs)
		fmt.Fprintf(w, "  task %-18s %12v on cores %v\n", n, e.Busy, cs)
	}
}

// Gantt renders an ASCII chart: one row per core, time binned into width
// columns; each cell shows the first letter of the task that occupied
// the bin longest ('.' = idle).
func (r *Recorder) Gantt(w io.Writer, width int) {
	start, end := r.Window()
	total := end.Sub(start)
	if total <= 0 || width <= 0 {
		fmt.Fprintln(w, "(empty timeline)")
		return
	}
	perCore := map[int][]Span{}
	maxCore := 0
	for _, s := range r.spans {
		perCore[s.Core] = append(perCore[s.Core], s)
		if s.Core > maxCore {
			maxCore = s.Core
		}
	}
	binDur := float64(total) / float64(width)
	for core := 0; core <= maxCore; core++ {
		spans := perCore[core]
		if spans == nil {
			continue
		}
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		// For each bin, pick the task with the largest overlap.
		for bin := 0; bin < width; bin++ {
			binStart := start.Add(sim.Duration(float64(bin) * binDur))
			binEnd := start.Add(sim.Duration(float64(bin+1) * binDur))
			var best sim.Duration
			var label byte = '.'
			for _, s := range spans {
				lo, hi := s.Start, s.End
				if lo < binStart {
					lo = binStart
				}
				if hi > binEnd {
					hi = binEnd
				}
				if hi > lo && hi.Sub(lo) > best {
					best = hi.Sub(lo)
					label = s.Task[0]
				}
			}
			row[bin] = label
		}
		fmt.Fprintf(w, "core %-3d │%s│\n", core, string(row))
	}
	fmt.Fprintf(w, "          %v%s%v\n", start, strings.Repeat(" ", max(0, width-18)), end)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
