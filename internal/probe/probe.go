// Package probe is the deterministic programmable probe plane of the
// simulated ULP-PiP stack — the userspace analogue of eBPF/bpftime
// attach points. The kernel, BLT scheduler, futex table and runtime
// layers fire named attach points (Point) at every site they previously
// wired separately for fault injection, metrics and tracing; small
// user-supplied Go programs (Func) attach to those points to observe,
// aggregate into per-probe registries, veto (return an error to the
// caller, generalizing fault injection), or delay (charge virtual time,
// generalizing sched-delay faults).
//
// Determinism rules:
//
//   - A program must derive its decisions only from the Ctx it is handed
//     (virtual time, task identity, site data) and its own state — never
//     from wall clocks, map iteration order or goroutine identity. Under
//     that contract, same seed + same probes ⇒ same schedule, so chaos
//     digests and explorer traces stay replayable.
//   - Every program attached to a point runs on every fire, even after an
//     earlier program produced a verdict — mirroring the fault plane's
//     stream-advancement invariant (a seeded program's RNG consumption
//     must not depend on what other programs decided).
//   - Observation-only programs (zero Verdict) are schedule-invisible:
//     attaching them changes no event order, which the chaos digest
//     equality tests pin.
//
// Cost contract: an unattached point costs one nil/length check at the
// fire site and allocates nothing — pinned by the kernel/sim alloc
// regression tests. Fire-time contexts are recycled from a small
// fixed-depth pool, so dispatch itself is allocation-free too.
package probe

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Point names one attach point. The zero value is invalid.
type Point uint8

// Attach points. The fault/metrics/trace columns of the old wiring map
// onto these as three stock programs (see internal/kernel).
const (
	pInvalid Point = iota

	// PSyscallEnter fires when a system-call begins, before its cost is
	// charged. Site = syscall name. Verdict.Delay is charged to the task
	// (per-tenant throttling); Verdict.Err is ignored here — syscall
	// vetoes go through PFaultSite, which has error plumbing at every
	// fallible site.
	PSyscallEnter
	// PSyscallExit fires when a system-call completes. Site = syscall
	// name, Dur = wall virtual latency (blocking time included).
	PSyscallExit
	// PSchedDispatch fires when the kernel dispatches a task onto a CPU
	// core. Val = the core's ready-queue depth at dispatch.
	PSchedDispatch
	// PSchedSwitch fires on a kernel-level context switch.
	PSchedSwitch
	// PSchedULT fires when a BLT scheduler dispatches a user context.
	// Verdict.Delay is charged to the carrier before the swap.
	PSchedULT
	// PSchedSteal fires when a BLT scheduler steals a UC from a sibling.
	PSchedSteal
	// PFutexWait fires when a task enters futex_wait. Addr = word.
	PFutexWait
	// PFutexWake fires on a futex wake call. Addr = word, Val = slots
	// requested.
	PFutexWake
	// PFutexWoken fires after a wake/requeue delivered wakeups. Val =
	// waiters actually made runnable.
	PFutexWoken
	// PFutexRequeue fires after FUTEX_CMP_REQUEUE moved waiters. Val =
	// waiters moved to the second word.
	PFutexRequeue
	// PFutexTimeout fires when a timed futex wait ends by timeout.
	PFutexTimeout
	// PFutexTable fires when the futex table gains or drops a word entry.
	// Val = live entries after the change.
	PFutexTable
	// PTimerFire fires when a kernel timer callback runs. Site = "futex"
	// or "sleep".
	PTimerFire
	// PTaskSpawn fires when clone creates a task. Task = child, Waiter =
	// creating task.
	PTaskSpawn
	// PTaskExit fires when a task terminates. Val = exit status.
	PTaskExit
	// PSignal fires when a signal is delivered. Val = signal number,
	// Task = receiving task.
	PSignal
	// PTLSLoad fires when a task loads its TLS register. Dur = the
	// machine's TLS-load cost.
	PTLSLoad
	// PFaultSite fires at a fault-injection decision point. Site = the
	// fault site name ("open", "futex_lost_wake", "kc_kill", ...). The
	// combined verdict decides: Err fails the syscall, Drop kills the
	// task / drops the wake / fires the spurious wakeup, Delay adds
	// latency (sched_delay), Scale multiplies I/O cost (fs_slow).
	PFaultSite
	// PFaultArmed queries whether a site could ever fire for the task,
	// without consuming randomness (Verdict.Drop = armed). Recovery
	// paths use it to decide whether to arm timed waits.
	PFaultArmed
	// PFaultFired observes an injection that fired (after the PFaultSite
	// verdict was applied). Site, Err and the legacy message are set.
	PFaultFired
	// PTraceLog is an untyped log line. Site = kind ("kernel", "blt"),
	// Format/Args = the deferred message.
	PTraceLog
	// PTraceInstant is a typed instant event attributed to Task. Site =
	// kind ("fault", "signal", "supervise", ...).
	PTraceInstant
	// PSpanBegin opens a duration span. Site = category ("syscall",
	// "blt.span"), Format = the span name. The combined Verdict.Span is
	// the id to close with.
	PSpanBegin
	// PSpanEnd closes the span with id Ctx.Span.
	PSpanEnd
	// PCouple observes a completed BLT couple handshake. Dur = latency.
	PCouple
	// PDecouple observes a completed BLT decouple handshake. Dur =
	// latency.
	PDecouple

	// NumPoints is the number of valid points plus one (index bound).
	NumPoints
)

var pointNames = [NumPoints]string{
	PSyscallEnter:  "syscall:enter",
	PSyscallExit:   "syscall:exit",
	PSchedDispatch: "sched:dispatch",
	PSchedSwitch:   "sched:switch",
	PSchedULT:      "sched:ult",
	PSchedSteal:    "sched:steal",
	PFutexWait:     "futex:wait",
	PFutexWake:     "futex:wake",
	PFutexWoken:    "futex:woken",
	PFutexRequeue:  "futex:requeue",
	PFutexTimeout:  "futex:timeout",
	PFutexTable:    "futex:table",
	PTimerFire:     "timer:fire",
	PTaskSpawn:     "task:spawn",
	PTaskExit:      "task:exit",
	PSignal:        "signal:deliver",
	PTLSLoad:       "tls:load",
	PFaultSite:     "fault:site",
	PFaultArmed:    "fault:armed",
	PFaultFired:    "fault:fired",
	PTraceLog:      "trace:log",
	PTraceInstant:  "trace:instant",
	PSpanBegin:     "trace:span-begin",
	PSpanEnd:       "trace:span-end",
	PCouple:        "blt:couple",
	PDecouple:      "blt:decouple",
}

// String returns the point's attach-point name (e.g. "syscall:enter").
func (p Point) String() string {
	if p < NumPoints && pointNames[p] != "" {
		return pointNames[p]
	}
	return fmt.Sprintf("point(%d)", uint8(p))
}

// PointByName resolves an attach-point name; zero Point when unknown.
func PointByName(name string) Point {
	for p := Point(1); p < NumPoints; p++ {
		if pointNames[p] == name {
			return p
		}
	}
	return pInvalid
}

// Points lists every attach point in declaration order.
func Points() []Point {
	out := make([]Point, 0, NumPoints-1)
	for p := Point(1); p < NumPoints; p++ {
		out = append(out, p)
	}
	return out
}

// Task is the task identity a probe sees — satisfied by *kernel.Task
// without the probe layer importing the kernel.
type Task interface {
	Name() string
	PID() int
	TGID() int
	// CoreID reports the CPU core the task currently occupies, -1 when
	// off-CPU.
	CoreID() int
}

// Ctx is the context handed to probe programs at a fire. Fields beyond
// Point and Now are set per the firing point's documentation; the rest
// are zero. Contexts are recycled — programs must not retain them past
// the call.
type Ctx struct {
	Point Point
	Now   sim.Time

	// Site qualifies the point: syscall name, fault site, trace kind or
	// span category, timer kind.
	Site string
	// Name overrides the display name for trace metadata (BLT spans are
	// attributed to the BLT, not its carrier task).
	Name string

	Task   Task // primary task (nil at sites with no task context)
	Waiter Task // secondary party (wake target, clone creator)

	Addr uint64       // futex word
	Val  int64        // point-specific count (depth, slots, status, signo)
	Dur  sim.Duration // point-specific duration (latency, cost)
	Err  error        // the injected error at PFaultFired
	Span uint64       // span id at PSpanEnd

	// Format/Args carry the legacy trace message, formatted lazily by
	// whoever renders it (the stock trace probe defers to the tracer
	// ring's deferred rendering).
	Format string
	Args   []interface{}
}

// Verdict is a program's decision at a fire. The zero Verdict observes
// without interfering. Verdicts from all programs on a point combine:
// first non-nil Err wins, Delays add, Drop ORs, Scales multiply, last
// non-zero Span wins.
type Verdict struct {
	Err   error
	Delay sim.Duration
	Drop  bool
	Scale float64
	Span  uint64
}

// Func is one probe program. It runs synchronously at the fire site, in
// deterministic virtual time.
type Func func(*Ctx) Verdict

// Program is one attached probe: a Func plus the points it watches and a
// lazily created private metrics registry for aggregation.
type Program struct {
	name   string
	points []Point
	fn     Func
	agg    *metrics.Registry
}

// Name returns the program's attach name.
func (p *Program) Name() string { return p.name }

// PointsAttached returns the points the program is attached to.
func (p *Program) PointsAttached() []Point {
	out := make([]Point, len(p.points))
	copy(out, p.points)
	return out
}

// Agg returns the program's private aggregation registry, creating it on
// first use. Stock probes (SLO, count) publish their histograms here;
// ulpsim dumps it after the run.
func (p *Program) Agg() *metrics.Registry {
	if p.agg == nil {
		p.agg = metrics.NewRegistry()
	}
	return p.agg
}

// fireDepth bounds reentrant fires (a program whose side effects reach
// another attach point). Deeper nesting recycles the oldest context.
const fireDepth = 4

// Registry is one machine's set of attached probe programs, indexed by
// point. The zero/nil Registry is valid and permanently unattached.
type Registry struct {
	progs [NumPoints][]*Program
	all   []*Program

	ctxs  [fireDepth]Ctx
	depth int
}

// NewRegistry creates an empty probe registry.
func NewRegistry() *Registry { return &Registry{} }

// Attached reports whether any program watches point p — the one check
// an unattached fire site pays.
func (r *Registry) Attached(p Point) bool {
	return r != nil && len(r.progs[p]) > 0
}

// Begin leases a fire context for point p at virtual time now. The
// caller fills the point-specific fields and passes it to Fire exactly
// once. Begin/Fire pairs may nest up to the recycle depth.
func (r *Registry) Begin(p Point, now sim.Time) *Ctx {
	c := &r.ctxs[r.depth%fireDepth]
	r.depth++
	*c = Ctx{Point: p, Now: now}
	return c
}

// Fire runs every program attached to c.Point and returns the combined
// verdict. All programs run regardless of earlier verdicts (the
// stream-advancement invariant).
func (r *Registry) Fire(c *Ctx) Verdict {
	// The lease is released only after every program ran: a nested
	// Begin from inside a program must not recycle the live context.
	defer func() { r.depth-- }()
	var v Verdict
	for _, pr := range r.progs[c.Point] {
		w := pr.fn(c)
		if v.Err == nil {
			v.Err = w.Err
		}
		v.Delay += w.Delay
		v.Drop = v.Drop || w.Drop
		if w.Scale != 0 {
			if v.Scale == 0 {
				v.Scale = w.Scale
			} else {
				v.Scale *= w.Scale
			}
		}
		if w.Span != 0 {
			v.Span = w.Span
		}
	}
	return v
}

// Attach registers fn under name at the given points and returns the
// program handle. Attach before the simulation runs: attaching
// mid-flight is deterministic but changes the schedule from that point
// on if the program interferes.
func (r *Registry) Attach(name string, fn Func, points ...Point) *Program {
	pr := &Program{name: name, fn: fn}
	for _, p := range points {
		if p == pInvalid || p >= NumPoints {
			panic(fmt.Sprintf("probe: attach %q to invalid point %d", name, p))
		}
		pr.points = append(pr.points, p)
		r.progs[p] = append(r.progs[p], pr)
	}
	r.all = append(r.all, pr)
	return pr
}

// Detach removes a program from every point it is attached to.
func (r *Registry) Detach(pr *Program) {
	if pr == nil {
		return
	}
	for _, p := range pr.points {
		list := r.progs[p]
		for i, q := range list {
			if q == pr {
				r.progs[p] = append(list[:i], list[i+1:]...)
				break
			}
		}
	}
	for i, q := range r.all {
		if q == pr {
			r.all = append(r.all[:i], r.all[i+1:]...)
			break
		}
	}
	pr.points = nil
}

// Programs returns the attached programs in attach order.
func (r *Registry) Programs() []*Program {
	out := make([]*Program, len(r.all))
	copy(out, r.all)
	return out
}
