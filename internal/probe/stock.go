package probe

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// This file holds the user-facing stock probes — the programs `ulpsim
// -probe` can attach by name — and the spec syntax that configures them.
// (The fault/metrics/trace planes are also stock probes, but they are
// owned by internal/kernel and attached through SetFaultPlane /
// SetMetrics / the engine's tracer hook, since they shim pre-existing
// kernel APIs.)
//
// Spec syntax mirrors -faults: semicolon-separated probes, each
// "name:key=val,key=val,...". Example:
//
//	throttle:task=t2.,interval_us=50,burst=4;slo:syscall=open,p99_us=800

// Spec is one parsed -probe entry.
type Spec struct {
	// Name selects the stock probe: "throttle", "slo" or "count".
	Name string
	// Task restricts the probe to tasks whose name starts with this
	// prefix; empty matches every task.
	Task string
	// Syscall restricts syscall-point probes to one syscall name; empty
	// matches all.
	Syscall string
	// IntervalUS is the throttle refill interval: one token per interval
	// of virtual time.
	IntervalUS uint64
	// Burst is the throttle bucket depth (default 1).
	Burst uint64
	// P99US is the SLO bound on the p99 latency, in microseconds.
	P99US uint64
	// Points are the attach points of a count probe.
	Points []Point

	raw string
}

// String renders the spec in the -probe flag syntax (parseable back).
func (s Spec) String() string { return s.raw }

// stockNames lists the -probe stock probes with their parameters, for
// -probe-list.
var stockNames = []string{
	"throttle  task=<prefix> interval_us=<n> [burst=<n>] [syscall=<name>]  — per-tenant syscall throttle at syscall:enter (deterministic virtual-time token bucket; refused calls are delayed, never failed)",
	"slo       p99_us=<n> [syscall=<name>] [task=<prefix>]                 — latency SLO checker at syscall:exit; aggregates exact log2 histograms and fails the run when p99 exceeds the bound",
	"count     points=<p1+p2+...> [task=<prefix>]                          — fire counter at arbitrary attach points, aggregated into the probe's private registry",
}

// ListStock renders the -probe-list text: every attach point, then every
// stock probe spec.
func ListStock() string {
	var b strings.Builder
	b.WriteString("attach points:\n")
	for _, p := range Points() {
		fmt.Fprintf(&b, "  %s\n", p)
	}
	b.WriteString("\nstock probes (-probe \"name:key=val,...;...\"):\n")
	for _, s := range stockNames {
		fmt.Fprintf(&b, "  %s\n", s)
	}
	return b.String()
}

// SpecsString renders specs back in the -probe flag syntax.
func SpecsString(specs []Spec) string {
	var b strings.Builder
	for i, sp := range specs {
		if i > 0 {
			b.WriteString(";")
		}
		b.WriteString(sp.String())
	}
	return b.String()
}

// ParseSpecs parses the -probe flag syntax.
func ParseSpecs(s string) ([]Spec, error) {
	var specs []Spec
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, opts, _ := strings.Cut(part, ":")
		name = strings.TrimSpace(name)
		sp := Spec{Name: name, Burst: 1, raw: part}
		switch name {
		case "throttle", "slo", "count":
		default:
			return nil, fmt.Errorf("probe: unknown stock probe %q (valid: throttle slo count)", name)
		}
		if opts != "" {
			for _, kv := range strings.Split(opts, ",") {
				key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
				if !ok {
					return nil, fmt.Errorf("probe: bad option %q in spec %q (want key=val)", kv, part)
				}
				if err := sp.setOption(key, val); err != nil {
					return nil, fmt.Errorf("probe: spec %q: %w", part, err)
				}
			}
		}
		if err := sp.validate(); err != nil {
			return nil, fmt.Errorf("probe: spec %q: %w", part, err)
		}
		specs = append(specs, sp)
	}
	return specs, nil
}

func (s *Spec) setOption(key, val string) error {
	switch key {
	case "task":
		s.Task = val
	case "syscall":
		s.Syscall = val
	case "interval_us":
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil || n == 0 {
			return fmt.Errorf("interval_us must be a positive integer, got %q", val)
		}
		s.IntervalUS = n
	case "burst":
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil || n == 0 {
			return fmt.Errorf("burst must be a positive integer, got %q", val)
		}
		s.Burst = n
	case "p99_us":
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil || n == 0 {
			return fmt.Errorf("p99_us must be a positive integer, got %q", val)
		}
		s.P99US = n
	case "points":
		for _, name := range strings.Split(val, "+") {
			p := PointByName(strings.TrimSpace(name))
			if p == pInvalid {
				return fmt.Errorf("unknown attach point %q", name)
			}
			s.Points = append(s.Points, p)
		}
	default:
		return fmt.Errorf("unknown option %q", key)
	}
	return nil
}

func (s *Spec) validate() error {
	switch s.Name {
	case "throttle":
		if s.IntervalUS == 0 {
			return fmt.Errorf("throttle needs interval_us")
		}
	case "slo":
		if s.P99US == 0 {
			return fmt.Errorf("slo needs p99_us")
		}
	case "count":
		if len(s.Points) == 0 {
			return fmt.Errorf("count needs points")
		}
	}
	return nil
}

// Attachment is one spec attached to a registry: the program handle plus
// an optional post-run check (the SLO oracle).
type Attachment struct {
	Spec Spec
	Prog *Program
	// Check, when non-nil, validates the probe's aggregate after the run
	// (nil error = within bounds). Chaos and scale harnesses treat a
	// failed check like any other invariant violation.
	Check func() error
	// Report, when non-nil, renders a one-line post-run summary.
	Report func() string
}

// AttachSpecs builds and attaches every spec to r, returning the
// attachments in spec order.
func AttachSpecs(r *Registry, specs []Spec) []*Attachment {
	out := make([]*Attachment, 0, len(specs))
	for _, sp := range specs {
		out = append(out, attachSpec(r, sp))
	}
	return out
}

func attachSpec(r *Registry, sp Spec) *Attachment {
	switch sp.Name {
	case "throttle":
		th := NewThrottle(sp.Task, sp.Syscall,
			sim.Duration(sp.IntervalUS)*sim.Microsecond, int64(sp.Burst))
		return &Attachment{Spec: sp, Prog: r.Attach(sp.raw, th.Fire, PSyscallEnter),
			Report: func() string {
				total, delayed := th.Stats()
				return fmt.Sprintf("%s: %d matched, %d delayed", sp.raw, total, delayed)
			}}
	case "slo":
		slo := NewSLO(sp.Task, sp.Syscall, sim.Duration(sp.P99US)*sim.Microsecond)
		pr := r.Attach(sp.raw, slo.Fire, PSyscallExit)
		slo.prog = pr
		return &Attachment{Spec: sp, Prog: pr, Check: slo.Check,
			Report: func() string { return sp.raw + ": " + slo.Summary() }}
	case "count":
		cnt := &counter{task: sp.Task}
		pr := r.Attach(sp.raw, cnt.fire, sp.Points...)
		cnt.prog = pr
		return &Attachment{Spec: sp, Prog: pr,
			Report: func() string { return sp.raw + ": " + cnt.summary() }}
	}
	panic("probe: unreachable: specs are validated at parse time")
}

// taskMatches implements the shared task-prefix scoping rule (same
// semantics as fault.Spec.TaskPrefix): empty prefix matches everything,
// including task-less sites; a non-empty prefix requires a task.
func taskMatches(prefix string, t Task) bool {
	if prefix == "" {
		return true
	}
	return t != nil && strings.HasPrefix(t.Name(), prefix)
}

// Throttle is the per-tenant syscall throttle: a token bucket refilled
// in virtual time (one token per interval, up to burst). A matching
// syscall with no token available is delayed until the next refill —
// charged to the calling task, so the cost lands exactly on the tenant
// being throttled. Purely a function of virtual time: deterministic
// under the seeded engine.
type Throttle struct {
	task     string
	syscall  string
	interval sim.Duration
	burst    int64

	tokens int64
	// level is the virtual refill clock: the bucket was full at level,
	// and owes one token per interval since.
	level   sim.Time
	started bool

	delayed uint64
	total   uint64
}

// NewThrottle builds a throttle scoped to tasks with the given name
// prefix (empty = all) and optionally one syscall name.
func NewThrottle(taskPrefix, syscall string, interval sim.Duration, burst int64) *Throttle {
	if burst < 1 {
		burst = 1
	}
	return &Throttle{task: taskPrefix, syscall: syscall, interval: interval, burst: burst}
}

// Fire is the probe program. Attach at PSyscallEnter.
func (th *Throttle) Fire(c *Ctx) Verdict {
	if c.Point != PSyscallEnter || !taskMatches(th.task, c.Task) {
		return Verdict{}
	}
	if th.syscall != "" && c.Site != th.syscall {
		return Verdict{}
	}
	if !th.started {
		th.started = true
		th.tokens = th.burst
		th.level = c.Now
	}
	// Refill whole tokens owed since level.
	if owed := int64(c.Now.Sub(th.level) / th.interval); owed > 0 {
		th.tokens += owed
		th.level = th.level.Add(sim.Duration(owed) * th.interval)
		if th.tokens > th.burst {
			th.tokens = th.burst
			th.level = c.Now
		}
	}
	th.total++
	if th.tokens > 0 {
		th.tokens--
		return Verdict{}
	}
	// Next token matures one interval after level; wait it out.
	delay := th.level.Add(th.interval).Sub(c.Now)
	th.level = th.level.Add(th.interval)
	th.delayed++
	return Verdict{Delay: delay}
}

// Stats reports how many matching syscalls the throttle saw and how
// many it delayed.
func (th *Throttle) Stats() (total, delayed uint64) { return th.total, th.delayed }

// SLO is the live latency-SLO checker: it aggregates matching syscall
// latencies into exact log2 histograms (per syscall name, in the
// program's private registry) and Check reports whether the p99 stayed
// under the bound — a chaos/scale oracle that runs inside the
// simulation's own observability plane.
type SLO struct {
	task    string
	syscall string
	p99     sim.Duration
	prog    *Program
}

// NewSLO builds an SLO checker for tasks with the given name prefix
// (empty = all) and optionally one syscall name.
func NewSLO(taskPrefix, syscall string, p99 sim.Duration) *SLO {
	return &SLO{task: taskPrefix, syscall: syscall, p99: p99}
}

// Fire is the probe program. Attach at PSyscallExit.
func (s *SLO) Fire(c *Ctx) Verdict {
	if c.Point != PSyscallExit || !taskMatches(s.task, c.Task) {
		return Verdict{}
	}
	if s.syscall != "" && c.Site != s.syscall {
		return Verdict{}
	}
	s.prog.Agg().Histogram("slo.ps." + c.Site).Observe(int64(c.Dur))
	return Verdict{}
}

// Check validates the aggregate against the bound: an error names every
// syscall whose observed p99 exceeded it.
func (s *SLO) Check() error {
	if s.prog == nil || s.prog.agg == nil {
		return nil
	}
	var bad []string
	for _, sm := range s.prog.agg.Snapshot() {
		name, ok := strings.CutSuffix(sm.Name, ".p99")
		if !ok || sm.Kind != "hist" {
			continue
		}
		if sim.Duration(sm.Value) > s.p99 {
			bad = append(bad, fmt.Sprintf("%s p99=%v > bound %v",
				strings.TrimPrefix(name, "slo.ps."), sim.Duration(sm.Value), s.p99))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	return fmt.Errorf("probe: SLO violated: %s", strings.Join(bad, "; "))
}

// Summary renders the observed p99 per syscall against the bound.
func (s *SLO) Summary() string {
	if s.prog == nil || s.prog.agg == nil {
		return "no samples"
	}
	var parts []string
	for _, sm := range s.prog.agg.Snapshot() {
		name, ok := strings.CutSuffix(sm.Name, ".p99")
		if !ok || sm.Kind != "hist" {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s p99=%v (bound %v)",
			strings.TrimPrefix(name, "slo.ps."), sim.Duration(sm.Value), s.p99))
	}
	if len(parts) == 0 {
		return "no samples"
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}

// counter is the count stock probe: per-point fire counters in the
// program's private registry.
type counter struct {
	task string
	prog *Program
}

func (c *counter) fire(ctx *Ctx) Verdict {
	if taskMatches(c.task, ctx.Task) {
		c.prog.Agg().Counter("fires." + ctx.Point.String()).Inc()
	}
	return Verdict{}
}

// summary renders the per-point fire counts.
func (c *counter) summary() string {
	if c.prog == nil || c.prog.agg == nil {
		return "no fires"
	}
	var parts []string
	for _, sm := range c.prog.agg.Snapshot() {
		if sm.Kind == "counter" {
			parts = append(parts, fmt.Sprintf("%s=%d",
				strings.TrimPrefix(sm.Name, "fires."), uint64(sm.Value)))
		}
	}
	if len(parts) == 0 {
		return "no fires"
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}
