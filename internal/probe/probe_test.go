package probe

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/sim"
)

// fakeTask satisfies Task without dragging the kernel in.
type fakeTask struct {
	name string
	pid  int
}

func (f *fakeTask) Name() string { return f.name }
func (f *fakeTask) PID() int     { return f.pid }
func (f *fakeTask) TGID() int    { return f.pid }
func (f *fakeTask) CoreID() int  { return -1 }

func at(us uint64) sim.Time {
	return sim.Time(0).Add(sim.Duration(us) * sim.Microsecond)
}

func TestPointNameRoundTrip(t *testing.T) {
	for _, p := range Points() {
		name := p.String()
		if strings.HasPrefix(name, "point(") {
			t.Errorf("point %d has no name", p)
			continue
		}
		if got := PointByName(name); got != p {
			t.Errorf("PointByName(%q) = %v, want %v", name, got, p)
		}
	}
	if PointByName("nope") != pInvalid {
		t.Error("PointByName accepted an unknown name")
	}
	if PointByName("") != pInvalid {
		t.Error("PointByName accepted the empty name")
	}
	if len(Points()) != int(NumPoints)-1 {
		t.Errorf("Points() lists %d points, want %d", len(Points()), NumPoints-1)
	}
}

func TestAttachDetachAndAttached(t *testing.T) {
	var nilReg *Registry
	if nilReg.Attached(PSyscallEnter) {
		t.Error("nil registry claims attachment")
	}
	r := NewRegistry()
	if r.Attached(PSyscallEnter) {
		t.Error("empty registry claims attachment")
	}
	fired := 0
	pr := r.Attach("obs", func(*Ctx) Verdict { fired++; return Verdict{} },
		PSyscallEnter, PFutexWait)
	if !r.Attached(PSyscallEnter) || !r.Attached(PFutexWait) {
		t.Error("Attached false after Attach")
	}
	if r.Attached(PSyscallExit) {
		t.Error("Attached true on a point the program does not watch")
	}
	if got := pr.PointsAttached(); len(got) != 2 {
		t.Errorf("PointsAttached = %v", got)
	}
	if ps := r.Programs(); len(ps) != 1 || ps[0] != pr {
		t.Errorf("Programs = %v", ps)
	}
	r.Fire(r.Begin(PSyscallEnter, 0))
	if fired != 1 {
		t.Errorf("fired %d times, want 1", fired)
	}
	r.Detach(pr)
	if r.Attached(PSyscallEnter) || r.Attached(PFutexWait) {
		t.Error("Attached true after Detach")
	}
	if len(r.Programs()) != 0 {
		t.Error("Programs non-empty after Detach")
	}
	r.Detach(nil) // must not panic
}

// TestVerdictCombination pins the combining rules: first Err wins,
// Delays add, Drop ORs, Scales multiply, last non-zero Span wins — and
// every program runs regardless of earlier verdicts (the
// stream-advancement invariant).
func TestVerdictCombination(t *testing.T) {
	r := NewRegistry()
	errA, errB := errors.New("a"), errors.New("b")
	ran := []string{}
	r.Attach("a", func(*Ctx) Verdict {
		ran = append(ran, "a")
		return Verdict{Err: errA, Delay: 3, Drop: false, Scale: 2, Span: 7}
	}, PFaultSite)
	r.Attach("b", func(*Ctx) Verdict {
		ran = append(ran, "b")
		return Verdict{Err: errB, Delay: 4, Drop: true, Scale: 5, Span: 9}
	}, PFaultSite)
	r.Attach("c", func(*Ctx) Verdict {
		ran = append(ran, "c")
		return Verdict{}
	}, PFaultSite)
	v := r.Fire(r.Begin(PFaultSite, 0))
	if v.Err != errA {
		t.Errorf("Err = %v, want first program's %v", v.Err, errA)
	}
	if v.Delay != 7 {
		t.Errorf("Delay = %d, want 3+4", v.Delay)
	}
	if !v.Drop {
		t.Error("Drop not ORed")
	}
	if v.Scale != 10 {
		t.Errorf("Scale = %v, want 2*5", v.Scale)
	}
	if v.Span != 9 {
		t.Errorf("Span = %d, want the last non-zero 9", v.Span)
	}
	if len(ran) != 3 {
		t.Errorf("ran %v — every program must run despite earlier verdicts", ran)
	}
}

// TestBeginFireNesting pins the context pool: a program whose side
// effects reach another attach point leases a distinct context.
func TestBeginFireNesting(t *testing.T) {
	r := NewRegistry()
	var inner string
	r.Attach("outer", func(c *Ctx) Verdict {
		ci := r.Begin(PTraceLog, c.Now)
		ci.Site = "nested"
		if ci == c {
			t.Error("nested Begin returned the outer context")
		}
		r.Fire(ci)
		if c.Site != "outer-site" {
			t.Errorf("outer context clobbered by nested fire: Site=%q", c.Site)
		}
		return Verdict{}
	}, PSyscallEnter)
	r.Attach("inner", func(c *Ctx) Verdict {
		inner = c.Site
		return Verdict{}
	}, PTraceLog)
	c := r.Begin(PSyscallEnter, 0)
	c.Site = "outer-site"
	r.Fire(c)
	if inner != "nested" {
		t.Errorf("nested fire saw Site=%q", inner)
	}
}

// TestUnattachedFireCostsNothing pins the cost contract at the probe
// layer itself: with nothing attached, the guarded fire-site pattern
// allocates zero bytes, and even a leased Begin/Fire pair with an
// observe-only program allocates nothing.
func TestUnattachedFireCostsNothing(t *testing.T) {
	r := NewRegistry()
	if got := testing.AllocsPerRun(100, func() {
		if r.Attached(PSyscallEnter) {
			t.Fatal("nothing is attached")
		}
	}); got != 0 {
		t.Errorf("unattached check allocates %v/op, want 0", got)
	}
	r.Attach("obs", func(*Ctx) Verdict { return Verdict{} }, PSyscallEnter)
	if got := testing.AllocsPerRun(100, func() {
		c := r.Begin(PSyscallEnter, 0)
		c.Site = "write"
		r.Fire(c)
	}); got != 0 {
		t.Errorf("observe-only dispatch allocates %v/op, want 0", got)
	}
}

func TestParseSpecs(t *testing.T) {
	specs, err := ParseSpecs("throttle:task=t2.,interval_us=50,burst=4;slo:syscall=open,p99_us=800;count:points=futex:wait+futex:wake")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("parsed %d specs, want 3", len(specs))
	}
	th := specs[0]
	if th.Name != "throttle" || th.Task != "t2." || th.IntervalUS != 50 || th.Burst != 4 {
		t.Errorf("throttle spec = %+v", th)
	}
	slo := specs[1]
	if slo.Name != "slo" || slo.Syscall != "open" || slo.P99US != 800 {
		t.Errorf("slo spec = %+v", slo)
	}
	cnt := specs[2]
	if cnt.Name != "count" || len(cnt.Points) != 2 || cnt.Points[0] != PFutexWait || cnt.Points[1] != PFutexWake {
		t.Errorf("count spec = %+v", cnt)
	}
	// Round trip: the rendered string parses back to the same specs.
	again, err := ParseSpecs(SpecsString(specs))
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if SpecsString(again) != SpecsString(specs) {
		t.Errorf("round trip %q != %q", SpecsString(again), SpecsString(specs))
	}
	if got, _ := ParseSpecs(""); got != nil {
		t.Errorf("empty spec parsed to %v", got)
	}
}

func TestParseSpecsRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"nope:interval_us=5",          // unknown probe
		"throttle",                    // missing interval_us
		"throttle:interval_us=0",      // zero interval
		"throttle:interval_us=x",      // non-numeric
		"throttle:interval_us=5,zz=1", // unknown option
		"slo:task=a",                  // missing p99_us
		"slo:p99_us=0",                // zero bound
		"count:task=a",                // missing points
		"count:points=bogus:point",    // unknown attach point
		"throttle:interval_us",        // option without =
	} {
		if _, err := ParseSpecs(bad); err == nil {
			t.Errorf("ParseSpecs(%q) accepted garbage", bad)
		}
	}
}

// TestThrottleTokenBucket pins the virtual-time token-bucket math:
// burst tokens up front, one token per interval after, delays that park
// consecutive over-budget calls on successive refill boundaries.
func TestThrottleTokenBucket(t *testing.T) {
	th := NewThrottle("w", "", 10*sim.Microsecond, 2)
	task := &fakeTask{name: "w0", pid: 3}
	fire := func(us uint64) sim.Duration {
		c := &Ctx{Point: PSyscallEnter, Now: at(us), Site: "write", Task: task}
		return th.Fire(c).Delay
	}
	// Burst: the first two calls at t=0 pass free.
	if d := fire(0); d != 0 {
		t.Errorf("call 1 delayed %v", d)
	}
	if d := fire(0); d != 0 {
		t.Errorf("call 2 delayed %v", d)
	}
	// Bucket empty: the next two calls at t=0 queue on successive refills.
	if d := fire(0); d != 10*sim.Microsecond {
		t.Errorf("call 3 delay = %v, want 10us", d)
	}
	if d := fire(0); d != 20*sim.Microsecond {
		t.Errorf("call 4 delay = %v, want 20us", d)
	}
	// Long idle: the bucket refills but never past burst.
	if d := fire(500); d != 0 {
		t.Errorf("post-idle call delayed %v", d)
	}
	if d := fire(500); d != 0 {
		t.Errorf("post-idle call 2 delayed %v (burst should hold 2)", d)
	}
	if d := fire(500); d == 0 {
		t.Error("post-idle call 3 passed; burst must cap the refill")
	}
	total, delayed := th.Stats()
	if total != 7 || delayed != 3 {
		t.Errorf("Stats = (%d, %d), want (7, 3)", total, delayed)
	}
	// Scoping: other tasks and other syscalls pass untouched.
	other := &fakeTask{name: "x0", pid: 4}
	c := &Ctx{Point: PSyscallEnter, Now: at(500), Site: "write", Task: other}
	if v := th.Fire(c); v.Delay != 0 {
		t.Errorf("non-matching task delayed %v", v.Delay)
	}
	scoped := NewThrottle("", "open", 10*sim.Microsecond, 1)
	c = &Ctx{Point: PSyscallEnter, Now: at(0), Site: "write", Task: task}
	scoped.Fire(c)
	if total, _ := scoped.Stats(); total != 0 {
		t.Errorf("syscall-scoped throttle matched %d non-open calls", total)
	}
}

func TestSLOCheck(t *testing.T) {
	slo := NewSLO("", "", 100*sim.Microsecond)
	r := NewRegistry()
	slo.prog = r.Attach("slo", slo.Fire, PSyscallExit)
	if err := slo.Check(); err != nil {
		t.Errorf("empty SLO check failed: %v", err)
	}
	task := &fakeTask{name: "w0", pid: 3}
	observe := func(site string, d sim.Duration) {
		c := r.Begin(PSyscallExit, 0)
		c.Site, c.Task, c.Dur = site, task, d
		r.Fire(c)
	}
	for i := 0; i < 100; i++ {
		observe("write", 10*sim.Microsecond)
	}
	if err := slo.Check(); err != nil {
		t.Errorf("in-bound p99 failed the check: %v", err)
	}
	for i := 0; i < 100; i++ {
		observe("open", 5*sim.Millisecond)
	}
	err := slo.Check()
	if err == nil {
		t.Fatal("out-of-bound p99 passed the check")
	}
	if !strings.Contains(err.Error(), "open") || strings.Contains(err.Error(), "write") {
		t.Errorf("check error should name only the violating syscall: %v", err)
	}
	if s := slo.Summary(); !strings.Contains(s, "open") || !strings.Contains(s, "write") {
		t.Errorf("summary should cover every observed syscall: %s", s)
	}
}
