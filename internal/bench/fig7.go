package bench

import (
	"errors"
	"fmt"

	"repro/internal/aio"
	"repro/internal/arch"
	"repro/internal/blt"
	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// Fig7Mechanisms are the series of Fig. 7, in the paper's legend order.
var Fig7Mechanisms = []string{
	"ULP-BUSYWAIT", "ULP-BLOCKING", "AIO-return", "AIO-suspend",
}

// Fig7Result is one machine's slowdown curves: the time of an
// open-write-close sequence on tmpfs with each mechanism, divided by the
// plain synchronous system-calls.
type Fig7Result struct {
	Machine  *arch.Machine
	Sizes    []int
	Baseline []sim.Duration            // plain open-write-close per size
	Times    map[string][]sim.Duration // mechanism -> per-size time
}

// Slowdown returns the mechanism's slowdown ratio per size.
func (r Fig7Result) Slowdown(mech string) []float64 {
	out := make([]float64, len(r.Sizes))
	for i, t := range r.Times[mech] {
		out[i] = float64(t) / float64(r.Baseline[i])
	}
	return out
}

// Series converts the result to plottable series.
func (r Fig7Result) Series() []Series {
	var out []Series
	for _, mech := range Fig7Mechanisms {
		s := Series{Machine: r.Machine, Label: mech}
		for i, v := range r.Slowdown(mech) {
			s.Points = append(s.Points, Point{X: float64(r.Sizes[i]), Y: v})
		}
		out = append(out, s)
	}
	return out
}

// owcBaseline measures one plain synchronous open-write-close of size
// bytes on tmpfs (the Fig. 7 denominator).
func owcBaseline(m *arch.Machine, size int) (sim.Duration, error) {
	return MinOf(func() (sim.Duration, error) {
		var per sim.Duration
		err := RunKernel(m, func(k *kernel.Kernel, root *kernel.Task) {
			e := k.Engine()
			buf := make([]byte, size)
			const warm, n = 4, 16
			var t0 sim.Time
			for i := 0; i < warm+n; i++ {
				if i == warm {
					t0 = e.Now()
				}
				fd, err := root.Open("/bench", fs.OCreate|fs.OWrOnly|fs.OTrunc)
				if err != nil {
					panic(err)
				}
				root.Write(fd, buf, false)
				root.Close(fd)
			}
			per = sim.Duration(float64(e.Now().Sub(t0)) / float64(n))
		})
		return per, err
	})
}

// owcAIO measures open (sync) + aio_write + wait + close (sync). Only
// the write is asynchronous — "the current AIO infrastructure only
// supports read and write". suspend selects aio_suspend over the
// aio_return polling loop.
func owcAIO(m *arch.Machine, size int, suspend bool) (sim.Duration, error) {
	return MinOf(func() (sim.Duration, error) {
		var per sim.Duration
		err := RunKernel(m, func(k *kernel.Kernel, root *kernel.Task) {
			e := k.Engine()
			buf := make([]byte, size)
			ctx, err := aio.New(root)
			if err != nil {
				panic(err)
			}
			// Warm-up includes the helper-thread creation, which the
			// paper explicitly excludes from the measurement.
			const warm, n = 4, 16
			var t0 sim.Time
			for i := 0; i < warm+n; i++ {
				if i == warm {
					t0 = e.Now()
				}
				fd, err := root.Open("/bench", fs.OCreate|fs.OWrOnly|fs.OTrunc)
				if err != nil {
					panic(err)
				}
				r, err := ctx.WriteAsync(root, fd, buf)
				if err != nil {
					panic(err)
				}
				if suspend {
					r.Suspend(root)
				} else {
					for {
						if _, err := r.Return(root); !errors.Is(err, aio.ErrInProgress) {
							break
						}
						root.SchedYield()
					}
				}
				root.Close(fd)
			}
			per = sim.Duration(float64(e.Now().Sub(t0)) / float64(n))
			ctx.Close(root)
		})
		return per, err
	})
}

// owcULP measures the whole open-write-close series inside one
// couple()/decouple() bracket of a decoupled ULP — "the whole sequence
// must be done by a KLT otherwise the system-call consistency is
// broken". The write streams the buffer to the dedicated syscall core
// (remote=true), which is where the Albireo crossover comes from.
func owcULP(m *arch.Machine, size int, idle blt.IdlePolicy) (sim.Duration, error) {
	return MinOf(func() (sim.Duration, error) {
		var per sim.Duration
		err := runULP(m, idle, func(rt *core.Runtime) {
			e := rt.Kernel().Engine()
			buf := make([]byte, size)
			rt.Spawn(benchImage("owc", func(envI interface{}) int {
				env := envI.(*core.Env)
				env.Decouple()
				const warm, n = 4, 16
				var t0 sim.Time
				for i := 0; i < warm+n; i++ {
					if i == warm {
						t0 = e.Now()
					}
					env.Exec(func(kc *kernel.Task) {
						fd, err := kc.Open("/bench", fs.OCreate|fs.OWrOnly|fs.OTrunc)
						if err != nil {
							panic(err)
						}
						kc.Write(fd, buf, true)
						kc.Close(fd)
					})
				}
				per = sim.Duration(float64(e.Now().Sub(t0)) / float64(n))
				env.Couple()
				return 0
			}), core.SpawnOpts{Scheduler: 0})
			rt.WaitAll()
		})
		return per, err
	})
}

// Fig7 sweeps all mechanisms over the write-buffer sizes on machine m.
func Fig7(m *arch.Machine) (Fig7Result, error) {
	return Fig7Sweep(m, Fig7Sizes())
}

// Fig7Sweep runs the Fig. 7 grid over the given sizes. Every cell of the
// size × mechanism grid (baseline included) is an independent job on its
// own simulated machine, so the grid fans out across the sweep worker
// pool; results land in preallocated slots by (size, mechanism) index and
// the output is identical at any Parallelism.
func Fig7Sweep(m *arch.Machine, sizes []int) (Fig7Result, error) {
	res := Fig7Result{
		Machine:  m,
		Sizes:    sizes,
		Baseline: make([]sim.Duration, len(sizes)),
		Times:    make(map[string][]sim.Duration, len(Fig7Mechanisms)),
	}
	for _, mech := range Fig7Mechanisms {
		res.Times[mech] = make([]sim.Duration, len(sizes))
	}
	var jobs []func() error
	for i, size := range sizes {
		i, size := i, size
		jobs = append(jobs,
			func() error {
				d, err := owcBaseline(m, size)
				if err != nil {
					return fmt.Errorf("baseline size %d: %w", size, err)
				}
				res.Baseline[i] = d
				return nil
			},
			func() error {
				d, err := owcULP(m, size, blt.BusyWait)
				res.Times["ULP-BUSYWAIT"][i] = d
				return err
			},
			func() error {
				d, err := owcULP(m, size, blt.Blocking)
				res.Times["ULP-BLOCKING"][i] = d
				return err
			},
			func() error {
				d, err := owcAIO(m, size, false)
				res.Times["AIO-return"][i] = d
				return err
			},
			func() error {
				d, err := owcAIO(m, size, true)
				res.Times["AIO-suspend"][i] = d
				return err
			},
		)
	}
	err := sweep(len(jobs), func(i int) error { return jobs[i]() })
	return res, err
}
