package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/arch"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/probe"
	"repro/internal/sim"
)

// ProbeSpecs, when non-empty (ulpbench -probe), attaches the stock
// probes to every scale-suite kernel and runs their checks after each
// row's workload — the SLO probe as a scale oracle. Observe-only probes
// leave the virtual columns untouched, so minRow's exact-repeat
// assertion doubles as the probes-don't-perturb guard; a throttle probe
// shifts them deterministically, and repeats still match.
var ProbeSpecs []probe.Spec

// The scale suite stresses the paths that must stay cheap when the
// simulated machine serves very large task counts: task create/exit/join
// throughput, fan-in WakeAll over one futex word (the path that was
// O(n²) with the slice-backed WaitQueue), and futex-table churn over
// many distinct words (the path that used to leak one map entry per
// word ever touched). Unlike the paper experiments it reports host-side
// wall-clock and allocation cost alongside virtual time, because the
// thing under test is the simulator's own data structures; those two
// columns are machine-dependent and NOT byte-deterministic, which is why
// the suite runs under its own `ulpbench -scale` flag rather than as
// part of `-exp all` (whose output is diffed against baselines).

// ScaleConfig sizes one scale-suite run.
type ScaleConfig struct {
	Label      string // printed with the suite header
	SpawnJoin  []int  // task counts for the spawn/join throughput runs
	FanIn      []int  // waiter counts for the fan-in WakeAll runs
	ChurnWords int    // distinct futex words churned through the table
}

// FullScaleConfig is the million-task configuration the EXPERIMENTS.md
// numbers come from. The 1M rows are the machine's design point: the
// per-op virtual cost must stay within ~1.5x of the 100k row, or some
// structure on the spawn/block/wake path has regressed to O(n).
func FullScaleConfig() ScaleConfig {
	return ScaleConfig{
		Label:      "full",
		SpawnJoin:  []int{10_000, 100_000, 1_000_000},
		FanIn:      []int{1_000, 10_000, 100_000, 1_000_000},
		ChurnWords: 10_000,
	}
}

// QuickScaleConfig is the CI-sized configuration behind -scale -quick.
// It keeps one 1M spawn/join row — cheap in waves of 256, and the only
// smoke that exercises million-task counts on every push — while the
// million-waiter fan-in stays in the full suite.
func QuickScaleConfig() ScaleConfig {
	return ScaleConfig{
		Label:      "quick",
		SpawnJoin:  []int{1_000, 10_000, 1_000_000},
		FanIn:      []int{256, 2_048},
		ChurnWords: 1_000,
	}
}

// ScaleRow is one scale measurement: n operations of one series on a
// fresh machine.
type ScaleRow struct {
	Series string
	N      int

	Virt   sim.Duration  // virtual time for all n ops (deterministic)
	Wall   time.Duration // host wall-clock for the whole run
	Allocs uint64        // host allocations for the whole run

	// WakeWall is the host wall-clock of the FutexWake drain alone
	// (fan-in series only) — the direct measure of the wake path's
	// complexity, excluding spawn/join cost.
	WakeWall time.Duration

	// WakeAllocs counts host allocations during that drain. The wake
	// path is steady-state allocation-free: the only allocations here
	// are the run-queue rings and event heap doubling up to n — O(log n)
	// allocations total, so the per-op figure rounds to zero.
	WakeAllocs uint64

	// IdleBytes is the retained heap+stack footprint of the n blocked
	// waiters (fan-in series only), measured across a forced GC while
	// everyone sleeps. IdleBytes/n is the bytes-per-idle-task figure —
	// the column that makes per-task footprint regressions diffable.
	IdleBytes uint64

	TablePeak int // futex-table high-water during the run
	TableEnd  int // futex-table size at quiescence (must be 0)
}

// VirtPerOp returns virtual nanoseconds per operation.
func (r ScaleRow) VirtPerOp() float64 { return r.Virt.Nanoseconds() / float64(r.N) }

// WallPerOp returns host nanoseconds per operation.
func (r ScaleRow) WallPerOp() float64 { return float64(r.Wall.Nanoseconds()) / float64(r.N) }

// AllocsPerOp returns host allocations per operation.
func (r ScaleRow) AllocsPerOp() float64 { return float64(r.Allocs) / float64(r.N) }

// BytesPerTask returns the idle memory footprint per blocked task.
func (r ScaleRow) BytesPerTask() float64 { return float64(r.IdleBytes) / float64(r.N) }

// ScaleResult is the suite on one machine.
type ScaleResult struct {
	Machine *arch.Machine
	Config  ScaleConfig
	Rows    []ScaleRow
}

// Scale runs the whole suite on machine m, repeating each row Runs
// times per the package protocol: the host-side columns keep the
// minimum (least-noise) run, and the virtual column doubles as a
// determinism check — it must be identical across repeats. Callers
// must not run machines concurrently — the wall/alloc columns read
// process-global counters.
func Scale(m *arch.Machine, cfg ScaleConfig) (ScaleResult, error) {
	res := ScaleResult{Machine: m, Config: cfg}
	add := func(f func() (ScaleRow, error)) error {
		row, err := minRow(f)
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, row)
		return nil
	}
	for _, n := range cfg.SpawnJoin {
		n := n
		if err := add(func() (ScaleRow, error) { return scaleSpawnJoin(m, n) }); err != nil {
			return res, err
		}
	}
	for _, n := range cfg.FanIn {
		n := n
		if err := add(func() (ScaleRow, error) { return scaleFanIn(m, n) }); err != nil {
			return res, err
		}
	}
	if err := add(func() (ScaleRow, error) { return scaleChurn(m, cfg.ChurnWords) }); err != nil {
		return res, err
	}
	return res, nil
}

// minRow repeats one scale row Runs times, keeping the minimum of each
// host-side column and asserting the simulation-side columns repeat
// exactly.
func minRow(f func() (ScaleRow, error)) (ScaleRow, error) {
	best, err := f()
	if err != nil {
		return best, err
	}
	for i := 1; i < Runs; i++ {
		r, err := f()
		if err != nil {
			return best, err
		}
		if r.Virt != best.Virt || r.TablePeak != best.TablePeak || r.TableEnd != best.TableEnd {
			return best, fmt.Errorf("%s n=%d: non-deterministic repeat (virt %v vs %v, table %d/%d vs %d/%d)",
				best.Series, best.N, r.Virt, best.Virt, r.TablePeak, r.TableEnd, best.TablePeak, best.TableEnd)
		}
		if r.Wall < best.Wall {
			best.Wall = r.Wall
		}
		if r.Allocs < best.Allocs {
			best.Allocs = r.Allocs
		}
		if r.WakeWall > 0 && r.WakeWall < best.WakeWall {
			best.WakeWall = r.WakeWall
		}
		if r.WakeAllocs < best.WakeAllocs {
			best.WakeAllocs = r.WakeAllocs
		}
		// Zero means "not measured" (GC-floor noise swallowed a small
		// delta), so prefer any positive repeat over it.
		if r.IdleBytes > 0 && (best.IdleBytes == 0 || r.IdleBytes < best.IdleBytes) {
			best.IdleBytes = r.IdleBytes
		}
	}
	return best, nil
}

// scaleRun wraps RunKernel with host-side wall-clock and allocation
// accounting.
func scaleRun(m *arch.Machine, body func(k *kernel.Kernel, root *kernel.Task)) (time.Duration, uint64, error) {
	// Settle the heap first: rows run back to back in one process, and
	// without the barrier a row pays the GC debt of whatever ran before
	// it — which poisons cross-row comparisons like the supervision
	// overhead column.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	var probeErr error
	err := RunKernel(m, func(k *kernel.Kernel, root *kernel.Task) {
		atts := probe.AttachSpecs(k.Probes(), ProbeSpecs)
		body(k, root)
		for _, a := range atts {
			if a.Check == nil {
				continue
			}
			if cerr := a.Check(); cerr != nil && probeErr == nil {
				probeErr = fmt.Errorf("probe %s: %w", a.Spec, cerr)
			}
		}
	})
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)
	if err == nil {
		err = probeErr
	}
	return wall, after.Mallocs - before.Mallocs, err
}

// scaleSpawnJoin creates and joins n threads in waves, bounding the
// number of live tasks (and run-queue depth) the way a thread pool
// would, so the figure measures steady-state create/exit/join cost.
func scaleSpawnJoin(m *arch.Machine, n int) (ScaleRow, error) {
	row := ScaleRow{Series: "spawn-join", N: n}
	var bodyErr error
	wall, allocs, err := scaleRun(m, func(k *kernel.Kernel, root *kernel.Task) {
		e := k.Engine()
		const wave = 256
		kids := make([]*kernel.Task, 0, wave)
		t0 := e.Now()
		for done := 0; done < n; {
			b := min(wave, n-done)
			kids = kids[:0]
			for i := 0; i < b; i++ {
				kids = append(kids, root.Clone("sj", kernel.PThreadFlags, func(t *kernel.Task) int { return 0 }))
			}
			for _, c := range kids {
				if root.Join(c) != 0 {
					bodyErr = fmt.Errorf("spawn-join: child exited non-zero")
					return
				}
			}
			done += b
		}
		row.Virt = e.Now().Sub(t0)
		row.TableEnd = k.FutexTableSize()
	})
	if err == nil {
		err = bodyErr
	}
	row.Wall, row.Allocs = wall, allocs
	return row, err
}

// idleFootprint forces a collection and returns the retained heap plus
// goroutine-stack footprint — the quantity whose delta across n blocked
// waiters yields the bytes-per-idle-task column. The GC pause lands in
// the row's Wall column (documented host-dependent), never in WakeWall
// or the virtual column.
func idleFootprint() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc + ms.StackInuse
}

// scaleFanIn blocks n waiters on one futex word and wakes them with a
// single FutexWake(n) — the WakeAll shape. WakeWall isolates the drain,
// WakeAllocs pins it allocation-free, and IdleBytes snapshots what the
// n sleeping tasks cost the host while parked.
func scaleFanIn(m *arch.Machine, n int) (ScaleRow, error) {
	row := ScaleRow{Series: "fanin-wakeall", N: n}
	var bodyErr error
	wall, allocs, err := scaleRun(m, func(k *kernel.Kernel, root *kernel.Task) {
		e := k.Engine()
		space := root.Space()
		addr, merr := space.Mmap(8, mem.ProtRead|mem.ProtWrite, "fanin-word", true, nil)
		if merr != nil {
			bodyErr = merr
			return
		}
		m0 := idleFootprint()
		waiters := make([]*kernel.Task, n)
		for i := range waiters {
			waiters[i] = root.Clone("fw", kernel.PThreadFlags, func(t *kernel.Task) int {
				if t.FutexWait(addr, 0) != nil {
					return 1
				}
				return 0
			})
		}
		for k.FutexWaiters(space.ID, addr) < n {
			root.Nanosleep(10 * sim.Microsecond)
		}
		// Everyone is asleep: the footprint delta over the pre-spawn
		// baseline is what n idle tasks cost the host.
		if m1 := idleFootprint(); m1 > m0 {
			row.IdleBytes = m1 - m0
		}
		row.TablePeak = k.FutexTableSize()
		var mw0, mw1 runtime.MemStats
		runtime.ReadMemStats(&mw0)
		t0 := e.Now()
		w0 := time.Now()
		if got := root.FutexWake(addr, n); got != n {
			bodyErr = fmt.Errorf("fan-in: FutexWake woke %d of %d", got, n)
			return
		}
		row.WakeWall = time.Since(w0)
		runtime.ReadMemStats(&mw1)
		row.WakeAllocs = mw1.Mallocs - mw0.Mallocs
		for _, w := range waiters {
			if root.Join(w) != 0 {
				bodyErr = fmt.Errorf("fan-in: waiter exited non-zero")
				return
			}
		}
		row.Virt = e.Now().Sub(t0)
		row.TableEnd = k.FutexTableSize()
	})
	if err == nil {
		err = bodyErr
	}
	row.Wall, row.Allocs = wall, allocs
	return row, err
}

// scaleChurn sleeps and wakes one waiter on each of `words` distinct
// futex words (batched), driving the futex table through create/drop
// churn. TablePeak proves entries exist only while sleepers do;
// TableEnd proves the table drains to empty rather than accumulating
// one entry per word ever touched.
func scaleChurn(m *arch.Machine, words int) (ScaleRow, error) {
	row := ScaleRow{Series: "futex-churn", N: words}
	var bodyErr error
	wall, allocs, err := scaleRun(m, func(k *kernel.Kernel, root *kernel.Task) {
		e := k.Engine()
		space := root.Space()
		base, merr := space.Mmap(uint64(8*words), mem.ProtRead|mem.ProtWrite, "churn-words", true, nil)
		if merr != nil {
			bodyErr = merr
			return
		}
		const batch = 64
		waiters := make([]*kernel.Task, 0, batch)
		t0 := e.Now()
		for done := 0; done < words; {
			b := min(batch, words-done)
			waiters = waiters[:0]
			for i := 0; i < b; i++ {
				addr := base + uint64(8*(done+i))
				waiters = append(waiters, root.Clone("cw", kernel.PThreadFlags, func(t *kernel.Task) int {
					if t.FutexWait(addr, 0) != nil {
						return 1
					}
					return 0
				}))
			}
			// The previous batch fully drained, so the table holds
			// exactly this batch's words once everyone is asleep.
			for k.FutexTableSize() < b {
				root.Nanosleep(10 * sim.Microsecond)
			}
			if k.FutexTableSize() > row.TablePeak {
				row.TablePeak = k.FutexTableSize()
			}
			for i := 0; i < b; i++ {
				if got := root.FutexWake(base+uint64(8*(done+i)), 1); got != 1 {
					bodyErr = fmt.Errorf("churn: FutexWake woke %d of 1", got)
					return
				}
			}
			for _, w := range waiters {
				if root.Join(w) != 0 {
					bodyErr = fmt.Errorf("churn: waiter exited non-zero")
					return
				}
			}
			done += b
		}
		row.Virt = e.Now().Sub(t0)
		row.TableEnd = k.FutexTableSize()
	})
	if err == nil {
		err = bodyErr
	}
	row.Wall, row.Allocs = wall, allocs
	return row, err
}

// PrintScale renders one machine's suite. Virtual time is
// deterministic; wall and allocs are host-dependent.
func PrintScale(w io.Writer, r ScaleResult) {
	fmt.Fprintf(w, "Scale suite (%s) — %s (%s)\n", r.Config.Label, r.Machine.Name, r.Machine.Arch)
	fmt.Fprintf(w, "  %-14s %8s %12s %12s %10s %12s %11s %11s %6s\n",
		"series", "n", "virt/op", "wall/op", "allocs/op", "wake-wall/op", "wake-allocs", "idle-B/task", "table")
	for _, row := range r.Rows {
		wakeCol, wakeAllocCol, idleCol := "-", "-", "-"
		if row.WakeWall > 0 {
			wakeCol = fmt.Sprintf("%.0f ns", float64(row.WakeWall.Nanoseconds())/float64(row.N))
			wakeAllocCol = fmt.Sprintf("%d", row.WakeAllocs)
		}
		if row.IdleBytes > 0 {
			idleCol = fmt.Sprintf("%.0f", row.BytesPerTask())
		}
		fmt.Fprintf(w, "  %-14s %8d %9.0f ns %9.0f ns %10.1f %12s %11s %11s %3d/%d\n",
			row.Series, row.N, row.VirtPerOp(), row.WallPerOp(), row.AllocsPerOp(),
			wakeCol, wakeAllocCol, idleCol, row.TablePeak, row.TableEnd)
	}
	for _, s := range []string{"spawn-join", "fanin-wakeall"} {
		small, big, ok := seriesExtremes(r.Rows, s)
		if !ok {
			continue
		}
		per := func(row ScaleRow) float64 {
			if s == "fanin-wakeall" && row.WakeWall > 0 {
				return float64(row.WakeWall.Nanoseconds()) / float64(row.N)
			}
			return row.WallPerOp()
		}
		if per(small) > 0 {
			fmt.Fprintf(w, "  %s per-op growth %d→%d: %.2fx\n", s, small.N, big.N, per(big)/per(small))
		}
	}
}

// seriesExtremes returns the smallest- and largest-n rows of a series.
func seriesExtremes(rows []ScaleRow, series string) (small, big ScaleRow, ok bool) {
	n := 0
	for _, r := range rows {
		if r.Series != series {
			continue
		}
		if n == 0 || r.N < small.N {
			small = r
		}
		if n == 0 || r.N > big.N {
			big = r
		}
		n++
	}
	return small, big, n >= 2
}

// ScaleRecords flattens a suite result into JSON records: virtual ns
// per op in Ns, rounded host allocations per op in Allocs, and — for
// the fan-in rows — drain allocations and bytes per idle task, so
// per-task footprint regressions diff in the JSON output.
func ScaleRecords(r ScaleResult) []Record {
	var recs []Record
	for _, row := range r.Rows {
		recs = append(recs, Record{
			Experiment: "scale", Machine: r.Machine.Name, Series: row.Series,
			Size: row.N, Ns: row.VirtPerOp(), Allocs: uint64(row.AllocsPerOp() + 0.5),
			WakeAllocs: row.WakeAllocs, BytesPerTask: row.BytesPerTask(),
		})
	}
	return recs
}
