package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/arch"
	"repro/internal/blt"
	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// --- A1: idle-policy trade-off (latency vs the power proxy) -------------

// IdleAblationResult quantifies §VII's "the choice of the blocking ways
// is a trade-off between latency and power": per idle policy, the
// couple/decouple latency and the CPU time burned spinning.
type IdleAblationResult struct {
	Machine       *arch.Machine
	Policy        blt.IdlePolicy
	GetpidLatency sim.Duration // Table V-style bracketed getpid
	SpunKC        sim.Duration // KC cycles burned idle during the run
	SpunScheds    sim.Duration // scheduler cycles burned idle
}

// AblateIdlePolicy measures both policies on machine m.
func AblateIdlePolicy(m *arch.Machine) ([]IdleAblationResult, error) {
	var out []IdleAblationResult
	for _, idle := range []blt.IdlePolicy{blt.BusyWait, blt.Blocking} {
		res := IdleAblationResult{Machine: m, Policy: idle}
		err := runULP(m, idle, func(rt *core.Runtime) {
			e := rt.Kernel().Engine()
			rt.Spawn(benchImage("idle", func(envI interface{}) int {
				env := envI.(*core.Env)
				env.Decouple()
				const warm, n = 8, 64
				var t0 sim.Time
				for i := 0; i < warm+n; i++ {
					if i == warm {
						t0 = e.Now()
					}
					env.Getpid()
					// Idle gaps between syscalls: where the policies
					// diverge in burned cycles.
					env.Compute(2 * sim.Microsecond)
				}
				res.GetpidLatency = sim.Duration(
					(float64(e.Now().Sub(t0)) - float64(n*2*sim.Microsecond)) / float64(n))
				env.Couple()
				return 0
			}), core.SpawnOpts{Scheduler: 0})
			rt.WaitAll()
			for _, u := range rt.ULPs() {
				res.SpunKC += u.BLT().Host().SpunIdle()
			}
			for _, s := range rt.Pool().Schedulers() {
				res.SpunScheds += s.SpunIdle()
			}
		})
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// PrintIdleAblation renders A1.
func PrintIdleAblation(w io.Writer, results []IdleAblationResult) {
	fmt.Fprintf(w, "ABLATION A1 — IDLE POLICY: LATENCY vs POWER (%s)\n", results[0].Machine.Name)
	fmt.Fprintf(w, "%-10s %18s %18s %18s\n", "policy", "getpid+couple[ns]", "KC spun[us]", "scheds spun[us]")
	fmt.Fprintln(w, strings.Repeat("-", 68))
	for _, r := range results {
		fmt.Fprintf(w, "%-10s %18.0f %18.1f %18.1f\n",
			r.Policy, r.GetpidLatency.Nanoseconds(),
			r.SpunKC.Microseconds(), r.SpunScheds.Microseconds())
	}
}

// --- A2: TLS-switch ablation (ULT vs ULP semantics) ---------------------

// TLSAblationResult compares per-yield cost with TLS switching on (ULP
// semantics, mandatory per §V-B) and off (what plain ULT libraries do).
type TLSAblationResult struct {
	Machine *arch.Machine
	WithTLS sim.Duration
	NoTLS   sim.Duration
}

// AblateTLS measures the two modes on machine m.
func AblateTLS(m *arch.Machine) (TLSAblationResult, error) {
	res := TLSAblationResult{Machine: m}
	measure := func(switchTLS bool) (sim.Duration, error) {
		var per sim.Duration
		err := RunKernel(m, func(k *kernel.Kernel, root *kernel.Task) {
			e := k.Engine()
			pool, err := blt.NewPool(root, blt.Config{
				ProgCores:    []int{0},
				SyscallCores: []int{2, 3},
				Idle:         blt.BusyWait,
				SwitchTLS:    switchTLS,
			})
			if err != nil {
				panic(err)
			}
			tlsA, _ := root.Mmap(64, true)
			tlsB, _ := root.Mmap(64, true)
			const warm, n = 32, 512
			ready, done := 0, false
			var t0, t1 sim.Time
			pool.Spawn(func(b *blt.BLT) int {
				b.Decouple()
				ready++
				for ready < 2 {
					b.Yield()
				}
				for i := 0; i < warm+n; i++ {
					if i == warm {
						t0 = e.Now()
					}
					b.Yield()
				}
				t1 = e.Now()
				done = true
				b.Couple()
				return 0
			}, blt.SpawnOpts{Name: "a", Scheduler: 0, TLSBase: tlsA})
			pool.Spawn(func(b *blt.BLT) int {
				b.Decouple()
				ready++
				for !done {
					b.Yield()
				}
				b.Couple()
				return 0
			}, blt.SpawnOpts{Name: "b", Scheduler: 0, TLSBase: tlsB})
			root.Wait()
			root.Wait()
			pool.Shutdown(root)
			per = sim.Duration(float64(t1.Sub(t0)) / float64(2*n))
		})
		return per, err
	}
	var err error
	if res.WithTLS, err = measure(true); err != nil {
		return res, err
	}
	if res.NoTLS, err = measure(false); err != nil {
		return res, err
	}
	return res, nil
}

// PrintTLSAblation renders A2.
func PrintTLSAblation(w io.Writer, results map[string]TLSAblationResult) {
	fmt.Fprintln(w, "ABLATION A2 — YIELD COST: ULP (TLS SWITCHED) vs ULT (TLS IGNORED)")
	fmt.Fprintf(w, "%-10s %16s %16s %14s\n", "machine", "ULP yield[ns]", "ULT yield[ns]", "TLS share")
	fmt.Fprintln(w, strings.Repeat("-", 60))
	for _, name := range []string{"Wallaby", "Albireo"} {
		r := results[name]
		share := 1 - float64(r.NoTLS)/float64(r.WithTLS)
		fmt.Fprintf(w, "%-10s %16.1f %16.1f %13.0f%%\n",
			name, r.WithTLS.Nanoseconds(), r.NoTLS.Nanoseconds(), share*100)
	}
}

// --- A5: the Fig. 6 deployment sweep ------------------------------------

// Fig6Point is one configuration of the Fig. 6 scenario: NCsyscall
// dedicated syscall cores and an over-subscription factor O
// (NB = NCprog * (O+1), paper Eq. 2), running a syscall-heavy workload.
type Fig6Point struct {
	Machine      *arch.Machine
	SyscallCores int
	Oversub      int
	NumULPs      int
	Makespan     sim.Duration
	Throughput   float64 // consistent open-write-close brackets per ms
}

// Fig6Scenario runs the workload for each (NCsyscall, O) combination:
// every ULP alternates computation with a bracketed open-write-close.
func Fig6Scenario(m *arch.Machine, syscallCores []int, oversubs []int) ([]Fig6Point, error) {
	var out []Fig6Point
	const progCores = 2
	const opsPerULP = 8
	for _, nc := range syscallCores {
		for _, ov := range oversubs {
			numULPs := progCores * (ov + 1)
			cfg := core.Config{
				ProgCores:    seq(0, progCores),
				SyscallCores: seq(progCores, nc),
				Idle:         blt.Blocking,
			}
			var makespan sim.Duration
			e := sim.New()
			k := kernel.New(e, m)
			cfg.SchedPolicy = applyPolicy(k)
			finish := instrument(k)
			_, bootErr := core.Boot(k, cfg, func(rt *core.Runtime) int {
				start := e.Now()
				prog := benchImage("fig6", func(envI interface{}) int {
					env := envI.(*core.Env)
					env.Decouple()
					buf := make([]byte, 4096)
					for i := 0; i < opsPerULP; i++ {
						env.Compute(5 * sim.Microsecond)
						env.Exec(func(kc *kernel.Task) {
							fd, err := kc.Open(fmt.Sprintf("/f%d", env.U.Rank), fs.OCreate|fs.OWrOnly|fs.OTrunc)
							if err != nil {
								panic(err)
							}
							kc.Write(fd, buf, true)
							kc.Close(fd)
						})
						env.Yield()
					}
					env.Couple()
					return 0
				})
				for i := 0; i < numULPs; i++ {
					if _, err := rt.Spawn(prog, core.SpawnOpts{Scheduler: -1}); err != nil {
						panic(err)
					}
				}
				rt.WaitAll()
				makespan = e.Now().Sub(start)
				rt.Shutdown()
				return 0
			})
			if bootErr != nil {
				return nil, bootErr
			}
			if err := e.Run(); err != nil {
				return nil, err
			}
			finish()
			ops := float64(numULPs * opsPerULP)
			out = append(out, Fig6Point{
				Machine: m, SyscallCores: nc, Oversub: ov, NumULPs: numULPs,
				Makespan:   makespan,
				Throughput: ops / (float64(makespan) / 1e9),
			})
		}
	}
	return out, nil
}

// PrintFig6 renders A5.
func PrintFig6(w io.Writer, points []Fig6Point) {
	fmt.Fprintf(w, "ABLATION A5 — FIG.6 DEPLOYMENT SWEEP (%s, 2 prog cores, blocking idle)\n",
		points[0].Machine.Name)
	fmt.Fprintf(w, "%-14s %-8s %-8s %14s %16s\n", "syscall-cores", "O", "ULPs", "makespan[us]", "ops/ms")
	fmt.Fprintln(w, strings.Repeat("-", 64))
	for _, p := range points {
		fmt.Fprintf(w, "%-14d %-8d %-8d %14.1f %16.1f\n",
			p.SyscallCores, p.Oversub, p.NumULPs,
			p.Makespan.Microseconds(), p.Throughput)
	}
}

// seq returns [start, start+n).
func seq(start, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = start + i
	}
	return out
}
