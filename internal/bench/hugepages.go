package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/arch"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/sim"
)

// HugePageResult quantifies the paper's §VII remark that ULP/ULT cannot
// help with page-fault blocking, but that "in the context of HPC ...
// handling of page faults at ULP or ULT can be ignored if larger page
// sizes and/or populated mmap are used": first-touch cost of a working
// set under the three mapping strategies.
type HugePageResult struct {
	Machine   *arch.Machine
	SetBytes  uint64
	Mode      string // "4K demand", "2M huge", "4K populated"
	Faults    uint64
	TLBMisses uint64
	TouchTime sim.Duration // time to first-touch the whole set
	MapTime   sim.Duration // time spent in mmap (includes populate)
}

// HugePages measures all three strategies for a 32 MiB working set.
func HugePages(m *arch.Machine) ([]HugePageResult, error) {
	const set = 32 << 20
	modes := []struct {
		name      string
		huge      bool
		populated bool
	}{
		{"4K demand", false, false},
		{"2M huge", true, false},
		{"4K populated", false, true},
	}
	var out []HugePageResult
	for _, mode := range modes {
		res := HugePageResult{Machine: m, SetBytes: set, Mode: mode.name}
		err := RunKernel(m, func(k *kernel.Kernel, root *kernel.Task) {
			e := k.Engine()
			space := root.Space()
			before := space.Stats()
			t0 := e.Now()
			var addr uint64
			var err error
			if mode.huge {
				addr, err = space.MmapHuge(set, mem.ProtRead|mem.ProtWrite, "hp", mode.populated, kernelCharger{root})
			} else {
				addr, err = space.Mmap(set, mem.ProtRead|mem.ProtWrite, "hp", mode.populated, kernelCharger{root})
			}
			if err != nil {
				panic(err)
			}
			res.MapTime = e.Now().Sub(t0)
			t0 = e.Now()
			// First-touch sweep, one write per base page.
			one := []byte{1}
			for off := uint64(0); off < set; off += mem.PageSize {
				if err := root.MemWrite(addr+off, one); err != nil {
					panic(err)
				}
			}
			res.TouchTime = e.Now().Sub(t0)
			after := space.Stats()
			res.Faults = after.MinorFaults - before.MinorFaults
			res.TLBMisses = after.TLBMisses - before.TLBMisses
		})
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// PrintHugePages renders A8.
func PrintHugePages(w io.Writer, results []HugePageResult) {
	fmt.Fprintf(w, "ABLATION A8 — PAGE FAULTS: 32 MiB FIRST TOUCH (%s)\n", results[0].Machine.Name)
	fmt.Fprintf(w, "%-14s %10s %12s %14s %14s\n", "mapping", "faults", "TLB misses", "touch[us]", "mmap[us]")
	fmt.Fprintln(w, strings.Repeat("-", 68))
	for _, r := range results {
		fmt.Fprintf(w, "%-14s %10d %12d %14.1f %14.1f\n",
			r.Mode, r.Faults, r.TLBMisses,
			r.TouchTime.Microseconds(), r.MapTime.Microseconds())
	}
}

// kernelCharger adapts a task to mem.Charger.
type kernelCharger struct{ t *kernel.Task }

// Charge implements mem.Charger.
func (c kernelCharger) Charge(d sim.Duration) { c.t.Charge(d) }
