package bench

import (
	"sync"

	"repro/internal/kernel"
	"repro/internal/metrics"
)

// Metrics, when non-nil, aggregates the metric registries of every
// simulated kernel the harness builds (ulpbench -metrics-json). Each run
// gets its own private registry — the parallel sweeps share nothing hot —
// and the registries are folded in here under a lock once the run's
// engine has drained. Merge is commutative, so the aggregate is
// byte-identical at any -parallel width, like the results themselves.
var Metrics *metrics.Registry

var metricsMu sync.Mutex

// instrument attaches a fresh per-run registry to k when Metrics is set.
// The returned finish func finalizes the run's gauges and merges the
// registry into Metrics; with metrics off both are no-ops, so the
// measured workloads stay byte-for-byte untouched.
func instrument(k *kernel.Kernel) func() {
	if Metrics == nil {
		return func() {}
	}
	reg := metrics.NewRegistry()
	k.SetMetrics(reg)
	return func() {
		k.FinalizeMetrics()
		metricsMu.Lock()
		Metrics.Merge(reg)
		metricsMu.Unlock()
	}
}
