package bench

import (
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/supervise"
)

// The chaos-at-scale suite (ulpbench -scale -chaos) proves the
// supervision plane holds up at the machine's design-point task counts:
//
//   - spawn-join vs spawn-join-supervised: the same wave workload with
//     and without the plane installed, so the watchdog's overhead on the
//     spawn/block/wake fast paths is a directly diffable column (the
//     budget is <= 5% wall per op on the 100k row);
//   - chaos-fanin: n fault-robust waiters on one futex word under
//     injected lost wakes, spurious wakes and EINTR, with supervision
//     on. The row fails unless every waiter recovers within a bounded
//     virtual window, no tenant is stranded, the futex table drains, and
//     the watchdog saw neither deadlocks nor quarantines.
//
// Like the base scale suite, virtual columns are deterministic (minRow
// asserts exact repeats — the fault plane and restart jitter are seeded
// below) while wall/alloc columns are host-coloured; the JSON snapshot
// therefore goes to its own file, not BENCH_scale.json.

// chaosScaleSeed feeds the fault plane and the supervision plane's
// restart jitter. Fixed, so every repeat replays the same fault
// schedule and the virtual column repeats exactly.
const chaosScaleSeed = 0xc4a05

// Fault-robust waiter backoff bounds (same shape as the aio/blt
// lost-wake recovery): a dropped wake costs at most the max backoff.
const (
	chaosWaitBase = 10 * sim.Microsecond
	chaosWaitMax  = 1 * sim.Millisecond
)

// Recovery budget from the release flag being published to root
// observing an empty futex word. Two components: a fixed fault-recovery
// term (each timed wait re-checks the flag within chaosWaitMax, so a
// lost wake costs at most one backoff), plus a per-task dispatch
// allowance — the n woken waiters drain through the machine's few cores
// at Θ(n) virtual cost (the base fan-in row runs ~0.3 µs/op on Wallaby
// and ~1.6 µs/op on Albireo), and root's observation is queued behind
// that herd. Recovery beyond the sum means the wake path stranded
// someone.
const (
	chaosRecoveryFixed   = 10 * sim.Millisecond
	chaosRecoveryPerTask = 2 * sim.Microsecond
)

func chaosRecoveryBound(n int) sim.Duration {
	return chaosRecoveryFixed + sim.Duration(n)*chaosRecoveryPerTask
}

// FullChaosScaleConfig is the 100k-ULP chaos-at-scale configuration the
// EXPERIMENTS.md numbers come from.
func FullChaosScaleConfig() ScaleConfig {
	return ScaleConfig{
		Label:     "chaos-full",
		SpawnJoin: []int{100_000},
		FanIn:     []int{10_000, 100_000},
	}
}

// QuickChaosScaleConfig is the CI-sized chaos-at-scale configuration
// behind -scale -chaos -quick.
func QuickChaosScaleConfig() ScaleConfig {
	return ScaleConfig{
		Label:     "chaos-quick",
		SpawnJoin: []int{10_000},
		FanIn:     []int{2_048},
	}
}

// ChaosScale runs the chaos-at-scale suite on machine m. ChurnWords is
// unused here; the base suite owns that series.
func ChaosScale(m *arch.Machine, cfg ScaleConfig) (ScaleResult, error) {
	res := ScaleResult{Machine: m, Config: cfg}
	add := func(f func() (ScaleRow, error)) error {
		row, err := minRow(f)
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, row)
		return nil
	}
	for _, n := range cfg.SpawnJoin {
		bare, supd, err := pairedMinRows(
			func() (ScaleRow, error) { return scaleSpawnJoin(m, n) },
			func() (ScaleRow, error) { return chaosSpawnJoinSupervised(m, n) },
		)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, bare, supd)
	}
	for _, n := range cfg.FanIn {
		n := n
		if err := add(func() (ScaleRow, error) { return chaosFanIn(m, n) }); err != nil {
			return res, err
		}
	}
	return res, nil
}

// pairedMinRows is minRow over two workloads with their repetitions
// interleaved A,B,A,B,… instead of A×Runs then B×Runs. The wall columns
// drift a few percent over a process's lifetime (heap growth, GC state)
// even with the scaleRun GC barrier, so back-to-back series acquire a
// positional bias about as large as the effect the supervision-overhead
// column measures; alternating exposes both series to the same drift.
func pairedMinRows(fa, fb func() (ScaleRow, error)) (ScaleRow, ScaleRow, error) {
	bestA, err := fa()
	if err != nil {
		return bestA, ScaleRow{}, err
	}
	bestB, err := fb()
	if err != nil {
		return bestA, bestB, err
	}
	for i := 1; i < Runs; i++ {
		if err := minInto(&bestA, fa); err != nil {
			return bestA, bestB, err
		}
		if err := minInto(&bestB, fb); err != nil {
			return bestA, bestB, err
		}
	}
	return bestA, bestB, nil
}

// minInto folds one more repetition into best, with minRow's
// determinism assertion on the virtual columns.
func minInto(best *ScaleRow, f func() (ScaleRow, error)) error {
	r, err := f()
	if err != nil {
		return err
	}
	if r.Virt != best.Virt || r.TablePeak != best.TablePeak || r.TableEnd != best.TableEnd {
		return fmt.Errorf("%s n=%d: non-deterministic repeat (virt %v vs %v, table %d/%d vs %d/%d)",
			best.Series, best.N, r.Virt, best.Virt, r.TablePeak, r.TableEnd, best.TablePeak, best.TableEnd)
	}
	if r.Wall < best.Wall {
		best.Wall = r.Wall
	}
	if r.Allocs < best.Allocs {
		best.Allocs = r.Allocs
	}
	return nil
}

// chaosSpawnJoinSupervised is scaleSpawnJoin with the supervision plane
// installed (watchdog on, no limits): the overhead row. The workload is
// identical, so any wall/op delta against the bare spawn-join row is the
// plane's hook cost on the clone/block/unblock/exit fast paths.
func chaosSpawnJoinSupervised(m *arch.Machine, n int) (ScaleRow, error) {
	row := ScaleRow{Series: "spawn-join-supervised", N: n}
	var bodyErr error
	wall, allocs, err := scaleRun(m, func(k *kernel.Kernel, root *kernel.Task) {
		e := k.Engine()
		sup := supervise.New(k, supervise.Config{Seed: chaosScaleSeed})
		sup.Install()
		const wave = 256
		kids := make([]*kernel.Task, 0, wave)
		t0 := e.Now()
		for done := 0; done < n; {
			b := min(wave, n-done)
			kids = kids[:0]
			for i := 0; i < b; i++ {
				kids = append(kids, root.Clone("sj", kernel.PThreadFlags, func(t *kernel.Task) int { return 0 }))
			}
			for _, c := range kids {
				if root.Join(c) != 0 {
					bodyErr = fmt.Errorf("spawn-join-supervised: child exited non-zero")
					return
				}
			}
			done += b
		}
		row.Virt = e.Now().Sub(t0)
		row.TableEnd = k.FutexTableSize()
		if dl := sup.Deadlocks(); len(dl) != 0 {
			bodyErr = fmt.Errorf("spawn-join-supervised: watchdog reported %d deadlock(s) on a deadlock-free workload", len(dl))
		}
	})
	if err == nil {
		err = bodyErr
	}
	row.Wall, row.Allocs = wall, allocs
	return row, err
}

// chaosFanIn blocks n fault-robust waiters on one futex word under an
// injected futex fault mix, then releases them through a flag write plus
// a re-wake loop, with the supervision plane watching. The row errors if
// recovery exceeds chaosRecoveryBound(n), any waiter is stranded, the
// futex table retains entries, no fault actually fired, or the plane
// recorded a deadlock or quarantine.
func chaosFanIn(m *arch.Machine, n int) (ScaleRow, error) {
	row := ScaleRow{Series: "chaos-fanin", N: n}
	var bodyErr error
	fail := func(format string, args ...interface{}) {
		bodyErr = fmt.Errorf("chaos-fanin n=%d: "+format, append([]interface{}{n}, args...)...)
	}
	wall, allocs, err := scaleRun(m, func(k *kernel.Kernel, root *kernel.Task) {
		e := k.Engine()
		plane := fault.NewPlane(chaosScaleSeed, []fault.Spec{
			{Site: fault.SiteFutexLostWake, Prob: 0.05, TaskPrefix: "cfw"},
			{Site: fault.SiteFutexSpurious, Prob: 0.05, TaskPrefix: "cfw"},
			{Site: fault.SiteFutexWait, Prob: 0.02, Err: "eintr", TaskPrefix: "cfw"},
		})
		k.SetFaultPlane(plane)
		sup := supervise.New(k, supervise.Config{Seed: chaosScaleSeed})
		sup.Install()
		space := root.Space()
		addr, merr := space.Mmap(8, mem.ProtRead|mem.ProtWrite, "chaos-fanin-word", true, nil)
		if merr != nil {
			bodyErr = merr
			return
		}
		t0 := e.Now()
		waiters := make([]*kernel.Task, n)
		for i := range waiters {
			waiters[i] = root.Clone("cfw", kernel.PThreadFlags, func(t *kernel.Task) int {
				// The release flag makes the waiter immune to every
				// injected futex misbehaviour: a lost wake only costs the
				// current backoff, a spurious wake or EINTR just
				// re-checks.
				var backoff sim.Duration
				for {
					v, rerr := t.Space().ReadU64(addr, nil)
					if rerr != nil {
						return 1
					}
					if v == 1 {
						return 0
					}
					if backoff == 0 {
						backoff = chaosWaitBase
					} else if backoff < chaosWaitMax {
						backoff *= 2
					}
					switch t.FutexWaitTimeout(addr, 0, backoff) {
					case nil, kernel.ErrFutexAgain, kernel.ErrInterrupted, kernel.ErrTimedOut:
					default:
						return 1
					}
				}
			})
		}
		// Let the herd park, publish the release flag, then re-wake while
		// sleepers remain: an injected lost wake strands its target only
		// until the next re-wake round or its own backoff timeout.
		root.Nanosleep(200 * sim.Microsecond)
		row.TablePeak = k.FutexTableSize()
		space.WriteU64(addr, 1, nil)
		wakeStart := e.Now()
		root.FutexWake(addr, n)
		for k.FutexWaiters(space.ID, addr) > 0 {
			root.Nanosleep(20 * sim.Microsecond)
			root.FutexWake(addr, n)
		}
		recovery := e.Now().Sub(wakeStart)
		for _, w := range waiters {
			if root.Join(w) != 0 {
				fail("waiter exited non-zero")
				return
			}
		}
		row.Virt = e.Now().Sub(t0)
		row.TableEnd = k.FutexTableSize()
		switch {
		case recovery > chaosRecoveryBound(n):
			fail("recovery took %v, bound %v", recovery, chaosRecoveryBound(n))
		case plane.Injections() == 0:
			fail("fault plane fired nothing — the row proved nothing")
		case row.TableEnd != 0:
			fail("futex table retains %d entries at quiescence", row.TableEnd)
		case len(sup.Deadlocks()) != 0:
			fail("watchdog reported %d deadlock(s)", len(sup.Deadlocks()))
		case sup.Quarantines() != 0:
			fail("%d tenant(s) quarantined; the restart budget must not exhaust here", sup.Quarantines())
		}
	})
	if err == nil {
		err = bodyErr
	}
	row.Wall, row.Allocs = wall, allocs
	return row, err
}

// PrintChaosScale renders the chaos-at-scale suite: the shared row table
// plus the supervision-overhead line the suite exists to pin.
func PrintChaosScale(w io.Writer, r ScaleResult) {
	PrintScale(w, r)
	base := map[int]ScaleRow{}
	for _, row := range r.Rows {
		if row.Series == "spawn-join" {
			base[row.N] = row
		}
	}
	for _, row := range r.Rows {
		if row.Series != "spawn-join-supervised" {
			continue
		}
		b, ok := base[row.N]
		if !ok || b.WallPerOp() <= 0 {
			continue
		}
		fmt.Fprintf(w, "  supervision overhead @ %d: %+.1f%% wall/op (%.0f -> %.0f ns)\n",
			row.N, 100*(row.WallPerOp()-b.WallPerOp())/b.WallPerOp(), b.WallPerOp(), row.WallPerOp())
	}
}
