package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallelism is the worker-pool width used by experiment sweeps: the
// Fig. 7/8 size × mechanism grids and the Tables III–V machine loops run
// as independent jobs, each on its own Engine. 1 means strictly serial.
// Results are always collected by job index, so the rendered output is
// identical at any width (the simulation itself is deterministic per
// engine). Set from ulpbench's -parallel flag.
var Parallelism = runtime.GOMAXPROCS(0)

// sweep runs n independent jobs on a worker pool of width Parallelism.
// Each job must confine its writes to its own result slot (slice index);
// jobs share no simulation state — every measurement stands up a fresh
// Engine. The reported error is the failing job with the lowest index
// regardless of width, so error output is deterministic too (serial mode
// stops at the first failure; parallel mode drains the started jobs).
func sweep(n int, job func(i int) error) error {
	workers := Parallelism
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				errs[i] = job(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
