package bench

import (
	"repro/internal/arch"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/uctx"
)

// Table3Result reproduces paper Table III: the raw user-level context
// switch time and the TLS-register load time on each machine.
type Table3Result struct {
	CtxSwitch Measurement
	LoadTLS   Measurement
}

// Table3 measures the two primitives on machine m.
//
// Context switch: two fcontext-style user contexts ping-pong on a single
// kernel task, each transfer charging one swap — the Boost fcontext
// microbenchmark. Load TLS: a tight loop of TLS-register loads
// (arch_prctl on x86_64; a register write on AArch64).
func Table3(m *arch.Machine) (Table3Result, error) {
	var res Table3Result

	swap, err := MinOf(func() (sim.Duration, error) {
		var per sim.Duration
		err := RunKernel(m, func(k *kernel.Kernel, root *kernel.Task) {
			const warm, n = 16, 512
			costs := k.Machine().Costs
			// Two contexts ping-ponging: context A is the measuring
			// loop, context B just bounces back.
			var a, b *uctx.Context
			b = uctx.New("b", func(c *uctx.Context) {
				for {
					c.Yield(nil)
				}
			})
			var t0, t1 sim.Time
			a = uctx.New("a", func(c *uctx.Context) {
				e := root.Kernel().Engine()
				for i := 0; i < warm+n; i++ {
					if i == warm {
						t0 = e.Now()
					}
					// swap_ctx(a, b): one save+load.
					root.Charge(costs.UserCtxSwap)
					c.Yield(nil)
				}
				t1 = e.Now()
			})
			for !a.Done() {
				if ev := a.Step(root); ev.Kind == uctx.EvExit {
					break
				}
				root.Charge(costs.UserCtxSwap)
				b.Step(root)
			}
			b.Kill()
			// Each iteration of a is one a->b swap and one b->a swap.
			per = sim.Duration(float64(t1.Sub(t0)) / float64(2*n))
		})
		return per, err
	})
	if err != nil {
		return res, err
	}
	res.CtxSwitch = NewMeasurement(m, "Context Sw.", swap)

	tls, err := MinOf(func() (sim.Duration, error) {
		var per sim.Duration
		err := RunKernel(m, func(k *kernel.Kernel, root *kernel.Task) {
			e := k.Engine()
			const warm, n = 16, 512
			var t0 sim.Time
			for i := 0; i < warm+n; i++ {
				if i == warm {
					t0 = e.Now()
				}
				root.LoadTLS(uint64(0x1000 + i))
			}
			per = sim.Duration(float64(e.Now().Sub(t0)) / float64(n))
		})
		return per, err
	})
	if err != nil {
		return res, err
	}
	res.LoadTLS = NewMeasurement(m, "Load TLS", tls)
	return res, nil
}
