package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/arch"
	"repro/internal/blt"
	"repro/internal/kernel"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// MPIPoint is one configuration of the MPI oversubscription experiment
// (§III motivation): fixed program cores, growing rank counts. Under
// kernel threads each extra rank costs kernel context switches; under
// ULP ranks the switch is user-level, so per-rank efficiency holds.
type MPIPoint struct {
	Machine  *arch.Machine
	Ranks    int
	Makespan sim.Duration
	// Efficiency is work-per-core-time relative to the 1-rank-per-core
	// configuration (1.0 = oversubscription costs nothing).
	Efficiency float64
}

// MPIOversubscription measures a halo-exchange+compute workload at the
// given rank counts on 2 program cores.
func MPIOversubscription(m *arch.Machine, rankCounts []int) ([]MPIPoint, error) {
	const rounds = 6
	const computePerRound = 20 * sim.Microsecond
	var out []MPIPoint
	var baselinePerRank float64
	for _, ranks := range rankCounts {
		e := sim.New()
		k := kernel.New(e, m)
		ultPol := applyPolicy(k)
		finish := instrument(k)
		var makespan sim.Duration
		program := func(r *mpi.Rank) int {
			right := (r.Rank() + 1) % r.Size()
			left := (r.Rank() + r.Size() - 1) % r.Size()
			if err := r.Barrier(); err != nil {
				return 9
			}
			var t0 sim.Time
			if r.Rank() == 0 {
				t0 = e.Now()
			}
			for round := 0; round < rounds; round++ {
				if err := r.Send(right, round, []byte{byte(r.Rank())}); err != nil {
					return 1
				}
				if _, _, _, err := r.Recv(left, round); err != nil {
					return 2
				}
				r.Env().Compute(computePerRound)
			}
			if err := r.Barrier(); err != nil {
				return 9
			}
			if r.Rank() == 0 {
				makespan = e.Now().Sub(t0)
			}
			return 0
		}
		_, statuses, err := mpi.Run(k, mpi.Config{
			ProgCores:    []int{0, 1},
			SyscallCores: []int{2, 3},
			Idle:         blt.BusyWait,
			SchedPolicy:  ultPol,
		}, ranks, program)
		if err != nil {
			return nil, err
		}
		finish()
		for i, s := range statuses {
			if s != 0 {
				return nil, fmt.Errorf("mpi bench: rank %d exited %d", i, s)
			}
		}
		perRank := float64(makespan) / float64(ranks)
		if baselinePerRank == 0 {
			baselinePerRank = perRank
		}
		out = append(out, MPIPoint{
			Machine:    m,
			Ranks:      ranks,
			Makespan:   makespan,
			Efficiency: baselinePerRank / perRank,
		})
	}
	return out, nil
}

// PrintMPI renders the oversubscription sweep.
func PrintMPI(w io.Writer, points []MPIPoint) {
	fmt.Fprintf(w, "MPI OVER ULP RANKS — OVERSUBSCRIPTION ON 2 PROGRAM CORES (%s)\n",
		points[0].Machine.Name)
	fmt.Fprintf(w, "%-8s %14s %14s\n", "ranks", "makespan[us]", "efficiency")
	fmt.Fprintln(w, strings.Repeat("-", 40))
	for _, p := range points {
		fmt.Fprintf(w, "%-8d %14.1f %14.2f\n",
			p.Ranks, p.Makespan.Microseconds(), p.Efficiency)
	}
}
