package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/blt"
	"repro/internal/sim"
)

func init() {
	// The simulation is deterministic; one run per measurement keeps
	// the test suite fast without changing any result.
	Runs = 1
}

// within asserts v is within tol (fractional) of want.
func within(t *testing.T, name string, v, want, tol float64) {
	t.Helper()
	if v < want*(1-tol) || v > want*(1+tol) {
		t.Errorf("%s = %v, want %v ± %.0f%%", name, v, want, tol*100)
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	r, err := Table3(arch.Wallaby())
	if err != nil {
		t.Fatal(err)
	}
	within(t, "Wallaby ctxsw ns", r.CtxSwitch.Time.Nanoseconds(), 33.4, 0.03)
	within(t, "Wallaby TLS ns", r.LoadTLS.Time.Nanoseconds(), 109, 0.03)
	within(t, "Wallaby ctxsw cycles", r.CtxSwitch.Cycles, 86, 0.05)
	if !r.CtxSwitch.HasCyc {
		t.Error("Wallaby must report cycles")
	}

	r, err = Table3(arch.Albireo())
	if err != nil {
		t.Fatal(err)
	}
	within(t, "Albireo ctxsw ns", r.CtxSwitch.Time.Nanoseconds(), 24.5, 0.03)
	within(t, "Albireo TLS ns", r.LoadTLS.Time.Nanoseconds(), 2.5, 0.03)
	if r.LoadTLS.HasCyc {
		t.Error("Albireo must not report cycles (no RDTSC)")
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	// Paper Table IV: Wallaby 150/266/77.9 ns, Albireo 120/1220/348 ns.
	r, err := Table4(arch.Wallaby())
	if err != nil {
		t.Fatal(err)
	}
	within(t, "Wallaby ULP yield", r.ULPYield.Time.Nanoseconds(), 150, 0.07)
	within(t, "Wallaby yield 1core", r.SchedYield1Core.Time.Nanoseconds(), 266, 0.07)
	within(t, "Wallaby yield 2core", r.SchedYield2Core.Time.Nanoseconds(), 77.9, 0.07)
	// The paper's observation: on Wallaby sched_yield on 2 cores beats
	// the ULP yield (slow x86 TLS load).
	if r.SchedYield2Core.Time >= r.ULPYield.Time {
		t.Error("Wallaby: 2-core sched_yield should beat ULP yield")
	}

	r, err = Table4(arch.Albireo())
	if err != nil {
		t.Fatal(err)
	}
	within(t, "Albireo ULP yield", r.ULPYield.Time.Nanoseconds(), 120, 0.07)
	within(t, "Albireo yield 1core", r.SchedYield1Core.Time.Nanoseconds(), 1220, 0.07)
	within(t, "Albireo yield 2core", r.SchedYield2Core.Time.Nanoseconds(), 348, 0.07)
	// On Albireo the ULP yield beats both kernel variants.
	if r.ULPYield.Time >= r.SchedYield2Core.Time {
		t.Error("Albireo: ULP yield should beat even 2-core sched_yield")
	}
}

func TestTable5MatchesPaper(t *testing.T) {
	// Paper Table V: Wallaby 67.1/1330/2910 ns, Albireo 385/2710/4480.
	r, err := Table5(arch.Wallaby())
	if err != nil {
		t.Fatal(err)
	}
	within(t, "Wallaby linux", r.Linux.Time.Nanoseconds(), 67.1, 0.05)
	within(t, "Wallaby busywait", r.BusyWait.Time.Nanoseconds(), 1330, 0.10)
	within(t, "Wallaby blocking", r.Blocking.Time.Nanoseconds(), 2910, 0.10)

	r, err = Table5(arch.Albireo())
	if err != nil {
		t.Fatal(err)
	}
	within(t, "Albireo linux", r.Linux.Time.Nanoseconds(), 385, 0.05)
	within(t, "Albireo busywait", r.BusyWait.Time.Nanoseconds(), 2710, 0.10)
	within(t, "Albireo blocking", r.Blocking.Time.Nanoseconds(), 4480, 0.10)
	if !(r.Linux.Time < r.BusyWait.Time && r.BusyWait.Time < r.Blocking.Time) {
		t.Error("Table V ordering violated")
	}
}

func TestFig7WallabyULPWinsEverywhere(t *testing.T) {
	// Paper: "On Wallaby, ULP-PiP outperforms the AIO in all cases."
	m := arch.Wallaby()
	for _, size := range []int{64, 4096, 262144} {
		base, err := owcBaseline(m, size)
		if err != nil {
			t.Fatal(err)
		}
		ulpB, _ := owcULP(m, size, blt.BusyWait)
		ulpK, _ := owcULP(m, size, blt.Blocking)
		aioR, _ := owcAIO(m, size, false)
		aioS, _ := owcAIO(m, size, true)
		if ulpB >= aioR {
			t.Errorf("size %d: ULP-busywait (%v) >= AIO-return (%v)", size, ulpB, aioR)
		}
		if ulpK >= aioS {
			t.Errorf("size %d: ULP-blocking (%v) >= AIO-suspend (%v)", size, ulpK, aioS)
		}
		if base >= ulpB {
			t.Errorf("size %d: baseline (%v) not fastest", size, base)
		}
	}
}

func TestFig7AlbireoCrossover(t *testing.T) {
	// Paper: "On Albireo ... ULP-PiP's busy-waiting outperforms AIO
	// slightly if the buffer sizes are less than 32 KiB" — and loses
	// above it.
	m := arch.Albireo()
	small, large := 1024, 1<<20
	ulpSmall, err := owcULP(m, small, blt.BusyWait)
	if err != nil {
		t.Fatal(err)
	}
	aioSmall, _ := owcAIO(m, small, false)
	ulpLarge, _ := owcULP(m, large, blt.BusyWait)
	aioLarge, _ := owcAIO(m, large, false)
	if ulpSmall >= aioSmall {
		t.Errorf("small size: ULP (%v) should beat AIO (%v)", ulpSmall, aioSmall)
	}
	if ulpLarge <= aioLarge {
		t.Errorf("large size: AIO (%v) should beat ULP (%v)", aioLarge, ulpLarge)
	}
}

func TestFig7SlowdownDecreasesWithSize(t *testing.T) {
	m := arch.Wallaby()
	var prev float64
	for i, size := range []int{64, 4096, 262144} {
		base, err := owcBaseline(m, size)
		if err != nil {
			t.Fatal(err)
		}
		d, err := owcULP(m, size, blt.BusyWait)
		if err != nil {
			t.Fatal(err)
		}
		slow := float64(d) / float64(base)
		if i > 0 && slow >= prev {
			t.Errorf("slowdown not decreasing: %v at %d after %v", slow, size, prev)
		}
		prev = slow
	}
}

func TestFig8PaperClaims(t *testing.T) {
	// Paper: ULP overlap >70% on Wallaby, >80% on Albireo; all AIO
	// cases <70%.
	check := func(m *arch.Machine, ulpFloor float64) {
		for _, size := range []int{64, 4096, 32768} {
			tPure, err := owcBaseline(m, size)
			if err != nil {
				t.Fatal(err)
			}
			tCPU := tPure
			for _, idle := range []blt.IdlePolicy{blt.BusyWait, blt.Blocking} {
				d, err := overlapULP(m, size, tCPU, idle)
				if err != nil {
					t.Fatal(err)
				}
				ov := IMBOverlap(tPure, tCPU, d)
				if ov < ulpFloor {
					t.Errorf("%s size %d %v: ULP overlap %.1f%% < %.0f%%", m.Name, size, idle, ov, ulpFloor)
				}
			}
			for _, suspend := range []bool{false, true} {
				d, err := overlapAIO(m, size, tCPU, suspend)
				if err != nil {
					t.Fatal(err)
				}
				ov := IMBOverlap(tPure, tCPU, d)
				if ov >= 70 {
					t.Errorf("%s size %d AIO(suspend=%v): overlap %.1f%% >= 70%%", m.Name, size, suspend, ov)
				}
			}
		}
	}
	check(arch.Wallaby(), 70)
	check(arch.Albireo(), 80)
}

func TestIMBOverlapFormula(t *testing.T) {
	// Perfect overlap: t_ovrl == max(t_pure, t_cpu) == both equal.
	if got := IMBOverlap(100, 100, 100); got != 100 {
		t.Errorf("perfect overlap = %v, want 100", got)
	}
	// No overlap: fully serialized.
	if got := IMBOverlap(100, 100, 200); got != 0 {
		t.Errorf("no overlap = %v, want 0", got)
	}
	// Half overlap.
	if got := IMBOverlap(100, 100, 150); got != 50 {
		t.Errorf("half overlap = %v, want 50", got)
	}
	// Clamping.
	if got := IMBOverlap(100, 100, 300); got != 0 {
		t.Errorf("over-serialized = %v, want 0 (clamped)", got)
	}
	if got := IMBOverlap(100, 100, 50); got != 100 {
		t.Errorf("impossible = %v, want 100 (clamped)", got)
	}
	if got := IMBOverlap(0, 0, 0); got != 0 {
		t.Errorf("degenerate = %v, want 0", got)
	}
}

func TestIdleAblationTradeoff(t *testing.T) {
	r, err := AblateIdlePolicy(arch.Wallaby())
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 2 {
		t.Fatalf("results = %d", len(r))
	}
	busy, blocking := r[0], r[1]
	if busy.GetpidLatency >= blocking.GetpidLatency {
		t.Error("busy-wait should have lower latency")
	}
	if busy.SpunKC == 0 && busy.SpunScheds == 0 {
		t.Error("busy-wait should burn idle cycles")
	}
	if blocking.SpunKC != 0 {
		t.Error("blocking should burn no KC idle cycles")
	}
}

func TestTLSAblationShares(t *testing.T) {
	w, err := AblateTLS(arch.Wallaby())
	if err != nil {
		t.Fatal(err)
	}
	a, err := AblateTLS(arch.Albireo())
	if err != nil {
		t.Fatal(err)
	}
	// x86: TLS dominates the yield; ARM: negligible (§VIII).
	wShare := 1 - float64(w.NoTLS)/float64(w.WithTLS)
	aShare := 1 - float64(a.NoTLS)/float64(a.WithTLS)
	if wShare < 0.5 {
		t.Errorf("Wallaby TLS share = %.2f, want > 0.5", wShare)
	}
	if aShare > 0.1 {
		t.Errorf("Albireo TLS share = %.2f, want < 0.1", aShare)
	}
}

func TestFig6ScenarioShapes(t *testing.T) {
	pts, err := Fig6Scenario(arch.Wallaby(), []int{1, 2}, []int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	byKey := map[[2]int]Fig6Point{}
	for _, p := range pts {
		byKey[[2]int{p.SyscallCores, p.Oversub}] = p
		if p.Throughput <= 0 {
			t.Errorf("nonpositive throughput: %+v", p)
		}
	}
	// Over-subscription hides syscall latency: more ops/ms at O=3.
	if byKey[[2]int{2, 3}].Throughput <= byKey[[2]int{2, 0}].Throughput {
		t.Error("oversubscription did not improve throughput")
	}
}

func TestPrintersProduceTables(t *testing.T) {
	r3, err := MachineResults(Table3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintTable3(&buf, r3)
	out := buf.String()
	for _, want := range []string{"TABLE III", "Wallaby", "Albireo", "Context Sw.", "Load TLS", "3.34E-08"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table III output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	series := []Series{
		{Label: "a", Points: []Point{{64, 1.5}, {128, 1.2}}},
		{Label: "b", Points: []Point{{64, 2.0}, {128, 1.8}}},
	}
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || lines[0] != "x,a,b" {
		t.Errorf("csv = %q", buf.String())
	}
	if !strings.HasPrefix(lines[1], "64,1.5") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestMinOfTakesMinimum(t *testing.T) {
	old := Runs
	Runs = 3
	defer func() { Runs = old }()
	vals := []sim.Duration{30, 10, 20}
	i := 0
	d, err := MinOf(func() (sim.Duration, error) {
		v := vals[i]
		i++
		return v, nil
	})
	if err != nil || d != 10 {
		t.Errorf("MinOf = %v, %v", d, err)
	}
}

func TestAllPrintersRender(t *testing.T) {
	var buf bytes.Buffer

	r4, err := MachineResults(Table4)
	if err != nil {
		t.Fatal(err)
	}
	PrintTable4(&buf, r4)
	if !strings.Contains(buf.String(), "ULP-PiP yield") {
		t.Error("Table IV printer")
	}

	buf.Reset()
	r5, err := MachineResults(Table5)
	if err != nil {
		t.Fatal(err)
	}
	PrintTable5(&buf, r5)
	if !strings.Contains(buf.String(), "BUSYWAIT") {
		t.Error("Table V printer")
	}

	buf.Reset()
	f7 := Fig7Result{
		Machine:  arch.Wallaby(),
		Sizes:    []int{64, 128},
		Baseline: []sim.Duration{100, 200},
		Times: map[string][]sim.Duration{
			"ULP-BUSYWAIT": {150, 250}, "ULP-BLOCKING": {160, 260},
			"AIO-return": {170, 270}, "AIO-suspend": {180, 280},
		},
	}
	PrintFig7(&buf, f7)
	if !strings.Contains(buf.String(), "FIGURE 7") {
		t.Error("Fig 7 printer")
	}
	if got := f7.Slowdown("ULP-BUSYWAIT"); got[0] != 1.5 || got[1] != 1.25 {
		t.Errorf("Slowdown = %v", got)
	}
	if s := f7.Series(); len(s) != 4 || s[0].Points[0].Y != 1.5 {
		t.Errorf("Series = %+v", s)
	}

	buf.Reset()
	f8 := Fig8Result{
		Machine: arch.Albireo(),
		Sizes:   []int{64},
		Overlap: map[string][]float64{
			"ULP-BUSYWAIT": {80}, "ULP-BLOCKING": {85},
			"AIO-return": {10}, "AIO-suspend": {12},
		},
	}
	PrintFig8(&buf, f8)
	if !strings.Contains(buf.String(), "FIGURE 8") {
		t.Error("Fig 8 printer")
	}
	if s := f8.Series(); len(s) != 4 || s[1].Points[0].Y != 85 {
		t.Errorf("Fig8 Series = %+v", s)
	}

	buf.Reset()
	pts, err := MPIOversubscription(arch.Wallaby(), []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	PrintMPI(&buf, pts)
	if !strings.Contains(buf.String(), "OVERSUBSCRIPTION") {
		t.Error("MPI printer")
	}
	if pts[1].Efficiency < 0.9 {
		t.Errorf("efficiency at 2x = %v", pts[1].Efficiency)
	}

	buf.Reset()
	hp, err := HugePages(arch.Wallaby())
	if err != nil {
		t.Fatal(err)
	}
	PrintHugePages(&buf, hp)
	if !strings.Contains(buf.String(), "PAGE FAULTS") {
		t.Error("huge-page printer")
	}
	if hp[1].Faults*100 > hp[0].Faults {
		t.Errorf("huge faults %d vs base %d", hp[1].Faults, hp[0].Faults)
	}
	// Populated: faults equal to demand, but touch time far smaller.
	if hp[2].Faults != hp[0].Faults {
		t.Errorf("populated faults %d != demand %d", hp[2].Faults, hp[0].Faults)
	}
	if hp[2].TouchTime*10 > hp[0].TouchTime {
		t.Errorf("populated touch %v not ≪ demand %v", hp[2].TouchTime, hp[0].TouchTime)
	}

	buf.Reset()
	ia, err := AblateIdlePolicy(arch.Albireo())
	if err != nil {
		t.Fatal(err)
	}
	PrintIdleAblation(&buf, ia)
	tl, err := MachineResults(AblateTLS)
	if err != nil {
		t.Fatal(err)
	}
	PrintTLSAblation(&buf, tl)
	f6, err := Fig6Scenario(arch.Wallaby(), []int{1}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	PrintFig6(&buf, f6)
	if !strings.Contains(buf.String(), "DEPLOYMENT SWEEP") {
		t.Error("Fig 6 printer")
	}
}

func TestAsciiChart(t *testing.T) {
	series := []Series{
		{Label: "up", Points: []Point{{1, 0}, {2, 5}, {3, 10}}},
		{Label: "down", Points: []Point{{1, 10}, {2, 5}, {3, 0}}},
	}
	out := AsciiChart(series, 30, 8)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("chart missing glyphs:\n%s", out)
	}
	if !strings.Contains(out, "up") || !strings.Contains(out, "down") {
		t.Errorf("chart missing legend:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 8+3 {
		t.Errorf("chart has %d lines, want 11", len(lines))
	}
	if AsciiChart(nil, 10, 5) != "(no data)\n" {
		t.Error("empty chart")
	}
	// Flat data must not divide by zero.
	flat := []Series{{Label: "f", Points: []Point{{1, 2}, {2, 2}}}}
	if out := AsciiChart(flat, 10, 4); out == "" {
		t.Error("flat chart empty")
	}
}

func TestWriteSeriesMarkdown(t *testing.T) {
	var buf bytes.Buffer
	writeSeriesMarkdown(&buf, "x", []Series{
		{Label: "a", Points: []Point{{64, 1.5}}},
		{Label: "b", Points: []Point{{64, 2.25}}},
	})
	out := buf.String()
	for _, want := range []string{"| x | a | b |", "| 64 | 1.500 | 2.250 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}
