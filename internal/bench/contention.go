package bench

import (
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/sim"
	usync "repro/internal/sync"
)

// The contention suite sweeps the lock lab (internal/sync) over
// contention level and ULT:KC oversubscription on both machine cost
// models: every algorithm × thread count × threads-per-core ratio, a
// fixed total acquisition budget split across the threads, and the
// acquisition-latency distribution pulled from the metrics plane. All
// columns are virtual — the suite is fully deterministic, so repeats
// must match exactly and the quick grid is a strict subset of the full
// grid (shared rows are byte-identical, making CI diffs meaningful).

// ContentionConfig sizes one contention-suite run.
type ContentionConfig struct {
	Label   string
	Locks   []string // algorithms (subset of sync.Names)
	Threads []int    // contending thread counts
	Ratios  []int    // threads-per-core oversubscription ratios
	Iters   int      // total acquisitions per row, split across threads
}

// FullContentionConfig is the committed-BENCH_contention.json grid.
// Iters is divisible by every thread count so each thread's share is
// exact.
func FullContentionConfig() ContentionConfig {
	return ContentionConfig{
		Label:   "full",
		Locks:   usync.Names(),
		Threads: []int{2, 4, 8, 16},
		Ratios:  []int{1, 4},
		Iters:   240,
	}
}

// QuickContentionConfig is the CI grid: a strict subset of the full
// grid with identical Iters, so every row it produces appears
// byte-identically in the full snapshot.
func QuickContentionConfig() ContentionConfig {
	return ContentionConfig{
		Label:   "quick",
		Locks:   []string{"ticket", "mcs", "futex"},
		Threads: []int{2, 8},
		Ratios:  []int{1, 4},
		Iters:   240,
	}
}

// ContentionRow is one cell of the sweep: Iters acquisitions of one
// algorithm by Threads threads pinned round-robin onto Cores cores.
type ContentionRow struct {
	Lock    string
	Threads int
	Ratio   int // requested threads-per-core ratio
	Cores   int // cores actually used (ratio capped by the machine)

	Virt      sim.Duration // virtual time for the whole row
	AcqP50    sim.Duration // median lock-acquisition latency
	AcqP99    sim.Duration // 99th-percentile acquisition latency
	Contended uint64       // acquisitions that left the fast path
}

// NsPerOp returns virtual nanoseconds per acquisition.
func (r ContentionRow) NsPerOp(iters int) float64 { return r.Virt.Nanoseconds() / float64(iters) }

// ContentionResult is the sweep on one machine.
type ContentionResult struct {
	Machine *arch.Machine
	Config  ContentionConfig
	Rows    []ContentionRow
}

// Contention runs the sweep on machine m, repeating each row per the
// package Runs protocol. Every column is virtual, so the repeats are a
// pure determinism check: any divergence is an error.
func Contention(m *arch.Machine, cfg ContentionConfig) (ContentionResult, error) {
	res := ContentionResult{Machine: m, Config: cfg}
	for _, lock := range cfg.Locks {
		for _, threads := range cfg.Threads {
			for _, ratio := range cfg.Ratios {
				row, err := contentionRow(m, lock, threads, ratio, cfg.Iters)
				if err != nil {
					return res, err
				}
				for i := 1; i < Runs; i++ {
					again, err := contentionRow(m, lock, threads, ratio, cfg.Iters)
					if err != nil {
						return res, err
					}
					if again != row {
						return res, fmt.Errorf("contention %s/%s t=%d r=%d: non-deterministic repeat: %+v vs %+v",
							m.Name, lock, threads, ratio, again, row)
					}
				}
				res.Rows = append(res.Rows, row)
			}
		}
	}
	return res, nil
}

func contentionRow(m *arch.Machine, lock string, threads, ratio, iters int) (ContentionRow, error) {
	cores := threads / ratio
	if cores < 1 {
		cores = 1
	}
	if cores > m.Cores() {
		cores = m.Cores()
	}
	row := ContentionRow{Lock: lock, Threads: threads, Ratio: ratio, Cores: cores}
	e := sim.New()
	k := kernel.New(e, m)
	reg := metrics.NewRegistry()
	k.SetMetrics(reg)
	ops := iters / threads
	var rowErr error
	root := k.NewTask("contention-root", k.NewAddressSpace(), func(rt *kernel.Task) int {
		l, err := usync.New(rt, lock, usync.Config{})
		if err != nil {
			rowErr = err
			return 1
		}
		ctr, err := rt.Mmap(8, true)
		if err != nil {
			rowErr = err
			return 1
		}
		space := rt.Space()
		kids := make([]*kernel.Task, threads)
		for i := range kids {
			kids[i] = rt.ClonePinned(fmt.Sprintf("c%d", i), kernel.PThreadFlags, i%cores,
				func(t *kernel.Task) int {
					for op := 0; op < ops; op++ {
						l.Lock(t)
						v, _ := space.ReadU64(ctr, nil)
						t.Compute(300 * sim.Nanosecond)
						space.WriteU64(ctr, v+1, nil)
						l.Unlock(t)
						t.Compute(100 * sim.Nanosecond)
					}
					return 0
				})
		}
		bad := 0
		for _, kid := range kids {
			if rt.Join(kid) != 0 {
				bad++
			}
		}
		if got, _ := space.ReadU64(ctr, nil); got != uint64(threads*ops) {
			rowErr = fmt.Errorf("contention %s/%s t=%d r=%d: counter=%d want %d — mutual exclusion violated",
				m.Name, lock, threads, ratio, got, threads*ops)
		}
		return bad
	})
	k.Start(root, 0)
	if err := e.Run(); err != nil {
		return row, fmt.Errorf("contention %s/%s t=%d r=%d: %v", m.Name, lock, threads, ratio, err)
	}
	if rowErr != nil {
		return row, rowErr
	}
	if !root.Exited() || root.ExitCode() != 0 {
		return row, fmt.Errorf("contention %s/%s t=%d r=%d: root exit %d", m.Name, lock, threads, ratio, root.ExitCode())
	}
	h := reg.Histogram("sync." + lock + ".acquire_ps")
	if got := h.Count(); got != uint64(threads*ops) {
		return row, fmt.Errorf("contention %s/%s t=%d r=%d: histogram saw %d acquisitions, want %d",
			m.Name, lock, threads, ratio, got, threads*ops)
	}
	row.Virt = e.Now().Sub(sim.Time(0))
	row.AcqP50 = sim.Duration(h.Quantile(0.50))
	row.AcqP99 = sim.Duration(h.Quantile(0.99))
	row.Contended = reg.Counter("sync." + lock + ".contended").Value()
	return row, nil
}

// PrintContention renders the sweep as a table.
func PrintContention(w io.Writer, r ContentionResult) {
	fmt.Fprintf(w, "== contention sweep (%s, %s grid, %d acquisitions/row, runs=%d) ==\n",
		r.Machine.Name, r.Config.Label, r.Config.Iters, Runs)
	fmt.Fprintf(w, "%-8s %8s %6s %6s %12s %12s %12s %10s\n",
		"lock", "threads", "ratio", "cores", "ns/op", "acq p50", "acq p99", "contended")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8s %8d %6d %6d %12.1f %12v %12v %10d\n",
			row.Lock, row.Threads, row.Ratio, row.Cores,
			row.NsPerOp(r.Config.Iters), row.AcqP50, row.AcqP99, row.Contended)
	}
}

// ContentionRecords flattens a sweep into JSON records: per row, the
// ns-per-acquisition plus the p50/p99 acquisition latency (ns) pulled
// from the metrics histogram.
func ContentionRecords(r ContentionResult) []Record {
	recs := make([]Record, 0, 3*len(r.Rows))
	for _, row := range r.Rows {
		series := fmt.Sprintf("%s/r%d", row.Lock, row.Ratio)
		recs = append(recs,
			Record{Experiment: "contention", Machine: r.Machine.Name, Series: series,
				Size: row.Threads, Ns: row.NsPerOp(r.Config.Iters)},
			Record{Experiment: "contention-p50", Machine: r.Machine.Name, Series: series,
				Size: row.Threads, Ns: row.AcqP50.Nanoseconds()},
			Record{Experiment: "contention-p99", Machine: r.Machine.Name, Series: series,
				Size: row.Threads, Ns: row.AcqP99.Nanoseconds()},
		)
	}
	return recs
}
