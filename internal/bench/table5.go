package bench

import (
	"repro/internal/arch"
	"repro/internal/blt"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// Table5Result reproduces paper Table V: the time of getpid() — plain
// Linux, and enclosed in couple()/decouple() under both idle policies.
type Table5Result struct {
	Linux    Measurement
	BusyWait Measurement
	Blocking Measurement
}

// linuxGetpidTime measures a plain kernel task's getpid loop.
func linuxGetpidTime(m *arch.Machine) (sim.Duration, error) {
	return MinOf(func() (sim.Duration, error) {
		var per sim.Duration
		err := RunKernel(m, func(k *kernel.Kernel, root *kernel.Task) {
			e := k.Engine()
			const warm, n = 16, 256
			var t0 sim.Time
			for i := 0; i < warm+n; i++ {
				if i == warm {
					t0 = e.Now()
				}
				root.Getpid()
			}
			per = sim.Duration(float64(e.Now().Sub(t0)) / float64(n))
		})
		return per, err
	})
}

// ulpGetpidTime measures getpid() bracketed by couple()/decouple() from
// a decoupled ULP, under the given idle policy.
func ulpGetpidTime(m *arch.Machine, idle blt.IdlePolicy) (sim.Duration, error) {
	return MinOf(func() (sim.Duration, error) {
		var per sim.Duration
		err := runULP(m, idle, func(rt *core.Runtime) {
			e := rt.Kernel().Engine()
			rt.Spawn(benchImage("getpid", func(envI interface{}) int {
				env := envI.(*core.Env)
				env.Decouple()
				const warm, n = 16, 128
				var t0 sim.Time
				for i := 0; i < warm+n; i++ {
					if i == warm {
						t0 = e.Now()
					}
					env.Getpid() // couple(); getpid(); decouple()
				}
				per = sim.Duration(float64(e.Now().Sub(t0)) / float64(n))
				env.Couple()
				return 0
			}), core.SpawnOpts{Scheduler: 0})
			rt.WaitAll()
		})
		return per, err
	})
}

// Table5 runs the three rows on machine m.
func Table5(m *arch.Machine) (Table5Result, error) {
	var res Table5Result
	d, err := linuxGetpidTime(m)
	if err != nil {
		return res, err
	}
	res.Linux = NewMeasurement(m, "Linux", d)

	d, err = ulpGetpidTime(m, blt.BusyWait)
	if err != nil {
		return res, err
	}
	res.BusyWait = NewMeasurement(m, "ULP-PiP: BUSYWAIT", d)

	d, err = ulpGetpidTime(m, blt.Blocking)
	if err != nil {
		return res, err
	}
	res.Blocking = NewMeasurement(m, "ULP-PiP: BLOCKING", d)
	return res, nil
}
