package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/arch"
)

// PrintTable3 renders Table III in the paper's layout.
func PrintTable3(w io.Writer, results map[string]Table3Result) {
	fmt.Fprintln(w, "TABLE III — CONTEXT SWITCH AND LOAD TLS")
	fmt.Fprintf(w, "%-14s | %-22s | %-12s\n", "", "Wallaby", "Albireo")
	fmt.Fprintf(w, "%-14s | %-10s %-11s | %-12s\n", "", "Time [Sec]", "Cycles", "Time [Sec]")
	fmt.Fprintln(w, strings.Repeat("-", 56))
	row := func(name string, get func(Table3Result) Measurement) {
		wlb, alb := get(results["Wallaby"]), get(results["Albireo"])
		fmt.Fprintf(w, "%-14s | %-10s %-11s | %-12s\n",
			name, wlb.TimeSec(), wlb.CyclesStr(), alb.TimeSec())
	}
	row("Context Sw.", func(r Table3Result) Measurement { return r.CtxSwitch })
	row("Load TLS", func(r Table3Result) Measurement { return r.LoadTLS })
}

// PrintTable4 renders Table IV in the paper's layout.
func PrintTable4(w io.Writer, results map[string]Table4Result) {
	fmt.Fprintln(w, "TABLE IV — YIELDING TIME (2 ULPs OR PTHREADS)")
	fmt.Fprintf(w, "%-26s | %-22s | %-12s\n", "", "Wallaby", "Albireo")
	fmt.Fprintf(w, "%-26s | %-10s %-11s | %-12s\n", "", "Time [Sec]", "Cycles", "Time [Sec]")
	fmt.Fprintln(w, strings.Repeat("-", 68))
	row := func(name string, get func(Table4Result) Measurement) {
		wlb, alb := get(results["Wallaby"]), get(results["Albireo"])
		fmt.Fprintf(w, "%-26s | %-10s %-11s | %-12s\n",
			name, wlb.TimeSec(), wlb.CyclesStr(), alb.TimeSec())
	}
	row("ULP-PiP yield", func(r Table4Result) Measurement { return r.ULPYield })
	row("sched_yield() on 1 core", func(r Table4Result) Measurement { return r.SchedYield1Core })
	row("sched_yield() on 2 cores", func(r Table4Result) Measurement { return r.SchedYield2Core })
}

// PrintTable5 renders Table V in the paper's layout.
func PrintTable5(w io.Writer, results map[string]Table5Result) {
	fmt.Fprintln(w, "TABLE V — TIME OF getpid()")
	fmt.Fprintf(w, "%-20s | %-22s | %-12s\n", "", "Wallaby", "Albireo")
	fmt.Fprintf(w, "%-20s | %-10s %-11s | %-12s\n", "", "Time [Sec]", "Cycles", "Time [Sec]")
	fmt.Fprintln(w, strings.Repeat("-", 62))
	row := func(name string, get func(Table5Result) Measurement) {
		wlb, alb := get(results["Wallaby"]), get(results["Albireo"])
		fmt.Fprintf(w, "%-20s | %-10s %-11s | %-12s\n",
			name, wlb.TimeSec(), wlb.CyclesStr(), alb.TimeSec())
	}
	row("Linux", func(r Table5Result) Measurement { return r.Linux })
	row("ULP-PiP: BUSYWAIT", func(r Table5Result) Measurement { return r.BusyWait })
	row("ULP-PiP: BLOCKING", func(r Table5Result) Measurement { return r.Blocking })
}

// PrintFig7 renders the slowdown curves as an aligned table (one block
// per machine), plus the crossover summary the paper discusses.
func PrintFig7(w io.Writer, r Fig7Result) {
	fmt.Fprintf(w, "FIGURE 7 — SLOWDOWN OF OPEN-WRITE-CLOSE (%s)\n", r.Machine.Name)
	fmt.Fprintf(w, "%-10s", "size[B]")
	for _, mech := range Fig7Mechanisms {
		fmt.Fprintf(w, " %12s", mech)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 10+13*len(Fig7Mechanisms)))
	for i, size := range r.Sizes {
		fmt.Fprintf(w, "%-10d", size)
		for _, mech := range Fig7Mechanisms {
			fmt.Fprintf(w, " %12.3f", r.Slowdown(mech)[i])
		}
		fmt.Fprintln(w)
	}
}

// PrintFig8 renders the overlap-ratio curves.
func PrintFig8(w io.Writer, r Fig8Result) {
	fmt.Fprintf(w, "FIGURE 8 — OVERLAP RATIO %% (%s)\n", r.Machine.Name)
	fmt.Fprintf(w, "%-10s", "size[B]")
	for _, mech := range Fig7Mechanisms {
		fmt.Fprintf(w, " %12s", mech)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 10+13*len(Fig7Mechanisms)))
	for i, size := range r.Sizes {
		fmt.Fprintf(w, "%-10d", size)
		for _, mech := range Fig7Mechanisms {
			fmt.Fprintf(w, " %12.1f", r.Overlap[mech][i])
		}
		fmt.Fprintln(w)
	}
}

// WriteSeriesCSV emits series as CSV (size, then one column per label) —
// for external plotting of the figures.
func WriteSeriesCSV(w io.Writer, series []Series) error {
	if len(series) == 0 {
		return nil
	}
	cols := []string{"x"}
	for _, s := range series {
		cols = append(cols, s.Label)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i := range series[0].Points {
		fields := []string{fmt.Sprintf("%g", series[0].Points[i].X)}
		for _, s := range series {
			fields = append(fields, fmt.Sprintf("%.4f", s.Points[i].Y))
		}
		if _, err := fmt.Fprintln(w, strings.Join(fields, ",")); err != nil {
			return err
		}
	}
	return nil
}

// MachineResults runs fn for both machines keyed by name — the common
// "both machines" sweep of the paper's evaluation. The machine loop runs
// on the sweep worker pool (each machine's experiments are independent
// simulations); the result map is assembled by index afterwards, so the
// output is identical at any Parallelism.
func MachineResults[T any](fn func(m *arch.Machine) (T, error)) (map[string]T, error) {
	ms := arch.Machines()
	results := make([]T, len(ms))
	errs := make([]error, len(ms))
	if err := sweep(len(ms), func(i int) error {
		results[i], errs[i] = fn(ms[i])
		return errs[i]
	}); err != nil {
		for i, e := range errs {
			if e != nil {
				return nil, fmt.Errorf("%s: %w", ms[i].Name, e)
			}
		}
		return nil, err
	}
	out := make(map[string]T, len(ms))
	for i, m := range ms {
		out[m.Name] = results[i]
	}
	return out, nil
}
