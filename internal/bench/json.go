package bench

import (
	"encoding/json"
	"os"
)

// Record is one machine-readable benchmark result row, written by
// `ulpbench -json` so the perf trajectory of the reproduction can be
// tracked across PRs. Two flavors share the schema:
//
//   - simulation rows: virtual-time results of the paper's experiments
//     (Ns is simulated nanoseconds; Series names the mechanism/row);
//   - harness rows (Series "harness"): wall-clock and allocation cost of
//     generating the experiment, measuring the simulator itself.
type Record struct {
	Experiment string  `json:"experiment"`
	Machine    string  `json:"machine,omitempty"`
	Series     string  `json:"series,omitempty"`
	Size       int     `json:"size,omitempty"`
	Ns         float64 `json:"ns"`
	Allocs     uint64  `json:"allocs,omitempty"`

	// Scale-suite memory columns (fan-in rows only): allocations during
	// the FutexWake drain and retained bytes per idle blocked task.
	WakeAllocs   uint64  `json:"wake_allocs,omitempty"`
	BytesPerTask float64 `json:"bytes_per_task,omitempty"`
}

// WriteRecordsJSON writes records as an indented JSON array to path.
func WriteRecordsJSON(path string, recs []Record) error {
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

// Fig7Records flattens a per-machine Fig. 7 result map into records
// (baseline plus each mechanism, virtual ns per size).
func Fig7Records(results map[string]Fig7Result) []Record {
	var recs []Record
	for _, name := range MachineOrder {
		r, ok := results[name]
		if !ok {
			continue
		}
		for i, size := range r.Sizes {
			recs = append(recs, Record{
				Experiment: "fig7", Machine: name, Series: "baseline",
				Size: size, Ns: r.Baseline[i].Nanoseconds(),
			})
			for _, mech := range Fig7Mechanisms {
				recs = append(recs, Record{
					Experiment: "fig7", Machine: name, Series: mech,
					Size: size, Ns: r.Times[mech][i].Nanoseconds(),
				})
			}
		}
	}
	return recs
}

// Fig8Records flattens a per-machine Fig. 8 result map into records.
// Fig. 8 measures an overlap ratio, not a time, so the Ns column carries
// the overlap percentage; the experiment name flags the unit.
func Fig8Records(results map[string]Fig8Result) []Record {
	var recs []Record
	for _, name := range MachineOrder {
		r, ok := results[name]
		if !ok {
			continue
		}
		for i, size := range r.Sizes {
			for _, mech := range Fig7Mechanisms {
				recs = append(recs, Record{
					Experiment: "fig8-overlap-pct", Machine: name, Series: mech,
					Size: size, Ns: r.Overlap[mech][i],
				})
			}
		}
	}
	return recs
}

// Table3Records flattens Table III results.
func Table3Records(results map[string]Table3Result) []Record {
	var recs []Record
	for _, name := range MachineOrder {
		r, ok := results[name]
		if !ok {
			continue
		}
		recs = append(recs,
			Record{Experiment: "table3", Machine: name, Series: "ctx-switch", Ns: r.CtxSwitch.Time.Nanoseconds()},
			Record{Experiment: "table3", Machine: name, Series: "load-tls", Ns: r.LoadTLS.Time.Nanoseconds()},
		)
	}
	return recs
}

// Table4Records flattens Table IV results.
func Table4Records(results map[string]Table4Result) []Record {
	var recs []Record
	for _, name := range MachineOrder {
		r, ok := results[name]
		if !ok {
			continue
		}
		recs = append(recs,
			Record{Experiment: "table4", Machine: name, Series: "ulp-yield", Ns: r.ULPYield.Time.Nanoseconds()},
			Record{Experiment: "table4", Machine: name, Series: "sched-yield-1core", Ns: r.SchedYield1Core.Time.Nanoseconds()},
			Record{Experiment: "table4", Machine: name, Series: "sched-yield-2core", Ns: r.SchedYield2Core.Time.Nanoseconds()},
		)
	}
	return recs
}

// Table5Records flattens Table V results.
func Table5Records(results map[string]Table5Result) []Record {
	var recs []Record
	for _, name := range MachineOrder {
		r, ok := results[name]
		if !ok {
			continue
		}
		recs = append(recs,
			Record{Experiment: "table5", Machine: name, Series: "linux", Ns: r.Linux.Time.Nanoseconds()},
			Record{Experiment: "table5", Machine: name, Series: "ulp-busywait", Ns: r.BusyWait.Time.Nanoseconds()},
			Record{Experiment: "table5", Machine: name, Series: "ulp-blocking", Ns: r.Blocking.Time.Nanoseconds()},
		)
	}
	return recs
}

// MachineOrder is the paper's machine presentation order, used whenever
// per-machine maps are flattened to deterministic sequences.
var MachineOrder = []string{"Wallaby", "Albireo"}
