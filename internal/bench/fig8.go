package bench

import (
	"errors"

	"repro/internal/aio"
	"repro/internal/arch"
	"repro/internal/blt"
	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// Fig8Result is one machine's overlap-ratio curves, computed with the
// Intel MPI Benchmarks method the paper cites: t_pure is the blocking
// open-write-close, t_cpu a computation of equal length, t_ovrl the
// overlapped execution.
type Fig8Result struct {
	Machine *arch.Machine
	Sizes   []int
	Overlap map[string][]float64 // mechanism -> per-size overlap %
}

// Series converts the result to plottable series.
func (r Fig8Result) Series() []Series {
	var out []Series
	for _, mech := range Fig7Mechanisms {
		s := Series{Machine: r.Machine, Label: mech}
		for i, v := range r.Overlap[mech] {
			s.Points = append(s.Points, Point{X: float64(r.Sizes[i]), Y: v})
		}
		out = append(out, s)
	}
	return out
}

// overlapAIO measures t_ovrl for AIO: the submitter overlaps its own
// computation with the asynchronous write; open and close remain
// synchronous (AIO covers only read/write).
func overlapAIO(m *arch.Machine, size int, tCPU sim.Duration, suspend bool) (sim.Duration, error) {
	return MinOf(func() (sim.Duration, error) {
		var per sim.Duration
		err := RunKernel(m, func(k *kernel.Kernel, root *kernel.Task) {
			e := k.Engine()
			buf := make([]byte, size)
			ctx, err := aio.New(root)
			if err != nil {
				panic(err)
			}
			const warm, n = 2, 8
			var t0 sim.Time
			for i := 0; i < warm+n; i++ {
				if i == warm {
					t0 = e.Now()
				}
				fd, err := root.Open("/ovl", fs.OCreate|fs.OWrOnly|fs.OTrunc)
				if err != nil {
					panic(err)
				}
				r, err := ctx.WriteAsync(root, fd, buf)
				if err != nil {
					panic(err)
				}
				root.Compute(tCPU)
				if suspend {
					r.Suspend(root)
				} else {
					for {
						if _, err := r.Return(root); !errors.Is(err, aio.ErrInProgress) {
							break
						}
						root.SchedYield()
					}
				}
				root.Close(fd)
			}
			per = sim.Duration(float64(e.Now().Sub(t0)) / float64(n))
			ctx.Close(root)
		})
		return per, err
	})
}

// overlapULP measures t_ovrl for ULP-PiP: two ULPs share one program
// core — one executes the open-write-close inside a couple()/decouple()
// bracket (so the I/O runs on the dedicated syscall core), the other
// computes. The makespan of each iteration is the overlapped time.
func overlapULP(m *arch.Machine, size int, tCPU sim.Duration, idle blt.IdlePolicy) (sim.Duration, error) {
	return MinOf(func() (sim.Duration, error) {
		var per sim.Duration
		err := runULP(m, idle, func(rt *core.Runtime) {
			e := rt.Kernel().Engine()
			buf := make([]byte, size)
			const warm, n = 2, 8
			ready := 0
			// phase[i] counts completed iterations per ULP; each waits
			// for its peer at iteration boundaries by yielding.
			var phase [2]int
			barrier := func(env *core.Env, self, iter int) {
				phase[self] = iter + 1
				for phase[1-self] < iter+1 {
					env.Yield()
				}
			}
			var t0, t1 sim.Time
			ioULP := benchImage("io", func(envI interface{}) int {
				env := envI.(*core.Env)
				env.Decouple()
				ready++
				for ready < 2 {
					env.Yield()
				}
				for i := 0; i < warm+n; i++ {
					if i == warm {
						t0 = e.Now()
					}
					env.Exec(func(kc *kernel.Task) {
						fd, err := kc.Open("/ovl", fs.OCreate|fs.OWrOnly|fs.OTrunc)
						if err != nil {
							panic(err)
						}
						kc.Write(fd, buf, true)
						kc.Close(fd)
					})
					barrier(env, 0, i)
				}
				t1 = e.Now()
				env.Couple()
				return 0
			})
			cpuULP := benchImage("cpu", func(envI interface{}) int {
				env := envI.(*core.Env)
				env.Decouple()
				ready++
				for ready < 2 {
					env.Yield()
				}
				for i := 0; i < warm+n; i++ {
					env.Compute(tCPU)
					barrier(env, 1, i)
				}
				env.Couple()
				return 0
			})
			rt.Spawn(ioULP, core.SpawnOpts{Scheduler: 0})
			rt.Spawn(cpuULP, core.SpawnOpts{Scheduler: 0})
			rt.WaitAll()
			per = sim.Duration(float64(t1.Sub(t0)) / float64(n))
		})
		return per, err
	})
}

// Fig8 sweeps overlap ratios over the write-buffer sizes on machine m.
// Each size is one independent job on the sweep worker pool: the pure
// time sizes the overlapped computation, so a size's five measurements
// stay together, but different sizes fan out. Results land in
// preallocated per-size slots — output is identical at any Parallelism.
func Fig8(m *arch.Machine) (Fig8Result, error) {
	sizes := Fig8Sizes()
	res := Fig8Result{
		Machine: m,
		Sizes:   sizes,
		Overlap: make(map[string][]float64, len(Fig7Mechanisms)),
	}
	for _, mech := range Fig7Mechanisms {
		res.Overlap[mech] = make([]float64, len(sizes))
	}
	err := sweep(len(sizes), func(i int) error {
		size := sizes[i]
		tPure, err := owcBaseline(m, size)
		if err != nil {
			return err
		}
		tCPU := tPure // IMB: computation sized to the pure op

		record := func(mech string, tOvrl sim.Duration) {
			res.Overlap[mech][i] = IMBOverlap(tPure, tCPU, tOvrl)
		}

		d, err := overlapULP(m, size, tCPU, blt.BusyWait)
		if err != nil {
			return err
		}
		record("ULP-BUSYWAIT", d)

		d, err = overlapULP(m, size, tCPU, blt.Blocking)
		if err != nil {
			return err
		}
		record("ULP-BLOCKING", d)

		d, err = overlapAIO(m, size, tCPU, false)
		if err != nil {
			return err
		}
		record("AIO-return", d)

		d, err = overlapAIO(m, size, tCPU, true)
		if err != nil {
			return err
		}
		record("AIO-suspend", d)
		return nil
	})
	return res, err
}
