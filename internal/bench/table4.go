package bench

import (
	"repro/internal/arch"
	"repro/internal/blt"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/loader"
	"repro/internal/sim"
)

// Table4Result reproduces paper Table IV: the time of yielding between
// two ULPs vs two PThreads, normalized to one yield.
type Table4Result struct {
	ULPYield        Measurement // "ULP-PiP yield"
	SchedYield1Core Measurement // "sched_yield() on 1 core"
	SchedYield2Core Measurement // "sched_yield() on 2 cores"
}

// ulpConfig is the standard 2+2-core deployment used by the ULP
// micro-benchmarks.
func ulpConfig(idle blt.IdlePolicy) core.Config {
	return core.Config{
		ProgCores:    []int{0, 1},
		SyscallCores: []int{2, 3},
		Idle:         idle,
	}
}

// benchImage builds a minimal PIE image whose Main is fn.
func benchImage(name string, fn loader.MainFunc) *loader.Image {
	return &loader.Image{
		Name: name, PIE: true, TextSize: 4096,
		Symbols: []loader.Symbol{
			{Name: "state", Size: 64},
			{Name: "errno", Size: 8, TLS: true},
		},
		Main: fn,
	}
}

// runULP boots a ULP-PiP runtime on m and runs setup inside the root.
func runULP(m *arch.Machine, idle blt.IdlePolicy, setup func(rt *core.Runtime)) error {
	e := sim.New()
	k := kernel.New(e, m)
	cfg := ulpConfig(idle)
	cfg.SchedPolicy = applyPolicy(k)
	finish := instrument(k)
	if _, err := core.Boot(k, cfg, func(rt *core.Runtime) int {
		setup(rt)
		rt.Shutdown()
		return 0
	}); err != nil {
		return err
	}
	err := e.Run()
	finish()
	return err
}

// ulpYieldTime measures the steady-state per-yield time of two ULPs
// ping-ponging on one scheduler core.
func ulpYieldTime(m *arch.Machine) (sim.Duration, error) {
	return MinOf(func() (sim.Duration, error) {
		var per sim.Duration
		err := runULP(m, blt.BusyWait, func(rt *core.Runtime) {
			e := rt.Kernel().Engine()
			const warm, n = 32, 512
			ready, done := 0, false
			prog := func(measuring bool) *loader.Image {
				return benchImage("yield", func(envI interface{}) int {
					env := envI.(*core.Env)
					env.Decouple()
					ready++
					for ready < 2 {
						env.Yield()
					}
					if measuring {
						var t0 sim.Time
						for i := 0; i < warm+n; i++ {
							if i == warm {
								t0 = e.Now()
							}
							env.Yield()
						}
						per = sim.Duration(float64(e.Now().Sub(t0)) / float64(2*n))
						done = true
					} else {
						for !done {
							env.Yield()
						}
					}
					env.Couple()
					return 0
				})
			}
			rt.Spawn(prog(true), core.SpawnOpts{Scheduler: 0})
			rt.Spawn(prog(false), core.SpawnOpts{Scheduler: 0})
			rt.WaitAll()
		})
		return per, err
	})
}

// schedYieldTime measures two kernel threads calling sched_yield, pinned
// either to the same core (real context switches) or different cores
// (the call returns immediately).
func schedYieldTime(m *arch.Machine, sameCore bool) (sim.Duration, error) {
	return MinOf(func() (sim.Duration, error) {
		var per sim.Duration
		err := RunKernel(m, func(k *kernel.Kernel, root *kernel.Task) {
			e := k.Engine()
			const warm, n = 32, 512
			done := false
			var t0, t1 sim.Time
			coreB := 0
			if !sameCore {
				coreB = 1
			}
			a := root.ClonePinned("ya", kernel.PThreadFlags, 0, func(t *kernel.Task) int {
				for i := 0; i < warm+n; i++ {
					if i == warm {
						t0 = e.Now()
					}
					t.SchedYield()
				}
				t1 = e.Now()
				done = true
				return 0
			})
			b := root.ClonePinned("yb", kernel.PThreadFlags, coreB, func(t *kernel.Task) int {
				for !done {
					t.SchedYield()
				}
				return 0
			})
			root.Join(a)
			root.Join(b)
			div := float64(n)
			if sameCore {
				// Both threads' yields interleave on the one core.
				div = 2 * n
			}
			per = sim.Duration(float64(t1.Sub(t0)) / div)
		})
		return per, err
	})
}

// Table4 runs all three rows on machine m.
func Table4(m *arch.Machine) (Table4Result, error) {
	var res Table4Result
	d, err := ulpYieldTime(m)
	if err != nil {
		return res, err
	}
	res.ULPYield = NewMeasurement(m, "ULP-PiP yield", d)

	d, err = schedYieldTime(m, true)
	if err != nil {
		return res, err
	}
	res.SchedYield1Core = NewMeasurement(m, "sched_yield() on 1 core", d)

	d, err = schedYieldTime(m, false)
	if err != nil {
		return res, err
	}
	res.SchedYield2Core = NewMeasurement(m, "sched_yield() on 2 cores", d)
	return res, nil
}
