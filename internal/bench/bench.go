// Package bench contains the evaluation harness: one generator per table
// and figure of the paper's §VI, plus the §VII ablations. Each experiment
// stands up a fresh simulated machine, runs the workload with a warm-up
// loop followed by a measurement loop, repeats the whole run and keeps
// the minimum — the paper's own protocol ("all values are the minimum
// ones of ten runs"). The simulation is deterministic, so repeats serve
// as a consistency check rather than noise reduction.
package bench

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/blt"
	"repro/internal/kernel"
	"repro/internal/schedpolicy"
	"repro/internal/sim"
)

// Runs is the number of repetitions per measurement (paper: 10).
var Runs = 3

// SchedPolicy selects the scheduler policy for every benchmark kernel
// (empty = stock dispatch). The CLI validates the spec before setting
// this; a fresh policy instance is parsed per kernel so stateful
// policies (cosched, tenant) never leak pass/gang state across runs.
var SchedPolicy string

// applyPolicy installs the kernel half of the selected policy on k and
// returns the ULT half for core.Config threading (nil when no policy is
// selected). The spec was validated at flag-parse time, so a parse
// failure here is a programming error.
func applyPolicy(k *kernel.Kernel) blt.ULTPolicy {
	if SchedPolicy == "" {
		return nil
	}
	pol, err := schedpolicy.New(SchedPolicy)
	if err != nil {
		panic(fmt.Sprintf("bench: invalid sched policy %q: %v", SchedPolicy, err))
	}
	k.SetSchedPolicy(pol)
	return pol
}

// RunKernel builds an engine and kernel for machine m, starts body as
// the initial task, and drives the simulation to completion.
func RunKernel(m *arch.Machine, body func(k *kernel.Kernel, root *kernel.Task)) error {
	e := sim.New()
	k := kernel.New(e, m)
	applyPolicy(k)
	finish := instrument(k)
	root := k.NewTask("bench-root", k.NewAddressSpace(), func(t *kernel.Task) int {
		body(k, t)
		return 0
	})
	k.Start(root, 0)
	err := e.Run()
	finish()
	return err
}

// MinOf repeats f Runs times and returns the smallest result.
func MinOf(f func() (sim.Duration, error)) (sim.Duration, error) {
	best := sim.Duration(0)
	for i := 0; i < Runs; i++ {
		d, err := f()
		if err != nil {
			return 0, err
		}
		if i == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// Measurement is one primitive-cost result: a time, plus a cycle count
// on machines with a cycle counter (the paper prints cycles only for
// Wallaby/RDTSC).
type Measurement struct {
	Machine *arch.Machine
	Name    string
	Time    sim.Duration
	HasCyc  bool
	Cycles  float64
}

// NewMeasurement derives the cycle column from the machine model.
func NewMeasurement(m *arch.Machine, name string, d sim.Duration) Measurement {
	return Measurement{
		Machine: m, Name: name, Time: d,
		HasCyc: m.HasCycleCounter,
		Cycles: m.Cycles(d),
	}
}

// TimeSec renders the time in the paper's scientific-notation seconds.
func (m Measurement) TimeSec() string {
	return fmt.Sprintf("%.2E", m.Time.Seconds())
}

// CyclesStr renders the cycle column ("-" when unavailable).
func (m Measurement) CyclesStr() string {
	if !m.HasCyc {
		return "-"
	}
	return fmt.Sprintf("%.0f", m.Cycles)
}

// Point is one (x, y) sample of a figure series.
type Point struct {
	X float64 // write-buffer size in bytes for Figs. 7/8
	Y float64 // slowdown ratio or overlap percentage
}

// Series is one labeled curve of a figure.
type Series struct {
	Machine *arch.Machine
	Label   string
	Points  []Point
}

// Fig7Sizes are the write-buffer sizes swept in Fig. 7 (64 B .. 1 MiB,
// covering the paper's crossover region on Albireo and the flattening
// of the Albireo ULP curves at large sizes).
func Fig7Sizes() []int {
	var sizes []int
	for s := 64; s <= 1<<20; s *= 4 {
		sizes = append(sizes, s)
	}
	return sizes
}

// Fig8Sizes are the write-buffer sizes swept in Fig. 8 (64 B .. 32 KiB —
// the small-transfer range where overlap is limited by mechanism
// overheads rather than by the copy itself).
func Fig8Sizes() []int {
	return []int{64, 256, 1024, 4096, 16384, 32768}
}

// IMBOverlap computes the overlap percentage the way the Intel MPI
// Benchmarks do (the method the paper cites for Fig. 8):
//
//	overlap = 100 * max(0, min(1, (t_pure + t_cpu - t_ovrl) / min(t_pure, t_cpu)))
//
// where t_pure is the blocking operation alone, t_cpu the computation
// alone, and t_ovrl the combined (overlapped) execution.
func IMBOverlap(tPure, tCPU, tOvrl sim.Duration) float64 {
	den := tPure
	if tCPU < den {
		den = tCPU
	}
	if den <= 0 {
		return 0
	}
	ratio := float64(tPure+tCPU-tOvrl) / float64(den)
	if ratio < 0 {
		ratio = 0
	}
	if ratio > 1 {
		ratio = 1
	}
	return 100 * ratio
}
