package bench

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
)

// fig7Fingerprint runs a small Fig. 7-style grid and reduces it to the
// quantities a regression would disturb: the full result values, the
// rendered table bytes, and a trace-level fingerprint of one
// representative scenario (event count, trace total, virtual end time).
type fig7Fingerprint struct {
	result   Fig7Result
	rendered string
	traced   uint64
	events   int
	endAt    sim.Time
}

func takeFig7Fingerprint(t *testing.T) fig7Fingerprint {
	t.Helper()
	r, err := Fig7Sweep(arch.Wallaby(), []int{64, 4096})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintFig7(&buf, r)

	// Trace one open-write-close scenario directly on the engine.
	e := sim.New()
	tr := sim.NewTracer(4096)
	e.SetTracer(tr)
	var done *sim.Proc
	done = e.Spawn("owc", func(p *sim.Proc) {
		for i := 0; i < 32; i++ {
			p.Advance(100 * sim.Nanosecond)
			p.Park()
		}
	})
	e.Spawn("waker", func(p *sim.Proc) {
		for i := 0; i < 32; i++ {
			p.Advance(150 * sim.Nanosecond)
			done.Unpark(10 * sim.Nanosecond)
			p.Advance(50 * sim.Nanosecond)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return fig7Fingerprint{
		result:   r,
		rendered: buf.String(),
		traced:   tr.Total(),
		events:   len(tr.Events()),
		endAt:    e.Now(),
	}
}

func sameFingerprint(t *testing.T, label string, a, b fig7Fingerprint) {
	t.Helper()
	if !reflect.DeepEqual(a.result, b.result) {
		t.Errorf("%s: Fig7 results differ between runs", label)
	}
	if a.rendered != b.rendered {
		t.Errorf("%s: rendered Fig7 table differs:\n%s\nvs\n%s", label, a.rendered, b.rendered)
	}
	if a.traced != b.traced || a.events != b.events || a.endAt != b.endAt {
		t.Errorf("%s: trace fingerprint differs: (%d, %d, %v) vs (%d, %d, %v)",
			label, a.traced, a.events, a.endAt, b.traced, b.events, b.endAt)
	}
}

// TestDeterminism runs the identical scenario twice serially and once on
// the parallel sweep pool: every repetition must produce byte-identical
// output and identical trace totals, event counts, and end times.
func TestDeterminism(t *testing.T) {
	first := takeFig7Fingerprint(t)
	second := takeFig7Fingerprint(t)
	sameFingerprint(t, "serial repeat", first, second)

	old := Parallelism
	Parallelism = 4
	defer func() { Parallelism = old }()
	parallel := takeFig7Fingerprint(t)
	sameFingerprint(t, "parallel sweep", first, parallel)
}
