package ring

import "testing"

func TestFIFOOrderAcrossGrowth(t *testing.T) {
	var q Q[int]
	const n = 1000
	for i := 0; i < n; i++ {
		q.Push(i)
	}
	if q.Len() != n {
		t.Fatalf("Len = %d, want %d", q.Len(), n)
	}
	for i := 0; i < n; i++ {
		if v := q.Pop(); v != i {
			t.Fatalf("Pop %d = %d", i, v)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
	if v := q.Pop(); v != 0 {
		t.Fatalf("Pop on empty = %d, want zero value", v)
	}
}

// TestWrapAround drives the head all the way around the buffer so pushes
// wrap behind it.
func TestWrapAround(t *testing.T) {
	var q Q[int]
	next, expect := 0, 0
	for i := 0; i < 5; i++ {
		q.Push(next)
		next++
	}
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			q.Push(next)
			next++
		}
		for i := 0; i < 3; i++ {
			if v := q.Pop(); v != expect {
				t.Fatalf("round %d: Pop = %d, want %d", round, v, expect)
			}
			expect++
		}
	}
}

func TestPopTail(t *testing.T) {
	var q Q[int]
	for i := 0; i < 10; i++ {
		q.Push(i)
	}
	if v := q.PopTail(); v != 9 {
		t.Fatalf("PopTail = %d, want 9", v)
	}
	if v := q.Pop(); v != 0 {
		t.Fatalf("Pop = %d, want 0", v)
	}
	if v := q.PopTail(); v != 8 {
		t.Fatalf("PopTail = %d, want 8", v)
	}
	if q.Len() != 7 {
		t.Fatalf("Len = %d, want 7", q.Len())
	}
	var empty Q[int]
	if v := empty.PopTail(); v != 0 {
		t.Fatalf("PopTail on empty = %d, want zero value", v)
	}
}

// TestAtRemoveAt covers the policy-plane accessors: At is a pure peek,
// RemoveAt preserves the order of the remaining elements, and both are
// exercised across a wrapped head.
func TestAtRemoveAt(t *testing.T) {
	var q Q[int]
	// Wrap the head: fill, drain half, refill.
	for i := 0; i < 8; i++ {
		q.Push(i)
	}
	for i := 0; i < 5; i++ {
		q.Pop()
	}
	for i := 8; i < 13; i++ {
		q.Push(i)
	}
	want := []int{5, 6, 7, 8, 9, 10, 11, 12}
	for i, w := range want {
		if v := q.At(i); v != w {
			t.Fatalf("At(%d) = %d, want %d", i, v, w)
		}
	}
	if v := q.RemoveAt(3); v != 8 {
		t.Fatalf("RemoveAt(3) = %d, want 8", v)
	}
	if v := q.RemoveAt(0); v != 5 {
		t.Fatalf("RemoveAt(0) = %d, want 5", v)
	}
	rest := []int{6, 7, 9, 10, 11, 12}
	for i, w := range rest {
		if v := q.At(i); v != w {
			t.Fatalf("after removals At(%d) = %d, want %d", i, v, w)
		}
	}
	for _, w := range rest {
		if v := q.Pop(); v != w {
			t.Fatalf("Pop = %d, want %d", v, w)
		}
	}
}

// TestRemoveAtClearsSlot pins that the slot vacated by the shift does not
// retain a pointer.
func TestRemoveAtClearsSlot(t *testing.T) {
	var q Q[*int]
	a, b, c := new(int), new(int), new(int)
	q.Push(a)
	q.Push(b)
	q.Push(c)
	if got := q.RemoveAt(1); got != b {
		t.Fatal("RemoveAt returned wrong element")
	}
	tail := (q.head + q.n) & (len(q.buf) - 1)
	if q.buf[tail] != nil {
		t.Error("RemoveAt left the vacated slot populated")
	}
	if q.At(0) != a || q.At(1) != c {
		t.Error("RemoveAt disturbed surviving elements")
	}
}

// TestPopClearsSlot pins that vacated slots do not retain pointers.
func TestPopClearsSlot(t *testing.T) {
	var q Q[*int]
	x := new(int)
	q.Push(x)
	head := q.head
	if got := q.Pop(); got != x {
		t.Fatal("Pop returned wrong element")
	}
	if q.buf[head] != nil {
		t.Error("Pop left the slot populated")
	}
	q.Push(x)
	tail := (q.head + q.n - 1) & (len(q.buf) - 1)
	if got := q.PopTail(); got != x {
		t.Fatal("PopTail returned wrong element")
	}
	if q.buf[tail] != nil {
		t.Error("PopTail left the slot populated")
	}
}

func TestZeroAllocSteadyState(t *testing.T) {
	var q Q[*int]
	x := new(int)
	for i := 0; i < 64; i++ {
		q.Push(x)
	}
	for q.Len() > 0 {
		q.Pop()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			q.Push(x)
		}
		for i := 0; i < 16; i++ {
			q.Pop()
		}
		for q.Len() > 0 {
			q.PopTail()
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Push/Pop allocates %.1f times per run", allocs)
	}
}
