package ring

import "testing"

func TestFIFOOrderAcrossGrowth(t *testing.T) {
	var q Q[int]
	const n = 1000
	for i := 0; i < n; i++ {
		q.Push(i)
	}
	if q.Len() != n {
		t.Fatalf("Len = %d, want %d", q.Len(), n)
	}
	for i := 0; i < n; i++ {
		if v := q.Pop(); v != i {
			t.Fatalf("Pop %d = %d", i, v)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
	if v := q.Pop(); v != 0 {
		t.Fatalf("Pop on empty = %d, want zero value", v)
	}
}

// TestWrapAround drives the head all the way around the buffer so pushes
// wrap behind it.
func TestWrapAround(t *testing.T) {
	var q Q[int]
	next, expect := 0, 0
	for i := 0; i < 5; i++ {
		q.Push(next)
		next++
	}
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			q.Push(next)
			next++
		}
		for i := 0; i < 3; i++ {
			if v := q.Pop(); v != expect {
				t.Fatalf("round %d: Pop = %d, want %d", round, v, expect)
			}
			expect++
		}
	}
}

func TestPopTail(t *testing.T) {
	var q Q[int]
	for i := 0; i < 10; i++ {
		q.Push(i)
	}
	if v := q.PopTail(); v != 9 {
		t.Fatalf("PopTail = %d, want 9", v)
	}
	if v := q.Pop(); v != 0 {
		t.Fatalf("Pop = %d, want 0", v)
	}
	if v := q.PopTail(); v != 8 {
		t.Fatalf("PopTail = %d, want 8", v)
	}
	if q.Len() != 7 {
		t.Fatalf("Len = %d, want 7", q.Len())
	}
	var empty Q[int]
	if v := empty.PopTail(); v != 0 {
		t.Fatalf("PopTail on empty = %d, want zero value", v)
	}
}

// TestPopClearsSlot pins that vacated slots do not retain pointers.
func TestPopClearsSlot(t *testing.T) {
	var q Q[*int]
	x := new(int)
	q.Push(x)
	head := q.head
	if got := q.Pop(); got != x {
		t.Fatal("Pop returned wrong element")
	}
	if q.buf[head] != nil {
		t.Error("Pop left the slot populated")
	}
	q.Push(x)
	tail := (q.head + q.n - 1) & (len(q.buf) - 1)
	if got := q.PopTail(); got != x {
		t.Fatal("PopTail returned wrong element")
	}
	if q.buf[tail] != nil {
		t.Error("PopTail left the slot populated")
	}
}

func TestZeroAllocSteadyState(t *testing.T) {
	var q Q[*int]
	x := new(int)
	for i := 0; i < 64; i++ {
		q.Push(x)
	}
	for q.Len() > 0 {
		q.Pop()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			q.Push(x)
		}
		for i := 0; i < 16; i++ {
			q.Pop()
		}
		for q.Len() > 0 {
			q.PopTail()
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Push/Pop allocates %.1f times per run", allocs)
	}
}
