// Package ring provides a growable power-of-two ring buffer used as a
// FIFO run queue. Push, Pop and PopTail are O(1) with no per-element
// allocation; the slice front-copy dequeue it replaces cost O(n) per pop
// once queues reach scale-suite depths (a 1M-task wake storm paid a
// million-element copy per dispatch).
package ring

// Q is a FIFO queue over a circular buffer whose capacity is always a
// power of two (so index wrap is a mask, not a modulo). The zero value
// is an empty queue ready for use.
type Q[T any] struct {
	buf  []T
	head int // index of the oldest element
	n    int
}

// Len reports the number of queued elements.
func (q *Q[T]) Len() int { return q.n }

// Push appends v at the tail.
func (q *Q[T]) Push(v T) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = v
	q.n++
}

// Pop removes and returns the head element, or the zero value when
// empty. The vacated slot is cleared so the queue never retains a
// departed element.
func (q *Q[T]) Pop() T {
	var zero T
	if q.n == 0 {
		return zero
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return v
}

// PopTail removes and returns the newest element (LIFO end), or the zero
// value when empty — the work-stealing side of a deque.
func (q *Q[T]) PopTail() T {
	var zero T
	if q.n == 0 {
		return zero
	}
	i := (q.head + q.n - 1) & (len(q.buf) - 1)
	v := q.buf[i]
	q.buf[i] = zero
	q.n--
	return v
}

// At returns the i'th element from the head (0 = the next Pop) without
// removing it. Panics when i is out of range — scheduler policies index
// strictly within [0, Len()).
func (q *Q[T]) At(i int) T {
	if i < 0 || i >= q.n {
		panic("ring: At index out of range")
	}
	return q.buf[(q.head+i)&(len(q.buf)-1)]
}

// RemoveAt removes and returns the i'th element from the head, shifting
// the elements behind it forward one slot (FIFO order among the rest is
// preserved). O(n−i) moves, no allocation; RemoveAt(0) is Pop. Panics
// when i is out of range.
func (q *Q[T]) RemoveAt(i int) T {
	if i < 0 || i >= q.n {
		panic("ring: RemoveAt index out of range")
	}
	if i == 0 {
		return q.Pop()
	}
	mask := len(q.buf) - 1
	v := q.buf[(q.head+i)&mask]
	for j := i; j < q.n-1; j++ {
		q.buf[(q.head+j)&mask] = q.buf[(q.head+j+1)&mask]
	}
	var zero T
	q.buf[(q.head+q.n-1)&mask] = zero
	q.n--
	return v
}

// grow doubles the buffer (minimum 8) and re-bases the elements at
// index 0 in FIFO order.
func (q *Q[T]) grow() {
	c := 2 * len(q.buf)
	if c < 8 {
		c = 8
	}
	nb := make([]T, c)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = nb
	q.head = 0
}
