// Package loader models PIE (position-independent executable) program
// images and glibc's dlmopen(): loading a program into an address space
// under a fresh link namespace, so that every load gets its own instance
// of every static variable ("variable privatization" in PiP terms) while
// all instances remain addressable by everyone sharing the address space
// ("not shared but shareable").
package loader

import (
	"errors"
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
)

// Errors reported by the loader.
var (
	ErrNotPIE       = errors.New("loader: image is not position independent")
	ErrDupSymbol    = errors.New("loader: duplicate symbol in image")
	ErrNoSuchSymbol = errors.New("loader: no such symbol")
)

// Symbol declares one static variable in a program image.
type Symbol struct {
	Name string
	Size uint64
	Init []byte // initial value; zero-filled when shorter than Size

	// TLS marks a thread_local variable: it lives in the per-task TLS
	// block (located via the TLS register) rather than the data segment.
	TLS bool
}

// MainFunc is a program's entry point. The runtime passes an
// environment handle (the PiP/ULP layer defines its concrete type) and
// receives the exit status.
type MainFunc func(env interface{}) int

// Image is a "compiled" program: metadata the loader needs plus the entry
// point. PIE is required by PiP (only PIE programs can be loaded at an
// arbitrary base address).
type Image struct {
	Name     string
	PIE      bool
	TextSize uint64 // size of the executable segment
	Symbols  []Symbol
	Main     MainFunc

	// Deps are required shared objects (DT_NEEDED): dlmopen loads each
	// of them *into the same new namespace* alongside the program, so
	// every namespace gets its own copies of the libraries' static and
	// TLS variables (this is how PiP privatizes libc's errno). Shared
	// objects need no Main and must themselves be position independent.
	Deps []*Image
}

// Validate checks image invariants, including those of its dependency
// closure.
func (img *Image) Validate() error {
	if !img.PIE {
		return fmt.Errorf("%w: %s", ErrNotPIE, img.Name)
	}
	seen := make(map[string]bool, len(img.Symbols))
	for _, s := range img.Symbols {
		if s.Size == 0 {
			return fmt.Errorf("loader: symbol %s.%s has zero size", img.Name, s.Name)
		}
		if uint64(len(s.Init)) > s.Size {
			return fmt.Errorf("loader: symbol %s.%s init larger than size", img.Name, s.Name)
		}
		if seen[s.Name] {
			return fmt.Errorf("%w: %s.%s", ErrDupSymbol, img.Name, s.Name)
		}
		seen[s.Name] = true
	}
	for _, dep := range img.Deps {
		if err := dep.Validate(); err != nil {
			return fmt.Errorf("loader: dep of %s: %w", img.Name, err)
		}
	}
	return nil
}

// TLSLayout describes the thread-local storage block of one linked
// program: every task running that program gets its own copy, found
// through the task's TLS register.
type TLSLayout struct {
	Size    uint64
	Offsets map[string]uint64 // symbol -> offset within the block
	Init    []byte            // initialization image for new blocks
}

// Linked is the result of loading an image under one namespace: concrete
// addresses for text, data and every non-TLS symbol, plus the TLS layout.
type Linked struct {
	Image *Image
	NSID  int    // dlmopen namespace id (LM_ID_NEWLM result)
	Base  uint64 // load base of the text segment

	Text *mem.VMA
	Data *mem.VMA

	// DepLinks are this namespace's own instances of the image's shared
	// objects, in dependency order.
	DepLinks []*Linked

	symAddr map[string]uint64
	tls     TLSLayout
}

// SymbolAddr returns the virtual address of a non-TLS symbol in this
// namespace, searching the program first and then its shared objects in
// dependency order (ELF namespace-scoped symbol resolution).
func (l *Linked) SymbolAddr(name string) (uint64, error) {
	if a, ok := l.symAddr[name]; ok {
		return a, nil
	}
	for _, dep := range l.DepLinks {
		if a, err := dep.SymbolAddr(name); err == nil {
			return a, nil
		}
	}
	return 0, fmt.Errorf("%w: %s in ns %d of %s", ErrNoSuchSymbol, name, l.NSID, l.Image.Name)
}

// TLS returns the program's thread-local layout.
func (l *Linked) TLS() TLSLayout { return l.tls }

// Costs are the loader's timing parameters.
type Costs struct {
	DlmopenBase   sim.Duration // namespace setup
	DlmopenPerSym sim.Duration // per-symbol relocation
}

// Loader places program images into one address space, one namespace per
// Dlmopen call, mirroring glibc's dlmopen(LM_ID_NEWLM, ...).
type Loader struct {
	as       *mem.AddressSpace
	costs    Costs
	nextBase uint64
	nextNS   int
	loaded   []*Linked
}

// New creates a loader over the given address space.
func New(as *mem.AddressSpace, costs Costs) *Loader {
	return &Loader{as: as, costs: costs, nextBase: mem.TextBase, nextNS: 0}
}

// Loaded returns every linked program in load order.
func (ld *Loader) Loaded() []*Linked {
	out := make([]*Linked, len(ld.loaded))
	copy(out, ld.loaded)
	return out
}

// Dlmopen loads img — and its whole shared-object dependency closure —
// into a fresh link namespace and returns its linked form. Each call
// privatizes all static variables of the program *and its libraries*:
// the same symbol name resolves to a different address in every
// namespace.
func (ld *Loader) Dlmopen(img *Image, c Charger) (*Linked, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	l, err := ld.loadInNamespace(img, ld.nextNS, c)
	if err != nil {
		return nil, err
	}
	ld.nextNS++
	return l, nil
}

// loadInNamespace places one image (then its deps) at the next base, all
// under namespace ns.
func (ld *Loader) loadInNamespace(img *Image, ns int, c Charger) (*Linked, error) {
	charge(c, ld.costs.DlmopenBase)

	l := &Linked{
		Image:   img,
		NSID:    ns,
		Base:    ld.nextBase,
		symAddr: make(map[string]uint64),
		tls:     TLSLayout{Offsets: make(map[string]uint64)},
	}

	// Text segment.
	textSize := mem.PageCeil(maxU64(img.TextSize, mem.PageSize))
	text, err := ld.as.MapRegion(l.Base, textSize, mem.ProtRead|mem.ProtExec,
		mem.VMAText, fmt.Sprintf("%s.text@ns%d", img.Name, l.NSID), false, c)
	if err != nil {
		return nil, err
	}
	l.Text = text

	// Data segment: lay out non-TLS symbols sequentially, 8-byte aligned.
	var dataSize uint64
	type placed struct {
		sym Symbol
		off uint64
	}
	var dataSyms []placed
	for _, s := range img.Symbols {
		charge(c, ld.costs.DlmopenPerSym)
		if s.TLS {
			off := align8(l.tls.Size)
			l.tls.Offsets[s.Name] = off
			l.tls.Size = off + s.Size
			continue
		}
		off := align8(dataSize)
		dataSyms = append(dataSyms, placed{s, off})
		dataSize = off + s.Size
	}
	dataStart := l.Base + textSize
	data, err := ld.as.MapRegion(dataStart, mem.PageCeil(maxU64(dataSize, mem.PageSize)),
		mem.ProtRead|mem.ProtWrite, mem.VMAData,
		fmt.Sprintf("%s.data@ns%d", img.Name, l.NSID), false, c)
	if err != nil {
		ld.as.Munmap(text.Start, text.Len())
		return nil, err
	}
	l.Data = data

	// Initialize data symbols.
	for _, p := range dataSyms {
		addr := dataStart + p.off
		l.symAddr[p.sym.Name] = addr
		buf := make([]byte, p.sym.Size)
		copy(buf, p.sym.Init)
		if err := ld.as.Write(addr, buf, c); err != nil {
			return nil, err
		}
	}

	// Build the TLS initialization image.
	l.tls.Init = make([]byte, l.tls.Size)
	for _, s := range img.Symbols {
		if !s.TLS {
			continue
		}
		copy(l.tls.Init[l.tls.Offsets[s.Name]:l.tls.Offsets[s.Name]+s.Size], s.Init)
	}

	ld.nextBase = data.End + mem.PageSize // guard page between objects
	ld.loaded = append(ld.loaded, l)

	// Load the dependency closure into the same namespace and fold each
	// object's TLS into the program's static TLS block (the ELF static
	// TLS model: one block per thread covers every loaded module, which
	// is how libc's errno ends up in the program's TLS block).
	for _, dep := range img.Deps {
		dl, err := ld.loadInNamespace(dep, ns, c)
		if err != nil {
			return nil, err
		}
		l.DepLinks = append(l.DepLinks, dl)
		base := align8(l.tls.Size)
		for name, off := range dl.tls.Offsets {
			if _, exists := l.tls.Offsets[name]; !exists {
				l.tls.Offsets[name] = base + off
			}
		}
		l.tls.Size = base + dl.tls.Size
		grown := make([]byte, l.tls.Size)
		copy(grown, l.tls.Init)
		copy(grown[base:], dl.tls.Init)
		l.tls.Init = grown
	}
	return l, nil
}

// AllocTLSBlock carves a fresh, initialized TLS block for one task out of
// the shared address space and returns its base address (the value the
// task's TLS register will hold).
func (ld *Loader) AllocTLSBlock(l *Linked, c Charger) (uint64, error) {
	size := maxU64(l.tls.Size, 8)
	addr, err := ld.as.Mmap(size, mem.ProtRead|mem.ProtWrite,
		fmt.Sprintf("%s.tls@ns%d", l.Image.Name, l.NSID), true, c)
	if err != nil {
		return 0, err
	}
	if len(l.tls.Init) > 0 {
		if err := ld.as.Write(addr, l.tls.Init, c); err != nil {
			return 0, err
		}
	}
	return addr, nil
}

// Charger mirrors mem.Charger (re-declared to keep this package's API
// self-contained).
type Charger = mem.Charger

func charge(c Charger, d sim.Duration) {
	if c != nil {
		c.Charge(d)
	}
}

func align8(v uint64) uint64 { return (v + 7) &^ 7 }

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
