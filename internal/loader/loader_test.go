package loader

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
)

func testImage(name string) *Image {
	return &Image{
		Name:     name,
		PIE:      true,
		TextSize: 3 * mem.PageSize,
		Symbols: []Symbol{
			{Name: "counter", Size: 8, Init: []byte{42}},
			{Name: "buf", Size: 256},
			{Name: "errno", Size: 4, TLS: true},
			{Name: "tls_state", Size: 16, Init: []byte{7}, TLS: true},
		},
		Main: func(env interface{}) int { return 0 },
	}
}

func newLoader() (*Loader, *mem.AddressSpace) {
	as := mem.NewAddressSpace(mem.NewPhysMemory(0), mem.Costs{})
	return New(as, Costs{DlmopenBase: 180 * sim.Microsecond, DlmopenPerSym: 90 * sim.Nanosecond}), as
}

func TestDlmopenResolvesSymbols(t *testing.T) {
	ld, as := newLoader()
	l, err := ld.Dlmopen(testImage("prog"), nil)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := l.SymbolAddr("counter")
	if err != nil {
		t.Fatal(err)
	}
	v, err := as.ReadU64(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("counter init = %d, want 42", v)
	}
	if _, err := l.SymbolAddr("nope"); !errors.Is(err, ErrNoSuchSymbol) {
		t.Errorf("missing symbol err = %v", err)
	}
}

// TestPrivatization is the core PiP property: loading the same program
// twice gives two namespaces whose same-named variables live at distinct
// addresses in the one shared address space, with independent values —
// yet each remains readable by anyone holding its address ("shareable").
func TestPrivatization(t *testing.T) {
	ld, as := newLoader()
	img := testImage("prog")
	l1, err := ld.Dlmopen(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := ld.Dlmopen(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l1.NSID == l2.NSID {
		t.Fatal("two dlmopens share a namespace id")
	}
	a1, _ := l1.SymbolAddr("counter")
	a2, _ := l2.SymbolAddr("counter")
	if a1 == a2 {
		t.Fatal("same symbol resolved to same address across namespaces")
	}
	// Independent values.
	if err := as.WriteU64(a1, 111, nil); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteU64(a2, 222, nil); err != nil {
		t.Fatal(err)
	}
	v1, _ := as.ReadU64(a1, nil)
	v2, _ := as.ReadU64(a2, nil)
	if v1 != 111 || v2 != 222 {
		t.Errorf("privatized values = %d,%d, want 111,222", v1, v2)
	}
	// Shareable: "task 2" reads task 1's instance directly by address.
	cross, err := as.ReadU64(a1, nil)
	if err != nil || cross != 111 {
		t.Errorf("cross-namespace read = %d,%v, want 111", cross, err)
	}
}

func TestNonPIERejected(t *testing.T) {
	ld, _ := newLoader()
	img := testImage("static")
	img.PIE = false
	if _, err := ld.Dlmopen(img, nil); !errors.Is(err, ErrNotPIE) {
		t.Errorf("err = %v, want ErrNotPIE", err)
	}
}

func TestImageValidation(t *testing.T) {
	cases := []struct {
		mutate func(*Image)
		name   string
	}{
		{func(i *Image) { i.Symbols[0].Size = 0 }, "zero size"},
		{func(i *Image) { i.Symbols[0].Init = make([]byte, 99) }, "init too large"},
		{func(i *Image) { i.Symbols[1].Name = i.Symbols[0].Name }, "duplicate"},
	}
	for _, c := range cases {
		img := testImage("bad")
		c.mutate(img)
		if err := img.Validate(); err == nil {
			t.Errorf("%s: Validate passed", c.name)
		}
	}
}

func TestTLSLayoutAndBlocks(t *testing.T) {
	ld, as := newLoader()
	l, err := ld.Dlmopen(testImage("prog"), nil)
	if err != nil {
		t.Fatal(err)
	}
	tls := l.TLS()
	if len(tls.Offsets) != 2 {
		t.Fatalf("TLS symbols = %d, want 2", len(tls.Offsets))
	}
	if tls.Size < 20 {
		t.Errorf("TLS size = %d, want >= 20", tls.Size)
	}
	// Two tasks get independent TLS blocks, both initialized.
	b1, err := ld.AllocTLSBlock(l, nil)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := ld.AllocTLSBlock(l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b1 == b2 {
		t.Fatal("two TLS blocks at the same address")
	}
	off := tls.Offsets["tls_state"]
	buf := make([]byte, 1)
	as.Read(b1+off, buf, nil)
	if buf[0] != 7 {
		t.Errorf("TLS block 1 init = %d, want 7", buf[0])
	}
	// Mutating one block leaves the other intact (e.g. errno isolation).
	eoff := tls.Offsets["errno"]
	as.Write(b1+eoff, []byte{13}, nil)
	as.Read(b2+eoff, buf, nil)
	if buf[0] != 0 {
		t.Errorf("TLS privatization broken: block2 errno = %d", buf[0])
	}
}

func TestLoadBasesDoNotOverlap(t *testing.T) {
	ld, _ := newLoader()
	img := testImage("prog")
	var prev *Linked
	for i := 0; i < 5; i++ {
		l, err := ld.Dlmopen(img, nil)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && l.Text.Start < prev.Data.End {
			t.Fatalf("load %d overlaps previous: %x < %x", i, l.Text.Start, prev.Data.End)
		}
		prev = l
	}
	if len(ld.Loaded()) != 5 {
		t.Errorf("Loaded = %d, want 5", len(ld.Loaded()))
	}
}

func TestDlmopenChargesCost(t *testing.T) {
	ld, _ := newLoader()
	ch := &countCharger{}
	if _, err := ld.Dlmopen(testImage("prog"), ch); err != nil {
		t.Fatal(err)
	}
	want := 180*sim.Microsecond + 4*90*sim.Nanosecond
	if ch.total < want {
		t.Errorf("charged %v, want >= %v", ch.total, want)
	}
}

type countCharger struct{ total sim.Duration }

func (c *countCharger) Charge(d sim.Duration) { c.total += d }

// Property: for any pair of symbol sets, every symbol resolves inside its
// own data VMA and no two symbols of one namespace overlap.
func TestSymbolPlacementProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		img := &Image{Name: "p", PIE: true, TextSize: mem.PageSize,
			Main: func(interface{}) int { return 0 }}
		for i, s := range sizes {
			if i >= 30 {
				break
			}
			img.Symbols = append(img.Symbols, Symbol{
				Name: string(rune('a'+i%26)) + string(rune('0'+i/26)),
				Size: uint64(s%64) + 1,
			})
		}
		ld, _ := newLoader()
		l, err := ld.Dlmopen(img, nil)
		if err != nil {
			return false
		}
		type iv struct{ lo, hi uint64 }
		var placedIVs []iv
		for _, s := range img.Symbols {
			a, err := l.SymbolAddr(s.Name)
			if err != nil {
				return false
			}
			if a < l.Data.Start || a+s.Size > l.Data.End {
				return false
			}
			for _, o := range placedIVs {
				if a < o.hi && o.lo < a+s.Size {
					return false
				}
			}
			placedIVs = append(placedIVs, iv{a, a + s.Size})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// libcImage is a "shared object": no Main, static + TLS state.
func libcImage() *Image {
	return &Image{
		Name: "libsim.so", PIE: true, TextSize: 2 * mem.PageSize,
		Symbols: []Symbol{
			{Name: "lib_state", Size: 16, Init: []byte{0xAB}},
			{Name: "errno", Size: 4, TLS: true},
		},
	}
}

func TestDlmopenLoadsDependencyClosure(t *testing.T) {
	ld, as := newLoader()
	prog := &Image{
		Name: "app", PIE: true, TextSize: mem.PageSize,
		Symbols: []Symbol{{Name: "app_var", Size: 8}},
		Main:    func(interface{}) int { return 0 },
		Deps:    []*Image{libcImage()},
	}
	l1, err := ld.Dlmopen(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := ld.Dlmopen(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Namespace-scoped resolution finds the dep's symbol.
	a1, err := l1.SymbolAddr("lib_state")
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := l2.SymbolAddr("lib_state")
	if a1 == a2 {
		t.Error("shared-object state not privatized per namespace")
	}
	// Each namespace has its own dep instance under the same NSID.
	if len(l1.DepLinks) != 1 || l1.DepLinks[0].NSID != l1.NSID {
		t.Errorf("dep links = %+v", l1.DepLinks)
	}
	// The dep's init value is present in both instances.
	b := make([]byte, 1)
	as.Read(a1, b, nil)
	if b[0] != 0xAB {
		t.Errorf("ns1 lib_state init = %#x", b[0])
	}
	as.Read(a2, b, nil)
	if b[0] != 0xAB {
		t.Errorf("ns2 lib_state init = %#x", b[0])
	}
}

func TestDepTLSFoldedIntoStaticBlock(t *testing.T) {
	// The ELF static-TLS model: the dep's errno lives in the program's
	// per-task TLS block.
	ld, as := newLoader()
	prog := &Image{
		Name: "app", PIE: true, TextSize: mem.PageSize,
		Symbols: []Symbol{
			{Name: "x", Size: 8},
			{Name: "app_tls", Size: 8, TLS: true, Init: []byte{3}},
		},
		Main: func(interface{}) int { return 0 },
		Deps: []*Image{libcImage()},
	}
	l, err := ld.Dlmopen(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	tls := l.TLS()
	appOff, okA := tls.Offsets["app_tls"]
	errOff, okE := tls.Offsets["errno"]
	if !okA || !okE {
		t.Fatalf("TLS offsets = %v", tls.Offsets)
	}
	if appOff == errOff {
		t.Error("program and dep TLS overlap")
	}
	if tls.Size < 12 {
		t.Errorf("combined TLS size = %d", tls.Size)
	}
	// A fresh block carries both init images.
	block, err := ld.AllocTLSBlock(l, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 1)
	as.Read(block+appOff, b, nil)
	if b[0] != 3 {
		t.Errorf("app_tls init = %d", b[0])
	}
}

func TestBadDepRejected(t *testing.T) {
	ld, _ := newLoader()
	bad := libcImage()
	bad.PIE = false
	prog := &Image{
		Name: "app", PIE: true, TextSize: mem.PageSize,
		Symbols: []Symbol{{Name: "x", Size: 8}},
		Main:    func(interface{}) int { return 0 },
		Deps:    []*Image{bad},
	}
	if _, err := ld.Dlmopen(prog, nil); !errors.Is(err, ErrNotPIE) {
		t.Errorf("err = %v, want ErrNotPIE", err)
	}
}
