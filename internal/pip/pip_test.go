package pip

import (
	"errors"
	"testing"

	"repro/internal/arch"
	"repro/internal/kernel"
	"repro/internal/loader"
	"repro/internal/sim"
)

func newKernel(m *arch.Machine) (*sim.Engine, *kernel.Kernel) {
	e := sim.New()
	return e, kernel.New(e, m)
}

func counterImage(name string) *loader.Image {
	return &loader.Image{
		Name:     name,
		PIE:      true,
		TextSize: 2 * 4096,
		Symbols: []loader.Symbol{
			{Name: "counter", Size: 8},
			{Name: "errno", Size: 8, TLS: true},
		},
		Main: func(envI interface{}) int {
			env := envI.(*Env)
			addr, err := env.SymbolAddr("counter")
			if err != nil {
				return 1
			}
			rank := env.Proc.Rank
			// Each process writes its rank+100 into its own counter.
			if err := env.Task().MemWrite(addr, []byte{byte(rank + 100)}); err != nil {
				return 2
			}
			return 0
		},
	}
}

func TestSpawnProcessModeAndWait(t *testing.T) {
	e, k := newKernel(arch.Wallaby())
	img := counterImage("prog")
	var exitStatuses []int
	Launch(k, "root", func(r *Root) int {
		for i := 0; i < 3; i++ {
			if _, err := r.Spawn(img, ProcessMode, nil); err != nil {
				t.Errorf("spawn %d: %v", i, err)
			}
		}
		for i := 0; i < 3; i++ {
			_, status, err := r.WaitAny()
			if err != nil {
				t.Errorf("wait: %v", err)
			}
			exitStatuses = append(exitStatuses, status)
		}
		return 0
	})
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if len(exitStatuses) != 3 {
		t.Fatalf("reaped %d, want 3", len(exitStatuses))
	}
	for _, s := range exitStatuses {
		if s != 0 {
			t.Errorf("exit status %d, want 0", s)
		}
	}
}

func TestPiPTasksShareAddressSpaceWithPrivatizedVars(t *testing.T) {
	e, k := newKernel(arch.Wallaby())
	img := counterImage("prog")
	Launch(k, "root", func(r *Root) int {
		p0, _ := r.Spawn(img, ProcessMode, nil)
		p1, _ := r.Spawn(img, ProcessMode, nil)
		if p0.Task().Space() != r.Space() || p1.Task().Space() != r.Space() {
			t.Error("PiP tasks do not share the root's address space")
		}
		r.WaitAny()
		r.WaitAny()
		// Privatized: each process's "counter" is distinct and holds
		// that process's value; the root can read both directly.
		a0, _ := p0.Linked.SymbolAddr("counter")
		a1, _ := p1.Linked.SymbolAddr("counter")
		if a0 == a1 {
			t.Fatal("counter not privatized")
		}
		b := make([]byte, 1)
		r.Task().MemRead(a0, b)
		if b[0] != 100 {
			t.Errorf("proc0 counter = %d, want 100", b[0])
		}
		r.Task().MemRead(a1, b)
		if b[0] != 101 {
			t.Errorf("proc1 counter = %d, want 101", b[0])
		}
		return 0
	})
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
}

func TestProcessModeKernelIdentity(t *testing.T) {
	e, k := newKernel(arch.Wallaby())
	pids := map[int]bool{}
	img := &loader.Image{
		Name: "ident", PIE: true, TextSize: 4096,
		Symbols: []loader.Symbol{{Name: "x", Size: 8}},
		Main: func(envI interface{}) int {
			env := envI.(*Env)
			pids[env.Task().Getpid()] = true
			return 0
		},
	}
	Launch(k, "root", func(r *Root) int {
		r.Spawn(img, ProcessMode, nil)
		r.Spawn(img, ProcessMode, nil)
		r.WaitAny()
		r.WaitAny()
		return 0
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(pids) != 2 {
		t.Errorf("process-mode tasks saw %d distinct pids, want 2", len(pids))
	}
}

func TestThreadModeKernelIdentity(t *testing.T) {
	e, k := newKernel(arch.Wallaby())
	pids := map[int]bool{}
	img := &loader.Image{
		Name: "ident", PIE: true, TextSize: 4096,
		Symbols: []loader.Symbol{{Name: "x", Size: 8}},
		Main: func(envI interface{}) int {
			env := envI.(*Env)
			pids[env.Task().Getpid()] = true
			return 0
		},
	}
	var rootPID int
	Launch(k, "root", func(r *Root) int {
		rootPID = r.Task().Getpid()
		p0, _ := r.Spawn(img, ThreadMode, nil)
		p1, _ := r.Spawn(img, ThreadMode, nil)
		p0.Join()
		p1.Join()
		return 0
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Thread mode: all PiP tasks share the root's PID, yet variable
	// privatization still held (they each wrote their own namespace).
	if len(pids) != 1 || !pids[rootPID] {
		t.Errorf("thread-mode pids = %v, want only root pid %d", pids, rootPID)
	}
}

func TestTLSBlocksPerProcess(t *testing.T) {
	e, k := newKernel(arch.Albireo())
	img := &loader.Image{
		Name: "tls", PIE: true, TextSize: 4096,
		Symbols: []loader.Symbol{{Name: "errno", Size: 8, TLS: true}},
		Main: func(envI interface{}) int {
			env := envI.(*Env)
			// The task's TLS register must point at this process's block.
			if env.Task().TLSReg() != env.Proc.TLSBase() {
				return 1
			}
			addr, err := env.TLSAddr("errno")
			if err != nil {
				return 2
			}
			if err := env.Task().MemWrite(addr, []byte{byte(env.Proc.Rank + 1)}); err != nil {
				return 3
			}
			return 0
		},
	}
	Launch(k, "root", func(r *Root) int {
		p0, _ := r.Spawn(img, ProcessMode, nil)
		p1, _ := r.Spawn(img, ProcessMode, nil)
		r.WaitAny()
		r.WaitAny()
		if p0.TLSBase() == p1.TLSBase() {
			t.Error("TLS blocks shared between processes")
		}
		b := make([]byte, 1)
		off := p0.Linked.TLS().Offsets["errno"]
		r.Task().MemRead(p0.TLSBase()+off, b)
		if b[0] != 1 {
			t.Errorf("proc0 TLS errno = %d, want 1", b[0])
		}
		r.Task().MemRead(p1.TLSBase()+off, b)
		if b[0] != 2 {
			t.Errorf("proc1 TLS errno = %d, want 2", b[0])
		}
		return 0
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestExportImport(t *testing.T) {
	e, k := newKernel(arch.Wallaby())
	producer := &loader.Image{
		Name: "producer", PIE: true, TextSize: 4096,
		Symbols: []loader.Symbol{{Name: "shared_buf", Size: 64}},
		Main: func(envI interface{}) int {
			env := envI.(*Env)
			addr, _ := env.SymbolAddr("shared_buf")
			env.Task().MemWrite(addr, []byte("pip-data"))
			if err := env.Export("buf", "shared_buf"); err != nil {
				return 1
			}
			return 0
		},
	}
	consumer := &loader.Image{
		Name: "consumer", PIE: true, TextSize: 4096,
		Symbols: []loader.Symbol{{Name: "x", Size: 8}},
		Main: func(envI interface{}) int {
			env := envI.(*Env)
			addr, err := env.Import("buf")
			if err != nil {
				return 1
			}
			b := make([]byte, 8)
			env.Task().MemRead(addr, b)
			if string(b) != "pip-data" {
				return 2
			}
			return 0
		},
	}
	Launch(k, "root", func(r *Root) int {
		r.Spawn(producer, ProcessMode, nil)
		_, s1, _ := r.WaitAny()
		r.Spawn(consumer, ProcessMode, nil)
		_, s2, _ := r.WaitAny()
		if s1 != 0 || s2 != 0 {
			t.Errorf("statuses = %d,%d", s1, s2)
		}
		return 0
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestImportMissing(t *testing.T) {
	e, k := newKernel(arch.Wallaby())
	img := &loader.Image{
		Name: "imp", PIE: true, TextSize: 4096,
		Symbols: []loader.Symbol{{Name: "x", Size: 8}},
		Main: func(envI interface{}) int {
			env := envI.(*Env)
			if _, err := env.Import("ghost"); !errors.Is(err, ErrNoExport) {
				return 1
			}
			return 0
		},
	}
	Launch(k, "root", func(r *Root) int {
		r.Spawn(img, ProcessMode, nil)
		_, s, _ := r.WaitAny()
		if s != 0 {
			t.Errorf("status = %d", s)
		}
		return 0
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSpawnArgDelivered(t *testing.T) {
	e, k := newKernel(arch.Wallaby())
	img := &loader.Image{
		Name: "argy", PIE: true, TextSize: 4096,
		Symbols: []loader.Symbol{{Name: "x", Size: 8}},
		Main: func(envI interface{}) int {
			return envI.(*Env).Arg.(int) * 2
		},
	}
	Launch(k, "root", func(r *Root) int {
		r.Spawn(img, ProcessMode, 21)
		_, s, _ := r.WaitAny()
		if s != 42 {
			t.Errorf("status = %d, want 42", s)
		}
		return 0
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizesTasks(t *testing.T) {
	e, k := newKernel(arch.Wallaby())
	const parties = 4
	var bar *Barrier
	arrived := 0
	minSeen := parties * 10
	img := &loader.Image{
		Name: "bar", PIE: true, TextSize: 4096,
		Symbols: []loader.Symbol{{Name: "x", Size: 8}},
		Main: func(envI interface{}) int {
			env := envI.(*Env)
			env.Task().Nanosleep(sim.Duration(env.Proc.Rank+1) * sim.Microsecond)
			arrived++
			if err := bar.Wait(env.Task()); err != nil {
				t.Errorf("barrier: %v", err)
			}
			// After the barrier, everyone must have arrived.
			if arrived < minSeen {
				minSeen = arrived
			}
			return 0
		},
	}
	Launch(k, "root", func(r *Root) int {
		var err error
		bar, err = NewBarrier(r.Task(), parties)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < parties; i++ {
			r.Spawn(img, ProcessMode, nil)
		}
		for i := 0; i < parties; i++ {
			r.WaitAny()
		}
		return 0
	})
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if minSeen != parties {
		t.Errorf("a task passed the barrier seeing only %d arrivals", minSeen)
	}
}

func TestSpawnLimit(t *testing.T) {
	e, k := newKernel(arch.Wallaby())
	img := &loader.Image{
		Name: "nop", PIE: true, TextSize: 4096,
		Symbols: []loader.Symbol{{Name: "x", Size: 8}},
		Main:    func(interface{}) int { return 0 },
	}
	Launch(k, "root", func(r *Root) int {
		for i := 0; i < MaxTasks; i++ {
			if _, err := r.Spawn(img, ProcessMode, nil); err != nil {
				t.Fatalf("spawn %d failed early: %v", i, err)
			}
		}
		if _, err := r.Spawn(img, ProcessMode, nil); !errors.Is(err, ErrTooManyTasks) {
			t.Errorf("err = %v, want ErrTooManyTasks", err)
		}
		for i := 0; i < MaxTasks; i++ {
			r.WaitAny()
		}
		return 0
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNonPIESpawnFails(t *testing.T) {
	e, k := newKernel(arch.Wallaby())
	img := &loader.Image{
		Name: "static", PIE: false, TextSize: 4096,
		Symbols: []loader.Symbol{{Name: "x", Size: 8}},
		Main:    func(interface{}) int { return 0 },
	}
	Launch(k, "root", func(r *Root) int {
		if _, err := r.Spawn(img, ProcessMode, nil); !errors.Is(err, loader.ErrNotPIE) {
			t.Errorf("err = %v, want ErrNotPIE", err)
		}
		return 0
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAccessorsAndJoinErrors(t *testing.T) {
	e, k := newKernel(arch.Wallaby())
	img := counterImage("acc")
	Launch(k, "root", func(r *Root) int {
		if r.Kernel() != k {
			t.Error("Kernel accessor")
		}
		if r.Loader() == nil {
			t.Error("Loader accessor")
		}
		p, err := r.Spawn(img, ProcessMode, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.Processes(); len(got) != 1 || got[0] != p {
			t.Errorf("Processes = %v", got)
		}
		if p.Task().Parent() != r.Task() {
			t.Error("process parent")
		}
		// Join on a process-mode task is an error.
		if _, err := p.Join(); err != ErrWrongMode {
			t.Errorf("Join on process mode: %v", err)
		}
		r.WaitAny()
		if ProcessMode.String() != "process" || ThreadMode.String() != "thread" {
			t.Error("Mode strings")
		}
		return 0
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierParties(t *testing.T) {
	e, k := newKernel(arch.Wallaby())
	Launch(k, "root", func(r *Root) int {
		b, err := NewBarrier(r.Task(), 0) // clamps to 1
		if err != nil {
			t.Fatal(err)
		}
		if b.Parties() != 1 {
			t.Errorf("Parties = %d, want 1", b.Parties())
		}
		// A 1-party barrier never blocks.
		if err := b.Wait(r.Task()); err != nil {
			t.Errorf("1-party barrier: %v", err)
		}
		return 0
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestImportWaitBlocksUntilExport(t *testing.T) {
	e, k := newKernel(arch.Wallaby())
	late := &loader.Image{
		Name: "late-producer", PIE: true, TextSize: 4096,
		Symbols: []loader.Symbol{{Name: "payload", Size: 8}},
		Main: func(envI interface{}) int {
			env := envI.(*Env)
			env.Task().Nanosleep(50 * sim.Microsecond)
			if err := env.Export("late", "payload"); err != nil {
				return 1
			}
			return 0
		},
	}
	waiterImg := &loader.Image{
		Name: "waiter", PIE: true, TextSize: 4096,
		Symbols: []loader.Symbol{{Name: "x", Size: 8}},
		Main: func(envI interface{}) int {
			env := envI.(*Env)
			if env.ImportWait("late") == 0 {
				return 1
			}
			return 0
		},
	}
	Launch(k, "root", func(r *Root) int {
		r.Spawn(waiterImg, ProcessMode, nil)
		r.Spawn(late, ProcessMode, nil)
		for i := 0; i < 2; i++ {
			if _, st, err := r.WaitAny(); err != nil || st != 0 {
				t.Errorf("wait: st=%d err=%v", st, err)
			}
		}
		return 0
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
