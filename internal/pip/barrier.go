package pip

import "repro/internal/kernel"

// Barrier is a reusable sense-reversing barrier across PiP tasks, built
// on futex words in the shared address space — the synchronization
// primitive an MPI implementation over PiP would use.
type Barrier struct {
	parties   int
	countAddr uint64 // arrivals in the current generation
	genAddr   uint64 // generation counter (the futex word)
}

// NewBarrier allocates a barrier for the given number of parties in the
// calling task's (shared) address space.
func NewBarrier(t *kernel.Task, parties int) (*Barrier, error) {
	if parties < 1 {
		parties = 1
	}
	base, err := t.Mmap(16, true)
	if err != nil {
		return nil, err
	}
	return &Barrier{parties: parties, countAddr: base, genAddr: base + 8}, nil
}

// Parties returns the number of participants.
func (b *Barrier) Parties() int { return b.parties }

// Wait blocks the calling task until all parties have arrived. The last
// arrival advances the generation and wakes everyone.
func (b *Barrier) Wait(t *kernel.Task) error {
	space := t.Space()
	gen, err := space.ReadU64(b.genAddr, nil)
	if err != nil {
		return err
	}
	t.Charge(t.Kernel().Machine().Costs.AtomicOp)
	count, err := space.ReadU64(b.countAddr, nil)
	if err != nil {
		return err
	}
	count++
	if err := space.WriteU64(b.countAddr, count, nil); err != nil {
		return err
	}
	if int(count) == b.parties {
		// Last arrival: reset and release this generation.
		if err := space.WriteU64(b.countAddr, 0, nil); err != nil {
			return err
		}
		if err := space.WriteU64(b.genAddr, gen+1, nil); err != nil {
			return err
		}
		t.FutexWake(b.genAddr, b.parties)
		return nil
	}
	for {
		cur, err := space.ReadU64(b.genAddr, nil)
		if err != nil {
			return err
		}
		if cur != gen {
			return nil
		}
		if err := t.FutexWait(b.genAddr, gen); err != nil && err != kernel.ErrFutexAgain {
			return err
		}
	}
}
