// Package pip implements Process-in-Process (PiP) — the address-space
// sharing library of Hori et al. (HPDC'18) that this paper's ULP-PiP is
// built on. A PiP root process spawns PiP processes derived from PIE
// program images into the root's own virtual address space, loading each
// under a fresh dlmopen() namespace so that all static variables are
// privatized, yet everything remains addressable by everyone ("not
// shared but shareable").
//
// Two execution modes mirror the real library:
//
//   - ProcessMode uses clone() without CLONE_THREAD/CLONE_FILES: each PiP
//     process has its own PID, file descriptors and signal handlers, and
//     the root reaps it with wait(2).
//   - ThreadMode uses pthread_create(): PiP tasks are threads in the
//     root's process in the kernel's eyes (for systems without clone()),
//     while variable privatization still holds.
package pip

import (
	"errors"
	"fmt"

	"repro/internal/kernel"
	"repro/internal/loader"
	"repro/internal/mem"
	"repro/internal/sim"
)

// MaxTasks is the maximum number of PiP tasks per root, matching the
// real library's namespace limit.
const MaxTasks = 300

// Errors reported by PiP.
var (
	ErrTooManyTasks = errors.New("pip: too many PiP tasks")
	ErrNoExport     = errors.New("pip: no such exported address")
	ErrWrongMode    = errors.New("pip: operation not valid in this mode")
)

// Mode selects how PiP tasks are created.
type Mode int

// Execution modes.
const (
	ProcessMode Mode = iota
	ThreadMode
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ThreadMode {
		return "thread"
	}
	return "process"
}

// Root is the PiP root process: a normal process whose address space all
// PiP tasks share.
type Root struct {
	kern  *kernel.Kernel
	task  *kernel.Task
	space *mem.AddressSpace
	ld    *loader.Loader

	procs   []*Process
	exports map[string]uint64
}

// Launch creates the PiP root process and starts it running body. The
// returned kernel task exits when body returns.
func Launch(k *kernel.Kernel, name string, body func(r *Root) int) *kernel.Task {
	space := k.NewAddressSpace()
	c := k.Machine().Costs
	ld := loader.New(space, loader.Costs{
		DlmopenBase:   c.DlmopenBase,
		DlmopenPerSym: c.DlmopenPerSym,
	})
	r := &Root{kern: k, space: space, ld: ld, exports: make(map[string]uint64)}
	task := k.NewTask(name, space, func(t *kernel.Task) int {
		r.task = t
		return body(r)
	})
	k.Start(task, 0)
	return task
}

// Kernel returns the kernel the root runs on.
func (r *Root) Kernel() *kernel.Kernel { return r.kern }

// Task returns the root's kernel task.
func (r *Root) Task() *kernel.Task { return r.task }

// Space returns the shared address space.
func (r *Root) Space() *mem.AddressSpace { return r.space }

// Loader returns the root's program loader.
func (r *Root) Loader() *loader.Loader { return r.ld }

// Processes returns the spawned PiP processes in rank order.
func (r *Root) Processes() []*Process {
	out := make([]*Process, len(r.procs))
	copy(out, r.procs)
	return out
}

// Process is one PiP task: a program image loaded into the shared space
// plus the kernel task executing it.
type Process struct {
	Rank    int
	Mode    Mode
	Linked  *loader.Linked
	root    *Root
	task    *kernel.Task
	tlsBase uint64
}

// Task returns the kernel task executing this PiP process.
func (p *Process) Task() *kernel.Task { return p.task }

// TLSBase returns the address of the process's TLS block (the value its
// TLS register holds while it runs).
func (p *Process) TLSBase() uint64 { return p.tlsBase }

// Env is the environment handle passed to a PiP program's Main. It is
// delivered as the loader.MainFunc argument (type-assert to *pip.Env).
type Env struct {
	Proc *Process
	Arg  interface{} // spawn argument
}

// Task returns the kernel task running the program.
func (e *Env) Task() *kernel.Task { return e.Proc.task }

// Root returns the owning root.
func (e *Env) Root() *Root { return e.Proc.root }

// SymbolAddr resolves a privatized variable of this process's own
// namespace.
func (e *Env) SymbolAddr(name string) (uint64, error) {
	return e.Proc.Linked.SymbolAddr(name)
}

// TLSAddr resolves a thread-local variable of this process relative to
// its TLS block.
func (e *Env) TLSAddr(name string) (uint64, error) {
	off, ok := e.Proc.Linked.TLS().Offsets[name]
	if !ok {
		return 0, fmt.Errorf("%w: TLS %s", loader.ErrNoSuchSymbol, name)
	}
	return e.Proc.tlsBase + off, nil
}

// Export publishes the address of one of this process's variables under
// a global name, modeling pip_export: any other PiP task may Import it
// and dereference the pointer as-is (same address space).
func (e *Env) Export(global, symbol string) error {
	addr, err := e.SymbolAddr(symbol)
	if err != nil {
		return err
	}
	e.Proc.root.exports[global] = addr
	return nil
}

// Import resolves a previously exported address, modeling pip_import.
func (e *Env) Import(global string) (uint64, error) {
	addr, ok := e.Proc.root.exports[global]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoExport, global)
	}
	return addr, nil
}

// ImportWait blocks (via sched_yield, since PiP tasks are plain kernel
// tasks) until the named export appears — the synchronizing variant of
// pip_import that spares callers a hand-rolled retry loop.
func (e *Env) ImportWait(global string) uint64 {
	for {
		if addr, err := e.Import(global); err == nil {
			return addr
		}
		e.Proc.task.SchedYield()
	}
}

// Spawn loads img under a new namespace and starts it as a PiP task of
// the given mode. The root task pays the dlmopen and clone costs, as the
// real pip_spawn does. arg is handed to the program through its Env.
func (r *Root) Spawn(img *loader.Image, mode Mode, arg interface{}) (*Process, error) {
	if len(r.procs) >= MaxTasks {
		return nil, fmt.Errorf("%w: limit %d", ErrTooManyTasks, MaxTasks)
	}
	linked, err := r.ld.Dlmopen(img, charger{r.task})
	if err != nil {
		return nil, err
	}
	tlsBase, err := r.ld.AllocTLSBlock(linked, charger{r.task})
	if err != nil {
		return nil, err
	}
	p := &Process{
		Rank:    len(r.procs),
		Mode:    mode,
		Linked:  linked,
		root:    r,
		tlsBase: tlsBase,
	}
	flags := kernel.PiPProcessFlags
	if mode == ThreadMode {
		flags = kernel.PThreadFlags
	}
	name := fmt.Sprintf("%s.%d", img.Name, p.Rank)
	p.task = r.task.Clone(name, flags, func(t *kernel.Task) int {
		// A freshly created task points its TLS register at its own
		// TLS block before user code runs (the paper: "TLS register
		// content is saved at the time of creation of a ULP").
		t.LoadTLS(p.tlsBase)
		return img.Main(&Env{Proc: p, Arg: arg})
	})
	r.procs = append(r.procs, p)
	return p, nil
}

// WaitAny reaps one terminated process-mode PiP task via wait(2),
// returning it and its exit status. In thread mode use Join.
func (r *Root) WaitAny() (*Process, int, error) {
	pid, status, err := r.task.Wait()
	if err != nil {
		return nil, 0, err
	}
	for _, p := range r.procs {
		if p.task.PID() == pid {
			return p, status, nil
		}
	}
	return nil, status, nil
}

// Join waits for a thread-mode PiP task (pthread_join).
func (p *Process) Join() (int, error) {
	if p.Mode != ThreadMode {
		return 0, ErrWrongMode
	}
	return p.root.task.Join(p.task), nil
}

// charger adapts the root task to mem.Charger.
type charger struct{ t *kernel.Task }

func (c charger) Charge(d sim.Duration) { c.t.Charge(d) }
