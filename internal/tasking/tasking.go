// Package tasking is a BOLT-style task-parallel runtime over bi-level
// threads (the paper's §III: "If ULT is used for [the] underlying OpenMP
// runtime, instead of using PThreads, then this overhead can be
// reduced"). It provides nested fork-join task groups and parallel-for
// loops whose tasks are lightweight user contexts scheduled by the BLT
// pool — so an over-subscribed nested parallel region costs ~150 ns per
// switch instead of a kernel context switch.
//
// Blocking work inside a task (file I/O, etc.) is wrapped with the task's
// Exec, which couples the underlying BLT to its original kernel context —
// task parallelism and system-call consistency compose.
package tasking

import (
	"errors"
	"fmt"

	"repro/internal/blt"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// ErrStopped is returned when submitting to a stopped runtime.
var ErrStopped = errors.New("tasking: runtime stopped")

// Func is a task body. The TaskCtx gives access to time charging,
// blocking-call bracketing, and nested spawning.
type Func func(tc *TaskCtx)

// task is one pending unit of work.
type task struct {
	fn    Func
	group *Group
}

// Runtime is a work pool of N worker BLTs fed from a shared queue. An
// idle worker couples with its original KC and blocks on the work
// semaphore there (on the system-call cores), leaving the program cores
// free — the Fig. 6 partitioning applied to a tasking runtime.
type Runtime struct {
	pool    *blt.Pool
	workers []*blt.BLT
	queue   []*task
	workSem *kernel.Semaphore
	stopped bool

	// Stats.
	executed uint64
}

// Config configures the runtime.
type Config struct {
	ProgCores    []int
	SyscallCores []int
	Idle         blt.IdlePolicy
	// Workers is the number of worker BLTs; it may exceed the core
	// count (nested parallelism over-subscribes gracefully with ULTs).
	Workers int
}

// New creates the runtime with its workers. The creator task pays the
// spawn costs. Call Shutdown (then reap the worker KCs via wait) when
// done.
func New(creator *kernel.Task, cfg Config) (*Runtime, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = len(cfg.ProgCores)
	}
	pool, err := blt.NewPool(creator, blt.Config{
		ProgCores:    cfg.ProgCores,
		SyscallCores: cfg.SyscallCores,
		Idle:         cfg.Idle,
		SwitchTLS:    false, // plain ULT-style workers (BLT ⊃ ULT)
		WorkStealing: true,
	})
	if err != nil {
		return nil, err
	}
	workSem, err := creator.NewSemaphore(0)
	if err != nil {
		return nil, err
	}
	rt := &Runtime{pool: pool, workSem: workSem}
	for i := 0; i < cfg.Workers; i++ {
		w, err := pool.Spawn(rt.workerBody, blt.SpawnOpts{
			Name:      fmt.Sprintf("worker%d", i),
			Scheduler: -1,
		})
		if err != nil {
			return nil, err
		}
		rt.workers = append(rt.workers, w)
	}
	return rt, nil
}

// Pool exposes the underlying BLT pool.
func (rt *Runtime) Pool() *blt.Pool { return rt.pool }

// Executed reports how many tasks have completed.
func (rt *Runtime) Executed() uint64 { return rt.executed }

// Workers reports the worker count.
func (rt *Runtime) Workers() int { return len(rt.workers) }

// workerBody: decouple, then serve the queue. One semaphore count is
// posted per submitted task; a worker that wins a count but finds the
// queue drained (an ancestor executed the task inline in WaitCtx)
// simply waits again.
func (rt *Runtime) workerBody(b *blt.BLT) int {
	b.Decouple()
	for {
		b.Exec(func(kc *kernel.Task) { rt.workSem.Wait(kc) })
		if rt.stopped {
			break
		}
		if len(rt.queue) == 0 {
			continue // task was helped-out inline
		}
		t := rt.queue[0]
		rt.queue = rt.queue[1:]
		tc := &TaskCtx{rt: rt, b: b, group: t.group}
		t.fn(tc)
		rt.finish(b.Carrier(), t)
	}
	b.Couple()
	return 0
}

// finish retires a task: stats, group accounting, completion signal.
func (rt *Runtime) finish(carrier *kernel.Task, t *task) {
	rt.executed++
	g := t.group
	if g == nil {
		return
	}
	g.pending--
	if g.pending == 0 && g.done != nil {
		g.done.Post(carrier)
	}
}

// submit queues a task and posts one work count. from is any kernel
// task sharing the pool's address space (futexes are space-keyed, so
// posting from a scheduler carrier is sound).
func (rt *Runtime) submit(from *kernel.Task, t *task) {
	rt.queue = append(rt.queue, t)
	rt.workSem.Post(from)
}

// Shutdown stops the workers (waking each blocked one), reaps their KCs
// and shuts the pool down.
func (rt *Runtime) Shutdown(creator *kernel.Task) {
	if rt.stopped {
		return
	}
	rt.stopped = true
	for range rt.workers {
		rt.workSem.Post(creator)
	}
	for range rt.workers {
		creator.Wait()
	}
	rt.pool.Shutdown(creator)
}

// Group is a fork-join task group (an OpenMP taskgroup).
type Group struct {
	rt      *Runtime
	pending int
	done    *kernel.Semaphore // posted when pending drains (root groups)
}

// TaskCtx is the handle passed to running tasks.
type TaskCtx struct {
	rt    *Runtime
	b     *blt.BLT
	group *Group
}

// Compute charges d of computation to the current carrier.
func (tc *TaskCtx) Compute(d sim.Duration) { tc.b.Carrier().Compute(d) }

// Exec runs fn coupled to the worker's original kernel context — the
// bracket for blocking system-calls inside a task. The error is non-nil
// when the worker's original KC is gone (fault injection): the function
// did not run and the task should treat the syscall as failed.
func (tc *TaskCtx) Exec(fn func(kc *kernel.Task)) error { return tc.b.Exec(fn) }

// Yield cooperatively yields the worker's core.
func (tc *TaskCtx) Yield() { tc.b.Yield() }

// NewGroup creates a task group for nested fork-join.
func (tc *TaskCtx) NewGroup() *Group { return &Group{rt: tc.rt} }

// Spawn adds a task to the group (OpenMP: #pragma omp task). tc is the
// spawning task's context (its carrier pays the submit cost).
func (g *Group) Spawn(tc *TaskCtx, fn Func) error {
	if g.rt.stopped {
		return ErrStopped
	}
	g.pending++
	g.rt.submit(tc.b.Carrier(), &task{fn: fn, group: g})
	return nil
}

// WaitCtx blocks the calling task until the group drains, yielding the
// core — so nested groups interleave instead of deadlocking (taskwait).
func (g *Group) WaitCtx(tc *TaskCtx) {
	for g.pending > 0 {
		// Help out: run a queued task inline if one is ready (the
		// classic work-first policy that makes nesting deadlock-free).
		if len(g.rt.queue) > 0 {
			t := g.rt.queue[0]
			g.rt.queue = g.rt.queue[1:]
			sub := &TaskCtx{rt: g.rt, b: tc.b, group: t.group}
			t.fn(sub)
			g.rt.finish(tc.b.Carrier(), t)
			continue
		}
		tc.Yield()
	}
}

// Run submits a root task from outside the pool (the "sequential"
// program entering a parallel region) and blocks the calling kernel
// task until the region completes.
func (rt *Runtime) Run(creator *kernel.Task, fn Func) error {
	if rt.stopped {
		return ErrStopped
	}
	done, err := creator.NewSemaphore(0)
	if err != nil {
		return err
	}
	g := &Group{rt: rt, done: done}
	g.pending++
	rt.submit(creator, &task{fn: fn, group: g})
	return done.Wait(creator)
}

// ParallelFor runs fn(sub, i) for i in [0, n) as `chunks` tasks inside
// the current task's group machinery, joining before it returns (OpenMP:
// #pragma omp parallel for). fn receives the context of the worker
// actually executing its chunk — charge computation through it, not
// through the spawning task's context.
func (tc *TaskCtx) ParallelFor(n, chunks int, fn func(sub *TaskCtx, i int)) {
	if chunks <= 0 {
		chunks = tc.rt.Workers()
	}
	if chunks > n {
		chunks = n
	}
	if chunks <= 1 {
		for i := 0; i < n; i++ {
			fn(tc, i)
		}
		return
	}
	g := tc.NewGroup()
	per := (n + chunks - 1) / chunks
	for c := 0; c < chunks; c++ {
		lo, hi := c*per, (c+1)*per
		if hi > n {
			hi = n
		}
		lo2, hi2 := lo, hi
		g.Spawn(tc, func(sub *TaskCtx) {
			for i := lo2; i < hi2; i++ {
				fn(sub, i)
			}
		})
	}
	g.WaitCtx(tc)
}
