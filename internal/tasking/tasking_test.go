package tasking

import (
	"fmt"
	"testing"

	"repro/internal/arch"
	"repro/internal/blt"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/sim"
)

func testCfg(workers int) Config {
	return Config{
		ProgCores:    []int{0, 1},
		SyscallCores: []int{2, 3},
		Idle:         blt.BusyWait,
		Workers:      workers,
	}
}

// withRuntime runs body with a live tasking runtime inside a root task.
func withRuntime(t *testing.T, workers int, body func(root *kernel.Task, rt *Runtime)) {
	t.Helper()
	e := sim.New()
	k := kernel.New(e, arch.Wallaby())
	root := k.NewTask("root", k.NewAddressSpace(), func(task *kernel.Task) int {
		rt, err := New(task, testCfg(workers))
		if err != nil {
			t.Error(err)
			return 1
		}
		body(task, rt)
		rt.Shutdown(task)
		return 0
	})
	k.Start(root, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
}

func TestRunSingleTask(t *testing.T) {
	withRuntime(t, 4, func(root *kernel.Task, rt *Runtime) {
		ran := false
		if err := rt.Run(root, func(tc *TaskCtx) {
			tc.Compute(time1us)
			ran = true
		}); err != nil {
			t.Fatal(err)
		}
		if !ran {
			t.Error("task did not run")
		}
		if rt.Executed() != 1 {
			t.Errorf("executed = %d", rt.Executed())
		}
	})
}

const time1us = sim.Microsecond

func TestParallelForCoversAllIndices(t *testing.T) {
	withRuntime(t, 4, func(root *kernel.Task, rt *Runtime) {
		const n = 100
		hit := make([]int, n)
		rt.Run(root, func(tc *TaskCtx) {
			tc.ParallelFor(n, 8, func(sub *TaskCtx, i int) {
				hit[i]++
			})
		})
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("index %d visited %d times", i, h)
			}
		}
	})
}

func TestNestedGroupsNoDeadlock(t *testing.T) {
	// Nested fork-join: each outer task spawns an inner group and waits
	// on it — the oversubscription scenario BOLT addresses.
	withRuntime(t, 3, func(root *kernel.Task, rt *Runtime) {
		leaves := 0
		rt.Run(root, func(tc *TaskCtx) {
			outer := tc.NewGroup()
			for i := 0; i < 5; i++ {
				outer.Spawn(tc, func(sub *TaskCtx) {
					inner := sub.NewGroup()
					for j := 0; j < 4; j++ {
						inner.Spawn(sub, func(leaf *TaskCtx) {
							leaf.Compute(500 * sim.Nanosecond)
							leaves++
						})
					}
					inner.WaitCtx(sub)
				})
			}
			outer.WaitCtx(tc)
		})
		if leaves != 20 {
			t.Errorf("leaves = %d, want 20", leaves)
		}
	})
}

func TestParallelForActuallyParallel(t *testing.T) {
	// With 2 program cores and pure compute chunks, the parallel-for
	// must take noticeably less wall-clock (virtual) time than serial.
	measure := func(chunks int) sim.Duration {
		var d sim.Duration
		withRuntime(t, 4, func(root *kernel.Task, rt *Runtime) {
			e := root.Kernel().Engine()
			start := e.Now()
			rt.Run(root, func(tc *TaskCtx) {
				tc.ParallelFor(8, chunks, func(sub *TaskCtx, i int) {
					sub.Compute(50 * sim.Microsecond)
				})
			})
			d = e.Now().Sub(start)
		})
		return d
	}
	serial := measure(1)
	parallel := measure(8)
	if float64(parallel)*1.5 > float64(serial) {
		t.Errorf("parallel (%v) not much faster than serial (%v)", parallel, serial)
	}
}

func TestTaskExecConsistency(t *testing.T) {
	// A task doing file I/O brackets it with Exec: the fd table must be
	// the worker KC's own, across many tasks on many workers.
	withRuntime(t, 4, func(root *kernel.Task, rt *Runtime) {
		errs := 0
		rt.Run(root, func(tc *TaskCtx) {
			g := tc.NewGroup()
			for i := 0; i < 8; i++ {
				i := i
				g.Spawn(tc, func(sub *TaskCtx) {
					sub.Exec(func(kc *kernel.Task) {
						fd, err := kc.Open(fmt.Sprintf("/t%d", i), fs.OCreate|fs.OWrOnly)
						if err != nil {
							errs++
							return
						}
						if _, err := kc.Write(fd, []byte("x"), false); err != nil {
							errs++
						}
						if err := kc.Close(fd); err != nil {
							errs++
						}
					})
				})
			}
			g.WaitCtx(tc)
		})
		if errs != 0 {
			t.Errorf("%d I/O errors under task parallelism", errs)
		}
	})
}

func TestOversubscribedWorkers(t *testing.T) {
	// 10 workers on 2 cores: creation must succeed and all tasks run.
	withRuntime(t, 10, func(root *kernel.Task, rt *Runtime) {
		count := 0
		rt.Run(root, func(tc *TaskCtx) {
			g := tc.NewGroup()
			for i := 0; i < 30; i++ {
				g.Spawn(tc, func(sub *TaskCtx) {
					sub.Compute(sim.Microsecond)
					count++
				})
			}
			g.WaitCtx(tc)
		})
		if count != 30 {
			t.Errorf("count = %d", count)
		}
		if rt.Workers() != 10 {
			t.Errorf("workers = %d", rt.Workers())
		}
	})
}

func TestSubmitAfterShutdown(t *testing.T) {
	e := sim.New()
	k := kernel.New(e, arch.Wallaby())
	root := k.NewTask("root", k.NewAddressSpace(), func(task *kernel.Task) int {
		rt, err := New(task, testCfg(2))
		if err != nil {
			t.Error(err)
			return 1
		}
		rt.Shutdown(task)
		if err := rt.Run(task, func(tc *TaskCtx) {}); err != ErrStopped {
			t.Errorf("err = %v, want ErrStopped", err)
		}
		return 0
	})
	k.Start(root, 0)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
