package blt

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/probe"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/uctx"
)

// simDuration aliases sim.Duration for intra-package signatures.
type simDuration = sim.Duration

// Scheduler is one scheduling BLT: a kernel thread pinned to a program
// core that runs decoupled UCs from its ready queue (the paper's Fig. 6:
// "BLTs are created to run user program and to act as a scheduler").
type Scheduler struct {
	pool *Pool
	core int
	task *kernel.Task

	// q is the ready queue of decoupled UCs: a ring buffer, because the
	// slice front-copy dequeue it replaces cost O(queue) per dispatch —
	// quadratic over a deep backlog of runnable UCs.
	q    ring.Q[*BLT]
	slot idleSlot

	// currentTLS tracks the TLS value the scheduler's KC register holds
	// to skip redundant loads when the same UC runs back-to-back.
	currentTLS uint64

	// running is the BLT whose UC the scheduler is currently stepping
	// (nil between dispatches). The consistency auditor uses it to
	// attribute system-calls made by decoupled UCs.
	running *BLT

	index int  // position in the pool's scheduler list
	dead  bool // killed by fault injection (sched_kill)

	// stealBuf is the preallocated scratch a ULTPolicy's StealOrder
	// fills with victim indices (nil without a policy).
	stealBuf []int

	// Stats.
	dispatches uint64
	steals     uint64
}

// Dead reports whether the scheduler was killed by fault injection.
func (s *Scheduler) Dead() bool { return s.dead }

// Steals reports how many UCs this scheduler stole from peers.
func (s *Scheduler) Steals() uint64 { return s.steals }

// Running returns the BLT currently executing on this scheduler, if any.
func (s *Scheduler) Running() *BLT { return s.running }

// Core returns the scheduler's pinned core id.
func (s *Scheduler) Core() int { return s.core }

// Task returns the scheduler's kernel task.
func (s *Scheduler) Task() *kernel.Task { return s.task }

// QueueLen reports the number of ready UCs.
func (s *Scheduler) QueueLen() int { return s.q.Len() }

// ReadyAt returns the i'th ready UC (0 = FIFO head) without removing it.
// Scheduler policies inspect the queue through it from PickReady.
func (s *Scheduler) ReadyAt(i int) *BLT { return s.q.At(i) }

// Index returns the scheduler's position in the pool's scheduler list.
func (s *Scheduler) Index() int { return s.index }

// Pool returns the owning pool.
func (s *Scheduler) Pool() *Pool { return s.pool }

// Dispatches reports how many UC switch-ins the scheduler performed.
func (s *Scheduler) Dispatches() uint64 { return s.dispatches }

// SpunIdle reports CPU time burned busy-waiting for work.
func (s *Scheduler) SpunIdle() sim.Duration { return s.slot.Spun() }

// enqueue adds a decoupled (or yielding) UC to the ready queue; the
// caller pays the queue cost and the wake kick. Under work stealing
// every scheduler is kicked, since any of them may claim the UC.
// Enqueues aimed at a dead scheduler are redirected to the next live
// one, which becomes the BLT's new home.
func (s *Scheduler) enqueue(b *BLT, from *kernel.Task) {
	if s.dead {
		live := s.pool.nextLiveSched(s.index)
		if live == nil {
			// Unreachable: the last live scheduler is never killed.
			panic(fmt.Sprintf("blt: enqueue(%s) with every scheduler dead", b))
		}
		b.home = live
		live.enqueue(b, from)
		return
	}
	from.Charge(s.pool.kern.Machine().Costs.RunQueueOp)
	s.q.Push(b)
	if s.pool.cfg.WorkStealing {
		for _, p := range s.pool.scheds {
			p.slot.kick(from)
		}
		return
	}
	s.slot.kick(from)
}

// dequeue pops the next ready UC — the FIFO head, or the policy's
// PickReady choice. Charging the queue-lock cost may let a stealing peer
// drain the queue first, so the emptiness is re-checked after the
// charge; nil means "lost the race".
func (s *Scheduler) dequeue(t *kernel.Task) *BLT {
	t.Charge(s.pool.kern.Machine().Costs.RunQueueOp)
	if pol := s.pool.cfg.Policy; pol != nil && s.q.Len() > 0 {
		if i := pol.PickReady(s); i > 0 && i < s.q.Len() {
			return s.q.RemoveAt(i)
		}
	}
	return s.q.Pop()
}

// loop is the scheduler's kernel-task body.
func (s *Scheduler) loop(t *kernel.Task) int {
	costs := s.pool.kern.Machine().Costs
	for {
		b := s.acquire(t)
		if b == nil {
			if s.dead {
				return KilledExitStatus
			}
			return 0
		}
		s.runUC(t, b, costs.UserCtxSwap)
	}
}

// acquire obtains the next runnable BLT: from the local queue, by
// stealing from a peer scheduler (when Config.WorkStealing is on), or
// after idling per the pool policy. Returns nil once the pool stops.
//
// The sched_kill fault site lives at the top of the loop — between UC
// dispatches, never while a UC context is loaded — so a kill can strand
// queued UCs (drained by die) but never a half-switched context. The
// last live scheduler is immune: with every program core dead no UC
// could ever run again, which models an operator who would restart the
// service rather than a recoverable fault.
func (s *Scheduler) acquire(t *kernel.Task) *BLT {
	k := s.pool.kern
	for {
		if k.FaultShouldDie(t, "sched_kill") && s.pool.liveScheds() > 1 {
			s.die(t)
			return nil
		}
		if s.q.Len() > 0 {
			if b := s.dequeue(t); b != nil {
				return b
			}
			continue
		}
		if s.pool.stopped {
			return nil
		}
		if s.pool.cfg.WorkStealing {
			if b := s.steal(t); b != nil {
				return b
			}
		}
		if pol := s.pool.cfg.Policy; pol != nil {
			pol.OnIdle(s)
		}
		s.slot.wait(t, func() bool { return s.q.Len() > 0 || s.pool.stopped || s.stealable() })
	}
}

// die marks the scheduler dead and drains its ready queue into the next
// live scheduler, which adopts the stranded UCs as their new home. The
// pool keeps running on the remaining program cores.
func (s *Scheduler) die(t *kernel.Task) {
	s.dead = true
	live := s.pool.nextLiveSched(s.index)
	s.pool.emit(t, "fault", "sched_kill: sched%d dies, re-homing %d UCs to sched%d",
		s.index, s.q.Len(), live.index)
	s.pool.trace("sched%d: killed; re-homing %d UCs to sched%d", s.index, s.q.Len(), live.index)
	for s.q.Len() > 0 {
		b := s.dequeue(t)
		if b == nil {
			continue
		}
		b.home = live
		live.enqueue(b, t)
	}
}

// stealable reports whether some peer has surplus work.
func (s *Scheduler) stealable() bool {
	if !s.pool.cfg.WorkStealing {
		return false
	}
	for _, p := range s.pool.scheds {
		if p != s && p.q.Len() > 0 {
			return true
		}
	}
	return false
}

// steal takes the newest UC from the first non-empty peer queue,
// scanning deterministically from the next index (interprocess work
// stealing over the shared address space: the queues are plain shared
// data, so a steal is two queue operations plus the peer-lock atomic).
// A ULTPolicy may reorder the victim scan via StealOrder.
func (s *Scheduler) steal(t *kernel.Task) *BLT {
	n := len(s.pool.scheds)
	if pol := s.pool.cfg.Policy; pol != nil {
		if order := pol.StealOrder(s, s.stealBuf[:0]); order != nil {
			s.stealBuf = order // keep grown capacity for the next scan
			for _, vi := range order {
				if vi < 0 || vi >= n || vi == s.index {
					continue
				}
				if b := s.stealFrom(t, s.pool.scheds[vi]); b != nil {
					return b
				}
			}
			return nil
		}
	}
	for i := 1; i < n; i++ {
		if b := s.stealFrom(t, s.pool.scheds[(s.index+i)%n]); b != nil {
			return b
		}
	}
	return nil
}

// stealFrom attempts one steal against victim p: charge the peer-lock
// atomic plus two queue operations, re-check (the victim or another
// thief may win the race meanwhile), and take the newest UC.
func (s *Scheduler) stealFrom(t *kernel.Task, p *Scheduler) *BLT {
	if p.q.Len() == 0 {
		return nil
	}
	costs := s.pool.kern.Machine().Costs
	t.Charge(costs.AtomicOp + 2*costs.RunQueueOp)
	if p.q.Len() == 0 {
		return nil // the victim (or another thief) won the race
	}
	b := p.q.PopTail()
	s.steals++
	ps := s.pool.kern.Probes()
	if ps.Attached(probe.PSchedSteal) {
		c := ps.Begin(probe.PSchedSteal, s.pool.kern.Engine().Now())
		c.Task = t
		c.Name = b.name
		c.Val = int64(p.index)
		ps.Fire(c)
	}
	return b
}

// runUC switches the UC in (swap + TLS load under ULP semantics), steps
// it, and handles its yield.
func (s *Scheduler) runUC(t *kernel.Task, b *BLT, swapCost sim.Duration) {
	costs := s.pool.kern.Machine().Costs
	t.Charge(swapCost)
	s.loadTLS(t, b.tlsBase)
	if s.pool.cfg.SwitchSigmask {
		// ucontext-style switching: the signal mask follows the UC.
		t.Charge(costs.SigmaskSwitch)
		t.SetSigmaskRaw(b.sigMask)
	}
	// Sync point 2 (Table I Seq.8/9): the UC was enqueued before its
	// context finished saving on the original KC; tight-spin until the
	// save is published (the window is a few instructions).
	for !b.ucSaved {
		t.Charge(costs.AtomicOp)
	}
	if b.uc.Running() {
		panic(fmt.Sprintf("blt: %s marked saved but still running", b))
	}
	if d := s.pool.kern.FaultDelay(t, "sched_delay"); d > 0 {
		// Injected scheduler latency: the UC sits ready while its
		// scheduler dawdles — widening the Table I race windows.
		t.Charge(d)
	}
	s.dispatches++
	ps := s.pool.kern.Probes()
	if ps.Attached(probe.PSchedULT) {
		c := ps.Begin(probe.PSchedULT, s.pool.kern.Engine().Now())
		c.Task = t
		c.Name = b.name
		ps.Fire(c)
	}
	s.pool.trace("sched%d: swap_ctx(.., %s)", s.index, b.name) // Seq.9 after decouple
	s.running = b
	ev := b.uc.Step(t)
	s.running = nil
	if ev.Kind == uctx.EvExit {
		if b.orphaned {
			// The UC could not couple for its terminal run because its
			// original KC died; reap it here instead of hanging the pool.
			// Its exit status stays visible via ExitStatus/Orphaned.
			b.done = true
			b.host.residents--
			s.pool.trace("sched%d: reap orphan %s (status=%d)", s.index, b.name, b.exitStatus)
			return
		}
		panic(fmt.Sprintf("blt: %s exited while decoupled; BLTs must terminate as KLTs", b))
	}
	switch tg := ev.Tag.(yieldTag); tg {
	case tagYield:
		// Cooperative ULT yield: requeue at the tail. If the queue was
		// otherwise empty the same UC runs again immediately (the
		// sched_yield-alone analogue at user level).
		t.Charge(costs.RunQueueOp)
		if pol := s.pool.cfg.Policy; pol != nil {
			pol.OnYield(s, b)
		}
		s.q.Push(b)
	case tagCoupling:
		// Sync point 1 of Table I: publish that the UC context is
		// saved so the original KC may load it. The scheduler then
		// resumes its own context (swap + its own TLS), accounting for
		// the paper's "two times of loading TLS register" per
		// couple/decouple cycle.
		b.ucSaved = true
		s.pool.trace("sched%d: %s saved (sync point 1)", s.index, b.name) // Seq.3
		t.Charge(costs.UserCtxSwap)
		s.loadTLS(t, s.slot.word) // the scheduler thread's own descriptor
		if s.pool.cfg.SwitchSigmask {
			t.Charge(costs.SigmaskSwitch)
			t.SetSigmaskRaw(0)
		}
	case tagDecouple:
		panic(fmt.Sprintf("blt: decouple tag from already-decoupled %s", b))
	default:
		panic(fmt.Sprintf("blt: unknown tag %v from %s", tg, b))
	}
}

// loadTLS loads the KC's TLS register if ULP semantics are enabled and
// the value actually changes.
func (s *Scheduler) loadTLS(t *kernel.Task, base uint64) {
	if !s.pool.cfg.SwitchTLS || base == s.currentTLS {
		return
	}
	t.LoadTLS(base)
	s.currentTLS = base
}
