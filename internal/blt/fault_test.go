package blt

import (
	"errors"
	"testing"

	"repro/internal/arch"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// runPoolFaults is runPool with a fault plane installed before the pool
// (and its scheduler KCs) exists. It returns the plane for stats checks.
func runPoolFaults(t *testing.T, cfg Config, seed uint64, specs []fault.Spec,
	body func(root *kernel.Task, p *Pool)) *fault.Plane {
	t.Helper()
	e := sim.New()
	k := kernel.New(e, arch.Wallaby())
	plane := fault.NewPlane(seed, specs)
	k.SetFaultPlane(plane)
	root := k.NewTask("root", k.NewAddressSpace(), func(task *kernel.Task) int {
		pool, err := NewPool(task, cfg)
		if err != nil {
			t.Errorf("NewPool: %v", err)
			return 1
		}
		body(task, pool)
		pool.Shutdown(task)
		return 0
	})
	k.Start(root, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	return plane
}

// TestKCKillOrphansULP drives the tentpole recovery path end to end: the
// original KC is killed while its UC is decoupled, Couple() surfaces
// ErrHostDead instead of hanging or panicking, Exec refuses to run the
// function (ErrNotCoupled wrapping ErrHostDead), the UC finishes
// decoupled and is reaped by its scheduler as an orphan, and wait(2) on
// the dead KC reports the kill status.
func TestKCKillOrphansULP(t *testing.T) {
	for _, idle := range []IdlePolicy{BusyWait, Blocking} {
		t.Run(idle.String(), func(t *testing.T) {
			var coupleErr, execErr error
			execRan := false
			var victim *BLT
			runPoolFaults(t, testConfig(idle), 1,
				[]fault.Spec{{Site: fault.SiteKCKill, Nth: 3, TaskPrefix: "kc.victim"}},
				func(root *kernel.Task, p *Pool) {
					b, err := p.Spawn(func(b *BLT) int {
						b.Decouple()
						coupleErr = b.Couple()
						execErr = b.Exec(func(kc *kernel.Task) { execRan = true })
						return 7
					}, SpawnOpts{Name: "victim", Scheduler: 0})
					if err != nil {
						t.Fatal(err)
					}
					victim = b
					reap(t, root, 1)
				})
			if !errors.Is(coupleErr, ErrHostDead) {
				t.Errorf("Couple() after KC death = %v, want ErrHostDead", coupleErr)
			}
			if !errors.Is(execErr, ErrNotCoupled) || !errors.Is(execErr, ErrHostDead) {
				t.Errorf("Exec() after KC death = %v, want ErrNotCoupled wrapping ErrHostDead", execErr)
			}
			if execRan {
				t.Error("Exec ran its function on a dead host (consistency violation)")
			}
			if !victim.Done() || !victim.Orphaned() {
				t.Errorf("victim done=%v orphaned=%v, want true/true", victim.Done(), victim.Orphaned())
			}
			if victim.ExitStatus() != 7 {
				t.Errorf("orphan exit status = %d, want 7", victim.ExitStatus())
			}
		})
	}
}

// TestKCKillStatusVisibleViaWait asserts the killed KC's task is reaped
// by wait(2) with KilledExitStatus, like a process killed by SIGKILL.
func TestKCKillStatusVisibleViaWait(t *testing.T) {
	gotStatus := -1
	runPoolFaults(t, testConfig(Blocking), 2,
		[]fault.Spec{{Site: fault.SiteKCKill, Nth: 3, TaskPrefix: "kc.victim"}},
		func(root *kernel.Task, p *Pool) {
			if _, err := p.Spawn(func(b *BLT) int {
				b.Decouple()
				b.Couple() // fails: host dead
				return 0
			}, SpawnOpts{Name: "victim", Scheduler: 0}); err != nil {
				t.Fatal(err)
			}
			_, status, err := root.Wait()
			if err != nil {
				t.Fatalf("wait: %v", err)
			}
			gotStatus = status
		})
	if gotStatus != KilledExitStatus {
		t.Errorf("killed KC wait status = %d, want %d", gotStatus, KilledExitStatus)
	}
}

// TestSchedKillRehomesQueue kills scheduler 0 once a UC is queued on it;
// the queue must drain to scheduler 1 and every BLT still complete.
func TestSchedKillRehomesQueue(t *testing.T) {
	for _, idle := range []IdlePolicy{BusyWait, Blocking} {
		t.Run(idle.String(), func(t *testing.T) {
			const n = 3
			var blts [n]*BLT
			var pool *Pool
			runPoolFaults(t, testConfig(idle), 3,
				[]fault.Spec{{Site: fault.SiteSchedKill, Nth: 2, TaskPrefix: "sched.c0"}},
				func(root *kernel.Task, p *Pool) {
					pool = p
					for i := 0; i < n; i++ {
						b, err := p.Spawn(func(b *BLT) int {
							b.Decouple()
							for j := 0; j < 4; j++ {
								b.Yield()
							}
							b.Couple()
							return 11
						}, SpawnOpts{Name: "w", Scheduler: 0})
						if err != nil {
							t.Fatal(err)
						}
						blts[i] = b
					}
					reap(t, root, n)
				})
			if !pool.Schedulers()[0].Dead() {
				t.Fatal("scheduler 0 not dead; kill never fired")
			}
			for i, b := range blts {
				if !b.Done() || b.ExitStatus() != 11 {
					t.Errorf("blt %d: done=%v status=%d, want true/11", i, b.Done(), b.ExitStatus())
				}
				if b.Orphaned() {
					t.Errorf("blt %d orphaned; sched death must not orphan UCs", i)
				}
			}
			if d := pool.Schedulers()[1].Dispatches(); d == 0 {
				t.Error("scheduler 1 never dispatched; re-homing failed")
			}
		})
	}
}

// TestLastSchedulerImmune: with one program core, sched_kill must be
// suppressed — killing the last scheduler would strand every UC.
func TestLastSchedulerImmune(t *testing.T) {
	cfg := testConfig(Blocking)
	cfg.ProgCores = []int{0}
	runPoolFaults(t, cfg, 4,
		[]fault.Spec{{Site: fault.SiteSchedKill, Every: 1}},
		func(root *kernel.Task, p *Pool) {
			b, err := p.Spawn(func(b *BLT) int {
				b.Decouple()
				b.Yield()
				b.Couple()
				return 5
			}, SpawnOpts{Name: "only", Scheduler: 0})
			if err != nil {
				t.Fatal(err)
			}
			reap(t, root, 1)
			if !b.Done() || b.ExitStatus() != 5 {
				t.Errorf("done=%v status=%d, want true/5", b.Done(), b.ExitStatus())
			}
		})
}

// TestLostWakeupRecovery drops a fraction of the futex wakes aimed at
// the BLOCKING idle slots; the backoff timers must recover every one —
// couple/decouple churn completes, only later in virtual time.
func TestLostWakeupRecovery(t *testing.T) {
	plane := runPoolFaults(t, testConfig(Blocking), 5,
		[]fault.Spec{
			{Site: fault.SiteFutexLostWake, Prob: 0.5, TaskPrefix: "kc."},
			{Site: fault.SiteFutexLostWake, Prob: 0.5, TaskPrefix: "sched."},
		},
		func(root *kernel.Task, p *Pool) {
			const n, cycles = 4, 8
			for i := 0; i < n; i++ {
				if _, err := p.Spawn(func(b *BLT) int {
					for c := 0; c < cycles; c++ {
						b.Decouple()
						b.Yield()
						b.Couple()
					}
					return 0
				}, SpawnOpts{Name: "churn", Scheduler: -1}); err != nil {
					t.Fatal(err)
				}
			}
			reap(t, root, n)
		})
	if plane.Injections() == 0 {
		t.Error("no wakes were dropped; the test exercised nothing")
	}
}

// TestSpuriousAndEINTRTolerated: spurious futex wakeups and injected
// EINTR on futex_wait must be absorbed by the idle slots without panics
// or lost work.
func TestSpuriousAndEINTRTolerated(t *testing.T) {
	plane := runPoolFaults(t, testConfig(Blocking), 6,
		[]fault.Spec{
			{Site: fault.SiteFutexSpurious, Prob: 0.3},
			{Site: fault.SiteFutexWait, Prob: 0.2, Err: "eintr"},
		},
		func(root *kernel.Task, p *Pool) {
			const n = 3
			for i := 0; i < n; i++ {
				if _, err := p.Spawn(func(b *BLT) int {
					for c := 0; c < 5; c++ {
						b.Decouple()
						b.Couple()
					}
					return 0
				}, SpawnOpts{Name: "jitter", Scheduler: -1}); err != nil {
					t.Fatal(err)
				}
			}
			reap(t, root, n)
		})
	if plane.Injections() == 0 {
		t.Error("nothing injected; the test exercised nothing")
	}
}

// TestFaultDeterminism: the same (seed, specs) must produce the same end
// time and stats; a different seed (with probabilistic specs) a
// different schedule.
func TestFaultDeterminism(t *testing.T) {
	run := func(seed uint64) (sim.Time, uint64) {
		e := sim.New()
		k := kernel.New(e, arch.Wallaby())
		plane := fault.NewPlane(seed, []fault.Spec{
			{Site: fault.SiteFutexLostWake, Prob: 0.4},
			{Site: fault.SiteSchedDelay, Prob: 0.3, DelayUS: 20},
		})
		k.SetFaultPlane(plane)
		root := k.NewTask("root", k.NewAddressSpace(), func(task *kernel.Task) int {
			pool, err := NewPool(task, testConfig(Blocking))
			if err != nil {
				t.Errorf("NewPool: %v", err)
				return 1
			}
			for i := 0; i < 3; i++ {
				if _, err := pool.Spawn(func(b *BLT) int {
					for c := 0; c < 6; c++ {
						b.Decouple()
						b.Couple()
					}
					return 0
				}, SpawnOpts{Name: "det", Scheduler: -1}); err != nil {
					t.Fatal(err)
				}
			}
			reap(t, task, 3)
			pool.Shutdown(task)
			return 0
		})
		k.Start(root, 0)
		if err := e.Run(); err != nil {
			t.Fatalf("engine: %v", err)
		}
		return e.Now(), plane.Injections()
	}
	t1, i1 := run(99)
	t2, i2 := run(99)
	if t1 != t2 || i1 != i2 {
		t.Errorf("same seed diverged: end %v/%v, injections %d/%d", t1, t2, i1, i2)
	}
	t3, _ := run(100)
	if t3 == t1 {
		t.Log("note: different seed produced the same end time (possible but unlikely)")
	}
}
