// Package blt implements Bi-Level Threads — the paper's core
// contribution. A BLT is created as a kernel-level thread (a UC coupled
// with its original KC) and can become a user-level thread at runtime by
// decoupling its UC from the KC, and a KLT again by coupling back:
//
//	decouple(): UC detaches from the original KC and is enqueued on a
//	    scheduler; the KC idles (busy-waiting or blocked on a futex) in
//	    its trampoline context.
//	couple(): the UC migrates back to its original KC, so system-calls
//	    between couple() and decouple() execute on the KC that owns the
//	    BLT's kernel state — preserving system-call consistency.
//
// The implementation follows the paper's Table I protocol, including the
// trampoline context (§V-A) that avoids the Fig. 4 busy-stack hazard and
// the two synchronization points of the couple/decouple handshake. Both
// idle policies of §VI-C (BUSYWAIT and BLOCKING) are provided, and M:N
// operation (§VII: several UCs sharing one original KC) is supported via
// KCHost.
package blt

import (
	"errors"
	"fmt"

	"repro/internal/kernel"
	"repro/internal/probe"
	"repro/internal/uctx"
)

// Errors reported by the BLT runtime.
var (
	ErrPoolStopped = errors.New("blt: pool is stopped")
	ErrNotCoupled  = errors.New("blt: operation requires coupled state")
	ErrHostDead    = errors.New("blt: original KC has already terminated")
)

// yieldTag is the protocol tag a UC attaches when yielding to its
// carrier.
type yieldTag int

const (
	// tagYield: cooperative ULT yield — requeue me and run another UC.
	tagYield yieldTag = iota
	// tagCoupling: I have requested coupling with my original KC; do
	// not requeue me (Table I, Seq.3: swap_ctx(UC0, UCi)).
	tagCoupling
	// tagDecouple: I have enqueued myself on a scheduler; switch to the
	// trampoline context (Table I, Seq.7: swap_ctx(UC0, TC0)).
	tagDecouple
)

func (g yieldTag) String() string {
	switch g {
	case tagYield:
		return "yield"
	case tagCoupling:
		return "coupling"
	case tagDecouple:
		return "decouple"
	}
	return "?"
}

// Body is the user function a BLT executes. Its return value becomes the
// BLT's exit status.
type Body func(b *BLT) int

// BLT is one bi-level thread.
type BLT struct {
	pool *Pool
	name string

	uc   *uctx.Context
	host *KCHost // owns the original KC
	home *Scheduler

	tlsBase   uint64
	sigMask   uint64 // the UC's signal mask (ucontext-style switching)
	stackAddr uint64 // UC stack reservation in the shared space
	stackSize uint64
	body      Body

	// coupled is true while the UC runs (or is about to run) as a KLT
	// on its original KC.
	coupled bool

	// ucSaved is the first synchronization point of Table I (between
	// Seq.3 on the scheduler and Seq.4 on the original KC): the
	// original KC must not load UC0 before the scheduler has saved it.
	ucSaved bool

	// coupleErr, when set by the host's death path, is delivered to the
	// BLT the next time it resumes inside Couple: the coupling request
	// was bounced back to the home scheduler because the original KC is
	// gone.
	coupleErr error

	done       bool
	orphaned   bool // exited decoupled because the original KC died
	exitStatus int

	// bracket is the open couple→exec→decouple trace span on the
	// original KC's core (0 = none).
	bracket uint64

	// Stats.
	couples, decouples, yields uint64
}

// Name returns the BLT's diagnostic name.
func (b *BLT) Name() string { return b.name }

// KC returns the BLT's original kernel context.
func (b *BLT) KC() *kernel.Task { return b.host.task }

// Host returns the KC host (shared in M:N mode).
func (b *BLT) Host() *KCHost { return b.host }

// Coupled reports whether the BLT currently runs as a KLT.
func (b *BLT) Coupled() bool { return b.coupled }

// Done reports whether the BLT has terminated.
func (b *BLT) Done() bool { return b.done }

// ExitStatus returns the body's return value (valid once Done).
func (b *BLT) ExitStatus() int { return b.exitStatus }

// Orphaned reports whether the BLT terminated decoupled because its
// original KC died under fault injection. An orphaned BLT's status is
// visible here but not through wait(2) on its (dead) KC.
func (b *BLT) Orphaned() bool { return b.orphaned }

// TLSBase returns the address of the BLT's thread descriptor (the TLS
// register value its carrier holds while running it).
func (b *BLT) TLSBase() uint64 { return b.tlsBase }

// Stack returns the UC stack reservation (address, size) in the shared
// address space.
func (b *BLT) Stack() (addr, size uint64) { return b.stackAddr, b.stackSize }

// SigMask returns the UC's signal mask (used under SwitchSigmask).
func (b *BLT) SigMask() uint64 { return b.sigMask }

// SetSigMask records the UC's signal mask; under ucontext-style
// switching the mask follows the UC across carriers.
func (b *BLT) SetSigMask(mask uint64) { b.sigMask = mask }

// Stats reports how many couple/decouple/yield transitions the BLT made.
func (b *BLT) Stats() (couples, decouples, yields uint64) {
	return b.couples, b.decouples, b.yields
}

// Carrier returns the kernel task currently executing the BLT. Only
// valid from within the BLT's body.
func (b *BLT) Carrier() *kernel.Task { return b.uc.Carrier() }

// String implements fmt.Stringer.
func (b *BLT) String() string { return "blt:" + b.name }

// ucBody wraps the user body with the BLT lifecycle: optionally decouple
// right away (the Fig. 6 scenario), and always terminate as a KLT
// coupled with the original KC (paper rule 7). When the original KC died
// under fault injection, coupling is impossible; the UC then exits
// decoupled and the scheduler reaps it as an orphan.
func (b *BLT) ucBody(c *uctx.Context) {
	if b.pool.cfg.StartDecoupled {
		b.Decouple()
	}
	b.exitStatus = b.body(b)
	if !b.coupled {
		if err := b.Couple(); err != nil {
			b.orphaned = true
		}
	}
}

// Decouple detaches the calling BLT's UC from its original KC: the UC is
// enqueued on its home scheduler and the KC goes idle in its trampoline
// context. The call returns once a scheduler resumes the UC — from then
// on the BLT is a ULT. Calling Decouple while already decoupled is a
// no-op, mirroring the library.
func (b *BLT) Decouple() {
	if !b.coupled {
		return
	}
	if b.uc.Carrier() != b.host.task {
		panic(fmt.Sprintf("blt: %s coupled but carried by %s, not its original KC %s",
			b, b.uc.Carrier(), b.host.task))
	}
	b.decouples++
	b.coupled = false
	b.ucSaved = false
	p := b.pool
	carrier := b.uc.Carrier()
	// The coupled bracket ends here: the KC is about to go idle.
	if b.bracket != 0 {
		p.endSpan(carrier, b, b.bracket)
		b.bracket = 0
	}
	fr := p.opEnter(carrier, b, "decouple", probe.PDecouple)
	b.pool.trace("decouple: enqueue(%s, sched%d)", b.name, b.home.index) // Table I Seq.6
	// Table I Seq.6: enqueue(UC0, KC1) — hand the UC to the scheduler.
	// The scheduler may observe the queue entry before the UC context
	// is saved; the second synchronization point (Seq.8/9) makes it
	// wait for ucSaved, which the original KC publishes once the
	// swap below completes.
	b.home.enqueue(b, b.uc.Carrier())
	// Table I Seq.7: swap_ctx(UC0, TC0).
	b.pool.trace("decouple: swap_ctx(%s, TC)", b.name)
	b.uc.Yield(tagDecouple)
	// Resumed here by a scheduler KC: the BLT is now a ULT.
	p.opExit(b.uc.Carrier(), b, fr)
}

// Couple attaches the calling BLT's UC back to its original KC. On
// return, the code runs as a KLT on the original KC, so system-calls hit
// the right kernel state. Calling Couple while already coupled is a
// no-op.
//
// When the original KC has terminated (possible only under fault
// injection), Couple returns ErrHostDead and the BLT stays decoupled —
// the kernel context that owned its PID and FD table no longer exists,
// so there is nothing to couple to. Transient wakeup loss on the KC's
// idle futex is survived transparently: the host's idle slot re-arms
// with a bounded exponential-backoff timeout whenever lost wakes are a
// possibility, so a dropped FUTEX_WAKE delays the couple but never hangs
// it.
func (b *BLT) Couple() error {
	if b.coupled {
		return nil
	}
	if b.host.dead && !b.host.canRespawn() {
		return ErrHostDead
	}
	carrier := b.uc.Carrier() // the scheduler KC (Table I: KC1)
	if carrier == b.host.task {
		panic(fmt.Sprintf("blt: decoupled %s carried by its own original KC", b))
	}
	b.couples++
	b.coupled = true
	b.ucSaved = false
	p := b.pool
	fr := p.opEnter(carrier, b, "couple", probe.PCouple)
	// Table I Seq.1: enqueue(UC0, KC0) — ask the original KC to run us.
	// Seq.2: unblock(KC0).
	b.pool.trace("couple: enqueue(%s, KC) + unblock(KC)", b.name)
	b.host.enqueueCoupled(b, carrier)
	// Seq.3: swap_ctx(UC0, UCi) — yield to the scheduler, which marks
	// the context saved (sync point 1) and runs another UC.
	b.pool.trace("couple: swap_ctx(%s, next-UC)", b.name)
	b.uc.Yield(tagCoupling)
	// Resumed here either by the original KC (Seq.4: swap_ctx(TC0, UC0))
	// or — if the KC died with our request still queued — by the home
	// scheduler, with coupleErr set.
	p.opExit(b.uc.Carrier(), b, fr)
	if b.coupleErr != nil {
		err := b.coupleErr
		b.coupleErr = nil
		return err
	}
	if got := b.uc.Carrier(); got != b.host.task {
		panic(fmt.Sprintf("blt: %s coupled onto %s, want original KC %s", b, got, b.host.task))
	}
	return nil
}

// Yield is the ULT cooperative yield: requeue this UC on its home
// scheduler and run the next ready UC. While coupled it degenerates to
// the kernel's sched_yield, as a KLT's yield would.
func (b *BLT) Yield() {
	b.yields++
	if b.coupled {
		b.uc.Carrier().SchedYield()
		return
	}
	b.uc.Yield(tagYield)
}

// Exec runs fn coupled to the original KC: the couple()/decouple()
// bracket the paper recommends around any blocking system-call or series
// of system-calls. If the BLT is already coupled, fn simply runs.
//
// When coupling is impossible because the original KC died, fn does NOT
// run — running it on a scheduler KC would violate system-call
// consistency — and Exec returns ErrNotCoupled (wrapping ErrHostDead).
func (b *BLT) Exec(fn func(kc *kernel.Task)) error {
	wasCoupled := b.coupled
	if !wasCoupled {
		if err := b.Couple(); err != nil {
			return fmt.Errorf("%w: %w", ErrNotCoupled, err)
		}
	}
	fn(b.uc.Carrier())
	if !wasCoupled {
		b.Decouple()
	}
	return nil
}
