package blt

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/kernel"
	"repro/internal/sim"
)

func stealConfig(idle IdlePolicy) Config {
	cfg := testConfig(idle)
	cfg.WorkStealing = true
	return cfg
}

func TestWorkStealingBalancesLoad(t *testing.T) {
	// All BLTs homed on scheduler 0; with stealing on, scheduler 1 must
	// pick up part of the work.
	for _, idle := range []IdlePolicy{BusyWait, Blocking} {
		idle := idle
		t.Run(idle.String(), func(t *testing.T) {
			runPool(t, arch.Wallaby(), stealConfig(idle), func(root *kernel.Task, p *Pool) {
				const n = 6
				for i := 0; i < n; i++ {
					p.Spawn(func(b *BLT) int {
						b.Decouple()
						for j := 0; j < 4; j++ {
							b.Carrier().Compute(10 * sim.Microsecond)
							b.Yield()
						}
						b.Couple()
						return 0
					}, SpawnOpts{Name: "w", Scheduler: 0}) // all homed on sched 0
				}
				reap(t, root, n)
				s0, s1 := p.Schedulers()[0], p.Schedulers()[1]
				if s1.Dispatches() == 0 {
					t.Error("scheduler 1 never ran stolen work")
				}
				if s1.Steals() == 0 {
					t.Error("scheduler 1 recorded no steals")
				}
				if s0.Dispatches() == 0 {
					t.Error("scheduler 0 idle despite being home")
				}
			})
		})
	}
}

func TestWorkStealingImprovesMakespan(t *testing.T) {
	measure := func(stealing bool) sim.Duration {
		var makespan sim.Duration
		cfg := testConfig(BusyWait)
		cfg.WorkStealing = stealing
		runPool(t, arch.Wallaby(), cfg, func(root *kernel.Task, p *Pool) {
			e := p.Kernel().Engine()
			start := e.Now()
			const n = 8
			for i := 0; i < n; i++ {
				p.Spawn(func(b *BLT) int {
					b.Decouple()
					for j := 0; j < 4; j++ {
						b.Carrier().Compute(20 * sim.Microsecond)
						b.Yield()
					}
					b.Couple()
					return 0
				}, SpawnOpts{Name: "w", Scheduler: 0}) // imbalanced placement
			}
			reap(t, root, n)
			makespan = e.Now().Sub(start)
		})
		return makespan
	}
	without := measure(false)
	with := measure(true)
	// Two program cores, all work homed on one: stealing should give a
	// substantial speedup (ideally ~2x; require >= 1.3x).
	if float64(with)*1.3 > float64(without) {
		t.Errorf("stealing makespan %v not much better than without %v", with, without)
	}
}

func TestStealingPreservesConsistency(t *testing.T) {
	runPool(t, arch.Wallaby(), stealConfig(BusyWait), func(root *kernel.Task, p *Pool) {
		bad := 0
		const n = 6
		for i := 0; i < n; i++ {
			p.Spawn(func(b *BLT) int {
				b.Decouple()
				for j := 0; j < 3; j++ {
					b.Exec(func(kc *kernel.Task) {
						if kc.Getpid() != b.KC().TGID() {
							bad++
						}
					})
					b.Yield()
				}
				b.Couple()
				return 0
			}, SpawnOpts{Name: "c", Scheduler: 0})
		}
		reap(t, root, n)
		if bad != 0 {
			t.Errorf("%d inconsistent syscalls under work stealing", bad)
		}
	})
}

func TestNoStealingWhenDisabled(t *testing.T) {
	runPool(t, arch.Wallaby(), testConfig(BusyWait), func(root *kernel.Task, p *Pool) {
		const n = 4
		for i := 0; i < n; i++ {
			p.Spawn(func(b *BLT) int {
				b.Decouple()
				b.Yield()
				b.Couple()
				return 0
			}, SpawnOpts{Name: "w", Scheduler: 0})
		}
		reap(t, root, n)
		if got := p.Schedulers()[1].Steals(); got != 0 {
			t.Errorf("steals = %d with stealing disabled", got)
		}
		if got := p.Schedulers()[1].Dispatches(); got != 0 {
			t.Errorf("scheduler 1 dispatched %d UCs homed elsewhere", got)
		}
	})
}
