package blt

import (
	"errors"
	"testing"

	"repro/internal/arch"
	"repro/internal/kernel"
	"repro/internal/sim"
)

func TestAdoptIntoDeadHostRejected(t *testing.T) {
	runPool(t, arch.Wallaby(), testConfig(BusyWait), func(root *kernel.Task, p *Pool) {
		first, err := p.Spawn(func(b *BLT) int { return 0 }, SpawnOpts{Name: "ephemeral", Scheduler: -1})
		if err != nil {
			t.Fatal(err)
		}
		reap(t, root, 1) // the KC has now terminated
		_, err = p.Spawn(func(b *BLT) int { return 0 },
			SpawnOpts{Name: "late", Scheduler: -1, Host: first.Host()})
		if !errors.Is(err, ErrHostDead) {
			t.Errorf("err = %v, want ErrHostDead", err)
		}
	})
}

func TestAdoptIntoLiveSharedHost(t *testing.T) {
	runPool(t, arch.Wallaby(), testConfig(Blocking), func(root *kernel.Task, p *Pool) {
		hold := true
		first, err := p.Spawn(func(b *BLT) int {
			b.Decouple()
			for hold {
				b.Yield()
			}
			b.Couple()
			return 0
		}, SpawnOpts{Name: "primary", Scheduler: 0})
		if err != nil {
			t.Fatal(err)
		}
		ran := false
		if _, err := p.Spawn(func(b *BLT) int {
			b.Decouple()
			ran = true
			b.Couple()
			return 0
		}, SpawnOpts{Name: "sharer", Scheduler: 0, Host: first.Host()}); err != nil {
			t.Fatalf("adopt into live host: %v", err)
		}
		root.Nanosleep(50 * sim.Microsecond)
		hold = false
		reap(t, root, 1) // one KC for both
		if !ran {
			t.Error("sharer never ran")
		}
	})
}
