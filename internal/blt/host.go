package blt

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/probe"
	"repro/internal/supervise"
	"repro/internal/uctx"
)

// semProt is the protection for runtime futex words.
const semProt = mem.ProtRead | mem.ProtWrite

// KCHost owns one original kernel context (KC) and the trampoline
// context it idles in. In the default N:N mode a host serves exactly one
// BLT; in the M:N extension several BLTs share a host, in which case
// they also share its kernel state (PID, FDs) — "similar to the relation
// of the conventional process and thread" (paper §VII).
type KCHost struct {
	pool *Pool
	task *kernel.Task
	tc   *uctx.Context
	name string
	core int // the syscall core the KC is pinned to

	// restart, when a supervision plane is installed, is this KC's
	// respawn budget: a fault-killed KC is recreated (backoff-delayed,
	// quarantining after repeated kills) instead of bouncing every
	// couple request forever. Nil without a plane — the KC then stays
	// dead, the pre-supervision behavior.
	restart *supervise.Restarter

	// queue holds BLTs whose UC wants to run coupled on this KC
	// (couple requests, plus the initial KLT run at creation).
	queue []*BLT
	slot  idleSlot

	tcStack   uint64 // the trampoline context's small stack
	residents int    // live BLTs whose original KC this is
	lastExit  int
	dead      bool // the KC task has returned; no further adoption
	killed    bool // the KC died by fault injection (kc_kill)

	// running is the BLT currently coupled and executing on this KC.
	running *BLT
}

// TCStack returns the trampoline context's stack address.
func (h *KCHost) TCStack() uint64 { return h.tcStack }

// Running returns the BLT currently coupled on this KC, if any.
func (h *KCHost) Running() *BLT { return h.running }

// Task returns the host's kernel task (the original KC).
func (h *KCHost) Task() *kernel.Task { return h.task }

// Residents reports how many live BLTs use this KC as their original KC.
func (h *KCHost) Residents() int { return h.residents }

// SpunIdle reports CPU time this KC burned busy-waiting.
func (h *KCHost) SpunIdle() simDuration { return h.slot.Spun() }

// adopt registers a freshly spawned BLT with this host and enqueues its
// first coupled run (a BLT is *created as a KLT*). Adopting into a host
// whose KC has already terminated (all previous residents exited) is an
// error: the kernel context is gone, exactly as a real exited process
// cannot gain threads.
func (h *KCHost) adopt(b *BLT, creator *kernel.Task) error {
	if h.dead {
		return ErrHostDead
	}
	h.residents++
	b.coupled = true
	b.ucSaved = true // a new UC has no prior save to wait for
	h.queue = append(h.queue, b)
	creator.Charge(h.pool.kern.Machine().Costs.RunQueueOp)
	h.slot.kick(creator)
	return nil
}

// enqueueCoupled is Table I Seq.1+2: a decoupled UC (running on carrier,
// a scheduler KC) requests coupling; the idle original KC is unblocked.
//
// The dead re-check after the charge is load-bearing: Couple's fast-path
// check and this append straddle a virtual-time yield point (the queue-op
// charge), so a fault-killed KC can die — and drain its queue — in
// between. A request appended after that drain would never be served or
// bounced, so it is bounced here instead, exactly as die would have.
func (h *KCHost) enqueueCoupled(b *BLT, carrier *kernel.Task) {
	carrier.Charge(h.pool.kern.Machine().Costs.RunQueueOp)
	if h.dead && h.canRespawn() {
		h.tryRespawn(carrier)
	}
	if h.dead {
		b.coupled = false
		b.coupleErr = ErrHostDead
		h.pool.trace("kc: dead; bounce %s to sched%d", b.name, b.home.index)
		b.home.enqueue(b, carrier)
		return
	}
	h.queue = append(h.queue, b)
	h.slot.kick(carrier)
}

// canRespawn reports whether a dead KC may come back: only fault-killed
// KCs with restart budget left qualify. A KC that exited naturally (all
// residents done) stays dead, like any exited process.
func (h *KCHost) canRespawn() bool {
	return h.killed && h.restart != nil && !h.restart.Quarantined()
}

// tryRespawn brings a fault-killed KC back under the supervision plane's
// restart budget: the requesting carrier waits out a jittered
// exponential backoff, then a fresh trampoline context and a new kernel
// task (same name, same syscall core) replace the dead ones. The
// post-sleep dead re-check matters: several carriers can observe the
// same death, and whoever respawns first covers the rest. On budget
// exhaustion or thread-limit rejection the host stays dead and callers
// fall through to the bounce path.
func (h *KCHost) tryRespawn(carrier *kernel.Task) {
	p := h.pool
	delay, ok := h.restart.Next(p.kern.Engine().Now())
	if !ok {
		return // quarantined: this KC will not be coming back
	}
	if delay > 0 {
		carrier.Nanosleep(delay)
	}
	if !h.dead {
		return // a concurrent requester respawned it while we slept
	}
	tc := uctx.New("tc."+h.name, h.tcBody)
	task, err := carrier.TryClonePinned("kc."+h.name, p.cfg.CloneFlags, h.core, h.main)
	if err != nil {
		return // thread limit: stay dead, bounce the request
	}
	h.tc = tc
	h.task = task
	h.dead = false
	h.killed = false
	p.emit(carrier, "supervise", "kc.respawn: kc.%s restarted on core %d", h.name, h.core)
}

func (h *KCHost) dequeue(t *kernel.Task) *BLT {
	t.Charge(h.pool.kern.Machine().Costs.RunQueueOp)
	b := h.queue[0]
	copy(h.queue, h.queue[1:])
	h.queue[len(h.queue)-1] = nil
	h.queue = h.queue[:len(h.queue)-1]
	return b
}

// tcBody is the trampoline context: the stack the original KC runs on
// while its UC is away. It idles per the pool's policy and hands each
// coupling (or newly created) BLT to the KC main loop. Running the idle
// wait on this dedicated small stack — never on a UC stack — is exactly
// what makes decoupling safe (paper §V-A).
//
// The kc_kill fault site lives here, and only here: the KC can die right
// after going idle (its UC mid-decouple on a scheduler) or right after
// waking for a couple request (the requester mid-couple), but never
// inside the ucSaved handshake — matching a real SIGKILL, which a KC
// blocked in futex_wait or sched_yield can absorb at any time, while the
// handshake windows are a few uninterruptible instructions.
func (h *KCHost) tcBody(c *uctx.Context) {
	costs := h.pool.kern.Machine().Costs
	k := h.pool.kern
	for {
		if k.FaultShouldDie(c.Carrier(), "kc_kill") {
			h.killed = true // mid-decouple: the KC dies while idle
			h.pool.emit(c.Carrier(), "fault", "kc_kill: %s dies idle", c.Carrier().Name())
			return
		}
		h.slot.wait(c.Carrier(), func() bool {
			return len(h.queue) > 0 || h.residents == 0
		})
		if h.residents == 0 && len(h.queue) == 0 {
			return
		}
		if k.FaultShouldDie(c.Carrier(), "kc_kill") {
			h.killed = true // mid-couple: a request is queued, never served
			h.pool.emit(c.Carrier(), "fault", "kc_kill: %s dies with couple request queued", c.Carrier().Name())
			return
		}
		b := h.dequeue(c.Carrier())
		// Synchronization point 1 (Table I Seq.3/4): do not load the
		// UC before the scheduler has finished saving it; the window
		// is a few instructions, so tight-spin.
		for !b.ucSaved {
			c.Carrier().Charge(costs.AtomicOp)
		}
		h.pool.trace("kc: dequeue(%s)", b.name) // Table I Seq.3 (KC side)
		c.Yield(b)
	}
}

// KilledExitStatus is the exit status a fault-killed KC or scheduler
// task reports: 128+9, the shell convention for death by SIGKILL.
const KilledExitStatus = 137

// main is the original KC's kernel-task body: alternate between the
// trampoline context (idle) and whichever UC is currently coupled.
func (h *KCHost) main(t *kernel.Task) int {
	costs := h.pool.kern.Machine().Costs
	for {
		// Switch into the trampoline (swap only: TC<->UC transitions
		// do not reload the TLS register, per §V-B).
		t.Charge(costs.UserCtxSwap)
		ev := h.tc.Step(t)
		if ev.Kind == uctx.EvExit {
			h.dead = true
			if h.killed {
				h.die(t)
				return KilledExitStatus
			}
			return h.lastExit
		}
		b := ev.Tag.(*BLT)
		// Table I Seq.4: swap_ctx(TC0, UC0).
		h.pool.trace("kc: swap_ctx(TC, %s)", b.name)
		t.Charge(costs.UserCtxSwap)
		h.runCoupled(t, b)
	}
}

// die bounces every queued couple request back to its BLT's home
// scheduler with coupleErr set: the requester resumes inside Couple,
// observes ErrHostDead and continues decoupled. BLTs queued for their
// initial coupled run (created but never dispatched) are downgraded to a
// decoupled start the same way — their kernel context is gone before
// their first instruction, like a thread whose process died during
// pthread_create.
func (h *KCHost) die(t *kernel.Task) {
	for len(h.queue) > 0 {
		b := h.dequeue(t)
		b.coupled = false
		b.coupleErr = ErrHostDead
		h.pool.trace("kc: dead; bounce %s to sched%d", b.name, b.home.index)
		b.home.enqueue(b, t)
	}
}

// runCoupled steps b's UC as a KLT until it decouples or exits.
func (h *KCHost) runCoupled(t *kernel.Task, b *BLT) {
	h.running = b
	defer func() { h.running = nil }()
	p := h.pool
	// Open the couple→exec→decouple bracket on the KC's core; Decouple
	// (or the exit path below) closes it.
	if p.kern.Probes().Attached(probe.PSpanBegin) {
		b.bracket = p.beginSpan(t, b, "coupled "+b.name)
	}
	for {
		ev := b.uc.Step(t)
		if ev.Kind == uctx.EvExit {
			// Paper rule 7: a BLT always terminates as a KLT coupled
			// with its original KC.
			if b.bracket != 0 {
				p.endSpan(t, b, b.bracket)
				b.bracket = 0
			}
			b.done = true
			h.lastExit = b.exitStatus
			h.residents--
			return
		}
		switch tg := ev.Tag.(yieldTag); tg {
		case tagDecouple:
			// Sync point 2 (Table I Seq.8/9): the UC context is now
			// saved; the scheduler may load it.
			b.ucSaved = true
			h.pool.trace("kc: %s saved; blocking on TC", b.name) // Seq.8
			return                                               // back to the trampoline
		case tagCoupling:
			panic(fmt.Sprintf("blt: %s coupled while already on its original KC", b))
		case tagYield:
			// A KLT yield would be sched_yield; BLT.Yield handles it
			// without reaching here.
			panic(fmt.Sprintf("blt: unexpected ULT yield from coupled %s", b))
		default:
			panic(fmt.Sprintf("blt: unknown tag %v from %s", tg, b))
		}
	}
}
