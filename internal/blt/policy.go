package blt

// ULTPolicy customises the user-level half of the scheduling plane: the
// order a scheduler BLT drains its ready queue, the order it scans steal
// victims, and notifications at its idle and yield edges. It is the
// user-level counterpart of kernel.SchedPolicy — one policy object
// typically implements both (see internal/schedpolicy).
//
// As with the kernel interface, every hook may decline (index ≤ 0, nil
// slice) and the built-in FIFO/round-robin behaviour runs; a policy that
// declines everything is byte-identical to Config.Policy == nil. Hooks
// run on the dispatch hot path between UC switches: they must not block
// and should not allocate in steady state.
//
// Policies reorder ready work; they never invent or suppress it. A
// PickReady index is only honoured inside [0, QueueLen()), a StealOrder
// entry only when it names a live peer with queued work — the scheduler
// re-applies its own emptiness re-checks and charges around every hook,
// so the Table I race windows and the explorer's conservation oracles
// are unaffected by policy choice.
type ULTPolicy interface {
	// Name identifies the policy in diagnostics and repro commands.
	Name() string
	// PickReady returns the ready-queue index of the BLT the scheduler
	// should run next (0 = queue head). Called only with a non-empty
	// queue; out-of-range indices fall back to the FIFO head.
	PickReady(s *Scheduler) int
	// StealOrder appends victim scheduler indices to buf in preference
	// order and returns it; nil falls back to the built-in round-robin
	// scan from s.Index()+1. Entries naming s itself or out-of-range
	// indices are skipped.
	StealOrder(s *Scheduler, buf []int) []int
	// OnIdle fires when s found no local or stolen work and is about to
	// idle per the pool policy.
	OnIdle(s *Scheduler)
	// OnYield fires when b cooperatively yields back to s, before the
	// requeue at the tail.
	OnYield(s *Scheduler, b *BLT)
}
