package blt_test

// Adversarial-interleaving tests for the two Table I synchronization
// points, driven through the schedule explorer: every explored schedule
// must preserve the paper's system-call consistency property (a coupled
// ULP's getpid observes the owner KC's PID) and the UC lifecycle
// invariants (no lost UC, no double-run, clean statuses). The tests live
// in package blt_test because internal/explore imports internal/core,
// which imports this package.

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/arch"
	"repro/internal/blt"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/loader"
	"repro/internal/sim"
)

// exploreHorizon bounds each explored run in virtual time so an
// adversarial schedule that livelocks or deadlocks the coupling protocol
// surfaces as a failing run instead of a hung test.
const exploreHorizon = sim.Time(0) + sim.Time(sim.Second)

func drainTo(e *sim.Engine, what string) error {
	if err := e.RunUntil(exploreHorizon); err != nil {
		return err
	}
	if n := e.PendingEvents(); n > 0 {
		return fmt.Errorf("%s: livelock: %d events still pending at %v", what, n, exploreHorizon)
	}
	if n := e.LiveProcs(); n > 0 {
		return fmt.Errorf("%s: deadlock: %d procs parked with no pending events", what, n)
	}
	return nil
}

func exploreImg(name string, main loader.MainFunc) *loader.Image {
	return &loader.Image{
		Name: name, PIE: true, TextSize: 4096,
		Symbols: []loader.Symbol{
			{Name: "data", Size: 64},
			{Name: "errno", Size: 8, TLS: true},
		},
		Main: main,
	}
}

// decoupleVsStealScenario exercises sync point 2 (decouple hands the UC
// back to a scheduler) against work stealing: three ULPs pinned to
// scheduler 0 churn through couple/decouple while scheduler 1 sits idle
// and steals. On every explored schedule each rank's coupled getpid must
// see its owner KC, the audited syscalls must stay consistent, and every
// UC must run to completion exactly once (exact per-rank statuses).
func decoupleVsStealScenario() explore.Scenario {
	const ranks = 3
	return explore.Scenario{
		Name: "decouple-vs-steal",
		Run: func(ch sim.Chooser) error {
			e := sim.New()
			e.SetChooser(ch)
			e.SetTrapPanics(true)
			defer e.Shutdown()
			k := kernel.New(e, arch.Wallaby())
			img := exploreImg("dvs", func(envI interface{}) int {
				env := envI.(*core.Env)
				rank := env.U.Rank
				kcPID := env.U.KC().TGID()
				env.Decouple()
				for i := 0; i < 4; i++ {
					if err := env.Couple(); err != nil {
						return 80 + rank
					}
					if env.Getpid() != kcPID { // sync point 1
						return 90 + rank
					}
					env.Decouple()
					if env.Getpid() != kcPID { // sync point 2
						return 95 + rank
					}
					env.Compute(sim.Duration(1+rank) * sim.Microsecond)
					env.Yield()
				}
				return 40 + rank
			})
			var statuses []int
			var waitErr error
			violations := 0
			_, bootErr := core.Boot(k, core.Config{
				ProgCores:    []int{0, 1},
				SyscallCores: []int{2, 3},
				Idle:         blt.BusyWait,
				Audit:        true,
				WorkStealing: true,
			}, func(rt *core.Runtime) int {
				defer rt.Shutdown()
				for i := 0; i < ranks; i++ {
					// All ranks pinned to scheduler 0: scheduler 1 only
					// ever runs stolen UCs.
					if _, err := rt.Spawn(img, core.SpawnOpts{Name: fmt.Sprintf("dvs.%d", i), Scheduler: 0}); err != nil {
						waitErr = err
						return 1
					}
				}
				statuses, waitErr = rt.WaitAll()
				violations = len(rt.Violations())
				return 0
			})
			if bootErr != nil {
				return bootErr
			}
			if err := drainTo(e, "decouple-vs-steal"); err != nil {
				return err
			}
			if waitErr != nil {
				return fmt.Errorf("decouple-vs-steal: WaitAll: %v", waitErr)
			}
			if len(statuses) != ranks {
				return fmt.Errorf("decouple-vs-steal: %d statuses for %d ULPs (lost UC)", len(statuses), ranks)
			}
			for i, s := range statuses {
				if s != 40+i {
					return fmt.Errorf("decouple-vs-steal: rank %d exit %d, want %d", i, s, 40+i)
				}
			}
			if violations != 0 {
				return fmt.Errorf("decouple-vs-steal: %d syscall-consistency violations", violations)
			}
			return explore.CheckFutexConservation(k)
		},
	}
}

func TestExploreDecoupleVsSteal(t *testing.T) {
	s := decoupleVsStealScenario()
	res := explore.Explore(s, explore.Config{Policy: explore.DFS, Depth: 3})
	if res.Failure != nil {
		t.Fatalf("DFS found a schedule violating syscall consistency:\n  trace: %s\n  %s",
			explore.TraceString(res.Failure.Trace), res.Failure.Err)
	}
	if !res.Complete {
		t.Error("bounded DFS did not exhaust the depth-3 prefix space")
	}
	res = explore.Explore(s, explore.Config{Policy: explore.RandomWalk, Runs: 8, Seed: 0xdecaf})
	if res.Failure != nil {
		t.Fatalf("random walk (seed %d) violated syscall consistency: %s", res.Failure.Seed, res.Failure.Err)
	}
	if res.Decisions == 0 {
		t.Error("no scheduling decision points — scenario exercises nothing")
	}
}

// coupleVsHostDeathScenario exercises sync point 1 (couple moves the UC
// onto its owner KC) against the host dying at the worst possible
// moment: a fault kills kc.victim on its first kill site, racing the
// victim's couple/decouple churn. Whatever the interleaving, the victim
// must either finish cleanly (40), observe ErrHostDead and bail (70), or
// be killed with the pool's kill status — never hang, never run a
// syscall on the wrong KC, and never take the bystander down with it.
func coupleVsHostDeathScenario() explore.Scenario {
	return explore.Scenario{
		Name: "couple-vs-host-death",
		Run: func(ch sim.Chooser) error {
			e := sim.New()
			e.SetChooser(ch)
			e.SetTrapPanics(true)
			defer e.Shutdown()
			k := kernel.New(e, arch.Wallaby())
			k.SetFaultPlane(fault.NewPlane(7, []fault.Spec{
				{Site: fault.SiteKCKill, Nth: 1, TaskPrefix: "kc.victim"},
			}))
			prog := func(bystander bool) *loader.Image {
				name := "victim"
				if bystander {
					name = "bystander"
				}
				return exploreImg(name, func(envI interface{}) int {
					env := envI.(*core.Env)
					kcPID := env.U.KC().TGID()
					env.Decouple()
					for i := 0; i < 4; i++ {
						if err := env.Couple(); err != nil {
							if errors.Is(err, blt.ErrHostDead) {
								return 70
							}
							return 71
						}
						if env.Getpid() != kcPID {
							return 90
						}
						env.Decouple()
						env.Compute(2 * sim.Microsecond)
					}
					if bystander {
						return 41
					}
					return 40
				})
			}
			var statuses []int
			var waitErr error
			violations := 0
			_, bootErr := core.Boot(k, core.Config{
				ProgCores:    []int{0, 1},
				SyscallCores: []int{2, 3},
				Idle:         blt.Blocking,
				Audit:        true,
			}, func(rt *core.Runtime) int {
				defer rt.Shutdown()
				if _, err := rt.Spawn(prog(false), core.SpawnOpts{Name: "victim", Scheduler: 0}); err != nil {
					waitErr = err
					return 1
				}
				if _, err := rt.Spawn(prog(true), core.SpawnOpts{Name: "bystander", Scheduler: 1}); err != nil {
					waitErr = err
					return 1
				}
				statuses, waitErr = rt.WaitAll()
				violations = len(rt.Violations())
				return 0
			})
			if bootErr != nil {
				return bootErr
			}
			if err := drainTo(e, "couple-vs-host-death"); err != nil {
				return err
			}
			if waitErr != nil {
				return fmt.Errorf("couple-vs-host-death: WaitAll: %v", waitErr)
			}
			if len(statuses) != 2 {
				return fmt.Errorf("couple-vs-host-death: %d statuses, want 2", len(statuses))
			}
			switch statuses[0] {
			case 40, 70, blt.KilledExitStatus:
			default:
				return fmt.Errorf("couple-vs-host-death: victim exit %d, want 40, 70 or %d", statuses[0], blt.KilledExitStatus)
			}
			if statuses[1] != 41 {
				return fmt.Errorf("couple-vs-host-death: bystander exit %d, want 41 (collateral damage)", statuses[1])
			}
			if violations != 0 {
				return fmt.Errorf("couple-vs-host-death: %d syscall-consistency violations", violations)
			}
			// Weak futex oracle only: a mid-sleep kill legitimately leaves
			// the strict sleep ledger unbalanced.
			return explore.CheckFutexClaims(k)
		},
	}
}

func TestExploreCoupleVsHostDeath(t *testing.T) {
	s := coupleVsHostDeathScenario()
	res := explore.Explore(s, explore.Config{Policy: explore.DFS, Depth: 3})
	if res.Failure != nil {
		t.Fatalf("DFS found a schedule mishandling host death:\n  trace: %s\n  %s",
			explore.TraceString(res.Failure.Trace), res.Failure.Err)
	}
	if !res.Complete {
		t.Error("bounded DFS did not exhaust the depth-3 prefix space")
	}
	res = explore.Explore(s, explore.Config{Policy: explore.RandomWalk, Runs: 8, Seed: 0xdead})
	if res.Failure != nil {
		t.Fatalf("random walk (seed %d) mishandled host death: %s", res.Failure.Seed, res.Failure.Err)
	}
}
