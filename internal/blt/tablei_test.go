package blt

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// TestTableISequence captures the protocol trace of one bracketed
// system-call from a decoupled BLT and validates that the events occur
// in exactly the order of the paper's Table I:
//
//	Seq.1/2  couple(): enqueue(UC0, KC0) + unblock(KC0)
//	Seq.3    KC1: swap_ctx(UC0, UCi) — and publishes "saved"
//	Seq.3'   KC0: dequeue(UC0)
//	Seq.4    KC0: swap_ctx(TC0, UC0)
//	Seq.5    system_call()            (not traced; between 4 and 6)
//	Seq.6    decouple(): enqueue(UC0, KC1)
//	Seq.7    KC0: swap_ctx(UC0, TC0)
//	Seq.8    KC0: saved + blocks on TC
//	Seq.9    KC1: swap_ctx(UCi, UC0)
func TestTableISequence(t *testing.T) {
	e := sim.New()
	tr := sim.NewTracer(0)
	e.SetTracer(tr)
	k := kernel.New(e, arch.Wallaby())
	root := k.NewTask("root", k.NewAddressSpace(), func(task *kernel.Task) int {
		pool, err := NewPool(task, testConfig(BusyWait))
		if err != nil {
			t.Error(err)
			return 1
		}
		pool.Spawn(func(b *BLT) int {
			b.Decouple()
			b.Exec(func(kc *kernel.Task) { kc.Getpid() })
			b.Couple()
			return 0
		}, SpawnOpts{Name: "UC0", Scheduler: 0})
		task.Wait()
		pool.Shutdown(task)
		return 0
	})
	k.Start(root, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}

	// Collect the protocol events of the Exec bracket: everything
	// between the second "couple:" (the Exec's, after the initial
	// decouple) and the following scheduler resume.
	var protocol []string
	for _, ev := range tr.Events() {
		if ev.Kind == "blt" {
			protocol = append(protocol, ev.Msg)
		}
	}
	// Find the Exec bracket: the first "couple: enqueue" marks Seq.1.
	start := -1
	for i, msg := range protocol {
		if strings.HasPrefix(msg, "couple: enqueue") {
			start = i
			break
		}
	}
	if start < 0 {
		t.Fatalf("no couple event in protocol trace: %v", protocol)
	}
	want := []string{
		"couple: enqueue(UC0, KC) + unblock(KC)", // Seq.1 + Seq.2
		"couple: swap_ctx(UC0, next-UC)",         // Seq.3 (UC side)
		"sched0: UC0 saved (sync point 1)",       // Seq.3 (publish)
		"kc: dequeue(UC0)",                       // Seq.3'
		"kc: swap_ctx(TC, UC0)",                  // Seq.4
		"decouple: enqueue(UC0, sched0)",         // Seq.6 (Seq.5 between)
		"decouple: swap_ctx(UC0, TC)",            // Seq.7
		"kc: UC0 saved; blocking on TC",          // Seq.8
		"sched0: swap_ctx(.., UC0)",              // Seq.9
	}
	got := protocol[start:]
	if len(got) < len(want) {
		t.Fatalf("protocol too short:\n%s", strings.Join(got, "\n"))
	}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("Table I step %d = %q, want %q\nfull trace:\n%s",
				i, got[i], w, strings.Join(got, "\n"))
		}
	}
}
