package blt

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/uctx"
)

// testConfig: 2 program cores, 2 syscall cores.
func testConfig(idle IdlePolicy) Config {
	return Config{
		ProgCores:    []int{0, 1},
		SyscallCores: []int{2, 3},
		Idle:         idle,
		SwitchTLS:    true,
	}
}

// runPool runs body as a "root" task that owns a pool, then drives the
// engine to completion. body must leave all BLTs terminated and reaped.
func runPool(t *testing.T, m *arch.Machine, cfg Config, body func(root *kernel.Task, p *Pool)) {
	t.Helper()
	e := sim.New()
	k := kernel.New(e, m)
	root := k.NewTask("root", k.NewAddressSpace(), func(task *kernel.Task) int {
		pool, err := NewPool(task, cfg)
		if err != nil {
			t.Errorf("NewPool: %v", err)
			return 1
		}
		body(task, pool)
		pool.Shutdown(task)
		return 0
	})
	k.Start(root, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
}

// reap waits for n process-mode BLT KCs to exit.
func reap(t *testing.T, root *kernel.Task, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, _, err := root.Wait(); err != nil {
			t.Errorf("wait %d: %v", i, err)
		}
	}
}

func TestBLTStartsAsKLTOnOwnKC(t *testing.T) {
	runPool(t, arch.Wallaby(), testConfig(BusyWait), func(root *kernel.Task, p *Pool) {
		var carrierPID, kcPID int
		b, err := p.Spawn(func(b *BLT) int {
			carrierPID = b.Carrier().Getpid()
			return 0
		}, SpawnOpts{Name: "x", Scheduler: -1})
		if err != nil {
			t.Fatal(err)
		}
		kcPID = b.KC().TGID()
		reap(t, root, 1)
		if !b.Done() {
			t.Fatal("BLT not done after reap")
		}
		if carrierPID != kcPID {
			t.Errorf("created-as-KLT carrier pid = %d, want original KC pid %d", carrierPID, kcPID)
		}
		if carrierPID == root.TGID() {
			t.Error("BLT ran with the root's pid; process-mode clone expected")
		}
	})
}

func TestDecoupleMovesUCToScheduler(t *testing.T) {
	runPool(t, arch.Wallaby(), testConfig(BusyWait), func(root *kernel.Task, p *Pool) {
		var beforePID, afterPID, backPID int
		b, _ := p.Spawn(func(b *BLT) int {
			beforePID = b.Carrier().Getpid()
			b.Decouple()
			afterPID = b.Carrier().Getpid() // scheduler's pid: INCONSISTENT on purpose
			b.Couple()
			backPID = b.Carrier().Getpid()
			return 0
		}, SpawnOpts{Name: "mover", Scheduler: 0})
		reap(t, root, 1)
		kcPID := b.KC().TGID()
		schedPID := p.Schedulers()[0].Task().TGID()
		if beforePID != kcPID {
			t.Errorf("before decouple: pid %d, want KC %d", beforePID, kcPID)
		}
		// The paper's consistency hazard, demonstrated: a decoupled UC
		// calling getpid() sees the *scheduling* KC's pid.
		if afterPID != schedPID {
			t.Errorf("decoupled getpid = %d, want scheduler pid %d", afterPID, schedPID)
		}
		if backPID != kcPID {
			t.Errorf("after couple: pid %d, want original KC %d", backPID, kcPID)
		}
	})
}

func TestExecBracketPreservesConsistency(t *testing.T) {
	for _, idle := range []IdlePolicy{BusyWait, Blocking} {
		idle := idle
		t.Run(idle.String(), func(t *testing.T) {
			runPool(t, arch.Wallaby(), testConfig(idle), func(root *kernel.Task, p *Pool) {
				var pids []int
				b, _ := p.Spawn(func(b *BLT) int {
					b.Decouple()
					for i := 0; i < 3; i++ {
						b.Exec(func(kc *kernel.Task) {
							pids = append(pids, kc.Getpid())
						})
					}
					return 0
				}, SpawnOpts{Name: "exec", Scheduler: -1})
				reap(t, root, 1)
				for i, pid := range pids {
					if pid != b.KC().TGID() {
						t.Errorf("Exec %d ran on pid %d, want %d", i, pid, b.KC().TGID())
					}
				}
				if len(pids) != 3 {
					t.Errorf("pids = %v", pids)
				}
				couples, decouples, _ := b.Stats()
				if couples != 4 || decouples != 4 {
					// 3 Exec brackets + initial decouple/terminal couple.
					t.Errorf("couples=%d decouples=%d, want 4/4", couples, decouples)
				}
			})
		})
	}
}

func TestYieldPingPong(t *testing.T) {
	runPool(t, arch.Wallaby(), testConfig(BusyWait), func(root *kernel.Task, p *Pool) {
		var order []string
		ready := 0
		mk := func(name string) Body {
			return func(b *BLT) int {
				b.Decouple()
				// Rendezvous: spawning is serialized by clone costs, so
				// wait until both ULPs are decoupled before recording.
				ready++
				for ready < 2 {
					b.Yield()
				}
				for i := 0; i < 3; i++ {
					order = append(order, name)
					b.Yield()
				}
				b.Couple()
				return 0
			}
		}
		p.Spawn(mk("a"), SpawnOpts{Name: "a", Scheduler: 0})
		p.Spawn(mk("b"), SpawnOpts{Name: "b", Scheduler: 0})
		reap(t, root, 2)
		// On one scheduler, yields must strictly alternate (either
		// phase is fine; the rendezvous decides who goes first).
		if len(order) != 6 {
			t.Errorf("order = %v, want 6 entries", order)
			return
		}
		for i := 1; i < len(order); i++ {
			if order[i] == order[i-1] {
				t.Errorf("order = %v: not alternating at %d", order, i)
				return
			}
		}
	})
}

func TestULPYieldCostMatchesTableIV(t *testing.T) {
	// Two decoupled ULPs ping-ponging on one scheduler: the per-yield
	// time must reproduce Table IV's "ULP-PiP yield" row (~150 ns on
	// Wallaby, ~120 ns on Albireo).
	cases := []struct {
		m      *arch.Machine
		lo, hi float64
	}{
		{arch.Wallaby(), 140, 160},
		{arch.Albireo(), 110, 130},
	}
	for _, c := range cases {
		c := c
		t.Run(c.m.Name, func(t *testing.T) {
			e := sim.New()
			k := kernel.New(e, c.m)
			var t0, t1 sim.Time
			const warm, measured = 20, 400
			done := false
			root := k.NewTask("root", k.NewAddressSpace(), func(task *kernel.Task) int {
				cfg := testConfig(BusyWait)
				pool, err := NewPool(task, cfg)
				if err != nil {
					t.Error(err)
					return 1
				}
				// TLS descriptors at distinct addresses.
				tlsA, _ := task.Mmap(64, true)
				tlsB, _ := task.Mmap(64, true)
				ready := 0
				pool.Spawn(func(b *BLT) int {
					b.Decouple()
					ready++
					for ready < 2 { // rendezvous: wait for b to arrive
						b.Yield()
					}
					for i := 0; i < warm+measured; i++ {
						if i == warm {
							t0 = e.Now()
						}
						b.Yield()
					}
					t1 = e.Now()
					done = true
					b.Couple()
					return 0
				}, SpawnOpts{Name: "a", Scheduler: 0, TLSBase: tlsA})
				pool.Spawn(func(b *BLT) int {
					b.Decouple()
					ready++
					for !done {
						b.Yield()
					}
					b.Couple()
					return 0
				}, SpawnOpts{Name: "b", Scheduler: 0, TLSBase: tlsB})
				task.Wait()
				task.Wait()
				pool.Shutdown(task)
				return 0
			})
			k.Start(root, 0)
			if err := e.Run(); err != nil {
				t.Fatalf("engine: %v", err)
			}
			perYield := float64(t1.Sub(t0)) / (2 * measured) / 1000
			if perYield < c.lo || perYield > c.hi {
				t.Errorf("%s per-yield = %.1fns, want in [%v,%v]", c.m.Name, perYield, c.lo, c.hi)
			}
		})
	}
}

func TestMNSharedKC(t *testing.T) {
	// §VII extension: several UCs share one original KC and therefore
	// observe the same kernel identity — thread-like consistency.
	runPool(t, arch.Wallaby(), testConfig(BusyWait), func(root *kernel.Task, p *Pool) {
		pids := map[int]bool{}
		mk := func() Body {
			return func(b *BLT) int {
				b.Decouple()
				b.Exec(func(kc *kernel.Task) { pids[kc.Getpid()] = true })
				b.Couple()
				return 0
			}
		}
		first, err := p.Spawn(mk(), SpawnOpts{Name: "m0", Scheduler: 0})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < 4; i++ {
			if _, err := p.Spawn(mk(), SpawnOpts{Name: "mi", Scheduler: 0, Host: first.Host()}); err != nil {
				t.Fatal(err)
			}
		}
		if first.Host().Residents() != 4 {
			t.Errorf("residents = %d, want 4", first.Host().Residents())
		}
		reap(t, root, 1) // one KC for all four BLTs
		if len(pids) != 1 || !pids[first.KC().TGID()] {
			t.Errorf("M:N pids = %v, want only %d", pids, first.KC().TGID())
		}
		if first.Host().Residents() != 0 {
			t.Errorf("residents = %d after completion", first.Host().Residents())
		}
	})
}

func TestBlockingIdlePolicyWorks(t *testing.T) {
	runPool(t, arch.Wallaby(), testConfig(Blocking), func(root *kernel.Task, p *Pool) {
		total := 0
		for i := 0; i < 3; i++ {
			p.Spawn(func(b *BLT) int {
				b.Decouple()
				for j := 0; j < 2; j++ {
					b.Exec(func(kc *kernel.Task) { total++ })
					b.Yield()
				}
				b.Couple()
				return 0
			}, SpawnOpts{Name: "w", Scheduler: -1})
		}
		reap(t, root, 3)
		if total != 6 {
			t.Errorf("total = %d, want 6", total)
		}
	})
}

func TestPowerProxyBusyWaitSpinsBlockingDoesNot(t *testing.T) {
	// §VII: "busy-waiting consumes more power". The busy-wait pool
	// burns KC cycles while idle; the blocking pool does not.
	spun := map[IdlePolicy]sim.Duration{}
	for _, idle := range []IdlePolicy{BusyWait, Blocking} {
		idle := idle
		runPool(t, arch.Wallaby(), testConfig(idle), func(root *kernel.Task, p *Pool) {
			b, _ := p.Spawn(func(b *BLT) int {
				b.Decouple()
				// Leave the KC idle for a while.
				b.Carrier().Nanosleep(100 * sim.Microsecond)
				b.Couple()
				return 0
			}, SpawnOpts{Name: "idle", Scheduler: -1})
			reap(t, root, 1)
			spun[idle] = b.Host().SpunIdle()
		})
	}
	if spun[BusyWait] < 50*sim.Microsecond {
		t.Errorf("busy-wait KC spun only %v over a 100us idle window", spun[BusyWait])
	}
	if spun[Blocking] != 0 {
		t.Errorf("blocking KC spun %v, want 0", spun[Blocking])
	}
}

func TestStartDecoupledConfig(t *testing.T) {
	cfg := testConfig(BusyWait)
	cfg.StartDecoupled = true
	runPool(t, arch.Wallaby(), cfg, func(root *kernel.Task, p *Pool) {
		var firstPID int
		b, _ := p.Spawn(func(b *BLT) int {
			firstPID = b.Carrier().Getpid() // already decoupled: scheduler pid
			return 0
		}, SpawnOpts{Name: "sd", Scheduler: 0})
		reap(t, root, 1)
		if firstPID != p.Schedulers()[0].Task().TGID() {
			t.Errorf("StartDecoupled body pid = %d, want scheduler %d",
				firstPID, p.Schedulers()[0].Task().TGID())
		}
		if b.KC().TGID() == firstPID {
			t.Error("body ran on original KC despite StartDecoupled")
		}
	})
}

func TestDecoupleTwiceAndCoupleTwiceAreNoOps(t *testing.T) {
	runPool(t, arch.Wallaby(), testConfig(BusyWait), func(root *kernel.Task, p *Pool) {
		b, _ := p.Spawn(func(b *BLT) int {
			b.Couple() // already coupled: no-op
			b.Decouple()
			b.Decouple() // no-op
			b.Couple()
			b.Couple() // no-op
			return 0
		}, SpawnOpts{Name: "noop", Scheduler: -1})
		reap(t, root, 1)
		couples, decouples, _ := b.Stats()
		if couples != 1 || decouples != 1 {
			t.Errorf("couples=%d decouples=%d, want 1/1", couples, decouples)
		}
	})
}

func TestManyBLTsOversubscribed(t *testing.T) {
	// Over-subscription (paper Eq. 2): many more BLTs than program
	// cores, all making consistent syscalls.
	runPool(t, arch.Wallaby(), testConfig(BusyWait), func(root *kernel.Task, p *Pool) {
		const n = 12
		bad := 0
		blts := make([]*BLT, n)
		for i := 0; i < n; i++ {
			b, err := p.Spawn(func(b *BLT) int {
				b.Decouple()
				for j := 0; j < 3; j++ {
					b.Exec(func(kc *kernel.Task) {
						if kc.Getpid() != b.KC().TGID() {
							bad++
						}
					})
					b.Yield()
				}
				b.Couple()
				return 0
			}, SpawnOpts{Name: "ov", Scheduler: -1})
			if err != nil {
				t.Fatal(err)
			}
			blts[i] = b
		}
		reap(t, root, n)
		if bad != 0 {
			t.Errorf("%d inconsistent syscalls under oversubscription", bad)
		}
		for _, b := range blts {
			if !b.Done() {
				t.Errorf("%s not done", b)
			}
		}
	})
}

func TestNaiveDecouplingHazardDetected(t *testing.T) {
	// Ablation A3: without a trampoline context, the original KC would
	// resume a context image saved before the scheduler ran the UC —
	// the Fig. 4 stack hazard. uctx detects the stale resume.
	e := sim.New()
	k := kernel.New(e, arch.Wallaby())
	root := k.NewTask("root", k.NewAddressSpace(), func(task *kernel.Task) int {
		uc := uctx.New("victim", func(c *uctx.Context) {
			c.Yield(nil) // "decouple": saved by KC0
			c.Yield(nil) // runs under KC1, stack changes
		})
		// KC0 runs the UC and "saves" it at decouple time.
		uc.Step(task)
		staleSave := uc.SnapshotNow()
		// KC1 (here: same task, any carrier) schedules the UC: the
		// stack state changes.
		uc.Step(task)
		// KC0 tries to resume its stale save: must be detected.
		if _, err := uc.StepFrom(staleSave, task); err == nil {
			t.Error("stale resume after foreign scheduling succeeded; stack corruption undetected")
		}
		uc.Kill()
		return 0
	})
	k.Start(root, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
}

func TestSchedulerDispatchCounts(t *testing.T) {
	runPool(t, arch.Wallaby(), testConfig(BusyWait), func(root *kernel.Task, p *Pool) {
		p.Spawn(func(b *BLT) int {
			b.Decouple()
			for i := 0; i < 5; i++ {
				b.Yield()
			}
			b.Couple()
			return 0
		}, SpawnOpts{Name: "d", Scheduler: 0})
		reap(t, root, 1)
		s := p.Schedulers()[0]
		if s.Dispatches() < 6 {
			t.Errorf("dispatches = %d, want >= 6", s.Dispatches())
		}
	})
}

func TestPoolSpawnAfterShutdownFails(t *testing.T) {
	runPool(t, arch.Wallaby(), testConfig(BusyWait), func(root *kernel.Task, p *Pool) {
		p.Shutdown(root)
		if _, err := p.Spawn(func(b *BLT) int { return 0 }, SpawnOpts{Scheduler: -1}); err != ErrPoolStopped {
			t.Errorf("err = %v, want ErrPoolStopped", err)
		}
	})
}

func TestExitStatusPropagates(t *testing.T) {
	runPool(t, arch.Wallaby(), testConfig(BusyWait), func(root *kernel.Task, p *Pool) {
		b, _ := p.Spawn(func(b *BLT) int {
			b.Decouple()
			b.Couple()
			return 99
		}, SpawnOpts{Name: "status", Scheduler: -1})
		_, status, err := root.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if status != 99 || b.ExitStatus() != 99 {
			t.Errorf("status = %d / %d, want 99", status, b.ExitStatus())
		}
	})
}

func TestStacksLiveInSharedAddressSpace(t *testing.T) {
	// Every UC gets a demand-paged stack VMA in the shared space, and
	// the trampoline context's stack is much smaller ("the stack region
	// of a trampoline context can be very small", §V-A).
	runPool(t, arch.Wallaby(), testConfig(BusyWait), func(root *kernel.Task, p *Pool) {
		b, err := p.Spawn(func(b *BLT) int { return 0 },
			SpawnOpts{Name: "stacky", Scheduler: -1, StackBytes: 256 << 10})
		if err != nil {
			t.Fatal(err)
		}
		reap(t, root, 1)
		addr, size := b.Stack()
		if size != 256<<10 {
			t.Errorf("stack size = %d", size)
		}
		vma := root.Space().FindVMA(addr)
		if vma == nil || vma.Label != "stacky.stack" {
			t.Fatalf("stack VMA missing or mislabeled: %v", vma)
		}
		tcVMA := root.Space().FindVMA(b.Host().TCStack())
		if tcVMA == nil {
			t.Fatal("TC stack VMA missing")
		}
		if tcVMA.Len() >= vma.Len() {
			t.Errorf("TC stack (%d) not smaller than UC stack (%d)", tcVMA.Len(), vma.Len())
		}
		if tcVMA.Len() != TrampolineStackBytes {
			t.Errorf("TC stack = %d, want %d", tcVMA.Len(), TrampolineStackBytes)
		}
	})
}
