package blt

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/supervise"
	"repro/internal/uctx"
)

// IdlePolicy selects how an idle KC waits (paper §VI-C): spinning on a
// flag, or blocked on a futex-based semaphore.
type IdlePolicy int

// Idle policies.
const (
	BusyWait IdlePolicy = iota
	Blocking
)

// String implements fmt.Stringer.
func (p IdlePolicy) String() string {
	if p == Blocking {
		return "BLOCKING"
	}
	return "BUSYWAIT"
}

// Config describes a BLT pool, mirroring the paper's Fig. 6 scenario:
// CPU cores divided into a program partition (running scheduler BLTs
// that execute decoupled UCs) and a system-call partition (hosting the
// original KCs).
type Config struct {
	// ProgCores are the cores running user code (one scheduler each).
	ProgCores []int
	// SyscallCores host original KCs; assigned round-robin. A syscall
	// core may hold more than one KC.
	SyscallCores []int
	// Idle selects the KC idle policy.
	Idle IdlePolicy
	// SwitchTLS enables ULP semantics: schedulers load the TLS register
	// on every UC switch. Disable for plain-ULT behaviour (the paper:
	// "most ULT implementations ignore TLS variables whereas ULP
	// cannot").
	SwitchTLS bool
	// StartDecoupled makes every BLT decouple before running its body
	// (the Fig. 6 deployment). When false, BLTs start as pure KLTs and
	// decouple explicitly.
	StartDecoupled bool
	// WorkStealing lets an idle scheduler steal ready UCs from peer
	// schedulers' queues before idling — interprocess work stealing
	// made trivial by the shared address space (Ouyang et al., SC'19
	// poster, cited in the paper's related work).
	WorkStealing bool
	// SwitchSigmask enables ucontext-style switching (paper §VII): the
	// scheduler saves/restores the signal mask on every UC switch,
	// paying the machine's SigmaskSwitch cost. fcontext (the default)
	// skips this, which is faster but delivers signals to the
	// scheduling KC's disposition.
	SwitchSigmask bool
	// CloneFlags used to create original KCs from the creator task.
	// Defaults to kernel.PiPProcessFlags (ULP: each BLT is a process).
	CloneFlags kernel.CloneFlags
	// Policy, when non-nil, customises ready-queue order, steal-victim
	// order and the idle/yield edges (see ULTPolicy). Nil keeps the
	// built-in FIFO + round-robin-steal behaviour.
	Policy ULTPolicy
}

// trace emits a BLT-protocol event through the trace:log probe point —
// used to validate the Table I sequence in tests and to debug schedules
// via ulpsim -trace.
func (p *Pool) trace(format string, args ...interface{}) {
	ps := p.kern.Probes()
	if !ps.Attached(probe.PTraceLog) {
		return
	}
	c := ps.Begin(probe.PTraceLog, p.kern.Engine().Now())
	c.Site = "blt"
	c.Format = format
	c.Args = args
	ps.Fire(c)
}

// emit records a typed instant event on t's current core through the
// trace:instant probe point.
func (p *Pool) emit(t *kernel.Task, kind, format string, args ...interface{}) {
	ps := p.kern.Probes()
	if !ps.Attached(probe.PTraceInstant) {
		return
	}
	c := ps.Begin(probe.PTraceInstant, p.kern.Engine().Now())
	c.Site = kind
	if t != nil {
		c.Task = t
	}
	c.Format = format
	c.Args = args
	ps.Fire(c)
}

// opFrame carries the latency clock and span id of one couple/decouple
// handshake from opEnter to opExit. Zero frame (on=false): no program
// watches the handshake's points.
type opFrame struct {
	start sim.Time
	span  uint64
	pt    probe.Point
	on    bool
}

// opEnter opens a couple/decouple handshake: starts the latency clock
// and (with a span watcher) a "blt.span" span on the core where the
// handshake begins. pt is the handshake's point (blt:couple or
// blt:decouple), fired with the wall latency at opExit.
func (p *Pool) opEnter(t *kernel.Task, b *BLT, name string, pt probe.Point) opFrame {
	ps := p.kern.Probes()
	hasOp := ps.Attached(pt)
	hasSpan := ps.Attached(probe.PSpanBegin)
	if !hasOp && !hasSpan {
		return opFrame{}
	}
	f := opFrame{start: p.kern.Engine().Now(), pt: pt, on: true}
	if hasSpan {
		c := ps.Begin(probe.PSpanBegin, f.start)
		c.Site = "blt.span"
		if t != nil {
			c.Task = t
		}
		c.Name = b.name
		c.Format = name + " " + b.name
		f.span = ps.Fire(c).Span
	}
	return f
}

// opExit closes the handshake opened by opEnter: fires the handshake
// point with the wall virtual-time latency and ends the span (on
// whatever core the handshake finished).
func (p *Pool) opExit(t *kernel.Task, b *BLT, f opFrame) {
	if !f.on {
		return
	}
	ps := p.kern.Probes()
	end := p.kern.Engine().Now()
	if ps.Attached(f.pt) {
		c := ps.Begin(f.pt, end)
		if t != nil {
			c.Task = t
		}
		c.Name = b.name
		c.Dur = end.Sub(f.start)
		ps.Fire(c)
	}
	if f.span != 0 && ps.Attached(probe.PSpanEnd) {
		c := ps.Begin(probe.PSpanEnd, end)
		if t != nil {
			c.Task = t
		}
		c.Name = b.name
		c.Span = f.span
		ps.Fire(c)
	}
}

// beginSpan opens a "blt.span" trace span attributed to b on t's core
// (0 when no program watches the point). Callers gate on
// Probes().Attached(probe.PSpanBegin) so the label is only formatted
// when someone listens.
func (p *Pool) beginSpan(t *kernel.Task, b *BLT, label string) uint64 {
	ps := p.kern.Probes()
	c := ps.Begin(probe.PSpanBegin, p.kern.Engine().Now())
	c.Site = "blt.span"
	if t != nil {
		c.Task = t
	}
	c.Name = b.name
	c.Format = label
	return ps.Fire(c).Span
}

// endSpan closes a span opened by beginSpan on whatever core t runs on.
func (p *Pool) endSpan(t *kernel.Task, b *BLT, span uint64) {
	ps := p.kern.Probes()
	if !ps.Attached(probe.PSpanEnd) {
		return
	}
	c := ps.Begin(probe.PSpanEnd, p.kern.Engine().Now())
	if t != nil {
		c.Task = t
	}
	c.Name = b.name
	c.Span = span
	ps.Fire(c)
}

// Pool manages scheduler BLTs and the BLTs they run.
type Pool struct {
	kern    *kernel.Kernel
	creator *kernel.Task
	cfg     Config

	scheds    []*Scheduler
	nextSched int
	nextSC    int
	blts      []*BLT
	hosts     []*KCHost

	stopped bool
}

// NewPool creates the schedulers (one kernel thread pinned to each
// program core, cloned from creator) and returns the pool. The creator
// task pays the thread-creation costs.
func NewPool(creator *kernel.Task, cfg Config) (*Pool, error) {
	if len(cfg.ProgCores) == 0 {
		return nil, fmt.Errorf("blt: config needs at least one program core")
	}
	if len(cfg.SyscallCores) == 0 {
		return nil, fmt.Errorf("blt: config needs at least one syscall core")
	}
	if cfg.CloneFlags == 0 {
		cfg.CloneFlags = kernel.PiPProcessFlags
	}
	p := &Pool{kern: creator.Kernel(), creator: creator, cfg: cfg}
	for i, core := range cfg.ProgCores {
		s := &Scheduler{pool: p, core: core, index: i}
		if cfg.Policy != nil {
			// Preallocated victim-order scratch so a policy steal scan
			// allocates nothing in steady state.
			s.stealBuf = make([]int, 0, len(cfg.ProgCores))
		}
		if err := s.slot.init(p, creator); err != nil {
			return nil, err
		}
		s.task = creator.ClonePinned(fmt.Sprintf("sched.c%d", core), kernel.PThreadFlags, core, s.loop)
		p.scheds = append(p.scheds, s)
	}
	return p, nil
}

// Config returns the pool's configuration.
func (p *Pool) Config() Config { return p.cfg }

// Kernel returns the kernel the pool runs on.
func (p *Pool) Kernel() *kernel.Kernel { return p.kern }

// Schedulers returns the scheduler list (one per program core).
func (p *Pool) Schedulers() []*Scheduler {
	out := make([]*Scheduler, len(p.scheds))
	copy(out, p.scheds)
	return out
}

// NumSchedulers reports the scheduler count without copying the list
// (for policy hot paths).
func (p *Pool) NumSchedulers() int { return len(p.scheds) }

// SchedulerAt returns scheduler i without copying the list (for policy
// hot paths).
func (p *Pool) SchedulerAt(i int) *Scheduler { return p.scheds[i] }

// Policy returns the configured ULT scheduling policy, or nil.
func (p *Pool) Policy() ULTPolicy { return p.cfg.Policy }

// BLTs returns all spawned BLTs in creation order.
func (p *Pool) BLTs() []*BLT {
	out := make([]*BLT, len(p.blts))
	copy(out, p.blts)
	return out
}

// DefaultStackBytes is the default UC stack reservation (demand-paged
// in the shared address space; PiP tasks default to megabyte stacks).
const DefaultStackBytes = 1 << 20

// TrampolineStackBytes is the TC stack reservation — "the stack region
// of a trampoline context can be very small" (§V-A).
const TrampolineStackBytes = 4 << 10

// SpawnOpts parameterizes Spawn.
type SpawnOpts struct {
	Name    string
	TLSBase uint64 // thread-descriptor address for ULP TLS switching
	// StackBytes reserves the UC stack in the shared address space
	// (0 = DefaultStackBytes). The reservation is demand-paged.
	StackBytes uint64
	// Host, when non-nil, attaches the new BLT to an existing original
	// KC (the §VII M:N extension: UCs with the same original KC share
	// kernel state thread-style). Nil creates a fresh KC (N:N).
	Host *KCHost
	// Scheduler pins the BLT's home scheduler index; -1 (or 0 value
	// with one scheduler) assigns round-robin.
	Scheduler int
}

// Spawn creates a BLT running body. Per the paper, a BLT is created *as
// a KLT*: a fresh UC paired with a fresh original KC (unless opts.Host
// reuses one). The creator task pays the clone cost. The returned BLT's
// termination is observed via the kernel: wait() on the pool's creator
// reaps process-mode KCs.
func (p *Pool) Spawn(body Body, opts SpawnOpts) (*BLT, error) {
	if p.stopped {
		return nil, ErrPoolStopped
	}
	if opts.Name == "" {
		opts.Name = fmt.Sprintf("blt%d", len(p.blts))
	}
	home := p.scheds[p.nextSched%len(p.scheds)]
	if opts.Scheduler >= 0 && opts.Scheduler < len(p.scheds) {
		home = p.scheds[opts.Scheduler]
	} else {
		p.nextSched++
	}
	b := &BLT{
		pool:    p,
		name:    opts.Name,
		home:    home,
		tlsBase: opts.TLSBase,
		body:    body,
	}
	// Reserve the UC stack in the shared address space: decoupled UCs
	// run on whatever KC schedules them, so the stack must be visible
	// everywhere — trivially true under address-space sharing.
	stackBytes := opts.StackBytes
	if stackBytes == 0 {
		stackBytes = DefaultStackBytes
	}
	stack, err := p.creator.Space().Mmap(stackBytes, semProt,
		opts.Name+".stack", false, nil)
	if err != nil {
		return nil, err
	}
	b.stackAddr, b.stackSize = stack, stackBytes
	b.uc = uctx.New(opts.Name, b.ucBody)

	host := opts.Host
	if host == nil {
		var err error
		host, err = p.newHost(opts.Name)
		if err != nil {
			return nil, err
		}
	}
	b.host = host
	if err := host.adopt(b, p.creator); err != nil {
		return nil, err
	}
	p.blts = append(p.blts, b)
	return b, nil
}

func (p *Pool) newHost(name string) (*KCHost, error) {
	core := p.cfg.SyscallCores[p.nextSC%len(p.cfg.SyscallCores)]
	p.nextSC++
	h := &KCHost{pool: p, name: name, core: core}
	if err := h.slot.init(p, p.creator); err != nil {
		return nil, err
	}
	if pl := supervise.ForKernel(p.kern); pl != nil {
		h.restart = pl.Restarter("kc." + name)
	}
	// The trampoline context gets its own (small) stack.
	tcStack, err := p.creator.Space().Mmap(TrampolineStackBytes, semProt,
		"tc."+name+".stack", false, nil)
	if err != nil {
		return nil, err
	}
	h.tcStack = tcStack
	h.tc = uctx.New("tc."+name, h.tcBody)
	h.task = p.creator.ClonePinned("kc."+name, p.cfg.CloneFlags, core, h.main)
	p.hosts = append(p.hosts, h)
	return h, nil
}

// liveScheds counts schedulers not killed by fault injection.
func (p *Pool) liveScheds() int {
	n := 0
	for _, s := range p.scheds {
		if !s.dead {
			n++
		}
	}
	return n
}

// nextLiveSched returns the first live scheduler scanning deterministically
// from the index after `from`, or nil when all are dead.
func (p *Pool) nextLiveSched(from int) *Scheduler {
	n := len(p.scheds)
	for i := 1; i <= n; i++ {
		s := p.scheds[(from+i)%n]
		if !s.dead {
			return s
		}
	}
	return nil
}

// Shutdown stops all schedulers; call it (from any running task) after
// every BLT has terminated so the engine can drain. Idempotent.
func (p *Pool) Shutdown(t *kernel.Task) {
	if p.stopped {
		return
	}
	p.stopped = true
	for _, s := range p.scheds {
		s.slot.kick(t)
	}
}

// Stopped reports whether Shutdown ran.
func (p *Pool) Stopped() bool { return p.stopped }

// Timeout bounds for the BLOCKING idle slot's lost-wakeup recovery: the
// first re-check fires after idleWaitBase of virtual time and doubles on
// every consecutive timeout up to idleWaitMax (bounded exponential
// backoff). Timed waits are armed only when the fault plane could drop a
// wake for this task; otherwise the slot sleeps indefinitely exactly as
// before, keeping fault-free schedules bit-identical.
const (
	idleWaitBase = 10 * sim.Microsecond
	idleWaitMax  = 1 * sim.Millisecond
)

// idleSlot implements the two idle policies over a futex word in the
// creator's address space.
type idleSlot struct {
	pool     *Pool
	word     uint64
	sleeping bool
	backoff  sim.Duration // current lost-wake recovery timeout (0 = base)

	// spun accumulates CPU time burned busy-waiting — the power proxy
	// of the idle-policy ablation (§VII: "busy-waiting consumes more
	// power").
	spun sim.Duration
}

func (s *idleSlot) init(p *Pool, creator *kernel.Task) error {
	s.pool = p
	addr, err := creator.Space().Mmap(8, semProt, "blt.idle", true, nil)
	if err != nil {
		return err
	}
	s.word = addr
	return nil
}

// wait idles the task until cond() holds, per the pool's policy.
func (s *idleSlot) wait(t *kernel.Task, cond func() bool) {
	costs := s.pool.kern.Machine().Costs
	if s.pool.cfg.Idle == BusyWait {
		// Table I Seq.7: the idle KC "[yield or suspend]"s — each poll
		// period ends in a sched_yield so that several busy-waiting
		// KCs can share one syscall core (Fig. 6: "a CPU core for
		// executing system-calls may have more than one KCs").
		poll := costs.SpinNotice - costs.SchedYieldNoSwitch
		if poll < 0 {
			poll = 0
		}
		for !cond() {
			t.Charge(poll)
			s.spun += poll
			t.SchedYield()
			s.spun += costs.SchedYieldNoSwitch
		}
		return
	}
	timed := s.pool.kern.FaultArmed(t, "futex_lost_wake")
	for !cond() {
		s.sleeping = true
		var err error
		if timed {
			// A kick aimed at this task may be dropped; re-check the
			// condition on a backoff timer so a lost FUTEX_WAKE costs
			// latency, not liveness.
			d := s.backoff
			if d == 0 {
				d = idleWaitBase
			}
			err = t.FutexWaitTimeout(s.word, 0, d)
			if err == kernel.ErrTimedOut {
				if d *= 2; d > idleWaitMax {
					d = idleWaitMax
				}
				s.backoff = d
			} else {
				s.backoff = 0
			}
		} else {
			err = t.FutexWait(s.word, 0)
		}
		s.sleeping = false
		switch err {
		case nil, kernel.ErrFutexAgain, kernel.ErrInterrupted, kernel.ErrTimedOut:
			// Normal wake, spurious wake, signal or recovery timeout:
			// all just re-check the condition.
		default:
			panic(fmt.Sprintf("blt: idle futex: %v", err))
		}
		// Consume the kick so the next wait sleeps again.
		t.Space().WriteU64(s.word, 0, nil)
	}
}

// kick makes a sleeping waiter re-check its condition. The caller pays
// the wake cost (an atomic store under BUSYWAIT, futex syscall under
// BLOCKING).
func (s *idleSlot) kick(t *kernel.Task) {
	costs := s.pool.kern.Machine().Costs
	if s.pool.cfg.Idle == BusyWait {
		t.Charge(costs.AtomicOp)
		return
	}
	t.Space().WriteU64(s.word, 1, nil)
	t.FutexWake(s.word, 1)
}

// Spun reports the time burned busy-waiting on this slot.
func (s *idleSlot) Spun() sim.Duration { return s.spun }
