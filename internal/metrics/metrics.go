// Package metrics is the deterministic metrics plane of the simulated
// ULP-PiP stack: counters, gauges and log₂-bucketed histograms keyed by
// name in a Registry. All values derive from virtual time and seeded
// schedules, so two runs with the same seed and configuration produce
// byte-identical Dump output — the observability analogue of the chaos
// digest guarantee.
//
// Subsystems consult the registry through nil-checkable handles cached
// at setup (kernel.SetMetrics and friends): with no registry installed
// the hot paths cost one pointer comparison and allocate nothing, which
// the alloc regression tests pin.
//
// Histograms record int64 values (latencies in picoseconds, depths in
// plain units) into power-of-two buckets; quantiles report the bucket
// upper bound, so they are exact functions of the recorded multiset and
// never depend on sampling or float summation order.
package metrics

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
)

// Counter is a monotonically increasing count.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is a signed instantaneous value that also remembers its maximum.
type Gauge struct {
	v   int64
	max int64
	set bool
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	g.v = v
	if !g.set || v > g.max {
		g.max = v
	}
	g.set = true
}

// Add shifts the value by d.
func (g *Gauge) Add(d int64) { g.Set(g.v + d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v }

// Max returns the largest value ever Set.
func (g *Gauge) Max() int64 { return g.max }

// histBuckets is the bucket count: bucket 0 holds zeros, bucket i holds
// values in [2^(i-1), 2^i). Non-negative int64 values occupy 0..63.
const histBuckets = 64

// Histogram is a log₂-bucketed distribution of non-negative int64
// values with exact count, sum, min and max.
type Histogram struct {
	buckets [histBuckets]uint64
	count   uint64
	sum     int64
	min     int64
	max     int64
}

// Observe records one value. Negative values are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the exact sum of observations.
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the exact smallest observation (0 when empty).
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact largest observation (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (0 < q <= 1): an exact, deterministic over-estimate within 2x
// of the true order statistic.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return h.max
}

// bucketUpper is the largest value bucket i can hold.
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return (int64(1) << uint(i)) - 1
}

// merge folds o's observations into h (bucket-wise; min/max/sum exact).
func (h *Histogram) merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Registry holds named metrics. Lookups are get-or-create and return
// stable pointers, so subsystems resolve their handles once at setup and
// never touch the maps on hot paths.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it at zero.
func (r *Registry) Counter(name string) *Counter {
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it at zero.
func (r *Registry) Gauge(name string) *Gauge {
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it empty.
func (r *Registry) Histogram(name string) *Histogram {
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Merge folds o into r: counters and histograms add, gauges keep the
// maximum of the two current values. Addition and max are commutative,
// so merging per-run registries in any order (the parallel bench
// harness) yields the same aggregate.
func (r *Registry) Merge(o *Registry) {
	for name, c := range o.counters {
		r.Counter(name).Add(c.v)
	}
	for name, g := range o.gauges {
		dst := r.Gauge(name)
		if !dst.set || g.v > dst.v {
			dst.Set(g.v)
		}
		if g.max > dst.max {
			dst.max = g.max
		}
	}
	for name, h := range o.hists {
		r.Histogram(name).merge(h)
	}
}

// Sample is one flattened metric value (histograms expand to derived
// .count/.p50/.p90/.p95/.p99/.max/.sum samples).
type Sample struct {
	Kind  string // "counter", "gauge" or "hist"
	Name  string
	Value float64
}

// Snapshot flattens the registry into samples sorted by name — the
// machine-readable view ulpbench merges into its JSON report.
func (r *Registry) Snapshot() []Sample {
	out := make([]Sample, 0, len(r.counters)+len(r.gauges)+7*len(r.hists))
	for name, c := range r.counters {
		out = append(out, Sample{Kind: "counter", Name: name, Value: float64(c.v)})
	}
	for name, g := range r.gauges {
		out = append(out, Sample{Kind: "gauge", Name: name, Value: float64(g.v)})
	}
	for name, h := range r.hists {
		out = append(out,
			Sample{Kind: "hist", Name: name + ".count", Value: float64(h.count)},
			Sample{Kind: "hist", Name: name + ".p50", Value: float64(h.Quantile(0.50))},
			Sample{Kind: "hist", Name: name + ".p90", Value: float64(h.Quantile(0.90))},
			Sample{Kind: "hist", Name: name + ".p95", Value: float64(h.Quantile(0.95))},
			Sample{Kind: "hist", Name: name + ".p99", Value: float64(h.Quantile(0.99))},
			Sample{Kind: "hist", Name: name + ".max", Value: float64(h.Max())},
			Sample{Kind: "hist", Name: name + ".sum", Value: float64(h.sum)},
		)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Dump writes every metric sorted by name, one per line. The output is a
// pure function of the recorded values: same seed and configuration,
// byte-identical dump.
func (r *Registry) Dump(w io.Writer) error {
	type line struct{ name, text string }
	lines := make([]line, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		lines = append(lines, line{name, fmt.Sprintf("counter  %-44s %d", name, c.v)})
	}
	for name, g := range r.gauges {
		lines = append(lines, line{name, fmt.Sprintf("gauge    %-44s %d (max %d)", name, g.v, g.max)})
	}
	for name, h := range r.hists {
		lines = append(lines, line{name, fmt.Sprintf(
			"hist     %-44s count=%d min=%d p50=%d p90=%d p95=%d p99=%d max=%d sum=%d",
			name, h.count, h.Min(), h.Quantile(0.50), h.Quantile(0.90),
			h.Quantile(0.95), h.Quantile(0.99), h.Max(), h.sum)})
	}
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].name != lines[j].name {
			return lines[i].name < lines[j].name
		}
		return lines[i].text < lines[j].text
	})
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l.text); err != nil {
			return err
		}
	}
	return nil
}
