package metrics

import (
	"bytes"
	"math"
	"testing"
)

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 100, 1000, -5} {
		h.Observe(v)
	}
	if h.Count() != 10 {
		t.Errorf("Count = %d, want 10", h.Count())
	}
	if h.Min() != 0 {
		t.Errorf("Min = %d, want 0 (negative clamped)", h.Min())
	}
	if h.Max() != 1000 {
		t.Errorf("Max = %d, want 1000", h.Max())
	}
	if h.Sum() != 1125 {
		t.Errorf("Sum = %d, want 1125", h.Sum())
	}
	// p50: rank 5 of {0,0,1,2,3,4,7,8,100,1000} is 3 -> bucket [2,3] upper 3.
	if got := h.Quantile(0.5); got != 3 {
		t.Errorf("p50 = %d, want 3", got)
	}
	// p100: last value 1000 -> bucket [512,1023] upper 1023.
	if got := h.Quantile(1); got != 1023 {
		t.Errorf("p100 = %d, want 1023", got)
	}
	if got := (&Histogram{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
}

func TestHistogramLargeValues(t *testing.T) {
	h := &Histogram{}
	h.Observe(math.MaxInt64)
	if got := h.Quantile(0.5); got != math.MaxInt64 {
		t.Errorf("p50 of MaxInt64 = %d, want MaxInt64", got)
	}
	if h.Max() != math.MaxInt64 {
		t.Errorf("Max = %d, want MaxInt64", h.Max())
	}
}

func TestRegistryStableHandlesAndDump(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	if r.Counter("a.count") != c {
		t.Fatal("Counter handle not stable")
	}
	c.Add(3)
	r.Gauge("b.gauge").Set(7)
	r.Gauge("b.gauge").Set(2) // max stays 7
	r.Histogram("c.hist").Observe(5)

	var b1, b2 bytes.Buffer
	if err := r.Dump(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.Dump(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("Dump is not reproducible on the same registry")
	}
	out := b1.String()
	for _, want := range []string{"a.count", "b.gauge", "c.hist", "(max 7)"} {
		if !bytes.Contains(b1.Bytes(), []byte(want)) {
			t.Errorf("Dump missing %q in:\n%s", want, out)
		}
	}
}

func TestMergeOrderIndependent(t *testing.T) {
	build := func(vals ...int64) *Registry {
		r := NewRegistry()
		for _, v := range vals {
			r.Counter("n").Add(uint64(v))
			r.Gauge("g").Set(v)
			r.Histogram("h").Observe(v)
		}
		return r
	}
	a, b := build(1, 2), build(10)
	m1 := NewRegistry()
	m1.Merge(a)
	m1.Merge(b)
	m2 := NewRegistry()
	m2.Merge(b)
	m2.Merge(a)
	var d1, d2 bytes.Buffer
	m1.Dump(&d1)
	m2.Dump(&d2)
	if !bytes.Equal(d1.Bytes(), d2.Bytes()) {
		t.Errorf("merge not order-independent:\n%s\nvs\n%s", d1.String(), d2.String())
	}
	if m1.Counter("n").Value() != 13 {
		t.Errorf("merged counter = %d, want 13", m1.Counter("n").Value())
	}
	if m1.Gauge("g").Value() != 10 {
		t.Errorf("merged gauge = %d, want 10 (max of finals)", m1.Gauge("g").Value())
	}
	if m1.Histogram("h").Count() != 3 {
		t.Errorf("merged hist count = %d, want 3", m1.Histogram("h").Count())
	}
}

func TestSnapshotSortedAndExpanded(t *testing.T) {
	r := NewRegistry()
	r.Counter("z").Inc()
	r.Histogram("a.lat").Observe(10)
	s := r.Snapshot()
	if len(s) != 8 { // 7 hist samples + 1 counter
		t.Fatalf("Snapshot len = %d, want 8", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i-1].Name > s[i].Name {
			t.Errorf("Snapshot not sorted: %q before %q", s[i-1].Name, s[i].Name)
		}
	}
	if s[len(s)-1].Name != "z" || s[len(s)-1].Value != 1 {
		t.Errorf("last sample = %+v, want counter z=1", s[len(s)-1])
	}
}

// TestHistogramP90Column pins the derived p90: it must appear in both
// the Snapshot expansion and the Dump rendering, ordered between p50
// and p95 as any monotone quantile set must be.
func TestHistogramP90Column(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if p50, p90, p95 := h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.95); p90 < p50 || p90 > p95 {
		t.Errorf("quantiles not monotone: p50=%d p90=%d p95=%d", p50, p90, p95)
	}
	found := false
	for _, s := range r.Snapshot() {
		if s.Name == "lat.p90" {
			found = true
			if s.Value != float64(h.Quantile(0.90)) {
				t.Errorf("lat.p90 sample = %v, want %d", s.Value, h.Quantile(0.90))
			}
		}
	}
	if !found {
		t.Error("Snapshot missing the .p90 sample")
	}
	var buf bytes.Buffer
	r.Dump(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("p90=")) {
		t.Errorf("Dump missing the p90 column:\n%s", buf.String())
	}
}
