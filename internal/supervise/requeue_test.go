package supervise

// Regression tests for FutexRequeue's supervision integration: the
// wait-for graph must follow a requeued sleeper to its new word, and
// the waiters-per-word rlimit must gate the move onto the destination
// queue. Before the fixes the transfer only updated blockedOn — the
// watchdog kept resolving futex edges through the old address, and a
// requeue could stuff arbitrarily many sleepers onto a capped word.

import (
	"errors"
	"testing"

	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/sim"
)

// TestDeadlockDetectedAcrossRequeue forms the ABBA futex cycle *through
// a requeue*: task A first parks on a neutral word (a leaf — the word
// holds 0), and only a FUTEX_CMP_REQUEUE moves it onto the word holding
// B's PID while B already sleeps on the word holding A's PID. The
// watchdog must record the two-task cycle; before the fix A's wait
// record still named the neutral word, the futex edge resolved to a
// leaf, and the cycle went unreported.
func TestDeadlockDetectedAcrossRequeue(t *testing.T) {
	e, k := newKernel(t)
	p := New(k, Config{
		Tick:         100 * sim.Microsecond,
		StallHorizon: 200 * sim.Microsecond,
	})
	p.Install()
	space := k.NewAddressSpace()
	mmap := func(name string) uint64 {
		addr, err := space.Mmap(8, mem.ProtRead|mem.ProtWrite, name, true, nil)
		if err != nil {
			t.Fatal(err)
		}
		return addr
	}
	gate := mmap("gate")   // neutral word A parks on first; holds 0 forever
	wordA := mmap("wordA") // will hold A's PID; B sleeps here
	wordB := mmap("wordB") // will hold B's PID; A is requeued here
	var aPID, bPID int
	moved := -1
	root := k.NewTask("rq-root", space, func(task *Task) int {
		a := task.Clone("rq-a", kernel.PThreadFlags, func(c *Task) int {
			for {
				switch c.FutexWait(gate, 0) {
				case nil, kernel.ErrFutexAgain, kernel.ErrInterrupted:
				default:
					return 1
				}
			}
		})
		aPID = a.PID()
		space.WriteU64(wordA, uint64(aPID), nil)
		task.Nanosleep(10 * sim.Microsecond) // A parked on the gate
		b := task.Clone("rq-b", kernel.PThreadFlags, func(c *Task) int {
			for {
				// wordA holds A's PID and A never "unlocks".
				switch c.FutexWait(wordA, uint64(aPID)) {
				case nil, kernel.ErrFutexAgain, kernel.ErrInterrupted:
				default:
					return 1
				}
			}
		})
		bPID = b.PID()
		space.WriteU64(wordB, uint64(bPID), nil)
		task.Nanosleep(10 * sim.Microsecond) // B parked on wordA
		// Close the cycle by transfer, not by a fresh wait: A moves from
		// the leaf gate onto wordB (held by B) without waking.
		n, err := task.FutexRequeue(gate, 0, 0, 1, wordB)
		if err != nil {
			return 1
		}
		moved = n
		return 0
	})
	k.Start(root, 0)
	err := e.Run()
	if !errors.Is(err, sim.ErrDeadlock) {
		t.Fatalf("engine: %v, want ErrDeadlock (A and B park forever)", err)
	}
	if moved != 1 {
		t.Fatalf("FutexRequeue moved %d, want 1", moved)
	}
	found := false
	for _, d := range p.Deadlocks() {
		if len(d.PIDs) == 2 {
			pids := map[int]bool{d.PIDs[0]: true, d.PIDs[1]: true}
			if pids[aPID] && pids[bPID] {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("watchdog recorded no A<->B cycle across the requeue (deadlocks: %v) — wait record kept the old word?", p.Deadlocks())
	}
}

// TestRequeueEnforcesFutexWaiterLimit caps waiters-per-word at 3 and
// requeues three sleepers onto a word that already holds two: only one
// may move (2 resident + 1 moved = cap), the excess must stay on the
// source word like a partial requeue, and the rejection must count as a
// FutexWaiters limit hit. Before the fix all three moved and the hit
// counter stayed at zero.
func TestRequeueEnforcesFutexWaiterLimit(t *testing.T) {
	e, k := newKernel(t)
	p := New(k, Config{
		Tick:   -1, // limits only
		Limits: Limits{MaxFutexWaiters: 3},
	})
	p.Install()
	space := k.NewAddressSpace()
	a, err := space.Mmap(8, mem.ProtRead|mem.ProtWrite, "src", true, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := space.Mmap(8, mem.ProtRead|mem.ProtWrite, "dst", true, nil)
	if err != nil {
		t.Fatal(err)
	}
	moved, srcLeft, dstAfter := -1, -1, -1
	root := k.NewTask("lim-root", space, func(task *Task) int {
		sleep := func(word uint64) func(*Task) int {
			return func(c *Task) int {
				if err := c.FutexWait(word, 0); err != nil {
					return 1
				}
				return 0
			}
		}
		for i := 0; i < 3; i++ {
			task.Clone("src-sleeper", kernel.PThreadFlags, sleep(a))
			task.Nanosleep(2 * sim.Microsecond) // pin FIFO order
		}
		task.Clone("dst-sleeper", kernel.PThreadFlags, sleep(b))
		task.Clone("dst-sleeper2", kernel.PThreadFlags, sleep(b))
		task.Nanosleep(10 * sim.Microsecond) // all five parked
		n, err := task.FutexRequeue(a, 0, 0, 3, b)
		if err != nil {
			return 1
		}
		moved = n
		srcLeft = k.FutexWaiters(space.ID, a)
		dstAfter = k.FutexWaiters(space.ID, b)
		task.FutexWake(a, 8) // drain the excess
		task.FutexWake(b, 8)
		return 0
	})
	k.Start(root, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if moved != 1 {
		t.Errorf("FutexRequeue moved %d sleepers onto the capped word, want 1", moved)
	}
	if srcLeft != 2 || dstAfter != 3 {
		t.Errorf("post-requeue waiters src=%d dst=%d, want 2/3 (excess stays on the source)", srcLeft, dstAfter)
	}
	if hits := p.LimitHits(); hits.FutexWaiters != 1 {
		t.Errorf("FutexWaiters limit hits = %d, want 1 (one rejected move ends the transfer)", hits.FutexWaiters)
	}
	st := k.FutexStats()
	if st.Requeued != 1 {
		t.Errorf("ledger requeued=%d, want 1", st.Requeued)
	}
	if n := k.ResidualFutexWaiters(); n != 0 {
		t.Errorf("%d residual futex waiters", n)
	}
}
