package supervise

import "repro/internal/sim"

// RestartPolicy parameterizes a Restarter: seeded, jittered exponential
// backoff with a failure budget. Zero fields take defaults.
type RestartPolicy struct {
	// Base is the backoff after the first failure in a window; each
	// further failure doubles it up to Max.
	Base sim.Duration
	// Max caps the backoff.
	Max sim.Duration
	// Window is the sliding failure window: a failure more than Window
	// after the window opened resets the count (the entity proved it can
	// run, so its budget refills).
	Window sim.Duration
	// Budget is how many failures one window tolerates; exceeding it
	// quarantines the entity (no further restarts).
	Budget int
}

// Policy defaults.
const (
	DefaultRestartBase   = 50 * sim.Microsecond
	DefaultRestartMax    = 5 * sim.Millisecond
	DefaultRestartWindow = 10 * sim.Millisecond
	DefaultRestartBudget = 8
)

func (rp RestartPolicy) withDefaults() RestartPolicy {
	if rp.Base == 0 {
		rp.Base = DefaultRestartBase
	}
	if rp.Max == 0 {
		rp.Max = DefaultRestartMax
	}
	if rp.Window == 0 {
		rp.Window = DefaultRestartWindow
	}
	if rp.Budget == 0 {
		rp.Budget = DefaultRestartBudget
	}
	return rp
}

// Restarter is one entity's restart budget (an AIO helper, a KC host).
// Deterministic: the jitter RNG lane is derived from the plane seed and
// the entity name, so equal seeds make equal respawn decisions.
type Restarter struct {
	plane *Plane
	pol   RestartPolicy
	rng   *sim.RNG
	name  string

	failures    int
	windowStart sim.Time
	quarantined bool
	allowed     uint64
}

// Restarter creates (and registers) a restart budget for the named
// entity under the plane's policy.
func (p *Plane) Restarter(name string) *Restarter {
	r := &Restarter{
		plane: p,
		pol:   p.cfg.Restart,
		rng:   sim.NewRNG(mixSeed(p.cfg.Seed, fnv64(name))),
		name:  name,
	}
	p.restarters = append(p.restarters, r)
	return r
}

// Next records one failure at virtual time now and answers whether a
// respawn is allowed — and if so, after what backoff delay. Once the
// budget is exhausted within the window the entity is quarantined and
// every later call returns false.
func (r *Restarter) Next(now sim.Time) (delay sim.Duration, ok bool) {
	if r.quarantined {
		return 0, false
	}
	if r.failures > 0 && now.Sub(r.windowStart) > r.pol.Window {
		r.failures = 0
	}
	if r.failures == 0 {
		r.windowStart = now
	}
	r.failures++
	if r.failures > r.pol.Budget {
		r.quarantined = true
		r.plane.quarantines++
		if r.plane.mQuarantines != nil {
			r.plane.mQuarantines.Inc()
		}
		if tr := r.plane.e.Tracer(); tr != nil {
			tr.Add(now, "supervise", "quarantine: %s exhausted its restart budget (%d failures in %v)",
				r.name, r.failures-1, r.pol.Window)
		}
		return 0, false
	}
	d := r.pol.Base
	for i := 1; i < r.failures && d < r.pol.Max; i++ {
		d *= 2
	}
	if d > r.pol.Max {
		d = r.pol.Max
	}
	// Jitter ±25% so respawns of distinct entities decorrelate.
	delay = r.rng.Duration(d-d/4, d+d/4)
	r.allowed++
	if r.plane.mRestarts != nil {
		r.plane.mRestarts.Inc()
	}
	return delay, true
}

// Quarantined reports whether the budget is exhausted.
func (r *Restarter) Quarantined() bool { return r.quarantined }

// Allowed reports how many respawns the budget granted.
func (r *Restarter) Allowed() uint64 { return r.allowed }

// Name returns the entity name.
func (r *Restarter) Name() string { return r.name }

// fnv64 hashes a name to a seed lane (FNV-1a).
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mixSeed combines the plane seed with a lane (SplitMix64 finalizer), so
// per-entity streams are independent, as internal/fault does per spec.
func mixSeed(seed, lane uint64) uint64 {
	z := seed + lane*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
