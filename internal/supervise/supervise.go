// Package supervise is the kernel's self-healing plane: a deterministic,
// virtual-time watchdog that detects deadlocked or stalled workloads,
// rlimit-style resource caps enforced at the kernel's admission sites,
// and seeded exponential-backoff restart budgets for the runtime layers
// that respawn fault-killed helpers.
//
// The plane implements kernel.Supervisor. It keeps a wait-for graph over
// every blocked task — join waits point at their target, futex waits
// point at the task whose TID the word holds (the FUTEX_LOCK_PI owner
// convention), pipe/sleep/child waits are leaves — and a periodic
// watchdog tick walks it: cycles are reported as deadlocks, tasks
// blocked past the stall horizon as stalls. All bookkeeping is intrusive
// (one pooled record per blocked task, doubly linked in block order), so
// a healthy tick allocates nothing.
//
// Everything is virtual-time and seeded: two runs of the same workload
// with the same plane configuration make identical decisions. With the
// plane absent the kernel schedules no watchdog events at all, so
// supervision-off runs are byte-identical to builds without it.
package supervise

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Defaults for Config's zero values.
const (
	DefaultTick         = 1 * sim.Millisecond
	DefaultStallHorizon = 50 * sim.Millisecond
)

// Record caps: the first few stalls/deadlocks are kept verbatim for
// oracles and reports; beyond that only the counters grow.
const (
	maxStallRecords    = 64
	maxDeadlockRecords = 16
)

// Limits are rlimit-style caps enforced at the kernel's admission sites.
// Zero means unlimited.
type Limits struct {
	// MaxThreads caps live cloned children per parent task (EAGAIN at
	// TryClone).
	MaxThreads int
	// MaxFDs caps open descriptors per FD table (EMFILE at Open).
	MaxFDs int
	// MaxTimers caps armed futex-wait timeouts per task (EAGAIN at a
	// timed FutexWait).
	MaxTimers int
	// MaxFutexWaiters caps sleepers per futex word (EAGAIN at FutexWait).
	MaxFutexWaiters int
}

// LimitHits counts admissions rejected per limit.
type LimitHits struct {
	Threads, FDs, Timers, FutexWaiters uint64
}

// Config parameterizes a Plane.
type Config struct {
	// Tick is the watchdog period (0 = DefaultTick; negative disables
	// the watchdog, keeping only limits and restart budgets).
	Tick sim.Duration
	// StallHorizon flags tasks blocked at least this long (0 =
	// DefaultStallHorizon).
	StallHorizon sim.Duration
	Limits       Limits
	// Restart parameterizes Restarter budgets (zero fields default).
	Restart RestartPolicy
	// Seed feeds the restart jitter RNG (per-restarter lanes are derived
	// from it and the restarter name).
	Seed uint64
	// Metrics, when set, receives supervise.* counters.
	Metrics *metrics.Registry
}

// Stall is one task flagged blocked past the stall horizon.
type Stall struct {
	At    sim.Time // when the watchdog flagged it
	Since sim.Time // when the task blocked
	PID   int
	Task  string
	Class kernel.WaitClass
}

// Deadlock is one wait-for cycle the watchdog found. PIDs follow the
// cycle order (each waits on the next, the last on the first).
type Deadlock struct {
	At    sim.Time
	PIDs  []int
	Tasks []string
}

// waitRec is the plane's per-blocked-task wait-graph node: pooled,
// intrusively linked in block order, attached to the task through its
// supervision tag.
type waitRec struct {
	t      *kernel.Task
	class  kernel.WaitClass
	addr   uint64
	target *kernel.Task
	since  sim.Time

	stalled    bool
	deadlocked bool
	mark       uint64 // cycle-walk generation

	prev, next *waitRec
}

// Plane implements kernel.Supervisor.
type Plane struct {
	k   *kernel.Kernel
	e   *sim.Engine
	cfg Config

	// Blocked-task list (block order) plus a freelist of records.
	head, tail *waitRec
	free       *waitRec
	nblocked   int

	// kids counts live cloned children per parent; timers counts armed
	// futex-wait timeouts per task. Each map exists only when its limit
	// is configured, so unlimited runs skip the bookkeeping entirely.
	kids   map[*kernel.Task]int
	timers map[*kernel.Task]int

	hits LimitHits

	gen        uint64
	ticks      uint64
	stallCount uint64
	stalls     []Stall
	deadlocks  []Deadlock
	scratch    []*waitRec // cycle-walk path, reused across ticks

	restarters  []*Restarter
	quarantines uint64

	tickFn func()

	mTicks, mStalls, mDeadlocks *metrics.Counter
	mLimThreads, mLimFDs        *metrics.Counter
	mLimTimers, mLimWaiters     *metrics.Counter
	mRestarts, mQuarantines     *metrics.Counter
}

// New creates a plane for the kernel. Call Install before the
// simulation runs.
func New(k *kernel.Kernel, cfg Config) *Plane {
	if cfg.Tick == 0 {
		cfg.Tick = DefaultTick
	}
	if cfg.StallHorizon == 0 {
		cfg.StallHorizon = DefaultStallHorizon
	}
	cfg.Restart = cfg.Restart.withDefaults()
	p := &Plane{
		k:       k,
		e:       k.Engine(),
		cfg:     cfg,
		scratch: make([]*waitRec, 0, 64),
	}
	p.tickFn = p.tick
	if cfg.Limits.MaxThreads > 0 {
		p.kids = make(map[*kernel.Task]int)
	}
	if cfg.Limits.MaxTimers > 0 {
		p.timers = make(map[*kernel.Task]int)
	}
	if reg := cfg.Metrics; reg != nil {
		p.mTicks = reg.Counter("supervise.ticks")
		p.mStalls = reg.Counter("supervise.stalls")
		p.mDeadlocks = reg.Counter("supervise.deadlocks")
		p.mLimThreads = reg.Counter("supervise.limit.threads")
		p.mLimFDs = reg.Counter("supervise.limit.fds")
		p.mLimTimers = reg.Counter("supervise.limit.timers")
		p.mLimWaiters = reg.Counter("supervise.limit.futex_waiters")
		p.mRestarts = reg.Counter("supervise.restart.allowed")
		p.mQuarantines = reg.Counter("supervise.restart.quarantined")
	}
	return p
}

// ForKernel returns the plane installed on k, or nil. Runtime layers
// (blt, aio) use it to find their restart budgets.
func ForKernel(k *kernel.Kernel) *Plane {
	p, _ := k.Supervisor().(*Plane)
	return p
}

// Install attaches the plane to its kernel and arms the watchdog. Must
// run before the simulation does: the watchdog schedules engine events,
// and supervised runs are only reproducible when the plane ticks from
// virtual time zero.
func (p *Plane) Install() {
	p.k.SetSupervisor(p)
	if p.cfg.Tick > 0 {
		p.e.After(p.cfg.Tick, p.tickFn)
	}
}

// Config returns the effective (defaulted) configuration.
func (p *Plane) Config() Config { return p.cfg }

// --- kernel.Supervisor hooks -------------------------------------------

// OnBlock implements kernel.Supervisor.
func (p *Plane) OnBlock(t *kernel.Task) {
	rec := p.free
	if rec != nil {
		p.free = rec.next
		*rec = waitRec{}
	} else {
		rec = &waitRec{}
	}
	rec.t = t
	rec.class = t.WaitClass()
	rec.addr = t.WaitAddr()
	rec.target = t.WaitTarget()
	rec.since = p.e.Now()
	rec.prev = p.tail
	if p.tail != nil {
		p.tail.next = rec
	} else {
		p.head = rec
	}
	p.tail = rec
	p.nblocked++
	t.SetSupervisionTag(rec)
}

// OnUnblock implements kernel.Supervisor.
func (p *Plane) OnUnblock(t *kernel.Task) {
	rec, _ := t.SupervisionTag().(*waitRec)
	if rec == nil {
		return
	}
	t.SetSupervisionTag(nil)
	if rec.prev != nil {
		rec.prev.next = rec.next
	} else {
		p.head = rec.next
	}
	if rec.next != nil {
		rec.next.prev = rec.prev
	} else {
		p.tail = rec.prev
	}
	p.nblocked--
	rec.t, rec.target, rec.prev = nil, nil, nil
	rec.next = p.free
	p.free = rec
}

// OnClone implements kernel.Supervisor.
func (p *Plane) OnClone(parent, child *kernel.Task) {
	if p.kids != nil {
		p.kids[parent]++
	}
}

// OnExit implements kernel.Supervisor.
func (p *Plane) OnExit(t *kernel.Task) {
	if p.kids != nil {
		if parent := t.Parent(); parent != nil {
			if n := p.kids[parent]; n <= 1 {
				delete(p.kids, parent)
			} else {
				p.kids[parent] = n - 1
			}
		}
		delete(p.kids, t)
	}
	if p.timers != nil {
		delete(p.timers, t)
	}
}

// OnTimerFired implements kernel.Supervisor.
func (p *Plane) OnTimerFired(t *kernel.Task) {
	if p.timers == nil {
		return
	}
	if n, ok := p.timers[t]; ok {
		if n <= 1 {
			delete(p.timers, t)
		} else {
			p.timers[t] = n - 1
		}
	}
}

// OnFutexRequeue implements kernel.Supervisor: a requeued sleeper now
// waits on the destination word, so its wait-graph record must name it —
// otherwise the watchdog keeps resolving the futex edge through the old
// word and a deadlock formed across the requeue goes undetected.
func (p *Plane) OnFutexRequeue(t *kernel.Task, addr uint64) {
	if rec, _ := t.SupervisionTag().(*waitRec); rec != nil {
		rec.addr = addr
	}
}

// AdmitThread implements kernel.Supervisor.
func (p *Plane) AdmitThread(parent *kernel.Task) error {
	if p.kids == nil || p.kids[parent] < p.cfg.Limits.MaxThreads {
		return nil
	}
	p.hits.Threads++
	if p.mLimThreads != nil {
		p.mLimThreads.Inc()
	}
	return kernel.ErrThreadLimit
}

// AdmitFD implements kernel.Supervisor.
func (p *Plane) AdmitFD(t *kernel.Task) error {
	if p.cfg.Limits.MaxFDs <= 0 || t.FDTable().Len() < p.cfg.Limits.MaxFDs {
		return nil
	}
	p.hits.FDs++
	if p.mLimFDs != nil {
		p.mLimFDs.Inc()
	}
	return kernel.ErrFDLimit
}

// AdmitTimer implements kernel.Supervisor.
func (p *Plane) AdmitTimer(t *kernel.Task) error {
	if p.timers == nil {
		return nil
	}
	if p.timers[t] >= p.cfg.Limits.MaxTimers {
		p.hits.Timers++
		if p.mLimTimers != nil {
			p.mLimTimers.Inc()
		}
		return kernel.ErrTimerLimit
	}
	p.timers[t]++
	return nil
}

// AdmitFutexWait implements kernel.Supervisor.
func (p *Plane) AdmitFutexWait(t *kernel.Task, waiters int) error {
	if p.cfg.Limits.MaxFutexWaiters <= 0 || waiters < p.cfg.Limits.MaxFutexWaiters {
		return nil
	}
	p.hits.FutexWaiters++
	if p.mLimWaiters != nil {
		p.mLimWaiters.Inc()
	}
	return kernel.ErrFutexWaiterLimit
}

// --- watchdog ----------------------------------------------------------

// tick is the watchdog body: flag stalls, find wait-for cycles, rearm.
// It stops rearming once the workload has drained (live procs gone) or
// is permanently stuck (no other pending events while tasks still
// block) — in the latter case the final detection pass has already run
// and the engine's own deadlock report follows, so the watchdog must
// not keep the event queue alive forever.
func (p *Plane) tick() {
	p.ticks++
	if p.mTicks != nil {
		p.mTicks.Inc()
	}
	now := p.e.Now()
	p.scanStalls(now)
	p.scanCycles(now)
	if p.e.LiveProcs() == 0 || p.e.PendingEvents() == 0 {
		return
	}
	p.e.After(p.cfg.Tick, p.tickFn)
}

func (p *Plane) scanStalls(now sim.Time) {
	for rec := p.head; rec != nil; rec = rec.next {
		if rec.stalled || now.Sub(rec.since) < p.cfg.StallHorizon {
			continue
		}
		rec.stalled = true
		p.stallCount++
		if p.mStalls != nil {
			p.mStalls.Inc()
		}
		if len(p.stalls) < maxStallRecords {
			p.stalls = append(p.stalls, Stall{
				At: now, Since: rec.since,
				PID: rec.t.PID(), Task: rec.t.Name(), Class: rec.class,
			})
		}
		if tr := p.e.Tracer(); tr != nil {
			tr.Add(now, "supervise", "stall: %s(pid=%d) blocked in %s for %v",
				rec.t.Name(), rec.t.PID(), rec.class, now.Sub(rec.since))
		}
	}
}

// scanCycles walks the wait-for graph from every blocked task. Edges:
// a join wait points at its target; a futex wait points at the task
// whose TID the word currently holds (owner-in-word, the FUTEX_LOCK_PI
// convention) when that task is itself blocked; everything else is a
// leaf. Each walk colors nodes with the tick's generation, so the scan
// is O(blocked) per tick and allocation-free once the path scratch has
// grown to the longest chain.
func (p *Plane) scanCycles(now sim.Time) {
	p.gen++
	path := p.scratch[:0]
	for rec := p.head; rec != nil; rec = rec.next {
		if rec.mark == p.gen || rec.deadlocked {
			continue
		}
		path = path[:0]
		cur := rec
		for {
			cur.mark = p.gen
			path = append(path, cur)
			next := p.edge(cur)
			if next == nil || next.deadlocked {
				break
			}
			if next.mark == p.gen {
				// Revisited this tick: a cycle iff it is on the current
				// path (otherwise the chain merges into an already-walked
				// tree that resolved acyclic).
				for i, r := range path {
					if r == next {
						p.recordCycle(now, path[i:])
						break
					}
				}
				break
			}
			cur = next
		}
	}
	p.scratch = path[:0]
}

// edge resolves rec's wait-for edge, or nil for a leaf.
func (p *Plane) edge(rec *waitRec) *waitRec {
	var holder *kernel.Task
	switch rec.class {
	case kernel.WaitJoin:
		holder = rec.target
	case kernel.WaitFutex:
		space := rec.t.Space()
		if space == nil {
			return nil
		}
		v, err := space.ReadU64(rec.addr, nil)
		if err != nil || v == 0 || v > uint64(1<<31) {
			return nil
		}
		holder = p.k.Task(int(v))
	default:
		return nil
	}
	if holder == nil {
		return nil
	}
	next, _ := holder.SupervisionTag().(*waitRec)
	return next
}

func (p *Plane) recordCycle(now sim.Time, cycle []*waitRec) {
	if p.mDeadlocks != nil {
		p.mDeadlocks.Inc()
	}
	for _, r := range cycle {
		r.deadlocked = true
	}
	if len(p.deadlocks) >= maxDeadlockRecords {
		return
	}
	d := Deadlock{At: now}
	for _, r := range cycle {
		d.PIDs = append(d.PIDs, r.t.PID())
		d.Tasks = append(d.Tasks, r.t.Name())
	}
	p.deadlocks = append(p.deadlocks, d)
	if tr := p.e.Tracer(); tr != nil {
		tr.Add(now, "supervise", "deadlock cycle: %v", d.Tasks)
	}
}

// --- reports -----------------------------------------------------------

// Ticks reports how many watchdog ticks ran.
func (p *Plane) Ticks() uint64 { return p.ticks }

// Blocked reports the number of currently blocked tasks.
func (p *Plane) Blocked() int { return p.nblocked }

// StallCount reports how many stalls the watchdog flagged in total.
func (p *Plane) StallCount() uint64 { return p.stallCount }

// Stalls returns the first recorded stalls (capped; see StallCount for
// the total).
func (p *Plane) Stalls() []Stall { return p.stalls }

// Deadlocks returns the wait-for cycles found.
func (p *Plane) Deadlocks() []Deadlock { return p.deadlocks }

// LimitHits reports rejected admissions per limit.
func (p *Plane) LimitHits() LimitHits { return p.hits }

// Quarantines reports how many restarters exhausted their budget.
func (p *Plane) Quarantines() uint64 { return p.quarantines }

// Summary renders a one-line health report.
func (p *Plane) Summary() string {
	return fmt.Sprintf("supervise: ticks=%d blocked=%d stalls=%d deadlocks=%d limit_hits={thr:%d fd:%d tmr:%d fxw:%d} quarantines=%d",
		p.ticks, p.nblocked, p.stallCount, len(p.deadlocks),
		p.hits.Threads, p.hits.FDs, p.hits.Timers, p.hits.FutexWaiters, p.quarantines)
}
