package supervise

import (
	"errors"
	"testing"

	"repro/internal/arch"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/sim"
)

func newKernel(t *testing.T) (*sim.Engine, *kernel.Kernel) {
	t.Helper()
	e := sim.New()
	return e, kernel.New(e, arch.Wallaby())
}

// TestLimitsRejectAtAdmission drives each rlimit over its cap and checks
// the kernel's admission sites fail with the matching error, count the
// hit, and create no state (the futex table in particular must not grow
// from a rejected wait).
func TestLimitsRejectAtAdmission(t *testing.T) {
	e, k := newKernel(t)
	p := New(k, Config{
		Tick: -1, // limits only
		Limits: Limits{
			MaxThreads:      2,
			MaxFDs:          2,
			MaxTimers:       1,
			MaxFutexWaiters: 1,
		},
	})
	p.Install()
	space := k.NewAddressSpace()
	a, err := space.Mmap(8, mem.ProtRead|mem.ProtWrite, "word-a", true, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := space.Mmap(8, mem.ProtRead|mem.ProtWrite, "word-b", true, nil)
	if err != nil {
		t.Fatal(err)
	}
	var cloneErr, fdErr error
	root := k.NewTask("root", space, func(task *Task) int { return rootBody(t, k, task, a, b, &cloneErr, &fdErr) })
	k.Start(root, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if !errors.Is(cloneErr, kernel.ErrThreadLimit) {
		t.Errorf("third clone: %v, want ErrThreadLimit", cloneErr)
	}
	if !errors.Is(fdErr, kernel.ErrFDLimit) {
		t.Errorf("third open: %v, want ErrFDLimit", fdErr)
	}
	hits := p.LimitHits()
	if hits.Threads != 1 || hits.FDs != 1 || hits.Timers != 1 || hits.FutexWaiters != 1 {
		t.Errorf("limit hits %+v, want one per limit", hits)
	}
	if n := k.FutexTableSize(); n != 0 {
		t.Errorf("futex table retains %d queues (rejected wait populated the table?)", n)
	}
}

type Task = kernel.Task

func rootBody(t *testing.T, k *kernel.Kernel, task *Task, a, b uint64, cloneErr, fdErr *error) int {
	// MaxFutexWaiters=1 per word: c1 parks on a, then c2's wait on a is
	// rejected and it parks on b instead — leaving both children LIVE,
	// which is what makes the MaxThreads=2 check below meaningful (an
	// exited child is uncounted the moment it exits).
	var waitErr error
	c1 := task.Clone("kid", kernel.PThreadFlags, func(c *Task) int {
		c.FutexWait(a, 0)
		return 0
	})
	task.Nanosleep(10 * sim.Microsecond) // c1 parked on a
	c2 := task.Clone("kid2", kernel.PThreadFlags, func(c *Task) int {
		waitErr = c.FutexWait(a, 0)
		c.FutexWait(b, 0)
		return 0
	})
	task.Nanosleep(10 * sim.Microsecond) // c2 bounced off a, parked on b
	if !errors.Is(waitErr, kernel.ErrFutexWaiterLimit) {
		t.Errorf("second waiter on a: %v, want ErrFutexWaiterLimit", waitErr)
	}
	if _, err := task.TryClone("kid3", kernel.PThreadFlags, func(c *Task) int { return 0 }); err == nil {
		t.Errorf("third clone admitted over MaxThreads=2")
	} else {
		*cloneErr = err
	}

	// MaxTimers=1 per task: while one timeout is armed, arming a second
	// on the same task must reject. One task cannot hold two futex
	// timeouts at once through the syscall surface, so exercise the
	// admission pair directly, then release the slot as a timer fire
	// would.
	if err := k.Supervisor().AdmitTimer(task); err != nil {
		t.Errorf("first AdmitTimer: %v", err)
	}
	if err := k.Supervisor().AdmitTimer(task); !errors.Is(err, kernel.ErrTimerLimit) {
		t.Errorf("second AdmitTimer: %v, want ErrTimerLimit", err)
	}
	k.Supervisor().OnTimerFired(task) // release the armed slot

	// MaxFDs=2 per table.
	fd1, err := task.Open("/a", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Errorf("open 1: %v", err)
	}
	if _, err := task.Open("/b", fs.OCreate|fs.ORdWr); err != nil {
		t.Errorf("open 2: %v", err)
	}
	if _, err := task.Open("/c", fs.OCreate|fs.ORdWr); err == nil {
		t.Errorf("third open admitted over MaxFDs=2")
	} else {
		*fdErr = err
	}
	task.Close(fd1)
	if _, err := task.Open("/c", fs.OCreate|fs.ORdWr); err != nil {
		t.Errorf("open after close: %v (closed fd not released from the cap?)", err)
	}

	task.FutexWake(a, 1)
	task.FutexWake(b, 1)
	task.Join(c1)
	task.Join(c2)
	return 0
}

// TestRestarterBackoffAndQuarantine checks the budget arithmetic: backoff
// doubles from Base to Max with ±25% jitter, the window resets the
// failure count, and exhausting the budget quarantines permanently.
func TestRestarterBackoffAndQuarantine(t *testing.T) {
	_, k := newKernel(t)
	pol := RestartPolicy{Base: 100 * sim.Microsecond, Max: 800 * sim.Microsecond,
		Window: 10 * sim.Millisecond, Budget: 4}
	p := New(k, Config{Tick: -1, Restart: pol, Seed: 42})
	r := p.Restarter("unit")
	now := sim.Time(0)
	wantCenters := []sim.Duration{100, 200, 400, 800} // µs; capped at Max
	for i, c := range wantCenters {
		center := c * sim.Microsecond
		d, ok := r.Next(now)
		if !ok {
			t.Fatalf("failure %d: quarantined inside the budget", i+1)
		}
		if lo, hi := center-center/4, center+center/4; d < lo || d > hi {
			t.Errorf("failure %d: backoff %v outside [%v, %v]", i+1, d, lo, hi)
		}
		now = now.Add(time100us())
	}
	if d, ok := r.Next(now); ok {
		t.Fatalf("failure 5 allowed (%v) over Budget=4", d)
	}
	if !r.Quarantined() {
		t.Error("restarter not quarantined after exhausting its budget")
	}
	if _, ok := r.Next(now.Add(1 * sim.Second)); ok {
		t.Error("quarantine lifted by time passing; must be permanent")
	}
	if got := p.Quarantines(); got != 1 {
		t.Errorf("plane counts %d quarantines, want 1", got)
	}
	if got := r.Allowed(); got != 4 {
		t.Errorf("restarter granted %d respawns, want 4", got)
	}

	// A fresh lane that fails slower than the window never escalates.
	s := p.Restarter("slow")
	now = sim.Time(0)
	for i := 0; i < 20; i++ {
		d, ok := s.Next(now)
		if !ok {
			t.Fatalf("slow failure %d quarantined despite window resets", i+1)
		}
		if lo, hi := pol.Base-pol.Base/4, pol.Base+pol.Base/4; d < lo || d > hi {
			t.Errorf("slow failure %d: backoff %v not at Base (window did not reset)", i+1, d)
		}
		now = now.Add(pol.Window + 1*sim.Microsecond)
	}
}

func time100us() sim.Duration { return 100 * sim.Microsecond }

// TestRestarterDeterminism: same seed, same lane name → identical delay
// sequences; a different lane diverges.
func TestRestarterDeterminism(t *testing.T) {
	mk := func(seed uint64, lane string) []sim.Duration {
		_, k := newKernel(t)
		p := New(k, Config{Tick: -1, Seed: seed})
		r := p.Restarter(lane)
		var ds []sim.Duration
		for i := 0; i < 5; i++ {
			d, ok := r.Next(sim.Time(0))
			if !ok {
				t.Fatal("quarantined inside default budget")
			}
			ds = append(ds, d)
		}
		return ds
	}
	a, b := mk(7, "kc.x"), mk(7, "kc.x")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed+lane diverged at %d: %v vs %v", i, a, b)
		}
	}
	c := mk(7, "kc.y")
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("distinct lanes produced identical jitter sequences")
	}
}
