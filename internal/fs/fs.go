// Package fs implements the simulated tmpfs file system used by the
// paper's I/O evaluation (Fig. 7/8): an in-memory namespace of regular
// files with open/read/write/close semantics. The paper runs its
// open-write-close workload on tmpfs specifically "to exclude the
// variation of actual disk access" — an in-memory store is therefore the
// faithful model, with all timing charged by the kernel layer from the
// machine cost model.
package fs

import (
	"errors"
	"fmt"
	"sort"
)

// Errors reported by the file system.
var (
	ErrNotFound  = errors.New("fs: no such file")
	ErrExists    = errors.New("fs: file exists")
	ErrClosed    = errors.New("fs: file already closed")
	ErrBadFlags  = errors.New("fs: invalid open flags")
	ErrIsOpen    = errors.New("fs: file is open")
	ErrReadOnly  = errors.New("fs: file not open for writing")
	ErrWriteOnly = errors.New("fs: file not open for reading")
)

// OpenFlags mirror the POSIX open(2) flags the workloads need.
type OpenFlags uint32

// Flag bits.
const (
	ORdOnly OpenFlags = 0
	OWrOnly OpenFlags = 1 << iota
	ORdWr
	OCreate
	OTrunc
	OAppend
	OExcl
)

func (f OpenFlags) readable() bool { return f&OWrOnly == 0 }
func (f OpenFlags) writable() bool { return f&(OWrOnly|ORdWr) != 0 }

// Inode is one regular file's metadata and contents.
type Inode struct {
	Path    string
	data    []byte
	nlink   int
	openers int
}

// Size reports the file length in bytes.
func (ino *Inode) Size() int { return len(ino.data) }

// FileSystem is a flat-namespace tmpfs instance.
type FileSystem struct {
	files map[string]*Inode

	// Stats.
	opens, writes, reads, closes uint64
	bytesWritten, bytesRead      uint64
}

// New creates an empty file system.
func New() *FileSystem {
	return &FileSystem{files: make(map[string]*Inode)}
}

// File is an open file description (what an fd points at).
type File struct {
	fs     *FileSystem
	inode  *Inode
	flags  OpenFlags
	pos    int
	closed bool
}

// Open opens (and with OCreate, creates) the file at path.
func (fs *FileSystem) Open(path string, flags OpenFlags) (*File, error) {
	if path == "" {
		return nil, fmt.Errorf("%w: empty path", ErrNotFound)
	}
	ino, ok := fs.files[path]
	if !ok {
		if flags&OCreate == 0 {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
		}
		ino = &Inode{Path: path, nlink: 1}
		fs.files[path] = ino
	} else if flags&OExcl != 0 {
		return nil, fmt.Errorf("%w: %s", ErrExists, path)
	}
	if flags&OTrunc != 0 && flags.writable() {
		ino.data = ino.data[:0]
	}
	ino.openers++
	fs.opens++
	f := &File{fs: fs, inode: ino, flags: flags}
	if flags&OAppend != 0 {
		f.pos = len(ino.data)
	}
	return f, nil
}

// Write appends/overwrites at the file position and returns the byte
// count.
func (f *File) Write(data []byte) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	if !f.flags.writable() {
		return 0, ErrReadOnly
	}
	end := f.pos + len(data)
	if end > len(f.inode.data) {
		grown := make([]byte, end)
		copy(grown, f.inode.data)
		f.inode.data = grown
	}
	copy(f.inode.data[f.pos:end], data)
	f.pos = end
	f.fs.writes++
	f.fs.bytesWritten += uint64(len(data))
	return len(data), nil
}

// Read fills buf from the file position and returns the byte count; 0 at
// EOF.
func (f *File) Read(buf []byte) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	if !f.flags.readable() {
		return 0, ErrWriteOnly
	}
	if f.pos >= len(f.inode.data) {
		return 0, nil
	}
	n := copy(buf, f.inode.data[f.pos:])
	f.pos += n
	f.fs.reads++
	f.fs.bytesRead += uint64(n)
	return n, nil
}

// Seek sets the absolute file position.
func (f *File) Seek(pos int) error {
	if f.closed {
		return ErrClosed
	}
	if pos < 0 {
		return fmt.Errorf("fs: negative seek %d", pos)
	}
	f.pos = pos
	return nil
}

// Close releases the open file description. Double close is an error, as
// it is a real bug in real programs.
func (f *File) Close() error {
	if f.closed {
		return ErrClosed
	}
	f.closed = true
	f.inode.openers--
	f.fs.closes++
	return nil
}

// Inode exposes the file's inode (for tests and size queries).
func (f *File) Inode() *Inode { return f.inode }

// Unlink removes a file from the namespace. Open descriptions keep
// working (POSIX semantics); the inode is unreachable for new opens.
func (fs *FileSystem) Unlink(path string) error {
	ino, ok := fs.files[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	ino.nlink--
	delete(fs.files, path)
	return nil
}

// Stat returns the inode for path.
func (fs *FileSystem) Stat(path string) (*Inode, error) {
	ino, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return ino, nil
}

// List returns all paths in sorted order.
func (fs *FileSystem) List() []string {
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Stats reports cumulative operation counts.
func (fs *FileSystem) Stats() (opens, writes, reads, closes, bytesW, bytesR uint64) {
	return fs.opens, fs.writes, fs.reads, fs.closes, fs.bytesWritten, fs.bytesRead
}
