package fs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestOpenCreateWriteReadClose(t *testing.T) {
	f := New()
	w, err := f.Open("/tmp/a", OWrOnly|OCreate)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := w.Write([]byte("hello")); err != nil || n != 5 {
		t.Fatalf("Write = %d,%v", n, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := f.Open("/tmp/a", ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := r.Read(buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("Read = %q,%v", buf[:n], err)
	}
	if n, _ := r.Read(buf); n != 0 {
		t.Errorf("Read at EOF = %d, want 0", n)
	}
	r.Close()
}

func TestOpenMissingWithoutCreate(t *testing.T) {
	f := New()
	if _, err := f.Open("/nope", ORdOnly); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestOTruncResets(t *testing.T) {
	f := New()
	w, _ := f.Open("/a", OWrOnly|OCreate)
	w.Write([]byte("0123456789"))
	w.Close()
	w2, _ := f.Open("/a", OWrOnly|OTrunc)
	if w2.Inode().Size() != 0 {
		t.Errorf("size after O_TRUNC = %d, want 0", w2.Inode().Size())
	}
	w2.Close()
}

func TestOExclOnExisting(t *testing.T) {
	f := New()
	w, _ := f.Open("/a", OWrOnly|OCreate)
	w.Close()
	if _, err := f.Open("/a", OWrOnly|OCreate|OExcl); !errors.Is(err, ErrExists) {
		t.Errorf("err = %v, want ErrExists", err)
	}
}

func TestAppendMode(t *testing.T) {
	f := New()
	w, _ := f.Open("/a", OWrOnly|OCreate)
	w.Write([]byte("abc"))
	w.Close()
	a, _ := f.Open("/a", OWrOnly|OAppend)
	a.Write([]byte("def"))
	a.Close()
	r, _ := f.Open("/a", ORdOnly)
	buf := make([]byte, 16)
	n, _ := r.Read(buf)
	if string(buf[:n]) != "abcdef" {
		t.Errorf("appended content = %q", buf[:n])
	}
}

func TestPermissionEnforcement(t *testing.T) {
	f := New()
	w, _ := f.Open("/a", OWrOnly|OCreate)
	if _, err := w.Read(make([]byte, 1)); !errors.Is(err, ErrWriteOnly) {
		t.Errorf("read on O_WRONLY: %v", err)
	}
	w.Close()
	r, _ := f.Open("/a", ORdOnly)
	if _, err := r.Write([]byte{1}); !errors.Is(err, ErrReadOnly) {
		t.Errorf("write on O_RDONLY: %v", err)
	}
}

func TestDoubleCloseError(t *testing.T) {
	f := New()
	w, _ := f.Open("/a", OWrOnly|OCreate)
	w.Close()
	if err := w.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double close: %v", err)
	}
	if _, err := w.Write([]byte{1}); !errors.Is(err, ErrClosed) {
		t.Errorf("write after close: %v", err)
	}
}

func TestOverwriteMiddle(t *testing.T) {
	f := New()
	w, _ := f.Open("/a", ORdWr|OCreate)
	w.Write([]byte("0123456789"))
	w.Seek(3)
	w.Write([]byte("XY"))
	w.Seek(0)
	buf := make([]byte, 10)
	n, _ := w.Read(buf)
	if string(buf[:n]) != "012XY56789" {
		t.Errorf("content = %q", buf[:n])
	}
}

func TestUnlinkKeepsOpenDescription(t *testing.T) {
	f := New()
	w, _ := f.Open("/a", ORdWr|OCreate)
	w.Write([]byte("still here"))
	if err := f.Unlink("/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Open("/a", ORdOnly); !errors.Is(err, ErrNotFound) {
		t.Error("unlinked file still openable")
	}
	w.Seek(0)
	buf := make([]byte, 10)
	if n, err := w.Read(buf); err != nil || n != 10 {
		t.Errorf("read through open description after unlink = %d,%v", n, err)
	}
}

func TestListSorted(t *testing.T) {
	f := New()
	for _, p := range []string{"/c", "/a", "/b"} {
		w, _ := f.Open(p, OWrOnly|OCreate)
		w.Close()
	}
	got := f.List()
	want := []string{"/a", "/b", "/c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v", got)
		}
	}
}

func TestStats(t *testing.T) {
	f := New()
	w, _ := f.Open("/a", ORdWr|OCreate)
	w.Write(make([]byte, 100))
	w.Seek(0)
	w.Read(make([]byte, 40))
	w.Close()
	opens, writes, reads, closes, bw, br := f.Stats()
	if opens != 1 || writes != 1 || reads != 1 || closes != 1 || bw != 100 || br != 40 {
		t.Errorf("stats = %d %d %d %d %d %d", opens, writes, reads, closes, bw, br)
	}
}

// Property: any sequence of writes at sequential positions reads back
// identically.
func TestWriteReadProperty(t *testing.T) {
	f := func(chunks [][]byte) bool {
		fsys := New()
		w, err := fsys.Open("/p", ORdWr|OCreate)
		if err != nil {
			return false
		}
		var want bytes.Buffer
		for _, c := range chunks {
			if len(c) > 4096 {
				c = c[:4096]
			}
			w.Write(c)
			want.Write(c)
		}
		w.Seek(0)
		got := make([]byte, want.Len())
		total := 0
		for total < len(got) {
			n, err := w.Read(got[total:])
			if err != nil || n == 0 {
				break
			}
			total += n
		}
		return bytes.Equal(got[:total], want.Bytes()) && total == want.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
