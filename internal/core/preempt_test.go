package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/blt"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// TestPreemptionBoundsLatency: a short-request ULP behind a long
// compute-bound ULP on one program core. Without a preemption quantum
// the short one waits for the whole long burst; with one it runs within
// a quantum — the Shinjuku motivation (microsecond tail latency).
func TestPreemptionBoundsLatency(t *testing.T) {
	const longBurst = 2 * sim.Millisecond
	const quantum = 20 * sim.Microsecond

	latency := func(preempt sim.Duration) sim.Duration {
		e := sim.New()
		k := kernel.New(e, arch.Wallaby())
		var shortDone sim.Duration
		var submit sim.Time
		started := false
		longProg := img("hog", func(envI interface{}) int {
			env := envI.(*Env)
			env.Decouple()
			started = true
			env.Compute(longBurst)
			env.Couple()
			return 0
		})
		shortProg := img("short", func(envI interface{}) int {
			env := envI.(*Env)
			env.Decouple()
			env.Compute(sim.Microsecond)
			// Turnaround from submission: includes the queueing delay
			// behind the hog, which is the quantity preemption bounds.
			shortDone = e.Now().Sub(submit)
			env.Couple()
			return 0
		})
		cfg := Config{
			ProgCores:      []int{0}, // one program core: they contend
			SyscallCores:   []int{2, 3},
			Idle:           blt.Blocking,
			PreemptQuantum: preempt,
		}
		Boot(k, cfg, func(rt *Runtime) int {
			rt.Spawn(longProg, SpawnOpts{Scheduler: 0})
			// Ensure the hog is running before the short request lands.
			for !started {
				rt.RootTask().Nanosleep(10 * sim.Microsecond)
			}
			submit = e.Now()
			rt.Spawn(shortProg, SpawnOpts{Scheduler: 0})
			rt.WaitAll()
			rt.Shutdown()
			return 0
		})
		if err := e.Run(); err != nil {
			t.Fatalf("engine: %v", err)
		}
		return shortDone
	}

	without := latency(0)
	with := latency(quantum)
	// Without preemption the short request waits out most of the 2 ms
	// burst; with a 20 us quantum it completes after spawn overhead
	// (~220 us of dlmopen+clone) plus a few quanta.
	if without < longBurst/2 {
		t.Errorf("non-preemptive short latency = %v, want >= %v", without, longBurst/2)
	}
	if with > 600*sim.Microsecond {
		t.Errorf("preemptive short latency = %v, want <= 600us", with)
	}
	if float64(with)*2 > float64(without) {
		t.Errorf("preemption did not help: %v vs %v", with, without)
	}
}

// TestPreemptionDoesNotSliceCoupledCode: coupled sections are KLT code;
// the quantum must not apply.
func TestPreemptionDoesNotSliceCoupledCode(t *testing.T) {
	e := sim.New()
	k := kernel.New(e, arch.Wallaby())
	cfg := Config{
		ProgCores:      []int{0, 1},
		SyscallCores:   []int{2, 3},
		Idle:           blt.BusyWait,
		PreemptQuantum: 5 * sim.Microsecond,
	}
	Boot(k, cfg, func(rt *Runtime) int {
		u, _ := rt.Spawn(img("c", func(envI interface{}) int {
			env := envI.(*Env)
			env.Decouple()
			env.Couple()
			env.Compute(100 * sim.Microsecond) // coupled: no slicing
			env.Decouple()
			env.Couple()
			return 0
		}), SpawnOpts{Scheduler: -1})
		rt.WaitAll()
		_, _, yields := u.BLT().Stats()
		if yields != 0 {
			t.Errorf("coupled compute yielded %d times; preemption must not apply", yields)
		}
		rt.Shutdown()
		return 0
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
