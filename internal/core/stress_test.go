package core

import (
	"fmt"
	"testing"

	"repro/internal/arch"
	"repro/internal/blt"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/loader"
	"repro/internal/sim"
)

// TestRandomizedULPSchedules drives many ULPs through pseudo-random
// operation sequences (yields, bracketed syscalls, raw syscalls, compute
// bursts, file I/O) under every machine/policy combination and checks
// the global invariants:
//
//   - every ULP terminates with its expected status;
//   - every bracketed getpid is consistent;
//   - the auditor flags exactly the raw (unbracketed) syscalls;
//   - the run is deterministic (same seed => same final virtual time).
func TestRandomizedULPSchedules(t *testing.T) {
	for _, m := range arch.Machines() {
		for _, idle := range []blt.IdlePolicy{blt.BusyWait, blt.Blocking} {
			m, idle := m, idle
			t.Run(fmt.Sprintf("%s/%s", m.Name, idle), func(t *testing.T) {
				end1, raw1 := runRandomSchedule(t, m, idle, 12345)
				end2, raw2 := runRandomSchedule(t, m, idle, 12345)
				if end1 != end2 || raw1 != raw2 {
					t.Errorf("nondeterministic: (%v,%d) vs (%v,%d)", end1, raw1, end2, raw2)
				}
				endOther, _ := runRandomSchedule(t, m, idle, 99)
				if endOther == end1 {
					t.Log("different seeds coincidentally matched; suspicious but not fatal")
				}
			})
		}
	}
}

func runRandomSchedule(t *testing.T, m *arch.Machine, idle blt.IdlePolicy, seed uint64) (sim.Time, int) {
	t.Helper()
	e := sim.New()
	k := kernel.New(e, m)
	const nULPs = 8
	const opsPerULP = 12

	// Pre-generate each ULP's op sequence so the body closures do not
	// consume randomness in scheduling-dependent order.
	master := sim.NewRNG(seed)
	plans := make([][]int, nULPs)
	expectedRaw := 0
	for i := range plans {
		plans[i] = make([]int, opsPerULP)
		for j := range plans[i] {
			op := master.Intn(6)
			plans[i][j] = op
			if op == 3 {
				expectedRaw++
			}
		}
	}

	inconsistent := 0
	prog := func(rank int) *loader.Image {
		return &loader.Image{
			Name: fmt.Sprintf("r%d", rank), PIE: true, TextSize: 4096,
			Symbols: []loader.Symbol{{Name: "x", Size: 8}},
			Main: func(envI interface{}) int {
				env := envI.(*Env)
				env.Decouple()
				myPID := env.U.KC().TGID()
				for _, op := range plans[rank] {
					switch op {
					case 0:
						env.Yield()
					case 1:
						if env.Getpid() != myPID {
							inconsistent++
						}
					case 2:
						env.Compute(sim.Duration(rank+1) * sim.Microsecond)
					case 3:
						env.GetpidRaw() // deliberate violation
					case 4:
						fd, err := env.Open(fmt.Sprintf("/f%d", rank), fs.OCreate|fs.OWrOnly|fs.OAppend)
						if err != nil {
							return 10
						}
						if _, err := env.Write(fd, []byte("abc")); err != nil {
							return 11
						}
						if err := env.Close(fd); err != nil {
							return 12
						}
					case 5:
						env.Couple()
						if env.Carrier().Getpid() != myPID {
							inconsistent++
						}
						env.Decouple()
					}
				}
				env.Couple()
				return rank + 100
			},
		}
	}

	var violations int
	Boot(k, Config{
		ProgCores:    []int{0, 1},
		SyscallCores: []int{2, 3},
		Idle:         idle,
		Audit:        true,
	}, func(rt *Runtime) int {
		for i := 0; i < nULPs; i++ {
			if _, err := rt.Spawn(prog(i), SpawnOpts{Scheduler: -1}); err != nil {
				t.Errorf("spawn %d: %v", i, err)
				return 1
			}
		}
		statuses, err := rt.WaitAll()
		if err != nil {
			t.Errorf("wait: %v", err)
		}
		for i, st := range statuses {
			if st != i+100 {
				t.Errorf("ULP %d status = %d, want %d", i, st, i+100)
			}
		}
		violations = len(rt.Violations())
		rt.Shutdown()
		return 0
	})
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if inconsistent != 0 {
		t.Errorf("%d inconsistent bracketed getpids", inconsistent)
	}
	if violations != expectedRaw {
		t.Errorf("auditor saw %d violations, want %d (one per raw getpid)", violations, expectedRaw)
	}
	return e.Now(), violations
}

// TestManyULPsManySchedulers scales the deployment up: 32 ULPs over 4
// schedulers and 4 syscall cores, mixed M:N sharing.
func TestManyULPsManySchedulers(t *testing.T) {
	e := sim.New()
	k := kernel.New(e, arch.Wallaby())
	const n = 32
	completed := 0
	prog := &loader.Image{
		Name: "many", PIE: true, TextSize: 4096,
		Symbols: []loader.Symbol{{Name: "x", Size: 8}},
		Main: func(envI interface{}) int {
			env := envI.(*Env)
			env.Decouple()
			for i := 0; i < 4; i++ {
				env.Getpid()
				env.Yield()
			}
			completed++
			env.Couple()
			return 0
		},
	}
	// Primaries for the M:N mix must outlive the spawn phase, or their
	// KC terminates before the sharer is adopted (which Spawn rejects
	// with ErrHostDead). Hold them at a gate until all spawns are done.
	released := false
	holder := &loader.Image{
		Name: "holder", PIE: true, TextSize: 4096,
		Symbols: []loader.Symbol{{Name: "x", Size: 8}},
		Main: func(envI interface{}) int {
			env := envI.(*Env)
			env.Decouple()
			for !released {
				env.Yield()
			}
			completed++
			env.Couple()
			return 0
		},
	}
	Boot(k, Config{
		ProgCores:    []int{0, 1, 2, 3},
		SyscallCores: []int{4, 5, 6, 7},
		Idle:         blt.Blocking,
		Audit:        true,
	}, func(rt *Runtime) int {
		var prev *ULP
		for i := 0; i < n; i++ {
			opts := SpawnOpts{Scheduler: -1}
			img := prog
			// Every 4th pair: a held primary followed by a sharer of
			// its KC (M:N mix).
			if i%4 == 2 {
				img = holder
			}
			if i%4 == 3 && prev != nil {
				opts.ShareKCWith = prev
			}
			u, err := rt.Spawn(img, opts)
			if err != nil {
				t.Errorf("spawn %d: %v", i, err)
				return 1
			}
			prev = u
		}
		released = true
		if _, err := rt.WaitAll(); err != nil {
			t.Errorf("wait: %v", err)
		}
		if v := rt.Violations(); len(v) != 0 {
			t.Errorf("violations: %+v", v)
		}
		rt.Shutdown()
		return 0
	})
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if completed != n {
		t.Errorf("completed = %d, want %d", completed, n)
	}
}
