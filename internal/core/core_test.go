package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/blt"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/loader"
	"repro/internal/sim"
)

func testConfig(idle blt.IdlePolicy) Config {
	return Config{
		ProgCores:    []int{0, 1},
		SyscallCores: []int{2, 3},
		Idle:         idle,
		Audit:        true,
	}
}

func img(name string, main loader.MainFunc) *loader.Image {
	return &loader.Image{
		Name: name, PIE: true, TextSize: 4096,
		Symbols: []loader.Symbol{
			{Name: "data", Size: 64},
			{Name: "errno", Size: 8, TLS: true},
		},
		Main: main,
	}
}

// boot runs main inside a booted runtime and drives the engine.
func boot(t *testing.T, m *arch.Machine, cfg Config, main func(rt *Runtime) int) {
	t.Helper()
	e := sim.New()
	k := kernel.New(e, m)
	if _, err := Boot(k, cfg, func(rt *Runtime) int {
		status := main(rt)
		rt.Shutdown()
		return status
	}); err != nil {
		t.Fatalf("boot: %v", err)
	}
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
}

func TestULPSyscallConsistency(t *testing.T) {
	for _, idle := range []blt.IdlePolicy{blt.BusyWait, blt.Blocking} {
		idle := idle
		t.Run(idle.String(), func(t *testing.T) {
			boot(t, arch.Wallaby(), testConfig(idle), func(rt *Runtime) int {
				var myPID, consistent1, consistent2, rawWhileDecoupled int
				u, err := rt.Spawn(img("prog", func(envI interface{}) int {
					env := envI.(*Env)
					myPID = env.Getpid() // coupled bracket
					env.Decouple()
					consistent1 = env.Getpid()          // Exec bracket couples
					rawWhileDecoupled = env.GetpidRaw() // scheduler's pid
					consistent2 = env.Getpid()
					env.Couple()
					return 0
				}), SpawnOpts{Scheduler: -1})
				if err != nil {
					t.Error(err)
					return 1
				}
				rt.WaitAll()
				kcPID := u.KC().TGID()
				if myPID != kcPID || consistent1 != kcPID || consistent2 != kcPID {
					t.Errorf("consistent getpid = %d/%d/%d, want %d", myPID, consistent1, consistent2, kcPID)
				}
				if rawWhileDecoupled == kcPID {
					t.Error("raw decoupled getpid unexpectedly consistent")
				}
				// The auditor recorded exactly the raw call.
				v := rt.Violations()
				if len(v) != 1 || v[0].Syscall != "getpid" || v[0].ULP != u.Name() {
					t.Errorf("violations = %+v, want 1 raw getpid by %s", v, u.Name())
				}
				return 0
			})
		})
	}
}

func TestULPFileConsistencyAcrossScheduling(t *testing.T) {
	// open/write/close from a decoupled ULP, with yields in between:
	// all three syscalls must hit the same (original) KC's fd table.
	boot(t, arch.Wallaby(), testConfig(blt.BusyWait), func(rt *Runtime) int {
		ok := false
		u, _ := rt.Spawn(img("io", func(envI interface{}) int {
			env := envI.(*Env)
			env.Decouple()
			fd, err := env.Open("/t", fs.OCreate|fs.OWrOnly)
			if err != nil {
				return 1
			}
			env.Yield()
			if _, err := env.Write(fd, []byte("hello")); err != nil {
				return 2
			}
			env.Yield()
			if err := env.Close(fd); err != nil {
				return 3
			}
			ok = true
			env.Couple()
			return 0
		}), SpawnOpts{Scheduler: -1})
		statuses, err := rt.WaitAll()
		if err != nil {
			t.Error(err)
		}
		if !ok || statuses[0] != 0 {
			t.Errorf("io ULP failed: ok=%v status=%d", ok, statuses[0])
		}
		if n := len(rt.Violations()); n != 0 {
			t.Errorf("%d violations from Exec-bracketed I/O", n)
		}
		// The file exists with the right content on the machine fs.
		ino, err := rt.Kernel().FS().Stat("/t")
		if err != nil || ino.Size() != 5 {
			t.Errorf("file = %v, %v", ino, err)
		}
		_ = u
		return 0
	})
}

func TestPrivatizationAcrossULPs(t *testing.T) {
	boot(t, arch.Wallaby(), testConfig(blt.BusyWait), func(rt *Runtime) int {
		program := img("var", func(envI interface{}) int {
			env := envI.(*Env)
			addr, _ := env.SymbolAddr("data")
			return int(addr % 251) // report something address-derived
		})
		u1, _ := rt.Spawn(program, SpawnOpts{Scheduler: -1})
		u2, _ := rt.Spawn(program, SpawnOpts{Scheduler: -1})
		rt.WaitAll()
		a1, _ := u1.Linked.SymbolAddr("data")
		a2, _ := u2.Linked.SymbolAddr("data")
		if a1 == a2 {
			t.Error("ULPs share a privatized variable address")
		}
		if u1.TLSBase == u2.TLSBase {
			t.Error("ULPs share a TLS block")
		}
		return 0
	})
}

func TestGetpidCoupleDecoupleCostTableV(t *testing.T) {
	// Table V: getpid() enclosed in couple()/decouple() — BUSYWAIT and
	// BLOCKING on both machines. Check ordering properties (shape):
	// Linux < BUSYWAIT < BLOCKING, overhead on the order of µs.
	type result struct{ plain, busy, blk float64 }
	measure := func(m *arch.Machine, idle blt.IdlePolicy) float64 {
		var per float64
		boot(t, m, testConfig(idle), func(rt *Runtime) int {
			e := rt.Kernel().Engine()
			rt.Spawn(img("bench", func(envI interface{}) int {
				env := envI.(*Env)
				env.Decouple()
				const warm, n = 10, 100
				var t0 sim.Time
				for i := 0; i < warm+n; i++ {
					if i == warm {
						t0 = e.Now()
					}
					env.Getpid()
				}
				per = float64(e.Now().Sub(t0)) / n / 1000
				env.Couple()
				return 0
			}), SpawnOpts{Scheduler: -1})
			rt.WaitAll()
			return 0
		})
		return per
	}
	for _, m := range arch.Machines() {
		plain := m.SyscallCost(m.Costs.GetPIDWork).Nanoseconds()
		busy := measure(m, blt.BusyWait)
		blk := measure(m, blt.Blocking)
		if !(plain < busy && busy < blk) {
			t.Errorf("%s: ordering plain(%.0f) < busywait(%.0f) < blocking(%.0f) violated",
				m.Name, plain, busy, blk)
		}
		if busy < 500 || busy > 6000 {
			t.Errorf("%s: busywait getpid = %.0fns, want microsecond-scale", m.Name, busy)
		}
	}
}

func TestMNSharedKCULPs(t *testing.T) {
	boot(t, arch.Wallaby(), testConfig(blt.BusyWait), func(rt *Runtime) int {
		pids := map[int]bool{}
		prog := img("mn", func(envI interface{}) int {
			env := envI.(*Env)
			env.Decouple()
			pids[env.Getpid()] = true
			env.Couple()
			return 0
		})
		u0, err := rt.Spawn(prog, SpawnOpts{Scheduler: -1})
		if err != nil {
			t.Error(err)
			return 1
		}
		for i := 0; i < 3; i++ {
			if _, err := rt.Spawn(prog, SpawnOpts{Scheduler: -1, ShareKCWith: u0}); err != nil {
				t.Error(err)
				return 1
			}
		}
		rt.WaitAll()
		// §VII: UCs with the same original KC see the same kernel info.
		if len(pids) != 1 || !pids[u0.KC().TGID()] {
			t.Errorf("M:N pids = %v, want only %d", pids, u0.KC().TGID())
		}
		return 0
	})
}

func TestSignalLandsOnSchedulingKCInFcontextMode(t *testing.T) {
	// §VII: "if one tries to send a signal to a UC, then the signal is
	// delivered to the scheduling KC".
	boot(t, arch.Wallaby(), testConfig(blt.BusyWait), func(rt *Runtime) int {
		spin := true
		u, _ := rt.Spawn(img("victim", func(envI interface{}) int {
			env := envI.(*Env)
			env.Decouple()
			for spin {
				env.Compute(sim.Microsecond)
				env.Yield()
			}
			env.Couple()
			return 0
		}), SpawnOpts{Scheduler: 0})
		root := rt.RootTask()
		root.Nanosleep(200 * sim.Microsecond) // victim is now decoupled, running
		sched := rt.Pool().Schedulers()[0].Task()
		if err := rt.SignalULP(root, u, kernel.SIGUSR1); err != nil {
			t.Errorf("SignalULP: %v", err)
		}
		spin = false
		rt.WaitAll()
		// The delivery record must be on the *scheduler's* disposition.
		if n := len(sched.Signals().Deliveries); n != 1 {
			t.Errorf("scheduler deliveries = %d, want 1", n)
		}
		if n := len(u.KC().Signals().Deliveries); n != 0 {
			t.Errorf("ULP KC deliveries = %d, want 0", n)
		}
		return 0
	})
}

func TestUcontextModeCostsMorePerYield(t *testing.T) {
	// §VII: ucontext-style switching saves/restores signal masks at a
	// system-call per switch — measurably slower yields.
	measure := func(mode SignalMode) float64 {
		var per float64
		cfg := testConfig(blt.BusyWait)
		cfg.Signals = mode
		boot(t, arch.Wallaby(), cfg, func(rt *Runtime) int {
			e := rt.Kernel().Engine()
			ready, done := 0, false
			prog := func(measureIt bool) *loader.Image {
				return img("y", func(envI interface{}) int {
					env := envI.(*Env)
					env.Decouple()
					ready++
					for ready < 2 {
						env.Yield()
					}
					if measureIt {
						const warm, n = 10, 200
						var t0 sim.Time
						for i := 0; i < warm+n; i++ {
							if i == warm {
								t0 = e.Now()
							}
							env.Yield()
						}
						per = float64(e.Now().Sub(t0)) / (2 * n) / 1000
						done = true
					} else {
						for !done {
							env.Yield()
						}
					}
					env.Couple()
					return 0
				})
			}
			rt.Spawn(prog(true), SpawnOpts{Scheduler: 0})
			rt.Spawn(prog(false), SpawnOpts{Scheduler: 0})
			rt.WaitAll()
			return 0
		})
		return per
	}
	fc := measure(FcontextMode)
	uc := measure(UcontextMode)
	want := arch.Wallaby().Costs.SigmaskSwitch.Nanoseconds()
	if uc-fc < want*0.8 {
		t.Errorf("ucontext yield overhead = %.1fns, want >= ~%.0fns", uc-fc, want)
	}
}

func TestWaitAllStatuses(t *testing.T) {
	boot(t, arch.Wallaby(), testConfig(blt.BusyWait), func(rt *Runtime) int {
		prog := img("st", func(envI interface{}) int {
			env := envI.(*Env)
			return env.U.Rank * 10
		})
		for i := 0; i < 3; i++ {
			rt.Spawn(prog, SpawnOpts{Scheduler: -1})
		}
		statuses, err := rt.WaitAll()
		if err != nil {
			t.Error(err)
		}
		for i, s := range statuses {
			if s != i*10 {
				t.Errorf("status[%d] = %d, want %d", i, s, i*10)
			}
		}
		return 0
	})
}

func TestTLSRegisterFollowsULP(t *testing.T) {
	boot(t, arch.Albireo(), testConfig(blt.BusyWait), func(rt *Runtime) int {
		okCoupled, okDecoupled := false, false
		u, _ := rt.Spawn(img("tls", func(envI interface{}) int {
			env := envI.(*Env)
			okCoupled = env.Carrier().TLSReg() == env.U.TLSBase
			env.Decouple()
			okDecoupled = env.Carrier().TLSReg() == env.U.TLSBase
			env.Couple()
			return 0
		}), SpawnOpts{Scheduler: -1})
		rt.WaitAll()
		if !okCoupled {
			t.Error("TLS register wrong while coupled")
		}
		if !okDecoupled {
			t.Error("TLS register wrong while decoupled (scheduler must load it)")
		}
		_ = u
		return 0
	})
}

func TestEnvTLSAddrIsolation(t *testing.T) {
	boot(t, arch.Wallaby(), testConfig(blt.BusyWait), func(rt *Runtime) int {
		prog := img("errno", func(envI interface{}) int {
			env := envI.(*Env)
			addr, err := env.TLSAddr("errno")
			if err != nil {
				return 1
			}
			if err := env.MemWrite(addr, []byte{byte(env.U.Rank + 5)}); err != nil {
				return 2
			}
			return 0
		})
		u0, _ := rt.Spawn(prog, SpawnOpts{Scheduler: -1})
		u1, _ := rt.Spawn(prog, SpawnOpts{Scheduler: -1})
		rt.WaitAll()
		b := make([]byte, 1)
		off := u0.Linked.TLS().Offsets["errno"]
		rt.RootTask().MemRead(u0.TLSBase+off, b)
		if b[0] != 5 {
			t.Errorf("ULP0 errno = %d, want 5", b[0])
		}
		rt.RootTask().MemRead(u1.TLSBase+off, b)
		if b[0] != 6 {
			t.Errorf("ULP1 errno = %d, want 6", b[0])
		}
		return 0
	})
}

func TestEnvExportImportAndRead(t *testing.T) {
	boot(t, arch.Wallaby(), testConfig(blt.BusyWait), func(rt *Runtime) int {
		producer := img("prod", func(envI interface{}) int {
			env := envI.(*Env)
			addr, _ := env.SymbolAddr("data")
			env.MemWrite(addr, []byte("exported!"))
			if err := env.Export("blob", "data"); err != nil {
				return 1
			}
			if err := env.Export("blob2", "missing-symbol"); err == nil {
				return 2
			}
			return 0
		})
		consumer := img("cons", func(envI interface{}) int {
			env := envI.(*Env)
			addr, err := env.Import("blob")
			if err != nil {
				return 1
			}
			buf := make([]byte, 9)
			if err := env.MemRead(addr, buf); err != nil || string(buf) != "exported!" {
				return 2
			}
			if _, err := env.Import("nope"); err == nil {
				return 3
			}
			// Consistent file read path.
			fd, err := env.Open("/xfile", fs.OCreate|fs.ORdWr)
			if err != nil {
				return 4
			}
			if _, err := env.Write(fd, []byte("roundtrip")); err != nil {
				return 5
			}
			env.Exec(func(kc *kernel.Task) { kc.Seek(fd, 0) })
			rbuf := make([]byte, 9)
			if n, err := env.Read(fd, rbuf); err != nil || n != 9 || string(rbuf) != "roundtrip" {
				return 6
			}
			env.Close(fd)
			return 0
		})
		rt.Spawn(producer, SpawnOpts{Scheduler: -1})
		rt.WaitAll()
		rt.Spawn(consumer, SpawnOpts{Scheduler: -1})
		rt.RootTask().Wait()
		for _, u := range rt.ULPs() {
			if !u.Done() || u.ExitStatus() != 0 {
				t.Errorf("%s: done=%v status=%d", u.Name(), u.Done(), u.ExitStatus())
			}
		}
		if rt.Config().Idle != blt.BusyWait {
			t.Error("Config accessor wrong")
		}
		return 0
	})
}

func TestEnvSetSigMaskWhileDecoupled(t *testing.T) {
	cfg := testConfig(blt.BusyWait)
	cfg.Signals = UcontextMode
	boot(t, arch.Wallaby(), cfg, func(rt *Runtime) int {
		maskSeen := uint64(0)
		u, _ := rt.Spawn(img("masker", func(envI interface{}) int {
			env := envI.(*Env)
			env.Decouple()
			env.SetSigMask(1 << kernel.SIGUSR1)
			env.Yield() // cross a context switch: mask must follow the UC
			maskSeen = env.Carrier().SigmaskRaw()
			env.Couple()
			return 0
		}), SpawnOpts{Scheduler: -1})
		rt.WaitAll()
		if maskSeen != 1<<kernel.SIGUSR1 {
			t.Errorf("mask after switch = %#x, want %#x", maskSeen, 1<<kernel.SIGUSR1)
		}
		if u.BLT().SigMask() != 1<<kernel.SIGUSR1 {
			t.Error("BLT mask not recorded")
		}
		if FcontextMode.String() != "fcontext" || UcontextMode.String() != "ucontext" {
			t.Error("SignalMode strings")
		}
		return 0
	})
}

func TestLibcErrnoPrivatizedViaSharedObjectDep(t *testing.T) {
	// The canonical PiP demo: errno is a TLS variable of a *shared
	// object* (libc), yet each ULP gets its own instance because
	// dlmopen loads the dependency closure per namespace.
	libc := &loader.Image{
		Name: "libc.so", PIE: true, TextSize: 4096,
		Symbols: []loader.Symbol{
			{Name: "errno", Size: 4, TLS: true},
			{Name: "environ", Size: 32},
		},
	}
	app := &loader.Image{
		Name: "app", PIE: true, TextSize: 4096,
		Symbols: []loader.Symbol{{Name: "x", Size: 8}},
		Deps:    []*loader.Image{libc},
		Main: func(envI interface{}) int {
			env := envI.(*Env)
			addr, err := env.TLSAddr("errno") // resolves through the dep
			if err != nil {
				return 1
			}
			if err := env.MemWrite(addr, []byte{byte(env.U.Rank + 40)}); err != nil {
				return 2
			}
			return 0
		},
	}
	boot(t, arch.Wallaby(), testConfig(blt.BusyWait), func(rt *Runtime) int {
		u0, err := rt.Spawn(app, SpawnOpts{Scheduler: -1})
		if err != nil {
			t.Error(err)
			return 1
		}
		u1, _ := rt.Spawn(app, SpawnOpts{Scheduler: -1})
		rt.WaitAll()
		off0 := u0.Linked.TLS().Offsets["errno"]
		off1 := u1.Linked.TLS().Offsets["errno"]
		b := make([]byte, 1)
		rt.RootTask().MemRead(u0.TLSBase+off0, b)
		if b[0] != 40 {
			t.Errorf("ULP0 errno = %d, want 40", b[0])
		}
		rt.RootTask().MemRead(u1.TLSBase+off1, b)
		if b[0] != 41 {
			t.Errorf("ULP1 errno = %d, want 41", b[0])
		}
		// The library's *data* symbol is privatized per namespace too.
		e0, _ := u0.Linked.SymbolAddr("environ")
		e1, _ := u1.Linked.SymbolAddr("environ")
		if e0 == e1 || e0 == 0 {
			t.Errorf("environ not privatized: %#x vs %#x", e0, e1)
		}
		return 0
	})
}
