// Package core is the ULP-PiP runtime — the paper's primary
// contribution assembled from its substrates: User-Level Processes built
// by combining Bi-Level Threads (internal/blt) with PiP-style
// address-space sharing (internal/pip, internal/loader).
//
// A ULP is a PiP process (own PID, FD table, signal disposition, TLS
// block, privatized variables in the shared address space) whose
// execution context is a BLT: it is scheduled at user level like a ULT,
// and it preserves system-call consistency by coupling with its original
// kernel context around system-calls. The runtime also provides the
// consistency *auditor* that proves the property: every audited
// system-call issued inside a Consistent()/Exec() bracket is executed by
// the ULP's own kernel context.
package core

import (
	"errors"
	"fmt"

	"repro/internal/blt"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/loader"
	"repro/internal/sim"
)

// ErrNoULP is returned when an unknown ULP is referenced.
var ErrNoULP = errors.New("core: no such ULP")

// SignalMode selects how context switching treats signal state
// (paper §VII, "Discussion"): fcontext does not save/restore signal
// masks (fast, but signals land on the scheduling KC); ucontext does,
// at an extra system-call per switch.
type SignalMode int

// Signal modes.
const (
	FcontextMode SignalMode = iota
	UcontextMode
)

// String implements fmt.Stringer.
func (m SignalMode) String() string {
	if m == UcontextMode {
		return "ucontext"
	}
	return "fcontext"
}

// Config describes a ULP-PiP runtime deployment (the paper's Fig. 6):
// program cores run scheduler BLTs; syscall cores host original KCs.
type Config struct {
	ProgCores    []int
	SyscallCores []int
	Idle         blt.IdlePolicy
	Signals      SignalMode
	// Audit verifies system-call consistency at runtime: system-calls
	// made by ULP code outside a coupled section are recorded as
	// violations.
	Audit bool
	// AuditPanic makes a consistency violation panic immediately instead
	// of being collected. Collect (the default) is what fault-injection
	// and chaos runs need: an injected fault may legitimately push a
	// system-call onto the wrong KC, and the run must complete so the
	// violation list can be asserted on, not die mid-flight.
	AuditPanic bool
	// WorkStealing lets idle schedulers steal ready ULPs from peers
	// (see blt.Config.WorkStealing).
	WorkStealing bool
	// PreemptQuantum, when nonzero, bounds how long a decoupled ULP may
	// compute before the runtime forces a user-level yield — Shinjuku-
	// style preemptive ULT scheduling (cited in the paper's related
	// work: "Shinjuku supports preemptive scheduling for ULTs").
	// Computation through Env.Compute is sliced at this granularity.
	PreemptQuantum sim.Duration
	// SchedPolicy, when non-nil, is the ULT half of a pluggable
	// scheduler policy (see blt.ULTPolicy and internal/schedpolicy):
	// ready-queue order, steal-victim order, idle/yield hooks. The
	// kernel half is installed separately via Kernel.SetSchedPolicy.
	SchedPolicy blt.ULTPolicy
}

// Violation records a system-call issued by a decoupled ULP — i.e. one
// that executed on the wrong kernel context.
type Violation struct {
	ULP     string
	Syscall string
	PID     int // the foreign (scheduling) KC's pid that executed it
}

// Runtime is a live ULP-PiP instance inside a PiP root process.
type Runtime struct {
	kern    *kernel.Kernel
	rootTsk *kernel.Task
	ld      *loader.Loader
	pool    *blt.Pool
	cfg     Config

	ulps       []*ULP
	violations []Violation
	exports    map[string]uint64
}

// BootFailedExitStatus is the root task's exit status when the BLT pool
// cannot be constructed at simulation time despite the eager validation
// (e.g. address-space exhaustion); main is never called.
const BootFailedExitStatus = 125

// validateConfig rejects impossible deployments before any simulated
// work happens, so misconfiguration surfaces as an error from Boot, not
// a panic from inside the simulation.
func validateConfig(k *kernel.Kernel, cfg Config) error {
	if len(cfg.ProgCores) == 0 {
		return fmt.Errorf("core: config needs at least one program core")
	}
	if len(cfg.SyscallCores) == 0 {
		return fmt.Errorf("core: config needs at least one syscall core")
	}
	for _, set := range [][]int{cfg.ProgCores, cfg.SyscallCores} {
		for _, c := range set {
			if c < 0 || c >= k.Cores() {
				return fmt.Errorf("core: %w: core %d (machine %s has %d)",
					kernel.ErrBadCore, c, k.Machine().Name, k.Cores())
			}
		}
	}
	return nil
}

// Boot creates the PiP root process and the BLT pool inside it, then
// runs main with the ready runtime. The returned kernel task is the
// root; the simulation ends when main returns (after it has reaped its
// ULPs and shut the pool down — Runtime.WaitAll + Shutdown do this).
//
// An impossible configuration (no cores, out-of-range core ids) is
// reported here, before the simulation starts. A residual pool failure
// at simulation time exits the root with BootFailedExitStatus instead of
// panicking; main does not run.
func Boot(k *kernel.Kernel, cfg Config, main func(rt *Runtime) int) (*kernel.Task, error) {
	if err := validateConfig(k, cfg); err != nil {
		return nil, err
	}
	space := k.NewAddressSpace()
	c := k.Machine().Costs
	ld := loader.New(space, loader.Costs{DlmopenBase: c.DlmopenBase, DlmopenPerSym: c.DlmopenPerSym})
	rt := &Runtime{kern: k, ld: ld, cfg: cfg, exports: make(map[string]uint64)}
	task := k.NewTask("ulp-root", space, func(t *kernel.Task) int {
		rt.rootTsk = t
		pool, err := blt.NewPool(t, blt.Config{
			ProgCores:      cfg.ProgCores,
			SyscallCores:   cfg.SyscallCores,
			Idle:           cfg.Idle,
			SwitchTLS:      true, // ULPs always switch TLS (§V-B)
			SwitchSigmask:  cfg.Signals == UcontextMode,
			WorkStealing:   cfg.WorkStealing,
			CloneFlags:     kernel.PiPProcessFlags,
			StartDecoupled: false,
			Policy:         cfg.SchedPolicy,
		})
		if err != nil {
			return BootFailedExitStatus
		}
		rt.pool = pool
		if cfg.Audit {
			rt.installAuditor()
		}
		defer k.SetAuditor(nil)
		return main(rt)
	})
	k.Start(task, 0)
	return task, nil
}

// Kernel returns the kernel the runtime runs on.
func (rt *Runtime) Kernel() *kernel.Kernel { return rt.kern }

// RootTask returns the PiP root's kernel task.
func (rt *Runtime) RootTask() *kernel.Task { return rt.rootTsk }

// Pool returns the underlying BLT pool.
func (rt *Runtime) Pool() *blt.Pool { return rt.pool }

// Config returns the runtime configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// ULPs returns spawned ULPs in rank order.
func (rt *Runtime) ULPs() []*ULP {
	out := make([]*ULP, len(rt.ulps))
	copy(out, rt.ulps)
	return out
}

// Violations returns recorded system-call consistency violations.
func (rt *Runtime) Violations() []Violation {
	out := make([]Violation, len(rt.violations))
	copy(out, rt.violations)
	return out
}

// auditedSyscalls are the system-calls whose result depends on
// per-process kernel state — the calls that must be coupled.
var auditedSyscalls = map[string]bool{
	"getpid": true, "gettid": true, "open": true, "read": true,
	"write": true, "close": true, "lseek": true, "unlink": true,
	"wait": true, "kill": true, "sigaction": true, "sigprocmask": true,
}

// installAuditor hooks the kernel's system-call path: any audited call
// executed by a scheduler KC while it is stepping a decoupled UC is a
// consistency violation (the call hit the scheduler's kernel state, not
// the ULP's).
func (rt *Runtime) installAuditor() {
	scheds := rt.pool.Schedulers()
	rt.kern.SetAuditor(func(t *kernel.Task, name string) {
		if !auditedSyscalls[name] {
			return
		}
		for _, s := range scheds {
			if s.Task() == t {
				if b := s.Running(); b != nil {
					v := Violation{ULP: b.Name(), Syscall: name, PID: t.TGID()}
					if rt.cfg.AuditPanic {
						panic(fmt.Sprintf("core: consistency violation: %s issued %s on KC pid %d", v.ULP, v.Syscall, v.PID))
					}
					rt.violations = append(rt.violations, v)
				}
				return
			}
		}
	})
}

// ULP is one user-level process.
type ULP struct {
	rt      *Runtime
	Rank    int
	Linked  *loader.Linked
	TLSBase uint64
	b       *blt.BLT
}

// BLT returns the ULP's bi-level thread.
func (u *ULP) BLT() *blt.BLT { return u.b }

// KC returns the ULP's original kernel context.
func (u *ULP) KC() *kernel.Task { return u.b.KC() }

// Name returns the ULP's diagnostic name.
func (u *ULP) Name() string { return u.b.Name() }

// Done reports whether the ULP terminated.
func (u *ULP) Done() bool { return u.b.Done() }

// ExitStatus returns the ULP's exit status (valid once Done).
func (u *ULP) ExitStatus() int { return u.b.ExitStatus() }

// Orphaned reports whether the ULP finished decoupled because its
// original KC was killed by fault injection (see blt.BLT.Orphaned).
func (u *ULP) Orphaned() bool { return u.b.Orphaned() }

// SpawnOpts parameterizes Spawn.
type SpawnOpts struct {
	Name      string
	Arg       interface{}
	Scheduler int // home scheduler index; -1 for round-robin
	// ShareKCWith attaches this ULP to an existing ULP's original KC
	// (the §VII M:N extension); they then share kernel state.
	ShareKCWith *ULP
	// StartDecoupled decouples before Main runs (Fig. 6 deployment).
	StartDecoupled bool
}

// Spawn loads img under a fresh dlmopen namespace (privatizing its
// variables), allocates its TLS block, and starts it as a ULP: a BLT
// whose original KC is a PiP process-mode clone of the root. Must be
// called from the root task's context.
func (rt *Runtime) Spawn(img *loader.Image, opts SpawnOpts) (*ULP, error) {
	linked, err := rt.ld.Dlmopen(img, taskCharger{rt.rootTsk})
	if err != nil {
		return nil, err
	}
	tlsBase, err := rt.ld.AllocTLSBlock(linked, taskCharger{rt.rootTsk})
	if err != nil {
		return nil, err
	}
	u := &ULP{rt: rt, Rank: len(rt.ulps), Linked: linked, TLSBase: tlsBase}
	if opts.Name == "" {
		opts.Name = fmt.Sprintf("%s.%d", img.Name, u.Rank)
	}
	var host *blt.KCHost
	if opts.ShareKCWith != nil {
		host = opts.ShareKCWith.b.Host()
	}
	b, err := rt.pool.Spawn(func(b *blt.BLT) int {
		// The body may start before Spawn's caller resumes; bind the
		// BLT handle here so Env methods work from the first line.
		u.b = b
		// "TLS register content is saved at the time of creation of a
		// ULP": the original KC points at this ULP's descriptor once,
		// up front, while coupled.
		b.Carrier().LoadTLS(tlsBase)
		if opts.StartDecoupled {
			b.Decouple()
		}
		return img.Main(&Env{U: u, Arg: opts.Arg})
	}, blt.SpawnOpts{Name: opts.Name, TLSBase: tlsBase, Host: host, Scheduler: opts.Scheduler})
	if err != nil {
		return nil, err
	}
	u.b = b
	rt.ulps = append(rt.ulps, u)
	return u, nil
}

// WaitAll reaps every distinct original KC via wait(2) and returns the
// per-ULP exit statuses in rank order. It terminates even under fault
// injection: a signal interrupting the wait is retried, and a
// fault-killed KC is reaped like any exited process (its surviving ULPs
// finish decoupled and report their statuses here all the same — see
// ULP.Orphaned).
func (rt *Runtime) WaitAll() ([]int, error) {
	hosts := map[*blt.KCHost]bool{}
	for _, u := range rt.ulps {
		hosts[u.b.Host()] = true
	}
	for range hosts {
		for {
			_, _, err := rt.rootTsk.Wait()
			if err == kernel.ErrInterrupted {
				continue
			}
			if err != nil {
				return nil, err
			}
			break
		}
	}
	// A fault-killed KC can be reaped while its orphaned ULPs still run
	// decoupled on the schedulers; wait for them so the statuses below
	// are final. Fault-free runs never enter the sleep.
	for _, u := range rt.ulps {
		for !u.b.Done() {
			rt.rootTsk.Nanosleep(10 * sim.Microsecond)
		}
	}
	statuses := make([]int, len(rt.ulps))
	for i, u := range rt.ulps {
		statuses[i] = u.ExitStatus()
	}
	return statuses, nil
}

// Shutdown stops the pool's schedulers. Call after WaitAll.
func (rt *Runtime) Shutdown() { rt.pool.Shutdown(rt.rootTsk) }

// taskCharger adapts a kernel task to mem/loader Charger.
type taskCharger struct{ t *kernel.Task }

// Charge implements the Charger interfaces.
func (c taskCharger) Charge(d sim.Duration) { c.t.Charge(d) }

// Env is the environment handle a ULP program's Main receives (as its
// loader.MainFunc argument; type-assert to *core.Env).
type Env struct {
	U   *ULP
	Arg interface{}
}

// Carrier returns the kernel context currently executing the ULP —
// the original KC while coupled, a scheduler KC while decoupled.
func (e *Env) Carrier() *kernel.Task { return e.U.b.Carrier() }

// Couple attaches the ULP to its original KC (see blt.BLT.Couple). It
// returns blt.ErrHostDead when the KC died under fault injection.
func (e *Env) Couple() error { return e.U.b.Couple() }

// Decouple detaches the ULP from its original KC (see blt.BLT.Decouple).
func (e *Env) Decouple() { e.U.b.Decouple() }

// Coupled reports whether the ULP currently runs on its original KC.
func (e *Env) Coupled() bool { return e.U.b.Coupled() }

// Yield is the user-level yield between ULPs.
func (e *Env) Yield() { e.U.b.Yield() }

// Exec runs fn coupled to the original KC — the couple()/decouple()
// bracket for a system-call or a series of system-calls. When coupling
// is impossible (dead KC), fn does not run and Exec returns
// blt.ErrNotCoupled wrapping blt.ErrHostDead.
func (e *Env) Exec(fn func(kc *kernel.Task)) error { return e.U.b.Exec(fn) }

// Transient-retry parameters for the Env system-call wrappers: an
// injected EINTR or EAGAIN is retried up to syscallRetries times with
// exponentially growing user-mode backoff, starting at retryBackoffBase.
// Non-transient errors (ENOSPC, EBADF, ...) surface immediately.
const (
	syscallRetries   = 8
	retryBackoffBase = 1 * sim.Microsecond
)

// transient reports whether err is worth retrying.
func transient(err error) bool {
	return errors.Is(err, kernel.ErrInterrupted) || errors.Is(err, kernel.ErrTryAgain)
}

// execRetry runs op coupled, retrying transient failures with bounded
// exponential backoff burned on the current carrier (the ULP stays
// schedulable at user level between attempts). The returned error is
// op's last error, or the coupling error when the original KC is gone.
func (e *Env) execRetry(op func(kc *kernel.Task) error) error {
	backoff := retryBackoffBase
	var err error
	for attempt := 0; ; attempt++ {
		execErr := e.Exec(func(kc *kernel.Task) { err = op(kc) })
		if execErr != nil {
			return execErr
		}
		if err == nil || !transient(err) || attempt == syscallRetries {
			return err
		}
		e.Carrier().Compute(backoff)
		if backoff *= 2; backoff > 128*retryBackoffBase {
			backoff = 128 * retryBackoffBase
		}
	}
}

// Getpid is a consistency-preserving getpid(): it couples, calls, and
// restores the previous coupling state.
func (e *Env) Getpid() (pid int) {
	e.Exec(func(kc *kernel.Task) { pid = kc.Getpid() })
	return pid
}

// GetpidRaw issues getpid() on whatever KC carries the ULP right now —
// the paper's inconsistency example, kept for demonstration and tests.
func (e *Env) GetpidRaw() int { return e.Carrier().Getpid() }

// Open opens a file consistently (on the original KC), retrying
// transient injected failures (EINTR/EAGAIN).
func (e *Env) Open(path string, flags fs.OpenFlags) (fd int, err error) {
	err = e.execRetry(func(kc *kernel.Task) error {
		var opErr error
		fd, opErr = kc.Open(path, flags)
		return opErr
	})
	return fd, err
}

// Write writes to an fd consistently, retrying transient injected
// failures. remote is chosen by the runtime: while the open-write-close
// executes on the dedicated syscall core, the buffer streams from the
// program core (the Fig. 7 cache effect).
func (e *Env) Write(fd int, data []byte) (n int, err error) {
	err = e.execRetry(func(kc *kernel.Task) error {
		var opErr error
		n, opErr = kc.Write(fd, data, true)
		return opErr
	})
	return n, err
}

// Read reads from an fd consistently, retrying transient injected
// failures.
func (e *Env) Read(fd int, buf []byte) (n int, err error) {
	err = e.execRetry(func(kc *kernel.Task) error {
		var opErr error
		n, opErr = kc.Read(fd, buf)
		return opErr
	})
	return n, err
}

// Close closes an fd consistently.
func (e *Env) Close(fd int) (err error) {
	err = e.execRetry(func(kc *kernel.Task) error { return kc.Close(fd) })
	return err
}

// SymbolAddr resolves one of this ULP's privatized variables.
func (e *Env) SymbolAddr(name string) (uint64, error) {
	return e.U.Linked.SymbolAddr(name)
}

// Export publishes the address of one of this ULP's variables under a
// global name (pip_export): everything in the shared address space is
// "not shared but shareable", so another ULP can Import the address and
// dereference it directly.
func (e *Env) Export(global, symbol string) error {
	addr, err := e.SymbolAddr(symbol)
	if err != nil {
		return err
	}
	e.U.rt.exports[global] = addr
	return nil
}

// Import resolves an address another ULP exported (pip_import).
func (e *Env) Import(global string) (uint64, error) {
	addr, ok := e.U.rt.exports[global]
	if !ok {
		return 0, fmt.Errorf("core: no export named %q", global)
	}
	return addr, nil
}

// TLSAddr resolves one of this ULP's thread-local variables.
func (e *Env) TLSAddr(name string) (uint64, error) {
	off, ok := e.U.Linked.TLS().Offsets[name]
	if !ok {
		return 0, fmt.Errorf("%w: TLS %s", loader.ErrNoSuchSymbol, name)
	}
	return e.U.TLSBase + off, nil
}

// MemRead reads the shared address space without a system-call.
func (e *Env) MemRead(va uint64, buf []byte) error { return e.Carrier().MemRead(va, buf) }

// MemWrite writes the shared address space without a system-call.
func (e *Env) MemWrite(va uint64, data []byte) error { return e.Carrier().MemWrite(va, data) }

// Compute burns pure user CPU time on the current carrier. When the
// runtime has a preemption quantum and the ULP is decoupled, the burn is
// sliced: every quantum the ULP takes a forced user-level yield, so one
// compute-bound ULP cannot monopolize a program core (the Shinjuku-style
// preemption of Config.PreemptQuantum). Coupled code is never preempted
// — it is a KLT, subject only to the kernel.
func (e *Env) Compute(d sim.Duration) {
	q := e.U.rt.cfg.PreemptQuantum
	if q <= 0 || e.Coupled() {
		e.Carrier().Compute(d)
		return
	}
	for d > 0 {
		slice := d
		if slice > q {
			slice = q
		}
		e.Carrier().Compute(slice)
		d -= slice
		if d > 0 {
			e.U.b.Yield() // preemption point
		}
	}
}

// SetSigMask sets the ULP's signal mask. Under ucontext-mode switching
// the mask follows the UC between kernel contexts; under fcontext it
// only applies while coupled.
func (e *Env) SetSigMask(mask uint64) {
	e.U.b.SetSigMask(mask)
	if e.Coupled() || e.U.rt.cfg.Signals == UcontextMode {
		e.Carrier().SetSigmaskRaw(mask)
	}
}

// SignalULP sends a signal aimed at a ULP. With fcontext switching the
// kernel cannot tell UCs apart, so the signal lands on whatever KC
// currently carries the UC — the scheduler's disposition if decoupled
// (the §VII caveat). The sender task pays the kill(2) cost.
func (rt *Runtime) SignalULP(sender *kernel.Task, u *ULP, sig int) error {
	target := u.KC()
	if !u.b.Coupled() {
		// Decoupled: the signal goes to the carrier. Find it: the
		// home scheduler if running there, else the KC (queued/idle).
		for _, s := range rt.pool.Schedulers() {
			if s.Running() == u.b {
				target = s.Task()
				break
			}
		}
		if rt.cfg.Signals == FcontextMode && target == u.KC() {
			// Queued UC: a terminal-originated signal to the "process"
			// still reaches the KC's disposition; that part is safe.
			target = u.KC()
		}
	}
	return sender.Kill(target.PID(), sig)
}
