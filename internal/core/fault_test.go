package core

import (
	"errors"
	"testing"

	"repro/internal/arch"
	"repro/internal/blt"
	"repro/internal/fault"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// bootFaults is boot with a fault plane installed before the kernel runs
// anything. It returns the plane for injection-count assertions.
func bootFaults(t *testing.T, cfg Config, seed uint64, specs []fault.Spec,
	main func(rt *Runtime) int) *fault.Plane {
	t.Helper()
	e := sim.New()
	k := kernel.New(e, arch.Wallaby())
	plane := fault.NewPlane(seed, specs)
	k.SetFaultPlane(plane)
	if _, err := Boot(k, cfg, func(rt *Runtime) int {
		status := main(rt)
		rt.Shutdown()
		return status
	}); err != nil {
		t.Fatalf("boot: %v", err)
	}
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	return plane
}

// TestBootRejectsBadConfig: impossible deployments surface as errors from
// Boot before the simulation starts, never as panics inside it.
func TestBootRejectsBadConfig(t *testing.T) {
	e := sim.New()
	k := kernel.New(e, arch.Wallaby())
	if _, err := Boot(k, Config{SyscallCores: []int{2}}, nil); err == nil {
		t.Error("Boot accepted a config without program cores")
	}
	if _, err := Boot(k, Config{ProgCores: []int{0}}, nil); err == nil {
		t.Error("Boot accepted a config without syscall cores")
	}
	_, err := Boot(k, Config{ProgCores: []int{0}, SyscallCores: []int{99}}, nil)
	if !errors.Is(err, kernel.ErrBadCore) {
		t.Errorf("out-of-range core: err = %v, want ErrBadCore", err)
	}
	// Nothing was scheduled: the engine has no work.
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
}

// TestEnvExecErrNotCoupledAfterKCKill pins the Env-level error contract
// when a ULP's original KC is fault-killed: Couple surfaces ErrHostDead,
// Exec refuses to run the function and returns ErrNotCoupled wrapping
// ErrHostDead, and the ULP still finishes (orphaned) with its own status
// visible through WaitAll.
func TestEnvExecErrNotCoupledAfterKCKill(t *testing.T) {
	var coupleErr, execErr error
	execRan := false
	var statuses []int
	var u *ULP
	bootFaults(t, testConfig(blt.Blocking), 1,
		[]fault.Spec{{Site: fault.SiteKCKill, Nth: 3, TaskPrefix: "kc.victim"}},
		func(rt *Runtime) int {
			var err error
			u, err = rt.Spawn(img("victim", func(envI interface{}) int {
				env := envI.(*Env)
				env.Decouple()
				coupleErr = env.Couple()
				execErr = env.Exec(func(kc *kernel.Task) { execRan = true })
				return 9
			}), SpawnOpts{Name: "victim", Scheduler: 0})
			if err != nil {
				t.Error(err)
				return 1
			}
			statuses, err = rt.WaitAll()
			if err != nil {
				t.Errorf("WaitAll: %v", err)
			}
			return 0
		})
	if !errors.Is(coupleErr, blt.ErrHostDead) {
		t.Errorf("Env.Couple after KC death = %v, want ErrHostDead", coupleErr)
	}
	if !errors.Is(execErr, blt.ErrNotCoupled) || !errors.Is(execErr, blt.ErrHostDead) {
		t.Errorf("Env.Exec after KC death = %v, want ErrNotCoupled wrapping ErrHostDead", execErr)
	}
	if execRan {
		t.Error("Exec ran its function on a dead KC (consistency violation)")
	}
	if !u.Done() || !u.Orphaned() {
		t.Errorf("ULP done=%v orphaned=%v, want true/true", u.Done(), u.Orphaned())
	}
	if len(statuses) != 1 || statuses[0] != 9 {
		t.Errorf("WaitAll statuses = %v, want [9]", statuses)
	}
}

// TestSignalMidDecoupleLandsOnOriginalKC is the §VII signal caveat under
// an injected scheduler delay: the UC sits mid-decouple (queued, its
// dispatch delayed), so a signal aimed at the ULP cannot hit a scheduling
// KC — it lands on the original KC's disposition, where ucontext-style
// mask switching keeps the ULP's own mask in effect.
func TestSignalMidDecoupleLandsOnOriginalKC(t *testing.T) {
	cfg := testConfig(blt.Blocking)
	cfg.Signals = UcontextMode
	bootFaults(t, cfg, 2,
		[]fault.Spec{{Site: fault.SiteSchedDelay, Every: 1, DelayUS: 1000, TaskPrefix: "sched."}},
		func(rt *Runtime) int {
			spin := true
			u, err := rt.Spawn(img("victim", func(envI interface{}) int {
				env := envI.(*Env)
				env.Decouple()
				for spin {
					env.Compute(sim.Microsecond)
					env.Yield()
				}
				env.Couple()
				return 0
			}), SpawnOpts{Scheduler: 0})
			if err != nil {
				t.Error(err)
				return 1
			}
			root := rt.RootTask()
			// Every dispatch is delayed 1ms while the workload computes
			// ~1us per slice: at t+300us the UC is parked mid-decouple.
			root.Nanosleep(300 * sim.Microsecond)
			if u.BLT().Coupled() {
				t.Error("victim unexpectedly coupled; test needs a mid-decouple window")
			}
			if err := rt.SignalULP(root, u, kernel.SIGUSR1); err != nil {
				t.Errorf("SignalULP: %v", err)
			}
			spin = false
			rt.WaitAll()
			if n := len(u.KC().Signals().Deliveries); n != 1 {
				t.Errorf("original KC deliveries = %d, want 1", n)
			}
			for i, s := range rt.Pool().Schedulers() {
				if n := len(s.Task().Signals().Deliveries); n != 0 {
					t.Errorf("scheduler %d got %d deliveries, want 0", i, n)
				}
			}
			return 0
		})
}

// TestEnvRetriesTransientInjectedFaults: EINTR/EAGAIN injected into the
// consistent syscall wrappers are retried transparently — the workload
// completes and the file contents are exactly what a fault-free run
// produces.
func TestEnvRetriesTransientInjectedFaults(t *testing.T) {
	var statuses []int
	plane := bootFaults(t, testConfig(blt.Blocking), 7,
		[]fault.Spec{
			{Site: fault.SiteWrite, Every: 2, Err: "eintr"},
			{Site: fault.SiteOpen, Nth: 1, Err: "eagain"},
		},
		func(rt *Runtime) int {
			if _, err := rt.Spawn(img("io", func(envI interface{}) int {
				env := envI.(*Env)
				env.Decouple()
				fd, err := env.Open("/r", fs.OCreate|fs.OWrOnly)
				if err != nil {
					return 1
				}
				for i := 0; i < 4; i++ {
					if _, err := env.Write(fd, []byte("abcd")); err != nil {
						return 2
					}
				}
				if err := env.Close(fd); err != nil {
					return 3
				}
				env.Couple()
				return 0
			}), SpawnOpts{Scheduler: -1}); err != nil {
				t.Error(err)
				return 1
			}
			var err error
			statuses, err = rt.WaitAll()
			if err != nil {
				t.Errorf("WaitAll: %v", err)
			}
			ino, err := rt.Kernel().FS().Stat("/r")
			if err != nil || ino.Size() != 16 {
				t.Errorf("file after retries = %v, %v; want 16 bytes", ino, err)
			}
			return 0
		})
	if len(statuses) != 1 || statuses[0] != 0 {
		t.Errorf("statuses = %v, want [0]", statuses)
	}
	if plane.Injections() == 0 {
		t.Error("nothing injected; the test exercised nothing")
	}
}

// TestEnvSurfacesNonTransientFault: ENOSPC is not retried — it surfaces
// from the wrapper immediately, and the next call goes through.
func TestEnvSurfacesNonTransientFault(t *testing.T) {
	var werr error
	var statuses []int
	bootFaults(t, testConfig(blt.BusyWait), 8,
		[]fault.Spec{{Site: fault.SiteWrite, Nth: 1, Err: "enospc"}},
		func(rt *Runtime) int {
			if _, err := rt.Spawn(img("nospace", func(envI interface{}) int {
				env := envI.(*Env)
				env.Decouple()
				fd, err := env.Open("/n", fs.OCreate|fs.OWrOnly)
				if err != nil {
					return 1
				}
				_, werr = env.Write(fd, []byte("x"))
				if _, err := env.Write(fd, []byte("ok")); err != nil {
					return 2
				}
				if err := env.Close(fd); err != nil {
					return 3
				}
				env.Couple()
				return 0
			}), SpawnOpts{Scheduler: -1}); err != nil {
				t.Error(err)
				return 1
			}
			var err error
			statuses, err = rt.WaitAll()
			if err != nil {
				t.Errorf("WaitAll: %v", err)
			}
			return 0
		})
	if !errors.Is(werr, kernel.ErrNoSpace) {
		t.Errorf("injected ENOSPC write error = %v, want ErrNoSpace", werr)
	}
	if len(statuses) != 1 || statuses[0] != 0 {
		t.Errorf("statuses = %v, want [0] (the retry-after-ENOSPC write must succeed)", statuses)
	}
}
