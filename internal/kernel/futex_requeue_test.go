package kernel

// Regression tests for the FutexRequeue wake half: its wake slots must
// be claimed through the same per-waiter helper as FutexWake, so the
// futex_lost_wake fault site applies to requeue wakes and the
// Claimed/Delivered/Lost ledger can diverge. Before the fix the wake
// half called makeRunnable directly — Claimed == Delivered was forced
// and requeue wakes were invisible to chaos.

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

// TestFutexRequeueWakeHalfRunsLostWakeSite queues three waiters on one
// word and requeues with every wake destined for the head waiter
// dropped: the claimed slot must be spent (the caller is deceived), the
// doomed waiter must stay on the source queue and become eligible for
// the move half, and the ledger must record the loss.
func TestFutexRequeueWakeHalfRunsLostWakeSite(t *testing.T) {
	e, k := newKernel()
	var src uint64
	k.SetFaultPlane(&stubPlane{
		// Eat only wakes aimed at "doomed" on the source word; the drain
		// wakes on the destination word must go through.
		drop: func(w *Task, a uint64) bool { return w.Name() == "doomed" && a == src },
	})
	space := k.NewAddressSpace()
	a, err := space.Mmap(8, semProt, "rq-src", true, nil)
	if err != nil {
		t.Fatal(err)
	}
	src = a
	b, err := space.Mmap(8, semProt, "rq-dst", true, nil)
	if err != nil {
		t.Fatal(err)
	}
	sleeper := func(name string, after sim.Duration, got *error) *Task {
		tk := k.NewTask(name, space, func(task *Task) int {
			task.Nanosleep(after)
			*got = task.FutexWait(a, 0)
			return 0
		})
		k.Start(tk, 0)
		return tk
	}
	var doomedErr, luckyErr, moverErr error
	doomed := sleeper("doomed", 0, &doomedErr)
	sleeper("lucky", 2*sim.Microsecond, &luckyErr)
	sleeper("mover", 4*sim.Microsecond, &moverErr)
	ret := -1
	var rqErr error
	waker := k.NewTask("waker", space, func(task *Task) int {
		task.Nanosleep(10 * sim.Microsecond) // all three parked, FIFO: doomed, lucky, mover
		ret, rqErr = task.FutexRequeue(a, 0, 2, 1, b)
		// Post-requeue shape: doomed's wake was eaten (slot claimed, still
		// queued), lucky woke, so the move half transfers doomed onto b and
		// mover stays on a. Drain both words.
		if k.FutexWaiters(space.ID, a) != 1 || k.FutexWaiters(space.ID, b) != 1 {
			return 1
		}
		if doomed.State() != TaskBlocked {
			return 2
		}
		task.FutexWake(a, 8)
		task.FutexWake(b, 8)
		return 0
	})
	k.Start(waker, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if rqErr != nil {
		t.Fatalf("FutexRequeue: %v", rqErr)
	}
	if !waker.Exited() || waker.ExitCode() != 0 {
		t.Errorf("waker exit %d: post-requeue queue shape wrong (doomed not left queued / not moved)", waker.ExitCode())
	}
	// Two slots claimed (one eaten, one delivered) plus one waiter moved.
	if ret != 3 {
		t.Errorf("FutexRequeue returned %d, want 3 (2 claimed + 1 moved)", ret)
	}
	for name, err := range map[string]error{"doomed": doomedErr, "lucky": luckyErr, "mover": moverErr} {
		if err != nil {
			t.Errorf("%s: FutexWait returned %v, want nil", name, err)
		}
	}
	st := k.FutexStats()
	// The heart of the regression: requeue wakes feed the fault site, so
	// the ledger diverges — before the fix Claimed == Delivered was
	// structural on this path and Lost stayed 0.
	if st.Lost != 1 {
		t.Errorf("ledger lost=%d, want 1 (requeue wake not routed through the lost-wake site)", st.Lost)
	}
	if st.Claimed != st.Delivered+st.Lost {
		t.Errorf("claims not conserved: claimed=%d delivered=%d lost=%d", st.Claimed, st.Delivered, st.Lost)
	}
	if st.Requeued != 1 {
		t.Errorf("ledger requeued=%d, want 1", st.Requeued)
	}
	if st.Blocked != st.Resumed+st.Timeouts+st.Interrupted {
		t.Errorf("sleeps not conserved: %+v", st)
	}
	if n := k.ResidualFutexWaiters(); n != 0 {
		t.Errorf("%d residual futex waiters", n)
	}
	if n := k.FutexTableSize(); n != 0 {
		t.Errorf("futex table retains %d entries", n)
	}
}

// TestFutexRequeueMovedSleeperKeepsTimeout pins the documented timer
// contract across the new move path: a timed waiter that is requeued
// (not woken) onto another word still times out there, and the timeout
// is charged to the ledger exactly once.
func TestFutexRequeueMovedSleeperKeepsTimeout(t *testing.T) {
	e, k := newKernel()
	space := k.NewAddressSpace()
	a, err := space.Mmap(8, semProt, "rq-src", true, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := space.Mmap(8, semProt, "rq-dst", true, nil)
	if err != nil {
		t.Fatal(err)
	}
	var waitErr error
	waiter := k.NewTask("timed", space, func(task *Task) int {
		waitErr = task.FutexWaitTimeout(a, 0, 100*sim.Microsecond)
		return 0
	})
	mover := k.NewTask("mover", space, func(task *Task) int {
		task.Nanosleep(10 * sim.Microsecond)
		n, err := task.FutexRequeue(a, 0, 0, 1, b)
		if err != nil || n != 1 {
			return 1
		}
		return 0
	})
	k.Start(waiter, 0)
	k.Start(mover, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if !errors.Is(waitErr, ErrTimedOut) {
		t.Errorf("moved timed waiter returned %v, want ErrTimedOut", waitErr)
	}
	st := k.FutexStats()
	if st.Timeouts != 1 || st.Requeued != 1 {
		t.Errorf("ledger timeouts=%d requeued=%d, want 1/1", st.Timeouts, st.Requeued)
	}
	if n := k.FutexTableSize(); n != 0 {
		t.Errorf("futex table retains %d entries", n)
	}
}
