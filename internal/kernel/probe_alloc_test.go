package kernel

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/probe"
	"repro/internal/sim"
)

// The probe plane's cost contract: an unattached attach point costs one
// nil/length check at the fire site and allocates nothing, and even an
// attached observation-only program dispatches allocation-free (the fire
// contexts are recycled from a fixed pool). These tests pin both halves
// on a workload that crosses the dense attach sites in steady state —
// syscall enter/exit, futex wait/timeout/table churn, timer fires and
// the dispatch path — complementing the getpid pins in alloc_test.go.

// futexTimeoutSpinner parks one task in back-to-back timed futex waits
// that always time out: each cycle fires syscall:enter/exit,
// futex:wait, futex:timeout, timer:fire and sched:dispatch, with pooled
// timers keeping the seed path alloc-free. A second task sleeps on the
// word forever so its WaitQueue entry survives between cycles — the
// seed allocates one queue object per create/drop churn cycle, and that
// (pre-existing, probe-independent) cost would otherwise drown the pin.
func futexTimeoutSpinner() (*sim.Engine, *Kernel, func()) {
	e := sim.New()
	k := New(e, arch.Wallaby())
	space := k.NewAddressSpace()
	addr, err := space.Mmap(8, semProt, "spin-word", true, nil)
	if err != nil {
		panic(err)
	}
	parked := k.NewTask("parked", space, func(t *Task) int {
		t.FutexWait(addr, 0) // never woken: pins the table entry
		return 0
	})
	spinner := k.NewTask("spinner", space, func(t *Task) int {
		for {
			if werr := t.FutexWaitTimeout(addr, 0, 5*sim.Microsecond); werr != ErrTimedOut {
				panic(werr)
			}
		}
	})
	parked.SetAffinity(0)
	spinner.SetAffinity(1)
	k.Start(parked, 0)
	k.Start(spinner, 0)
	next := e.Now()
	return e, k, func() {
		next = next.Add(200 * sim.Microsecond)
		if err := e.RunUntil(next); err != nil {
			panic(err)
		}
	}
}

func TestProbeUnattachedSitesZeroAllocs(t *testing.T) {
	e, k, step := futexTimeoutSpinner()
	if k.Probes().Attached(probe.PFutexWait) {
		t.Fatal("bare kernel has futex probes attached")
	}
	step() // absorb one-time growth: first dispatch, timer pool fill
	if got := testing.AllocsPerRun(50, step); got != 0 {
		t.Errorf("unattached futex-timeout loop allocates %.1f per chunk, want 0", got)
	}
	e.Stop()
	e.Shutdown()
}

func TestProbeObserveAttachedZeroAllocs(t *testing.T) {
	e, k, step := futexTimeoutSpinner()
	fired := 0
	k.Probes().Attach("pin", func(c *probe.Ctx) probe.Verdict {
		fired++
		return probe.Verdict{}
	}, probe.PSyscallEnter, probe.PSyscallExit, probe.PFutexWait,
		probe.PFutexTimeout, probe.PTimerFire,
		probe.PSchedDispatch, probe.PSchedSwitch)
	step()
	if fired == 0 {
		t.Fatal("observer never fired — the workload misses every attach site")
	}
	before := fired
	if got := testing.AllocsPerRun(50, step); got != 0 {
		t.Errorf("observe-only probed loop allocates %.1f per chunk, want 0", got)
	}
	if fired == before {
		t.Error("observer stopped firing during the measured chunks")
	}
	e.Stop()
	e.Shutdown()
}
