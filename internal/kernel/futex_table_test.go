package kernel

import (
	"fmt"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// TestFutexTableHygieneSoak churns waits over many distinct futex words,
// draining queues through all three exit paths — delivered wake, timeout
// and signal interrupt — and asserts the futex table retains no drained
// queues: non-empty while sleepers exist, empty again at quiescence,
// with the table-size gauge agreeing.
func TestFutexTableHygieneSoak(t *testing.T) {
	e, k := newKernel()
	reg := metrics.NewRegistry()
	k.SetMetrics(reg)
	space := k.NewAddressSpace()

	const rounds = 16
	var wakeErrs, timeoutErrs, intrErrs []error
	sawPopulated := false
	driver := k.NewTask("driver", space, func(task *Task) int {
		for r := 0; r < rounds; r++ {
			// Wake path: a waiter on a fresh word, drained by FutexWake.
			wAddr, err := space.Mmap(8, semProt, "wake-word", true, nil)
			if err != nil {
				t.Error(err)
				return 1
			}
			waiter := k.NewTask(fmt.Sprintf("w%d", r), space, func(task *Task) int {
				wakeErrs = append(wakeErrs, task.FutexWait(wAddr, 0))
				return 0
			})
			waiter.SetAffinity(1)
			k.Start(waiter, 0)

			// Timeout path: nobody ever wakes this word.
			tAddr, err := space.Mmap(8, semProt, "timeout-word", true, nil)
			if err != nil {
				t.Error(err)
				return 1
			}
			timeouter := k.NewTask(fmt.Sprintf("to%d", r), space, func(task *Task) int {
				timeoutErrs = append(timeoutErrs, task.FutexWaitTimeout(tAddr, 0, 5*sim.Microsecond))
				return 0
			})
			timeouter.SetAffinity(2)
			k.Start(timeouter, 0)

			// Interrupt path: the waiter is pulled out by a signal.
			iAddr, err := space.Mmap(8, semProt, "intr-word", true, nil)
			if err != nil {
				t.Error(err)
				return 1
			}
			victim := k.NewTask(fmt.Sprintf("iv%d", r), space, func(task *Task) int {
				intrErrs = append(intrErrs, task.FutexWait(iAddr, 0))
				return 0
			})
			victim.SetAffinity(3)
			k.Start(victim, 0)

			task.Nanosleep(10 * sim.Microsecond) // let all three block
			if k.FutexTableSize() >= 2 {
				sawPopulated = true
			} else {
				t.Errorf("round %d: table size %d with 3 sleepers, want >= 2", r, k.FutexTableSize())
			}
			task.FutexWake(wAddr, 1)
			if err := task.Kill(victim.PID(), SIGUSR1); err != nil {
				t.Errorf("round %d: kill: %v", r, err)
			}
			task.Nanosleep(20 * sim.Microsecond) // let the timeout fire too
		}
		// Waking a word with no sleepers must not create a table entry.
		ghost, err := space.Mmap(8, semProt, "ghost-word", true, nil)
		if err != nil {
			t.Error(err)
			return 1
		}
		if n := task.FutexWake(ghost, 1); n != 0 {
			t.Errorf("FutexWake on ghost word = %d, want 0", n)
		}
		return 0
	})
	driver.SetAffinity(0)
	k.Start(driver, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}

	if !sawPopulated {
		t.Error("table never observed populated mid-round")
	}
	for _, err := range wakeErrs {
		if err != nil {
			t.Errorf("woken waiter err = %v, want nil", err)
		}
	}
	for _, err := range timeoutErrs {
		if err != ErrTimedOut {
			t.Errorf("timeout waiter err = %v, want ErrTimedOut", err)
		}
	}
	for _, err := range intrErrs {
		if err != ErrInterrupted {
			t.Errorf("interrupted waiter err = %v, want ErrInterrupted", err)
		}
	}
	if got := len(wakeErrs) + len(timeoutErrs) + len(intrErrs); got != 3*rounds {
		t.Errorf("%d waits completed, want %d", got, 3*rounds)
	}
	if n := k.FutexTableSize(); n != 0 {
		t.Errorf("futex table retains %d drained queues at quiescence, want 0", n)
	}
	if n := k.ResidualFutexWaiters(); n != 0 {
		t.Errorf("residual futex waiters = %d, want 0", n)
	}
	g := reg.Gauge("kernel.futex.table_size")
	if g.Value() != 0 {
		t.Errorf("table_size gauge = %d at quiescence, want 0", g.Value())
	}
	if g.Max() < 2 {
		t.Errorf("table_size gauge high-water = %d, want >= 2", g.Max())
	}
}
