package kernel

import (
	"fmt"

	"repro/internal/probe"
	"repro/internal/sim"
)

// WaitQueue is a FIFO queue of blocked kernel tasks. Unlike sim.WaitQ
// (which parks raw procs), waking a task from a WaitQueue goes through
// the scheduler, so the task waits for a CPU core if its core is busy.
//
// The queue is an intrusive doubly-linked list threaded through the
// waiting tasks themselves (Task.wqPrev/wqNext): push, pop and remove
// are all O(1), enqueueing a waiter allocates nothing, and unlinking
// clears the task's link fields so a departed waiter is never retained.
// A task sleeps on at most one queue at a time (block is the only
// enqueuer and the enqueued task is suspended), which is what makes the
// embedded links sound.
type WaitQueue struct {
	head, tail *Task
	n          int

	// ft/key, when ft is non-nil, locate this queue's futex-table entry;
	// unlink drops the entry when the last waiter leaves so the table
	// never accumulates drained queues (see futexTable).
	ft  *futexTable
	key futexKey
}

// Len reports the number of blocked tasks.
func (q *WaitQueue) Len() int { return q.n }

// push appends t, which must not currently be on any queue.
func (q *WaitQueue) push(t *Task) {
	if t.wq != nil {
		panic(fmt.Sprintf("kernel: %s pushed on a wait queue while on another", pidString(t)))
	}
	t.wq = q
	t.wqPrev = q.tail
	if q.tail != nil {
		q.tail.wqNext = t
	} else {
		q.head = t
	}
	q.tail = t
	q.n++
}

// unlink removes t, which must be on q, clearing its link fields.
func (q *WaitQueue) unlink(t *Task) {
	if t.wqPrev != nil {
		t.wqPrev.wqNext = t.wqNext
	} else {
		q.head = t.wqNext
	}
	if t.wqNext != nil {
		t.wqNext.wqPrev = t.wqPrev
	} else {
		q.tail = t.wqPrev
	}
	t.wq, t.wqPrev, t.wqNext = nil, nil, nil
	q.n--
	if q.n == 0 && q.ft != nil {
		q.ft.drop(q.key)
	}
}

func (q *WaitQueue) pop() *Task {
	t := q.head
	if t == nil {
		return nil
	}
	q.unlink(t)
	return t
}

func (q *WaitQueue) remove(t *Task) bool {
	if t.wq != q {
		return false
	}
	q.unlink(t)
	return true
}

// WakeReason records why a blocked task resumed.
type WakeReason int

// Wake reasons.
const (
	WakeNormal WakeReason = iota
	WakeInterrupted
	WakeTimeout
)

// makeRunnable transitions a New or Blocked task to Ready/Running: it is
// dispatched immediately if its chosen core is idle, queued otherwise.
func (k *Kernel) makeRunnable(t *Task, latency sim.Duration) {
	if t.state != TaskNew && t.state != TaskBlocked {
		panic(fmt.Sprintf("kernel: makeRunnable of %s in state %v", pidString(t), t.state))
	}
	if k.super != nil && t.state == TaskBlocked {
		k.super.OnUnblock(t)
		t.waitClass, t.waitAddr, t.waitTarget = WaitNone, 0, nil
	}
	t.blockedOn = nil
	c := k.pickCore(t)
	if c.current == nil {
		k.dispatch(t, c, latency)
		return
	}
	t.state = TaskReady
	k.enqueue(c, t)
}

// dispatch puts t on core c, resuming (or first-starting) its proc after
// the given latency.
func (k *Kernel) dispatch(t *Task, c *Core, latency sim.Duration) {
	if k.probes.Attached(probe.PSchedDispatch) {
		pc := k.probes.Begin(probe.PSchedDispatch, k.engine.Now())
		pc.Task = t
		pc.Val = int64(c.runq.Len())
		k.probes.Fire(pc)
	}
	c.current = t
	t.core = c
	t.lastCore = c.id
	t.state = TaskRunning
	if k.tracing() {
		k.trace("dispatch %s on core %d (+%v)", pidString(t), c.id, latency)
	}
	k.engine.After(latency, c.noteRunFn)
	if t.proc == nil {
		t.proc = k.engine.SpawnAfter(fmt.Sprintf("%s/pid%d", t.name, t.pid), latency, func(p *sim.Proc) {
			status := t.body(t)
			k.exitTask(t, status)
		})
		return
	}
	t.proc.Unpark(latency)
}

// scheduleNext fills a newly idle core from its run queue, charging the
// kernel context-switch cost as dispatch latency.
func (k *Kernel) scheduleNext(c *Core) {
	next := k.pickNext(c)
	if next == nil {
		return
	}
	k.ctxSwitches++
	next.nCtxSwitches++
	k.noteSwitch(next)
	k.dispatch(next, c, k.machine.Costs.KernelSwitch)
}

// block suspends the calling task (which must be t itself, running) on
// the given wait queue (nil for anonymous sleeps) and schedules the next
// task on its core. It returns the reason the task was woken.
func (k *Kernel) block(t *Task, q *WaitQueue) WakeReason {
	if t.state != TaskRunning {
		panic(fmt.Sprintf("kernel: block of non-running %s", pidString(t)))
	}
	t.state = TaskBlocked
	t.wakeReason = WakeNormal
	// Every blocking wait bumps waitSeq, regardless of the path taken
	// (futex, nanosleep, wait, join). A timed futex wait captures the
	// value its sleep will have; its stale-timer guard is therefore
	// airtight even when the task re-blocks on the very same queue
	// through a different wait path before the timer fires.
	t.waitSeq++
	if q != nil {
		q.push(t)
		t.blockedOn = q
	}
	if k.super != nil {
		k.super.OnBlock(t)
	}
	c := t.core
	k.noteStop(c, t)
	t.core = nil
	c.current = nil
	if k.tracing() {
		k.trace("block %s (core %d now free)", pidString(t), c.id)
	}
	k.scheduleNext(c)
	t.proc.Park()
	return t.wakeReason
}

// WakeOne wakes the oldest waiter on q after the given latency, returning
// it (nil when the queue was empty).
func (k *Kernel) WakeOne(q *WaitQueue, latency sim.Duration) *Task {
	t := q.pop()
	if t == nil {
		return nil
	}
	k.makeRunnable(t, latency)
	return t
}

// WakeAll wakes every waiter on q, returning the count.
func (k *Kernel) WakeAll(q *WaitQueue, latency sim.Duration) int {
	n := 0
	for k.WakeOne(q, latency) != nil {
		n++
	}
	return n
}

// interrupt pulls a task out of an interruptible sleep (signal delivery).
// Reports whether the task was actually sleeping on a queue.
func (k *Kernel) interrupt(t *Task, latency sim.Duration) bool {
	if t.state != TaskBlocked || t.blockedOn == nil {
		return false
	}
	if !t.blockedOn.remove(t) {
		// A blocked task whose blockedOn queue does not actually hold it
		// is a state/queue desync: proceeding would double-wake it (once
		// here, once by whoever really holds it). Failing loudly turns
		// the desync into a shrinkable explorer trace instead of a
		// silent conservation violation.
		panic(fmt.Sprintf("kernel: interrupt of %s: task blocked but not on its blockedOn queue", pidString(t)))
	}
	t.wakeReason = WakeInterrupted
	k.makeRunnable(t, latency)
	return true
}

// exitTask finishes a task: charges teardown, publishes the exit status,
// wakes waiters and releases the core. Runs as the final act of the
// task's proc.
func (k *Kernel) exitTask(t *Task, status int) {
	t.Charge(k.machine.Costs.ExitCost)
	t.exited = true
	t.exitCode = status
	if k.probes.Attached(probe.PTaskExit) {
		c := k.probes.Begin(probe.PTaskExit, k.engine.Now())
		c.Task = t
		c.Val = int64(status)
		k.probes.Fire(c)
	}
	if k.super != nil {
		k.super.OnExit(t)
	}
	if k.tracing() {
		k.trace("exit %s status=%d", pidString(t), status)
	}
	if t.space != nil {
		t.space.Detach()
	}
	// Wake anyone Join()ed on this specific task.
	k.WakeAll(&t.doneQ, k.machine.Costs.FutexWakeLatency)
	if t.isThread || t.parent == nil {
		// Threads and the initial task are reaped immediately — including
		// unlinking from the parent's child list, which would otherwise
		// retain every dead thread for the parent's lifetime.
		t.state = TaskDead
		delete(k.tasks, t.pid)
		if t.parent != nil {
			t.parent.removeChild(t)
		}
	} else {
		t.state = TaskZombie
		// Wake a parent blocked in wait().
		k.WakeAll(&t.parent.childWait, k.machine.Costs.FutexWakeLatency)
	}
	c := t.core
	k.noteStop(c, t)
	t.core = nil
	c.current = nil
	k.scheduleNext(c)
	// The proc's body returns after this, terminating the proc.
}

// SchedYield is the sched_yield(2) system-call: reschedule the calling
// task behind any ready task on its core. With an empty queue it costs
// only the trap; otherwise a full kernel context switch happens (the
// Table IV asymmetry).
func (t *Task) SchedYield() {
	k := t.kernel
	fr := k.sysEnter(t, "sched_yield")
	t.Charge(k.machine.Costs.SchedYieldNoSwitch)
	c := t.core
	if c.runq.Len() == 0 {
		k.sysExit(t, fr)
		return
	}
	// Accounting matches scheduleNext: one kernel switch, credited to the
	// *incoming* task. (This path used to credit the yielder instead,
	// which made per-task nCtxSwitches sums disagree with the kernel
	// total under yield storms.) The queue pop stays after the Charge —
	// Charge advances virtual time and other events may run meanwhile, so
	// moving it would change which task sits at the queue head.
	k.ctxSwitches++
	t.Charge(k.machine.Costs.KernelSwitch)
	next := k.pickNext(c)
	next.nCtxSwitches++
	k.noteSwitch(next)
	t.state = TaskReady
	k.noteStop(c, t)
	t.core = nil
	k.enqueue(c, t)
	c.current = nil
	k.dispatch(next, c, 0)
	t.proc.Park()
	k.sysExit(t, fr)
}

// sleepTimer is a pooled Nanosleep timer: one embedded wait queue plus a
// wake callback built once per pooled object, so a sleep allocates
// nothing in steady state. The object recycles only when its timer fires
// (After always fires): a signal-interrupted sleep leaves the queue
// empty and the late fire wakes nobody, exactly as the per-call queue it
// replaces behaved.
type sleepTimer struct {
	k  *Kernel
	q  WaitQueue
	fn func()

	// armed mirrors futexTimer.armed: pooled objects must have no
	// pending event, and the handout assertion catches any path that
	// would recycle a live timer (see getFutexTimer).
	armed bool
}

func (k *Kernel) getSleepTimer() *sleepTimer {
	if n := len(k.sleepTimers); n > 0 {
		st := k.sleepTimers[n-1]
		k.sleepTimers[n-1] = nil
		k.sleepTimers = k.sleepTimers[:n-1]
		if st.armed {
			panic("kernel: sleep timer pool handed out an armed timer")
		}
		st.armed = true
		return st
	}
	st := &sleepTimer{k: k, armed: true}
	st.fn = st.fire
	return st
}

func (st *sleepTimer) fire() {
	k := st.k
	st.armed = false
	if k.probes.Attached(probe.PTimerFire) {
		c := k.probes.Begin(probe.PTimerFire, k.engine.Now())
		c.Site = "sleep"
		if t := st.q.head; t != nil {
			c.Task = t
		}
		k.probes.Fire(c)
	}
	k.WakeOne(&st.q, k.machine.Costs.KernelSwitch)
	if len(k.sleepTimers) < maxTimerPool {
		k.sleepTimers = append(k.sleepTimers, st)
	}
}

// Nanosleep suspends the calling task for the given virtual duration.
// Like nanosleep(2), a signal delivered to the task interrupts the
// sleep: the call returns the unslept remainder and ErrInterrupted
// (EINTR). A completed sleep returns (0, nil). Callers that sleep
// uninterruptibly may ignore both results; the pooled timer's late fire
// finds an empty queue and wakes nobody.
func (t *Task) Nanosleep(d sim.Duration) (sim.Duration, error) {
	k := t.kernel
	fr := k.sysEnter(t, "nanosleep")
	t.Charge(k.machine.Costs.SyscallEntry)
	st := k.getSleepTimer()
	deadline := k.engine.Now().Add(d)
	k.engine.After(d, st.fn)
	k.noteWait(t, WaitSleep, 0, nil)
	reason := k.block(t, &st.q)
	k.sysExit(t, fr)
	if reason == WakeInterrupted {
		remaining := deadline.Sub(k.engine.Now())
		if remaining < 0 {
			remaining = 0
		}
		return remaining, ErrInterrupted
	}
	return 0, nil
}

// Wait implements wait(2): block until some child process exits, reap it
// and return its PID and exit status. Threads (CloneThread) are not
// waitable. The paper relies on this: "the wait() system-call can be
// used to wait for BLT terminations, just like the way used to wait for
// fork()ed processes".
func (t *Task) Wait() (pid, status int, err error) {
	k := t.kernel
	fr := k.sysEnter(t, "wait")
	t.Charge(k.machine.Costs.SyscallEntry + k.machine.Costs.WaitCost)
	for {
		// The scan runs the intrusive child list in creation order —
		// identical reap order to the slice it replaces — and removal is
		// an O(1) unlink instead of a splice.
		waitable := 0
		for ch := t.firstChild; ch != nil; ch = ch.nextSib {
			if ch.isThread {
				continue
			}
			waitable++
			if ch.state == TaskZombie {
				ch.state = TaskDead
				delete(k.tasks, ch.pid)
				t.removeChild(ch)
				k.sysExit(t, fr)
				return ch.pid, ch.exitCode, nil
			}
		}
		if waitable == 0 {
			k.sysExit(t, fr)
			return 0, 0, ErrNoChild
		}
		k.noteWait(t, WaitChild, 0, nil)
		if reason := k.block(t, &t.childWait); reason == WakeInterrupted {
			k.sysExit(t, fr)
			return 0, 0, ErrInterrupted
		}
	}
}

// Join blocks until the given task (typically a CloneThread child)
// exits, returning its status. Models pthread_join.
func (t *Task) Join(target *Task) int {
	k := t.kernel
	fr := k.sysEnter(t, "join")
	t.Charge(k.machine.Costs.SyscallEntry)
	for !target.exited {
		k.noteWait(t, WaitJoin, 0, target)
		k.block(t, &target.doneQ)
	}
	k.sysExit(t, fr)
	return target.exitCode
}
