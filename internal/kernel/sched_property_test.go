package kernel

import (
	"fmt"
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
)

// TestSchedulerRandomWorkloadInvariants spawns a pseudo-random task
// graph (sleeps, yields, compute bursts, clones, semaphore pairs) and
// checks global invariants: every task completes, every parent reaps
// every process child, core busy time never exceeds elapsed time, and
// the run is deterministic.
func TestSchedulerRandomWorkloadInvariants(t *testing.T) {
	for _, seed := range []uint64{3, 17, 2026} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			end1 := runRandomKernelWorkload(t, seed)
			end2 := runRandomKernelWorkload(t, seed)
			if end1 != end2 {
				t.Errorf("nondeterministic: %v vs %v", end1, end2)
			}
		})
	}
}

func runRandomKernelWorkload(t *testing.T, seed uint64) sim.Time {
	t.Helper()
	e := sim.New()
	k := New(e, arch.Wallaby())
	rng := sim.NewRNG(seed)
	const nTasks = 6
	const opsPer = 10

	// Pre-generate per-task op streams.
	plans := make([][]int, nTasks)
	for i := range plans {
		plans[i] = make([]int, opsPer)
		for j := range plans[i] {
			plans[i][j] = rng.Intn(4)
		}
	}
	pins := make([]int, nTasks)
	for i := range pins {
		pins[i] = rng.Intn(4) - 1 // -1..2
	}

	completed := 0
	space := k.NewAddressSpace()
	for i := 0; i < nTasks; i++ {
		i := i
		task := k.NewTask(fmt.Sprintf("w%d", i), space, func(task *Task) int {
			childCount := 0
			for _, op := range plans[i] {
				switch op {
				case 0:
					task.SchedYield()
				case 1:
					task.Nanosleep(sim.Duration(i+1) * sim.Microsecond)
				case 2:
					task.Compute(2 * sim.Microsecond)
				case 3:
					task.Clone(fmt.Sprintf("w%d.c%d", i, childCount), PiPProcessFlags,
						func(c *Task) int {
							c.Compute(sim.Microsecond)
							return 0
						})
					childCount++
				}
			}
			for j := 0; j < childCount; j++ {
				if _, _, err := task.Wait(); err != nil {
					t.Errorf("task %d wait %d: %v", i, j, err)
				}
			}
			completed++
			return 0
		})
		if pins[i] >= 0 {
			task.SetAffinity(pins[i])
		}
		k.Start(task, 0)
	}
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if completed != nTasks {
		t.Errorf("completed = %d, want %d", completed, nTasks)
	}
	// No core can have been busy longer than the run lasted.
	for i := 0; i < k.Cores(); i++ {
		if busy := k.Core(i).Busy(); sim.Time(busy) > e.Now() {
			t.Errorf("core %d busy %v > elapsed %v", i, busy, e.Now())
		}
	}
	return e.Now()
}

// TestAffinityMigrationOnWake: changing affinity while blocked takes
// effect at the next wakeup.
func TestAffinityMigrationOnWake(t *testing.T) {
	e, k := newKernel()
	var coreBefore, coreAfter int
	task := k.NewTask("migrant", k.NewAddressSpace(), func(task *Task) int {
		coreBefore = task.Core().ID()
		task.SetAffinity(5)
		task.Nanosleep(sim.Microsecond) // block: wake dispatches on core 5
		coreAfter = task.Core().ID()
		return 0
	})
	task.SetAffinity(1)
	k.Start(task, 0)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if coreBefore != 1 || coreAfter != 5 {
		t.Errorf("cores = %d -> %d, want 1 -> 5", coreBefore, coreAfter)
	}
}

// TestTwoTasksNeverShareACoreSimultaneously exercises the dispatch
// invariant with an observer callback.
func TestCoreExclusiveOccupancy(t *testing.T) {
	e, k := newKernel()
	violations := 0
	check := func() {
		seen := map[int]int{}
		for pid := 1; pid < 20; pid++ {
			task := k.Task(pid)
			if task == nil || task.State() != TaskRunning {
				continue
			}
			c := task.Core().ID()
			seen[c]++
			if seen[c] > 1 {
				violations++
			}
		}
	}
	for i := 0; i < 6; i++ {
		task := k.NewTask(fmt.Sprintf("t%d", i), k.NewAddressSpace(), func(task *Task) int {
			for j := 0; j < 5; j++ {
				task.Compute(sim.Microsecond)
				check()
				task.SchedYield()
			}
			return 0
		})
		task.SetAffinity(i % 2) // force sharing of two cores
		k.Start(task, 0)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if violations != 0 {
		t.Errorf("%d exclusive-occupancy violations", violations)
	}
}

// TestWaitReapsInAnyOrder: children exiting in scrambled order are all
// reaped.
func TestWaitReapsInAnyOrder(t *testing.T) {
	_, k := newKernel()
	runMain(t, k, func(parent *Task) int {
		delays := []sim.Duration{30, 10, 20, 5}
		for i, d := range delays {
			d := d
			parent.Clone(fmt.Sprintf("c%d", i), PiPProcessFlags, func(c *Task) int {
				c.Nanosleep(d * sim.Microsecond)
				return int(d)
			})
		}
		got := map[int]bool{}
		for range delays {
			_, status, err := parent.Wait()
			if err != nil {
				t.Errorf("wait: %v", err)
			}
			got[status] = true
		}
		for _, d := range delays {
			if !got[int(d)] {
				t.Errorf("child with status %d never reaped", d)
			}
		}
		if _, _, err := parent.Wait(); err != ErrNoChild {
			t.Errorf("extra wait err = %v, want ErrNoChild", err)
		}
		return 0
	})
}
