package kernel

// Property tests for the dense-slice FDTable and its min-heap free list
// (PR 6 replaced the map + linear-scan-from-3 table): heavy close/reopen
// churn checked against a reference model, and the POSIX lowest-slot
// reuse law checked directly.

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/fs"
)

// refFDTable is the obviously-correct reference: a map plus a linear
// scan upward from firstUserFD. The dense-slice table must agree with it
// on every operation.
type refFDTable struct {
	files map[int]*fs.File
}

func (r *refFDTable) alloc(f *fs.File) int {
	fd := firstUserFD
	for r.files[fd] != nil {
		fd++
	}
	r.files[fd] = f
	return fd
}

func (r *refFDTable) remove(fd int) *fs.File {
	f := r.files[fd]
	delete(r.files, fd)
	return f
}

// TestFDTableChurnAgainstReference drives 20k random open/close/lookup
// operations through both implementations with a fixed seed and demands
// exact agreement: same descriptor from every Alloc (the lowest-free
// law), same file from every Get, same open count throughout.
func TestFDTableChurnAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(0xfd7ab1e))
	ft := NewFDTable()
	ref := &refFDTable{files: map[int]*fs.File{}}
	// open tracks live descriptors for random picks (order irrelevant;
	// closes swap-remove), kept incrementally so the test stays fast.
	var open []int
	for op := 0; op < 20_000; op++ {
		switch r := rng.Intn(10); {
		case r < 5 || len(open) == 0: // open
			f := &fs.File{}
			got, want := ft.Alloc(f), ref.alloc(f)
			if got != want {
				t.Fatalf("op %d: Alloc returned fd %d, lowest free is %d", op, got, want)
			}
			open = append(open, got)
		case r < 8: // close a random open fd
			i := rng.Intn(len(open))
			fd := open[i]
			open[i] = open[len(open)-1]
			open = open[:len(open)-1]
			got, err := ft.Remove(fd)
			if err != nil {
				t.Fatalf("op %d: Remove(%d): %v", op, fd, err)
			}
			if want := ref.remove(fd); got != want {
				t.Fatalf("op %d: Remove(%d) returned wrong file", op, fd)
			}
		default: // look up a random open fd
			fd := open[rng.Intn(len(open))]
			got, err := ft.Get(fd)
			if err != nil {
				t.Fatalf("op %d: Get(%d): %v", op, fd, err)
			}
			if got != ref.files[fd] {
				t.Fatalf("op %d: Get(%d) returned wrong file", op, fd)
			}
		}
		if ft.Len() != len(ref.files) {
			t.Fatalf("op %d: Len=%d, reference holds %d", op, ft.Len(), len(ref.files))
		}
	}
	// Closed and out-of-range descriptors must error, not misresolve.
	for _, fd := range []int{0, 2, firstUserFD + 1_000_000} {
		if _, err := ft.Get(fd); err == nil {
			t.Errorf("Get(%d) succeeded on a closed/out-of-range fd", fd)
		}
	}
}

// TestFDTableLowestSlotReuse closes a scattered batch of descriptors and
// checks the reopen order: each Alloc must fill the holes strictly
// lowest-first before the table grows again.
func TestFDTableLowestSlotReuse(t *testing.T) {
	ft := NewFDTable()
	const n = 64
	for i := 0; i < n; i++ {
		ft.Alloc(&fs.File{})
	}
	closed := []int{firstUserFD + 41, firstUserFD + 3, firstUserFD + 17,
		firstUserFD + 60, firstUserFD + 4, firstUserFD + 29}
	for _, fd := range closed {
		if _, err := ft.Remove(fd); err != nil {
			t.Fatalf("Remove(%d): %v", fd, err)
		}
	}
	sort.Ints(closed)
	for _, want := range closed {
		if got := ft.Alloc(&fs.File{}); got != want {
			t.Fatalf("Alloc returned fd %d, want lowest hole %d", got, want)
		}
	}
	// Holes exhausted: the next descriptor extends the table.
	if got, want := ft.Alloc(&fs.File{}), firstUserFD+n; got != want {
		t.Errorf("post-holes Alloc returned %d, want fresh top slot %d", got, want)
	}
}

// TestFDTableCopyIndependence forks the table mid-churn (fork-style
// Clone without CloneFiles) and checks the copy preserves descriptor
// numbers exactly while sharing no free-list state with the parent.
func TestFDTableCopyIndependence(t *testing.T) {
	ft := NewFDTable()
	files := make([]*fs.File, 8)
	for i := range files {
		files[i] = &fs.File{}
		ft.Alloc(files[i])
	}
	ft.Remove(firstUserFD + 2)
	ft.Remove(firstUserFD + 5)

	cp := ft.Copy()
	if cp.Len() != ft.Len() {
		t.Fatalf("copy Len=%d, want %d", cp.Len(), ft.Len())
	}
	for i, f := range files {
		fd := firstUserFD + i
		if i == 2 || i == 5 {
			if _, err := cp.Get(fd); err == nil {
				t.Errorf("copy resolves closed fd %d", fd)
			}
			continue
		}
		if got, err := cp.Get(fd); err != nil || got != f {
			t.Errorf("copy Get(%d) = %v, %v; want original file", fd, got, err)
		}
	}
	// Divergence: the parent consumes hole 2; the copy's own free list
	// must still hand out 2 first, and parent mutations must not leak in.
	if got, want := ft.Alloc(&fs.File{}), firstUserFD+2; got != want {
		t.Fatalf("parent Alloc=%d, want %d", got, want)
	}
	if got, want := cp.Alloc(&fs.File{}), firstUserFD+2; got != want {
		t.Errorf("copy Alloc=%d, want %d (free list must be independent)", got, want)
	}
	if got, want := cp.Alloc(&fs.File{}), firstUserFD+5; got != want {
		t.Errorf("copy second Alloc=%d, want %d", got, want)
	}
}
