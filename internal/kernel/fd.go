package kernel

import "repro/internal/fs"

// FDTable maps small-integer file descriptors to open file descriptions.
// Whether a table is shared between tasks is decided by CloneFiles — this
// is exactly the per-process kernel state whose consistency the ULP layer
// must preserve: "the opened file descriptor is only valid if the KC
// calling open() and the KC calling read() are the same".
//
// The table is a dense slice indexed by descriptor plus a min-heap of
// released descriptors: Alloc still hands out the lowest free fd (the
// POSIX rule the map-scan implementation enforced by walking from 3
// upward — O(open fds) per allocation), but in O(log holes), and Get is
// an array index.
type FDTable struct {
	files []*fs.File // index fd-firstUserFD; nil = closed
	free  []int      // min-heap of released descriptors below len(files)
	n     int        // open descriptors
}

// firstUserFD is the lowest fd handed out (0-2 are reserved for the
// standard streams, which the simulation does not model).
const firstUserFD = 3

// NewFDTable creates an empty descriptor table.
func NewFDTable() *FDTable { return &FDTable{} }

// Alloc installs a file at the lowest free descriptor and returns it.
// Every released descriptor is below the slice's append boundary, so the
// heap minimum — when one exists — is the lowest free fd overall.
func (ft *FDTable) Alloc(f *fs.File) int {
	ft.n++
	if len(ft.free) > 0 {
		fd := ft.popFree()
		ft.files[fd-firstUserFD] = f
		return fd
	}
	ft.files = append(ft.files, f)
	return firstUserFD + len(ft.files) - 1
}

// Get resolves a descriptor.
func (ft *FDTable) Get(fd int) (*fs.File, error) {
	i := fd - firstUserFD
	if i < 0 || i >= len(ft.files) || ft.files[i] == nil {
		return nil, ErrBadFD
	}
	return ft.files[i], nil
}

// Remove releases a descriptor, returning the file (the caller closes
// it).
func (ft *FDTable) Remove(fd int) (*fs.File, error) {
	i := fd - firstUserFD
	if i < 0 || i >= len(ft.files) || ft.files[i] == nil {
		return nil, ErrBadFD
	}
	f := ft.files[i]
	ft.files[i] = nil
	ft.n--
	ft.pushFree(fd)
	return f, nil
}

// Copy duplicates the table (fork-style: same open descriptions, new
// table). Descriptor numbers are preserved exactly.
func (ft *FDTable) Copy() *FDTable {
	cp := &FDTable{n: ft.n}
	if len(ft.files) > 0 {
		cp.files = append([]*fs.File(nil), ft.files...)
	}
	if len(ft.free) > 0 {
		cp.free = append([]int(nil), ft.free...)
	}
	return cp
}

// Len reports the number of open descriptors.
func (ft *FDTable) Len() int { return ft.n }

// pushFree inserts fd into the released-descriptor min-heap.
func (ft *FDTable) pushFree(fd int) {
	h := append(ft.free, fd)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= fd {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = fd
	ft.free = h
}

// popFree removes and returns the minimum released descriptor.
func (ft *FDTable) popFree() int {
	h := ft.free
	min := h[0]
	last := h[len(h)-1]
	h = h[:len(h)-1]
	ft.free = h
	if len(h) > 0 {
		i := 0
		for {
			c := 2*i + 1
			if c >= len(h) {
				break
			}
			if c+1 < len(h) && h[c+1] < h[c] {
				c++
			}
			if h[c] >= last {
				break
			}
			h[i] = h[c]
			i = c
		}
		h[i] = last
	}
	return min
}
