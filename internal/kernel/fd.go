package kernel

import "repro/internal/fs"

// FDTable maps small-integer file descriptors to open file descriptions.
// Whether a table is shared between tasks is decided by CloneFiles — this
// is exactly the per-process kernel state whose consistency the ULP layer
// must preserve: "the opened file descriptor is only valid if the KC
// calling open() and the KC calling read() are the same".
type FDTable struct {
	files map[int]*fs.File
	next  int
}

// firstUserFD is the lowest fd handed out (0-2 are reserved for the
// standard streams, which the simulation does not model).
const firstUserFD = 3

// NewFDTable creates an empty descriptor table.
func NewFDTable() *FDTable {
	return &FDTable{files: make(map[int]*fs.File), next: firstUserFD}
}

// Alloc installs a file at the lowest free descriptor and returns it.
func (ft *FDTable) Alloc(f *fs.File) int {
	fd := firstUserFD
	for ft.files[fd] != nil {
		fd++
	}
	ft.files[fd] = f
	return fd
}

// Get resolves a descriptor.
func (ft *FDTable) Get(fd int) (*fs.File, error) {
	f := ft.files[fd]
	if f == nil {
		return nil, ErrBadFD
	}
	return f, nil
}

// Remove releases a descriptor, returning the file (the caller closes
// it).
func (ft *FDTable) Remove(fd int) (*fs.File, error) {
	f := ft.files[fd]
	if f == nil {
		return nil, ErrBadFD
	}
	delete(ft.files, fd)
	return f, nil
}

// Copy duplicates the table (fork-style: same open descriptions, new
// table).
func (ft *FDTable) Copy() *FDTable {
	cp := NewFDTable()
	for fd, f := range ft.files {
		cp.files[fd] = f
	}
	return cp
}

// Len reports the number of open descriptors.
func (ft *FDTable) Len() int { return len(ft.files) }
