package kernel

import "errors"

// Resource-limit errors reported by the supervised admission sites. They
// model the errno a real kernel returns when an rlimit is hit, so
// callers degrade gracefully instead of growing without bound.
var (
	// ErrThreadLimit is EAGAIN from clone(2): the per-process thread cap.
	ErrThreadLimit = errors.New("kernel: thread limit reached (EAGAIN)")
	// ErrFDLimit is EMFILE from open(2): the per-process descriptor cap.
	ErrFDLimit = errors.New("kernel: file-descriptor limit reached (EMFILE)")
	// ErrTimerLimit is EAGAIN from a timed futex wait: the per-task
	// pending-timer cap.
	ErrTimerLimit = errors.New("kernel: pending-timer limit reached (EAGAIN)")
	// ErrFutexWaiterLimit is EAGAIN from futex(FUTEX_WAIT): the
	// waiters-per-word cap.
	ErrFutexWaiterLimit = errors.New("kernel: futex waiters-per-word limit reached (EAGAIN)")
)

// WaitClass says what kind of sleep a blocked task is in. The
// supervision plane uses it to build the wait-for graph: futex and join
// waits carry an edge to a possible holder, the rest are leaves.
type WaitClass int

// Wait classes.
const (
	WaitNone WaitClass = iota
	WaitFutex
	WaitJoin
	WaitChild
	WaitPipeRead
	WaitPipeWrite
	WaitSleep
)

// String implements fmt.Stringer.
func (c WaitClass) String() string {
	switch c {
	case WaitNone:
		return "none"
	case WaitFutex:
		return "futex"
	case WaitJoin:
		return "join"
	case WaitChild:
		return "child"
	case WaitPipeRead:
		return "pipe-read"
	case WaitPipeWrite:
		return "pipe-write"
	case WaitSleep:
		return "sleep"
	}
	return "?"
}

// Supervisor observes task lifecycle transitions and gates resource
// admission. internal/supervise implements it; the kernel only knows
// this interface (like FaultPlane) so the dependency points outward.
//
// Install before the simulation runs. With no supervisor installed every
// hook site costs one nil check and nothing else — no events are
// scheduled and no fields are written, so supervised-off runs are
// byte-identical to builds that predate the hooks.
//
// Hooks run inside the kernel's scheduling paths: they must not charge
// time, block, or call back into the kernel's scheduling entry points.
type Supervisor interface {
	// OnBlock fires after t transitions to TaskBlocked, with its wait
	// annotations (WaitClass and friends) set.
	OnBlock(t *Task)
	// OnUnblock fires when a blocked t is made runnable again (wake,
	// timeout, signal), before its wait annotations are discarded.
	OnUnblock(t *Task)
	// OnClone fires after child is created by parent (any clone path).
	OnClone(parent, child *Task)
	// OnExit fires at the start of task teardown.
	OnExit(t *Task)
	// OnTimerFired fires when a timed futex wait's timer expires
	// (whether or not the sleep is still live), balancing AdmitTimer.
	OnTimerFired(t *Task)
	// OnFutexRequeue fires when FutexRequeue transfers the still-blocked
	// sleeper t onto the wait queue of addr, after the task's wait
	// annotation has been updated — the plane must refresh its wait
	// record so futex edges in the wait-for graph follow the move.
	OnFutexRequeue(t *Task, addr uint64)
	// AdmitThread gates TryClone: non-nil (ErrThreadLimit) rejects.
	AdmitThread(parent *Task) error
	// AdmitFD gates Open: non-nil (ErrFDLimit) rejects.
	AdmitFD(t *Task) error
	// AdmitTimer gates arming a futex-wait timeout and counts it armed.
	AdmitTimer(t *Task) error
	// AdmitFutexWait gates a futex sleep given the word's current waiter
	// count.
	AdmitFutexWait(t *Task, waiters int) error
}

// SetSupervisor installs the supervision plane (nil clears it). Must be
// set before the simulation runs: the plane's watchdog schedules engine
// events, so installing it mid-run would perturb event ordering
// relative to a run that had it from the start.
func (k *Kernel) SetSupervisor(s Supervisor) { k.super = s }

// Supervisor returns the installed supervision plane, or nil.
func (k *Kernel) Supervisor() Supervisor { return k.super }

// noteWait annotates the calling task's imminent block so the
// supervision plane can classify it. A no-op without a supervisor: the
// annotations are read only by OnBlock.
func (k *Kernel) noteWait(t *Task, class WaitClass, addr uint64, target *Task) {
	if k.super == nil {
		return
	}
	t.waitClass, t.waitAddr, t.waitTarget = class, addr, target
}

// WaitClass reports what kind of sleep the task is in (valid while
// blocked with a supervisor installed; WaitNone otherwise).
func (t *Task) WaitClass() WaitClass { return t.waitClass }

// WaitAddr reports the futex word a WaitFutex sleep is on.
func (t *Task) WaitAddr() uint64 { return t.waitAddr }

// WaitTarget reports the task a WaitJoin sleep is joined on.
func (t *Task) WaitTarget() *Task { return t.waitTarget }

// SetSupervisionTag attaches an opaque per-task record for the
// supervision plane (its wait-graph node); the kernel never reads it.
func (t *Task) SetSupervisionTag(v any) { t.supTag = v }

// SupervisionTag returns the record attached by SetSupervisionTag.
func (t *Task) SupervisionTag() any { return t.supTag }

// TryClone is Clone with graceful resource-limit failure: when a
// supervisor caps per-process threads, it returns ErrThreadLimit
// instead of spawning — before any cost is charged, as a real clone(2)
// failing with EAGAIN would. Without a supervisor it never fails.
func (t *Task) TryClone(name string, flags CloneFlags, body TaskBody) (*Task, error) {
	return t.TryClonePinned(name, flags, -1, body)
}

// TryClonePinned is ClonePinned with graceful resource-limit failure.
func (t *Task) TryClonePinned(name string, flags CloneFlags, core int, body TaskBody) (*Task, error) {
	if s := t.kernel.super; s != nil {
		if err := s.AdmitThread(t); err != nil {
			return nil, err
		}
	}
	return t.ClonePinned(name, flags, core, body), nil
}
