package kernel

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/probe"
	"repro/internal/sim"
)

// TaskState is the scheduler-visible state of a kernel task.
type TaskState int

// Task states.
const (
	TaskNew TaskState = iota
	TaskReady
	TaskRunning
	TaskBlocked
	TaskZombie
	TaskDead
)

// String implements fmt.Stringer.
func (s TaskState) String() string {
	switch s {
	case TaskNew:
		return "new"
	case TaskReady:
		return "ready"
	case TaskRunning:
		return "running"
	case TaskBlocked:
		return "blocked"
	case TaskZombie:
		return "zombie"
	case TaskDead:
		return "dead"
	}
	return "?"
}

// CloneFlags select what a cloned task shares with its parent, mirroring
// the Linux clone(2) flags PiP depends on.
type CloneFlags uint32

// Clone flag bits.
const (
	// CloneVM shares the parent's address space (the essence of PiP's
	// process mode: same page table, distinct everything else).
	CloneVM CloneFlags = 1 << iota
	// CloneFiles shares the parent's file-descriptor table.
	CloneFiles
	// CloneSighand shares the parent's signal handler table.
	CloneSighand
	// CloneThread makes the child a thread in the parent's thread
	// group: same TGID (getpid value), not waited for by wait().
	CloneThread
)

// PThreadFlags is the flag set pthread_create uses.
const PThreadFlags = CloneVM | CloneFiles | CloneSighand | CloneThread

// PiPProcessFlags is the flag set PiP's process mode uses: shared address
// space, but own PID, own FDs, own signal handlers — a real process in
// the kernel's eyes.
const PiPProcessFlags = CloneVM

// TaskBody is the code a kernel task executes; its return value is the
// exit status.
type TaskBody func(t *Task) int

// Task is a simulated kernel task — the paper's kernel context (KC). It
// is the schedulable entity and the owner of per-process kernel state:
// PID, file descriptors, signal state and the TLS register.
type Task struct {
	kernel *Kernel
	name   string
	pid    int
	tgid   int // thread-group id: what getpid() returns
	parent *Task

	state  TaskState
	core   *Core // core the task is running on (nil unless Running)
	pinned int   // pinned core id, -1 for unpinned
	// lastCore is the core the task most recently ran on (-1 before its
	// first dispatch); locality-aware scheduler policies prefer it when
	// the task wakes.
	lastCore int

	proc *sim.Proc
	body TaskBody

	space  *mem.AddressSpace
	fdt    *FDTable
	sig    *SignalState
	tlsReg uint64 // the FS / tpidr_el0 register value

	// The child list is an intrusive doubly-linked list in creation
	// order, threaded through the children's prevSib/nextSib fields:
	// appending a clone and unlinking a reaped child are O(1) and
	// allocation-free, and a reaped child is never retained by a spare
	// slice slot.
	firstChild, lastChild *Task
	prevSib, nextSib      *Task

	childWait WaitQueue // this task blocked in wait() for children
	doneQ     WaitQueue // tasks Join()ed on this task
	exitCode  int
	exited    bool
	isThread  bool // CloneThread: reaped automatically, not via wait()

	// blockedOn, when non-nil, is the wait queue the task sleeps on; it
	// allows signal delivery to interrupt sleeps.
	blockedOn  *WaitQueue
	wakeReason WakeReason
	// Intrusive wait-queue links (see WaitQueue): wq is the queue the
	// task is currently linked on (nil when not queued — unlike
	// blockedOn, which stays set until makeRunnable), wqPrev/wqNext its
	// FIFO neighbours.
	wq             *WaitQueue
	wqPrev, wqNext *Task
	// waitSeq increments in block() on every blocking wait, whatever the
	// path (futex, nanosleep, wait, join); a timed futex wait's timer
	// captures the value of its own sleep so a stale timer can never wake
	// a later sleep — even one re-armed on the very same queue.
	waitSeq uint64

	// Supervision annotations, written only with a Supervisor installed:
	// what kind of sleep the task is in (plus the futex word or join
	// target that classifies it), and the plane's opaque per-task record.
	waitClass  WaitClass
	waitAddr   uint64
	waitTarget *Task
	supTag     any

	// Stats.
	cpuTime      sim.Duration
	nSyscalls    uint64
	nCtxSwitches uint64
}

// NewTask creates the initial task of a "program" outside any clone
// relationship (like init, or the PiP root before spawning). The task is
// left in TaskNew state; call Start to make it runnable.
func (k *Kernel) NewTask(name string, space *mem.AddressSpace, body TaskBody) *Task {
	pid := k.nextPID
	k.nextPID++
	t := &Task{
		kernel:   k,
		name:     name,
		pid:      pid,
		tgid:     pid,
		state:    TaskNew,
		pinned:   -1,
		lastCore: -1,
		body:     body,
		space:    space,
		fdt:      NewFDTable(),
		sig:      NewSignalState(),
	}
	if space != nil {
		space.Attach()
	}
	k.tasks[pid] = t
	return t
}

// Start makes a TaskNew task runnable with the given dispatch latency.
func (k *Kernel) Start(t *Task, latency sim.Duration) {
	if t.state != TaskNew {
		panic(fmt.Sprintf("kernel: Start of task %s in state %v", pidString(t), t.state))
	}
	k.makeRunnable(t, latency)
}

// Name returns the task's diagnostic name.
func (t *Task) Name() string { return t.name }

// PID returns the task's kernel-internal id (what gettid() would say).
func (t *Task) PID() int { return t.pid }

// TGID returns the task's thread-group id (what getpid() returns).
func (t *Task) TGID() int { return t.tgid }

// State returns the scheduler state.
func (t *Task) State() TaskState { return t.state }

// Parent returns the creating task, or nil.
func (t *Task) Parent() *Task { return t.parent }

// Space returns the task's address space.
func (t *Task) Space() *mem.AddressSpace { return t.space }

// FDTable returns the task's file-descriptor table.
func (t *Task) FDTable() *FDTable { return t.fdt }

// Kernel returns the owning kernel.
func (t *Task) Kernel() *Kernel { return t.kernel }

// Pinned reports the pinned core id, or -1.
func (t *Task) Pinned() int { return t.pinned }

// SetAffinity pins the task to a core (sched_setaffinity with one core).
// Must be called before Start or from the task itself while running; a
// running task migrates at its next scheduling point.
func (t *Task) SetAffinity(core int) error {
	if core < -1 || core >= len(t.kernel.cores) {
		return ErrBadCore
	}
	t.pinned = core
	return nil
}

// TLSReg returns the task's TLS register (FS / tpidr_el0) value.
func (t *Task) TLSReg() uint64 { return t.tlsReg }

// CPUTime reports the task's cumulative on-CPU time.
func (t *Task) CPUTime() sim.Duration { return t.cpuTime }

// Core returns the core the task currently runs on, or nil.
func (t *Task) Core() *Core { return t.core }

// CoreID returns the id of the core the task currently runs on, or -1
// when off-CPU (probe.Task's view of placement).
func (t *Task) CoreID() int {
	if t.core == nil {
		return -1
	}
	return t.core.id
}

// LastCore reports the core the task most recently ran on, or -1 before
// its first dispatch. Unlike Core it stays set while the task is off-CPU;
// locality-aware scheduler policies read it at wake time.
func (t *Task) LastCore() int { return t.lastCore }

// CtxSwitches reports how many kernel context switches dispatched this
// task (the per-task share of Kernel.ContextSwitches).
func (t *Task) CtxSwitches() uint64 { return t.nCtxSwitches }

// Exited reports whether the task has terminated.
func (t *Task) Exited() bool { return t.exited }

// ExitCode returns the task's exit status (valid once Exited).
func (t *Task) ExitCode() int { return t.exitCode }

// String implements fmt.Stringer.
func (t *Task) String() string { return pidString(t) }

// Charge consumes on-CPU virtual time. The task must be running. This is
// the only way simulated code spends time, so it also feeds the core's
// busy counter (the power proxy used by the idle-policy ablation).
func (t *Task) Charge(d sim.Duration) {
	if t.state != TaskRunning {
		panic(fmt.Sprintf("kernel: Charge by non-running task %s (%v)", pidString(t), t.state))
	}
	t.cpuTime += d
	t.core.busy += d
	t.proc.Advance(d)
}

// Clone creates a child task per the given flags and makes it runnable
// after the architecture's clone/thread-create latency. The calling task
// pays that cost. body runs in the child.
func (t *Task) Clone(name string, flags CloneFlags, body TaskBody) *Task {
	return t.ClonePinned(name, flags, -1, body)
}

// ClonePinned is Clone with the child pinned to a CPU core before it
// first runs (clone + sched_setaffinity, as pthread_attr_setaffinity_np
// arranges). core -1 leaves the child unpinned.
func (t *Task) ClonePinned(name string, flags CloneFlags, core int, body TaskBody) *Task {
	k := t.kernel
	cost := k.machine.Costs.CloneCost
	if flags&CloneThread != 0 {
		cost = k.machine.Costs.ThreadCreate
	}
	t.Charge(cost)

	pid := k.nextPID
	k.nextPID++
	if core < -1 || core >= len(k.cores) {
		panic(ErrBadCore)
	}
	child := &Task{
		kernel:   k,
		name:     name,
		pid:      pid,
		tgid:     pid,
		parent:   t,
		state:    TaskNew,
		pinned:   core,
		lastCore: -1,
		body:     body,
	}
	if flags&CloneThread != 0 {
		child.tgid = t.tgid
		child.isThread = true
	}
	if flags&CloneVM != 0 {
		child.space = t.space
	} else {
		// Fork-style: a copy-on-write duplicate of the parent's space —
		// the conventional process creation that PiP's shared-space
		// spawn is an alternative to.
		child.space = t.space.ForkCoW(taskCharger{t})
	}
	if child.space != nil {
		child.space.Attach()
	}
	if flags&CloneFiles != 0 {
		child.fdt = t.fdt
	} else {
		child.fdt = t.fdt.Copy()
	}
	if flags&CloneSighand != 0 {
		child.sig = t.sig
	} else {
		child.sig = t.sig.Copy()
	}
	child.tlsReg = t.tlsReg
	t.appendChild(child)
	k.tasks[pid] = child
	if k.super != nil {
		k.super.OnClone(t, child)
	}
	if k.tracing() {
		k.trace("clone %s -> %s (flags=%b)", pidString(t), pidString(child), flags)
	}
	if k.probes.Attached(probe.PTaskSpawn) {
		c := k.probes.Begin(probe.PTaskSpawn, k.engine.Now())
		c.Task = child
		c.Waiter = t
		c.Val = int64(flags)
		k.probes.Fire(c)
	}
	k.makeRunnable(child, 0)
	return child
}

// appendChild links c at the tail of t's child list.
func (t *Task) appendChild(c *Task) {
	c.prevSib = t.lastChild
	if t.lastChild != nil {
		t.lastChild.nextSib = c
	} else {
		t.firstChild = c
	}
	t.lastChild = c
}

// removeChild unlinks c from t's child list, clearing its sibling links
// so the departed child is not retained.
func (t *Task) removeChild(c *Task) {
	if c.prevSib != nil {
		c.prevSib.nextSib = c.nextSib
	} else {
		t.firstChild = c.nextSib
	}
	if c.nextSib != nil {
		c.nextSib.prevSib = c.prevSib
	} else {
		t.lastChild = c.prevSib
	}
	c.prevSib, c.nextSib = nil, nil
}
