package kernel

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// The fault-free syscall hot path must not allocate: with no registry
// installed sysEnter returns a zero stack frame after one nil check, and
// with metrics on the handles are resolved once and histograms update in
// place. These tests pin both properties, mirroring the engine-level
// alloc tests in internal/sim.
//
// The workload is a single resident task spinning on getpid: it never
// blocks, so the run measures only the per-syscall cost. (The dispatch
// path no longer allocates either — its accounting callback is prebuilt
// per core — but keeping it out of the loop keeps the pin single-cause.)

func syscallSpinner(reg *metrics.Registry) (*sim.Engine, func()) {
	e := sim.New()
	k := New(e, arch.Wallaby())
	if reg != nil {
		k.SetMetrics(reg)
	}
	task := k.NewTask("spinner", k.NewAddressSpace(), func(t *Task) int {
		for {
			t.Getpid()
			t.Compute(sim.Microsecond)
		}
	})
	k.Start(task, 0)
	next := e.Now()
	return e, func() {
		next = next.Add(100 * sim.Microsecond)
		if err := e.RunUntil(next); err != nil {
			panic(err)
		}
	}
}

func TestSyscallMetricsOffZeroAllocs(t *testing.T) {
	e, step := syscallSpinner(nil)
	step() // absorb one-time growth: initial dispatch, heap slice
	if got := testing.AllocsPerRun(50, step); got != 0 {
		t.Errorf("metrics-off getpid loop allocates %.1f per chunk, want 0", got)
	}
	e.Stop()
	e.Shutdown()
}

func TestSyscallMetricsOnZeroAllocs(t *testing.T) {
	e, step := syscallSpinner(metrics.NewRegistry())
	step() // warm-up also creates the getpid latency histogram
	if got := testing.AllocsPerRun(50, step); got != 0 {
		t.Errorf("metrics-on getpid loop allocates %.1f per chunk, want 0", got)
	}
	e.Stop()
	e.Shutdown()
}
