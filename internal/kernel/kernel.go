// Package kernel implements the simulated operating-system kernel: kernel
// tasks (the paper's kernel contexts, KCs), CPU cores with affinity, a
// per-core scheduler, system-call dispatch with architecture-dependent
// costs, futexes, semaphores, file descriptors, signals and process
// lifecycle (clone/exit/wait).
//
// Everything a BLT's couple()/decouple() interacts with — blocking
// system-calls, per-process kernel state, the TLS register — lives here.
// System-call consistency (the paper's §V-B) is a property *about* this
// kernel: a system-call must execute on the kernel context owning the
// right PID/FD table. The kernel provides an audit hook so the ULP layer
// can prove it preserves that property.
package kernel

import (
	"errors"
	"fmt"

	"repro/internal/arch"
	"repro/internal/fs"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/probe"
	"repro/internal/ring"
	"repro/internal/sim"
)

// Errors reported by the kernel.
var (
	ErrBadFD       = errors.New("kernel: bad file descriptor")
	ErrNoChild     = errors.New("kernel: no child processes")
	ErrBadPID      = errors.New("kernel: no such process")
	ErrFutexAgain  = errors.New("kernel: futex value changed (EAGAIN)")
	ErrBadCore     = errors.New("kernel: no such CPU core")
	ErrNotRunning  = errors.New("kernel: task is not running on a CPU")
	ErrInterrupted = errors.New("kernel: interrupted by signal (EINTR)")
	ErrInvalid     = errors.New("kernel: invalid argument (EINVAL)")
)

// Kernel is one simulated machine's operating system instance.
type Kernel struct {
	machine *arch.Machine
	engine  *sim.Engine
	cores   []*Core
	phys    *mem.PhysMemory
	fs      *fs.FileSystem

	tasks   map[int]*Task // by PID
	nextPID int

	futexes *futexTable

	// futexTimers / sleepTimers recycle the timer objects of timed futex
	// waits and Nanosleep so the block path allocates nothing in steady
	// state (each object carries a closure built once; see futexTimer and
	// sleepTimer).
	futexTimers []*futexTimer
	sleepTimers []*sleepTimer

	// auditor, when set, observes every system-call with the executing
	// task; the ULP layer uses it to verify system-call consistency.
	auditor func(t *Task, name string)

	// faults, when set, is the fault-injection plane (see fault.go).
	faults FaultPlane

	// super, when set, is the supervision plane (see supervise.go):
	// wait-for-graph bookkeeping hooks plus resource-limit admission.
	super Supervisor

	// policy, when set, is the pluggable dispatch plane (see policy.go):
	// core placement, enqueue position and pick-next order route through
	// it; nil is the built-in FIFO scheduler.
	policy SchedPolicy

	// timeline, when set, receives one record per contiguous span a
	// task occupies a core (see SetTimeline).
	timeline TimelineRecorder

	// metrics, when set, is the registry the kernel publishes into. The
	// per-site handles live in the stock metrics probe (see probes.go),
	// attached by SetMetrics; the metrics-off hot path costs one
	// length check per attach point and zero allocations.
	metrics *metrics.Registry

	// probes is the programmable attach-point layer (see probes.go and
	// internal/probe): every fault/metrics/trace site fires through it.
	// The stock programs below shim the legacy planes; their handles are
	// kept for detach on re-set.
	probes      *probe.Registry
	metricsProg *probe.Program
	faultProg   *probe.Program
	traceProg   *probe.Program

	// Stats.
	syscalls      uint64
	ctxSwitches   uint64
	syscallCounts map[string]uint64

	// fxStats is the always-on futex conservation ledger (plain counters,
	// no registry indirection): invariant oracles check its conservation
	// laws after explored runs. See FutexStats.
	fxStats FutexStats
}

// FutexStats is the kernel's futex accounting ledger, maintained
// unconditionally (unlike the optional metrics registry) so correctness
// oracles can check conservation laws on every run:
//
//	Claimed == Delivered + Lost            (always)
//	Blocked == Resumed + Timeouts + Interrupted   (at quiescence)
//	Delivered == Resumed                   (at quiescence)
//
// "Claimed" follows FutexWake's documented return-value semantics: every
// wake slot consumed, whether the wake was delivered or eaten by an
// injected lost-wake fault.
type FutexStats struct {
	WakeCalls   uint64 // FutexWake invocations
	Claimed     uint64 // wake slots consumed (delivered + lost)
	Delivered   uint64 // waiters actually made runnable by FutexWake
	Lost        uint64 // wakes eaten by the futex_lost_wake fault site
	Blocked     uint64 // futexWait calls that actually went to sleep
	Resumed     uint64 // sleeps ended by a delivered wake
	Timeouts    uint64 // sleeps ended by the timeout timer
	Interrupted uint64 // sleeps ended by signal delivery
	Spurious    uint64 // injected spurious wakeups (never slept)
	Requeued    uint64 // sleepers moved between words by FutexRequeue
}

// FutexStats returns a copy of the futex conservation ledger.
func (k *Kernel) FutexStats() FutexStats { return k.fxStats }

// ResidualFutexWaiters reports the number of tasks still blocked on any
// futex word — nonzero at quiescence means a lost wakeup (or a missing
// one) left a sleeper behind.
func (k *Kernel) ResidualFutexWaiters() int {
	n := 0
	for _, m := range k.futexes.shards {
		for _, q := range m {
			n += q.Len()
		}
	}
	return n
}

// New creates a kernel for the given machine model on the given engine.
func New(e *sim.Engine, m *arch.Machine) *Kernel {
	k := &Kernel{
		machine:       m,
		engine:        e,
		phys:          mem.NewPhysMemory(0),
		fs:            fs.New(),
		tasks:         make(map[int]*Task),
		nextPID:       1,
		probes:        probe.NewRegistry(),
		syscallCounts: make(map[string]uint64),
	}
	k.futexes = newFutexTable(k)
	for i := 0; i < m.Cores(); i++ {
		c := &Core{id: i, kernel: k}
		// The dispatch-latency callback is built once per core so the
		// dispatch hot path schedules it without allocating a closure.
		c.noteRunFn = func() { k.noteRun(c) }
		k.cores = append(k.cores, c)
	}
	// The stock trace probe follows the engine's tracer: attached while
	// one is installed, detached when it is cleared.
	e.OnTracerChange(k.tracerChanged)
	if tr := e.Tracer(); tr != nil {
		k.tracerChanged(tr)
	}
	return k
}

// Machine returns the machine model.
func (k *Kernel) Machine() *arch.Machine { return k.machine }

// Engine returns the simulation engine.
func (k *Kernel) Engine() *sim.Engine { return k.engine }

// Phys returns the machine's physical memory.
func (k *Kernel) Phys() *mem.PhysMemory { return k.phys }

// FS returns the machine's tmpfs instance.
func (k *Kernel) FS() *fs.FileSystem { return k.fs }

// Cores reports the number of CPU cores.
func (k *Kernel) Cores() int { return len(k.cores) }

// Core returns core i.
func (k *Kernel) Core(i int) *Core { return k.cores[i] }

// NewAddressSpace creates an address space with this machine's memory
// cost parameters.
func (k *Kernel) NewAddressSpace() *mem.AddressSpace {
	c := k.machine.Costs
	return mem.NewAddressSpace(k.phys, mem.Costs{
		MinorFault: c.MinorFault,
		MajorFault: c.MajorFault,
		TLBMiss:    c.TLBMissCost,
		CopyBytePS: c.MemCopyBytePS,
	})
}

// SetAuditor installs the system-call audit hook (nil clears it).
func (k *Kernel) SetAuditor(fn func(t *Task, name string)) { k.auditor = fn }

// TimelineRecorder receives scheduling spans: task occupied core from
// start to end (virtual time). The internal/timeline package implements
// it; ulpsim's -timeline flag renders the result.
type TimelineRecorder interface {
	RecordSpan(core int, task string, pid int, start, end sim.Time)
}

// SetTimeline installs a scheduling-span recorder (nil clears it).
func (k *Kernel) SetTimeline(tl TimelineRecorder) { k.timeline = tl }

// SetMetrics installs a metrics registry (nil clears it) by attaching
// the stock metrics probe, which resolves its handles once. Install
// before the simulation runs; the probe only observes (zero verdicts),
// so metrics-on and metrics-off runs of the same seed are
// event-identical.
func (k *Kernel) SetMetrics(reg *metrics.Registry) {
	k.metrics = reg
	if k.metricsProg != nil {
		k.probes.Detach(k.metricsProg)
		k.metricsProg = nil
	}
	if reg == nil {
		return
	}
	k.metricsProg = k.probes.Attach("metrics", newStockMetrics(k, reg).fire, stockMetricsPoints...)
}

// Metrics returns the installed registry, or nil. Runtime layers (blt,
// aio) resolve their own handles from it.
func (k *Kernel) Metrics() *metrics.Registry { return k.metrics }

// FinalizeMetrics publishes end-of-run aggregates (per-core busy time,
// totals) into the registry. Call after the engine drains, before
// dumping.
func (k *Kernel) FinalizeMetrics() {
	if k.metrics == nil {
		return
	}
	for _, c := range k.cores {
		k.metrics.Gauge(fmt.Sprintf("kernel.core.%d.busy_ps", c.id)).Set(int64(c.busy))
	}
	k.metrics.Gauge("kernel.syscalls").Set(int64(k.syscalls))
}

// noteRun marks the moment a task starts occupying a core.
func (k *Kernel) noteRun(c *Core) {
	c.runStart = k.engine.Now()
}

// noteStop closes the current span on core c (if any) and reports it.
func (k *Kernel) noteStop(c *Core, t *Task) {
	if k.timeline == nil || t == nil {
		return
	}
	end := k.engine.Now()
	if end > c.runStart {
		k.timeline.RecordSpan(c.id, t.name, t.pid, c.runStart, end)
	}
}

// Task returns the task with the given PID, or nil.
func (k *Kernel) Task(pid int) *Task { return k.tasks[pid] }

// Syscalls reports the total number of system-calls executed.
func (k *Kernel) Syscalls() uint64 { return k.syscalls }

// SyscallCount reports how many times the named system-call ran.
func (k *Kernel) SyscallCount(name string) uint64 { return k.syscallCounts[name] }

// ContextSwitches reports the number of kernel-level context switches.
func (k *Kernel) ContextSwitches() uint64 { return k.ctxSwitches }

// Core is one CPU core: it runs at most one task at a time and keeps a
// FIFO queue of ready tasks assigned to it. The queue is a ring buffer:
// the slice-based queue it replaces copied every remaining element on
// each pop, an O(n) cost per dispatch that dominated deep-backlog wake
// storms.
type Core struct {
	id      int
	kernel  *Kernel
	current *Task
	runq    ring.Q[*Task]

	// noteRunFn is the pre-built dispatch-latency callback (closes over
	// this core); dispatch schedules it without allocating.
	noteRunFn func()

	busy     sim.Duration // cumulative busy time (power/utilization proxy)
	runStart sim.Time     // when the current occupancy span began
}

// ID returns the core index.
func (c *Core) ID() int { return c.id }

// Current returns the task now running on the core, or nil when idle.
func (c *Core) Current() *Task { return c.current }

// QueueLen reports the number of ready tasks waiting on this core.
func (c *Core) QueueLen() int { return c.runq.Len() }

// Busy reports the core's cumulative busy time.
func (c *Core) Busy() sim.Duration { return c.busy }

// Kernel returns the owning kernel (for scheduler policies).
func (c *Core) Kernel() *Kernel { return c.kernel }

// RunqAt returns the i'th ready task on the core's run queue without
// removing it (0 = next to dispatch under FIFO). For scheduler policies.
func (c *Core) RunqAt(i int) *Task { return c.runq.At(i) }

// RunqRemoveAt removes and returns the i'th ready task, preserving the
// order of the rest. Scheduler policies use it from PickNext; PickNext
// must return only tasks removed this way.
func (c *Core) RunqRemoveAt(i int) *Task { return c.runq.RemoveAt(i) }

func (c *Core) push(t *Task) { c.runq.Push(t) }

func (c *Core) pop() *Task { return c.runq.Pop() }

// pickCore selects a core for a waking task: its pinned core if any,
// otherwise the installed policy's choice, otherwise the lowest-numbered
// idle core, otherwise the core with the shortest queue (ties to the
// lowest index — fully deterministic).
func (k *Kernel) pickCore(t *Task) *Core {
	if t.pinned >= 0 {
		return k.cores[t.pinned]
	}
	if k.policy != nil {
		if c := k.policy.PickCore(k, t); c != nil {
			return c
		}
	}
	best := k.cores[0]
	for _, c := range k.cores {
		if c.current == nil && c.runq.Len() == 0 {
			return c
		}
		if load(c) < load(best) {
			best = c
		}
	}
	return best
}

func load(c *Core) int {
	n := c.runq.Len()
	if c.current != nil {
		n++
	}
	return n
}

// tracing reports whether anything watches the trace:log point (the
// stock trace probe while a tracer is installed, or a custom program).
// Hot paths gate their k.trace calls on it so the unwatched run pays
// neither the variadic boxing nor the pidString formatting of the
// call's arguments.
func (k *Kernel) tracing() bool { return k.probes.Attached(probe.PTraceLog) }

func (k *Kernel) trace(format string, args ...interface{}) {
	if !k.probes.Attached(probe.PTraceLog) {
		return
	}
	c := k.probes.Begin(probe.PTraceLog, k.engine.Now())
	c.Site = "kernel"
	c.Format = format
	c.Args = args
	k.probes.Fire(c)
}

// emit fires a typed instant event attributed to t's current core.
func (k *Kernel) emit(t *Task, kind, format string, args ...interface{}) {
	if !k.probes.Attached(probe.PTraceInstant) {
		return
	}
	c := k.probes.Begin(probe.PTraceInstant, k.engine.Now())
	c.Site = kind
	if t != nil {
		c.Task = t
	}
	c.Format = format
	c.Args = args
	k.probes.Fire(c)
}

func pidString(t *Task) string {
	if t == nil {
		return "<idle>"
	}
	return fmt.Sprintf("%s(pid=%d)", t.name, t.pid)
}
