package kernel

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// futexKey identifies one futex word: an address within an address
// space. Tasks sharing a space (PiP, threads) share futexes on the same
// address — exactly the Linux behaviour the paper's BLOCKING idle policy
// ("the Linux semaphore, implemented by using futex") relies on.
type futexKey struct {
	space uint64
	addr  uint64
}

// futexTable maps futex words to their wait queues. Entries exist only
// while at least one task sleeps on the word: the queue's unlink drops
// the entry when the last waiter leaves (wake, timeout or interrupt),
// so a long-lived machine does not leak one table entry per futex word
// ever touched.
type futexTable struct {
	queues map[futexKey]*WaitQueue
	size   *metrics.Gauge // table-size gauge, nil without a registry
}

func newFutexTable() *futexTable {
	return &futexTable{queues: make(map[futexKey]*WaitQueue)}
}

// queue returns the wait queue for k, creating the table entry if the
// word has no waiters yet. Only the wait path creates entries.
func (ft *futexTable) queue(k futexKey) *WaitQueue {
	q := ft.queues[k]
	if q == nil {
		q = &WaitQueue{ft: ft, key: k}
		ft.queues[k] = q
		if ft.size != nil {
			ft.size.Set(int64(len(ft.queues)))
		}
	}
	return q
}

// lookup returns the wait queue for k without creating an entry (nil
// when nothing sleeps on the word) — the wake path must not populate
// the table.
func (ft *futexTable) lookup(k futexKey) *WaitQueue { return ft.queues[k] }

// drop deletes a drained queue's table entry (called from unlink when
// the last waiter leaves).
func (ft *futexTable) drop(k futexKey) {
	delete(ft.queues, k)
	if ft.size != nil {
		ft.size.Set(int64(len(ft.queues)))
	}
}

// FutexWait implements futex(FUTEX_WAIT): if the 64-bit word at addr in
// the caller's address space still holds expected, block until woken;
// otherwise return ErrFutexAgain immediately.
func (t *Task) FutexWait(addr uint64, expected uint64) error {
	return t.futexWait(addr, expected, 0)
}

// FutexWaitTimeout is FutexWait with a relative timeout: if no wake (or
// signal) arrives within d of virtual time, the wait fails with
// ErrTimedOut. Recovery paths use it to survive lost wakeups; d <= 0
// means wait forever.
func (t *Task) FutexWaitTimeout(addr uint64, expected uint64, d sim.Duration) error {
	return t.futexWait(addr, expected, d)
}

func (t *Task) futexWait(addr uint64, expected uint64, timeout sim.Duration) error {
	k := t.kernel
	fr := k.sysEnter(t, "futex_wait")
	if k.mFutex.waits != nil {
		k.mFutex.waits.Inc()
	}
	t.Charge(k.machine.Costs.FutexWaitCall)
	if err := k.faultSyscall(t, "futex_wait"); err != nil {
		k.sysExit(t, fr)
		return err
	}
	val, err := t.space.ReadU64(addr, taskCharger{t})
	if err != nil {
		k.sysExit(t, fr)
		return err
	}
	if val != expected {
		k.sysExit(t, fr)
		return ErrFutexAgain
	}
	if k.faults != nil && k.faults.FutexSpurious(t, addr) {
		// A spurious wakeup: the caller observes EAGAIN without having
		// slept, as if the word had changed and changed back.
		k.fxStats.Spurious++
		if k.mFutex.spurious != nil {
			k.mFutex.spurious.Inc()
		}
		k.emit(t, "fault", "futex spurious wakeup addr=%#x", addr)
		k.sysExit(t, fr)
		return ErrFutexAgain
	}
	key := futexKey{t.space.ID, addr}
	q := k.futexes.queue(key)
	if timeout > 0 {
		// block() below will bump waitSeq to exactly this value (nothing
		// can block in between: After only schedules a callback). The
		// timer fires only if the task is still in this very sleep —
		// because every blocking wait on any path increments waitSeq, a
		// task that woke and re-blocked on the same queue (say via
		// Semaphore.Wait on the same word) no longer matches.
		seq := t.waitSeq + 1
		k.engine.After(timeout, func() {
			if t.waitSeq == seq && t.state == TaskBlocked && t.blockedOn == q {
				q.remove(t)
				t.wakeReason = WakeTimeout
				k.makeRunnable(t, k.machine.Costs.KernelSwitch)
			}
		})
	}
	k.fxStats.Blocked++
	switch k.block(t, q) {
	case WakeInterrupted:
		k.fxStats.Interrupted++
		k.sysExit(t, fr)
		return ErrInterrupted
	case WakeTimeout:
		k.fxStats.Timeouts++
		if k.mFutex.timeouts != nil {
			k.mFutex.timeouts.Inc()
		}
		k.sysExit(t, fr)
		return ErrTimedOut
	}
	k.fxStats.Resumed++
	k.sysExit(t, fr)
	return nil
}

// FutexWake implements futex(FUTEX_WAKE): wake up to n waiters on addr.
// The caller pays the wake system-call; each woken task additionally
// experiences the kernel wakeup latency before running.
//
// Return-value semantics under fault injection: the return counts wake
// slots *claimed*, including wakes eaten by the futex_lost_wake site —
// a genuinely lost wakeup deceives the waker into believing it woke
// someone, which is precisely the hazard the site models. The `woken`
// metric (and FutexStats.Delivered) count only wakes actually delivered;
// FutexStats.Lost accounts for the difference, so
// return == Delivered + Lost holds per call.
func (t *Task) FutexWake(addr uint64, n int) int {
	k := t.kernel
	fr := k.sysEnter(t, "futex_wake")
	k.fxStats.WakeCalls++
	if k.mFutex.wakes != nil {
		k.mFutex.wakes.Inc()
	}
	t.Charge(k.machine.Costs.FutexWakeCall)
	key := futexKey{t.space.ID, addr}
	claimed, delivered := 0, 0
	// The wake path looks the queue up without creating it: waking a
	// word nobody sleeps on must not populate the futex table.
	//
	// w walks the queue in FIFO order: a dropped wake consumes its slot
	// but must advance past the doomed waiter (which stays queued),
	// otherwise one waiter whose fault stream keeps firing absorbs every
	// slot and starves the rest. The successor is captured before
	// unlinking because unlink clears the links (and may drop the
	// drained queue's table entry).
	if q := k.futexes.lookup(key); q != nil {
		for w := q.head; claimed < n && w != nil; {
			next := w.wqNext
			if k.faults != nil && k.faults.FutexDropWake(w, addr) {
				// Lost wakeup: silently drop the wake destined for this
				// waiter. The waker proceeds believing it woke someone; the
				// waiter stays asleep until a retry, timeout or later wake.
				k.fxStats.Lost++
				if k.mFutex.lost != nil {
					k.mFutex.lost.Inc()
				}
				k.emit(t, "fault", "futex lost wake addr=%#x", addr)
				claimed++
				w = next
				continue
			}
			q.unlink(w)
			k.makeRunnable(w, k.machine.Costs.FutexWakeLatency)
			claimed++
			delivered++
			w = next
		}
	}
	k.fxStats.Claimed += uint64(claimed)
	k.fxStats.Delivered += uint64(delivered)
	if k.mFutex.woken != nil {
		k.mFutex.woken.Add(uint64(delivered))
	}
	k.sysExit(t, fr)
	return claimed
}

// FutexWaiters reports how many tasks sleep on the given word (for tests
// and diagnostics).
func (k *Kernel) FutexWaiters(space uint64, addr uint64) int {
	q := k.futexes.lookup(futexKey{space, addr})
	if q == nil {
		return 0
	}
	return q.Len()
}

// FutexTableSize reports the number of live futex-table entries — words
// with at least one sleeper. Hygiene invariant: the table holds no
// drained queues, so this returns 0 at clean quiescence.
func (k *Kernel) FutexTableSize() int { return len(k.futexes.queues) }

// Semaphore is a counting semaphore over a futex word, mirroring the
// glibc sem_t used by the paper's BLOCKING evaluation. The word lives in
// simulated memory so PiP tasks sharing the address space share the
// semaphore.
type Semaphore struct {
	addr uint64
}

// NewSemaphore allocates a semaphore word in the task's address space
// with the given initial count.
func (t *Task) NewSemaphore(initial uint64) (*Semaphore, error) {
	addr, err := t.space.Mmap(8, semProt, "semaphore", true, taskCharger{t})
	if err != nil {
		return nil, err
	}
	if err := t.space.WriteU64(addr, initial, taskCharger{t}); err != nil {
		return nil, err
	}
	return &Semaphore{addr: addr}, nil
}

// Addr returns the semaphore word's address.
func (s *Semaphore) Addr() uint64 { return s.addr }

// Wait decrements the semaphore, blocking while it is zero (sem_wait).
func (s *Semaphore) Wait(t *Task) error {
	k := t.kernel
	for {
		t.Charge(k.machine.Costs.AtomicOp)
		v, err := t.space.ReadU64(s.addr, taskCharger{t})
		if err != nil {
			return err
		}
		if v > 0 {
			return t.space.WriteU64(s.addr, v-1, taskCharger{t})
		}
		if err := t.FutexWait(s.addr, 0); err != nil && err != ErrFutexAgain {
			return err
		}
	}
}

// Post increments the semaphore and wakes one waiter (sem_post).
func (s *Semaphore) Post(t *Task) error {
	k := t.kernel
	t.Charge(k.machine.Costs.AtomicOp)
	v, err := t.space.ReadU64(s.addr, taskCharger{t})
	if err != nil {
		return err
	}
	if err := t.space.WriteU64(s.addr, v+1, taskCharger{t}); err != nil {
		return err
	}
	t.FutexWake(s.addr, 1)
	return nil
}

// Value reads the current count (for tests).
func (s *Semaphore) Value(t *Task) (uint64, error) {
	return t.space.ReadU64(s.addr, taskCharger{t})
}

// taskCharger adapts a Task to the mem.Charger interface so memory
// operations bill the executing task.
type taskCharger struct{ t *Task }

// Charge implements mem.Charger.
func (c taskCharger) Charge(d sim.Duration) { c.t.Charge(d) }

func (c taskCharger) String() string { return fmt.Sprintf("charger(%s)", pidString(c.t)) }
