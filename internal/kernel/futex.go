package kernel

import (
	"fmt"

	"repro/internal/probe"
	"repro/internal/sim"
)

// futexKey identifies one futex word: an address within an address
// space. Tasks sharing a space (PiP, threads) share futexes on the same
// address — exactly the Linux behaviour the paper's BLOCKING idle policy
// ("the Linux semaphore, implemented by using futex") relies on.
type futexKey struct {
	space uint64
	addr  uint64
}

// futexShardBits selects the shard count: 64 shards keep any one map
// small enough that growth rehashes stay off the block/wake critical
// path even with a million distinct words asleep.
const (
	futexShardBits  = 6
	futexShardCount = 1 << futexShardBits
)

// futexTable maps futex words to their wait queues, sharded by word
// hash. Entries exist only while at least one task sleeps on the word:
// the queue's unlink drops the entry when the last waiter leaves (wake,
// timeout or interrupt), so a long-lived machine does not leak one
// table entry per futex word ever touched. Sharding partitions that
// lifecycle — each shard's map holds only its own words, so create and
// drop never rehash the whole population — while the create-on-wait,
// non-creating-lookup and drained-entry-reclamation rules apply
// per shard exactly as they did for the single table.
type futexTable struct {
	k      *Kernel
	shards [futexShardCount]map[futexKey]*WaitQueue
	total  int // live entries across all shards
}

func newFutexTable(k *Kernel) *futexTable { return &futexTable{k: k} }

// noteSize fires futex:table after an entry was created or dropped (the
// stock metrics probe maintains the kernel.futex.table_size gauge from
// it).
func (ft *futexTable) noteSize() {
	k := ft.k
	if !k.probes.Attached(probe.PFutexTable) {
		return
	}
	c := k.probes.Begin(probe.PFutexTable, k.engine.Now())
	c.Val = int64(ft.total)
	k.probes.Fire(c)
}

// shardOf hashes a futex key to its shard index. The address's low bits
// carry no entropy (words are 8-aligned), so a multiplicative mix feeds
// the top bits, which select the shard.
func shardOf(k futexKey) uint64 {
	h := (k.addr ^ k.space*0x9e3779b97f4a7c15) * 0xbf58476d1ce4e5b9
	return h >> (64 - futexShardBits)
}

// queue returns the wait queue for k, creating the table entry if the
// word has no waiters yet. Only the wait path (including a requeue
// transferring sleepers) creates entries.
func (ft *futexTable) queue(k futexKey) *WaitQueue {
	s := shardOf(k)
	m := ft.shards[s]
	if m == nil {
		m = make(map[futexKey]*WaitQueue)
		ft.shards[s] = m
	}
	q := m[k]
	if q == nil {
		q = &WaitQueue{ft: ft, key: k}
		m[k] = q
		ft.total++
		ft.noteSize()
	}
	return q
}

// lookup returns the wait queue for k without creating an entry (nil
// when nothing sleeps on the word) — the wake path must not populate
// the table.
func (ft *futexTable) lookup(k futexKey) *WaitQueue {
	m := ft.shards[shardOf(k)]
	if m == nil {
		return nil
	}
	return m[k]
}

// drop deletes a drained queue's table entry (called from unlink when
// the last waiter leaves).
func (ft *futexTable) drop(k futexKey) {
	delete(ft.shards[shardOf(k)], k)
	ft.total--
	ft.noteSize()
}

// FutexWait implements futex(FUTEX_WAIT): if the 64-bit word at addr in
// the caller's address space still holds expected, block until woken;
// otherwise return ErrFutexAgain immediately.
func (t *Task) FutexWait(addr uint64, expected uint64) error {
	return t.futexWait(addr, expected, 0)
}

// FutexWaitTimeout is FutexWait with a relative timeout: if no wake (or
// signal) arrives within d of virtual time, the wait fails with
// ErrTimedOut. Recovery paths use it to survive lost wakeups; d <= 0
// means wait forever.
func (t *Task) FutexWaitTimeout(addr uint64, expected uint64, d sim.Duration) error {
	return t.futexWait(addr, expected, d)
}

func (t *Task) futexWait(addr uint64, expected uint64, timeout sim.Duration) error {
	k := t.kernel
	fr := k.sysEnter(t, "futex_wait")
	if k.probes.Attached(probe.PFutexWait) {
		c := k.probes.Begin(probe.PFutexWait, k.engine.Now())
		c.Task = t
		c.Addr = addr
		k.probes.Fire(c)
	}
	t.Charge(k.machine.Costs.FutexWaitCall)
	if err := k.faultSyscall(t, "futex_wait"); err != nil {
		k.sysExit(t, fr)
		return err
	}
	val, err := t.space.ReadU64(addr, taskCharger{t})
	if err != nil {
		k.sysExit(t, fr)
		return err
	}
	if val != expected {
		k.sysExit(t, fr)
		return ErrFutexAgain
	}
	if k.probes.Attached(probe.PFaultSite) {
		c := k.probes.Begin(probe.PFaultSite, k.engine.Now())
		c.Site = "futex_spurious"
		c.Task = t
		c.Addr = addr
		if k.probes.Fire(c).Drop {
			// A spurious wakeup: the caller observes EAGAIN without having
			// slept, as if the word had changed and changed back.
			k.fxStats.Spurious++
			k.faultFired(t, "futex_spurious", nil, "futex spurious wakeup addr=%#x", addr)
			k.sysExit(t, fr)
			return ErrFutexAgain
		}
	}
	key := futexKey{t.space.ID, addr}
	if k.super != nil {
		// Admission runs against a non-creating lookup: rejecting the
		// wait must not leave an empty queue populating the table.
		waiters := 0
		if q0 := k.futexes.lookup(key); q0 != nil {
			waiters = q0.Len()
		}
		if err := k.super.AdmitFutexWait(t, waiters); err != nil {
			k.sysExit(t, fr)
			return err
		}
		if timeout > 0 {
			if err := k.super.AdmitTimer(t); err != nil {
				k.sysExit(t, fr)
				return err
			}
		}
	}
	q := k.futexes.queue(key)
	if timeout > 0 {
		// block() below will bump waitSeq to exactly this value (nothing
		// can block in between: After only schedules a callback). The
		// timer fires only if the task is still in this very sleep —
		// because every blocking wait on any path increments waitSeq, a
		// task that woke and re-blocked on the same queue (say via
		// Semaphore.Wait on the same word) no longer matches. The timer
		// object is pooled (see futexTimer), so a timed wait allocates
		// nothing in steady state; matching on waitSeq alone (plus the
		// blocked state) also keeps the timeout armed across a
		// FutexRequeue, which moves the sleeper to another queue without
		// ending the sleep.
		k.engine.After(timeout, k.getFutexTimer(t, t.waitSeq+1).fn)
	}
	k.fxStats.Blocked++
	k.noteWait(t, WaitFutex, addr, nil)
	switch k.block(t, q) {
	case WakeInterrupted:
		k.fxStats.Interrupted++
		k.sysExit(t, fr)
		return ErrInterrupted
	case WakeTimeout:
		k.fxStats.Timeouts++
		if k.probes.Attached(probe.PFutexTimeout) {
			c := k.probes.Begin(probe.PFutexTimeout, k.engine.Now())
			c.Task = t
			c.Addr = addr
			k.probes.Fire(c)
		}
		k.sysExit(t, fr)
		return ErrTimedOut
	}
	k.fxStats.Resumed++
	k.sysExit(t, fr)
	return nil
}

// FutexWake implements futex(FUTEX_WAKE): wake up to n waiters on addr.
// The caller pays the wake system-call; each woken task additionally
// experiences the kernel wakeup latency before running.
//
// Return-value semantics under fault injection: the return counts wake
// slots *claimed*, including wakes eaten by the futex_lost_wake site —
// a genuinely lost wakeup deceives the waker into believing it woke
// someone, which is precisely the hazard the site models. The `woken`
// metric (and FutexStats.Delivered) count only wakes actually delivered;
// FutexStats.Lost accounts for the difference, so
// return == Delivered + Lost holds per call.
func (t *Task) FutexWake(addr uint64, n int) int {
	k := t.kernel
	fr := k.sysEnter(t, "futex_wake")
	k.fxStats.WakeCalls++
	if k.probes.Attached(probe.PFutexWake) {
		c := k.probes.Begin(probe.PFutexWake, k.engine.Now())
		c.Task = t
		c.Addr = addr
		c.Val = int64(n)
		k.probes.Fire(c)
	}
	t.Charge(k.machine.Costs.FutexWakeCall)
	key := futexKey{t.space.ID, addr}
	claimed, delivered := 0, 0
	// The wake path looks the queue up without creating it: waking a
	// word nobody sleeps on must not populate the futex table.
	//
	// w walks the queue in FIFO order: a dropped wake consumes its slot
	// but must advance past the doomed waiter (which stays queued),
	// otherwise one waiter whose fault stream keeps firing absorbs every
	// slot and starves the rest. The successor is captured before
	// unlinking because unlink clears the links (and may drop the
	// drained queue's table entry).
	if q := k.futexes.lookup(key); q != nil {
		for w := q.head; claimed < n && w != nil; {
			next := w.wqNext
			claimed++
			if k.futexWakeOne(t, q, w, addr) {
				delivered++
			}
			w = next
		}
	}
	k.fxStats.Claimed += uint64(claimed)
	k.fxStats.Delivered += uint64(delivered)
	if k.probes.Attached(probe.PFutexWoken) {
		c := k.probes.Begin(probe.PFutexWoken, k.engine.Now())
		c.Task = t
		c.Addr = addr
		c.Val = int64(delivered)
		k.probes.Fire(c)
	}
	k.sysExit(t, fr)
	return claimed
}

// futexWakeOne claims one wake slot for waiter w, asleep on queue q of
// the word at addr. It consults the per-waiter futex_lost_wake fault
// site — a Drop verdict eats the wake (the slot is consumed, the waiter
// stays queued, the ledger counts a Lost) — and otherwise unlinks the
// waiter and makes it runnable. It reports whether the wake was
// delivered. Both FutexWake and FutexRequeue's wake half claim every
// slot through here, so fault injection and the Claimed/Delivered/Lost
// ledger see requeue wakes exactly as they see plain wakes.
func (k *Kernel) futexWakeOne(waker *Task, q *WaitQueue, w *Task, addr uint64) bool {
	if k.probes.Attached(probe.PFaultSite) {
		c := k.probes.Begin(probe.PFaultSite, k.engine.Now())
		c.Site = "futex_lost_wake"
		c.Task = waker
		c.Waiter = w
		c.Addr = addr
		if k.probes.Fire(c).Drop {
			// Lost wakeup: silently drop the wake destined for this
			// waiter. The waker proceeds believing it woke someone; the
			// waiter stays asleep until a retry, timeout or later wake.
			k.fxStats.Lost++
			k.faultFired(waker, "futex_lost_wake", nil, "futex lost wake addr=%#x", addr)
			return false
		}
	}
	q.unlink(w)
	k.makeRunnable(w, k.machine.Costs.FutexWakeLatency)
	return true
}

// FutexRequeue implements futex(FUTEX_CMP_REQUEUE): if the 64-bit word
// at addr still holds expected, wake up to nWake waiters on addr, then
// transfer up to nMove of the remaining waiters — in FIFO order, without
// waking them — onto the wait queue of addr2. It returns the number of
// wake slots claimed plus waiters moved; as with FutexWake, a claimed
// slot whose wake the futex_lost_wake site ate still counts (the caller
// is deceived exactly as a real lost wakeup would deceive it), and the
// doomed waiter stays on addr, eligible for the move half. Moved
// sleepers keep their pending timeout (a timed wait's timer matches on
// the sleep's waitSeq, not its queue) and are thereafter woken by wakes
// on addr2; the transfer itself creates addr2's table entry only because
// actual sleepers arrive on it, so the create-on-wait table discipline
// is preserved. Each move is gated by the supervisor's waiters-per-word
// admission against the destination queue — sleepers the cap rejects
// simply stay on addr, as with a partial requeue. addr2 must differ from
// addr (EINVAL, as in Linux).
func (t *Task) FutexRequeue(addr, expected uint64, nWake, nMove int, addr2 uint64) (int, error) {
	k := t.kernel
	fr := k.sysEnter(t, "futex_requeue")
	t.Charge(k.machine.Costs.FutexWakeCall)
	if addr2 == addr {
		k.sysExit(t, fr)
		return 0, ErrInvalid
	}
	val, err := t.space.ReadU64(addr, taskCharger{t})
	if err != nil {
		k.sysExit(t, fr)
		return 0, err
	}
	if val != expected {
		k.sysExit(t, fr)
		return 0, ErrFutexAgain
	}
	claimed, delivered, moved := 0, 0, 0
	if q := k.futexes.lookup(futexKey{t.space.ID, addr}); q != nil {
		for w := q.head; claimed < nWake && w != nil; {
			next := w.wqNext
			claimed++
			if k.futexWakeOne(t, q, w, addr) {
				delivered++
			}
			w = next
		}
		if nMove > 0 && q.Len() > 0 {
			key2 := futexKey{t.space.ID, addr2}
			// Admission runs against a non-creating lookup and the entry is
			// created only once a sleeper is actually admitted: a rejected
			// move must not leave an empty queue populating the table.
			waiters2 := 0
			if q0 := k.futexes.lookup(key2); q0 != nil {
				waiters2 = q0.Len()
			}
			var q2 *WaitQueue
			for moved < nMove {
				w := q.head
				if w == nil {
					break
				}
				if k.super != nil {
					if k.super.AdmitFutexWait(w, waiters2) != nil {
						// Destination word is at its waiters-per-word cap.
						// Later sleepers would see the same full queue, so
						// the excess stays on addr — a partial requeue.
						break
					}
				}
				if q2 == nil {
					q2 = k.futexes.queue(key2)
				}
				q.unlink(w)
				q2.push(w)
				w.blockedOn = q2
				if k.super != nil {
					// The sleeper now waits on addr2: refresh the wait
					// annotation and tell the supervision plane, so the
					// wait-for graph's futex edges follow the move instead
					// of resolving the old word forever.
					w.waitAddr = addr2
					k.super.OnFutexRequeue(w, addr2)
				}
				waiters2++
				moved++
			}
		}
	}
	k.fxStats.Claimed += uint64(claimed)
	k.fxStats.Delivered += uint64(delivered)
	k.fxStats.Requeued += uint64(moved)
	if k.probes.Attached(probe.PFutexWoken) {
		c := k.probes.Begin(probe.PFutexWoken, k.engine.Now())
		c.Task = t
		c.Addr = addr
		c.Val = int64(delivered)
		k.probes.Fire(c)
	}
	if k.probes.Attached(probe.PFutexRequeue) {
		c := k.probes.Begin(probe.PFutexRequeue, k.engine.Now())
		c.Task = t
		c.Addr = addr2
		c.Val = int64(moved)
		k.probes.Fire(c)
	}
	k.sysExit(t, fr)
	return claimed + moved, nil
}

// FutexWaiters reports how many tasks sleep on the given word (for tests
// and diagnostics).
func (k *Kernel) FutexWaiters(space uint64, addr uint64) int {
	q := k.futexes.lookup(futexKey{space, addr})
	if q == nil {
		return 0
	}
	return q.Len()
}

// FutexTableSize reports the number of live futex-table entries — words
// with at least one sleeper — summed across all shards. Hygiene
// invariant: no shard holds a drained queue, so this returns 0 at clean
// quiescence (the explorer's quiescence oracle relies on it).
func (k *Kernel) FutexTableSize() int {
	n := 0
	for _, m := range k.futexes.shards {
		n += len(m)
	}
	if n != k.futexes.total {
		panic(fmt.Sprintf("kernel: futex shard sizes sum to %d but the table counts %d", n, k.futexes.total))
	}
	return n
}

// futexTimer is a pooled timeout callback for timed futex waits. The
// closure is built once per pooled object and captures only the object,
// so arming a timeout allocates nothing in steady state; the object
// recycles when its timer fires (After always fires, even when the sleep
// ended first — the fire is then a no-op thanks to the waitSeq guard).
type futexTimer struct {
	k    *Kernel
	task *Task
	seq  uint64
	fn   func()

	// armed is the pool-hygiene tripwire: true from handout until the
	// timer fires. The pool's invariant is "pooled object has no pending
	// event" — objects recycle only in fire — and the assertion in
	// getFutexTimer turns any future violation (say, a cancel path that
	// pools an armed timer) into a panic at handout rather than a stale
	// timer silently waking another waiter's sleep.
	armed bool
}

// maxTimerPool bounds the kernel's timer-object pools, mirroring the
// engine's callback-event freelist bound: a burst of a million in-flight
// timers should not pin a million dead objects forever.
const maxTimerPool = 1024

func (k *Kernel) getFutexTimer(t *Task, seq uint64) *futexTimer {
	var ft *futexTimer
	if n := len(k.futexTimers); n > 0 {
		ft = k.futexTimers[n-1]
		k.futexTimers[n-1] = nil
		k.futexTimers = k.futexTimers[:n-1]
		if ft.armed {
			panic(fmt.Sprintf("kernel: futex timer pool handed out an armed timer (task=%s seq=%d)",
				pidString(ft.task), ft.seq))
		}
	} else {
		ft = &futexTimer{k: k}
		ft.fn = ft.fire
	}
	ft.task, ft.seq, ft.armed = t, seq, true
	return ft
}

func (ft *futexTimer) fire() {
	k, t, seq := ft.k, ft.task, ft.seq
	ft.task = nil
	ft.armed = false
	if len(k.futexTimers) < maxTimerPool {
		k.futexTimers = append(k.futexTimers, ft)
	}
	if k.probes.Attached(probe.PTimerFire) {
		c := k.probes.Begin(probe.PTimerFire, k.engine.Now())
		c.Site = "futex"
		if t != nil {
			c.Task = t
		}
		k.probes.Fire(c)
	}
	if k.super != nil {
		k.super.OnTimerFired(t)
	}
	// The sleep is identified by its waitSeq — bumped by every blocking
	// wait on any path — so a stale timer can never wake a later sleep,
	// and a requeued waiter (now on another word's queue) still times
	// out.
	if t.waitSeq == seq && t.state == TaskBlocked && t.blockedOn != nil {
		t.blockedOn.remove(t)
		t.wakeReason = WakeTimeout
		k.makeRunnable(t, k.machine.Costs.KernelSwitch)
	}
}

// Semaphore is a counting semaphore over a futex word, mirroring the
// glibc sem_t used by the paper's BLOCKING evaluation. The word lives in
// simulated memory so PiP tasks sharing the address space share the
// semaphore.
type Semaphore struct {
	addr uint64
}

// NewSemaphore allocates a semaphore word in the task's address space
// with the given initial count.
func (t *Task) NewSemaphore(initial uint64) (*Semaphore, error) {
	addr, err := t.space.Mmap(8, semProt, "semaphore", true, taskCharger{t})
	if err != nil {
		return nil, err
	}
	if err := t.space.WriteU64(addr, initial, taskCharger{t}); err != nil {
		return nil, err
	}
	return &Semaphore{addr: addr}, nil
}

// Addr returns the semaphore word's address.
func (s *Semaphore) Addr() uint64 { return s.addr }

// Wait decrements the semaphore, blocking while it is zero (sem_wait).
func (s *Semaphore) Wait(t *Task) error {
	k := t.kernel
	for {
		t.Charge(k.machine.Costs.AtomicOp)
		v, err := t.space.ReadU64(s.addr, taskCharger{t})
		if err != nil {
			return err
		}
		if v > 0 {
			return t.space.WriteU64(s.addr, v-1, taskCharger{t})
		}
		if err := t.FutexWait(s.addr, 0); err != nil && err != ErrFutexAgain {
			return err
		}
	}
}

// Post increments the semaphore and wakes one waiter (sem_post).
func (s *Semaphore) Post(t *Task) error {
	k := t.kernel
	t.Charge(k.machine.Costs.AtomicOp)
	v, err := t.space.ReadU64(s.addr, taskCharger{t})
	if err != nil {
		return err
	}
	if err := t.space.WriteU64(s.addr, v+1, taskCharger{t}); err != nil {
		return err
	}
	t.FutexWake(s.addr, 1)
	return nil
}

// Value reads the current count (for tests).
func (s *Semaphore) Value(t *Task) (uint64, error) {
	return t.space.ReadU64(s.addr, taskCharger{t})
}

// taskCharger adapts a Task to the mem.Charger interface so memory
// operations bill the executing task.
type taskCharger struct{ t *Task }

// Charge implements mem.Charger.
func (c taskCharger) Charge(d sim.Duration) { c.t.Charge(d) }

func (c taskCharger) String() string { return fmt.Sprintf("charger(%s)", pidString(c.t)) }
