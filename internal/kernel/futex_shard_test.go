package kernel

import (
	"fmt"
	"testing"

	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// The futex table is sharded by word hash; these tests cover the
// behaviours that sharding could plausibly break: operations spanning
// shards (a requeue moves sleepers between two words that may live in
// different maps), removal paths that must leave no retained waiter in
// whichever shard the word hashed to, and the quiescence invariant
// FutexTableSize()==0 that the explorer's oracle relies on — now a sum
// over all shards cross-checked against the table's live counter.

// pickShardWords mmaps a region and picks three 8-aligned words: a and
// b in different shards, a and c in the same shard. With 64 shards and
// a multiplicative hash both patterns appear within a few hundred
// words.
func pickShardWords(t *testing.T, k *Kernel, space *mem.AddressSpace) (a, b, c uint64) {
	t.Helper()
	base, err := space.Mmap(8*4096, semProt, "shard-words", true, nil)
	if err != nil {
		t.Fatal(err)
	}
	a = base
	sa := shardOf(futexKey{space.ID, a})
	for off := uint64(8); off < 8*4096; off += 8 {
		w := base + off
		s := shardOf(futexKey{space.ID, w})
		if b == 0 && s != sa {
			b = w
		}
		if c == 0 && s == sa && w != a {
			c = w
		}
		if b != 0 && c != 0 {
			return a, b, c
		}
	}
	t.Fatalf("no shard collision and/or difference in 4096 sequential words (shard(a)=%d)", sa)
	return
}

// TestFutexShardDistribution sanity-checks the shard hash: sequential
// 8-aligned words (no entropy in the low bits) must spread over many
// shards rather than clump, or one shard's map silently becomes the old
// single table.
func TestFutexShardDistribution(t *testing.T) {
	var hit [futexShardCount]bool
	n := 0
	for i := 0; i < 4096; i++ {
		s := shardOf(futexKey{space: 1, addr: 0x10000 + uint64(8*i)})
		if s >= futexShardCount {
			t.Fatalf("shardOf returned %d, out of range", s)
		}
		if !hit[s] {
			hit[s] = true
			n++
		}
	}
	if n < futexShardCount/2 {
		t.Errorf("4096 sequential words hit only %d/%d shards", n, futexShardCount)
	}
}

// TestFutexRequeueAcrossShards exercises FUTEX_CMP_REQUEUE over word
// pairs in different shards and in the same shard: wake slots and move
// slots are honoured in FIFO order, the source entry drops when drained,
// the destination entry is created by the arriving sleepers, and wakes
// on the destination word reach the transferred waiters.
func TestFutexRequeueAcrossShards(t *testing.T) {
	e, k := newKernel()
	space := k.NewAddressSpace()
	a, b, c := pickShardWords(t, k, space)

	const nWaiters = 4
	errs := make([]error, nWaiters)
	order := []int(nil)
	for i := 0; i < nWaiters; i++ {
		i := i
		w := k.NewTask(fmt.Sprintf("w%d", i), space, func(task *Task) int {
			task.Nanosleep(sim.Duration(i+1) * sim.Microsecond) // deterministic FIFO arrival
			errs[i] = task.FutexWait(a, 0)
			order = append(order, i)
			return 0
		})
		w.SetAffinity(1 + i%3)
		k.Start(w, 0)
	}
	driver := k.NewTask("driver", space, func(task *Task) int {
		task.Nanosleep(20 * sim.Microsecond) // all four asleep on a

		// Degenerate and failure cases first: same word is EINVAL, a
		// changed value is EAGAIN, and neither touches the queue.
		if _, err := task.FutexRequeue(a, 0, 1, 1, a); err != ErrInvalid {
			t.Errorf("requeue a->a err = %v, want ErrInvalid", err)
		}
		if _, err := task.FutexRequeue(a, 7, 1, 1, b); err != ErrFutexAgain {
			t.Errorf("requeue with stale expected err = %v, want ErrFutexAgain", err)
		}
		if got := k.FutexWaiters(space.ID, a); got != nWaiters {
			t.Errorf("failed requeues disturbed the queue: %d waiters, want %d", got, nWaiters)
		}

		// Cross-shard: wake w0, move w1 and w2 to b (different shard).
		n, err := task.FutexRequeue(a, 0, 1, 2, b)
		if err != nil || n != 3 {
			t.Errorf("requeue a->b = (%d, %v), want (3, nil)", n, err)
		}
		if got := k.FutexWaiters(space.ID, a); got != 1 {
			t.Errorf("after a->b: %d waiters on a, want 1", got)
		}
		if got := k.FutexWaiters(space.ID, b); got != 2 {
			t.Errorf("after a->b: %d waiters on b, want 2", got)
		}
		// Same-shard: move the last sleeper on a to c; a's entry drops.
		n, err = task.FutexRequeue(a, 0, 0, 1, c)
		if err != nil || n != 1 {
			t.Errorf("requeue a->c = (%d, %v), want (1, nil)", n, err)
		}
		if got := k.FutexWaiters(space.ID, a); got != 0 {
			t.Errorf("after a->c: %d waiters on a, want 0", got)
		}
		if got := k.FutexTableSize(); got != 2 {
			t.Errorf("table size = %d with sleepers on b and c only, want 2", got)
		}

		// Transferred waiters are now woken by their new words, in the
		// FIFO order they were moved.
		if got := task.FutexWake(b, 2); got != 2 {
			t.Errorf("FutexWake(b, 2) = %d, want 2", got)
		}
		if got := task.FutexWake(c, 1); got != 1 {
			t.Errorf("FutexWake(c, 1) = %d, want 1", got)
		}
		return 0
	})
	driver.SetAffinity(0)
	k.Start(driver, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	for i, err := range errs {
		if err != nil {
			t.Errorf("waiter %d err = %v, want nil", i, err)
		}
	}
	if len(order) != nWaiters {
		t.Fatalf("%d waiters resumed, want %d", len(order), nWaiters)
	}
	if order[0] != 0 {
		t.Errorf("first resumed waiter = w%d, want w0 (the woken one)", order[0])
	}
	if st := k.FutexStats(); st.Requeued != 3 {
		t.Errorf("FutexStats.Requeued = %d, want 3", st.Requeued)
	}
	if n := k.FutexTableSize(); n != 0 {
		t.Errorf("futex table retains %d entries at quiescence, want 0", n)
	}
	if n := k.ResidualFutexWaiters(); n != 0 {
		t.Errorf("residual futex waiters = %d, want 0", n)
	}
}

// TestFutexTimeoutSurvivesRequeue pins the waitSeq-based timer design: a
// timed waiter moved to another word's queue by FUTEX_CMP_REQUEUE keeps
// its pending timeout and times out on the *destination* queue, whose
// entry must then drop.
func TestFutexTimeoutSurvivesRequeue(t *testing.T) {
	e, k := newKernel()
	space := k.NewAddressSpace()
	a, b, _ := pickShardWords(t, k, space)

	var waitErr error
	w := k.NewTask("tw", space, func(task *Task) int {
		waitErr = task.FutexWaitTimeout(a, 0, 100*sim.Microsecond)
		return 0
	})
	w.SetAffinity(1)
	k.Start(w, 0)
	driver := k.NewTask("driver", space, func(task *Task) int {
		task.Nanosleep(10 * sim.Microsecond)
		n, err := task.FutexRequeue(a, 0, 0, 1, b)
		if err != nil || n != 1 {
			t.Errorf("requeue = (%d, %v), want (1, nil)", n, err)
		}
		if got := k.FutexWaiters(space.ID, b); got != 1 {
			t.Errorf("%d waiters on b after requeue, want 1", got)
		}
		return 0
	})
	driver.SetAffinity(0)
	k.Start(driver, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if waitErr != ErrTimedOut {
		t.Errorf("requeued timed waiter err = %v, want ErrTimedOut", waitErr)
	}
	if n := k.FutexTableSize(); n != 0 {
		t.Errorf("futex table retains %d entries after timeout on requeued word, want 0", n)
	}
}

// TestFutexInterruptRetentionPerShard plants two waiters on each of two
// words hashing to different shards, signal-interrupts one waiter per
// word, and asserts the survivor queues — in whichever shard each word
// landed — retain no reference to the departed waiter.
func TestFutexInterruptRetentionPerShard(t *testing.T) {
	e, k := newKernel()
	space := k.NewAddressSpace()
	a, b, _ := pickShardWords(t, k, space)

	words := []uint64{a, b}
	victims := make([]*Task, 2)
	victimErrs := make([]error, 2)
	survivorErrs := make([]error, 2)
	for i, addr := range words {
		i, addr := i, addr
		s := k.NewTask(fmt.Sprintf("s%d", i), space, func(task *Task) int {
			survivorErrs[i] = task.FutexWait(addr, 0)
			return 0
		})
		s.SetAffinity(1)
		k.Start(s, 0)
		victims[i] = k.NewTask(fmt.Sprintf("v%d", i), space, func(task *Task) int {
			task.Nanosleep(sim.Microsecond) // queue behind the survivor
			victimErrs[i] = task.FutexWait(addr, 0)
			return 0
		})
		victims[i].SetAffinity(2)
		k.Start(victims[i], 0)
	}
	driver := k.NewTask("driver", space, func(task *Task) int {
		task.Nanosleep(10 * sim.Microsecond) // all four asleep
		for i, addr := range words {
			if err := task.Kill(victims[i].PID(), SIGUSR1); err != nil {
				t.Errorf("kill victim %d: %v", i, err)
			}
			q := k.futexes.lookup(futexKey{space.ID, addr})
			if q == nil {
				t.Errorf("word %d: queue dropped while a survivor sleeps", i)
				continue
			}
			if q.Len() != 1 {
				t.Errorf("word %d: queue len = %d after interrupt, want 1", i, q.Len())
			}
			if retainsTask(q, victims[i]) {
				t.Errorf("word %d: shard queue retains the interrupted waiter", i)
			}
			if got := task.FutexWake(addr, 1); got != 1 {
				t.Errorf("word %d: FutexWake = %d, want 1", i, got)
			}
		}
		return 0
	})
	driver.SetAffinity(0)
	k.Start(driver, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	for i := 0; i < 2; i++ {
		if victimErrs[i] != ErrInterrupted {
			t.Errorf("victim %d err = %v, want ErrInterrupted", i, victimErrs[i])
		}
		if survivorErrs[i] != nil {
			t.Errorf("survivor %d err = %v, want nil", i, survivorErrs[i])
		}
	}
	if n := k.FutexTableSize(); n != 0 {
		t.Errorf("futex table retains %d entries at quiescence, want 0", n)
	}
	if n := k.ResidualFutexWaiters(); n != 0 {
		t.Errorf("residual futex waiters = %d, want 0", n)
	}
}

// TestFutexShardSoak is the sharded successor of the single-table
// hygiene soak: one sleeper on each of 256 sequential words — covering
// a large fraction of the shards — then a full drain, asserting the
// per-shard sum (cross-checked against the live counter inside
// FutexTableSize) peaks at the word count and returns to zero, with the
// table-size gauge agreeing.
func TestFutexShardSoak(t *testing.T) {
	e, k := newKernel()
	reg := metrics.NewRegistry()
	k.SetMetrics(reg)
	space := k.NewAddressSpace()

	const words = 256
	base, err := space.Mmap(8*words, semProt, "soak-words", true, nil)
	if err != nil {
		t.Fatal(err)
	}
	shards := map[uint64]bool{}
	for i := 0; i < words; i++ {
		shards[shardOf(futexKey{space.ID, base + uint64(8*i)})] = true
	}
	if len(shards) < futexShardCount/2 {
		t.Fatalf("soak words cover only %d/%d shards", len(shards), futexShardCount)
	}

	errs := make([]error, words)
	for i := 0; i < words; i++ {
		i := i
		w := k.NewTask(fmt.Sprintf("w%d", i), space, func(task *Task) int {
			errs[i] = task.FutexWait(base+uint64(8*i), 0)
			return 0
		})
		w.SetAffinity(1 + i%3)
		k.Start(w, 0)
	}
	driver := k.NewTask("driver", space, func(task *Task) int {
		for k.FutexTableSize() < words {
			task.Nanosleep(10 * sim.Microsecond)
		}
		for i := 0; i < words; i++ {
			if got := task.FutexWake(base+uint64(8*i), 1); got != 1 {
				t.Errorf("word %d: FutexWake = %d, want 1", i, got)
			}
		}
		return 0
	})
	driver.SetAffinity(0)
	k.Start(driver, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	for i, err := range errs {
		if err != nil {
			t.Errorf("waiter %d err = %v, want nil", i, err)
		}
	}
	if n := k.FutexTableSize(); n != 0 {
		t.Errorf("futex table retains %d entries at quiescence, want 0", n)
	}
	g := reg.Gauge("kernel.futex.table_size")
	if g.Value() != 0 {
		t.Errorf("table_size gauge = %d at quiescence, want 0", g.Value())
	}
	if g.Max() != words {
		t.Errorf("table_size gauge high-water = %d, want %d", g.Max(), words)
	}
}
