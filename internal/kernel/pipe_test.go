package kernel

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

func TestPipeRoundTrip(t *testing.T) {
	e, k := newKernel()
	space := k.NewAddressSpace()
	var r *PipeReader
	var w *PipeWriter
	msg := []byte("through the kernel, twice-copied")
	var got []byte
	reader := k.NewTask("reader", space, func(task *Task) int {
		buf := make([]byte, 64)
		for {
			n, err := r.Read(task, buf)
			if err != nil {
				t.Errorf("read: %v", err)
				return 1
			}
			if n == 0 {
				return 0 // EOF
			}
			got = append(got, buf[:n]...)
		}
	})
	writer := k.NewTask("writer", space, func(task *Task) int {
		r2, w2 := task.NewPipe()
		r, w = r2, w2
		k.Start(reader, 0)
		task.Nanosleep(5 * sim.Microsecond)
		if n, err := w.Write(task, msg); err != nil || n != len(msg) {
			t.Errorf("write = %d,%v", n, err)
		}
		w.Close(task)
		return 0
	})
	writer.SetAffinity(0)
	reader.SetAffinity(1)
	k.Start(writer, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("got %q, want %q", got, msg)
	}
}

func TestPipeBackpressure(t *testing.T) {
	// A writer pushing more than the pipe capacity must block until the
	// reader drains.
	e, k := newKernel()
	space := k.NewAddressSpace()
	var r *PipeReader
	var w *PipeWriter
	payload := make([]byte, DefaultPipeCapacity*3)
	received := 0
	var writerDone sim.Time
	reader := k.NewTask("reader", space, func(task *Task) int {
		task.Nanosleep(200 * sim.Microsecond) // let the writer fill up
		buf := make([]byte, 8192)
		for {
			n, err := r.Read(task, buf)
			if err != nil || n == 0 {
				return 0
			}
			received += n
		}
	})
	writer := k.NewTask("writer", space, func(task *Task) int {
		r2, w2 := task.NewPipe()
		r, w = r2, w2
		k.Start(reader, 0)
		w.Write(task, payload)
		writerDone = e.Now()
		w.Close(task)
		return 0
	})
	writer.SetAffinity(0)
	reader.SetAffinity(1)
	k.Start(writer, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if received != len(payload) {
		t.Errorf("received %d, want %d", received, len(payload))
	}
	if writerDone < sim.Time(200*sim.Microsecond) {
		t.Error("writer finished before the reader drained: no backpressure")
	}
}

func TestPipeEPIPEOnClosedReader(t *testing.T) {
	_, k := newKernel()
	runMain(t, k, func(task *Task) int {
		r, w := task.NewPipe()
		r.Close(task)
		if _, err := w.Write(task, []byte("x")); err != ErrPipeClosed {
			t.Errorf("err = %v, want ErrPipeClosed", err)
		}
		return 0
	})
}

func TestPipeEOFAfterWriterClose(t *testing.T) {
	_, k := newKernel()
	runMain(t, k, func(task *Task) int {
		r, w := task.NewPipe()
		w.Write(task, []byte("tail"))
		w.Close(task)
		buf := make([]byte, 16)
		n, err := r.Read(task, buf)
		if err != nil || string(buf[:n]) != "tail" {
			t.Errorf("read = %q,%v", buf[:n], err)
		}
		n, err = r.Read(task, buf)
		if err != nil || n != 0 {
			t.Errorf("EOF read = %d,%v, want 0,nil", n, err)
		}
		return 0
	})
}

// TestPipeVsSharedMemoryCost reproduces the PiP motivation: moving N
// bytes through a pipe costs two copies plus wakeups; reading them in
// place through the shared address space costs at most one.
func TestPipeVsSharedMemoryCost(t *testing.T) {
	const n = 256 * 1024
	pipeTime := func() sim.Duration {
		e, k := newKernel()
		space := k.NewAddressSpace()
		var r *PipeReader
		var w *PipeWriter
		var start, end sim.Time
		reader := k.NewTask("r", space, func(task *Task) int {
			buf := make([]byte, 64*1024)
			total := 0
			for total < n {
				m, _ := r.Read(task, buf)
				if m == 0 {
					break
				}
				total += m
			}
			end = e.Now()
			return 0
		})
		writer := k.NewTask("w", space, func(task *Task) int {
			r2, w2 := task.NewPipe()
			r, w = r2, w2
			k.Start(reader, 0)
			start = e.Now()
			w.Write(task, make([]byte, n))
			w.Close(task)
			return 0
		})
		writer.SetAffinity(0)
		reader.SetAffinity(1)
		k.Start(writer, 0)
		if err := e.Run(); err != nil {
			t.Fatalf("engine: %v", err)
		}
		return end.Sub(start)
	}

	sharedTime := func() sim.Duration {
		e, k := newKernel()
		space := k.NewAddressSpace()
		var start, end sim.Time
		task := k.NewTask("s", space, func(task *Task) int {
			addr, _ := task.Mmap(n, true)
			src := make([]byte, n)
			start = e.Now()
			task.MemWrite(addr, src) // producer writes in place
			buf := make([]byte, n)
			task.MemRead(addr, buf) // consumer reads in place
			end = e.Now()
			return 0
		})
		k.Start(task, 0)
		if err := e.Run(); err != nil {
			t.Fatalf("engine: %v", err)
		}
		return end.Sub(start)
	}

	p, s := pipeTime(), sharedTime()
	if p <= s {
		t.Errorf("pipe (%v) should be slower than shared-space access (%v)", p, s)
	}
}
