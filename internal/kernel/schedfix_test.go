package kernel

// Regression tests for the scheduler-plane fixes that landed with the
// pluggable policy work:
//
//   - Nanosleep used to discard block()'s wake reason, so a
//     signal-interrupted sleep looked exactly like a completed one. It
//     now returns (remaining, ErrInterrupted), and the pooled timer's
//     late fire must wake nobody.
//   - SchedYield used to credit the context switch to the *yielding*
//     task while scheduleNext credits the *incoming* one; per-task
//     switch counts disagreed with the kernel total's meaning under
//     yield storms. Both paths now credit the incoming task.
//   - Kernel.interrupt ignored blockedOn.remove()'s result; a
//     state/queue desync now panics instead of double-waking.

import (
	"errors"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// TestNanosleepInterruptedBySignal drives the EINTR path end to end
// through signal delivery: a SIGUSR1 at 20us interrupts a 100us sleep,
// which must report ErrInterrupted plus the unslept remainder — and the
// interrupted sleep's pooled timer, still armed until the 100us mark,
// must not cut the sleeper's next sleep short when it fires late.
func TestNanosleepInterruptedBySignal(t *testing.T) {
	e, k := newKernel()
	space := k.NewAddressSpace()

	var rem sim.Duration
	var sleepErr error
	var second sim.Duration
	sleeper := k.NewTask("sleeper", space, func(task *Task) int {
		rem, sleepErr = task.Nanosleep(100 * sim.Microsecond)
		// Second sleep spans the first timer's stale fire at ~100us. If
		// the late fire woke whoever sleeps next (the pre-fix hazard the
		// empty-queue contract guards), this sleep would end ~80us early.
		t0 := e.Now()
		if _, err := task.Nanosleep(200 * sim.Microsecond); err != nil {
			t.Errorf("second sleep: %v, want nil", err)
		}
		second = e.Now().Sub(t0)
		return 0
	})
	killer := k.NewTask("killer", space, func(task *Task) int {
		task.Nanosleep(20 * sim.Microsecond)
		return errCode(task.Kill(sleeper.PID(), SIGUSR1))
	})
	sleeper.SetAffinity(0)
	killer.SetAffinity(1)
	k.Start(sleeper, 0)
	k.Start(killer, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}

	if !errors.Is(sleepErr, ErrInterrupted) {
		t.Fatalf("interrupted sleep returned %v, want ErrInterrupted", sleepErr)
	}
	// Killed at ~20us (plus syscall-entry and delivery latency) out of
	// 100us: the remainder must sit just under 80us, and a zero or full
	// remainder would mean the deadline arithmetic is wrong.
	if rem < 70*sim.Microsecond || rem > 80*sim.Microsecond {
		t.Errorf("remaining = %v, want ~80us (interrupted at ~20us of 100us)", rem)
	}
	if second < 200*sim.Microsecond {
		t.Errorf("second sleep lasted %v, want >= 200us (woken by the stale timer?)", second)
	}
}

// TestNanosleepCompletedReturnsZero pins the non-interrupted contract:
// a sleep that runs its full course returns (0, nil).
func TestNanosleepCompletedReturnsZero(t *testing.T) {
	_, k := newKernel()
	runMain(t, k, func(task *Task) int {
		rem, err := task.Nanosleep(10 * sim.Microsecond)
		if rem != 0 || err != nil {
			t.Errorf("completed sleep returned (%v, %v), want (0, nil)", rem, err)
		}
		return 0
	})
}

// TestYieldStormAccounting pins the unified context-switch attribution:
// every switch — whether through scheduleNext or SchedYield — is
// credited to the task being switched *in*, so the per-task counters
// sum to the kernel total and the kernel total matches the
// kernel.ctx_switch.klt metric (one PSchedSwitch per counted switch).
//
// The shape distinguishes the old asymmetry: the waker is dispatched
// almost exclusively through the yielder's SchedYield, which used to
// credit the yielder. Under that accounting the waker's count stays
// near zero while the timeline shows it being switched in every cycle.
func TestYieldStormAccounting(t *testing.T) {
	e, k := newKernel()
	reg := metrics.NewRegistry()
	k.SetMetrics(reg)
	space := k.NewAddressSpace()

	const sleeps = 25
	// The waker sleeps repeatedly; each expiry enqueues it behind the
	// busy yielder, so its dispatch rides the SchedYield path.
	waker := k.NewTask("waker", space, func(task *Task) int {
		for i := 0; i < sleeps; i++ {
			task.Nanosleep(2 * sim.Microsecond)
		}
		return 0
	})
	// Enough iterations to outlive every waker sleep, so all of the
	// waker's dispatches ride the yield path rather than scheduleNext.
	yielder := k.NewTask("yielder", space, func(task *Task) int {
		for i := 0; i < 5000; i++ {
			task.SchedYield()
			task.Charge(100 * sim.Nanosecond)
		}
		return 0
	})
	waker.SetAffinity(0)
	yielder.SetAffinity(0)
	k.Start(waker, 0)
	k.Start(yielder, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}

	sum := waker.CtxSwitches() + yielder.CtxSwitches()
	if sum != k.ContextSwitches() {
		t.Errorf("per-task switch counts sum to %d, kernel total is %d (waker=%d yielder=%d)",
			sum, k.ContextSwitches(), waker.CtxSwitches(), yielder.CtxSwitches())
	}
	if got := reg.Counter("kernel.ctx_switch.klt").Value(); got != k.ContextSwitches() {
		t.Errorf("metric kernel.ctx_switch.klt = %d, kernel total is %d", got, k.ContextSwitches())
	}
	// The waker is switched in once per sleep expiry (via the yielder's
	// SchedYield); under yielder-credited accounting this is ~0.
	if waker.CtxSwitches() < sleeps-1 {
		t.Errorf("waker credited %d switches, want >= %d (yield-path switches must credit the incoming task)",
			waker.CtxSwitches(), sleeps-1)
	}
	if k.ContextSwitches() == 0 {
		t.Fatal("no context switches recorded; the storm never ran")
	}
}

// TestInterruptDesyncPanics pins the loud-failure contract: interrupting
// a task whose blockedOn queue does not actually hold it (a state/queue
// desync) must panic rather than double-wake.
func TestInterruptDesyncPanics(t *testing.T) {
	e, k := newKernel()
	space := k.NewAddressSpace()
	sleeper := k.NewTask("sleeper", space, func(task *Task) int {
		task.Nanosleep(100 * sim.Microsecond)
		return 0
	})
	var recovered interface{}
	poker := k.NewTask("poker", space, func(task *Task) int {
		task.Nanosleep(10 * sim.Microsecond)
		// Forge the desync: pull the sleeper off its wait queue behind
		// the kernel's back, leaving state=blocked with a stale blockedOn.
		if !sleeper.blockedOn.remove(sleeper) {
			t.Error("sleeper was not on its wait queue")
			return 1
		}
		func() {
			defer func() { recovered = recover() }()
			k.interrupt(sleeper, 0)
		}()
		// Undo: re-queue the sleeper so its timer fire wakes it and the
		// engine drains cleanly.
		sleeper.blockedOn.push(sleeper)
		return 0
	})
	sleeper.SetAffinity(0)
	poker.SetAffinity(1)
	k.Start(sleeper, 0)
	k.Start(poker, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if recovered == nil {
		t.Fatal("interrupt of a desynced task did not panic")
	}
}
