package kernel

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
)

// BenchmarkSimulatedGetpid measures the real cost of simulating one
// getpid system-call (simulation overhead, not virtual time).
func BenchmarkSimulatedGetpid(b *testing.B) {
	e := sim.New()
	k := New(e, arch.Wallaby())
	task := k.NewTask("bench", k.NewAddressSpace(), func(t *Task) int {
		for i := 0; i < b.N; i++ {
			t.Getpid()
		}
		return 0
	})
	k.Start(task, 0)
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSimulatedFutexPingPong measures a futex wake/wait round trip
// between two tasks on two cores.
func BenchmarkSimulatedFutexPingPong(b *testing.B) {
	e := sim.New()
	k := New(e, arch.Wallaby())
	space := k.NewAddressSpace()
	var semA, semB *Semaphore
	setup := k.NewTask("setup", space, func(t *Task) int {
		var err error
		if semA, err = t.NewSemaphore(0); err != nil {
			b.Error(err)
		}
		if semB, err = t.NewSemaphore(0); err != nil {
			b.Error(err)
		}
		a := k.NewTask("a", space, func(t *Task) int {
			for i := 0; i < b.N; i++ {
				semA.Post(t)
				semB.Wait(t)
			}
			return 0
		})
		c := k.NewTask("c", space, func(t *Task) int {
			for i := 0; i < b.N; i++ {
				semA.Wait(t)
				semB.Post(t)
			}
			return 0
		})
		a.SetAffinity(0)
		c.SetAffinity(1)
		k.Start(a, 0)
		k.Start(c, 0)
		return 0
	})
	k.Start(setup, 0)
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSimulatedSchedYield measures the kernel scheduler's real cost
// per simulated context switch (two tasks ping-pong on one core).
func BenchmarkSimulatedSchedYield(b *testing.B) {
	e := sim.New()
	k := New(e, arch.Wallaby())
	done := false
	a := k.NewTask("a", k.NewAddressSpace(), func(t *Task) int {
		for i := 0; i < b.N; i++ {
			t.SchedYield()
		}
		done = true
		return 0
	})
	c := k.NewTask("c", k.NewAddressSpace(), func(t *Task) int {
		for !done {
			t.SchedYield()
		}
		return 0
	})
	a.SetAffinity(0)
	c.SetAffinity(0)
	k.Start(a, 0)
	k.Start(c, 0)
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
