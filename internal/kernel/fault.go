package kernel

import (
	"errors"

	"repro/internal/probe"
	"repro/internal/sim"
)

// Errors injectable by a fault plane (and returned by the timed futex
// wait). They model the transient errno values a real kernel hands back
// under adversity; runtime layers are expected to retry or degrade, never
// to panic.
var (
	// ErrTryAgain is EAGAIN: the resource is temporarily unavailable.
	ErrTryAgain = errors.New("kernel: resource temporarily unavailable (EAGAIN)")
	// ErrNoSpace is ENOSPC: the injected "device" ran out of space. It is
	// not transient — retrying does not help.
	ErrNoSpace = errors.New("kernel: no space left on device (ENOSPC)")
	// ErrTimedOut is ETIMEDOUT from FutexWaitTimeout.
	ErrTimedOut = errors.New("kernel: futex wait timed out (ETIMEDOUT)")
)

// FaultPlane is the kernel's fault-injection hook, implemented by
// internal/fault. Every method is consulted from a deterministic point in
// virtual time, so a plane driven by a seeded RNG reproduces the same
// fault schedule for the same (seed, spec) pair. A nil plane (the
// default) costs one pointer comparison per site and changes nothing.
//
// Site names used by the runtime stack (kept as plain strings so lower
// layers need not import internal/fault):
//
//	"open", "write", "read", "futex_wait"  — transient syscall errors
//	"futex_spurious"  — a futex wait returns EAGAIN without sleeping
//	"futex_lost_wake" — a futex wake is dropped (waiter stays blocked)
//	"kc_kill"         — an idle original KC dies in its trampoline
//	"sched_kill"      — a scheduler KC dies between dispatches
//	"aio_helper_kill" — the AIO helper thread dies between requests
//	"sched_delay"     — extra scheduler latency before a UC dispatch
//	"fs_slow"         — file I/O bandwidth degradation factor
type FaultPlane interface {
	// SyscallError, when non-nil, makes the system-call at the named site
	// fail with that error (ErrInterrupted, ErrTryAgain or ErrNoSpace)
	// before performing any work.
	SyscallError(t *Task, site string) error
	// FutexSpurious reports whether this futex wait should return
	// ErrFutexAgain spuriously instead of blocking.
	FutexSpurious(t *Task, addr uint64) bool
	// FutexDropWake reports whether the wakeup destined for waiter should
	// be lost (the waiter stays blocked; the waker believes it woke one).
	FutexDropWake(waiter *Task, addr uint64) bool
	// TaskShouldDie reports whether the task visiting the named site
	// should terminate now (KC, scheduler or helper death).
	TaskShouldDie(t *Task, site string) bool
	// ExtraDelay returns additional latency to impose at the named site
	// (0 = none).
	ExtraDelay(t *Task, site string) sim.Duration
	// IOScale returns a multiplicative factor for I/O costs at the named
	// site (1 = undisturbed).
	IOScale(t *Task, site string) float64
	// Armed reports whether any spec could ever fire for (task, site) —
	// without consuming randomness. Recovery paths use it to decide
	// whether to arm timed waits; unarmed tasks keep the exact fault-free
	// event schedule.
	Armed(t *Task, site string) bool
}

// SetFaultPlane installs a fault-injection plane (nil clears it) by
// attaching the stock fault probe at fault:site / fault:armed. Must be
// set before the simulation runs for deterministic schedules.
func (k *Kernel) SetFaultPlane(fp FaultPlane) {
	k.faults = fp
	if k.faultProg != nil {
		k.probes.Detach(k.faultProg)
		k.faultProg = nil
	}
	if fp == nil {
		return
	}
	k.faultProg = k.probes.Attach("fault", (&stockFaults{fp: fp}).fire,
		probe.PFaultSite, probe.PFaultArmed)
}

// Faults returns the installed fault plane, or nil. Probe programs
// attached directly at fault:site do not appear here.
func (k *Kernel) Faults() FaultPlane { return k.faults }

// faultSyscall consults fault:site at a syscall site; nil when nothing
// is attached or no program vetoes.
func (k *Kernel) faultSyscall(t *Task, site string) error {
	if !k.probes.Attached(probe.PFaultSite) {
		return nil
	}
	c := k.probes.Begin(probe.PFaultSite, k.engine.Now())
	c.Site = site
	c.Task = t
	err := k.probes.Fire(c).Err
	if err != nil {
		k.faultFired(t, site, err, "%s: %v", site, err)
	}
	return err
}

// faultIOScale folds the fs-degradation factor into an I/O cost.
func (k *Kernel) faultIOScale(t *Task, cost sim.Duration) sim.Duration {
	if !k.probes.Attached(probe.PFaultSite) {
		return cost
	}
	c := k.probes.Begin(probe.PFaultSite, k.engine.Now())
	c.Site = "fs_slow"
	c.Task = t
	if f := k.probes.Fire(c).Scale; f > 1 {
		return sim.Duration(float64(cost) * f)
	}
	return cost
}
