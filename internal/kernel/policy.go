package kernel

// SchedPolicy customises the kernel dispatch plane, sched_ext-style: the
// kernel keeps owning the mechanism (run queues, dispatch latencies,
// context-switch accounting, probes) while a policy object overrides the
// three decisions the hard-coded scheduler used to make — core placement
// at wake, queue position at enqueue, and victim selection at dispatch.
//
// Every hook may decline by returning its zero answer (nil core, false,
// nil task), in which case the built-in FIFO behaviour runs; a policy
// that declines everything is byte-identical to no policy at all, which
// is how the schedpolicy package's FIFO policy proves the refactor safe.
//
// Invariants a policy must uphold (the explorer's oracles check the
// consequences on every explored schedule):
//
//   - Enqueue, when it returns true, must have placed t on c's run queue
//     (position is the policy's choice; membership is not). The kernel's
//     idle checks and QueueLen read that queue directly.
//   - PickNext, when it returns non-nil, must have *removed* the task
//     from c's run queue (use Core.RunqRemoveAt), and may only return a
//     task from that queue. Returning a task still queued, or one queued
//     elsewhere, double-dispatches it.
//   - Policies decide placement and order, never whether a task runs:
//     suppressing a runnable task indefinitely shows up as a deadlock or
//     conservation failure in the oracles.
//   - Pinned tasks never reach PickCore; affinity outranks policy.
//
// Hooks run on the scheduler hot path and must not allocate: the kernel
// alloc tests pin the policy-off path at zero allocations, and the CI
// byte-identity job runs the FIFO policy through the same pins.
type SchedPolicy interface {
	// Name identifies the policy in diagnostics and repro commands.
	Name() string
	// PickCore chooses the core a waking unpinned task is placed on.
	// nil falls back to the built-in choice (first fully idle core,
	// else shortest queue, ties to the lowest index).
	PickCore(k *Kernel, t *Task) *Core
	// Enqueue places a ready task on core c's run queue. false falls
	// back to the built-in FIFO push.
	Enqueue(c *Core, t *Task) bool
	// PickNext removes and returns the next task to dispatch from c's
	// run queue. nil falls back to the built-in FIFO pop (with an empty
	// queue the core goes idle either way).
	PickNext(c *Core) *Task
}

// SetSchedPolicy installs a scheduler policy (nil restores the built-in
// FIFO dispatch plane). Install before the simulation runs: switching
// policies mid-run is legal but changes the schedule from that point on.
func (k *Kernel) SetSchedPolicy(p SchedPolicy) { k.policy = p }

// SchedPolicy returns the installed policy, or nil.
func (k *Kernel) SchedPolicy() SchedPolicy { return k.policy }

// pickNext consults the policy for the core's next task, falling back to
// the FIFO pop.
func (k *Kernel) pickNext(c *Core) *Task {
	if k.policy != nil {
		if t := k.policy.PickNext(c); t != nil {
			return t
		}
	}
	return c.pop()
}

// enqueue places a ready task on c's run queue through the policy,
// falling back to the FIFO push.
func (k *Kernel) enqueue(c *Core, t *Task) {
	if k.policy == nil || !k.policy.Enqueue(c, t) {
		c.push(t)
	}
}
