package kernel

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// retainsTask reports whether the wait queue (or the task's own link
// fields) still references t — the retention leak the remove() bugfix
// closed on the old slice representation, and which the intrusive
// representation must not reintroduce: unlinking clears wq/wqPrev/wqNext
// and no surviving node may point at the departed task.
func retainsTask(q *WaitQueue, t *Task) bool {
	if t.wq != nil || t.wqPrev != nil || t.wqNext != nil {
		return true
	}
	for x := q.head; x != nil; x = x.wqNext {
		if x == t || x.wqPrev == t || x.wqNext == t {
			return true
		}
	}
	return false
}

// TestWaitQueueFIFO pins the representation basics: push/pop preserve
// FIFO order, Len tracks membership, and remove works at head, middle
// and tail positions.
func TestWaitQueueFIFO(t *testing.T) {
	mk := func() (*WaitQueue, []*Task) {
		q := &WaitQueue{}
		ts := make([]*Task, 4)
		for i := range ts {
			ts[i] = &Task{name: fmt.Sprintf("t%d", i)}
			q.push(ts[i])
		}
		return q, ts
	}

	q, ts := mk()
	for i, want := range ts {
		if got := q.pop(); got != want {
			t.Fatalf("pop %d = %v, want %v", i, got, want)
		}
	}
	if q.pop() != nil || q.Len() != 0 {
		t.Fatal("drained queue not empty")
	}

	for victim := 0; victim < 4; victim++ {
		q, ts := mk()
		if !q.remove(ts[victim]) {
			t.Fatalf("remove(%d) reported not found", victim)
		}
		if retainsTask(q, ts[victim]) {
			t.Errorf("queue retains removed waiter %d", victim)
		}
		if q.remove(ts[victim]) {
			t.Errorf("second remove(%d) reported found", victim)
		}
		var survivors []*Task
		for x := q.pop(); x != nil; x = q.pop() {
			survivors = append(survivors, x)
		}
		want := 0
		for i, s := range ts {
			if i == victim {
				continue
			}
			if want >= len(survivors) || survivors[want] != s {
				t.Fatalf("after remove(%d): survivors %v, want FIFO of the rest", victim, survivors)
			}
			want++
		}
	}
}

// TestInterruptedWaiterNotRetained exercises the real removal path: a
// signal-interrupted futex waiter must leave no dangling reference in
// the futex word's wait queue.
func TestInterruptedWaiterNotRetained(t *testing.T) {
	e, k := newKernel()
	space := k.NewAddressSpace()
	addr, err := space.Mmap(8, semProt, "futex", true, nil)
	if err != nil {
		t.Fatal(err)
	}
	var victimErr, w1Err, w2Err error
	w1 := k.NewTask("w1", space, func(task *Task) int {
		w1Err = task.FutexWait(addr, 0)
		return 0
	})
	victim := k.NewTask("victim", space, func(task *Task) int {
		task.Nanosleep(sim.Microsecond) // queue behind w1
		victimErr = task.FutexWait(addr, 0)
		return 0
	})
	w2 := k.NewTask("w2", space, func(task *Task) int {
		task.Nanosleep(2 * sim.Microsecond) // queue behind victim
		w2Err = task.FutexWait(addr, 0)
		return 0
	})
	driver := k.NewTask("driver", space, func(task *Task) int {
		task.Nanosleep(10 * sim.Microsecond) // let all three block
		if err := task.Kill(victim.PID(), SIGUSR1); err != nil {
			t.Errorf("kill: %v", err)
		}
		q := k.futexes.lookup(futexKey{space.ID, addr})
		if q == nil {
			// t.Fatal would goexit off the proc goroutine and wedge the
			// engine; report and bail out of the task body instead.
			t.Error("futex queue missing")
			return 1
		}
		if q.Len() != 2 {
			t.Errorf("queue len = %d after interrupt, want 2", q.Len())
		}
		if retainsTask(q, victim) {
			t.Error("futex queue retains the signal-interrupted waiter")
		}
		if n := task.FutexWake(addr, 2); n != 2 {
			t.Errorf("FutexWake = %d, want 2", n)
		}
		return 0
	})
	for i, task := range []*Task{w1, victim, w2, driver} {
		task.SetAffinity(i % k.Cores())
		k.Start(task, 0)
	}
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if victimErr != ErrInterrupted {
		t.Errorf("victim err = %v, want ErrInterrupted", victimErr)
	}
	if w1Err != nil || w2Err != nil {
		t.Errorf("surviving waiters erred: %v, %v", w1Err, w2Err)
	}
	if n := k.ResidualFutexWaiters(); n != 0 {
		t.Errorf("residual futex waiters = %d, want 0", n)
	}
}

// runWakeAll performs one full push-then-drain cycle over the given
// waiters per benchmark op (the WakeAll shape), using tasks allocated up
// front so only the queue's own work is measured.
func runWakeAll(b *testing.B, tasks []Task) {
	q := &WaitQueue{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range tasks {
			q.push(&tasks[j])
		}
		for q.pop() != nil {
		}
	}
}

func wakeAllCost(n int) testing.BenchmarkResult {
	tasks := make([]Task, n)
	return testing.Benchmark(func(b *testing.B) { runWakeAll(b, tasks) })
}

// BenchmarkWakeAll measures the queue-side cost of enqueueing and then
// draining n waiters. With the old slice-backed representation each pop
// copied the whole remaining slice, making the drain O(n²); the
// intrusive list drains in O(n) with zero allocations.
func BenchmarkWakeAll(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		tasks := make([]Task, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { runWakeAll(b, tasks) })
	}
}

// TestWakeAllLinearScaling is the quadratic-wake guard: per-waiter drain
// cost at n=10k must stay within 3x of the cost at n=1k (the quadratic
// representation was ~10x here), and the drain must not allocate.
func TestWakeAllLinearScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based guard, skipped in -short")
	}
	small, big := wakeAllCost(1000), wakeAllCost(10000)
	if small.AllocsPerOp() != 0 || big.AllocsPerOp() != 0 {
		t.Errorf("wake path allocates: %d allocs/op at 1k, %d at 10k, want 0",
			small.AllocsPerOp(), big.AllocsPerOp())
	}
	perSmall := float64(small.NsPerOp()) / 1000
	perBig := float64(big.NsPerOp()) / 10000
	t.Logf("per-waiter cost: %.2f ns at n=1k, %.2f ns at n=10k", perSmall, perBig)
	if perBig > 3*perSmall {
		t.Errorf("WakeAll scales super-linearly: %.2f ns/waiter at 10k vs %.2f at 1k (>3x)",
			perBig, perSmall)
	}
}
