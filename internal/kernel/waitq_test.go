package kernel

import (
	"testing"

	"repro/internal/sim"
)

// retainsTask reports whether the wait queue still references t anywhere
// in its backing storage, including vacated slots past the logical
// length — the retention leak the remove() bugfix closes.
func retainsTask(q *WaitQueue, t *Task) bool {
	for _, x := range q.tasks[:cap(q.tasks)] {
		if x == t {
			return true
		}
	}
	return false
}

// TestWaitQueueRemoveNilsTailSlot pins the remove() unit behaviour: after
// unlinking a waiter the vacated tail slot must not keep the old pointer
// alive (pop and removeAt already nil it; remove used to forget to).
func TestWaitQueueRemoveNilsTailSlot(t *testing.T) {
	a, b, c := &Task{name: "a"}, &Task{name: "b"}, &Task{name: "c"}
	q := &WaitQueue{}
	for _, x := range []*Task{a, b, c} {
		q.tasks = append(q.tasks, x)
	}
	if !q.remove(c) {
		t.Fatal("remove(tail) reported not found")
	}
	if retainsTask(q, c) {
		t.Error("queue retains removed tail waiter in its backing array")
	}
	if !q.remove(a) {
		t.Fatal("remove(head) reported not found")
	}
	if retainsTask(q, a) {
		t.Error("queue retains removed head waiter in its backing array")
	}
	if q.remove(a) {
		t.Error("second remove of same task reported found")
	}
	if q.Len() != 1 || q.pop() != b {
		t.Error("surviving waiter lost or reordered")
	}
}

// TestInterruptedWaiterNotRetained exercises the real removal path: a
// signal-interrupted futex waiter must leave no dangling reference in
// the futex word's wait queue.
func TestInterruptedWaiterNotRetained(t *testing.T) {
	e, k := newKernel()
	space := k.NewAddressSpace()
	addr, err := space.Mmap(8, semProt, "futex", true, nil)
	if err != nil {
		t.Fatal(err)
	}
	var victimErr, w1Err, w2Err error
	w1 := k.NewTask("w1", space, func(task *Task) int {
		w1Err = task.FutexWait(addr, 0)
		return 0
	})
	victim := k.NewTask("victim", space, func(task *Task) int {
		task.Nanosleep(sim.Microsecond) // queue behind w1
		victimErr = task.FutexWait(addr, 0)
		return 0
	})
	w2 := k.NewTask("w2", space, func(task *Task) int {
		task.Nanosleep(2 * sim.Microsecond) // queue behind victim
		w2Err = task.FutexWait(addr, 0)
		return 0
	})
	driver := k.NewTask("driver", space, func(task *Task) int {
		task.Nanosleep(10 * sim.Microsecond) // let all three block
		if err := task.Kill(victim.PID(), SIGUSR1); err != nil {
			t.Errorf("kill: %v", err)
		}
		q := k.futexes.queues[futexKey{space.ID, addr}]
		if q == nil {
			t.Fatal("futex queue missing")
		}
		if q.Len() != 2 {
			t.Errorf("queue len = %d after interrupt, want 2", q.Len())
		}
		if retainsTask(q, victim) {
			t.Error("futex queue retains the signal-interrupted waiter")
		}
		if n := task.FutexWake(addr, 2); n != 2 {
			t.Errorf("FutexWake = %d, want 2", n)
		}
		return 0
	})
	for i, task := range []*Task{w1, victim, w2, driver} {
		task.SetAffinity(i % k.Cores())
		k.Start(task, 0)
	}
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if victimErr != ErrInterrupted {
		t.Errorf("victim err = %v, want ErrInterrupted", victimErr)
	}
	if w1Err != nil || w2Err != nil {
		t.Errorf("surviving waiters erred: %v, %v", w1Err, w2Err)
	}
	if n := k.ResidualFutexWaiters(); n != 0 {
		t.Errorf("residual futex waiters = %d, want 0", n)
	}
}
