package kernel

import (
	"repro/internal/metrics"
	"repro/internal/probe"
	"repro/internal/sim"
)

// The kernel owns three stock probe programs that reimplement the
// pre-probe wiring over the attach-point layer:
//
//	fault    — attached by SetFaultPlane; consults the FaultPlane at
//	           fault:site / fault:armed and translates its answers into
//	           verdicts (Err for syscall sites, Drop for kills and wake
//	           loss, Delay for sched_delay, Scale for fs_slow).
//	metrics  — attached by SetMetrics; the registry handles previously
//	           cached on the Kernel, resolved once and updated in place
//	           so the metrics-on syscall path stays allocation-free.
//	trace    — attached in lockstep with the engine's tracer; forwards
//	           trace:* points into the tracer ring and renders fired
//	           faults as "fault" instants.
//
// With all three attached in stock configuration the observable output
// (metrics dumps, chaos digests, Chrome traces) is byte-identical to
// the pre-probe wiring; with none attached every site costs one length
// check. Custom programs attach beside them through Probes().

// Probes returns the kernel's probe registry (never nil). User programs
// attach here; the registry is consulted at every instrumented site.
func (k *Kernel) Probes() *probe.Registry { return k.probes }

// tracerChanged is the engine tracer hook: it keeps the stock trace
// probe attached exactly while a tracer is installed.
func (k *Kernel) tracerChanged(tr *sim.Tracer) {
	if k.traceProg != nil {
		k.probes.Detach(k.traceProg)
		k.traceProg = nil
	}
	if tr == nil {
		return
	}
	st := &stockTrace{tr: tr}
	k.traceProg = k.probes.Attach("trace", st.fire,
		probe.PTraceLog, probe.PTraceInstant, probe.PSpanBegin,
		probe.PSpanEnd, probe.PFaultFired)
}

// taskOf unwraps the concrete task behind a probe context's Task field
// (nil when the site had no task context).
func taskOf(pt probe.Task) *Task {
	if pt == nil {
		return nil
	}
	t, _ := pt.(*Task)
	return t
}

// probeMeta builds trace metadata from a fire context: the task's
// identity, with Ctx.Name overriding the display name (BLT spans are
// attributed to the BLT, not its carrier).
func probeMeta(c *probe.Ctx) sim.Meta {
	t := c.Task
	if t == nil {
		if c.Name == "" {
			return sim.NoMeta
		}
		return sim.Meta{Task: c.Name, Core: -1}
	}
	name := c.Name
	if name == "" {
		name = t.Name()
	}
	return sim.Meta{Task: name, PID: t.PID(), Core: t.CoreID()}
}

// noteSwitch fires sched:switch for a kernel-level context switch onto
// the dispatched task (scheduleNext and the switching half of
// SchedYield).
func (k *Kernel) noteSwitch(t *Task) {
	if !k.probes.Attached(probe.PSchedSwitch) {
		return
	}
	c := k.probes.Begin(probe.PSchedSwitch, k.engine.Now())
	c.Task = t
	k.probes.Fire(c)
}

// FaultShouldDie consults fault:site at a kill site (kc_kill,
// sched_kill, aio_helper_kill): true means the task visiting the site
// dies now. Runtime layers call this where they previously consulted
// FaultPlane.TaskShouldDie; any program attached to fault:site can kill.
func (k *Kernel) FaultShouldDie(t *Task, site string) bool {
	if !k.probes.Attached(probe.PFaultSite) {
		return false
	}
	c := k.probes.Begin(probe.PFaultSite, k.engine.Now())
	c.Site = site
	if t != nil {
		c.Task = t
	}
	return k.probes.Fire(c).Drop
}

// FaultDelay consults fault:site for extra latency at the named site
// (sched_delay); the caller charges the returned duration.
func (k *Kernel) FaultDelay(t *Task, site string) sim.Duration {
	if !k.probes.Attached(probe.PFaultSite) {
		return 0
	}
	c := k.probes.Begin(probe.PFaultSite, k.engine.Now())
	c.Site = site
	if t != nil {
		c.Task = t
	}
	return k.probes.Fire(c).Delay
}

// FaultArmed consults fault:armed: whether any program could ever fire
// for (task, site), without consuming randomness. Recovery paths use it
// to decide whether to arm timed waits.
func (k *Kernel) FaultArmed(t *Task, site string) bool {
	if !k.probes.Attached(probe.PFaultArmed) {
		return false
	}
	c := k.probes.Begin(probe.PFaultArmed, k.engine.Now())
	c.Site = site
	if t != nil {
		c.Task = t
	}
	return k.probes.Fire(c).Drop
}

// faultFired announces an injection that fired: the fault:fired point
// carries the site, the injected error (syscall sites) and the legacy
// message, which the stock metrics and trace probes turn into the
// kernel.faults.injected counter and "fault" instants.
func (k *Kernel) faultFired(t *Task, site string, err error, format string, args ...interface{}) {
	if !k.probes.Attached(probe.PFaultFired) {
		return
	}
	c := k.probes.Begin(probe.PFaultFired, k.engine.Now())
	c.Site = site
	if t != nil {
		c.Task = t
	}
	c.Err = err
	c.Format = format
	c.Args = args
	k.probes.Fire(c)
}

// stockFaults adapts a FaultPlane to the probe plane.
type stockFaults struct {
	fp FaultPlane
}

func (s *stockFaults) fire(c *probe.Ctx) probe.Verdict {
	switch c.Point {
	case probe.PFaultSite:
		switch c.Site {
		case "futex_spurious":
			return probe.Verdict{Drop: s.fp.FutexSpurious(taskOf(c.Task), c.Addr)}
		case "futex_lost_wake":
			// The decision is about the waiter (spec task scoping keys on
			// it); the firing task is the waker.
			return probe.Verdict{Drop: s.fp.FutexDropWake(taskOf(c.Waiter), c.Addr)}
		case "kc_kill", "sched_kill", "aio_helper_kill":
			return probe.Verdict{Drop: s.fp.TaskShouldDie(taskOf(c.Task), c.Site)}
		case "sched_delay":
			return probe.Verdict{Delay: s.fp.ExtraDelay(taskOf(c.Task), c.Site)}
		case "fs_slow":
			return probe.Verdict{Scale: s.fp.IOScale(taskOf(c.Task), c.Site)}
		default:
			// Syscall sites (open, write, read, futex_wait).
			return probe.Verdict{Err: s.fp.SyscallError(taskOf(c.Task), c.Site)}
		}
	case probe.PFaultArmed:
		return probe.Verdict{Drop: s.fp.Armed(taskOf(c.Task), c.Site)}
	}
	return probe.Verdict{}
}

// stockTrace forwards trace points into the tracer ring. Formatting
// stays deferred: the Format/Args pair is handed to the ring verbatim,
// so evicted events never pay fmt.Sprintf (the pre-probe behavior).
type stockTrace struct {
	tr *sim.Tracer
}

func (s *stockTrace) fire(c *probe.Ctx) probe.Verdict {
	switch c.Point {
	case probe.PTraceLog:
		s.tr.Add(c.Now, c.Site, c.Format, c.Args...)
	case probe.PTraceInstant:
		s.tr.Emit(c.Now, c.Site, probeMeta(c), c.Format, c.Args...)
	case probe.PFaultFired:
		s.tr.Emit(c.Now, "fault", probeMeta(c), c.Format, c.Args...)
	case probe.PSpanBegin:
		return probe.Verdict{Span: s.tr.BeginSpan(c.Now, c.Site, probeMeta(c), c.Format)}
	case probe.PSpanEnd:
		s.tr.EndSpan(c.Now, c.Span, probeMeta(c))
	}
	return probe.Verdict{}
}

// stockMetricsPoints are the attach points the metrics probe watches.
var stockMetricsPoints = []probe.Point{
	probe.PSyscallExit, probe.PSchedDispatch, probe.PSchedSwitch,
	probe.PSchedULT, probe.PSchedSteal,
	probe.PFutexWait, probe.PFutexWake, probe.PFutexWoken,
	probe.PFutexRequeue, probe.PFutexTimeout, probe.PFutexTable,
	probe.PTLSLoad, probe.PSignal, probe.PFaultFired,
	probe.PCouple, probe.PDecouple,
}

// stockMetrics holds the registry handles previously cached on the
// Kernel, resolved once at attach so every fire updates in place (no
// map traffic on the syscall path beyond the per-name latency lookup).
type stockMetrics struct {
	reg    *metrics.Registry
	sysLat map[string]*metrics.Histogram

	runq   *metrics.Histogram
	ctxKLT *metrics.Counter

	fxWaits, fxWakes, fxWoken, fxLost  *metrics.Counter
	fxSpurious, fxTimeouts, fxRequeues *metrics.Counter
	tableSize                          *metrics.Gauge
	tls, tlsCost, signals, faults      *metrics.Counter
	ult, steals                        *metrics.Counter
	couple, decouple                   *metrics.Histogram
}

func newStockMetrics(k *Kernel, reg *metrics.Registry) *stockMetrics {
	m := &stockMetrics{
		reg:    reg,
		sysLat: make(map[string]*metrics.Histogram),
		runq:   reg.Histogram("kernel.runq.depth"),
		ctxKLT: reg.Counter("kernel.ctx_switch.klt"),
	}
	m.fxWaits = reg.Counter("kernel.futex.waits")
	m.fxWakes = reg.Counter("kernel.futex.wake_calls")
	m.fxWoken = reg.Counter("kernel.futex.woken")
	m.fxLost = reg.Counter("kernel.futex.lost_wakes")
	m.fxSpurious = reg.Counter("kernel.futex.spurious")
	m.fxTimeouts = reg.Counter("kernel.futex.timeouts")
	m.fxRequeues = reg.Counter("kernel.futex.requeued")
	// Live futex-table entries (words with sleepers); its Max is the
	// high-water mark, and hygiene demands Value 0 at quiescence.
	m.tableSize = reg.Gauge("kernel.futex.table_size")
	// TLS-switch cost attribution: the mechanism is a machine property
	// (x86_64 arch_prctl syscall vs AArch64 user-mode tpidr_el0), so the
	// counter name carries it (the Table III/IV ablation axis).
	mech := "arch_prctl"
	if k.machine.TLSUserAccessible {
		mech = "tpidr_el0"
	}
	m.tls = reg.Counter("kernel.tls_switch." + mech)
	m.tlsCost = reg.Counter("kernel.tls_switch.cost_ps")
	m.signals = reg.Counter("kernel.signals.delivered")
	m.faults = reg.Counter("kernel.faults.injected")
	// BLT-plane handles (fired from internal/blt through the same
	// registry).
	m.ult = reg.Counter("blt.ctx_switch.ult")
	m.steals = reg.Counter("blt.steals")
	m.couple = reg.Histogram("blt.couple.ps")
	m.decouple = reg.Histogram("blt.decouple.ps")
	return m
}

// hist returns the latency histogram for the named system-call.
func (m *stockMetrics) hist(name string) *metrics.Histogram {
	h := m.sysLat[name]
	if h == nil {
		h = m.reg.Histogram("kernel.syscall.ps." + name)
		m.sysLat[name] = h
	}
	return h
}

func (m *stockMetrics) fire(c *probe.Ctx) probe.Verdict {
	switch c.Point {
	case probe.PSyscallExit:
		m.hist(c.Site).Observe(int64(c.Dur))
	case probe.PSchedDispatch:
		m.runq.Observe(c.Val)
	case probe.PSchedSwitch:
		m.ctxKLT.Inc()
	case probe.PSchedULT:
		m.ult.Inc()
	case probe.PSchedSteal:
		m.steals.Inc()
	case probe.PFutexWait:
		m.fxWaits.Inc()
	case probe.PFutexWake:
		m.fxWakes.Inc()
	case probe.PFutexWoken:
		m.fxWoken.Add(uint64(c.Val))
	case probe.PFutexRequeue:
		m.fxRequeues.Add(uint64(c.Val))
	case probe.PFutexTimeout:
		m.fxTimeouts.Inc()
	case probe.PFutexTable:
		m.tableSize.Set(c.Val)
	case probe.PTLSLoad:
		m.tls.Inc()
		m.tlsCost.Add(uint64(c.Dur))
	case probe.PSignal:
		m.signals.Inc()
	case probe.PFaultFired:
		switch {
		case c.Err != nil:
			// A syscall-site injection (the only fires carrying an error).
			m.faults.Inc()
		case c.Site == "futex_spurious":
			m.fxSpurious.Inc()
		case c.Site == "futex_lost_wake":
			m.fxLost.Inc()
		}
	case probe.PCouple:
		m.couple.Observe(int64(c.Dur))
	case probe.PDecouple:
		m.decouple.Observe(int64(c.Dur))
	}
	return probe.Verdict{}
}
