package kernel

// Audit test for the PR 6 pooled timer objects under fault injection:
// a waiter killed out of a timed futex wait (the kc_kill shape — SIGKILL
// interrupts the sleep, the body returns, the task exits) leaves its
// pooled timer ARMED until the engine fires it. The pool invariant is
// that such an object is never handed to another waiter while armed —
// getFutexTimer's tripwire panics on violation — and that the eventual
// stale fire is a no-op against both the dead task and any later sleeps.

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

func TestKilledWaiterTimerNotRecycledWhileArmed(t *testing.T) {
	e, k := newKernel()
	space := k.NewAddressSpace()
	a, err := space.Mmap(8, semProt, "victim-word", true, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := space.Mmap(8, semProt, "churn-word", true, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The victim arms a long (500us) timeout and is killed at 10us: its
	// timer stays armed for another 490us of churn below.
	var victimErr error
	victim := k.NewTask("victim", space, func(task *Task) int {
		victimErr = task.FutexWaitTimeout(a, 0, 500*sim.Microsecond)
		return 0
	})

	// The churner runs sequential short timed waits through the window
	// in which the victim's timer is armed, then past its stale fire.
	// Every wait draws a timer from the pool: if any cancel/exit path
	// had pooled the victim's armed object, a handout here would panic
	// (the tripwire) or — pre-tripwire — silently retarget the victim's
	// 500us fire into one of these sleeps, ending it early.
	const churnWait = 20 * sim.Microsecond
	var churnErrs []error
	var churnDurs []sim.Duration
	churner := k.NewTask("churner", space, func(task *Task) int {
		task.Nanosleep(15 * sim.Microsecond) // victim killed at 10us
		for i := 0; i < 30; i++ {            // 15us..615us: spans the 500us stale fire
			t0 := e.Now()
			churnErrs = append(churnErrs, task.FutexWaitTimeout(b, 0, churnWait))
			churnDurs = append(churnDurs, e.Now().Sub(t0))
		}
		return 0
	})

	killer := k.NewTask("killer", space, func(task *Task) int {
		task.Nanosleep(10 * sim.Microsecond)
		return errCode(task.Kill(victim.PID(), SIGKILL))
	})

	victim.SetAffinity(0)
	churner.SetAffinity(1)
	killer.SetAffinity(2)
	k.Start(victim, 0)
	k.Start(churner, 0)
	k.Start(killer, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}

	if !errors.Is(victimErr, ErrInterrupted) {
		t.Fatalf("victim: %v, want ErrInterrupted (killed mid-sleep)", victimErr)
	}
	for i, cerr := range churnErrs {
		if !errors.Is(cerr, ErrTimedOut) {
			t.Errorf("churn wait %d: %v, want ErrTimedOut", i, cerr)
		}
		// A stale-timer hit would end the sleep before its own deadline.
		if churnDurs[i] < churnWait {
			t.Errorf("churn wait %d lasted %v, want >= %v (woken by a stale timer?)", i, churnDurs[i], churnWait)
		}
	}
	st := k.FutexStats()
	if st.Blocked != st.Resumed+st.Timeouts+st.Interrupted {
		t.Errorf("sleeps not conserved: %+v", st)
	}
	if st.Interrupted != 1 {
		t.Errorf("ledger counts %d interrupts, want 1 (the kill)", st.Interrupted)
	}
	if n := k.ResidualFutexWaiters(); n != 0 {
		t.Errorf("%d residual futex waiters", n)
	}
	if n := k.FutexTableSize(); n != 0 {
		t.Errorf("futex table retains %d queues", n)
	}
}

func errCode(err error) int {
	if err != nil {
		return 1
	}
	return 0
}
