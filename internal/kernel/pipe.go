package kernel

import "errors"

// Pipe-related errors.
var (
	ErrPipeClosed = errors.New("kernel: broken pipe (EPIPE)")
)

// Pipe is a unidirectional kernel byte channel with a bounded buffer —
// the conventional inter-process communication path that PiP's
// address-space sharing is designed to beat (every byte is copied twice:
// writer→kernel, kernel→reader).
type Pipe struct {
	kernel *Kernel
	buf    []byte
	cap    int

	readers, writers int
	readq, writeq    WaitQueue

	// Stats.
	bytesMoved uint64
}

// DefaultPipeCapacity matches Linux's 64 KiB default.
const DefaultPipeCapacity = 64 * 1024

// NewPipe creates a pipe endpoint pair owned by the calling task. Both
// ends start open; Close each side independently.
func (t *Task) NewPipe() (*PipeReader, *PipeWriter) {
	k := t.kernel
	fr := k.sysEnter(t, "pipe")
	t.Charge(k.machine.Costs.SyscallEntry + k.machine.Costs.OpenCost/2)
	p := &Pipe{kernel: k, cap: DefaultPipeCapacity, readers: 1, writers: 1}
	k.sysExit(t, fr)
	return &PipeReader{p: p}, &PipeWriter{p: p}
}

// PipeReader is the read end.
type PipeReader struct {
	p      *Pipe
	closed bool
}

// PipeWriter is the write end.
type PipeWriter struct {
	p      *Pipe
	closed bool
}

// BytesMoved reports the cumulative bytes that crossed the pipe.
func (p *Pipe) BytesMoved() uint64 { return p.bytesMoved }

// Write copies data into the pipe, blocking while the buffer is full.
// It returns ErrPipeClosed if the read end is gone.
func (w *PipeWriter) Write(t *Task, data []byte) (int, error) {
	p := w.p
	k := p.kernel
	if w.closed {
		return 0, ErrPipeClosed
	}
	written := 0
	for written < len(data) {
		fr := k.sysEnter(t, "write_pipe")
		if p.readers == 0 {
			k.sysExit(t, fr)
			return written, ErrPipeClosed
		}
		space := p.cap - len(p.buf)
		if space == 0 {
			// Buffer full: sleep until a reader drains it.
			t.Charge(k.machine.Costs.SyscallEntry)
			k.noteWait(t, WaitPipeWrite, 0, nil)
			k.block(t, &p.writeq)
			k.sysExit(t, fr)
			continue
		}
		n := len(data) - written
		if n > space {
			n = space
		}
		// One copy into the kernel buffer.
		t.Charge(k.machine.Costs.SyscallEntry + k.machine.Costs.WriteBase +
			fromBytes(k.machine.Costs.MemCopyBytePS, n))
		p.buf = append(p.buf, data[written:written+n]...)
		written += n
		p.bytesMoved += uint64(n)
		k.WakeAll(&p.readq, k.machine.Costs.FutexWakeLatency)
		k.sysExit(t, fr)
	}
	return written, nil
}

// Read copies bytes out of the pipe into buf, blocking while it is
// empty. At end-of-stream (writer closed, buffer drained) it returns 0.
func (r *PipeReader) Read(t *Task, buf []byte) (int, error) {
	p := r.p
	k := p.kernel
	if r.closed {
		return 0, ErrPipeClosed
	}
	for {
		fr := k.sysEnter(t, "read_pipe")
		if len(p.buf) > 0 {
			n := copy(buf, p.buf)
			// The second copy, kernel buffer -> reader.
			t.Charge(k.machine.Costs.SyscallEntry + k.machine.Costs.ReadBase +
				fromBytes(k.machine.Costs.MemCopyBytePS, n))
			rest := copy(p.buf, p.buf[n:])
			p.buf = p.buf[:rest]
			k.WakeAll(&p.writeq, k.machine.Costs.FutexWakeLatency)
			k.sysExit(t, fr)
			return n, nil
		}
		if p.writers == 0 {
			t.Charge(k.machine.Costs.SyscallEntry)
			k.sysExit(t, fr)
			return 0, nil // EOF
		}
		t.Charge(k.machine.Costs.SyscallEntry)
		k.noteWait(t, WaitPipeRead, 0, nil)
		k.block(t, &p.readq)
		k.sysExit(t, fr)
	}
}

// Close shuts the read end; writers then see EPIPE.
func (r *PipeReader) Close(t *Task) {
	if r.closed {
		return
	}
	r.closed = true
	r.p.readers--
	t.Charge(t.kernel.machine.Costs.SyscallEntry + t.kernel.machine.Costs.CloseCost/2)
	t.kernel.WakeAll(&r.p.writeq, t.kernel.machine.Costs.FutexWakeLatency)
}

// Close shuts the write end; readers then see EOF after draining.
func (w *PipeWriter) Close(t *Task) {
	if w.closed {
		return
	}
	w.closed = true
	w.p.writers--
	t.Charge(t.kernel.machine.Costs.SyscallEntry + t.kernel.machine.Costs.CloseCost/2)
	t.kernel.WakeAll(&w.p.readq, t.kernel.machine.Costs.FutexWakeLatency)
}
