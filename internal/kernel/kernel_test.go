package kernel

import (
	"errors"
	"testing"

	"repro/internal/arch"
	"repro/internal/fs"
	"repro/internal/sim"
)

func newKernel() (*sim.Engine, *Kernel) {
	e := sim.New()
	k := New(e, arch.Wallaby())
	return e, k
}

// runMain runs body as the initial task and drives the engine to
// completion.
func runMain(t *testing.T, k *Kernel, body TaskBody) {
	t.Helper()
	task := k.NewTask("main", k.NewAddressSpace(), body)
	k.Start(task, 0)
	if err := k.Engine().Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
}

func TestTaskRunsAndExits(t *testing.T) {
	_, k := newKernel()
	ran := false
	task := k.NewTask("main", k.NewAddressSpace(), func(t *Task) int {
		ran = true
		t.Charge(100 * sim.Nanosecond)
		return 7
	})
	k.Start(task, 0)
	if err := k.Engine().Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if !ran || !task.Exited() || task.ExitCode() != 7 {
		t.Errorf("ran=%v exited=%v code=%d", ran, task.Exited(), task.ExitCode())
	}
	if task.CPUTime() < 100*sim.Nanosecond {
		t.Errorf("CPUTime = %v, want >= 100ns", task.CPUTime())
	}
}

func TestGetpidCostMatchesTableV(t *testing.T) {
	e, k := newKernel()
	var elapsed sim.Duration
	runMain(t, k, func(task *Task) int {
		start := e.Now()
		if pid := task.Getpid(); pid != task.TGID() {
			t.Errorf("getpid = %d, want %d", pid, task.TGID())
		}
		elapsed = e.Now().Sub(start)
		return 0
	})
	// Paper Table V: Linux getpid on Wallaby = 6.71e-8 s.
	if ns := elapsed.Nanoseconds(); ns < 66 || ns > 69 {
		t.Errorf("getpid took %vns, want ~67.1", ns)
	}
}

func TestPiPProcessModeCloneSemantics(t *testing.T) {
	_, k := newKernel()
	runMain(t, k, func(parent *Task) int {
		var child *Task
		child = parent.Clone("pip-task", PiPProcessFlags, func(c *Task) int {
			if c.Getpid() == parent.TGID() {
				t.Error("PiP process-mode child shares parent PID")
			}
			if c.Space() != parent.Space() {
				t.Error("PiP process-mode child must share the address space")
			}
			if c.FDTable() == parent.FDTable() {
				t.Error("PiP process-mode child must have its own FD table")
			}
			return 42
		})
		pid, status, err := parent.Wait()
		if err != nil {
			t.Errorf("wait: %v", err)
		}
		if pid != child.PID() || status != 42 {
			t.Errorf("wait = (%d,%d), want (%d,42)", pid, status, child.PID())
		}
		return 0
	})
}

func TestPThreadModeCloneSemantics(t *testing.T) {
	_, k := newKernel()
	runMain(t, k, func(parent *Task) int {
		child := parent.Clone("thread", PThreadFlags, func(c *Task) int {
			if c.Getpid() != parent.TGID() {
				t.Error("thread must share the thread-group id (getpid)")
			}
			if c.Gettid() == parent.PID() {
				t.Error("thread must have its own tid")
			}
			if c.FDTable() != parent.FDTable() {
				t.Error("thread must share the FD table")
			}
			return 5
		})
		// Threads are not waitable; wait() must report no children.
		if _, _, err := parent.Wait(); !errors.Is(err, ErrNoChild) {
			t.Errorf("wait over thread children: err = %v, want ErrNoChild", err)
		}
		if status := parent.Join(child); status != 5 {
			t.Errorf("join = %d, want 5", status)
		}
		return 0
	})
}

func TestWaitBlocksUntilChildExit(t *testing.T) {
	e, k := newKernel()
	runMain(t, k, func(parent *Task) int {
		parent.Clone("slow-child", PiPProcessFlags, func(c *Task) int {
			c.Nanosleep(10 * sim.Microsecond)
			return 1
		})
		before := e.Now()
		_, status, err := parent.Wait()
		if err != nil || status != 1 {
			t.Errorf("wait = %d,%v", status, err)
		}
		if e.Now().Sub(before) < 10*sim.Microsecond {
			t.Error("wait returned before child exited")
		}
		return 0
	})
}

func TestSchedYieldTwoTasksOneCore(t *testing.T) {
	// Table IV, "sched_yield() on 1 core": two threads ping-pong via
	// yield; per-yield time must be SchedYieldNoSwitch + KernelSwitch.
	e, k := newKernel()
	const warm, measured = 50, 200
	var t0, t1 sim.Time
	done := false
	a := k.NewTask("a", k.NewAddressSpace(), func(task *Task) int {
		for i := 0; i < warm+measured; i++ {
			if i == warm {
				t0 = e.Now()
			}
			task.SchedYield()
		}
		t1 = e.Now()
		done = true
		return 0
	})
	b := k.NewTask("b", k.NewAddressSpace(), func(task *Task) int {
		for !done {
			task.SchedYield()
		}
		return 0
	})
	a.SetAffinity(3)
	b.SetAffinity(3)
	k.Start(a, 0)
	k.Start(b, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	// In the window, a did `measured` yields and b interleaved the same
	// number, all serialized on one core.
	perYield := float64(t1.Sub(t0)) / (2 * measured) / 1000 // ns
	// Paper: 266 ns on Wallaby. Allow slack for start/end asymmetry.
	if perYield < 250 || perYield > 285 {
		t.Errorf("per-yield = %vns, want ~266", perYield)
	}
}

func TestSchedYieldAloneIsCheap(t *testing.T) {
	// Table IV, "sched_yield() on 2 cores": a thread alone on its core
	// pays only the trap (77.9 ns on Wallaby).
	e, k := newKernel()
	var elapsed sim.Duration
	runMain(t, k, func(task *Task) int {
		start := e.Now()
		task.SchedYield()
		elapsed = e.Now().Sub(start)
		return 0
	})
	if ns := elapsed.Nanoseconds(); ns < 76 || ns > 80 {
		t.Errorf("lone sched_yield = %vns, want ~77.9", ns)
	}
}

func TestPinningRespected(t *testing.T) {
	_, k := newKernel()
	done := 0
	a := k.NewTask("a", k.NewAddressSpace(), func(task *Task) int {
		if task.Core().ID() != 5 {
			t.Errorf("task a on core %d, want 5", task.Core().ID())
		}
		done++
		return 0
	})
	a.SetAffinity(5)
	k.Start(a, 0)
	if err := k.Engine().Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if done != 1 {
		t.Error("pinned task did not run")
	}
}

func TestUnpinnedTasksSpreadAcrossCores(t *testing.T) {
	_, k := newKernel()
	cores := make(map[int]bool)
	var tasks []*Task
	for i := 0; i < 4; i++ {
		task := k.NewTask("t", k.NewAddressSpace(), func(task *Task) int {
			cores[task.Core().ID()] = true
			task.Charge(time100)
			return 0
		})
		tasks = append(tasks, task)
	}
	for _, task := range tasks {
		k.Start(task, 0)
	}
	if err := k.Engine().Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if len(cores) != 4 {
		t.Errorf("4 unpinned tasks used %d cores, want 4", len(cores))
	}
}

const time100 = 100 * sim.Nanosecond

func TestFileSyscalls(t *testing.T) {
	_, k := newKernel()
	runMain(t, k, func(task *Task) int {
		fd, err := task.Open("/data", fs.OCreate|fs.ORdWr)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if n, err := task.Write(fd, []byte("payload"), false); err != nil || n != 7 {
			t.Fatalf("write = %d,%v", n, err)
		}
		if err := task.Seek(fd, 0); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 7)
		if n, err := task.Read(fd, buf); err != nil || string(buf[:n]) != "payload" {
			t.Fatalf("read = %q,%v", buf[:n], err)
		}
		if err := task.Close(fd); err != nil {
			t.Fatal(err)
		}
		if err := task.Close(fd); !errors.Is(err, ErrBadFD) {
			t.Errorf("double close err = %v, want ErrBadFD", err)
		}
		return 0
	})
}

func TestFDIsolationBetweenPiPProcesses(t *testing.T) {
	// The system-call consistency premise: FD tables diverge after a
	// process-mode clone. An fd opened by the child after the clone is
	// meaningless in the parent, even though they share an address
	// space (CloneVM without CloneFiles).
	_, k := newKernel()
	runMain(t, k, func(parent *Task) int {
		var childFD int
		parent.Clone("other", PiPProcessFlags, func(c *Task) int {
			var err error
			childFD, err = c.Open("/child-file", fs.OCreate|fs.OWrOnly)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.Write(childFD, []byte("x"), false); err != nil {
				t.Errorf("child write on own fd: %v", err)
			}
			return 0
		})
		parent.Wait()
		// The child's fd number is unknown to the parent's table.
		if _, err := parent.FDTable().Get(childFD); !errors.Is(err, ErrBadFD) {
			t.Errorf("parent resolved child's fd %d: err = %v, want ErrBadFD", childFD, err)
		}
		return 0
	})
}

func TestWriteCostScalesWithSize(t *testing.T) {
	e, k := newKernel()
	var small, large sim.Duration
	runMain(t, k, func(task *Task) int {
		fd, _ := task.Open("/f", fs.OCreate|fs.OWrOnly)
		s := e.Now()
		task.Write(fd, make([]byte, 64), false)
		small = e.Now().Sub(s)
		s = e.Now()
		task.Write(fd, make([]byte, 1<<20), false)
		large = e.Now().Sub(s)
		task.Close(fd)
		return 0
	})
	if large < 10*small {
		t.Errorf("1MiB write (%v) not much slower than 64B (%v)", large, small)
	}
}

func TestRemoteWritePenalty(t *testing.T) {
	// Albireo models a remote-byte penalty (Wallaby's prefetchers hide
	// it, so its factor is 1.0).
	e := sim.New()
	k := New(e, arch.Albireo())
	var local, remote sim.Duration
	runMain(t, k, func(task *Task) int {
		fd, _ := task.Open("/f", fs.OCreate|fs.OWrOnly)
		buf := make([]byte, 1<<20)
		s := e.Now()
		task.Write(fd, buf, false)
		local = e.Now().Sub(s)
		s = e.Now()
		task.Write(fd, buf, true)
		remote = e.Now().Sub(s)
		task.Close(fd)
		return 0
	})
	if remote <= local {
		t.Errorf("remote write (%v) not slower than local (%v)", remote, local)
	}
}

func TestFutexWaitWake(t *testing.T) {
	e, k := newKernel()
	space := k.NewAddressSpace()
	var addr uint64
	waiter := k.NewTask("waiter", space, func(task *Task) int {
		if err := task.FutexWait(addr, 0); err != nil {
			t.Errorf("futex wait: %v", err)
		}
		return 0
	})
	waker := k.NewTask("waker", space, func(task *Task) int {
		task.Nanosleep(5 * sim.Microsecond)
		task.Space().WriteU64(addr, 1, nil)
		if n := task.FutexWake(addr, 1); n != 1 {
			t.Errorf("futex wake = %d, want 1", n)
		}
		return 0
	})
	a, err := space.Mmap(8, semProt, "futex", true, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr = a
	waiter.SetAffinity(0)
	waker.SetAffinity(1)
	k.Start(waiter, 0)
	k.Start(waker, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
}

func TestFutexWaitValueMismatch(t *testing.T) {
	_, k := newKernel()
	runMain(t, k, func(task *Task) int {
		addr, _ := task.Mmap(8, true)
		task.Space().WriteU64(addr, 99, nil)
		if err := task.FutexWait(addr, 0); !errors.Is(err, ErrFutexAgain) {
			t.Errorf("err = %v, want ErrFutexAgain", err)
		}
		return 0
	})
}

func TestSemaphorePingPong(t *testing.T) {
	e, k := newKernel()
	space := k.NewAddressSpace()
	var semA, semB *Semaphore
	const rounds = 10
	seqLen := 0
	producer := k.NewTask("producer", space, func(task *Task) int {
		for i := 0; i < rounds; i++ {
			semA.Post(task)
			semB.Wait(task)
		}
		return 0
	})
	consumer := k.NewTask("consumer", space, func(task *Task) int {
		for i := 0; i < rounds; i++ {
			semA.Wait(task)
			seqLen++
			semB.Post(task)
		}
		return 0
	})
	setup := k.NewTask("setup", space, func(task *Task) int {
		var err error
		if semA, err = task.NewSemaphore(0); err != nil {
			t.Error(err)
		}
		if semB, err = task.NewSemaphore(0); err != nil {
			t.Error(err)
		}
		k.Start(producer, 0)
		k.Start(consumer, 0)
		return 0
	})
	producer.SetAffinity(0)
	consumer.SetAffinity(1)
	k.Start(setup, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if seqLen != rounds {
		t.Errorf("consumer ran %d rounds, want %d", seqLen, rounds)
	}
}

func TestLoadTLSCosts(t *testing.T) {
	// x86_64: arch_prctl system-call, counted and expensive.
	e, k := newKernel()
	var elapsed sim.Duration
	runMain(t, k, func(task *Task) int {
		s := e.Now()
		task.LoadTLS(0xdead000)
		elapsed = e.Now().Sub(s)
		if task.TLSReg() != 0xdead000 {
			t.Error("TLS register not set")
		}
		return 0
	})
	if ns := elapsed.Nanoseconds(); ns != 109 {
		t.Errorf("x86 TLS load = %vns, want 109", ns)
	}
	if k.SyscallCount("arch_prctl") != 1 {
		t.Error("arch_prctl not counted as a syscall on x86_64")
	}

	// AArch64: direct register write, cheap, no syscall.
	e2 := sim.New()
	k2 := New(e2, arch.Albireo())
	task2 := k2.NewTask("main", k2.NewAddressSpace(), func(task *Task) int {
		s := e2.Now()
		task.LoadTLS(1)
		if got := e2.Now().Sub(s).Nanoseconds(); got != 2.5 {
			t.Errorf("aarch64 TLS load = %vns, want 2.5", got)
		}
		return 0
	})
	k2.Start(task2, 0)
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if k2.SyscallCount("arch_prctl") != 0 {
		t.Error("aarch64 TLS load must not be a syscall")
	}
}

func TestSignalDeliveryAndHandler(t *testing.T) {
	_, k := newKernel()
	runMain(t, k, func(parent *Task) int {
		handled := false
		child := parent.Clone("victim", PiPProcessFlags, func(c *Task) int {
			c.Sigaction(SIGUSR1, func(t *Task, sig int) { handled = true })
			c.Nanosleep(100 * sim.Microsecond)
			return 0
		})
		parent.Nanosleep(10 * sim.Microsecond)
		if err := parent.Kill(child.PID(), SIGUSR1); err != nil {
			t.Errorf("kill: %v", err)
		}
		parent.Wait()
		if !handled {
			t.Error("handler did not run")
		}
		recs := child.Signals().Deliveries
		if len(recs) != 1 || recs[0].TaskPID != child.PID() || !recs[0].Handled {
			t.Errorf("delivery records = %+v", recs)
		}
		return 0
	})
}

func TestBlockedSignalStaysPending(t *testing.T) {
	_, k := newKernel()
	runMain(t, k, func(parent *Task) int {
		got := 0
		child := parent.Clone("masker", PiPProcessFlags, func(c *Task) int {
			c.Sigaction(SIGUSR1, func(t *Task, sig int) { got++ })
			c.Sigprocmask(1 << SIGUSR1)
			c.Nanosleep(50 * sim.Microsecond)
			if got != 0 {
				t.Error("blocked signal delivered early")
			}
			c.Sigprocmask(0) // unblocking delivers the pending signal
			return 0
		})
		parent.Nanosleep(10 * sim.Microsecond)
		parent.Kill(child.PID(), SIGUSR1)
		parent.Wait()
		if got != 1 {
			t.Errorf("handler ran %d times, want 1", got)
		}
		return 0
	})
}

func TestSignalInterruptsSleepViaWaitError(t *testing.T) {
	e, k := newKernel()
	runMain(t, k, func(parent *Task) int {
		child := parent.Clone("sleeper", PiPProcessFlags, func(c *Task) int {
			c.Nanosleep(time100) // ensure parent's Kill targets a sleeping task
			start := e.Now()
			c.Nanosleep(10 * sim.Millisecond)
			if e.Now().Sub(start) >= 10*sim.Millisecond {
				t.Error("signal did not shorten the sleep")
			}
			return 0
		})
		parent.Nanosleep(50 * sim.Microsecond)
		parent.Kill(child.PID(), SIGUSR1)
		parent.Wait()
		return 0
	})
}

func TestKillBadPID(t *testing.T) {
	_, k := newKernel()
	runMain(t, k, func(task *Task) int {
		if err := task.Kill(9999, SIGTERM); !errors.Is(err, ErrBadPID) {
			t.Errorf("err = %v, want ErrBadPID", err)
		}
		return 0
	})
}

func TestSyscallAuditorSeesCaller(t *testing.T) {
	_, k := newKernel()
	var audited []string
	k.SetAuditor(func(task *Task, name string) {
		audited = append(audited, name)
	})
	runMain(t, k, func(task *Task) int {
		task.Getpid()
		fd, _ := task.Open("/x", fs.OCreate|fs.OWrOnly)
		task.Close(fd)
		return 0
	})
	want := []string{"getpid", "open", "close"}
	if len(audited) != 3 {
		t.Fatalf("audited %v", audited)
	}
	for i := range want {
		if audited[i] != want[i] {
			t.Errorf("audited[%d] = %q, want %q", i, audited[i], want[i])
		}
	}
}

func TestMmapMunmapSyscalls(t *testing.T) {
	_, k := newKernel()
	runMain(t, k, func(task *Task) int {
		addr, err := task.Mmap(1<<16, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := task.MemWrite(addr, []byte("x")); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1)
		if err := task.MemRead(addr, buf); err != nil || buf[0] != 'x' {
			t.Fatalf("mem read = %q, %v", buf, err)
		}
		if err := task.Munmap(addr, 1<<16); err != nil {
			t.Fatal(err)
		}
		return 0
	})
}

func TestCoreBusyAccounting(t *testing.T) {
	_, k := newKernel()
	runMain(t, k, func(task *Task) int {
		task.Compute(1 * sim.Millisecond)
		return 0
	})
	var busy sim.Duration
	for i := 0; i < k.Cores(); i++ {
		busy += k.Core(i).Busy()
	}
	if busy < sim.Millisecond {
		t.Errorf("total core busy = %v, want >= 1ms", busy)
	}
}

func TestQueuedTaskRunsAfterCurrentBlocks(t *testing.T) {
	e, k := newKernel()
	order := []string{}
	a := k.NewTask("a", k.NewAddressSpace(), func(task *Task) int {
		order = append(order, "a-start")
		task.Nanosleep(10 * sim.Microsecond)
		order = append(order, "a-end")
		return 0
	})
	b := k.NewTask("b", k.NewAddressSpace(), func(task *Task) int {
		order = append(order, "b")
		return 0
	})
	a.SetAffinity(0)
	b.SetAffinity(0)
	k.Start(a, 0)
	k.Start(b, 0)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a-start", "b", "a-end"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSyscallCountsAccumulate(t *testing.T) {
	_, k := newKernel()
	runMain(t, k, func(task *Task) int {
		for i := 0; i < 5; i++ {
			task.Getpid()
		}
		return 0
	})
	if got := k.SyscallCount("getpid"); got != 5 {
		t.Errorf("getpid count = %d, want 5", got)
	}
	if k.Syscalls() < 5 {
		t.Errorf("total syscalls = %d, want >= 5", k.Syscalls())
	}
}

func TestKernelAccessors(t *testing.T) {
	e, k := newKernel()
	if k.Machine().Name != "Wallaby" || k.Phys() == nil || k.FS() == nil {
		t.Error("kernel accessors")
	}
	runMain(t, k, func(task *Task) int {
		if task.Name() != "main" || task.Kernel() != k || task.Parent() != nil {
			t.Error("task accessors")
		}
		if task.Pinned() != -1 {
			t.Errorf("Pinned = %d", task.Pinned())
		}
		if task.String() == "" || task.State().String() != "running" {
			t.Error("stringers")
		}
		if task.Gettid() != task.PID() {
			t.Error("gettid")
		}
		child := task.Clone("c", PiPProcessFlags, func(c *Task) int {
			c.SchedYield()
			return 0
		})
		if k.Core(task.Core().ID()).Current() != task {
			t.Error("Core.Current")
		}
		_ = child
		task.Wait()
		return 0
	})
	_ = e
	if k.ContextSwitches() == 0 {
		// At least the exit path switches happen in most runs; don't
		// require but exercise the accessor.
		_ = k.ContextSwitches()
	}
}

func TestUnlinkSyscall(t *testing.T) {
	_, k := newKernel()
	runMain(t, k, func(task *Task) int {
		fd, _ := task.Open("/gone", fs.OCreate|fs.OWrOnly)
		task.Close(fd)
		if err := task.Unlink("/gone"); err != nil {
			t.Errorf("unlink: %v", err)
		}
		if err := task.Unlink("/gone"); err == nil {
			t.Error("double unlink succeeded")
		}
		return 0
	})
}

func TestFutexWaitersCount(t *testing.T) {
	e, k := newKernel()
	space := k.NewAddressSpace()
	var addr uint64
	waiter := k.NewTask("w", space, func(task *Task) int {
		return boolToInt(task.FutexWait(addr, 0) == nil)
	})
	driver := k.NewTask("d", space, func(task *Task) int {
		a, _ := space.Mmap(8, semProt, "fx", true, nil)
		addr = a
		k.Start(waiter, 0)
		task.Nanosleep(5 * sim.Microsecond)
		if got := k.FutexWaiters(space.ID, addr); got != 1 {
			t.Errorf("FutexWaiters = %d, want 1", got)
		}
		task.FutexWake(addr, 1)
		return 0
	})
	driver.SetAffinity(0)
	waiter.SetAffinity(1)
	k.Start(driver, 0)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestSemaphoreValueAndAddr(t *testing.T) {
	_, k := newKernel()
	runMain(t, k, func(task *Task) int {
		sem, err := task.NewSemaphore(3)
		if err != nil {
			t.Fatal(err)
		}
		if sem.Addr() == 0 {
			t.Error("Addr zero")
		}
		if v, _ := sem.Value(task); v != 3 {
			t.Errorf("Value = %d", v)
		}
		sem.Wait(task)
		if v, _ := sem.Value(task); v != 2 {
			t.Errorf("Value after Wait = %d", v)
		}
		sem.Post(task)
		if v, _ := sem.Value(task); v != 3 {
			t.Errorf("Value after Post = %d", v)
		}
		return 0
	})
}

func TestPipeBytesMovedAndQueueLen(t *testing.T) {
	_, k := newKernel()
	runMain(t, k, func(task *Task) int {
		r, w := task.NewPipe()
		w.Write(task, []byte("12345"))
		buf := make([]byte, 8)
		r.Read(task, buf)
		if r.p.BytesMoved() != 5 {
			t.Errorf("BytesMoved = %d", r.p.BytesMoved())
		}
		if task.FDTable().Len() != 0 {
			t.Errorf("fd table len = %d", task.FDTable().Len())
		}
		w.Close(task)
		r.Close(task)
		return 0
	})
}

func TestForkStyleCloneIsolatesMemory(t *testing.T) {
	// clone without CLONE_VM = fork: copy-on-write space. The child
	// inherits the parent's memory image but writes are private — the
	// conventional model PiP's shared-space spawn contrasts with.
	_, k := newKernel()
	runMain(t, k, func(parent *Task) int {
		addr, _ := parent.Mmap(4096, true)
		parent.MemWrite(addr, []byte("original"))
		parent.Clone("forked", 0, func(c *Task) int {
			buf := make([]byte, 8)
			c.MemRead(addr, buf)
			if string(buf) != "original" {
				t.Errorf("child inherited %q", buf)
			}
			c.MemWrite(addr, []byte("mutated!"))
			return 0
		})
		parent.Wait()
		buf := make([]byte, 8)
		parent.MemRead(addr, buf)
		if string(buf) != "original" {
			t.Errorf("parent sees child write: %q", buf)
		}
		// Contrast: a CLONE_VM (PiP-style) child shares the memory.
		parent.Clone("pip-style", PiPProcessFlags, func(c *Task) int {
			c.MemWrite(addr, []byte("visible!"))
			return 0
		})
		parent.Wait()
		parent.MemRead(addr, buf)
		if string(buf) != "visible!" {
			t.Errorf("CLONE_VM write not shared: %q", buf)
		}
		return 0
	})
}
