package kernel

// Regression tests for the futex fault loop and the stale-timeout
// guard, driven through a stub fault plane (the real plane lives in
// internal/fault, which imports this package).

import (
	"errors"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// stubPlane is a FaultPlane that only drops futex wakes, by predicate.
type stubPlane struct {
	drop func(waiter *Task, addr uint64) bool
}

func (s *stubPlane) SyscallError(*Task, string) error      { return nil }
func (s *stubPlane) FutexSpurious(*Task, uint64) bool      { return false }
func (s *stubPlane) TaskShouldDie(*Task, string) bool      { return false }
func (s *stubPlane) ExtraDelay(*Task, string) sim.Duration { return 0 }
func (s *stubPlane) IOScale(*Task, string) float64         { return 1 }
func (s *stubPlane) Armed(*Task, string) bool              { return true }
func (s *stubPlane) FutexDropWake(w *Task, a uint64) bool {
	return s.drop != nil && s.drop(w, a)
}

// TestFutexWakeLostWakeAdvancesPastDoomedWaiter is the regression test
// for the lost-wake fault loop: with two waiters queued and every wake
// destined for the head waiter dropped, FutexWake(addr, 2) must spend
// one slot on the doomed head and deliver the other to the next waiter
// — not let the head absorb both slots and starve the queue.
func TestFutexWakeLostWakeAdvancesPastDoomedWaiter(t *testing.T) {
	e, k := newKernel()
	reg := metrics.NewRegistry()
	k.SetMetrics(reg)
	k.SetFaultPlane(&stubPlane{
		drop: func(w *Task, _ uint64) bool { return w.Name() == "doomed" },
	})
	space := k.NewAddressSpace()
	a, err := space.Mmap(8, semProt, "futex", true, nil)
	if err != nil {
		t.Fatal(err)
	}
	var doomedErr, luckyErr error
	claimed := -1
	doomed := k.NewTask("doomed", space, func(task *Task) int {
		// The timeout is the doomed waiter's only way out: its wake is
		// eaten by the fault.
		doomedErr = task.FutexWaitTimeout(a, 0, 200*sim.Microsecond)
		return 0
	})
	lucky := k.NewTask("lucky", space, func(task *Task) int {
		task.Nanosleep(2 * sim.Microsecond) // queue behind doomed
		luckyErr = task.FutexWait(a, 0)
		return 0
	})
	waker := k.NewTask("waker", space, func(task *Task) int {
		task.Nanosleep(10 * sim.Microsecond) // both waiters asleep by now
		claimed = task.FutexWake(a, 2)
		return 0
	})
	doomed.SetAffinity(0)
	lucky.SetAffinity(1)
	waker.SetAffinity(2)
	k.Start(doomed, 0)
	k.Start(lucky, 0)
	k.Start(waker, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	// Return value counts claimed slots (delivered + lost), documented
	// FutexWake semantics.
	if claimed != 2 {
		t.Errorf("FutexWake returned %d, want 2 (1 delivered + 1 lost)", claimed)
	}
	if luckyErr != nil {
		t.Errorf("lucky waiter: %v, want woken normally (was starved before the fix)", luckyErr)
	}
	if !errors.Is(doomedErr, ErrTimedOut) {
		t.Errorf("doomed waiter: %v, want ErrTimedOut", doomedErr)
	}
	st := k.FutexStats()
	if st.Claimed != 2 || st.Delivered != 1 || st.Lost != 1 {
		t.Errorf("ledger claimed=%d delivered=%d lost=%d, want 2/1/1", st.Claimed, st.Delivered, st.Lost)
	}
	if st.Blocked != st.Resumed+st.Timeouts+st.Interrupted {
		t.Errorf("sleeps not conserved: %+v", st)
	}
	// The woken metric counts deliveries only; lost wakes go to lost.
	snap := map[string]float64{}
	for _, s := range reg.Snapshot() {
		snap[s.Name] = s.Value
	}
	if snap["kernel.futex.woken"] != 1 || snap["kernel.futex.lost_wakes"] != 1 {
		t.Errorf("metrics woken=%v lost=%v, want 1/1",
			snap["kernel.futex.woken"], snap["kernel.futex.lost_wakes"])
	}
	if n := k.ResidualFutexWaiters(); n != 0 {
		t.Errorf("%d residual futex waiters", n)
	}
}

// TestFutexStaleTimerDoesNotFireOnReArmedWait is the regression test
// for the timeout guard: a task whose timed wait is woken normally and
// which then re-blocks on the very same word through a different wait
// path (Semaphore.Wait) must not be woken by the first wait's stale
// timer.
func TestFutexStaleTimerDoesNotFireOnReArmedWait(t *testing.T) {
	e, k := newKernel()
	space := k.NewAddressSpace()
	a, err := space.Mmap(8, semProt, "futex", true, nil)
	if err != nil {
		t.Fatal(err)
	}
	sem := &Semaphore{addr: a} // same word, different wait path
	var firstErr, semErr error
	var semReturned sim.Time
	waiter := k.NewTask("waiter", space, func(task *Task) int {
		// Timed wait #1: woken normally at ~10us, timer armed for 50us.
		firstErr = task.FutexWaitTimeout(a, 0, 50*sim.Microsecond)
		// Immediately re-block on the same queue; the stale 50us timer
		// must not end this sleep (the post arrives at 300us).
		semErr = sem.Wait(task)
		semReturned = e.Now()
		return 0
	})
	waker := k.NewTask("waker", space, func(task *Task) int {
		task.Nanosleep(10 * sim.Microsecond)
		task.FutexWake(a, 1)
		task.Nanosleep(290 * sim.Microsecond)
		return sem.post(task)
	})
	waiter.SetAffinity(0)
	waker.SetAffinity(1)
	k.Start(waiter, 0)
	k.Start(waker, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if firstErr != nil {
		t.Errorf("first wait: %v, want normal wake", firstErr)
	}
	if semErr != nil {
		t.Errorf("semaphore wait: %v (stale timer fired into the re-armed wait?)", semErr)
	}
	if min := sim.Time(0).Add(300 * sim.Microsecond); semReturned < min {
		t.Errorf("semaphore wait returned at %v, before the post at 300us — woken by the stale timer", semReturned)
	}
	st := k.FutexStats()
	if st.Timeouts != 0 {
		t.Errorf("ledger counts %d timeouts, want 0", st.Timeouts)
	}
	if st.Blocked != st.Resumed+st.Timeouts+st.Interrupted {
		t.Errorf("sleeps not conserved: %+v", st)
	}
}

// post is Semaphore.Post returning its error (helper keeping the test
// task body tidy).
func (s *Semaphore) post(t *Task) int {
	if err := s.Post(t); err != nil {
		return 1
	}
	return 0
}
