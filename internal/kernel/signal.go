package kernel

import "repro/internal/probe"

// Signal numbers (the subset the simulation uses).
const (
	SIGINT  = 2
	SIGKILL = 9
	SIGUSR1 = 10
	SIGUSR2 = 12
	SIGTERM = 15
)

// SigHandler is a registered signal handler. It runs in the context of
// the receiving kernel task.
type SigHandler func(t *Task, sig int)

// Delivery records one delivered signal — in particular *which kernel
// task* received it. The paper's §VII signaling caveat is precisely that
// with fcontext-style switching "if one tries to send a signal to a UC,
// then the signal is delivered to the scheduling KC"; the ULP layer's
// tests assert that behaviour (and its ucontext-mode fix) through these
// records.
type Delivery struct {
	Sig     int
	TaskPID int // the kernel task whose handler table fired
	Handled bool
	Blocked bool
}

// SignalState is the per-task (or shared, with CloneSighand) signal
// disposition: handler table and blocked mask, plus a delivery log. The
// handler map is allocated lazily on the first Sigaction — most tasks
// never register a handler, and at a million tasks an eager map per
// task (and per fork-style Clone copy) is pure footprint.
type SignalState struct {
	handlers map[int]SigHandler // nil until a handler is registered
	mask     uint64             // bit i+1 set => signal i+1 blocked
	pending  []int

	Deliveries []Delivery
}

// NewSignalState creates a default disposition (no handlers, empty
// mask).
func NewSignalState() *SignalState { return &SignalState{} }

// Copy duplicates the disposition (fork-style).
func (s *SignalState) Copy() *SignalState {
	cp := NewSignalState()
	if s.handlers != nil {
		cp.handlers = make(map[int]SigHandler, len(s.handlers))
		for sig, h := range s.handlers {
			cp.handlers[sig] = h
		}
	}
	cp.mask = s.mask
	return cp
}

func sigBit(sig int) uint64 { return 1 << uint(sig) }

// Blocked reports whether sig is in the blocked mask.
func (s *SignalState) Blocked(sig int) bool { return s.mask&sigBit(sig) != 0 }

// Signals returns the signal state of the task.
func (t *Task) Signals() *SignalState { return t.sig }

// Sigaction registers a handler for sig in the calling task's handler
// table.
func (t *Task) Sigaction(sig int, h SigHandler) {
	k := t.kernel
	fr := k.sysEnter(t, "sigaction")
	t.Charge(k.machine.Costs.SyscallEntry)
	if t.sig.handlers == nil {
		t.sig.handlers = make(map[int]SigHandler)
	}
	t.sig.handlers[sig] = h
	k.sysExit(t, fr)
}

// Sigprocmask replaces the calling task's blocked-signal mask and
// returns the previous one. The cost is the paper's objection to
// ucontext: saving/restoring the mask on every context switch "adds
// non-negligible overhead".
func (t *Task) Sigprocmask(mask uint64) uint64 {
	k := t.kernel
	fr := k.sysEnter(t, "sigprocmask")
	t.Charge(k.machine.Costs.SigmaskSwitch)
	old := t.sig.mask
	t.sig.mask = mask
	// Delivering newly unblocked pending signals.
	var still []int
	for _, sig := range t.sig.pending {
		if t.sig.Blocked(sig) {
			still = append(still, sig)
			continue
		}
		t.kernel.deliver(t, sig)
	}
	t.sig.pending = still
	k.sysExit(t, fr)
	return old
}

// SigmaskRaw reads the mask without a system-call (for the runtime's own
// bookkeeping).
func (t *Task) SigmaskRaw() uint64 { return t.sig.mask }

// SetSigmaskRaw writes the mask without charging (used when the ULP
// runtime models per-UC masks itself).
func (t *Task) SetSigmaskRaw(mask uint64) { t.sig.mask = mask }

// Kill sends sig to the task with the given kernel PID, as kill(2) from
// the calling task. SIGKILL is not catchable or blockable.
func (t *Task) Kill(pid, sig int) error {
	k := t.kernel
	fr := k.sysEnter(t, "kill")
	t.Charge(k.machine.Costs.SyscallEntry)
	target := k.tasks[pid]
	if target == nil {
		k.sysExit(t, fr)
		return ErrBadPID
	}
	k.SendSignal(target, sig)
	k.sysExit(t, fr)
	return nil
}

// SendSignal delivers sig to target directly (used by Kill and by
// "terminal" senders with no sending task). Blocked signals are queued
// pending; others are delivered immediately, interrupting interruptible
// sleeps.
func (k *Kernel) SendSignal(target *Task, sig int) {
	if sig != SIGKILL && target.sig.Blocked(sig) {
		target.sig.pending = append(target.sig.pending, sig)
		target.sig.Deliveries = append(target.sig.Deliveries,
			Delivery{Sig: sig, TaskPID: target.pid, Blocked: true})
		return
	}
	k.deliver(target, sig)
	k.interrupt(target, k.machine.Costs.FutexWakeLatency)
}

func (k *Kernel) deliver(target *Task, sig int) {
	h := target.sig.handlers[sig]
	target.sig.Deliveries = append(target.sig.Deliveries,
		Delivery{Sig: sig, TaskPID: target.pid, Handled: h != nil})
	if k.probes.Attached(probe.PSignal) {
		c := k.probes.Begin(probe.PSignal, k.engine.Now())
		c.Task = target
		c.Val = int64(sig)
		k.probes.Fire(c)
	}
	k.emit(target, "signal", "signal %d -> %s (handled=%v)", sig, pidString(target), h != nil)
	if h != nil {
		h(target, sig)
	}
}
