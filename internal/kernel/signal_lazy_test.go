package kernel

// Tests for the lazily-allocated signal-handler map (PR 6): at a
// million tasks an eager map per task is pure footprint, so the map must
// stay nil until the first Sigaction — including across Fork-less
// (CloneSighand-sharing) exec-style spawns and fork-style Copy — while
// sharing and deep-copy semantics stay exact.

import "testing"

func TestSignalHandlerMapStaysLazy(t *testing.T) {
	e, k := newKernel()
	space := k.NewAddressSpace()
	var threadChild, forkChild *Task
	root := k.NewTask("root", space, func(task *Task) int {
		// Fork-less exec-style spawn: the thread shares the parent's
		// disposition object outright.
		threadChild = task.Clone("thread", PThreadFlags, func(c *Task) int { return 0 })
		// Fork-style spawn: the disposition is copied.
		forkChild = task.Clone("fork", CloneVM, func(c *Task) int { return 0 })
		task.Join(threadChild)
		task.Join(forkChild)
		return 0
	})
	k.Start(root, 0)

	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if root.Signals().handlers != nil {
		t.Errorf("root allocated a handler map without any Sigaction")
	}
	if threadChild.Signals() != root.Signals() {
		t.Errorf("CloneSighand child does not share the parent's SignalState")
	}
	if forkChild.Signals() == root.Signals() {
		t.Errorf("fork-style child shares the parent's SignalState, want a copy")
	}
	if forkChild.Signals().handlers != nil {
		t.Errorf("fork-style Copy allocated a handler map for a handler-less parent")
	}
}

func TestSignalHandlerSharingAndCopySemantics(t *testing.T) {
	e, k := newKernel()
	space := k.NewAddressSpace()
	var rootFired, threadFired, forkFired int
	root := k.NewTask("root", space, func(task *Task) int {
		thread := task.Clone("thread", PThreadFlags, func(c *Task) int {
			// Registered through the shared table: visible to the parent.
			c.Sigaction(SIGUSR1, func(*Task, int) { threadFired++ })
			return 0
		})
		task.Join(thread)
		fork := task.Clone("fork", CloneVM, func(c *Task) int {
			// The fork-style copy inherits SIGUSR1 at clone time; this
			// registration must stay private to the child.
			c.Sigaction(SIGUSR2, func(*Task, int) { forkFired++ })
			c.Kill(c.PID(), SIGUSR1)
			c.Kill(c.PID(), SIGUSR2)
			return 0
		})
		task.Join(fork)
		task.Kill(task.PID(), SIGUSR1) // via the handler the thread registered
		task.Kill(task.PID(), SIGUSR2) // fork-private: must be unhandled here
		return 0
	})
	_ = rootFired
	k.Start(root, 0)

	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if threadFired != 2 {
		t.Errorf("shared-table SIGUSR1 handler fired %d times, want 2 (fork child + parent)", threadFired)
	}
	if forkFired != 1 {
		t.Errorf("fork-private SIGUSR2 handler fired %d times, want 1 (child only)", forkFired)
	}
	var handled int
	for _, d := range root.Signals().Deliveries {
		if d.TaskPID == root.PID() && d.Handled {
			handled++
		}
	}
	if handled != 1 {
		t.Errorf("parent handled %d deliveries, want 1 (SIGUSR1 only; SIGUSR2 is fork-private)", handled)
	}
}
