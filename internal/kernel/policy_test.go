package kernel

// Tests for the SchedPolicy hook points: a stub policy must actually be
// consulted by pickCore/enqueue/pickNext, its decisions must be honored,
// and declining (nil/false) must fall through to the built-in FIFO
// dispatch. Affinity-pinned tasks bypass the policy entirely.

import (
	"testing"

	"repro/internal/sim"
)

// stubPolicy forces every unpinned task onto one core and drains that
// core's queue LIFO — decisions the built-in dispatch would never make,
// so the test can tell the hooks fired.
type stubPolicy struct {
	target   int
	picks    int
	enqueues int
}

func (p *stubPolicy) Name() string { return "stub" }

func (p *stubPolicy) PickCore(k *Kernel, t *Task) *Core {
	p.picks++
	return k.Core(p.target)
}

func (p *stubPolicy) Enqueue(c *Core, t *Task) bool {
	p.enqueues++
	return false // decline: built-in FIFO push
}

func (p *stubPolicy) PickNext(c *Core) *Task {
	if n := c.QueueLen(); n > 0 {
		return c.RunqRemoveAt(n - 1) // LIFO
	}
	return nil
}

func TestSchedPolicyHooks(t *testing.T) {
	e, k := newKernel()
	pol := &stubPolicy{target: 2}
	k.SetSchedPolicy(pol)
	if k.SchedPolicy() != pol {
		t.Fatal("SchedPolicy() does not return the installed policy")
	}
	space := k.NewAddressSpace()

	var order []string
	mk := func(name string) *Task {
		return k.NewTask(name, space, func(task *Task) int {
			order = append(order, name)
			task.Charge(time1us)
			return 0
		})
	}
	a, b, c := mk("a"), mk("b"), mk("c")
	k.Start(a, 0)
	k.Start(b, 0)
	k.Start(c, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}

	// All three went through PickCore onto core 2; a dispatched first
	// (idle core), b and c queued, and PickNext drained them LIFO.
	for _, task := range []*Task{a, b, c} {
		if task.LastCore() != pol.target {
			t.Errorf("task %s ran on core %d, want %d (PickCore ignored)", task.name, task.LastCore(), pol.target)
		}
	}
	if want := []string{"a", "c", "b"}; !equalStrings(order, want) {
		t.Errorf("run order %v, want %v (LIFO PickNext ignored)", order, want)
	}
	if pol.picks < 3 {
		t.Errorf("PickCore consulted %d times, want >= 3", pol.picks)
	}
	if pol.enqueues < 2 {
		t.Errorf("Enqueue consulted %d times, want >= 2 (b and c queued behind a)", pol.enqueues)
	}
}

// TestSchedPolicyPinnedBypassesPolicy pins the precedence contract:
// affinity outranks the policy, which must not even be consulted for a
// pinned task's placement.
func TestSchedPolicyPinnedBypassesPolicy(t *testing.T) {
	e, k := newKernel()
	pol := &stubPolicy{target: 2}
	k.SetSchedPolicy(pol)
	space := k.NewAddressSpace()
	pinned := k.NewTask("pinned", space, func(task *Task) int {
		task.Charge(time1us)
		return 0
	})
	pinned.SetAffinity(1)
	k.Start(pinned, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if pinned.LastCore() != 1 {
		t.Errorf("pinned task ran on core %d, want its affinity core 1", pinned.LastCore())
	}
	if pol.picks != 0 {
		t.Errorf("PickCore consulted %d times for a pinned task, want 0", pol.picks)
	}
}

const time1us = sim.Microsecond

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
