package kernel

import (
	"repro/internal/fs"
	"repro/internal/mem"
	"repro/internal/probe"
	"repro/internal/sim"
)

// semProt is the protection for semaphore words.
const semProt = mem.ProtRead | mem.ProtWrite

// countSyscall records bookkeeping common to all system-calls and feeds
// the audit hook. It does not charge time; each call charges its own
// documented cost.
func (k *Kernel) countSyscall(t *Task, name string) {
	k.syscalls++
	k.syscallCounts[name]++
	t.nSyscalls++
	if k.auditor != nil {
		k.auditor(t, name)
	}
}

// sysFrame carries the observability state opened by sysEnter across a
// system-call's body to sysExit. A zero frame (on=false) means no
// program watches the exit-side points; it lives on the stack, so the
// unattached path allocates nothing.
type sysFrame struct {
	name  string
	start sim.Time
	span  uint64
	on    bool
}

// sysEnter opens a system-call: the common bookkeeping plus, when probe
// programs watch the syscall points, the latency clock, the
// syscall:enter fire (whose combined Delay verdict is charged to the
// task — per-tenant throttling) and a "syscall" span on the executing
// core. Every return path of the call must run sysExit with the frame.
// Latency is wall virtual time, so blocking calls include their block —
// that is the number an application sees.
func (k *Kernel) sysEnter(t *Task, name string) sysFrame {
	k.countSyscall(t, name)
	ps := k.probes
	hasEnter := ps.Attached(probe.PSyscallEnter)
	hasExit := ps.Attached(probe.PSyscallExit)
	hasSpan := ps.Attached(probe.PSpanBegin)
	if !hasEnter && !hasExit && !hasSpan {
		return sysFrame{}
	}
	f := sysFrame{name: name, start: k.engine.Now(), on: hasExit || hasSpan}
	if hasEnter {
		c := ps.Begin(probe.PSyscallEnter, f.start)
		c.Site = name
		c.Task = t
		if v := ps.Fire(c); v.Delay > 0 {
			t.Charge(v.Delay)
		}
	}
	if hasSpan {
		c := ps.Begin(probe.PSpanBegin, f.start)
		c.Site = "syscall"
		c.Task = t
		c.Format = name
		f.span = ps.Fire(c).Span
	}
	return f
}

// sysExit closes the frame opened by sysEnter: the syscall:exit fire
// (wall latency in Dur) and the span end.
func (k *Kernel) sysExit(t *Task, f sysFrame) {
	if !f.on {
		return
	}
	ps := k.probes
	end := k.engine.Now()
	if ps.Attached(probe.PSyscallExit) {
		c := ps.Begin(probe.PSyscallExit, end)
		c.Site = f.name
		c.Task = t
		c.Dur = end.Sub(f.start)
		ps.Fire(c)
	}
	if f.span != 0 && ps.Attached(probe.PSpanEnd) {
		c := ps.Begin(probe.PSpanEnd, end)
		c.Task = t
		c.Span = f.span
		ps.Fire(c)
	}
}

// Getpid returns the calling task's process id (thread-group id). This
// is the paper's canonical consistency example: "when a UC calls the
// getpid() system-call, the returned PID may vary depending on the
// scheduling KLT" — unless couple() routes the call to the right KC.
func (t *Task) Getpid() int {
	k := t.kernel
	f := k.sysEnter(t, "getpid")
	t.Charge(k.machine.Costs.SyscallEntry + k.machine.Costs.GetPIDWork)
	k.sysExit(t, f)
	return t.tgid
}

// Gettid returns the kernel task id (distinct per thread).
func (t *Task) Gettid() int {
	k := t.kernel
	f := k.sysEnter(t, "gettid")
	t.Charge(k.machine.Costs.SyscallEntry + k.machine.Costs.GetPIDWork)
	k.sysExit(t, f)
	return t.pid
}

// LoadTLS points the task's TLS register at a new thread descriptor.
// On x86_64 the FS register is privileged, so this is the arch_prctl
// system-call and costs the full Table III "Load TLS" time; on AArch64
// tpidr_el0 is written directly from user mode for a few nanoseconds.
func (t *Task) LoadTLS(val uint64) {
	k := t.kernel
	var f sysFrame
	if !k.machine.TLSUserAccessible {
		f = k.sysEnter(t, "arch_prctl")
	}
	if k.probes.Attached(probe.PTLSLoad) {
		c := k.probes.Begin(probe.PTLSLoad, k.engine.Now())
		c.Task = t
		c.Dur = k.machine.Costs.TLSLoad
		k.probes.Fire(c)
	}
	t.Charge(k.machine.Costs.TLSLoad)
	t.tlsReg = val
	if !k.machine.TLSUserAccessible {
		k.sysExit(t, f)
	}
}

// Open opens path with the given flags on the machine's tmpfs, returning
// a descriptor in the calling task's FD table.
func (t *Task) Open(path string, flags fs.OpenFlags) (int, error) {
	k := t.kernel
	fr := k.sysEnter(t, "open")
	if err := k.faultSyscall(t, "open"); err != nil {
		t.Charge(k.machine.Costs.SyscallEntry)
		k.sysExit(t, fr)
		return -1, err
	}
	t.Charge(k.machine.Costs.SyscallEntry + k.machine.Costs.OpenCost)
	if k.super != nil {
		if err := k.super.AdmitFD(t); err != nil {
			k.sysExit(t, fr)
			return -1, err
		}
	}
	f, err := k.fs.Open(path, flags)
	if err != nil {
		k.sysExit(t, fr)
		return -1, err
	}
	fd := t.fdt.Alloc(f)
	k.sysExit(t, fr)
	return fd, nil
}

// Write writes data to fd. remote marks that the calling core did not
// produce the buffer (e.g. a dedicated system-call core executing on
// behalf of a decoupled ULP), which streams the data across the
// interconnect at the machine's remote-byte penalty.
func (t *Task) Write(fd int, data []byte, remote bool) (int, error) {
	k := t.kernel
	fr := k.sysEnter(t, "write")
	if err := k.faultSyscall(t, "write"); err != nil {
		t.Charge(k.machine.Costs.SyscallEntry)
		k.sysExit(t, fr)
		return 0, err
	}
	t.Charge(k.faultIOScale(t, k.machine.WriteCost(len(data), remote)))
	f, err := t.fdt.Get(fd)
	if err != nil {
		k.sysExit(t, fr)
		return 0, err
	}
	n, err := f.Write(data)
	k.sysExit(t, fr)
	return n, err
}

// Read reads from fd into buf.
func (t *Task) Read(fd int, buf []byte) (int, error) {
	k := t.kernel
	fr := k.sysEnter(t, "read")
	c := k.machine.Costs
	if err := k.faultSyscall(t, "read"); err != nil {
		t.Charge(c.SyscallEntry)
		k.sysExit(t, fr)
		return 0, err
	}
	f, err := t.fdt.Get(fd)
	if err != nil {
		t.Charge(c.SyscallEntry + c.ReadBase)
		k.sysExit(t, fr)
		return 0, err
	}
	n, err := f.Read(buf)
	t.Charge(c.SyscallEntry + c.ReadBase + k.faultIOScale(t, fromBytes(c.WriteBytePS, n)))
	k.sysExit(t, fr)
	return n, err
}

// Close closes fd.
func (t *Task) Close(fd int) error {
	k := t.kernel
	fr := k.sysEnter(t, "close")
	t.Charge(k.machine.Costs.SyscallEntry + k.machine.Costs.CloseCost)
	f, err := t.fdt.Remove(fd)
	if err != nil {
		k.sysExit(t, fr)
		return err
	}
	err = f.Close()
	k.sysExit(t, fr)
	return err
}

// Seek positions fd (lseek).
func (t *Task) Seek(fd, pos int) error {
	k := t.kernel
	fr := k.sysEnter(t, "lseek")
	t.Charge(k.machine.Costs.SyscallEntry)
	f, err := t.fdt.Get(fd)
	if err != nil {
		k.sysExit(t, fr)
		return err
	}
	err = f.Seek(pos)
	k.sysExit(t, fr)
	return err
}

// Unlink removes a path.
func (t *Task) Unlink(path string) error {
	k := t.kernel
	fr := k.sysEnter(t, "unlink")
	t.Charge(k.machine.Costs.SyscallEntry + k.machine.Costs.CloseCost)
	err := k.fs.Unlink(path)
	k.sysExit(t, fr)
	return err
}

// Mmap allocates anonymous memory in the task's address space
// (PiP's malloc is configured to use mmap instead of brk, because the
// one heap segment cannot be shared; see the paper's §IV).
func (t *Task) Mmap(size uint64, populated bool) (uint64, error) {
	k := t.kernel
	fr := k.sysEnter(t, "mmap")
	t.Charge(k.machine.Costs.SyscallEntry + k.machine.Costs.MmapCost)
	va, err := t.space.Mmap(size, mem.ProtRead|mem.ProtWrite, t.name+".mmap", populated, taskCharger{t})
	k.sysExit(t, fr)
	return va, err
}

// Munmap releases memory mapped with Mmap.
func (t *Task) Munmap(addr, size uint64) error {
	k := t.kernel
	fr := k.sysEnter(t, "munmap")
	t.Charge(k.machine.Costs.SyscallEntry + k.machine.Costs.MmapCost)
	err := t.space.Munmap(addr, size)
	k.sysExit(t, fr)
	return err
}

// MemWrite/MemRead access the task's address space as plain loads and
// stores (no system-call; faults and copy time are charged).

// MemWrite stores data at va.
func (t *Task) MemWrite(va uint64, data []byte) error {
	return t.space.Write(va, data, taskCharger{t})
}

// MemRead loads len(buf) bytes from va.
func (t *Task) MemRead(va uint64, buf []byte) error {
	return t.space.Read(va, buf, taskCharger{t})
}

// Compute burns pure user-mode CPU time (the "computation" half of the
// overlap benchmarks). It is not a system-call.
func (t *Task) Compute(d sim.Duration) {
	t.Charge(d)
}

func fromBytes(perBytePS float64, n int) sim.Duration {
	return sim.Duration(perBytePS * float64(n))
}
