package kernel

import (
	"repro/internal/fs"
	"repro/internal/mem"
	"repro/internal/sim"
)

// semProt is the protection for semaphore words.
const semProt = mem.ProtRead | mem.ProtWrite

// countSyscall records bookkeeping common to all system-calls and feeds
// the audit hook. It does not charge time; each call charges its own
// documented cost.
func (k *Kernel) countSyscall(t *Task, name string) {
	k.syscalls++
	k.syscallCounts[name]++
	t.nSyscalls++
	if k.auditor != nil {
		k.auditor(t, name)
	}
}

// Getpid returns the calling task's process id (thread-group id). This
// is the paper's canonical consistency example: "when a UC calls the
// getpid() system-call, the returned PID may vary depending on the
// scheduling KLT" — unless couple() routes the call to the right KC.
func (t *Task) Getpid() int {
	k := t.kernel
	k.countSyscall(t, "getpid")
	t.Charge(k.machine.Costs.SyscallEntry + k.machine.Costs.GetPIDWork)
	return t.tgid
}

// Gettid returns the kernel task id (distinct per thread).
func (t *Task) Gettid() int {
	k := t.kernel
	k.countSyscall(t, "gettid")
	t.Charge(k.machine.Costs.SyscallEntry + k.machine.Costs.GetPIDWork)
	return t.pid
}

// LoadTLS points the task's TLS register at a new thread descriptor.
// On x86_64 the FS register is privileged, so this is the arch_prctl
// system-call and costs the full Table III "Load TLS" time; on AArch64
// tpidr_el0 is written directly from user mode for a few nanoseconds.
func (t *Task) LoadTLS(val uint64) {
	k := t.kernel
	if !k.machine.TLSUserAccessible {
		k.countSyscall(t, "arch_prctl")
	}
	t.Charge(k.machine.Costs.TLSLoad)
	t.tlsReg = val
}

// Open opens path with the given flags on the machine's tmpfs, returning
// a descriptor in the calling task's FD table.
func (t *Task) Open(path string, flags fs.OpenFlags) (int, error) {
	k := t.kernel
	k.countSyscall(t, "open")
	if err := k.faultSyscall(t, "open"); err != nil {
		t.Charge(k.machine.Costs.SyscallEntry)
		return -1, err
	}
	t.Charge(k.machine.Costs.SyscallEntry + k.machine.Costs.OpenCost)
	f, err := k.fs.Open(path, flags)
	if err != nil {
		return -1, err
	}
	return t.fdt.Alloc(f), nil
}

// Write writes data to fd. remote marks that the calling core did not
// produce the buffer (e.g. a dedicated system-call core executing on
// behalf of a decoupled ULP), which streams the data across the
// interconnect at the machine's remote-byte penalty.
func (t *Task) Write(fd int, data []byte, remote bool) (int, error) {
	k := t.kernel
	k.countSyscall(t, "write")
	if err := k.faultSyscall(t, "write"); err != nil {
		t.Charge(k.machine.Costs.SyscallEntry)
		return 0, err
	}
	t.Charge(k.faultIOScale(t, k.machine.WriteCost(len(data), remote)))
	f, err := t.fdt.Get(fd)
	if err != nil {
		return 0, err
	}
	return f.Write(data)
}

// Read reads from fd into buf.
func (t *Task) Read(fd int, buf []byte) (int, error) {
	k := t.kernel
	k.countSyscall(t, "read")
	c := k.machine.Costs
	if err := k.faultSyscall(t, "read"); err != nil {
		t.Charge(c.SyscallEntry)
		return 0, err
	}
	f, err := t.fdt.Get(fd)
	if err != nil {
		t.Charge(c.SyscallEntry + c.ReadBase)
		return 0, err
	}
	n, err := f.Read(buf)
	t.Charge(c.SyscallEntry + c.ReadBase + k.faultIOScale(t, fromBytes(c.WriteBytePS, n)))
	return n, err
}

// Close closes fd.
func (t *Task) Close(fd int) error {
	k := t.kernel
	k.countSyscall(t, "close")
	t.Charge(k.machine.Costs.SyscallEntry + k.machine.Costs.CloseCost)
	f, err := t.fdt.Remove(fd)
	if err != nil {
		return err
	}
	return f.Close()
}

// Seek positions fd (lseek).
func (t *Task) Seek(fd, pos int) error {
	k := t.kernel
	k.countSyscall(t, "lseek")
	t.Charge(k.machine.Costs.SyscallEntry)
	f, err := t.fdt.Get(fd)
	if err != nil {
		return err
	}
	return f.Seek(pos)
}

// Unlink removes a path.
func (t *Task) Unlink(path string) error {
	k := t.kernel
	k.countSyscall(t, "unlink")
	t.Charge(k.machine.Costs.SyscallEntry + k.machine.Costs.CloseCost)
	return k.fs.Unlink(path)
}

// Mmap allocates anonymous memory in the task's address space
// (PiP's malloc is configured to use mmap instead of brk, because the
// one heap segment cannot be shared; see the paper's §IV).
func (t *Task) Mmap(size uint64, populated bool) (uint64, error) {
	k := t.kernel
	k.countSyscall(t, "mmap")
	t.Charge(k.machine.Costs.SyscallEntry + k.machine.Costs.MmapCost)
	return t.space.Mmap(size, mem.ProtRead|mem.ProtWrite, t.name+".mmap", populated, taskCharger{t})
}

// Munmap releases memory mapped with Mmap.
func (t *Task) Munmap(addr, size uint64) error {
	k := t.kernel
	k.countSyscall(t, "munmap")
	t.Charge(k.machine.Costs.SyscallEntry + k.machine.Costs.MmapCost)
	return t.space.Munmap(addr, size)
}

// MemWrite/MemRead access the task's address space as plain loads and
// stores (no system-call; faults and copy time are charged).

// MemWrite stores data at va.
func (t *Task) MemWrite(va uint64, data []byte) error {
	return t.space.Write(va, data, taskCharger{t})
}

// MemRead loads len(buf) bytes from va.
func (t *Task) MemRead(va uint64, buf []byte) error {
	return t.space.Read(va, buf, taskCharger{t})
}

// Compute burns pure user-mode CPU time (the "computation" half of the
// overlap benchmarks). It is not a system-call.
func (t *Task) Compute(d sim.Duration) {
	t.Charge(d)
}

func fromBytes(perBytePS float64, n int) sim.Duration {
	return sim.Duration(perBytePS * float64(n))
}
