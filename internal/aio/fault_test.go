package aio

import (
	"errors"
	"testing"

	"repro/internal/arch"
	"repro/internal/fault"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// runFaults is run with a fault plane installed before the task starts.
func runFaults(t *testing.T, seed uint64, specs []fault.Spec, body func(task *kernel.Task)) *fault.Plane {
	t.Helper()
	e := sim.New()
	k := kernel.New(e, arch.Wallaby())
	plane := fault.NewPlane(seed, specs)
	k.SetFaultPlane(plane)
	task := k.NewTask("main", k.NewAddressSpace(), func(task *kernel.Task) int {
		body(task)
		return 0
	})
	k.Start(task, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	return plane
}

// TestHelperKillFailsQueuedRequestAndRespawns: a fault-killed helper
// fails its queued aiocbs with ErrHelperDied (waking Suspend waiters
// instead of hanging them), and the next submission grows the pool back —
// the replacement helper serves requests normally.
func TestHelperKillFailsQueuedRequestAndRespawns(t *testing.T) {
	runFaults(t, 1,
		[]fault.Spec{{Site: fault.SiteAIOHelperKill, Nth: 2, TaskPrefix: "aio-helper"}},
		func(task *kernel.Task) {
			ctx, err := New(task)
			if err != nil {
				t.Error(err)
				return
			}
			fd, _ := task.Open("/f", fs.OCreate|fs.OWrOnly)

			// Submit both up front: the helper serves r1 (kill check 1),
			// then dies at the top of its next loop pass (kill check 2)
			// with r2 still queued.
			r1, _ := ctx.WriteAsync(task, fd, []byte("served"))
			r2, _ := ctx.WriteAsync(task, fd, []byte("doomed"))
			firstHelper := ctx.Helper()
			if n, err := r1.Suspend(task); err != nil || n != 6 {
				t.Errorf("first request = %d,%v, want 6,nil", n, err)
				return
			}
			if _, err := r2.Suspend(task); !errors.Is(err, ErrHelperDied) {
				t.Errorf("killed-helper request err = %v, want ErrHelperDied", err)
				return
			}
			if _, err := r2.Return(task); !errors.Is(err, ErrHelperDied) {
				t.Errorf("Return after helper death = %v, want ErrHelperDied", err)
			}

			// Request 3 respawns a helper and completes.
			r3, _ := ctx.WriteAsync(task, fd, []byte("revived!"))
			if ctx.Helper() == firstHelper {
				t.Error("helper not respawned after death")
			}
			if n, err := r3.Suspend(task); err != nil || n != 8 {
				t.Errorf("respawned-helper request = %d,%v, want 8,nil", n, err)
			}
			if ctx.Respawns() != 1 {
				t.Errorf("respawns = %d, want 1", ctx.Respawns())
			}

			task.Close(fd)
			ctx.Close(task)
			// Only the served requests count as completed.
			if sub, comp := ctx.Stats(); sub != 3 || comp != 2 {
				t.Errorf("stats = %d,%d, want 3,2", sub, comp)
			}
		})
}

// TestSuspendToleratesInjectedEINTRAndLostWakes: EINTR on futex_wait and
// dropped completion wakes must not surface from Suspend or wedge the
// helper's sleep loop — the request still completes.
func TestSuspendToleratesInjectedEINTRAndLostWakes(t *testing.T) {
	plane := runFaults(t, 2,
		[]fault.Spec{
			{Site: fault.SiteFutexWait, Prob: 0.4, Err: "eintr"},
			{Site: fault.SiteFutexLostWake, Prob: 0.5},
			{Site: fault.SiteFutexSpurious, Prob: 0.3},
		},
		func(task *kernel.Task) {
			ctx, _ := New(task)
			fd, _ := task.Open("/f", fs.OCreate|fs.OWrOnly)
			for i := 0; i < 6; i++ {
				r, err := ctx.WriteAsync(task, fd, []byte("jittery"))
				if err != nil {
					t.Fatal(err)
				}
				if n, err := r.Suspend(task); err != nil || n != 7 {
					t.Fatalf("request %d = %d,%v, want 7,nil", i, n, err)
				}
			}
			task.Close(fd)
			ctx.Close(task)
		})
	if plane.Injections() == 0 {
		t.Error("nothing injected; the test exercised nothing")
	}
}
