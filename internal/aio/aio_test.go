package aio

import (
	"errors"
	"testing"

	"repro/internal/arch"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/sim"
)

func run(t *testing.T, m *arch.Machine, body func(task *kernel.Task)) {
	t.Helper()
	e := sim.New()
	k := kernel.New(e, m)
	task := k.NewTask("main", k.NewAddressSpace(), func(task *kernel.Task) int {
		body(task)
		return 0
	})
	k.Start(task, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
}

func TestWriteAsyncSuspend(t *testing.T) {
	run(t, arch.Wallaby(), func(task *kernel.Task) {
		ctx, err := New(task)
		if err != nil {
			t.Error(err)
			return
		}
		fd, _ := task.Open("/f", fs.OCreate|fs.OWrOnly)
		r, err := ctx.WriteAsync(task, fd, []byte("async-data"))
		if err != nil {
			t.Error(err)
			return
		}
		n, err := r.Suspend(task)
		if err != nil || n != 10 {
			t.Errorf("suspend = %d,%v", n, err)
		}
		task.Close(fd)
		ctx.Close(task)
		ino, err := task.Kernel().FS().Stat("/f")
		if err != nil || ino.Size() != 10 {
			t.Errorf("file size = %v, %v", ino, err)
		}
	})
}

func TestReturnPollingLoop(t *testing.T) {
	run(t, arch.Wallaby(), func(task *kernel.Task) {
		ctx, _ := New(task)
		fd, _ := task.Open("/f", fs.OCreate|fs.OWrOnly)
		r, _ := ctx.WriteAsync(task, fd, make([]byte, 4096))
		polls := 0
		for {
			n, err := r.Return(task)
			if errors.Is(err, ErrInProgress) {
				polls++
				task.SchedYield() // the ULT idiom: yield + poll
				continue
			}
			if err != nil || n != 4096 {
				t.Errorf("return = %d,%v", n, err)
			}
			break
		}
		if polls == 0 {
			t.Error("write completed synchronously; no overlap possible")
		}
		task.Close(fd)
		ctx.Close(task)
	})
}

func TestHelperCreatedLazilyAndOnce(t *testing.T) {
	run(t, arch.Wallaby(), func(task *kernel.Task) {
		ctx, _ := New(task)
		if ctx.Helper() != nil {
			t.Error("helper exists before first submission")
		}
		fd, _ := task.Open("/f", fs.OCreate|fs.OWrOnly)
		r1, _ := ctx.WriteAsync(task, fd, []byte("a"))
		h := ctx.Helper()
		if h == nil {
			t.Error("no helper after submission")
		}
		r1.Suspend(task)
		r2, _ := ctx.WriteAsync(task, fd, []byte("b"))
		if ctx.Helper() != h {
			t.Error("second submission created a new helper")
		}
		r2.Suspend(task)
		task.Close(fd)
		ctx.Close(task)
		sub, comp := ctx.Stats()
		if sub != 2 || comp != 2 {
			t.Errorf("stats = %d,%d", sub, comp)
		}
	})
}

func TestHelperIsThreadSharingFDs(t *testing.T) {
	run(t, arch.Wallaby(), func(task *kernel.Task) {
		ctx, _ := New(task)
		fd, _ := task.Open("/f", fs.OCreate|fs.OWrOnly)
		r, _ := ctx.WriteAsync(task, fd, []byte("x"))
		if _, err := r.Suspend(task); err != nil {
			t.Errorf("helper failed to use the submitter's fd: %v", err)
		}
		if ctx.Helper().TGID() != task.TGID() {
			t.Error("helper is not a thread of the submitting process")
		}
		task.Close(fd)
		ctx.Close(task)
	})
}

func TestReadAsync(t *testing.T) {
	run(t, arch.Wallaby(), func(task *kernel.Task) {
		fd, _ := task.Open("/f", fs.OCreate|fs.ORdWr)
		task.Write(fd, []byte("content!"), false)
		task.Seek(fd, 0)
		ctx, _ := New(task)
		buf := make([]byte, 8)
		r, _ := ctx.ReadAsync(task, fd, buf)
		n, err := r.Suspend(task)
		if err != nil || n != 8 || string(buf) != "content!" {
			t.Errorf("read = %d,%v,%q", n, err, buf)
		}
		task.Close(fd)
		ctx.Close(task)
	})
}

func TestSubmitAfterCloseFails(t *testing.T) {
	run(t, arch.Wallaby(), func(task *kernel.Task) {
		ctx, _ := New(task)
		ctx.Close(task)
		if _, err := ctx.WriteAsync(task, 3, []byte("x")); !errors.Is(err, ErrClosed) {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	})
}

func TestAsyncWriteOverlapsCompute(t *testing.T) {
	// The point of AIO: the submitter computes while the helper writes.
	// Overlapped total time must be well below the serialized sum.
	run(t, arch.Albireo(), func(task *kernel.Task) {
		e := task.Kernel().Engine()
		m := task.Kernel().Machine()
		fd, _ := task.Open("/f", fs.OCreate|fs.OWrOnly)
		buf := make([]byte, 1<<20)

		// Serialized reference: synchronous write + compute.
		writeTime := m.WriteCost(len(buf), false)
		start := e.Now()
		task.Write(fd, buf, false)
		task.Compute(writeTime)
		serial := e.Now().Sub(start)

		ctx, _ := New(task)
		// Warm up the helper thread.
		r0, _ := ctx.WriteAsync(task, fd, buf[:1])
		r0.Suspend(task)

		start = e.Now()
		r, _ := ctx.WriteAsync(task, fd, buf)
		task.Compute(writeTime)
		r.Suspend(task)
		overlapped := e.Now().Sub(start)

		if float64(overlapped) > 0.75*float64(serial) {
			t.Errorf("overlapped %v vs serial %v: insufficient overlap", overlapped, serial)
		}
		task.Close(fd)
		ctx.Close(task)
	})
}
