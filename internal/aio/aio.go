// Package aio implements POSIX asynchronous I/O the way glibc does — and
// the way the paper describes in §II: "1) a PThread is created at the
// first call of aio_read() or aio_write(), 2) the main thread delegates
// the I/O operation to the created thread, and 3) it waits for the
// completion of the I/O by calling aio_return() or aio_suspend()".
//
// This is the baseline ULP-PiP is compared against in Fig. 7 (slowdown)
// and Fig. 8 (overlap ratio). Two completion-wait styles are modeled:
//
//   - aio_return polling (AIO-return): suited to ULTs, which poll in a
//     yield loop;
//   - aio_suspend blocking (AIO-suspend): blocks the calling KLT on a
//     futex until the helper signals completion.
package aio

import (
	"errors"

	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/supervise"
)

// ErrInProgress is returned by Return before the request completes
// (EINPROGRESS).
var ErrInProgress = errors.New("aio: operation in progress")

// ErrClosed is returned when submitting to a closed context.
var ErrClosed = errors.New("aio: context closed")

// ErrHelperDied is the status of a request whose helper thread was
// fault-killed before serving it: the delegated I/O never happened and
// never will (glibc analogue: a pool thread dying takes its queued
// aiocbs with it). The next submission respawns a helper.
var ErrHelperDied = errors.New("aio: helper thread died")

// ErrQuarantined is returned by Submit once the context's restart
// budget is exhausted (supervision plane installed, helper kept dying):
// the machine degrades this tenant instead of thrashing on respawns.
var ErrQuarantined = errors.New("aio: helper quarantined (restart budget exhausted)")

// killedExitStatus is the fault-killed helper's thread exit status
// (128+SIGKILL, matching the rest of the fault plane).
const killedExitStatus = 137

// Timed-wait backoff bounds used when the fault plane may drop futex
// wakes: waiters re-check on a timer so a lost wake costs latency, not
// liveness.
const (
	waitBackoffBase = 10 * sim.Microsecond
	waitBackoffMax  = 1 * sim.Millisecond
)

// Op is the requested operation.
type Op int

// Operations.
const (
	OpWrite Op = iota
	OpRead
)

// Request is one asynchronous I/O control block (struct aiocb).
type Request struct {
	Op   Op
	FD   int
	Data []byte // write source or read destination

	done     bool
	result   int
	err      error
	waitWord uint64 // futex word for aio_suspend
	ctx      *Context
}

// Done reports completion without any cost (internal/test use).
func (r *Request) Done() bool { return r.done }

// Context is a process's AIO state: the helper thread and its request
// queue. The helper is created lazily on the first submission, exactly
// like glibc's thread pool.
type Context struct {
	owner  *kernel.Task
	helper *kernel.Task

	queue     []*Request
	sleepWord uint64
	sleeping  bool
	closed    bool
	dead      bool // the helper was fault-killed; respawn on next Submit

	// restart, when a supervision plane is installed, is the context's
	// respawn budget: backoff-delayed, quarantining after repeated
	// deaths. Nil without a plane — respawn is then immediate and
	// unbounded, the pre-supervision behavior.
	restart     *supervise.Restarter
	quarantined bool

	// Stats.
	submitted, completed, respawns uint64

	// Metric handles (nil when metrics are off).
	mDepth    *metrics.Histogram
	mRespawns *metrics.Counter
}

// New creates an AIO context owned by the given task. No helper thread
// exists until the first submission.
func New(owner *kernel.Task) (*Context, error) {
	word, err := owner.Space().Mmap(8, mem.ProtRead|mem.ProtWrite, "aio.sleep", true, nil)
	if err != nil {
		return nil, err
	}
	c := &Context{owner: owner, sleepWord: word}
	if reg := owner.Kernel().Metrics(); reg != nil {
		c.mDepth = reg.Histogram("aio.queue_depth")
		c.mRespawns = reg.Counter("aio.respawns")
	}
	if p := supervise.ForKernel(owner.Kernel()); p != nil {
		c.restart = p.Restarter("aio." + owner.Name())
	}
	return c, nil
}

// Helper returns the helper thread's task, nil before first submission.
func (c *Context) Helper() *kernel.Task { return c.helper }

// Stats reports submitted and completed request counts.
func (c *Context) Stats() (submitted, completed uint64) {
	return c.submitted, c.completed
}

// Respawns reports how many fault-killed helpers were replaced.
func (c *Context) Respawns() uint64 { return c.respawns }

// Submit enqueues an asynchronous operation on behalf of t (which must
// be the owner or share its address space). The first submission pays
// pthread_create for the helper; every submission pays the dispatch
// cost (queue insert + helper wakeup).
func (c *Context) Submit(t *kernel.Task, op Op, fd int, data []byte) (*Request, error) {
	if c.closed {
		return nil, ErrClosed
	}
	if c.quarantined {
		return nil, ErrQuarantined
	}
	k := t.Kernel()
	if c.dead {
		// The previous helper was fault-killed; reap it and grow the
		// pool back, exactly as glibc does after a pool thread exits.
		// Under a supervision plane the regrowth is budgeted: the
		// respawn waits out a jittered exponential backoff, and once the
		// budget is spent the context quarantines instead of thrashing.
		t.Join(c.helper)
		c.helper = nil
		c.dead = false
		c.respawns++
		if c.mRespawns != nil {
			c.mRespawns.Inc()
		}
		if c.restart != nil {
			delay, ok := c.restart.Next(k.Engine().Now())
			if !ok {
				c.quarantined = true
				return nil, ErrQuarantined
			}
			if delay > 0 {
				t.Nanosleep(delay)
			}
		}
	}
	if c.helper == nil {
		helper, err := t.TryClone("aio-helper", kernel.PThreadFlags, c.helperBody)
		if err != nil {
			return nil, err
		}
		c.helper = helper
	}
	// The aiocb's completion word is plain user memory (no mmap
	// system-call per request in glibc either).
	word, err := t.Space().Mmap(8, mem.ProtRead|mem.ProtWrite, "aiocb", true, nil)
	if err != nil {
		return nil, err
	}
	r := &Request{Op: op, FD: fd, Data: data, waitWord: word, ctx: c}
	t.Charge(k.Machine().Costs.AIODispatch)
	c.queue = append(c.queue, r)
	c.submitted++
	if c.mDepth != nil {
		c.mDepth.Observe(int64(len(c.queue)))
	}
	c.kick(t)
	return r, nil
}

// WriteAsync is aio_write.
func (c *Context) WriteAsync(t *kernel.Task, fd int, data []byte) (*Request, error) {
	return c.Submit(t, OpWrite, fd, data)
}

// ReadAsync is aio_read.
func (c *Context) ReadAsync(t *kernel.Task, fd int, buf []byte) (*Request, error) {
	return c.Submit(t, OpRead, fd, buf)
}

// Error is aio_error: one status poll. It returns ErrInProgress until
// completion, then the operation's error (nil on success).
func (r *Request) Error(t *kernel.Task) error {
	t.Charge(t.Kernel().Machine().Costs.AIOReturnPoll)
	if !r.done {
		return ErrInProgress
	}
	return r.err
}

// Return is aio_return: poll, and on completion fetch the result.
func (r *Request) Return(t *kernel.Task) (int, error) {
	if err := r.Error(t); err != nil {
		return 0, err
	}
	return r.result, r.err
}

// Suspend is aio_suspend: block the calling KLT until the request
// completes, then return its result. Injected EINTR and spurious wakes
// are absorbed by re-checking the completion flag; when the fault plane
// may drop the completion wake the wait is timed with growing backoff.
func (r *Request) Suspend(t *kernel.Task) (int, error) {
	k := t.Kernel()
	var backoff sim.Duration
	for !r.done {
		var err error
		if k.FaultArmed(t, "futex_lost_wake") {
			if backoff == 0 {
				backoff = waitBackoffBase
			} else if backoff < waitBackoffMax {
				backoff *= 2
			}
			err = t.FutexWaitTimeout(r.waitWord, 0, backoff)
		} else {
			err = t.FutexWait(r.waitWord, 0)
		}
		switch err {
		case nil, kernel.ErrFutexAgain, kernel.ErrInterrupted, kernel.ErrTimedOut:
		default:
			return 0, err
		}
	}
	return r.result, r.err
}

// Close stops the helper thread (joining it) and rejects further
// submissions.
func (c *Context) Close(t *kernel.Task) {
	if c.closed {
		return
	}
	c.closed = true
	if c.helper != nil {
		c.kick(t)
		t.Join(c.helper)
	}
}

// kick wakes the helper if it is sleeping on the empty queue.
func (c *Context) kick(t *kernel.Task) {
	t.Space().WriteU64(c.sleepWord, 1, nil)
	t.FutexWake(c.sleepWord, 1)
}

// die fails every queued request with ErrHelperDied and wakes their
// Suspend waiters: the thread that would have executed the delegated I/O
// is gone, so the requests can never complete. The context stays usable —
// the next Submit replaces the helper.
func (c *Context) die(t *kernel.Task) {
	c.dead = true
	for _, r := range c.queue {
		r.err = ErrHelperDied
		r.done = true
		t.Space().WriteU64(r.waitWord, 1, nil)
		t.FutexWake(r.waitWord, 1)
	}
	c.queue = nil
}

// helperBody is the AIO helper thread: serve requests until closed.
//
// The aio_helper_kill fault site sits at the top of the request loop —
// between requests, never mid-I/O — so a kill strands queued aiocbs
// (failed by die) but never half-written files.
func (c *Context) helperBody(t *kernel.Task) int {
	k := t.Kernel()
	var backoff sim.Duration
	for {
		if k.FaultShouldDie(t, "aio_helper_kill") {
			if ps := k.Probes(); ps.Attached(probe.PTraceInstant) {
				pc := ps.Begin(probe.PTraceInstant, k.Engine().Now())
				pc.Site = "fault"
				pc.Task = t
				pc.Format = "aio_helper_kill: %s dies with %d queued"
				pc.Args = []interface{}{t.Name(), len(c.queue)}
				ps.Fire(pc)
			}
			c.die(t)
			return killedExitStatus
		}
		for len(c.queue) == 0 {
			if c.closed {
				return 0
			}
			c.sleeping = true
			var err error
			if k.FaultArmed(t, "futex_lost_wake") {
				if backoff == 0 {
					backoff = waitBackoffBase
				} else if backoff < waitBackoffMax {
					backoff *= 2
				}
				err = t.FutexWaitTimeout(c.sleepWord, 0, backoff)
			} else {
				err = t.FutexWait(c.sleepWord, 0)
			}
			switch err {
			case nil, kernel.ErrFutexAgain, kernel.ErrInterrupted, kernel.ErrTimedOut:
			default:
				panic(err)
			}
			if err != kernel.ErrTimedOut {
				backoff = 0
			}
			c.sleeping = false
			t.Space().WriteU64(c.sleepWord, 0, nil)
		}
		r := c.queue[0]
		c.queue = c.queue[1:]
		switch r.Op {
		case OpWrite:
			// The helper shares the submitter's FD table (it is a
			// thread), so the fd is valid here — this is why AIO works
			// for threads where naive delegation across processes
			// would not.
			r.result, r.err = t.Write(r.FD, r.Data, false)
		case OpRead:
			r.result, r.err = t.Read(r.FD, r.Data)
		}
		t.Charge(k.Machine().Costs.AIOComplete)
		r.done = true
		c.completed++
		// Wake aio_suspend waiters.
		t.Space().WriteU64(r.waitWord, 1, nil)
		t.FutexWake(r.waitWord, 1)
	}
}
