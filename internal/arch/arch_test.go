package arch

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestTableIIIPrimitives(t *testing.T) {
	// The primitive costs must reproduce the paper's Table III exactly.
	w := Wallaby()
	if got := w.Costs.UserCtxSwap.Nanoseconds(); got != 33.4 {
		t.Errorf("Wallaby ctxsw = %vns, want 33.4", got)
	}
	if got := w.Costs.TLSLoad.Nanoseconds(); got != 109.0 {
		t.Errorf("Wallaby TLS load = %vns, want 109", got)
	}
	a := Albireo()
	if got := a.Costs.UserCtxSwap.Nanoseconds(); got != 24.5 {
		t.Errorf("Albireo ctxsw = %vns, want 24.5", got)
	}
	if got := a.Costs.TLSLoad.Nanoseconds(); got != 2.5 {
		t.Errorf("Albireo TLS load = %vns, want 2.5", got)
	}
}

func TestCycleConversion(t *testing.T) {
	w := Wallaby()
	// Paper: 33.4 ns at 2.6 GHz ~ 86 cycles.
	cyc := w.Cycles(w.Costs.UserCtxSwap)
	if cyc < 85 || cyc > 88 {
		t.Errorf("ctxsw cycles = %v, want ~86", cyc)
	}
	cyc = w.Cycles(w.Costs.TLSLoad)
	if cyc < 280 || cyc > 288 {
		t.Errorf("TLS load cycles = %v, want ~284", cyc)
	}
}

func TestGetpidMatchesTableV(t *testing.T) {
	w := Wallaby()
	got := w.SyscallCost(w.Costs.GetPIDWork).Nanoseconds()
	if got < 66 || got > 68.5 {
		t.Errorf("Wallaby getpid = %vns, want ~67.1", got)
	}
	a := Albireo()
	got = a.SyscallCost(a.Costs.GetPIDWork).Nanoseconds()
	if got < 380 || got > 390 {
		t.Errorf("Albireo getpid = %vns, want ~385", got)
	}
}

func TestTLSAccessibilityAsymmetry(t *testing.T) {
	w, a := Wallaby(), Albireo()
	if w.TLSUserAccessible {
		t.Error("x86_64 TLS register must not be user accessible")
	}
	if !a.TLSUserAccessible {
		t.Error("AArch64 TLS register must be user accessible")
	}
	// The paper's central asymmetry: TLS load is >40x cheaper on ARM.
	if a.Costs.TLSLoad*40 > w.Costs.TLSLoad {
		t.Errorf("TLS asymmetry too small: wallaby=%v albireo=%v",
			w.Costs.TLSLoad, a.Costs.TLSLoad)
	}
}

func TestCoreCounts(t *testing.T) {
	if got := Wallaby().Cores(); got != 16 {
		t.Errorf("Wallaby cores = %d, want 16", got)
	}
	if got := Albireo().Cores(); got != 8 {
		t.Errorf("Albireo cores = %d, want 8", got)
	}
}

func TestWriteCostMonotonic(t *testing.T) {
	f := func(n uint16) bool {
		m := Wallaby()
		small := m.WriteCost(int(n), false)
		big := m.WriteCost(int(n)+1000, false)
		remote := m.WriteCost(int(n), true)
		return big > small && remote >= small
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRemotePenaltyLargerOnAlbireo(t *testing.T) {
	// Figure 7's Albireo crossover requires a larger remote-write
	// penalty on Albireo than on Wallaby.
	if Albireo().Costs.RemoteBytePenalty <= Wallaby().Costs.RemoteBytePenalty {
		t.Error("Albireo remote penalty must exceed Wallaby's")
	}
}

func TestByName(t *testing.T) {
	if m := ByName("Wallaby"); m == nil || m.Arch != X8664 {
		t.Error("ByName(Wallaby) wrong")
	}
	if m := ByName("Albireo"); m == nil || m.Arch != AArch64 {
		t.Error("ByName(Albireo) wrong")
	}
	if m := ByName("nope"); m != nil {
		t.Error("ByName(nope) should be nil")
	}
}

func TestArchString(t *testing.T) {
	if X8664.String() != "x86_64" || AArch64.String() != "aarch64" {
		t.Error("CPUArch.String wrong")
	}
}

func TestAllCostsPositive(t *testing.T) {
	for _, m := range Machines() {
		c := m.Costs
		durs := map[string]sim.Duration{
			"UserCtxSwap": c.UserCtxSwap, "TLSLoad": c.TLSLoad,
			"SyscallEntry": c.SyscallEntry, "GetPIDWork": c.GetPIDWork,
			"SchedYieldNoSwitch": c.SchedYieldNoSwitch, "KernelSwitch": c.KernelSwitch,
			"RunQueueOp": c.RunQueueOp, "AtomicOp": c.AtomicOp,
			"SpinNotice": c.SpinNotice, "FutexWakeCall": c.FutexWakeCall,
			"FutexWakeLatency": c.FutexWakeLatency, "FutexWaitCall": c.FutexWaitCall,
			"ThreadCreate": c.ThreadCreate, "CloneCost": c.CloneCost,
			"WaitCost": c.WaitCost, "ExitCost": c.ExitCost,
			"OpenCost": c.OpenCost, "CloseCost": c.CloseCost,
			"WriteBase": c.WriteBase, "ReadBase": c.ReadBase,
			"AIODispatch": c.AIODispatch, "AIOComplete": c.AIOComplete,
			"AIOReturnPoll": c.AIOReturnPoll, "MinorFault": c.MinorFault,
			"MajorFault": c.MajorFault, "TLBMissCost": c.TLBMissCost,
			"DlmopenBase": c.DlmopenBase, "DlmopenPerSym": c.DlmopenPerSym,
			"MmapCost": c.MmapCost, "SigmaskSwitch": c.SigmaskSwitch,
		}
		for name, d := range durs {
			if d <= 0 {
				t.Errorf("%s: %s is not positive", m.Name, name)
			}
		}
		if c.WriteBytePS <= 0 || c.MemCopyBytePS <= 0 || c.RemoteBytePenalty < 1 {
			t.Errorf("%s: byte costs invalid", m.Name)
		}
	}
}

func TestYieldCalibration(t *testing.T) {
	// ULP yield = ctx swap + TLS load + 2 run-queue ops should land near
	// the paper's Table IV "ULP-PiP yield" row (150 ns / 120 ns).
	w := Wallaby()
	y := w.Costs.UserCtxSwap + w.Costs.TLSLoad + 2*w.Costs.RunQueueOp
	if ns := y.Nanoseconds(); ns < 140 || ns > 160 {
		t.Errorf("Wallaby modeled yield = %vns, want ~150", ns)
	}
	a := Albireo()
	y = a.Costs.UserCtxSwap + a.Costs.TLSLoad + 2*a.Costs.RunQueueOp
	if ns := y.Nanoseconds(); ns < 110 || ns > 130 {
		t.Errorf("Albireo modeled yield = %vns, want ~120", ns)
	}
}
