// Package arch defines the CPU architecture and machine cost models used
// by the simulated kernel and user-level runtime.
//
// The paper evaluates ULP-PiP on two machines: "Wallaby" (x86_64, Intel
// Xeon E5-2650 v2, 2.6 GHz, 8 cores x 2 sockets) and "Albireo" (AArch64,
// AMD Opteron A1170 / Cortex-A57, 2.0 GHz, 8 cores). The two differ in a
// way that is central to the paper: on x86_64 the TLS register (FS) is
// privileged and must be loaded via the arch_prctl() system-call, while
// on AArch64 the TLS register (tpidr_el0) is user-accessible and loading
// it costs a few nanoseconds.
//
// Primitive costs are taken directly from the paper's Tables III-V where
// printed; the remaining internal parameters are derived from the
// aggregate numbers in those tables (see DESIGN.md section 2).
package arch

import "repro/internal/sim"

// CPUArch enumerates the modeled instruction-set architectures.
type CPUArch int

const (
	// X8664 models x86_64: privileged FS register (TLS load requires a
	// system-call) and an RDTSC cycle counter.
	X8664 CPUArch = iota
	// AArch64 models 64-bit ARM: user-accessible tpidr_el0 TLS register
	// and no user-readable cycle counter (as on the paper's Albireo).
	AArch64
)

// String implements fmt.Stringer.
func (a CPUArch) String() string {
	switch a {
	case X8664:
		return "x86_64"
	case AArch64:
		return "aarch64"
	}
	return "unknown-arch"
}

// CostModel holds every primitive cost charged by the simulation. All
// durations are virtual time. Fields that reproduce a printed number from
// the paper say so; the others are calibration parameters derived from
// the paper's aggregate measurements.
type CostModel struct {
	// UserCtxSwap is one fcontext-style swap_ctx: save the current
	// register context to the stack and load another (paper Table III,
	// "Context Sw.").
	UserCtxSwap sim.Duration

	// TLSLoad is the cost of pointing the TLS register at another
	// thread descriptor (paper Table III, "Load TLS"). On x86_64 this
	// includes the arch_prctl system-call; on AArch64 it is a plain
	// register write.
	TLSLoad sim.Duration

	// SyscallEntry is the user->kernel->user trap cost common to every
	// system-call.
	SyscallEntry sim.Duration

	// GetPIDWork is the in-kernel work of getpid beyond the trap
	// (SyscallEntry+GetPIDWork reproduces paper Table V, "Linux").
	GetPIDWork sim.Duration

	// SchedYieldNoSwitch is sched_yield when the caller is the only
	// runnable thread on its core (paper Table IV, "2 cores" row).
	SchedYieldNoSwitch sim.Duration

	// KernelSwitch is one kernel-level context switch between KLTs
	// (derived: Table IV "1 core" minus "2 cores").
	KernelSwitch sim.Duration

	// RunQueueOp is one user-level ready-queue enqueue or dequeue,
	// including its lock/atomic (derived from Table IV "ULP-PiP yield").
	RunQueueOp sim.Duration

	// AtomicOp is a single uncontended atomic read-modify-write.
	AtomicOp sim.Duration

	// SpinNotice is the latency for a busy-waiting core to observe a
	// flag set by another core: cache-line transfer plus poll interval
	// (derived from Table V, BUSYWAIT).
	SpinNotice sim.Duration

	// FutexWakeCall is the futex(FUTEX_WAKE) system-call cost paid by
	// the waker; FutexWakeLatency is the additional delay until the
	// woken thread runs (kernel wakeup path + dispatch). FutexWaitCall
	// is the cost of going to sleep with futex(FUTEX_WAIT). All three
	// are derived from Table V, BLOCKING.
	FutexWakeCall    sim.Duration
	FutexWakeLatency sim.Duration
	FutexWaitCall    sim.Duration

	// Thread/process lifecycle.
	ThreadCreate sim.Duration // pthread_create
	CloneCost    sim.Duration // clone() a new process-mode task
	WaitCost     sim.Duration // wait()/waitpid in-kernel work
	ExitCost     sim.Duration // thread/process teardown

	// Filesystem (tmpfs) primitives for the Fig. 7/8 workload.
	OpenCost  sim.Duration // open(O_CREAT) on tmpfs, beyond SyscallEntry
	CloseCost sim.Duration // close, beyond SyscallEntry
	WriteBase sim.Duration // write, size-independent part beyond SyscallEntry
	ReadBase  sim.Duration

	// WriteBytePS is the per-byte cost (picoseconds/byte) of copying
	// user data into tmpfs when the executing core is cache-warm with
	// the source buffer.
	WriteBytePS float64

	// RemoteBytePenalty multiplies WriteBytePS when the write executes
	// on a core that did not produce the buffer (the ULP dedicated
	// syscall core): the data must stream over the interconnect. This
	// produces the Fig. 7 crossover at ~32 KiB on Albireo.
	RemoteBytePenalty float64

	// AIO internals (glibc-style thread-pool implementation).
	AIODispatch   sim.Duration // enqueue request, before waking helper
	AIOComplete   sim.Duration // helper posts completion
	AIOReturnPoll sim.Duration // one aio_error/aio_return status check

	// Memory system.
	MinorFault    sim.Duration // create a page-table entry
	MajorFault    sim.Duration // allocate + zero a physical page
	TLBMissCost   sim.Duration // page-walk on TLB miss
	MemCopyBytePS float64      // plain memcpy per byte

	// Loader / PiP.
	DlmopenBase   sim.Duration // namespace creation
	DlmopenPerSym sim.Duration // per-symbol relocation
	MmapCost      sim.Duration // mmap syscall beyond SyscallEntry

	// SigmaskSwitch is sigprocmask: the extra cost of ucontext-style
	// context switching that saves/restores signal masks (paper §VII).
	SigmaskSwitch sim.Duration
}

// Machine describes one simulated evaluation platform.
type Machine struct {
	Name           string
	Arch           CPUArch
	CoresPerSocket int
	Sockets        int
	ClockGHz       float64

	// TLSUserAccessible reports whether the TLS register can be loaded
	// without a system-call (true on AArch64).
	TLSUserAccessible bool

	// HasCycleCounter reports whether a user-readable cycle counter
	// (RDTSC) exists; the paper prints cycle columns only for Wallaby.
	HasCycleCounter bool

	Costs CostModel
}

// Cores reports the total core count.
func (m *Machine) Cores() int { return m.CoresPerSocket * m.Sockets }

// Cycles converts a duration to CPU cycles at the machine's clock.
func (m *Machine) Cycles(d sim.Duration) float64 {
	return d.Nanoseconds() * m.ClockGHz
}

// SyscallCost is the total time of a simple system-call with the given
// in-kernel work.
func (m *Machine) SyscallCost(work sim.Duration) sim.Duration {
	return m.Costs.SyscallEntry + work
}

// WriteCost models write(2) of n bytes on tmpfs executed on a cache-warm
// core (remote=false) or on a core that must pull the buffer across the
// interconnect (remote=true).
func (m *Machine) WriteCost(n int, remote bool) sim.Duration {
	per := m.Costs.WriteBytePS
	if remote {
		per *= m.Costs.RemoteBytePenalty
	}
	return m.Costs.SyscallEntry + m.Costs.WriteBase + sim.Duration(per*float64(n))
}

// Wallaby returns the model of the paper's x86_64 machine (Intel Xeon
// E5-2650 v2, 2.6 GHz, 8 cores x 2 sockets, Linux 3.10 / CentOS 7).
func Wallaby() *Machine {
	return &Machine{
		Name:              "Wallaby",
		Arch:              X8664,
		CoresPerSocket:    8,
		Sockets:           2,
		ClockGHz:          2.6,
		TLSUserAccessible: false,
		HasCycleCounter:   true,
		Costs: CostModel{
			UserCtxSwap: sim.FromNS(33.4),  // Table III: 3.34e-8 s / 86 cyc
			TLSLoad:     sim.FromNS(109.0), // Table III: 1.09e-7 s / 284 cyc (arch_prctl)

			SyscallEntry: sim.FromNS(55.0),
			GetPIDWork:   sim.FromNS(12.1), // 55+12.1 = 67.1 ns (Table V, Linux)

			SchedYieldNoSwitch: sim.FromNS(77.9),  // Table IV, 2 cores
			KernelSwitch:       sim.FromNS(188.0), // 266 - 78 (Table IV, 1 core)

			RunQueueOp: sim.FromNS(4.0), // 33.4+109+2*4 ~ 150 ns (Table IV, ULP-PiP)
			AtomicOp:   sim.FromNS(8.0),

			SpinNotice: sim.FromNS(1030.0), // calibrated to Table V BUSYWAIT

			FutexWakeCall:    sim.FromNS(180.0), // calibrated to Table V BLOCKING
			FutexWakeLatency: sim.FromNS(1145.0),
			FutexWaitCall:    sim.FromNS(120.0),

			ThreadCreate: sim.FromUS(12.0),
			CloneCost:    sim.FromUS(35.0),
			WaitCost:     sim.FromNS(350.0),
			ExitCost:     sim.FromUS(4.0),

			OpenCost:  sim.FromNS(3200.0),
			CloseCost: sim.FromNS(800.0),
			WriteBase: sim.FromNS(550.0),
			ReadBase:  sim.FromNS(420.0),

			WriteBytePS:       140.0, // ~7 GB/s cache-warm tmpfs copy
			RemoteBytePenalty: 1.0,   // QPI prefetchers hide the remote stream

			AIODispatch:   sim.FromNS(450.0),
			AIOComplete:   sim.FromNS(300.0),
			AIOReturnPoll: sim.FromNS(90.0),

			MinorFault:    sim.FromNS(1100.0),
			MajorFault:    sim.FromUS(3.2),
			TLBMissCost:   sim.FromNS(38.0),
			MemCopyBytePS: 110.0,

			DlmopenBase:   sim.FromUS(180.0),
			DlmopenPerSym: sim.FromNS(90.0),
			MmapCost:      sim.FromNS(800.0),

			SigmaskSwitch: sim.FromNS(95.0),
		},
	}
}

// Albireo returns the model of the paper's AArch64 machine (AMD Opteron
// A1170, Cortex-A57, 2.0 GHz, 8 cores, Linux 4.14 / CentOS 7).
func Albireo() *Machine {
	return &Machine{
		Name:              "Albireo",
		Arch:              AArch64,
		CoresPerSocket:    8,
		Sockets:           1,
		ClockGHz:          2.0,
		TLSUserAccessible: true,
		HasCycleCounter:   false,
		Costs: CostModel{
			UserCtxSwap: sim.FromNS(24.5), // Table III: 2.45e-8 s
			TLSLoad:     sim.FromNS(2.5),  // Table III: 2.50e-9 s (tpidr_el0)

			SyscallEntry: sim.FromNS(350.0),
			GetPIDWork:   sim.FromNS(35.0), // 350+35 = 385 ns (Table V, Linux)

			SchedYieldNoSwitch: sim.FromNS(348.0), // Table IV, 2 cores
			KernelSwitch:       sim.FromNS(872.0), // 1220 - 348 (Table IV, 1 core)

			RunQueueOp: sim.FromNS(46.0), // 24.5+2.5+2*46 ~ 120 ns (Table IV)
			AtomicOp:   sim.FromNS(22.0),

			SpinNotice: sim.FromNS(2045.0), // calibrated to Table V BUSYWAIT

			FutexWakeCall:    sim.FromNS(420.0), // calibrated to Table V BLOCKING
			FutexWakeLatency: sim.FromNS(1510.0),
			FutexWaitCall:    sim.FromNS(380.0),

			ThreadCreate: sim.FromUS(28.0),
			CloneCost:    sim.FromUS(65.0),
			WaitCost:     sim.FromNS(900.0),
			ExitCost:     sim.FromUS(9.0),

			OpenCost:  sim.FromNS(9000.0),
			CloseCost: sim.FromNS(2000.0),
			WriteBase: sim.FromNS(1200.0),
			ReadBase:  sim.FromNS(950.0),

			WriteBytePS:       260.0, // ~3.8 GB/s cache-warm tmpfs copy
			RemoteBytePenalty: 1.16,  // weak prefetch: remote writes stream slowly

			AIODispatch:   sim.FromNS(900.0),
			AIOComplete:   sim.FromNS(650.0),
			AIOReturnPoll: sim.FromNS(380.0),

			MinorFault:    sim.FromNS(2300.0),
			MajorFault:    sim.FromUS(5.8),
			TLBMissCost:   sim.FromNS(75.0),
			MemCopyBytePS: 210.0,

			DlmopenBase:   sim.FromUS(320.0),
			DlmopenPerSym: sim.FromNS(170.0),
			MmapCost:      sim.FromNS(1700.0),

			SigmaskSwitch: sim.FromNS(390.0),
		},
	}
}

// Machines returns the two evaluation platforms in paper order.
func Machines() []*Machine { return []*Machine{Wallaby(), Albireo()} }

// ByName returns the machine model with the given name (case-sensitive),
// or nil if unknown.
func ByName(name string) *Machine {
	for _, m := range Machines() {
		if m.Name == name {
			return m
		}
	}
	return nil
}
