package chaos

// Lock-lab chaos: every algorithm in internal/sync runs under the
// futex-heavy fault mix — lost wakes, spurious wakes, EINTR, scheduler
// delay — and must keep mutual exclusion, liveness and a deterministic
// digest. The workload ends with a condvar barrier whose broadcast
// drains through FUTEX_CMP_REQUEUE, so the requeue path (wake half,
// move half, timers surviving the move) is fuzzed on every run.

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/sim"
	usync "repro/internal/sync"
)

// LockConfig parameterizes one lock-chaos run.
type LockConfig struct {
	Machine *arch.Machine
	Lock    string // algorithm name (see sync.Names)
	Seed    uint64
	Specs   []fault.Spec // nil means LockSpecs()
	Tasks   int          // contending tasks (default 6)
	Ops     int          // acquisitions per task (default 20)
	Spins   int          // spin budget (0 = the sync package default)
}

// LockSpecs is the default fault mix for lock chaos: heavier on the
// futex sites than DefaultSpecs, since that is the machinery every
// algorithm's slow path leans on.
func LockSpecs() []fault.Spec {
	return []fault.Spec{
		{Site: fault.SiteFutexLostWake, Prob: 0.08},
		{Site: fault.SiteFutexSpurious, Prob: 0.08},
		{Site: fault.SiteFutexWait, Prob: 0.05, Err: "eintr"},
		{Site: fault.SiteSchedDelay, Prob: 0.03, DelayUS: 40},
	}
}

// LockDigest is the deterministic fingerprint of one lock-chaos run:
// two runs of the same (lock, seed, specs) must produce identical
// digests.
type LockDigest struct {
	EndTime    sim.Time
	Counter    uint64
	Syscalls   uint64
	CtxSwitch  uint64
	Injections uint64
	Futex      kernel.FutexStats
}

// Equal reports whether two digests are identical.
func (d LockDigest) Equal(o LockDigest) bool { return d == o }

// String renders the digest on one line.
func (d LockDigest) String() string {
	return fmt.Sprintf("end=%v counter=%d syscalls=%d ctxsw=%d injections=%d futex=%+v",
		d.EndTime, d.Counter, d.Syscalls, d.CtxSwitch, d.Injections, d.Futex)
}

func (cfg LockConfig) withDefaults() LockConfig {
	if cfg.Machine == nil {
		cfg.Machine = arch.Wallaby()
	}
	if cfg.Tasks == 0 {
		cfg.Tasks = 6
	}
	if cfg.Ops == 0 {
		cfg.Ops = 20
	}
	if cfg.Specs == nil {
		cfg.Specs = LockSpecs()
	}
	return cfg
}

// RunLock drives Tasks tasks through Ops lock-protected increments of a
// deliberately non-atomic counter, then gathers them on a condvar
// barrier released by one Broadcast. Invariants checked: every task
// finishes (no fault schedule may cost liveness), the counter is exact
// (mutual exclusion under faults), and the futex claim ledger is
// conserved.
func RunLock(cfg LockConfig) (LockDigest, error) {
	cfg = cfg.withDefaults()
	e := sim.New()
	k := kernel.New(e, cfg.Machine)
	plane := fault.NewPlane(cfg.Seed, cfg.Specs)
	k.SetFaultPlane(plane)

	var counter uint64
	var setupErr error
	root := k.NewTask("lockchaos-root", k.NewAddressSpace(), func(t *kernel.Task) int {
		l, err := usync.New(t, cfg.Lock, usync.Config{Spins: cfg.Spins})
		if err != nil {
			setupErr = err
			return 1
		}
		ctr, err := t.Mmap(8, true)
		if err != nil {
			setupErr = err
			return 1
		}
		m, err := usync.NewMutex(t, usync.Config{Spins: cfg.Spins})
		if err != nil {
			setupErr = err
			return 1
		}
		cv, err := usync.NewCond(t, m)
		if err != nil {
			setupErr = err
			return 1
		}
		arrived := 0
		space := t.Space()
		worker := func(rank int) func(*kernel.Task) int {
			return func(t *kernel.Task) int {
				rng := sim.NewRNG(splitmix(cfg.Seed, 0x10c0+uint64(rank)))
				for op := 0; op < cfg.Ops; op++ {
					l.Lock(t)
					// The critical section is deliberately racy: read, burn
					// seeded time, write back. Any exclusion hole under this
					// fault schedule shows up as a lost update.
					v, _ := space.ReadU64(ctr, nil)
					t.Compute(rng.Duration(100*sim.Nanosecond, 2*sim.Microsecond))
					space.WriteU64(ctr, v+1, nil)
					l.Unlock(t)
					t.Compute(rng.Duration(0, 3*sim.Microsecond))
				}
				// Condvar barrier: the last arrival broadcasts, requeueing
				// the rest onto the mutex word.
				m.Lock(t)
				arrived++
				if arrived == cfg.Tasks {
					cv.Broadcast(t)
				}
				for arrived < cfg.Tasks {
					cv.Wait(t)
				}
				m.Unlock(t)
				return 0
			}
		}
		kids := make([]*kernel.Task, cfg.Tasks)
		for i := range kids {
			kids[i] = t.Clone(fmt.Sprintf("lock.%s.%d", cfg.Lock, i), kernel.PThreadFlags, worker(i))
		}
		bad := 0
		for _, kid := range kids {
			if t.Join(kid) != 0 {
				bad++
			}
		}
		counter, _ = space.ReadU64(ctr, nil)
		return bad
	})
	k.Start(root, 0)
	if err := e.Run(); err != nil {
		return LockDigest{}, fmt.Errorf("lock chaos %s seed=%d: %v", cfg.Lock, cfg.Seed, err)
	}
	if setupErr != nil {
		return LockDigest{}, setupErr
	}
	if !root.Exited() || root.ExitCode() != 0 {
		return LockDigest{}, fmt.Errorf("lock chaos %s seed=%d: %d workers failed", cfg.Lock, cfg.Seed, root.ExitCode())
	}
	if want := uint64(cfg.Tasks * cfg.Ops); counter != want {
		return LockDigest{}, fmt.Errorf("lock chaos %s seed=%d: counter=%d want %d — mutual exclusion violated under faults",
			cfg.Lock, cfg.Seed, counter, want)
	}
	st := k.FutexStats()
	if st.Claimed != st.Delivered+st.Lost {
		return LockDigest{}, fmt.Errorf("lock chaos %s seed=%d: futex claims not conserved: %+v", cfg.Lock, cfg.Seed, st)
	}
	return LockDigest{
		EndTime:    e.Now(),
		Counter:    counter,
		Syscalls:   k.Syscalls(),
		CtxSwitch:  k.ContextSwitches(),
		Injections: plane.Injections(),
		Futex:      st,
	}, nil
}
