// Package chaos is the seeded fuzzer for the Table I protocol: it boots
// a full ULP-PiP runtime under a fault plane, drives a random-but-seeded
// mix of the operations the paper cares about (compute, user-level
// yields, consistent open-write-read-close brackets, couple/decouple
// churn, signals aimed at ULPs) and checks the properties that must
// survive any fault schedule:
//
//   - system-call consistency: no audited call ever executes on a
//     scheduling KC, and every coupled getpid sees the original KC's pid;
//   - no lost BLTs: WaitAll terminates and reports every ULP's own exit
//     status, fault-killed KCs notwithstanding;
//   - determinism: the same (seed, specs) pair reproduces the identical
//     digest — end time, statuses, syscall and context-switch counts,
//     injection count — so any failure replays from one seed.
//
// A failing seed is replayable outside the test harness:
//
//	ulpsim -chaos -seed N -faults '<specs>' -machine Wallaby
package chaos

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/blt"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/loader"
	"repro/internal/metrics"
	"repro/internal/probe"
	"repro/internal/schedpolicy"
	"repro/internal/sim"
	"repro/internal/supervise"
)

// Config parameterizes one chaos run.
type Config struct {
	Machine *arch.Machine
	Seed    uint64
	Specs   []fault.Spec // nil means DefaultSpecs()

	ULPs    int // number of ULPs (default 6)
	Ops     int // operations per ULP (default 24)
	Signals int // SIGUSR1s aimed at random ULPs mid-run (default 4)

	Idle    blt.IdlePolicy
	SigMode core.SignalMode

	// Trace, when set, receives the run's events (ulpsim -chaos -trace).
	// Tracing charges no virtual time, so the digest is unchanged.
	Trace *sim.Tracer
	// Metrics, when set, receives the run's metrics (ulpsim -chaos
	// -metrics); like Trace it never perturbs the schedule.
	Metrics *metrics.Registry
	// Chooser, when set, resolves same-instant event ties instead of the
	// engine's FIFO default, composing fault injection with schedule
	// exploration. Unlike Trace and Metrics it perturbs the schedule, so
	// the digest is only reproducible for a deterministic chooser.
	Chooser sim.Chooser

	// Probes attaches stock probe programs (parsed from the -probe
	// syntax; see probe.ParseSpecs) to the run's kernel. Observe-only
	// probes (count, slo) never perturb the schedule, so the digest is
	// unchanged; a throttle delays syscalls by design, and its digests
	// are comparable only among runs with the same probe set. An SLO
	// probe's post-run check failing fails the run like any other
	// invariant violation.
	Probes []probe.Spec

	// SchedPolicy, when non-empty, installs the named scheduler policy
	// (see internal/schedpolicy) on the run's kernel and BLT pool — a
	// fresh instance per run, so the digest stays a pure function of
	// (seed, specs, policy). The fifo policy must reproduce the bare
	// run's digest byte-identically; other policies reorder the
	// schedule by design and their digests are comparable only among
	// runs with the same policy.
	SchedPolicy string

	// Supervise installs the supervision plane: the stall/deadlock
	// watchdog plus restart budgets for fault-killed KCs and AIO helpers.
	// It perturbs the schedule (watchdog ticks, budgeted respawns), so
	// digests are comparable only among runs with the same setting. A run
	// whose watchdog finds a wait-for cycle fails: under this fault mix
	// the protocol must never deadlock.
	Supervise bool
	// StallHorizon overrides the watchdog's stall horizon (0 = default).
	StallHorizon sim.Duration
}

// Digest is the deterministic fingerprint of one chaos run: two runs of
// the same (seed, specs) must produce identical digests.
type Digest struct {
	EndTime    sim.Time
	Statuses   []int
	Syscalls   uint64
	CtxSwitch  uint64
	Injections uint64
	Orphans    int
}

// Equal reports whether two digests are identical.
func (d Digest) Equal(o Digest) bool {
	if d.EndTime != o.EndTime || d.Syscalls != o.Syscalls ||
		d.CtxSwitch != o.CtxSwitch || d.Injections != o.Injections ||
		d.Orphans != o.Orphans || len(d.Statuses) != len(o.Statuses) {
		return false
	}
	for i := range d.Statuses {
		if d.Statuses[i] != o.Statuses[i] {
			return false
		}
	}
	return true
}

// String renders the digest on one line.
func (d Digest) String() string {
	return fmt.Sprintf("end=%v statuses=%v syscalls=%d ctxsw=%d injections=%d orphans=%d",
		d.EndTime, d.Statuses, d.Syscalls, d.CtxSwitch, d.Injections, d.Orphans)
}

// DefaultSpecs is the standard chaos fault mix: transient syscall errors,
// futex-level misbehaviour, scheduler jitter, slow storage, and rare
// KC/scheduler kills scoped so they can only hit chaos tasks.
func DefaultSpecs() []fault.Spec {
	return []fault.Spec{
		{Site: fault.SiteFutexLostWake, Prob: 0.05},
		{Site: fault.SiteFutexSpurious, Prob: 0.05},
		{Site: fault.SiteFutexWait, Prob: 0.04, Err: "eintr"},
		{Site: fault.SiteOpen, Prob: 0.05, Err: "eagain"},
		{Site: fault.SiteWrite, Prob: 0.04, Err: "eintr"},
		{Site: fault.SiteRead, Prob: 0.03, Err: "eintr"},
		{Site: fault.SiteSchedDelay, Prob: 0.03, DelayUS: 40},
		{Site: fault.SiteKCKill, Prob: 0.002, TaskPrefix: "kc.chaos"},
		{Site: fault.SiteSchedKill, Prob: 0.001, TaskPrefix: "sched."},
		{Site: fault.SiteFSSlow, Factor: 3},
	}
}

// SpecsString renders specs in the -faults flag syntax.
func SpecsString(specs []fault.Spec) string {
	s := ""
	for i, sp := range specs {
		if i > 0 {
			s += ";"
		}
		s += sp.String()
	}
	return s
}

// ReproCommand returns the ulpsim invocation that replays this run.
func ReproCommand(cfg Config) string {
	s := fmt.Sprintf("ulpsim -chaos -machine %s -idle %s -signals %s -ulps %d -ops %d -seed %d -faults '%s'",
		cfg.Machine.Name, cfg.Idle, cfg.SigMode, cfg.ULPs, cfg.Ops, cfg.Seed, SpecsString(cfg.Specs))
	if cfg.Supervise {
		s += " -supervise"
		if cfg.StallHorizon > 0 {
			s += fmt.Sprintf(" -stall-horizon %g", cfg.StallHorizon.Microseconds())
		}
	}
	if len(cfg.Probes) > 0 {
		s += fmt.Sprintf(" -probe '%s'", probe.SpecsString(cfg.Probes))
	}
	if cfg.SchedPolicy != "" {
		s += fmt.Sprintf(" -sched-policy '%s'", cfg.SchedPolicy)
	}
	return s
}

// expectedStatus is the exit status rank's program returns; a run loses a
// BLT exactly when some reported status differs.
func expectedStatus(rank int) int { return 40 + rank%50 }

// splitmix is the SplitMix64 finalizer, used to derive independent
// sub-seeds (per-rank op streams, the signal stream) from the run seed.
func splitmix(seed, lane uint64) uint64 {
	z := seed + lane*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// withDefaults fills zero fields.
func (cfg Config) withDefaults() Config {
	if cfg.Machine == nil {
		cfg.Machine = arch.Wallaby()
	}
	if cfg.Specs == nil {
		cfg.Specs = DefaultSpecs()
	}
	if cfg.ULPs == 0 {
		cfg.ULPs = 6
	}
	if cfg.Ops == 0 {
		cfg.Ops = 24
	}
	if cfg.Signals == 0 {
		cfg.Signals = 4
	}
	return cfg
}

// Run executes one chaos run and verifies its invariants. A non-nil
// error means a property the protocol guarantees was violated under the
// injected fault schedule; the message includes the repro command.
func Run(cfg Config) (Digest, error) {
	d, _, err := RunWithStats(cfg)
	return d, err
}

// RunWithStats is Run plus the fault plane's per-spec hit/fire counters,
// for the ulpsim -chaos report.
func RunWithStats(cfg Config) (Digest, []string, error) {
	cfg = cfg.withDefaults()
	e := sim.New()
	if cfg.Trace != nil {
		e.SetTracer(cfg.Trace)
	}
	if cfg.Chooser != nil {
		e.SetChooser(cfg.Chooser)
	}
	k := kernel.New(e, cfg.Machine)
	var ultPol blt.ULTPolicy
	if cfg.SchedPolicy != "" {
		pol, err := schedpolicy.New(cfg.SchedPolicy)
		if err != nil {
			return Digest{}, nil, err
		}
		k.SetSchedPolicy(pol)
		ultPol = pol
	}
	if cfg.Metrics != nil {
		k.SetMetrics(cfg.Metrics)
	}
	plane := fault.NewPlane(cfg.Seed, cfg.Specs)
	k.SetFaultPlane(plane)
	atts := probe.AttachSpecs(k.Probes(), cfg.Probes)
	var sup *supervise.Plane
	if cfg.Supervise {
		sup = supervise.New(k, supervise.Config{
			StallHorizon: cfg.StallHorizon,
			Seed:         cfg.Seed,
			Metrics:      cfg.Metrics,
		})
		sup.Install()
	}

	img := &loader.Image{
		Name: "chaos", PIE: true, TextSize: 4096,
		Symbols: []loader.Symbol{
			{Name: "state", Size: 64},
			{Name: "errno", Size: 8, TLS: true},
		},
		Main: chaosMain,
	}

	mismatches := 0
	var statuses []int
	var waitErr error
	var violations int
	orphans := 0

	_, bootErr := core.Boot(k, core.Config{
		ProgCores:    []int{0, 1},
		SyscallCores: []int{2, 3},
		Idle:         cfg.Idle,
		Signals:      cfg.SigMode,
		Audit:        true, // collect mode: violations recorded, run completes
		SchedPolicy:  ultPol,
	}, func(rt *core.Runtime) int {
		buf := make([]byte, 512)
		ulps := make([]*core.ULP, 0, cfg.ULPs)
		for i := 0; i < cfg.ULPs; i++ {
			u, err := rt.Spawn(img, core.SpawnOpts{
				Name:      fmt.Sprintf("chaos.%d", i),
				Scheduler: -1,
				Arg: &rankArg{
					rng: sim.NewRNG(splitmix(cfg.Seed, 0x1000+uint64(i))),
					ops: cfg.Ops, buf: buf,
					mismatch: func() { mismatches++ },
				},
			})
			if err != nil {
				waitErr = err
				return 1
			}
			ulps = append(ulps, u)
		}
		// The signal storm: a thread of the root aims SIGUSR1 at random
		// ULPs at seeded virtual times. With fcontext-mode switching they
		// land on whatever KC carries the ULP (the §VII caveat) — either
		// way they must only cost EINTR retries, never a hang or a panic.
		sig := rt.RootTask().Clone("chaos.sig", kernel.PThreadFlags, func(t *kernel.Task) int {
			r := sim.NewRNG(splitmix(cfg.Seed, 0x516))
			for i := 0; i < cfg.Signals; i++ {
				t.Nanosleep(r.Duration(10*sim.Microsecond, 300*sim.Microsecond))
				rt.SignalULP(t, ulps[r.Intn(len(ulps))], kernel.SIGUSR1) // error ignored: target may be gone
			}
			return 0
		})
		statuses, waitErr = rt.WaitAll()
		rt.RootTask().Join(sig)
		violations = len(rt.Violations())
		for _, u := range ulps {
			if u.Orphaned() {
				orphans++
			}
		}
		rt.Shutdown()
		return 0
	})
	if bootErr != nil {
		return Digest{}, nil, bootErr
	}
	if err := e.Run(); err != nil {
		return Digest{}, plane.Stats(), fmt.Errorf("engine: %w\nrepro: %s", err, ReproCommand(cfg))
	}
	if cfg.Metrics != nil {
		k.FinalizeMetrics()
		plane.PublishMetrics(cfg.Metrics)
	}

	d := Digest{
		EndTime:    e.Now(),
		Statuses:   statuses,
		Syscalls:   k.Syscalls(),
		CtxSwitch:  k.ContextSwitches(),
		Injections: plane.Injections(),
		Orphans:    orphans,
	}
	stats := plane.Stats()
	for _, a := range atts {
		if a.Report != nil {
			stats = append(stats, "probe "+a.Report())
		}
	}
	fail := func(format string, args ...interface{}) (Digest, []string, error) {
		return d, stats, fmt.Errorf(format+"\nrepro: %s", append(args, ReproCommand(cfg))...)
	}
	if waitErr != nil {
		return fail("WaitAll: %v", waitErr)
	}
	if len(statuses) != cfg.ULPs {
		return fail("lost BLTs: %d statuses for %d ULPs", len(statuses), cfg.ULPs)
	}
	for i, s := range statuses {
		if s != expectedStatus(i) {
			return fail("ULP %d exit status %d, want %d (lost or corrupted BLT)", i, s, expectedStatus(i))
		}
	}
	if violations != 0 {
		return fail("%d system-call consistency violations", violations)
	}
	if mismatches != 0 {
		return fail("%d coupled getpid mismatches", mismatches)
	}
	if sup != nil {
		if dl := sup.Deadlocks(); len(dl) != 0 {
			return fail("supervision watchdog found %d wait-for cycle(s), first %v", len(dl), dl[0])
		}
	}
	for _, a := range atts {
		if a.Check != nil {
			if err := a.Check(); err != nil {
				return fail("%v", err)
			}
		}
	}
	return d, stats, nil
}

// rankArg carries one rank's seeded op stream into chaosMain.
type rankArg struct {
	rng      *sim.RNG
	ops      int
	buf      []byte
	mismatch func()
}

// chaosMain is the per-ULP program: a seeded mix of the operations whose
// interleavings the Table I protocol must survive. Every injected error
// is tolerated the way a robust application would: transient failures
// were already retried by the Env wrappers, terminal ones (dead KC,
// ENOSPC) skip the operation.
func chaosMain(envI interface{}) int {
	env := envI.(*core.Env)
	a := env.Arg.(*rankArg)
	r := a.rng
	rank := env.U.Rank
	rbuf := make([]byte, len(a.buf))
	env.Decouple()
	for i := 0; i < a.ops; i++ {
		switch r.Intn(10) {
		case 0, 1, 2:
			env.Compute(r.Duration(sim.Microsecond, 8*sim.Microsecond))
		case 3, 4:
			env.Yield()
		case 5, 6:
			// Consistent open-write-close bracket (the Fig. 6 op).
			fd, err := env.Open(fmt.Sprintf("/chaos.%d", rank), fs.OCreate|fs.OWrOnly)
			if err == nil {
				n := 1 + r.Intn(len(a.buf)-1)
				env.Write(fd, a.buf[:n])
				env.Close(fd)
			}
		case 7:
			// Write-then-read-back through the same KC's fd table.
			fd, err := env.Open(fmt.Sprintf("/chaos.%d.rw", rank), fs.OCreate|fs.ORdWr)
			if err == nil {
				n := 1 + r.Intn(64)
				env.Write(fd, a.buf[:n])
				env.Exec(func(kc *kernel.Task) { kc.Seek(fd, 0) })
				env.Read(fd, rbuf[:n])
				env.Close(fd)
			}
		case 8:
			// Consistency probe: a coupled getpid must see the original
			// KC's pid — read from the host at probe time, because under
			// supervision a fault-killed KC may have been respawned with
			// a fresh pid, and that new kernel state is what consistency
			// now means. If coupling is impossible (KC dead for good) the
			// probe is skipped — Exec guarantees fn never ran elsewhere.
			var pid int
			if err := env.Exec(func(kc *kernel.Task) { pid = kc.Getpid() }); err == nil && pid != env.U.KC().TGID() {
				a.mismatch()
			}
		case 9:
			// Couple/decouple churn: the Table I handshake itself. A
			// failed Couple (fault-killed KC) leaves the ULP decoupled.
			if env.Coupled() {
				env.Decouple()
			} else {
				env.Couple()
			}
		}
	}
	return 40 + rank%50
}
