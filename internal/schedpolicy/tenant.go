package schedpolicy

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/blt"
)

// strideUnit is the stride numerator: a tenant of weight w advances its
// pass by strideUnit/w per dispatch, so double the weight means half
// the pass growth and twice the dispatch share.
const strideUnit = 1 << 20

// Tenant is deterministic weighted stride scheduling over the probe
// plane's tenant identity — the original KC's name (kc.<image>.<rank>,
// e.g. kc.worker.0). Each tenant carries a pass value; PickReady runs
// the queued BLT whose tenant has the lowest pass (ties to FIFO order)
// and advances that tenant's pass by strideUnit/weight.
//
// Weights trade latency against throughput per tenant: a heavy tenant's
// BLTs jump the queue (lower dispatch latency, larger core share) while
// weight-1 tenants share the remainder throughput-fairly. Unlisted
// tenants default to weight 1, so "tenant" with no params is pure
// stride-fair round-robin over tenants.
//
// Spec: tenant[:weights=<kc-name>:<weight>[+<kc-name>:<weight>...]]
// ('+' separates entries because ',' and ';' already delimit flag lists
// and probe specs). Example: tenant:weights=kc.worker.0:4+kc.worker.1:2
type Tenant struct {
	base
	weights map[string]uint64
	pass    map[string]uint64
}

// NewTenant parses the weight table and returns a fresh tenant policy
// (per-run state: pass values start at zero).
func NewTenant(params string) (*Tenant, error) {
	t := &Tenant{
		base:    base{"tenant"},
		weights: make(map[string]uint64),
		pass:    make(map[string]uint64),
	}
	if params == "" {
		return t, nil
	}
	key, list, ok := strings.Cut(params, "=")
	if !ok || key != "weights" {
		return nil, fmt.Errorf("schedpolicy: tenant params must be weights=<name>:<w>[+...] (got %q)", params)
	}
	for _, ent := range strings.Split(list, "+") {
		name, ws, ok := strings.Cut(ent, ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("schedpolicy: bad tenant weight entry %q", ent)
		}
		w, err := strconv.ParseUint(ws, 10, 32)
		if err != nil || w == 0 {
			return nil, fmt.Errorf("schedpolicy: bad tenant weight %q (want a positive integer)", ent)
		}
		t.weights[name] = w
	}
	return t, nil
}

// PickReady returns the queued BLT whose tenant has the lowest pass
// value (FIFO order breaks ties) and advances that tenant's stride.
func (t *Tenant) PickReady(s *blt.Scheduler) int {
	best := 0
	bestPass := t.pass[s.ReadyAt(0).KC().Name()]
	for i, n := 1, s.QueueLen(); i < n; i++ {
		if p := t.pass[s.ReadyAt(i).KC().Name()]; p < bestPass {
			best, bestPass = i, p
		}
	}
	key := s.ReadyAt(best).KC().Name()
	w := t.weights[key]
	if w == 0 {
		w = 1
	}
	t.pass[key] = bestPass + strideUnit/w
	return best
}
