// Package schedpolicy ships the stock scheduler policies for the
// pluggable dispatch plane, sched_ext-style: the kernel and the BLT
// runtime own the scheduling *mechanism* (run queues, charges, probes,
// accounting), while a Policy object supplies the *decisions* — core
// placement, ready-queue order, steal-victim order.
//
// One Policy implements both halves of the plane: kernel.SchedPolicy
// (kernel tasks and cores) and blt.ULTPolicy (decoupled UCs on
// scheduler BLTs). Install the same instance on both via Install, or
// hand the halves out separately. Instances are stateful and
// single-run: parse a fresh one per simulation (New) so repeated runs
// of one seed stay byte-identical.
//
// Stock policies, selected by spec string (ulpsim/ulpbench
// -sched-policy):
//
//	fifo       — the identity policy: every hook declines, so the
//	             built-in FIFO dispatch runs. Byte-identical to no
//	             policy at all; CI pins that equivalence.
//	locality   — cache-warm placement: waking tasks return to their
//	             last core when idle; idle schedulers steal from the
//	             nearest loaded peer.
//	cosched    — gang dispatch: BLTs sharing one original KC host run
//	             back-to-back (the oversubscribe scenario's ranks).
//	tenant     — weighted stride scheduling over the probe plane's
//	             tenant identity (the original KC name, kc.<img>.<rank>);
//	             params: tenant:weights=kc.worker.0:4+kc.worker.1:2
package schedpolicy

import (
	"fmt"
	"strings"

	"repro/internal/blt"
	"repro/internal/kernel"
)

// Policy is a complete scheduling policy: the kernel dispatch half and
// the user-level (BLT scheduler) half of the plane.
type Policy interface {
	kernel.SchedPolicy
	blt.ULTPolicy
}

// New parses a policy spec ("name" or "name:params") and returns a
// fresh, single-run policy instance.
func New(spec string) (Policy, error) {
	name, params, _ := strings.Cut(spec, ":")
	switch name {
	case "fifo":
		if params != "" {
			return nil, fmt.Errorf("schedpolicy: fifo takes no parameters (got %q)", params)
		}
		return NewFIFO(), nil
	case "locality":
		if params != "" {
			return nil, fmt.Errorf("schedpolicy: locality takes no parameters (got %q)", params)
		}
		return NewLocality(), nil
	case "cosched":
		if params != "" {
			return nil, fmt.Errorf("schedpolicy: cosched takes no parameters (got %q)", params)
		}
		return NewCosched(), nil
	case "tenant":
		return NewTenant(params)
	}
	return nil, fmt.Errorf("schedpolicy: unknown policy %q (have %s)",
		name, strings.Join(Names(), ", "))
}

// Names lists the stock policy names in selection order.
func Names() []string { return []string{"fifo", "locality", "cosched", "tenant"} }

// Install puts the kernel half of p in place on k (the ULT half is
// threaded separately, through blt.Config.Policy or core.Config's
// SchedPolicy field). A nil p is a no-op, so callers can thread an
// optional policy unconditionally.
func Install(k *kernel.Kernel, p Policy) {
	if p == nil {
		return
	}
	k.SetSchedPolicy(p)
}

// base supplies declining defaults for every hook of both interfaces;
// each stock policy embeds it and overrides only the decisions it makes.
type base struct{ name string }

func (b base) Name() string                                     { return b.name }
func (base) PickCore(*kernel.Kernel, *kernel.Task) *kernel.Core { return nil }
func (base) Enqueue(*kernel.Core, *kernel.Task) bool            { return false }
func (base) PickNext(*kernel.Core) *kernel.Task                 { return nil }
func (base) PickReady(*blt.Scheduler) int                       { return 0 }
func (base) StealOrder(*blt.Scheduler, []int) []int             { return nil }
func (base) OnIdle(*blt.Scheduler)                              {}
func (base) OnYield(*blt.Scheduler, *blt.BLT)                   {}
