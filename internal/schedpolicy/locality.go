package schedpolicy

import (
	"repro/internal/blt"
	"repro/internal/kernel"
)

// Locality prefers cache-warm placement at both levels of the plane:
//
//   - Kernel half: a waking unpinned task returns to the core it last
//     ran on when that core is fully idle (its working set is most
//     likely still resident there). A busy or backlogged last core
//     falls back to the built-in shortest-queue choice rather than
//     queueing behind strangers.
//   - ULT half: an idle scheduler steals from the *nearest* loaded peer
//     by core number (a proxy for cache/NUMA distance) instead of the
//     round-robin scan, so stolen UCs migrate the shortest distance.
//
// Both decisions are pure functions of current machine state, so the
// policy is stateless and deterministic.
type Locality struct{ base }

// NewLocality returns the locality-aware policy.
func NewLocality() *Locality { return &Locality{base{"locality"}} }

// PickCore sends the task back to its last core when that core is fully
// idle; anything else declines to the built-in choice.
func (Locality) PickCore(k *kernel.Kernel, t *kernel.Task) *kernel.Core {
	last := t.LastCore()
	if last < 0 || last >= k.Cores() {
		return nil
	}
	if c := k.Core(last); c.Current() == nil && c.QueueLen() == 0 {
		return c
	}
	return nil
}

// StealOrder ranks victims by core distance from the thief (ties to the
// lower scheduler index). The sort is an in-place insertion sort: a
// pool has a handful of schedulers and the steal path must not allocate.
func (Locality) StealOrder(s *blt.Scheduler, buf []int) []int {
	p := s.Pool()
	me := s.Core()
	for i, n := 0, p.NumSchedulers(); i < n; i++ {
		if i != s.Index() {
			buf = append(buf, i)
		}
	}
	dist := func(i int) int {
		d := p.SchedulerAt(i).Core() - me
		if d < 0 {
			d = -d
		}
		return d
	}
	for i := 1; i < len(buf); i++ {
		for j := i; j > 0; j-- {
			if d1, d2 := dist(buf[j-1]), dist(buf[j]); d2 < d1 || (d2 == d1 && buf[j] < buf[j-1]) {
				buf[j-1], buf[j] = buf[j], buf[j-1]
				continue
			}
			break
		}
	}
	return buf
}
