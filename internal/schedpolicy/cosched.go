package schedpolicy

import (
	"repro/internal/blt"
)

// Cosched gang-schedules sibling BLTs: all BLTs sharing one original KC
// host (an M:N gang — the oversubscribed ranks of the Fig. 6 deployment
// share hosts exactly this way) run back-to-back on a scheduler before
// it moves to the next gang. Draining a gang together keeps its shared
// kernel state (FD table, signal disposition, futex words) hot and
// minimises couple/decouple interleaving across gangs.
//
// Per scheduler the policy keeps a gang *window*: adopting the queue
// head's gang opens a window whose budget is that gang's queued backlog
// at adoption time. PickReady prefers the window gang's oldest queued
// member until the budget drains, then adopts the (new) queue head's
// gang. The budget is a snapshot: a member that yields *during* the
// window re-queues behind every other gang's turn rather than extending
// its own — without this, two single-BLT gangs yield-ping-ponging would
// let the active gang jump the queue forever and starve its peer (the
// Table IV yield benchmark is exactly that shape). In N:N mode every
// BLT is its own gang and the policy degenerates to FIFO.
type Cosched struct {
	base
	active map[*blt.Scheduler]*gangWindow
}

type gangWindow struct {
	host   *blt.KCHost
	budget int
}

// NewCosched returns a fresh co-scheduling policy (per-run state: the
// gang window per scheduler).
func NewCosched() *Cosched {
	return &Cosched{
		base:   base{"cosched"},
		active: make(map[*blt.Scheduler]*gangWindow),
	}
}

// PickReady returns the oldest queued member of s's gang window,
// opening a fresh window off the queue head when the current one has
// drained its budget or has no ready members.
func (c *Cosched) PickReady(s *blt.Scheduler) int {
	w := c.active[s]
	if w != nil && w.budget > 0 {
		for i, n := 0, s.QueueLen(); i < n; i++ {
			if s.ReadyAt(i).Host() == w.host {
				w.budget--
				return i
			}
		}
		// Window gang fully blocked or exited: fall through and adopt.
	}
	host := s.ReadyAt(0).Host()
	n := 0
	for i, ql := 0, s.QueueLen(); i < ql; i++ {
		if s.ReadyAt(i).Host() == host {
			n++
		}
	}
	if w == nil {
		w = &gangWindow{}
		c.active[s] = w
	}
	// The head itself is dispatched right now, so the remaining budget
	// is the rest of the gang's current backlog.
	w.host, w.budget = host, n-1
	return 0
}

// OnIdle closes the scheduler's gang window: whatever arrives next
// starts a new one.
func (c *Cosched) OnIdle(s *blt.Scheduler) { delete(c.active, s) }
