package schedpolicy

// FIFO is the identity policy: every hook declines, so the built-in
// dispatch plane runs exactly as it does with no policy installed —
// first fully idle core, FIFO run queues, round-robin steal scan. Its
// whole value is the equivalence proof: a FIFO run must be
// byte-identical to a bare run on every output (bench tables, chaos
// digests, explorer decision traces), which CI checks. Any drift means
// the policy plumbing itself perturbs the schedule.
type FIFO struct{ base }

// NewFIFO returns the identity policy.
func NewFIFO() *FIFO { return &FIFO{base{"fifo"}} }
