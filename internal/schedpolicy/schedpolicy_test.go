package schedpolicy

import (
	"fmt"
	"testing"

	"repro/internal/arch"
	"repro/internal/blt"
	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/loader"
	"repro/internal/sim"
)

func TestNewSpecs(t *testing.T) {
	good := map[string]string{
		"fifo":                             "fifo",
		"locality":                         "locality",
		"cosched":                          "cosched",
		"tenant":                           "tenant",
		"tenant:weights=kc.w.0:4":          "tenant",
		"tenant:weights=kc.w.0:4+kc.w.1:2": "tenant",
	}
	for spec, name := range good {
		p, err := New(spec)
		if err != nil {
			t.Errorf("New(%q): %v", spec, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("New(%q).Name() = %q, want %q", spec, p.Name(), name)
		}
	}
	bad := []string{
		"", "rr", "fifo:x", "locality:near", "cosched:2",
		"tenant:4", "tenant:weights=", "tenant:weights=kc.w.0",
		"tenant:weights=kc.w.0:0", "tenant:weights=kc.w.0:x",
		"tenant:weights=:4",
	}
	for _, spec := range bad {
		if _, err := New(spec); err == nil {
			t.Errorf("New(%q) succeeded, want error", spec)
		}
	}
	// Fresh instance per call: stateful policies must not share state.
	a, _ := New("tenant")
	b, _ := New("tenant")
	if a == b {
		t.Error("New returned a shared instance")
	}
}

func ulpImage(name string, main loader.MainFunc) *loader.Image {
	return &loader.Image{
		Name: name, PIE: true, TextSize: 4096,
		Symbols: []loader.Symbol{
			{Name: "data", Size: 64},
			{Name: "errno", Size: 8, TLS: true},
		},
		Main: main,
	}
}

// fingerprint is everything a run exposes that a scheduling decision
// could perturb: virtual end time, syscall and context-switch totals,
// and the per-scheduler dispatch/steal counters.
type fingerprint struct {
	end         sim.Time
	syscalls    uint64
	ctxSwitches uint64
	sched       []string
}

// runWorkload boots a 2+2-core deployment, runs 6 ULPs of a
// compute/syscall/yield mix under the given policy and returns the run's
// fingerprint.
func runWorkload(t *testing.T, m *arch.Machine, idle blt.IdlePolicy, pol Policy) fingerprint {
	t.Helper()
	e := sim.New()
	k := kernel.New(e, m)
	Install(k, pol)
	cfg := core.Config{
		ProgCores:    []int{0, 1},
		SyscallCores: []int{2, 3},
		Idle:         idle,
		WorkStealing: true,
	}
	if pol != nil {
		cfg.SchedPolicy = pol
	}
	var fp fingerprint
	worker := ulpImage("w", func(envI interface{}) int {
		env := envI.(*core.Env)
		buf := make([]byte, 512)
		env.Decouple()
		for i := 0; i < 4; i++ {
			env.Compute(3 * sim.Microsecond)
			env.Exec(func(kc *kernel.Task) {
				fd, err := kc.Open(fmt.Sprintf("/f%d", env.U.Rank), fs.OCreate|fs.OWrOnly|fs.OTrunc)
				if err != nil {
					panic(err)
				}
				kc.Write(fd, buf, true)
				kc.Close(fd)
			})
			env.Yield()
		}
		env.Couple()
		return 0
	})
	if _, err := core.Boot(k, cfg, func(rt *core.Runtime) int {
		for i := 0; i < 6; i++ {
			if _, err := rt.Spawn(worker, core.SpawnOpts{Scheduler: -1}); err != nil {
				panic(err)
			}
		}
		rt.WaitAll()
		for _, s := range rt.Pool().Schedulers() {
			fp.sched = append(fp.sched, fmt.Sprintf("c%d:%d/%d", s.Core(), s.Dispatches(), s.Steals()))
		}
		rt.Shutdown()
		return 0
	}); err != nil {
		t.Fatalf("boot: %v", err)
	}
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	fp.end = e.Now()
	fp.syscalls = k.Syscalls()
	fp.ctxSwitches = k.ContextSwitches()
	return fp
}

// TestFIFOByteIdentity pins the tentpole equivalence: the fifo policy —
// every hook declining — must reproduce the exact run the policy-off
// path produces, on both machines under both idle policies.
func TestFIFOByteIdentity(t *testing.T) {
	for _, mk := range []func() *arch.Machine{arch.Wallaby, arch.Albireo} {
		for _, idle := range []blt.IdlePolicy{blt.BusyWait, blt.Blocking} {
			m := mk()
			name := fmt.Sprintf("%s/%s", m.Name, idle)
			t.Run(name, func(t *testing.T) {
				bare := runWorkload(t, mk(), idle, nil)
				pol, err := New("fifo")
				if err != nil {
					t.Fatal(err)
				}
				fifo := runWorkload(t, mk(), idle, pol)
				if bare.end != fifo.end || bare.syscalls != fifo.syscalls || bare.ctxSwitches != fifo.ctxSwitches {
					t.Errorf("fifo diverged from bare: end %v vs %v, syscalls %d vs %d, ctx %d vs %d",
						fifo.end, bare.end, fifo.syscalls, bare.syscalls, fifo.ctxSwitches, bare.ctxSwitches)
				}
				if fmt.Sprint(bare.sched) != fmt.Sprint(fifo.sched) {
					t.Errorf("fifo scheduler counters diverged: %v vs %v", fifo.sched, bare.sched)
				}
			})
		}
	}
}

// TestPoliciesDeterministic runs every stock policy twice (fresh
// instances) and requires identical fingerprints: policies must be pure
// functions of machine state plus their own per-run state.
func TestPoliciesDeterministic(t *testing.T) {
	for _, spec := range []string{"fifo", "locality", "cosched", "tenant", "tenant:weights=kc.w.1:4"} {
		t.Run(spec, func(t *testing.T) {
			run := func() fingerprint {
				pol, err := New(spec)
				if err != nil {
					t.Fatal(err)
				}
				return runWorkload(t, arch.Wallaby(), blt.BusyWait, pol)
			}
			a, b := run(), run()
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Errorf("policy %s not deterministic: %+v vs %+v", spec, a, b)
			}
		})
	}
}

// TestLocalityReturnsToLastCore pins the kernel half of the locality
// policy: a waking unpinned task goes back to the (idle) core it last
// ran on, where the built-in placement would restart its scan at core 0.
func TestLocalityReturnsToLastCore(t *testing.T) {
	e := sim.New()
	k := kernel.New(e, arch.Wallaby())
	pol, err := New("locality")
	if err != nil {
		t.Fatal(err)
	}
	Install(k, pol)
	space := k.NewAddressSpace()
	// Two pinned spinners occupy cores 0 and 1 until 50us, so the
	// unpinned sleeper's first placement lands on core 2.
	for i := 0; i < 2; i++ {
		sp := k.NewTask(fmt.Sprintf("spin%d", i), space, func(task *kernel.Task) int {
			task.Charge(50 * sim.Microsecond)
			return 0
		})
		sp.SetAffinity(i)
		k.Start(sp, 0)
	}
	sleeper := k.NewTask("sleeper", space, func(task *kernel.Task) int {
		task.Charge(sim.Microsecond)
		task.Nanosleep(100 * sim.Microsecond) // wakes long after the spinners exit
		task.Charge(sim.Microsecond)
		return 0
	})
	k.Start(sleeper, 0)
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	// Built-in placement would wake the sleeper on (now idle) core 0;
	// locality must send it back to warm core 2.
	if sleeper.LastCore() != 2 {
		t.Errorf("sleeper woke on core %d, want its warm core 2", sleeper.LastCore())
	}
}

// spawnRecorder builds a yield-loop image whose every dispatch slot
// appends its tag to order.
func spawnRecorder(order *[]string, tag string, yields int) *loader.Image {
	return ulpImage("w", func(envI interface{}) int {
		env := envI.(*core.Env)
		for i := 0; i < yields; i++ {
			*order = append(*order, tag)
			env.Yield()
		}
		return 0
	})
}

// TestCoschedDrainsGangsBackToBack: two 2-member gangs (KC-sharing ULP
// pairs) on one scheduler; co-scheduling must dispatch each gang's
// members back-to-back (gang windows), while the budgeted window keeps
// rotating between gangs so neither starves.
func TestCoschedDrainsGangsBackToBack(t *testing.T) {
	e := sim.New()
	k := kernel.New(e, arch.Wallaby())
	pol, err := New("cosched")
	if err != nil {
		t.Fatal(err)
	}
	Install(k, pol)
	cfg := core.Config{
		ProgCores:    []int{0},
		SyscallCores: []int{1},
		Idle:         blt.BusyWait,
		SchedPolicy:  pol,
	}
	var order []string
	if _, err := core.Boot(k, cfg, func(rt *core.Runtime) int {
		const yields = 3
		a0, err := rt.Spawn(spawnRecorder(&order, "A", yields), core.SpawnOpts{Scheduler: 0, StartDecoupled: true})
		if err != nil {
			panic(err)
		}
		if _, err := rt.Spawn(spawnRecorder(&order, "A", yields), core.SpawnOpts{Scheduler: 0, StartDecoupled: true, ShareKCWith: a0}); err != nil {
			panic(err)
		}
		b0, err := rt.Spawn(spawnRecorder(&order, "B", yields), core.SpawnOpts{Scheduler: 0, StartDecoupled: true})
		if err != nil {
			panic(err)
		}
		if _, err := rt.Spawn(spawnRecorder(&order, "B", yields), core.SpawnOpts{Scheduler: 0, StartDecoupled: true, ShareKCWith: b0}); err != nil {
			panic(err)
		}
		rt.WaitAll()
		rt.Shutdown()
		return 0
	}); err != nil {
		t.Fatalf("boot: %v", err)
	}
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if len(order) != 12 {
		t.Fatalf("recorded %d slots, want 12: %v", len(order), order)
	}
	// Gang windows: the schedule decomposes into pairs of same-gang
	// slots (both members back-to-back), where FIFO would alternate
	// A B A B. Both gangs keep getting windows (no starvation).
	sawA, sawB := false, false
	for i := 0; i+1 < len(order); i += 2 {
		if order[i] != order[i+1] {
			t.Fatalf("slot %d: gang window split (%s then %s): %v", i, order[i], order[i+1], order)
		}
		sawA = sawA || order[i] == "A"
		sawB = sawB || order[i] == "B"
	}
	if !sawA || !sawB {
		t.Errorf("a gang starved (sawA=%v sawB=%v): %v", sawA, sawB, order)
	}
}

// TestTenantWeightsShiftShare: two single-ULP tenants on one scheduler;
// weighting the *later-spawned* tenant must make it overtake the earlier
// one (under FIFO, spawn order wins every tie, so rank 0's slots would
// always lead).
func TestTenantWeightsShiftShare(t *testing.T) {
	run := func(spec string) []string {
		e := sim.New()
		k := kernel.New(e, arch.Wallaby())
		pol, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		Install(k, pol)
		cfg := core.Config{
			ProgCores:    []int{0},
			SyscallCores: []int{1},
			Idle:         blt.BusyWait,
			SchedPolicy:  pol,
		}
		var order []string
		if _, err := core.Boot(k, cfg, func(rt *core.Runtime) int {
			const yields = 6
			if _, err := rt.Spawn(spawnRecorder(&order, "t0", yields), core.SpawnOpts{Scheduler: 0, StartDecoupled: true}); err != nil {
				panic(err)
			}
			if _, err := rt.Spawn(spawnRecorder(&order, "t1", yields), core.SpawnOpts{Scheduler: 0, StartDecoupled: true}); err != nil {
				panic(err)
			}
			rt.WaitAll()
			rt.Shutdown()
			return 0
		}); err != nil {
			t.Fatalf("boot: %v", err)
		}
		if err := e.Run(); err != nil {
			t.Fatalf("engine: %v", err)
		}
		return order
	}

	// Weight rank 1 (the ULP spawned second) 4x. Its KC is kc.w.1.
	weighted := run("tenant:weights=kc.w.1:4")
	count := func(order []string, tag string, upto int) int {
		n := 0
		for _, o := range order[:upto] {
			if o == tag {
				n++
			}
		}
		return n
	}
	// In the first half of the weighted schedule the heavy tenant must
	// hold the majority of slots despite being spawned second.
	half := len(weighted) / 2
	if h, l := count(weighted, "t1", half), count(weighted, "t0", half); h <= l {
		t.Errorf("heavy tenant got %d of the first %d slots vs %d: %v", h, half, l, weighted)
	}
	// Unweighted stride must stay fair: equal counts overall and near-
	// alternating in the first half.
	fair := run("tenant")
	if h, l := count(fair, "t1", half), count(fair, "t0", half); h-l > 1 || l-h > 1 {
		t.Errorf("unweighted stride skewed: %d vs %d in the first %d slots: %v", h, l, half, fair)
	}
}
