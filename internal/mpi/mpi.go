// Package mpi implements a small MPI-like message-passing library whose
// ranks are user-level processes — the deployment the paper motivates in
// §III: "most MPI implementations are based on [the] multi-process
// execution model ... Therefore, ULP is a more suitable execution model
// than ULT", with over-subscribed ranks hiding communication latency
// through 150 ns user-level context switches instead of kernel switches.
//
// Because all ranks share one virtual address space (PiP), message
// transfer is a single memcpy — eager below the rendezvous threshold
// (sender copies into the match queue), single-copy rendezvous above it
// (receiver copies straight out of the sender's buffer). A rank blocked
// in Recv simply yields its program core to another ready rank.
package mpi

import (
	"errors"
	"fmt"

	"repro/internal/blt"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/loader"
	"repro/internal/sim"
)

// AnySource matches messages from every sender (MPI_ANY_SOURCE).
const AnySource = -1

// AnyTag matches every tag (MPI_ANY_TAG).
const AnyTag = -1

// RendezvousThreshold is the eager/rendezvous switch (bytes), matching
// common MPI defaults.
const RendezvousThreshold = 16 * 1024

// Errors.
var (
	ErrBadRank = errors.New("mpi: rank out of range")
)

// Op is a reduction operator.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
)

func (o Op) apply(a, b float64) float64 {
	switch o {
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	default:
		return a + b
	}
}

// message is one in-flight point-to-point message.
type message struct {
	src, tag int
	data     []byte // eager: the copied payload
	src2     []byte // rendezvous: the sender's live buffer
	rndv     bool
	taken    bool // rendezvous completion flag (sender may reuse buffer)
}

// World is one communicator: size ranks over a ULP-PiP runtime.
type World struct {
	rt    *core.Runtime
	size  int
	ranks []*Rank

	// Stats.
	eagerSends, rndvSends uint64
	bytesMoved            uint64
}

// Size reports the communicator size.
func (w *World) Size() int { return w.size }

// Runtime exposes the underlying ULP runtime.
func (w *World) Runtime() *core.Runtime { return w.rt }

// Stats reports send counts and payload bytes moved.
func (w *World) Stats() (eager, rndv, bytes uint64) {
	return w.eagerSends, w.rndvSends, w.bytesMoved
}

// Rank is one MPI process: a ULP with a match queue.
type Rank struct {
	world *World
	rank  int
	env   *core.Env
	inbox []*message
}

// Rank reports this process's rank.
func (r *Rank) Rank() int { return r.rank }

// Size reports the communicator size.
func (r *Rank) Size() int { return r.world.size }

// Env exposes the underlying ULP environment (for file I/O etc.).
func (r *Rank) Env() *core.Env { return r.env }

// Program is a rank's code; its return value is the rank's exit status.
type Program func(r *Rank) int

// Config deploys a world.
type Config struct {
	ProgCores    []int
	SyscallCores []int
	Idle         blt.IdlePolicy
	WorkStealing bool
	// SchedPolicy is the ULT half of an installed scheduler policy
	// (nil = stock FIFO dispatch on every scheduler).
	SchedPolicy blt.ULTPolicy
}

// Run boots a ULP-PiP runtime, launches size ranks executing program,
// waits for them all and returns their exit statuses alongside the world
// (for stats). It drives the engine to completion.
func Run(k *kernel.Kernel, cfg Config, size int, program Program) (*World, []int, error) {
	w := &World{size: size}
	img := &loader.Image{
		Name: "mpi-rank", PIE: true, TextSize: 8192,
		Symbols: []loader.Symbol{
			{Name: "rank_state", Size: 256},
			{Name: "errno", Size: 8, TLS: true},
		},
		Main: func(envI interface{}) int {
			env := envI.(*core.Env)
			r := env.Arg.(*Rank)
			r.env = env
			env.Decouple() // ranks run as ULTs on the program cores
			status := program(r)
			env.Couple() // terminate as a KLT so wait(2) reaps us
			return status
		},
	}
	var statuses []int
	var runErr error
	_, bootErr := core.Boot(k, core.Config{
		ProgCores:    cfg.ProgCores,
		SyscallCores: cfg.SyscallCores,
		Idle:         cfg.Idle,
		SchedPolicy:  cfg.SchedPolicy,
	}, func(rt *core.Runtime) int {
		w.rt = rt
		// Register every rank's match queue before any rank runs: an
		// early rank may address a peer that has not been spawned yet.
		for i := 0; i < size; i++ {
			w.ranks = append(w.ranks, &Rank{world: w, rank: i})
		}
		for i := 0; i < size; i++ {
			if _, err := rt.Spawn(img, core.SpawnOpts{
				Name: fmt.Sprintf("rank%d", i), Arg: w.ranks[i], Scheduler: -1,
			}); err != nil {
				runErr = err
				return 1
			}
		}
		var err error
		statuses, err = rt.WaitAll()
		if err != nil {
			runErr = err
		}
		rt.Shutdown()
		return 0
	})
	if bootErr != nil {
		return w, nil, bootErr
	}
	if err := k.Engine().Run(); err != nil {
		return w, nil, err
	}
	return w, statuses, runErr
}

// charge bills the rank's current carrier.
func (r *Rank) charge(d sim.Duration) { r.env.Carrier().Charge(d) }

func (r *Rank) costs() *kernel.Task { return r.env.Carrier() }

// Send delivers data to rank dst with the given tag. Small messages are
// eager (one copy into the match queue); large ones post a rendezvous
// descriptor and block until the receiver has pulled the data (so the
// sender's buffer is reusable on return, MPI_Send semantics).
func (r *Rank) Send(dst, tag int, data []byte) error {
	if dst < 0 || dst >= r.world.size {
		return fmt.Errorf("%w: send to %d of %d", ErrBadRank, dst, r.world.size)
	}
	k := r.env.Carrier().Kernel()
	costs := k.Machine().Costs
	target := r.world.ranks[dst]
	m := &message{src: r.rank, tag: tag}
	if len(data) <= RendezvousThreshold {
		// Eager: copy now; the send completes immediately.
		m.data = append([]byte(nil), data...)
		r.charge(costs.AtomicOp + costs.RunQueueOp +
			sim.Duration(costs.MemCopyBytePS*float64(len(data))))
		target.inbox = append(target.inbox, m)
		r.world.eagerSends++
		r.world.bytesMoved += uint64(len(data))
		return nil
	}
	// Rendezvous: expose our buffer; the receiver copies directly out
	// of it (single copy — the PiP advantage).
	m.rndv = true
	m.src2 = data
	r.charge(costs.AtomicOp + costs.RunQueueOp)
	target.inbox = append(target.inbox, m)
	r.world.rndvSends++
	for !m.taken {
		r.env.Yield() // let the receiver (or anyone) run
	}
	return nil
}

// SendReq is a nonblocking send handle (MPI_Request).
type SendReq struct {
	rank *Rank
	m    *message
}

// Wait blocks (yielding) until the send buffer is reusable: immediately
// for eager sends, after the receiver pulls the data for rendezvous.
func (q *SendReq) Wait() {
	if q.m == nil {
		return
	}
	for q.m.rndv && !q.m.taken {
		q.rank.env.Yield()
	}
}

// Done reports completion without blocking (MPI_Test).
func (q *SendReq) Done() bool { return q.m == nil || !q.m.rndv || q.m.taken }

// Isend is the nonblocking send (MPI_Isend): it never blocks the caller,
// even above the rendezvous threshold — essential for cyclic exchange
// patterns, which deadlock with synchronous sends. The buffer must not
// be reused until Wait returns.
func (r *Rank) Isend(dst, tag int, data []byte) (*SendReq, error) {
	if dst < 0 || dst >= r.world.size {
		return nil, fmt.Errorf("%w: isend to %d of %d", ErrBadRank, dst, r.world.size)
	}
	k := r.env.Carrier().Kernel()
	costs := k.Machine().Costs
	target := r.world.ranks[dst]
	m := &message{src: r.rank, tag: tag}
	if len(data) <= RendezvousThreshold {
		m.data = append([]byte(nil), data...)
		r.charge(costs.AtomicOp + costs.RunQueueOp +
			sim.Duration(costs.MemCopyBytePS*float64(len(data))))
		target.inbox = append(target.inbox, m)
		r.world.eagerSends++
		r.world.bytesMoved += uint64(len(data))
		return &SendReq{rank: r, m: m}, nil
	}
	m.rndv = true
	m.src2 = data
	r.charge(costs.AtomicOp + costs.RunQueueOp)
	target.inbox = append(target.inbox, m)
	r.world.rndvSends++
	return &SendReq{rank: r, m: m}, nil
}

// Sendrecv performs a combined exchange (MPI_Sendrecv): deadlock-free in
// cycles regardless of message sizes.
func (r *Rank) Sendrecv(dst, sendTag int, data []byte, src, recvTag int) ([]byte, error) {
	req, err := r.Isend(dst, sendTag, data)
	if err != nil {
		return nil, err
	}
	payload, _, _, err := r.Recv(src, recvTag)
	if err != nil {
		return nil, err
	}
	req.Wait()
	return payload, nil
}

// Recv returns the payload of the first queued message matching src and
// tag (AnySource/AnyTag wildcards allowed), yielding the core while it
// waits — this is the latency hiding the paper is after: a waiting rank
// costs one user-level switch, not an idle core.
func (r *Rank) Recv(src, tag int) (data []byte, fromRank, msgTag int, err error) {
	if src != AnySource && (src < 0 || src >= r.world.size) {
		return nil, 0, 0, fmt.Errorf("%w: recv from %d", ErrBadRank, src)
	}
	costs := r.env.Carrier().Kernel().Machine().Costs
	for {
		r.charge(costs.AtomicOp) // probe the match queue
		for i, m := range r.inbox {
			if (src != AnySource && m.src != src) || (tag != AnyTag && m.tag != tag) {
				continue
			}
			r.inbox = append(r.inbox[:i], r.inbox[i+1:]...)
			if m.rndv {
				payload := append([]byte(nil), m.src2...)
				r.charge(sim.Duration(costs.MemCopyBytePS * float64(len(payload))))
				r.world.bytesMoved += uint64(len(payload))
				m.taken = true
				return payload, m.src, m.tag, nil
			}
			return m.data, m.src, m.tag, nil
		}
		r.env.Yield()
	}
}

// Probe reports whether a matching message is queued, without receiving.
func (r *Rank) Probe(src, tag int) bool {
	for _, m := range r.inbox {
		if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
			return true
		}
	}
	return false
}
