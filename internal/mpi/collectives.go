package mpi

import (
	"encoding/binary"
	"math"
)

// Collective tags live in a reserved space above user tags.
const (
	tagBarrier = 1 << 20
	tagBcast   = 1<<20 + 1
	tagReduce  = 1<<20 + 2
	tagGather  = 1<<20 + 3
)

// Barrier blocks until every rank has entered it, via a binomial
// fan-in/fan-out tree over Send/Recv.
func (r *Rank) Barrier() error {
	// Fan-in to rank 0.
	for mask := 1; mask < r.Size(); mask <<= 1 {
		if r.rank&mask != 0 {
			return r.barrierLeaf(mask)
		}
		peer := r.rank | mask
		if peer < r.Size() {
			if _, _, _, err := r.Recv(peer, tagBarrier); err != nil {
				return err
			}
		}
	}
	// Rank 0: fan-out release.
	return r.barrierRelease()
}

func (r *Rank) barrierLeaf(mask int) error {
	parent := r.rank &^ mask
	if err := r.Send(parent, tagBarrier, nil); err != nil {
		return err
	}
	if _, _, _, err := r.Recv(parent, tagBarrier); err != nil {
		return err
	}
	return r.releaseChildren(mask)
}

func (r *Rank) barrierRelease() error { return r.releaseChildren(highBit(r.Size())) }

func (r *Rank) releaseChildren(below int) error {
	for mask := below >> 1; mask >= 1; mask >>= 1 {
		peer := r.rank | mask
		if peer != r.rank && peer < r.Size() {
			if err := r.Send(peer, tagBarrier, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

func highBit(n int) int {
	b := 1
	for b < n {
		b <<= 1
	}
	return b
}

// Bcast distributes root's buffer to every rank (binomial tree) and
// returns each rank's copy.
func (r *Rank) Bcast(root int, data []byte) ([]byte, error) {
	rel := (r.rank - root + r.Size()) % r.Size()
	if rel != 0 {
		// Receive from our tree parent.
		payload, _, _, err := r.Recv(AnySource, tagBcast)
		if err != nil {
			return nil, err
		}
		data = payload
	}
	// Forward to children in the relative numbering.
	for mask := 1; mask < r.Size(); mask <<= 1 {
		if rel&mask != 0 {
			break
		}
		childRel := rel | mask
		if childRel < r.Size() && childRel != rel {
			child := (childRel + root) % r.Size()
			if err := r.Send(child, tagBcast, data); err != nil {
				return nil, err
			}
		}
	}
	return data, nil
}

// Reduce combines every rank's values with op; rank root receives the
// result (others get nil).
func (r *Rank) Reduce(root int, op Op, vals []float64) ([]float64, error) {
	acc := append([]float64(nil), vals...)
	rel := (r.rank - root + r.Size()) % r.Size()
	for mask := 1; mask < r.Size(); mask <<= 1 {
		if rel&mask != 0 {
			parentRel := rel &^ mask
			parent := (parentRel + root) % r.Size()
			return nil, r.Send(parent, tagReduce, encodeF64(acc))
		}
		childRel := rel | mask
		if childRel < r.Size() {
			payload, _, _, err := r.Recv(AnySource, tagReduce)
			if err != nil {
				return nil, err
			}
			for i, v := range decodeF64(payload) {
				if i < len(acc) {
					acc[i] = op.apply(acc[i], v)
				}
			}
		}
	}
	return acc, nil
}

// Allreduce is Reduce to rank 0 followed by Bcast.
func (r *Rank) Allreduce(op Op, vals []float64) ([]float64, error) {
	acc, err := r.Reduce(0, op, vals)
	if err != nil {
		return nil, err
	}
	var buf []byte
	if r.rank == 0 {
		buf = encodeF64(acc)
	}
	out, err := r.Bcast(0, buf)
	if err != nil {
		return nil, err
	}
	return decodeF64(out), nil
}

// Gather collects every rank's buffer at root (returned in rank order;
// nil elsewhere).
func (r *Rank) Gather(root int, data []byte) ([][]byte, error) {
	if r.rank != root {
		return nil, r.Send(root, tagGather, data)
	}
	out := make([][]byte, r.Size())
	out[root] = append([]byte(nil), data...)
	for i := 0; i < r.Size()-1; i++ {
		payload, from, _, err := r.Recv(AnySource, tagGather)
		if err != nil {
			return nil, err
		}
		out[from] = payload
	}
	return out, nil
}

func encodeF64(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

func decodeF64(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
