package mpi

import (
	"fmt"
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
)

// TestRandomPermutationRouting sends one message per rank along a
// pseudo-random permutation (every rank sends to exactly one target and
// receives from exactly one source) with randomized payload sizes that
// straddle the rendezvous threshold, repeated over several rounds.
// Payload integrity and termination are the invariants.
func TestRandomPermutationRouting(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			const n = 8
			const rounds = 4
			rng := sim.NewRNG(seed)
			// Pre-generate a permutation and payload size per round.
			perms := make([][]int, rounds)
			sizes := make([][]int, rounds)
			for round := range perms {
				perms[round] = randPerm(rng, n)
				sizes[round] = make([]int, n)
				for i := range sizes[round] {
					// Mix eager and rendezvous sizes.
					if rng.Intn(2) == 0 {
						sizes[round][i] = 1 + rng.Intn(1024)
					} else {
						sizes[round][i] = RendezvousThreshold + rng.Intn(64*1024)
					}
				}
			}
			inverse := func(p []int, dst int) int {
				for s, d := range p {
					if d == dst {
						return s
					}
				}
				return -1
			}

			k := newK(arch.Wallaby())
			_, statuses, err := Run(k, testCfg(), n, func(r *Rank) int {
				for round := 0; round < rounds; round++ {
					dst := perms[round][r.Rank()]
					src := inverse(perms[round], r.Rank())
					size := sizes[round][r.Rank()]
					payload := make([]byte, size)
					for i := range payload {
						payload[i] = byte(i ^ r.Rank() ^ round)
					}
					// A permutation can contain cycles (including self-
					// loops); synchronous Send would deadlock above the
					// rendezvous threshold — exactly as real MPI_Send
					// would. Use the nonblocking form.
					req, err := r.Isend(dst, round, payload)
					if err != nil {
						return 1
					}
					got, from, _, err := r.Recv(src, round)
					if err != nil || from != src {
						return 2
					}
					req.Wait()
					wantSize := sizes[round][src]
					if len(got) != wantSize {
						return 3
					}
					for i := range got {
						if got[i] != byte(i^src^round) {
							return 4
						}
					}
					if err := r.Barrier(); err != nil {
						return 5
					}
				}
				return 0
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, s := range statuses {
				if s != 0 {
					t.Errorf("rank %d status %d", i, s)
				}
			}
		})
	}
}

// randPerm builds a permutation with the deterministic RNG
// (Fisher-Yates).
func randPerm(rng *sim.RNG, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// TestMPIDeterminism runs the same seeded traffic twice and checks the
// virtual end times agree exactly.
func TestMPIDeterminism(t *testing.T) {
	run := func() sim.Time {
		k := newK(arch.Albireo())
		_, statuses, err := Run(k, testCfg(), 6, func(r *Rank) int {
			for round := 0; round < 3; round++ {
				next := (r.Rank() + 1) % r.Size()
				if err := r.Send(next, round, make([]byte, 128)); err != nil {
					return 1
				}
				prev := (r.Rank() + r.Size() - 1) % r.Size()
				if _, _, _, err := r.Recv(prev, round); err != nil {
					return 2
				}
				if _, err := r.Allreduce(OpSum, []float64{1}); err != nil {
					return 3
				}
			}
			return 0
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range statuses {
			if s != 0 {
				t.Fatalf("rank %d status %d", i, s)
			}
		}
		return k.Engine().Now()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic MPI run: %v vs %v", a, b)
	}
}

// TestAllreduceMatchesSequential checks Allreduce against a sequential
// reference for random value sets and operators.
func TestAllreduceMatchesSequential(t *testing.T) {
	rng := sim.NewRNG(77)
	for trial := 0; trial < 5; trial++ {
		n := 2 + rng.Intn(7)
		width := 1 + rng.Intn(4)
		op := Op(rng.Intn(3))
		vals := make([][]float64, n)
		for i := range vals {
			vals[i] = make([]float64, width)
			for j := range vals[i] {
				vals[i][j] = float64(rng.Intn(1000)) / 10
			}
		}
		// Sequential reference.
		want := append([]float64(nil), vals[0]...)
		for i := 1; i < n; i++ {
			for j := range want {
				want[j] = op.apply(want[j], vals[i][j])
			}
		}
		results := make([][]float64, n)
		k := newK(arch.Wallaby())
		_, statuses, err := Run(k, testCfg(), n, func(r *Rank) int {
			out, err := r.Allreduce(op, vals[r.Rank()])
			if err != nil {
				return 1
			}
			results[r.Rank()] = out
			return 0
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range statuses {
			if s != 0 {
				t.Fatalf("trial %d rank %d status %d", trial, i, s)
			}
		}
		for rank, out := range results {
			if len(out) != width {
				t.Fatalf("trial %d rank %d width %d, want %d", trial, rank, len(out), width)
			}
			for j := range out {
				if out[j] != want[j] {
					t.Errorf("trial %d (n=%d op=%d) rank %d elem %d = %v, want %v",
						trial, n, op, rank, j, out[j], want[j])
				}
			}
		}
	}
}
