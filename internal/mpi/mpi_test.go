package mpi

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/arch"
	"repro/internal/blt"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/sim"
)

func testCfg() Config {
	return Config{
		ProgCores:    []int{0, 1},
		SyscallCores: []int{2, 3},
		Idle:         blt.BusyWait,
	}
}

func newK(m *arch.Machine) *kernel.Kernel {
	return kernel.New(sim.New(), m)
}

func TestPingPong(t *testing.T) {
	k := newK(arch.Wallaby())
	var got []byte
	_, statuses, err := Run(k, testCfg(), 2, func(r *Rank) int {
		if r.Rank() == 0 {
			if err := r.Send(1, 7, []byte("ping")); err != nil {
				return 1
			}
			payload, from, tag, err := r.Recv(1, 8)
			if err != nil || from != 1 || tag != 8 {
				return 2
			}
			got = payload
		} else {
			payload, _, _, err := r.Recv(0, 7)
			if err != nil || string(payload) != "ping" {
				return 3
			}
			if err := r.Send(0, 8, []byte("pong")); err != nil {
				return 4
			}
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range statuses {
		if s != 0 {
			t.Errorf("rank %d status %d", i, s)
		}
	}
	if string(got) != "pong" {
		t.Errorf("got %q", got)
	}
}

func TestRingPassesToken(t *testing.T) {
	k := newK(arch.Albireo())
	const n = 6
	_, statuses, err := Run(k, testCfg(), n, func(r *Rank) int {
		next := (r.Rank() + 1) % n
		prev := (r.Rank() + n - 1) % n
		if r.Rank() == 0 {
			if err := r.Send(next, 0, []byte{1}); err != nil {
				return 1
			}
			payload, _, _, err := r.Recv(prev, 0)
			if err != nil || int(payload[0]) != n {
				return 2
			}
			return 0
		}
		payload, _, _, err := r.Recv(prev, 0)
		if err != nil {
			return 3
		}
		payload[0]++
		if err := r.Send(next, 0, payload); err != nil {
			return 4
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range statuses {
		if s != 0 {
			t.Errorf("rank %d status %d", i, s)
		}
	}
}

func TestRendezvousLargeMessage(t *testing.T) {
	k := newK(arch.Wallaby())
	payload := make([]byte, 256*1024) // above the threshold
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	var received []byte
	w, statuses, err := Run(k, testCfg(), 2, func(r *Rank) int {
		if r.Rank() == 0 {
			if err := r.Send(1, 1, payload); err != nil {
				return 1
			}
			// MPI_Send semantics: buffer reusable on return.
			payload[0] = 0xFF
		} else {
			data, _, _, err := r.Recv(0, 1)
			if err != nil {
				return 2
			}
			received = data
		}
		return 0
	})
	if err != nil || statuses[0] != 0 || statuses[1] != 0 {
		t.Fatalf("err=%v statuses=%v", err, statuses)
	}
	if received[0] == 0xFF {
		t.Error("receiver saw the sender's post-send mutation: rendezvous completed too early")
	}
	if !bytes.Equal(received[1:], payload[1:]) {
		t.Error("rendezvous payload corrupted")
	}
	eager, rndv, _ := w.Stats()
	if rndv != 1 {
		t.Errorf("rendezvous sends = %d, want 1 (eager=%d)", rndv, eager)
	}
}

func TestWildcardsAndProbe(t *testing.T) {
	k := newK(arch.Wallaby())
	_, statuses, err := Run(k, testCfg(), 3, func(r *Rank) int {
		switch r.Rank() {
		case 0:
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				payload, from, tag, err := r.Recv(AnySource, AnyTag)
				if err != nil {
					return 1
				}
				if int(payload[0]) != from || tag != 10+from {
					return 2
				}
				seen[from] = true
			}
			if !seen[1] || !seen[2] {
				return 3
			}
			if r.Probe(AnySource, AnyTag) {
				return 4 // queue must be drained
			}
		default:
			if err := r.Send(0, 10+r.Rank(), []byte{byte(r.Rank())}); err != nil {
				return 5
			}
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range statuses {
		if s != 0 {
			t.Errorf("rank %d status %d", i, s)
		}
	}
}

func TestBarrierOrdering(t *testing.T) {
	k := newK(arch.Wallaby())
	const n = 5
	arrived := 0
	minAtExit := n + 1
	_, statuses, err := Run(k, testCfg(), n, func(r *Rank) int {
		// Stagger arrivals.
		for i := 0; i < r.Rank()*3; i++ {
			r.Env().Yield()
		}
		arrived++
		if err := r.Barrier(); err != nil {
			return 1
		}
		if arrived < minAtExit {
			minAtExit = arrived
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range statuses {
		if s != 0 {
			t.Errorf("rank %d status %d", i, s)
		}
	}
	if minAtExit != n {
		t.Errorf("a rank left the barrier after only %d arrivals", minAtExit)
	}
}

func TestAllreduceSumAndMax(t *testing.T) {
	k := newK(arch.Albireo())
	const n = 7
	results := make([][]float64, n)
	_, statuses, err := Run(k, testCfg(), n, func(r *Rank) int {
		vals := []float64{float64(r.Rank()), float64(r.Rank() * r.Rank())}
		out, err := r.Allreduce(OpSum, vals)
		if err != nil {
			return 1
		}
		results[r.Rank()] = out
		mx, err := r.Allreduce(OpMax, []float64{float64(r.Rank())})
		if err != nil || mx[0] != n-1 {
			return 2
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range statuses {
		if s != 0 {
			t.Errorf("rank %d status %d", i, s)
		}
	}
	wantSum := 0.0
	wantSq := 0.0
	for i := 0; i < n; i++ {
		wantSum += float64(i)
		wantSq += float64(i * i)
	}
	for rank, out := range results {
		if len(out) != 2 || out[0] != wantSum || out[1] != wantSq {
			t.Errorf("rank %d allreduce = %v, want [%v %v]", rank, out, wantSum, wantSq)
		}
	}
}

func TestBcastFromNonZeroRoot(t *testing.T) {
	k := newK(arch.Wallaby())
	const n = 4
	got := make([]string, n)
	_, statuses, err := Run(k, testCfg(), n, func(r *Rank) int {
		var data []byte
		if r.Rank() == 2 {
			data = []byte("root-payload")
		}
		out, err := r.Bcast(2, data)
		if err != nil {
			return 1
		}
		got[r.Rank()] = string(out)
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range statuses {
		if s != 0 {
			t.Errorf("rank %d status %d", i, s)
		}
	}
	for rank, s := range got {
		if s != "root-payload" {
			t.Errorf("rank %d bcast = %q", rank, s)
		}
	}
}

func TestGather(t *testing.T) {
	k := newK(arch.Wallaby())
	const n = 5
	var gathered [][]byte
	_, statuses, err := Run(k, testCfg(), n, func(r *Rank) int {
		out, err := r.Gather(0, []byte(fmt.Sprintf("rank-%d", r.Rank())))
		if err != nil {
			return 1
		}
		if r.Rank() == 0 {
			gathered = out
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range statuses {
		if s != 0 {
			t.Errorf("rank %d status %d", i, s)
		}
	}
	for i, b := range gathered {
		if string(b) != fmt.Sprintf("rank-%d", i) {
			t.Errorf("gathered[%d] = %q", i, b)
		}
	}
}

func TestOversubscribedRanksOnFewCores(t *testing.T) {
	// 12 ranks on 2 program cores: the whole point of ULP ranks. All
	// collective + p2p traffic must still complete deterministically.
	k := newK(arch.Wallaby())
	const n = 12
	_, statuses, err := Run(k, testCfg(), n, func(r *Rank) int {
		next := (r.Rank() + 1) % n
		prev := (r.Rank() + n - 1) % n
		for round := 0; round < 3; round++ {
			if err := r.Send(next, round, []byte{byte(r.Rank())}); err != nil {
				return 1
			}
			payload, _, _, err := r.Recv(prev, round)
			if err != nil || payload[0] != byte(prev) {
				return 2
			}
			if err := r.Barrier(); err != nil {
				return 3
			}
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range statuses {
		if s != 0 {
			t.Errorf("rank %d status %d", i, s)
		}
	}
}

func TestSendToBadRank(t *testing.T) {
	k := newK(arch.Wallaby())
	_, statuses, err := Run(k, testCfg(), 2, func(r *Rank) int {
		if r.Rank() == 0 {
			if err := r.Send(5, 0, nil); err == nil {
				return 1
			}
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if statuses[0] != 0 {
		t.Errorf("status = %d", statuses[0])
	}
}

func TestRanksSyscallConsistencyUnderMPI(t *testing.T) {
	// Every rank writes a private file inside the message loop; the fds
	// must always resolve on the rank's own KC.
	k := newK(arch.Wallaby())
	const n = 6
	w, statuses, err := Run(k, testCfg(), n, func(r *Rank) int {
		env := r.Env()
		fd, err := env.Open(fmt.Sprintf("/rank%d.out", r.Rank()), fs.OWrOnly|fs.OCreate)
		if err != nil {
			return 1
		}
		if err := r.Barrier(); err != nil {
			return 2
		}
		if _, err := env.Write(fd, []byte("data")); err != nil {
			return 3
		}
		if err := env.Close(fd); err != nil {
			return 4
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range statuses {
		if s != 0 {
			t.Errorf("rank %d status %d", i, s)
		}
	}
	if v := w.Runtime().Violations(); len(v) != 0 {
		t.Errorf("violations: %+v", v)
	}
	if files := k.FS().List(); len(files) != n {
		t.Errorf("files = %v", files)
	}
}

func TestSendrecvExchangeCycle(t *testing.T) {
	// Pairwise exchange of rendezvous-sized buffers in a full cycle —
	// deadlocks with Send, must complete with Sendrecv.
	k := newK(arch.Wallaby())
	const n = 4
	size := RendezvousThreshold * 2
	_, statuses, err := Run(k, testCfg(), n, func(r *Rank) int {
		next := (r.Rank() + 1) % n
		prev := (r.Rank() + n - 1) % n
		out := make([]byte, size)
		for i := range out {
			out[i] = byte(r.Rank())
		}
		in, err := r.Sendrecv(next, 5, out, prev, 5)
		if err != nil || len(in) != size {
			return 1
		}
		for _, b := range in {
			if b != byte(prev) {
				return 2
			}
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range statuses {
		if s != 0 {
			t.Errorf("rank %d status %d", i, s)
		}
	}
}

func TestIsendSelfMessage(t *testing.T) {
	// Rendezvous send-to-self: legal with Isend + Recv.
	k := newK(arch.Wallaby())
	size := RendezvousThreshold + 1
	_, statuses, err := Run(k, testCfg(), 2, func(r *Rank) int {
		req, err := r.Isend(r.Rank(), 3, make([]byte, size))
		if err != nil {
			return 1
		}
		if req.Done() {
			return 2 // rendezvous cannot complete before the Recv
		}
		got, from, _, err := r.Recv(r.Rank(), 3)
		if err != nil || from != r.Rank() || len(got) != size {
			return 3
		}
		req.Wait()
		if !req.Done() {
			return 4
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range statuses {
		if s != 0 {
			t.Errorf("rank %d status %d", i, s)
		}
	}
}
