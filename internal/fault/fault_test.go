package fault

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/kernel"
)

func TestParseSpecs(t *testing.T) {
	specs, err := ParseSpecs("futex_lost_wake:prob=0.25;kc_kill:nth=3,task=kc.t2;fs_slow:factor=8;sched_delay:every=2,delay_us=50")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("got %d specs, want 4", len(specs))
	}
	if specs[0].Site != SiteFutexLostWake || specs[0].Prob != 0.25 {
		t.Errorf("spec 0 = %+v", specs[0])
	}
	if specs[1].Nth != 3 || specs[1].TaskPrefix != "kc.t2" {
		t.Errorf("spec 1 = %+v", specs[1])
	}
	if specs[2].Factor != 8 {
		t.Errorf("spec 2 = %+v", specs[2])
	}
	if specs[3].Every != 2 || specs[3].DelayUS != 50 {
		t.Errorf("spec 3 = %+v", specs[3])
	}
	// Round-trip through String.
	var parts []string
	for _, s := range specs {
		parts = append(parts, s.String())
	}
	again, err := ParseSpecs(strings.Join(parts, ";"))
	if err != nil {
		t.Fatalf("re-parse of %q: %v", strings.Join(parts, ";"), err)
	}
	for i := range specs {
		if specs[i] != again[i] {
			t.Errorf("round-trip spec %d: %+v != %+v", i, specs[i], again[i])
		}
	}
}

func TestParseSpecsErrors(t *testing.T) {
	for _, bad := range []string{
		"nosuchsite:prob=0.5",
		"open",                    // no firing rule
		"open:prob=2",             // prob out of range
		"open:prob=0.5,nth=2",     // two rules
		"open:frobnicate=1",       // unknown key
		"sched_delay:prob=0.5",    // missing delay_us
		"fs_slow:factor=0.5",      // factor < 1
		"open:nth=0",              // nth must be positive
		"futex_lost_wake:prob",    // not key=val
		"open:err=ebadf,prob=0.5", // unknown errno
	} {
		if _, err := ParseSpecs(bad); err == nil {
			t.Errorf("ParseSpecs(%q) succeeded, want error", bad)
		}
	}
	// Empty string is valid: no specs.
	specs, err := ParseSpecs("")
	if err != nil || len(specs) != 0 {
		t.Errorf("ParseSpecs(\"\") = %v, %v", specs, err)
	}
}

func TestNthAndEveryAndCount(t *testing.T) {
	p := NewPlane(1, []Spec{
		{Site: SiteOpen, Nth: 3, Err: "enospc"},
		{Site: SiteWrite, Every: 2, Count: 2, Err: "eagain"},
	})
	var openErrs, writeErrs []error
	for i := 0; i < 6; i++ {
		openErrs = append(openErrs, p.SyscallError(nil, SiteOpen))
		writeErrs = append(writeErrs, p.SyscallError(nil, SiteWrite))
	}
	for i, err := range openErrs {
		want := error(nil)
		if i == 2 { // third hit
			want = kernel.ErrNoSpace
		}
		if !errors.Is(err, want) || (want == nil && err != nil) {
			t.Errorf("open hit %d: err=%v want %v", i+1, err, want)
		}
	}
	// every=2, count=2: fires on hits 2 and 4 only.
	for i, err := range writeErrs {
		want := error(nil)
		if i == 1 || i == 3 {
			want = kernel.ErrTryAgain
		}
		if (want == nil) != (err == nil) || (want != nil && !errors.Is(err, want)) {
			t.Errorf("write hit %d: err=%v want %v", i+1, err, want)
		}
	}
	if p.Injections() != 3 {
		t.Errorf("Injections() = %d, want 3", p.Injections())
	}
}

func TestProbDeterminismAndIndependence(t *testing.T) {
	run := func(extra bool) []bool {
		specs := []Spec{{Site: SiteFutexLostWake, Prob: 0.5}}
		if extra {
			// A second spec at a different site must not shift the first
			// spec's schedule: streams are per-spec.
			specs = append(specs, Spec{Site: SiteOpen, Prob: 0.9})
		}
		p := NewPlane(42, specs)
		var fires []bool
		for i := 0; i < 64; i++ {
			if extra && i%3 == 0 {
				p.SyscallError(nil, SiteOpen)
			}
			fires = append(fires, p.FutexDropWake(nil, 0))
		}
		return fires
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d: schedule shifted by unrelated spec (%v vs %v)", i, a[i], b[i])
		}
	}
	// And the same seed reproduces exactly.
	c := run(false)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("hit %d: same seed diverged", i)
		}
	}
	// A different seed gives a different schedule (overwhelmingly likely
	// over 64 draws at p=0.5).
	p2 := NewPlane(43, []Spec{{Site: SiteFutexLostWake, Prob: 0.5}})
	diff := false
	for i := 0; i < 64; i++ {
		if p2.FutexDropWake(nil, 0) != a[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("seeds 42 and 43 produced identical 64-draw schedules")
	}
}

func TestArmedConsumesNoRandomness(t *testing.T) {
	p := NewPlane(7, []Spec{{Site: SiteFutexLostWake, Prob: 0.5}})
	q := NewPlane(7, []Spec{{Site: SiteFutexLostWake, Prob: 0.5}})
	for i := 0; i < 32; i++ {
		// Interleave Armed probes on p only; schedules must stay equal.
		p.Armed(nil, SiteFutexLostWake)
		p.Armed(nil, SiteKCKill)
		if p.FutexDropWake(nil, 0) != q.FutexDropWake(nil, 0) {
			t.Fatalf("hit %d: Armed() perturbed the schedule", i)
		}
	}
	if !p.Armed(nil, SiteFutexLostWake) {
		t.Error("Armed() = false for configured site")
	}
	if p.Armed(nil, SiteKCKill) {
		t.Error("Armed() = true for unconfigured site")
	}
}

func TestIOScale(t *testing.T) {
	p := NewPlane(1, []Spec{{Site: SiteFSSlow, Factor: 4}})
	if f := p.IOScale(nil, SiteFSSlow); f != 4 {
		t.Errorf("IOScale = %v, want 4", f)
	}
	if f := p.IOScale(nil, SiteSchedDelay); f != 1 {
		t.Errorf("IOScale(other site) = %v, want 1", f)
	}
}

func TestExtraDelay(t *testing.T) {
	p := NewPlane(1, []Spec{{Site: SiteSchedDelay, Every: 2, DelayUS: 50}})
	d1 := p.ExtraDelay(nil, SiteSchedDelay)
	d2 := p.ExtraDelay(nil, SiteSchedDelay)
	if d1 != 0 {
		t.Errorf("first hit delay = %v, want 0", d1)
	}
	if want := 50 * 1000 * 1000; int64(d2) != int64(want) { // 50us in ps
		t.Errorf("second hit delay = %v ps, want %d ps", int64(d2), want)
	}
}
