// Package fault is the deterministic fault-injection plane for the
// simulated ULP-PiP stack. It implements kernel.FaultPlane: a set of
// Specs, each naming an injection site in the kernel/runtime and a firing
// rule (probability, nth hit, or every-nth hit), driven by per-spec
// SplitMix64 streams derived from one seed. The same (seed, specs) pair
// therefore reproduces the exact same fault schedule in virtual time, no
// matter how many other specs are active — which is what makes chaos
// failures replayable from a single seed.
//
// Sites (see kernel.FaultPlane for the contract at each):
//
//	open, write, read, futex_wait   transient syscall errors (err=...)
//	futex_spurious                  spurious futex wakeup (EAGAIN)
//	futex_lost_wake                 futex wake silently dropped
//	kc_kill                         idle original KC dies in trampoline
//	sched_kill                      scheduler KC dies between dispatches
//	aio_helper_kill                 AIO helper thread dies between requests
//	sched_delay                     extra latency before a UC dispatch
//	fs_slow                         file I/O cost multiplied by factor
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Sites lists every injection site the runtime consults, in stable order.
var Sites = []string{
	SiteOpen, SiteWrite, SiteRead, SiteFutexWait,
	SiteFutexSpurious, SiteFutexLostWake,
	SiteKCKill, SiteSchedKill, SiteAIOHelperKill,
	SiteSchedDelay, SiteFSSlow,
}

// Site names.
const (
	SiteOpen          = "open"
	SiteWrite         = "write"
	SiteRead          = "read"
	SiteFutexWait     = "futex_wait"
	SiteFutexSpurious = "futex_spurious"
	SiteFutexLostWake = "futex_lost_wake"
	SiteKCKill        = "kc_kill"
	SiteSchedKill     = "sched_kill"
	SiteAIOHelperKill = "aio_helper_kill"
	SiteSchedDelay    = "sched_delay"
	SiteFSSlow        = "fs_slow"
)

// Spec is one fault rule: where it can fire, when it fires, and what it
// injects. Exactly one of Prob / Nth / Every selects the firing rule
// (Prob if none is set is 0, i.e. the spec never fires).
type Spec struct {
	// Site is the injection site name (one of Sites).
	Site string
	// TaskPrefix restricts the spec to tasks whose name starts with this
	// prefix; empty matches every task. This is the isolation lever: a
	// spec scoped to one tenant's tasks cannot perturb any other task's
	// event schedule.
	TaskPrefix string

	// Prob fires with this probability per hit (0..1), drawn from the
	// spec's private RNG stream.
	Prob float64
	// Nth fires on exactly the nth matching hit (1-based), once.
	Nth uint64
	// Every fires on every every-th matching hit.
	Every uint64
	// Count caps the total number of fires (0 = unlimited).
	Count uint64

	// Err selects the injected error for syscall sites: "eintr" (default),
	// "eagain" or "enospc".
	Err string
	// DelayUS is the injected latency in microseconds (sched_delay).
	DelayUS uint64
	// Factor is the I/O cost multiplier (fs_slow); values <= 1 disable.
	Factor float64
}

// String renders the spec in the -faults flag syntax (parseable back).
func (s Spec) String() string {
	var b strings.Builder
	b.WriteString(s.Site)
	sep := ":"
	put := func(k, v string) {
		b.WriteString(sep)
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(v)
		sep = ","
	}
	if s.Prob > 0 {
		put("prob", strconv.FormatFloat(s.Prob, 'g', -1, 64))
	}
	if s.Nth > 0 {
		put("nth", strconv.FormatUint(s.Nth, 10))
	}
	if s.Every > 0 {
		put("every", strconv.FormatUint(s.Every, 10))
	}
	if s.Count > 0 {
		put("count", strconv.FormatUint(s.Count, 10))
	}
	if s.Err != "" {
		put("err", s.Err)
	}
	if s.DelayUS > 0 {
		put("delay_us", strconv.FormatUint(s.DelayUS, 10))
	}
	if s.Factor > 0 {
		put("factor", strconv.FormatFloat(s.Factor, 'g', -1, 64))
	}
	if s.TaskPrefix != "" {
		put("task", s.TaskPrefix)
	}
	return b.String()
}

// ParseSpecs parses the -faults flag syntax: semicolon-separated specs,
// each "site:key=val,key=val,...". Example:
//
//	futex_lost_wake:prob=0.01;kc_kill:nth=3,task=kc.t2;fs_slow:factor=8
func ParseSpecs(s string) ([]Spec, error) {
	var specs []Spec
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		site, opts, _ := strings.Cut(part, ":")
		site = strings.TrimSpace(site)
		if !validSite(site) {
			return nil, fmt.Errorf("fault: unknown site %q (valid: %s)", site, strings.Join(Sites, " "))
		}
		sp := Spec{Site: site}
		if opts != "" {
			for _, kv := range strings.Split(opts, ",") {
				key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
				if !ok {
					return nil, fmt.Errorf("fault: bad option %q in spec %q (want key=val)", kv, part)
				}
				if err := sp.setOption(key, val); err != nil {
					return nil, fmt.Errorf("fault: spec %q: %w", part, err)
				}
			}
		}
		if err := sp.validate(); err != nil {
			return nil, fmt.Errorf("fault: spec %q: %w", part, err)
		}
		specs = append(specs, sp)
	}
	return specs, nil
}

func validSite(site string) bool {
	for _, s := range Sites {
		if s == site {
			return true
		}
	}
	return false
}

func (s *Spec) setOption(key, val string) error {
	switch key {
	case "prob":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 || f > 1 {
			return fmt.Errorf("prob must be in [0,1], got %q", val)
		}
		s.Prob = f
	case "nth":
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil || n == 0 {
			return fmt.Errorf("nth must be a positive integer, got %q", val)
		}
		s.Nth = n
	case "every":
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil || n == 0 {
			return fmt.Errorf("every must be a positive integer, got %q", val)
		}
		s.Every = n
	case "count":
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return fmt.Errorf("count must be an integer, got %q", val)
		}
		s.Count = n
	case "err":
		switch val {
		case "eintr", "eagain", "enospc":
			s.Err = val
		default:
			return fmt.Errorf("err must be eintr, eagain or enospc, got %q", val)
		}
	case "delay_us":
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return fmt.Errorf("delay_us must be an integer, got %q", val)
		}
		s.DelayUS = n
	case "factor":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 1 {
			return fmt.Errorf("factor must be >= 1, got %q", val)
		}
		s.Factor = f
	case "task":
		s.TaskPrefix = val
	default:
		return fmt.Errorf("unknown option %q", key)
	}
	return nil
}

func (s *Spec) validate() error {
	rules := 0
	if s.Prob > 0 {
		rules++
	}
	if s.Nth > 0 {
		rules++
	}
	if s.Every > 0 {
		rules++
	}
	if rules > 1 {
		return errors.New("at most one of prob/nth/every")
	}
	if s.Site == SiteFSSlow {
		if s.Factor < 1 {
			return errors.New("fs_slow needs factor>=1")
		}
		// fs_slow is a standing condition, not a per-hit fire.
		return nil
	}
	if rules == 0 {
		return errors.New("needs one of prob/nth/every")
	}
	if s.Site == SiteSchedDelay && s.DelayUS == 0 {
		return errors.New("sched_delay needs delay_us")
	}
	return nil
}

// injErr maps a spec's Err to the kernel error it injects.
func (s *Spec) injErr() error {
	switch s.Err {
	case "eagain":
		return kernel.ErrTryAgain
	case "enospc":
		return kernel.ErrNoSpace
	default:
		return kernel.ErrInterrupted
	}
}

// armed is a spec plus its private RNG stream and counters.
type armed struct {
	Spec
	rng   *sim.RNG
	hits  uint64
	fires uint64
}

// matches reports whether the spec applies to this task (site already
// checked by the caller). A nil task (no current task at the site) only
// matches unrestricted specs.
func (a *armed) matches(t *kernel.Task) bool {
	if a.TaskPrefix == "" {
		return true
	}
	return t != nil && strings.HasPrefix(t.Name(), a.TaskPrefix)
}

// decide registers one hit and reports whether the spec fires on it. It
// consumes randomness only from the spec's own stream, so adding or
// removing other specs never shifts this spec's schedule.
func (a *armed) decide() bool {
	a.hits++
	fire := false
	switch {
	case a.Nth > 0:
		fire = a.hits == a.Nth
	case a.Every > 0:
		fire = a.hits%a.Every == 0
	case a.Prob > 0:
		fire = a.rng.Float64() < a.Prob
	}
	if fire && a.Count > 0 && a.fires >= a.Count {
		fire = false
	}
	if fire {
		a.fires++
	}
	return fire
}

// Plane is a deterministic kernel.FaultPlane built from a seed and specs.
type Plane struct {
	seed  uint64
	specs []*armed
}

var _ kernel.FaultPlane = (*Plane)(nil)

// NewPlane builds a plane. Spec i draws from stream splitmix(seed, i), so
// per-spec schedules are independent and stable under spec reordering of
// *other* sites.
func NewPlane(seed uint64, specs []Spec) *Plane {
	p := &Plane{seed: seed}
	for i, s := range specs {
		p.specs = append(p.specs, &armed{
			Spec: s,
			rng:  sim.NewRNG(mix(seed, uint64(i)+1)),
		})
	}
	return p
}

// mix derives a sub-stream seed (SplitMix64 finalizer over seed+lane).
func mix(seed, lane uint64) uint64 {
	z := seed + lane*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Seed returns the plane's seed.
func (p *Plane) Seed() uint64 { return p.seed }

// SyscallError implements kernel.FaultPlane.
func (p *Plane) SyscallError(t *kernel.Task, site string) error {
	for _, a := range p.specs {
		if a.Site == site && a.matches(t) && a.decide() {
			return a.injErr()
		}
	}
	return nil
}

// FutexSpurious implements kernel.FaultPlane.
func (p *Plane) FutexSpurious(t *kernel.Task, addr uint64) bool {
	return p.boolSite(t, SiteFutexSpurious)
}

// FutexDropWake implements kernel.FaultPlane.
func (p *Plane) FutexDropWake(waiter *kernel.Task, addr uint64) bool {
	return p.boolSite(waiter, SiteFutexLostWake)
}

// TaskShouldDie implements kernel.FaultPlane.
func (p *Plane) TaskShouldDie(t *kernel.Task, site string) bool {
	return p.boolSite(t, site)
}

func (p *Plane) boolSite(t *kernel.Task, site string) bool {
	fire := false
	for _, a := range p.specs {
		if a.Site == site && a.matches(t) && a.decide() {
			fire = true
			// Keep evaluating so every matching spec's stream advances
			// the same way whether or not an earlier spec fired.
		}
	}
	return fire
}

// ExtraDelay implements kernel.FaultPlane.
func (p *Plane) ExtraDelay(t *kernel.Task, site string) sim.Duration {
	var d sim.Duration
	for _, a := range p.specs {
		if a.Site == site && a.matches(t) && a.decide() {
			d += sim.Duration(a.DelayUS) * sim.Microsecond
		}
	}
	return d
}

// IOScale implements kernel.FaultPlane. fs_slow is a standing condition:
// every matching spec's factor applies to every matching I/O.
func (p *Plane) IOScale(t *kernel.Task, site string) float64 {
	f := 1.0
	for _, a := range p.specs {
		if a.Site == site && a.Factor > 1 && a.matches(t) {
			f *= a.Factor
		}
	}
	return f
}

// Armed implements kernel.FaultPlane: true when some spec could ever fire
// for (task, site). Consumes no randomness and registers no hit, so
// recovery code may call it freely without perturbing schedules.
func (p *Plane) Armed(t *kernel.Task, site string) bool {
	for _, a := range p.specs {
		if a.Site == site && a.matches(t) {
			return true
		}
	}
	return false
}

// Injections reports the total number of fires across all specs (part of
// the chaos determinism digest).
func (p *Plane) Injections() uint64 {
	var n uint64
	for _, a := range p.specs {
		n += a.fires
	}
	return n
}

// PublishMetrics folds the plane's per-site hit/fire totals into a
// metrics registry as "fault.<site>.hits" / "fault.<site>.fires"
// counters. Specs sharing a site aggregate. Call after the run (the
// counts are cumulative snapshots, not live increments).
func (p *Plane) PublishMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	for _, a := range p.specs {
		reg.Counter("fault." + a.Site + ".hits").Add(a.hits)
		reg.Counter("fault." + a.Site + ".fires").Add(a.fires)
	}
}

// Stats returns one line per spec: "<spec> hits=H fires=F", sorted by
// site then spec text for stable output.
func (p *Plane) Stats() []string {
	out := make([]string, 0, len(p.specs))
	for _, a := range p.specs {
		out = append(out, fmt.Sprintf("%s hits=%d fires=%d", a.Spec.String(), a.hits, a.fires))
	}
	sort.Strings(out)
	return out
}
