// Chaos-plane coverage for the pluggable scheduler plane. Lives in the
// external fault_test package for the same import-cycle reason as
// chaos_test.go.
package fault_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/blt"
	"repro/internal/chaos"
)

// TestChaosFIFOPolicyDigestByteIdentical pins the fifo identity under
// fault injection: a chaos run with -sched-policy fifo must produce the
// exact digest of the bare run, for every machine x idle cell.
func TestChaosFIFOPolicyDigestByteIdentical(t *testing.T) {
	for _, m := range arch.Machines() {
		for _, idle := range []blt.IdlePolicy{blt.BusyWait, blt.Blocking} {
			for seed := uint64(1); seed <= 3; seed++ {
				bare, err := chaos.Run(chaos.Config{Machine: m, Seed: seed, Idle: idle})
				if err != nil {
					t.Fatalf("%s/%s seed %d: %v", m.Name, idle, seed, err)
				}
				fifo, err := chaos.Run(chaos.Config{Machine: m, Seed: seed, Idle: idle, SchedPolicy: "fifo"})
				if err != nil {
					t.Fatalf("%s/%s seed %d (fifo): %v", m.Name, idle, seed, err)
				}
				if !bare.Equal(fifo) {
					t.Errorf("%s/%s seed %d: fifo digest diverged:\n  bare: %s\n  fifo: %s",
						m.Name, idle, seed, bare, fifo)
				}
			}
		}
	}
}

// TestChaosSchedPoliciesDeterministic runs each non-identity policy
// under the default fault mix: the protocol verifier must pass and the
// digest must be a pure function of (seed, policy) — stateful policies
// parse fresh per run, so reruns may not leak pass/gang state.
func TestChaosSchedPoliciesDeterministic(t *testing.T) {
	for _, spec := range []string{"locality", "cosched", "tenant", "tenant:weights=kc.chaos.1:4"} {
		for seed := uint64(1); seed <= 3; seed++ {
			cfg := chaos.Config{Seed: seed, Idle: blt.Blocking, SchedPolicy: spec}
			d1, err := chaos.Run(cfg)
			if err != nil {
				t.Fatalf("policy %s seed %d: %v", spec, seed, err)
			}
			d2, err := chaos.Run(cfg)
			if err != nil {
				t.Fatalf("policy %s seed %d (rerun): %v", spec, seed, err)
			}
			if !d1.Equal(d2) {
				t.Errorf("policy %s seed %d nondeterministic:\n  run1: %s\n  run2: %s\nrepro: %s",
					spec, seed, d1, d2, chaos.ReproCommand(cfg))
			}
		}
	}
}
