// Chaos fuzzing of the Table I protocol: seeded random operation mixes
// under the default fault plane, across both machine models and both
// idle policies. Each seed's run is verified (syscall consistency, no
// lost BLTs, WaitAll termination) and re-run to prove the digest is a
// pure function of the seed. A failure prints the ulpsim repro command.
//
// This file is an external test package (fault_test): the chaos driver
// imports internal/blt, whose own in-package tests import internal/fault,
// so an in-package chaos test would be an import cycle.
package fault_test

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/blt"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/probe"
	"repro/internal/sim"
)

// TestChaosSeedMatrix is the headline acceptance run: 64 seeds spread
// over {Wallaby, Albireo} x {BusyWait, Blocking}, each run twice for
// determinism. -short keeps a quarter of the matrix for quick runs.
func TestChaosSeedMatrix(t *testing.T) {
	seedsPerCell := 16
	if testing.Short() {
		seedsPerCell = 4
	}
	for _, m := range arch.Machines() {
		for _, idle := range []blt.IdlePolicy{blt.BusyWait, blt.Blocking} {
			m, idle := m, idle
			t.Run(m.Name+"/"+idle.String(), func(t *testing.T) {
				for s := 0; s < seedsPerCell; s++ {
					seed := uint64(1 + s)
					cfg := chaos.Config{Machine: m, Seed: seed, Idle: idle}
					d1, err := chaos.Run(cfg)
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					d2, err := chaos.Run(cfg)
					if err != nil {
						t.Fatalf("seed %d (rerun): %v", seed, err)
					}
					if !d1.Equal(d2) {
						t.Fatalf("seed %d nondeterministic:\n  run1: %s\n  run2: %s\nrepro: %s",
							seed, d1, d2, chaos.ReproCommand(cfg))
					}
				}
			})
		}
	}
}

// TestChaosUcontextMode runs a slice of seeds with ucontext-style
// (mask-switching) context switches, the slower §VII mode.
func TestChaosUcontextMode(t *testing.T) {
	for seed := uint64(100); seed < 104; seed++ {
		cfg := chaos.Config{Seed: seed, Idle: blt.Blocking, SigMode: core.UcontextMode}
		if _, err := chaos.Run(cfg); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestChaosAggressiveKills cranks the kill probabilities far above the
// default mix: most KCs die mid-run. Every ULP must still be accounted
// for (orphans included) and the digest must stay deterministic.
func TestChaosAggressiveKills(t *testing.T) {
	specs := []fault.Spec{
		{Site: fault.SiteKCKill, Prob: 0.2, TaskPrefix: "kc.chaos"},
		{Site: fault.SiteSchedKill, Prob: 0.05, TaskPrefix: "sched."},
		{Site: fault.SiteFutexLostWake, Prob: 0.1},
		{Site: fault.SiteSchedDelay, Prob: 0.1, DelayUS: 100},
	}
	sawOrphan := false
	for seed := uint64(200); seed < 208; seed++ {
		cfg := chaos.Config{Seed: seed, Idle: blt.Blocking, Specs: specs}
		d1, err := chaos.Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		d2, err := chaos.Run(cfg)
		if err != nil {
			t.Fatalf("seed %d (rerun): %v", seed, err)
		}
		if !d1.Equal(d2) {
			t.Fatalf("seed %d nondeterministic:\n  run1: %s\n  run2: %s", seed, d1, d2)
		}
		if d1.Orphans > 0 {
			sawOrphan = true
		}
	}
	if !sawOrphan {
		t.Error("no seed produced an orphaned ULP; the kill path went unexercised")
	}
}

// TestChaosFaultFreeBaseline: a chaos run with an empty spec list is a
// plain deterministic workload — zero injections, zero orphans.
func TestChaosFaultFreeBaseline(t *testing.T) {
	cfg := chaos.Config{Seed: 42, Specs: []fault.Spec{}, Idle: blt.BusyWait}
	d, err := chaos.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Injections != 0 || d.Orphans != 0 {
		t.Errorf("fault-free run: injections=%d orphans=%d, want 0/0", d.Injections, d.Orphans)
	}
}

// TestChaosProbesPreserveDigest is the byte-identity guard for the
// probe plane: observe-only stock probes (fire counters across the hot
// attach points, an SLO aggregator with a generous bound) attached to a
// chaos run must reproduce the bare run's digest exactly — attaching
// observability must not move a single event. A throttle probe, by
// contrast, is *supposed* to perturb the schedule; the contract there is
// that the perturbed digest is still a pure function of the seed.
func TestChaosProbesPreserveDigest(t *testing.T) {
	observe, err := probe.ParseSpecs(
		"count:points=syscall:enter+sched:dispatch+futex:wait+futex:wake+fault:site+task:exit;slo:p99_us=1000000")
	if err != nil {
		t.Fatal(err)
	}
	throttle, err := probe.ParseSpecs("throttle:task=t,interval_us=200")
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 3; seed++ {
		bare := chaos.Config{Seed: seed, Idle: blt.BusyWait}
		d0, err := chaos.Run(bare)
		if err != nil {
			t.Fatalf("seed %d bare: %v", seed, err)
		}
		probed := bare
		probed.Probes = observe
		d1, err := chaos.Run(probed)
		if err != nil {
			t.Fatalf("seed %d probed: %v", seed, err)
		}
		if !d0.Equal(d1) {
			t.Fatalf("seed %d: observe probes perturbed the digest:\n  bare:   %s\n  probed: %s",
				seed, d0, d1)
		}
		slowed := bare
		slowed.Probes = throttle
		d2, err := chaos.Run(slowed)
		if err != nil {
			t.Fatalf("seed %d throttled: %v", seed, err)
		}
		d3, err := chaos.Run(slowed)
		if err != nil {
			t.Fatalf("seed %d throttled rerun: %v", seed, err)
		}
		if !d2.Equal(d3) {
			t.Fatalf("seed %d: throttled digest nondeterministic:\n  run1: %s\n  run2: %s",
				seed, d2, d3)
		}
	}
}

// TestChaosSLOOracleFails: an unsatisfiable SLO bound must fail the
// chaos run through the probe's post-run check, like any other
// invariant violation.
func TestChaosSLOOracleFails(t *testing.T) {
	specs, err := probe.ParseSpecs("slo:p99_us=1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaos.Config{Seed: 7, Idle: blt.BusyWait, Probes: specs}
	if _, err := chaos.Run(cfg); err == nil {
		t.Fatal("chaos run passed despite a 1us p99 bound on every syscall")
	} else if !strings.Contains(err.Error(), "SLO") {
		t.Errorf("failure should come from the SLO check, got: %v", err)
	}
}

// tieChooser is a deterministic seeded random chooser for composing the
// chaos plane with schedule exploration.
type tieChooser struct{ rng *sim.RNG }

func (c *tieChooser) Choose(_ sim.Time, cands []sim.Candidate) int {
	return c.rng.Intn(len(cands))
}

// TestChaosComposesWithChooser: fault injection plus an exploring
// chooser. The chooser perturbs same-instant tie-breaks under faults,
// the run must still satisfy every chaos oracle, and the digest must be
// a pure function of (chaos seed, chooser seed).
func TestChaosComposesWithChooser(t *testing.T) {
	run := func() chaos.Digest {
		cfg := chaos.Config{Seed: 5, Idle: blt.Blocking,
			Chooser: &tieChooser{rng: sim.NewRNG(42)}}
		d, err := chaos.Run(cfg)
		if err != nil {
			t.Fatalf("chaos with chooser: %v", err)
		}
		return d
	}
	d1, d2 := run(), run()
	if !d1.Equal(d2) {
		t.Fatalf("chooser run nondeterministic:\n  run1: %s\n  run2: %s", d1, d2)
	}
}
