package mem

// The page table is the x86_64-style four-level radix tree: 9 bits per
// level (PGD, PUD, PMD, PT) over a 48-bit virtual address with 4 KiB
// leaves. The paper's address-space sharing means *one* page table is
// shared by all PiP tasks; this is modeled by all tasks holding the same
// *AddressSpace, hence the same *PageTable.

const (
	ptLevels     = 4
	ptBitsPer    = 9
	ptEntriesPer = 1 << ptBitsPer // 512
)

// PTE is a leaf page-table entry.
type PTE struct {
	Frame *Frame
	Prot  Prot
	// COW marks a copy-on-write page: shared with another space until
	// the next write, which copies the frame (see AddressSpace.ForkCoW).
	COW bool
	// Accessed/Dirty model the hardware A/D bits.
	Accessed bool
	Dirty    bool
}

// ptNode is one interior or leaf table of 512 entries.
type ptNode struct {
	children [ptEntriesPer]*ptNode // interior levels
	entries  [ptEntriesPer]*PTE    // leaf level only
	live     int                   // number of non-nil slots
}

// PageTable is a four-level translation tree.
type PageTable struct {
	root *ptNode

	// mapped counts live leaf PTEs.
	mapped uint64
}

// NewPageTable creates an empty table.
func NewPageTable() *PageTable { return &PageTable{root: &ptNode{}} }

// indices splits a virtual address into the four level indices.
func indices(va uint64) [ptLevels]int {
	var ix [ptLevels]int
	va >>= PageShift
	for l := ptLevels - 1; l >= 0; l-- {
		ix[l] = int(va & (ptEntriesPer - 1))
		va >>= ptBitsPer
	}
	return ix
}

// Lookup returns the PTE mapping va's page, or nil.
func (pt *PageTable) Lookup(va uint64) *PTE {
	n := pt.root
	ix := indices(va)
	for l := 0; l < ptLevels-1; l++ {
		n = n.children[ix[l]]
		if n == nil {
			return nil
		}
	}
	return n.entries[ix[ptLevels-1]]
}

// Map installs a PTE for va's page, walking and creating interior nodes.
// It panics if the page is already mapped: callers must Unmap first (the
// simulated kernel never silently remaps).
func (pt *PageTable) Map(va uint64, pte *PTE) {
	n := pt.root
	ix := indices(va)
	for l := 0; l < ptLevels-1; l++ {
		child := n.children[ix[l]]
		if child == nil {
			child = &ptNode{}
			n.children[ix[l]] = child
			n.live++
		}
		n = child
	}
	if n.entries[ix[ptLevels-1]] != nil {
		panic("mem: double map of " + fmtAddr(va))
	}
	n.entries[ix[ptLevels-1]] = pte
	n.live++
	pt.mapped++
}

// Unmap removes the PTE for va's page and returns it, or nil if the page
// was not mapped. Empty interior nodes are pruned.
func (pt *PageTable) Unmap(va uint64) *PTE {
	ix := indices(va)
	var path [ptLevels]*ptNode
	n := pt.root
	for l := 0; l < ptLevels-1; l++ {
		path[l] = n
		n = n.children[ix[l]]
		if n == nil {
			return nil
		}
	}
	path[ptLevels-1] = n
	pte := n.entries[ix[ptLevels-1]]
	if pte == nil {
		return nil
	}
	n.entries[ix[ptLevels-1]] = nil
	n.live--
	pt.mapped--
	// Prune empty tables bottom-up (never the root).
	for l := ptLevels - 1; l >= 1; l-- {
		if path[l].live != 0 {
			break
		}
		path[l-1].children[ix[l-1]] = nil
		path[l-1].live--
	}
	return pte
}

// Mapped reports the number of mapped pages.
func (pt *PageTable) Mapped() uint64 { return pt.mapped }

// WalkCost reports the number of memory references a hardware page walk
// of this table performs (one per level).
func (pt *PageTable) WalkCost() int { return ptLevels }

// Range calls fn for every mapped page in ascending address order.
// Returning false from fn stops the walk.
func (pt *PageTable) Range(fn func(va uint64, pte *PTE) bool) {
	pt.walkNode(pt.root, 0, 0, fn)
}

func (pt *PageTable) walkNode(n *ptNode, level int, prefix uint64, fn func(uint64, *PTE) bool) bool {
	shift := uint(PageShift + (ptLevels-1-level)*ptBitsPer)
	for i := 0; i < ptEntriesPer; i++ {
		va := prefix | uint64(i)<<shift
		if level == ptLevels-1 {
			if pte := n.entries[i]; pte != nil {
				if !fn(va, pte) {
					return false
				}
			}
			continue
		}
		if child := n.children[i]; child != nil {
			if !pt.walkNode(child, level+1, va, fn) {
				return false
			}
		}
	}
	return true
}
