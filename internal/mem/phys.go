package mem

// Frame is one physical page frame. Content is allocated lazily on first
// write so that large sparse mappings stay cheap to simulate.
type Frame struct {
	ID   uint64
	refs int
	data []byte
}

// Data returns the frame's backing bytes, allocating them zeroed on first
// use (physical pages are handed out zeroed, as on Linux).
func (f *Frame) Data() []byte {
	if f.data == nil {
		f.data = make([]byte, PageSize)
	}
	return f.data
}

// Refs reports the number of page-table mappings referencing this frame.
func (f *Frame) Refs() int { return f.refs }

// PhysMemory is the physical frame allocator. A single PhysMemory is
// shared by every address space on a simulated machine.
type PhysMemory struct {
	totalFrames uint64
	nextID      uint64
	free        []*Frame
	allocated   uint64

	// Stats.
	allocs uint64
	zeroed uint64
}

// NewPhysMemory creates an allocator with the given capacity in frames.
// capacity == 0 means effectively unlimited (2^40 frames).
func NewPhysMemory(capacityFrames uint64) *PhysMemory {
	if capacityFrames == 0 {
		capacityFrames = 1 << 40
	}
	return &PhysMemory{totalFrames: capacityFrames}
}

// Alloc returns a fresh zeroed frame, or ErrNoMemory when capacity is
// exhausted.
func (pm *PhysMemory) Alloc() (*Frame, error) {
	if n := len(pm.free); n > 0 {
		f := pm.free[n-1]
		pm.free[n-1] = nil
		pm.free = pm.free[:n-1]
		f.data = nil // recycled frames are handed out zeroed
		pm.allocated++
		pm.allocs++
		return f, nil
	}
	if pm.allocated >= pm.totalFrames {
		return nil, ErrNoMemory
	}
	pm.nextID++
	pm.allocated++
	pm.allocs++
	return &Frame{ID: pm.nextID}, nil
}

// Free returns a frame to the allocator. The caller must hold the only
// remaining reference.
func (pm *PhysMemory) Free(f *Frame) {
	if f.refs != 0 {
		panic("mem: freeing frame with live references")
	}
	pm.allocated--
	pm.free = append(pm.free, f)
}

// Get increments a frame's reference count (a new PTE points at it).
func (pm *PhysMemory) Get(f *Frame) { f.refs++ }

// Put decrements a frame's reference count, freeing it at zero.
func (pm *PhysMemory) Put(f *Frame) {
	if f.refs <= 0 {
		panic("mem: Put on frame with no references")
	}
	f.refs--
	if f.refs == 0 {
		pm.Free(f)
	}
}

// Allocated reports the number of frames currently in use.
func (pm *PhysMemory) Allocated() uint64 { return pm.allocated }

// TotalAllocs reports the cumulative number of Alloc calls.
func (pm *PhysMemory) TotalAllocs() uint64 { return pm.allocs }
