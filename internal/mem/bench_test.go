package mem

import "testing"

// BenchmarkPageTableMapUnmap measures radix-tree insert+delete.
func BenchmarkPageTableMapUnmap(b *testing.B) {
	pt := NewPageTable()
	for i := 0; i < b.N; i++ {
		va := uint64(i%4096) << PageShift
		pt.Map(va, &PTE{})
		pt.Unmap(va)
	}
}

// BenchmarkTranslateHot measures a TLB-hot translation.
func BenchmarkTranslateHot(b *testing.B) {
	as := NewAddressSpace(NewPhysMemory(0), Costs{})
	addr, err := as.Mmap(PageSize, ProtRead|ProtWrite, "b", true, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := as.Translate(addr, false, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWrite4K measures a page-sized simulated memory write.
func BenchmarkWrite4K(b *testing.B) {
	as := NewAddressSpace(NewPhysMemory(0), Costs{})
	addr, _ := as.Mmap(PageSize, ProtRead|ProtWrite, "b", true, nil)
	buf := make([]byte, PageSize)
	b.SetBytes(PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := as.Write(addr, buf, nil); err != nil {
			b.Fatal(err)
		}
	}
}
