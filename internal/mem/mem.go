// Package mem implements the simulated virtual-memory system: physical
// frames, four-level page tables, virtual memory areas (VMAs), demand
// paging with minor/major fault accounting, and — the property PiP is
// built on — whole-address-space sharing between tasks.
//
// The package is passive: it never advances virtual time itself. Methods
// that incur hardware cost report it through the Charger interface so the
// kernel layer can bill the executing kernel context.
package mem

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// PageSize is the base page size (4 KiB), PageShift its log2.
const (
	PageShift = 12
	PageSize  = 1 << PageShift

	// HugePageShift/HugePageSize model 2 MiB huge pages, used by the
	// populated-mmap/huge-page discussion in the paper's §VII.
	HugePageShift = 21
	HugePageSize  = 1 << HugePageShift
)

// Prot is a page-protection bit set.
type Prot uint8

// Protection bits.
const (
	ProtRead Prot = 1 << iota
	ProtWrite
	ProtExec
)

// String implements fmt.Stringer in the familiar "rwx" form.
func (p Prot) String() string {
	b := []byte("---")
	if p&ProtRead != 0 {
		b[0] = 'r'
	}
	if p&ProtWrite != 0 {
		b[1] = 'w'
	}
	if p&ProtExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Errors reported by the memory system.
var (
	ErrSegfault      = errors.New("mem: segmentation fault")
	ErrProtViolation = errors.New("mem: protection violation")
	ErrNoMemory      = errors.New("mem: out of physical memory")
	ErrBadRange      = errors.New("mem: invalid address range")
	ErrOverlap       = errors.New("mem: mapping overlaps existing VMA")
)

// Charger receives virtual-time costs incurred by memory operations.
// The kernel's executing task implements it; a nil Charger discards
// costs (useful in pure-semantics tests).
type Charger interface {
	Charge(d sim.Duration)
}

// NopCharger discards all charges.
type NopCharger struct{}

// Charge implements Charger by doing nothing.
func (NopCharger) Charge(sim.Duration) {}

// charge bills c if non-nil.
func charge(c Charger, d sim.Duration) {
	if c != nil {
		c.Charge(d)
	}
}

// PageFloor rounds addr down to a page boundary.
func PageFloor(addr uint64) uint64 { return addr &^ (PageSize - 1) }

// PageCeil rounds addr up to a page boundary.
func PageCeil(addr uint64) uint64 { return (addr + PageSize - 1) &^ (PageSize - 1) }

// Canonical address-space layout constants (x86_64-like).
const (
	// TextBase is where the first loaded program image begins.
	TextBase = 0x0000_0000_0040_0000
	// MmapBase is the top of the downward-growing mmap region.
	MmapBase = 0x0000_7f00_0000_0000
	// StackTop is the top of the main stack region.
	StackTop = 0x0000_7fff_ffff_f000
	// AddrLimit is the first non-canonical user address.
	AddrLimit = 0x0000_8000_0000_0000
)

// fmtAddr renders an address for diagnostics.
func fmtAddr(a uint64) string { return fmt.Sprintf("0x%012x", a) }
