package mem

import (
	"fmt"
	"sort"
)

// VMAKind labels what a virtual memory area holds.
type VMAKind int

// VMA kinds.
const (
	VMAText VMAKind = iota
	VMAData
	VMAStack
	VMAHeap
	VMAAnon // anonymous mmap
	VMAFile // file-backed mmap
)

// String implements fmt.Stringer.
func (k VMAKind) String() string {
	switch k {
	case VMAText:
		return "text"
	case VMAData:
		return "data"
	case VMAStack:
		return "stack"
	case VMAHeap:
		return "heap"
	case VMAAnon:
		return "anon"
	case VMAFile:
		return "file"
	}
	return "?"
}

// VMA is one contiguous virtual memory area. Start/End are page aligned;
// End is exclusive.
type VMA struct {
	Start, End uint64
	Prot       Prot
	Kind       VMAKind
	Label      string // diagnostic: program/namespace that owns it

	// Populated means the area was pre-faulted at map time
	// (MAP_POPULATE); accesses never minor-fault. Central to the §VII
	// page-fault discussion.
	Populated bool

	// Huge backs the area with 2 MiB pages (MAP_HUGETLB): one fault
	// and one TLB entry cover 512 base pages — the other half of the
	// §VII discussion ("large (huge) memory pages and/or populated
	// mmap are prevalent ... they can reduce the number of page faults
	// as well as the number of TLB misses").
	Huge bool
}

// FaultGranularity is the number of bytes one fault populates.
func (v *VMA) FaultGranularity() uint64 {
	if v.Huge {
		return HugePageSize
	}
	return PageSize
}

// Len reports the area's size in bytes.
func (v *VMA) Len() uint64 { return v.End - v.Start }

// Contains reports whether addr falls inside the area.
func (v *VMA) Contains(addr uint64) bool { return addr >= v.Start && addr < v.End }

// String implements fmt.Stringer.
func (v *VMA) String() string {
	return fmt.Sprintf("%s-%s %s %s %s", fmtAddr(v.Start), fmtAddr(v.End), v.Prot, v.Kind, v.Label)
}

// vmaSet is an ordered, non-overlapping set of VMAs.
type vmaSet struct {
	areas []*VMA // sorted by Start
}

// find returns the VMA containing addr, or nil.
func (s *vmaSet) find(addr uint64) *VMA {
	i := sort.Search(len(s.areas), func(i int) bool { return s.areas[i].End > addr })
	if i < len(s.areas) && s.areas[i].Contains(addr) {
		return s.areas[i]
	}
	return nil
}

// overlaps reports whether [start,end) intersects any existing area.
func (s *vmaSet) overlaps(start, end uint64) bool {
	i := sort.Search(len(s.areas), func(i int) bool { return s.areas[i].End > start })
	return i < len(s.areas) && s.areas[i].Start < end
}

// insert adds a VMA, keeping order. Caller must have checked overlap.
func (s *vmaSet) insert(v *VMA) {
	i := sort.Search(len(s.areas), func(i int) bool { return s.areas[i].Start >= v.Start })
	s.areas = append(s.areas, nil)
	copy(s.areas[i+1:], s.areas[i:])
	s.areas[i] = v
}

// remove deletes the exact VMA v.
func (s *vmaSet) remove(v *VMA) bool {
	for i, a := range s.areas {
		if a == v {
			s.areas = append(s.areas[:i], s.areas[i+1:]...)
			return true
		}
	}
	return false
}

// gapAbove finds the highest page-aligned start < limit such that
// [start, start+size) is free, searching downward (mmap-style).
// Returns 0 if no gap exists.
func (s *vmaSet) gapBelow(limit, size uint64) uint64 {
	end := limit
	// Walk areas from the top down.
	for i := len(s.areas) - 1; i >= 0; i-- {
		a := s.areas[i]
		if a.End <= end {
			if end-a.End >= size && end >= size {
				return end - size
			}
			end = a.Start
		} else if a.Start < end {
			end = a.Start
		}
	}
	if end >= size {
		return end - size
	}
	return 0
}
