package mem

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testCosts() Costs {
	return Costs{
		MinorFault: 1000 * sim.Nanosecond,
		MajorFault: 3000 * sim.Nanosecond,
		TLBMiss:    40 * sim.Nanosecond,
		CopyBytePS: 100,
	}
}

type countCharger struct{ total sim.Duration }

func (c *countCharger) Charge(d sim.Duration) { c.total += d }

func newSpace() *AddressSpace {
	return NewAddressSpace(NewPhysMemory(0), testCosts())
}

func TestMmapReadWriteRoundTrip(t *testing.T) {
	as := newSpace()
	addr, err := as.Mmap(3*PageSize, ProtRead|ProtWrite, "test", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hello, address space")
	if err := as.Write(addr+100, data, nil); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if err := as.Read(addr+100, buf, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Errorf("read %q, want %q", buf, data)
	}
}

func TestWriteAcrossPageBoundary(t *testing.T) {
	as := newSpace()
	addr, _ := as.Mmap(2*PageSize, ProtRead|ProtWrite, "t", false, nil)
	data := make([]byte, 300)
	for i := range data {
		data[i] = byte(i)
	}
	start := addr + PageSize - 150 // straddles the boundary
	if err := as.Write(start, data, nil); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 300)
	if err := as.Read(start, buf, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Error("boundary-straddling round trip corrupted data")
	}
}

func TestSegfaultOnUnmapped(t *testing.T) {
	as := newSpace()
	err := as.Write(0xdead000, []byte{1}, nil)
	if !errors.Is(err, ErrSegfault) {
		t.Errorf("err = %v, want ErrSegfault", err)
	}
}

func TestProtViolation(t *testing.T) {
	as := newSpace()
	addr, _ := as.Mmap(PageSize, ProtRead, "ro", false, nil)
	err := as.Write(addr, []byte{1}, nil)
	if !errors.Is(err, ErrProtViolation) {
		t.Errorf("write to read-only: err = %v, want ErrProtViolation", err)
	}
	// Reading must still work.
	if err := as.Read(addr, make([]byte, 1), nil); err != nil {
		t.Errorf("read of read-only failed: %v", err)
	}
}

func TestMinorFaultOncePerPage(t *testing.T) {
	as := newSpace()
	addr, _ := as.Mmap(4*PageSize, ProtRead|ProtWrite, "t", false, nil)
	for i := 0; i < 10; i++ {
		if err := as.Write(addr, []byte{byte(i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := as.Stats().MinorFaults; got != 1 {
		t.Errorf("MinorFaults = %d after repeated access to one page, want 1", got)
	}
	// Touch the remaining pages.
	for p := uint64(1); p < 4; p++ {
		as.Write(addr+p*PageSize, []byte{1}, nil)
	}
	if got := as.Stats().MinorFaults; got != 4 {
		t.Errorf("MinorFaults = %d, want 4", got)
	}
}

func TestPopulatedMappingNeverFaultsLater(t *testing.T) {
	as := newSpace()
	ch := &countCharger{}
	addr, err := as.Mmap(8*PageSize, ProtRead|ProtWrite, "pop", true, ch)
	if err != nil {
		t.Fatal(err)
	}
	if got := as.Stats().MinorFaults; got != 8 {
		t.Fatalf("populate faulted %d pages, want 8", got)
	}
	paid := ch.total
	if paid < 8*testCosts().MinorFault {
		t.Errorf("populate charged %v, want >= %v", paid, 8*testCosts().MinorFault)
	}
	// Subsequent access adds no faults.
	as.Write(addr+5*PageSize, []byte{1}, nil)
	if got := as.Stats().MinorFaults; got != 8 {
		t.Errorf("MinorFaults grew to %d after access to populated area", got)
	}
}

// TestSharedSpaceFaultsOncePerPageTotal reproduces the paper's §IV claim:
// with address-space sharing, minor faults happen once per page in the
// address space regardless of how many tasks share it, whereas with the
// shared-memory model every attached space faults every page itself.
func TestSharedSpaceFaultsOncePerPageTotal(t *testing.T) {
	phys := NewPhysMemory(0)

	// Address-space sharing: N "tasks" all use the same space.
	shared := NewAddressSpace(phys, testCosts())
	addr, _ := shared.Mmap(16*PageSize, ProtRead|ProtWrite, "data", false, nil)
	for task := 0; task < 4; task++ {
		for p := uint64(0); p < 16; p++ {
			shared.Write(addr+p*PageSize, []byte{byte(task)}, nil)
		}
	}
	if got := shared.Stats().MinorFaults; got != 16 {
		t.Errorf("address-space sharing: %d faults, want 16 (once per page)", got)
	}

	// Shared-memory model: each process has its own space and maps the
	// same physical pages.
	src := NewAddressSpace(phys, testCosts())
	srcAddr, _ := src.Mmap(16*PageSize, ProtRead|ProtWrite, "shm", true, nil)
	faults := src.Stats().MinorFaults
	for proc := 0; proc < 3; proc++ {
		dst := NewAddressSpace(phys, testCosts())
		if err := src.ShareMapping(dst, srcAddr, 16*PageSize, srcAddr, ProtRead|ProtWrite, nil); err != nil {
			t.Fatal(err)
		}
		faults += dst.Stats().MinorFaults
	}
	if faults != 16*4 {
		t.Errorf("shared-memory model: %d faults total, want 64 (per process per page)", faults)
	}
}

func TestShareMappingSharesFrames(t *testing.T) {
	phys := NewPhysMemory(0)
	a := NewAddressSpace(phys, testCosts())
	b := NewAddressSpace(phys, testCosts())
	addr, _ := a.Mmap(PageSize, ProtRead|ProtWrite, "shm", true, nil)
	if err := a.ShareMapping(b, addr, PageSize, addr, ProtRead|ProtWrite, nil); err != nil {
		t.Fatal(err)
	}
	// A write through one space is visible through the other (same frame).
	if err := a.Write(addr, []byte("ping"), nil); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if err := b.Read(addr, buf, nil); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ping" {
		t.Errorf("read %q through sharing space, want ping", buf)
	}
}

func TestMunmapFreesFrames(t *testing.T) {
	phys := NewPhysMemory(0)
	as := NewAddressSpace(phys, testCosts())
	addr, _ := as.Mmap(4*PageSize, ProtRead|ProtWrite, "t", true, nil)
	if phys.Allocated() != 4 {
		t.Fatalf("allocated = %d, want 4", phys.Allocated())
	}
	if err := as.Munmap(addr, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	if phys.Allocated() != 0 {
		t.Errorf("allocated = %d after munmap, want 0", phys.Allocated())
	}
	if err := as.Write(addr, []byte{1}, nil); !errors.Is(err, ErrSegfault) {
		t.Errorf("access after munmap: err = %v, want ErrSegfault", err)
	}
}

func TestMmapPlacementsDisjoint(t *testing.T) {
	as := newSpace()
	type r struct{ lo, hi uint64 }
	var regions []r
	for i := 0; i < 20; i++ {
		size := uint64((i%3 + 1)) * PageSize
		addr, err := as.Mmap(size, ProtRead|ProtWrite, "t", false, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range regions {
			if addr < o.hi && o.lo < addr+size {
				t.Fatalf("mmap overlap: [%x,%x) vs [%x,%x)", addr, addr+size, o.lo, o.hi)
			}
		}
		regions = append(regions, r{addr, addr + size})
	}
}

func TestMapRegionOverlapRejected(t *testing.T) {
	as := newSpace()
	if _, err := as.MapRegion(TextBase, 2*PageSize, ProtRead, VMAText, "a", false, nil); err != nil {
		t.Fatal(err)
	}
	_, err := as.MapRegion(TextBase+PageSize, 2*PageSize, ProtRead, VMAText, "b", false, nil)
	if !errors.Is(err, ErrOverlap) {
		t.Errorf("err = %v, want ErrOverlap", err)
	}
}

func TestProtectAppliesToVMAAndPTEs(t *testing.T) {
	as := newSpace()
	addr, _ := as.Mmap(PageSize, ProtRead|ProtWrite, "t", true, nil)
	if err := as.Protect(addr, ProtRead); err != nil {
		t.Fatal(err)
	}
	if err := as.Write(addr, []byte{1}, nil); !errors.Is(err, ErrProtViolation) {
		t.Errorf("write after mprotect: err = %v, want ErrProtViolation", err)
	}
}

func TestU64RoundTrip(t *testing.T) {
	as := newSpace()
	addr, _ := as.Mmap(PageSize, ProtRead|ProtWrite, "t", false, nil)
	f := func(v uint64, off uint16) bool {
		o := uint64(off % (PageSize - 8))
		if err := as.WriteU64(addr+o, v, nil); err != nil {
			return false
		}
		got, err := as.ReadU64(addr+o, nil)
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfPhysicalMemory(t *testing.T) {
	phys := NewPhysMemory(2)
	as := NewAddressSpace(phys, testCosts())
	_, err := as.Mmap(3*PageSize, ProtRead|ProtWrite, "big", true, nil)
	if !errors.Is(err, ErrNoMemory) {
		t.Errorf("err = %v, want ErrNoMemory", err)
	}
}

func TestFrameRecyclingZeroes(t *testing.T) {
	phys := NewPhysMemory(1)
	as := NewAddressSpace(phys, testCosts())
	addr, _ := as.Mmap(PageSize, ProtRead|ProtWrite, "a", false, nil)
	as.Write(addr, []byte{0xff}, nil)
	as.Munmap(addr, PageSize)
	addr2, err := as.Mmap(PageSize, ProtRead|ProtWrite, "b", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	as.Read(addr2, buf, nil)
	if buf[0] != 0 {
		t.Error("recycled frame was not zeroed")
	}
}

func TestAttachDetach(t *testing.T) {
	as := newSpace()
	as.Attach()
	as.Attach()
	if as.Attached() != 2 {
		t.Errorf("Attached = %d, want 2", as.Attached())
	}
	as.Detach()
	as.Detach()
	defer func() {
		if recover() == nil {
			t.Error("Detach below zero did not panic")
		}
	}()
	as.Detach()
}

func TestChargerBilled(t *testing.T) {
	as := newSpace()
	ch := &countCharger{}
	addr, _ := as.Mmap(PageSize, ProtRead|ProtWrite, "t", false, nil)
	data := make([]byte, 1000)
	if err := as.Write(addr, data, ch); err != nil {
		t.Fatal(err)
	}
	// Must include at least one minor fault + copy time for 1000 bytes.
	wantMin := testCosts().MinorFault + sim.Duration(testCosts().CopyBytePS*1000)
	if ch.total < wantMin {
		t.Errorf("charged %v, want >= %v", ch.total, wantMin)
	}
}
