package mem

import "testing"

func TestHugeMappingFaultsOncePer2MiB(t *testing.T) {
	as := newSpace()
	const size = 2 * HugePageSize
	addr, err := as.MmapHuge(size, ProtRead|ProtWrite, "huge", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if addr%HugePageSize != 0 {
		t.Fatalf("huge mapping at %#x not 2MiB aligned", addr)
	}
	// Touch every base page of the first huge page: exactly one fault.
	for off := uint64(0); off < HugePageSize; off += PageSize {
		if err := as.Write(addr+off, []byte{1}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := as.Stats().MinorFaults; got != 1 {
		t.Errorf("faults after touching 512 base pages = %d, want 1", got)
	}
	// Touch the second huge page: one more.
	as.Write(addr+HugePageSize, []byte{1}, nil)
	if got := as.Stats().MinorFaults; got != 2 {
		t.Errorf("faults = %d, want 2", got)
	}
}

func TestHugeVsBaseFaultCount(t *testing.T) {
	// §VII: huge pages reduce the number of page faults (here by 512x).
	const size = 4 * HugePageSize

	base := newSpace()
	a1, _ := base.Mmap(size, ProtRead|ProtWrite, "base", false, nil)
	for off := uint64(0); off < size; off += PageSize {
		base.Write(a1+off, []byte{1}, nil)
	}

	huge := newSpace()
	a2, _ := huge.MmapHuge(size, ProtRead|ProtWrite, "huge", false, nil)
	for off := uint64(0); off < size; off += PageSize {
		huge.Write(a2+off, []byte{1}, nil)
	}

	bf, hf := base.Stats().MinorFaults, huge.Stats().MinorFaults
	if bf != size/PageSize {
		t.Errorf("base faults = %d, want %d", bf, size/PageSize)
	}
	if hf != size/HugePageSize {
		t.Errorf("huge faults = %d, want %d", hf, size/HugePageSize)
	}
}

func TestHugeReducesTLBMisses(t *testing.T) {
	const size = 8 * HugePageSize // exceeds the 64-entry base-page TLB reach

	walk := func(huge bool) uint64 {
		as := newSpace()
		var addr uint64
		if huge {
			addr, _ = as.MmapHuge(size, ProtRead|ProtWrite, "h", true, nil)
		} else {
			addr, _ = as.Mmap(size, ProtRead|ProtWrite, "b", true, nil)
		}
		// Two sequential sweeps; the second reuses TLB entries only if
		// the working set fits.
		for pass := 0; pass < 2; pass++ {
			for off := uint64(0); off < size; off += PageSize {
				as.Read(addr+off, make([]byte, 1), nil)
			}
		}
		return as.Stats().TLBMisses
	}

	baseMisses, hugeMisses := walk(false), walk(true)
	if hugeMisses*64 > baseMisses {
		t.Errorf("huge pages did not reduce TLB misses: base=%d huge=%d", baseMisses, hugeMisses)
	}
}

func TestHugePopulatedNeverFaultsLater(t *testing.T) {
	as := newSpace()
	ch := &countCharger{}
	addr, err := as.MmapHuge(HugePageSize, ProtRead|ProtWrite, "hp", true, ch)
	if err != nil {
		t.Fatal(err)
	}
	if got := as.Stats().MinorFaults; got != 1 {
		t.Fatalf("populate faults = %d, want 1", got)
	}
	as.Write(addr+123*PageSize, []byte{7}, nil)
	if got := as.Stats().MinorFaults; got != 1 {
		t.Errorf("faults grew to %d after access to populated huge area", got)
	}
}

func TestHugeMunmapFreesAllFrames(t *testing.T) {
	phys := NewPhysMemory(0)
	as := NewAddressSpace(phys, testCosts())
	addr, _ := as.MmapHuge(HugePageSize, ProtRead|ProtWrite, "h", true, nil)
	if phys.Allocated() != HugePageSize/PageSize {
		t.Fatalf("allocated = %d", phys.Allocated())
	}
	if err := as.Munmap(addr, HugePageSize); err != nil {
		t.Fatal(err)
	}
	if phys.Allocated() != 0 {
		t.Errorf("allocated = %d after munmap", phys.Allocated())
	}
}
