package mem

import (
	"testing"
	"testing/quick"
)

func TestPageTableMapLookupUnmap(t *testing.T) {
	pt := NewPageTable()
	va := uint64(0x7f12_3456_7000)
	pte := &PTE{Frame: &Frame{ID: 1}, Prot: ProtRead | ProtWrite}
	pt.Map(va, pte)
	if got := pt.Lookup(va); got != pte {
		t.Fatal("Lookup did not return mapped PTE")
	}
	if got := pt.Lookup(va + PageSize); got != nil {
		t.Fatal("Lookup of unmapped page returned a PTE")
	}
	if pt.Mapped() != 1 {
		t.Errorf("Mapped = %d, want 1", pt.Mapped())
	}
	if got := pt.Unmap(va); got != pte {
		t.Fatal("Unmap did not return the PTE")
	}
	if pt.Lookup(va) != nil {
		t.Fatal("PTE survived Unmap")
	}
	if pt.Mapped() != 0 {
		t.Errorf("Mapped = %d after unmap, want 0", pt.Mapped())
	}
}

func TestPageTableDoubleMapPanics(t *testing.T) {
	pt := NewPageTable()
	pt.Map(0x1000, &PTE{})
	defer func() {
		if recover() == nil {
			t.Error("double Map did not panic")
		}
	}()
	pt.Map(0x1000, &PTE{})
}

func TestPageTableUnmapMissing(t *testing.T) {
	pt := NewPageTable()
	if pt.Unmap(0x5000) != nil {
		t.Error("Unmap of unmapped page returned non-nil")
	}
}

func TestPageTablePruning(t *testing.T) {
	pt := NewPageTable()
	pt.Map(0x1000, &PTE{})
	pt.Unmap(0x1000)
	// After pruning, the root must have no children.
	if pt.root.live != 0 {
		t.Errorf("root.live = %d after full unmap, want 0", pt.root.live)
	}
}

func TestPageTableDistinctTopLevelIndices(t *testing.T) {
	// Addresses that differ only in high bits use different PGD slots.
	pt := NewPageTable()
	a := uint64(0x0000_0000_0040_0000)
	b := uint64(0x0000_7f00_0000_0000)
	pt.Map(a, &PTE{Frame: &Frame{ID: 1}})
	pt.Map(b, &PTE{Frame: &Frame{ID: 2}})
	if pt.Lookup(a).Frame.ID != 1 || pt.Lookup(b).Frame.ID != 2 {
		t.Fatal("cross-talk between distant addresses")
	}
}

// Property: for any set of distinct pages, map-then-lookup returns the
// right PTE and unmap-all leaves the table empty.
func TestPageTableProperty(t *testing.T) {
	f := func(pages []uint16) bool {
		pt := NewPageTable()
		seen := map[uint64]*PTE{}
		for _, p := range pages {
			va := uint64(p) << PageShift
			if _, dup := seen[va]; dup {
				continue
			}
			pte := &PTE{Frame: &Frame{ID: va}}
			pt.Map(va, pte)
			seen[va] = pte
		}
		if pt.Mapped() != uint64(len(seen)) {
			return false
		}
		for va, pte := range seen {
			if pt.Lookup(va) != pte {
				return false
			}
		}
		for va := range seen {
			if pt.Unmap(va) == nil {
				return false
			}
		}
		return pt.Mapped() == 0 && pt.root.live == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPageTableRangeOrdered(t *testing.T) {
	pt := NewPageTable()
	vas := []uint64{0x7f00_0000_0000, 0x40_0000, 0x41_0000, 0x7fff_ffff_f000 - PageSize}
	for _, va := range vas {
		pt.Map(va, &PTE{Frame: &Frame{ID: va}})
	}
	var got []uint64
	pt.Range(func(va uint64, pte *PTE) bool {
		got = append(got, va)
		return true
	})
	if len(got) != len(vas) {
		t.Fatalf("Range visited %d pages, want %d", len(got), len(vas))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("Range not ascending: %x", got)
		}
	}
}
