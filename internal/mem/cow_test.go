package mem

import "testing"

func TestForkCoWIsolation(t *testing.T) {
	phys := NewPhysMemory(0)
	parent := NewAddressSpace(phys, testCosts())
	addr, _ := parent.Mmap(2*PageSize, ProtRead|ProtWrite, "d", true, nil)
	parent.Write(addr, []byte("parent-data"), nil)

	child := parent.ForkCoW(nil)

	// The child sees the pre-fork contents.
	buf := make([]byte, 11)
	if err := child.Read(addr, buf, nil); err != nil || string(buf) != "parent-data" {
		t.Fatalf("child read = %q, %v", buf, err)
	}
	// Child writes do not affect the parent...
	child.Write(addr, []byte("child-data!"), nil)
	parent.Read(addr, buf, nil)
	if string(buf) != "parent-data" {
		t.Errorf("parent sees child write: %q", buf)
	}
	// ...and parent writes do not affect the child.
	parent.Write(addr, []byte("parent-two!"), nil)
	child.Read(addr, buf, nil)
	if string(buf) != "child-data!" {
		t.Errorf("child sees parent write: %q", buf)
	}
}

func TestForkCoWSharesUntilWrite(t *testing.T) {
	phys := NewPhysMemory(0)
	parent := NewAddressSpace(phys, testCosts())
	const pages = 8
	addr, _ := parent.Mmap(pages*PageSize, ProtRead|ProtWrite, "d", true, nil)
	if phys.Allocated() != pages {
		t.Fatalf("allocated = %d", phys.Allocated())
	}
	child := parent.ForkCoW(nil)
	// Fork allocates no frames.
	if phys.Allocated() != pages {
		t.Errorf("fork allocated frames: %d", phys.Allocated())
	}
	// Reads copy nothing.
	child.Read(addr, make([]byte, PageSize), nil)
	if phys.Allocated() != pages {
		t.Errorf("read broke COW: %d", phys.Allocated())
	}
	// One write copies exactly one page.
	child.Write(addr, []byte{1}, nil)
	if phys.Allocated() != pages+1 {
		t.Errorf("after one write: %d frames, want %d", phys.Allocated(), pages+1)
	}
	// Writing the same page again copies nothing further.
	child.Write(addr+8, []byte{2}, nil)
	if phys.Allocated() != pages+1 {
		t.Errorf("second write copied again: %d", phys.Allocated())
	}
}

func TestForkCoWLastOwnerSkipsCopy(t *testing.T) {
	phys := NewPhysMemory(0)
	parent := NewAddressSpace(phys, testCosts())
	addr, _ := parent.Mmap(PageSize, ProtRead|ProtWrite, "d", true, nil)
	child := parent.ForkCoW(nil)
	// Child releases its mapping: the parent becomes sole owner.
	if err := child.Munmap(addr, PageSize); err != nil {
		t.Fatal(err)
	}
	before := phys.Allocated()
	parent.Write(addr, []byte{1}, nil) // breaks COW without copying
	if phys.Allocated() != before {
		t.Errorf("sole-owner write allocated a frame")
	}
}

func TestForkCoWChargesLazily(t *testing.T) {
	phys := NewPhysMemory(0)
	parent := NewAddressSpace(phys, testCosts())
	const pages = 64
	addr, _ := parent.Mmap(pages*PageSize, ProtRead|ProtWrite, "d", true, nil)
	forkCh := &countCharger{}
	child := parent.ForkCoW(forkCh)
	// Fork cost: one walk per page, far below faulting costs.
	if forkCh.total >= pages*testCosts().MinorFault {
		t.Errorf("fork charged %v, want << %v", forkCh.total, pages*testCosts().MinorFault)
	}
	writeCh := &countCharger{}
	child.Write(addr, []byte{1}, writeCh)
	if writeCh.total < testCosts().MinorFault {
		t.Errorf("COW break charged %v, want >= a fault", writeCh.total)
	}
}

func TestGrandchildForkChain(t *testing.T) {
	phys := NewPhysMemory(0)
	a := NewAddressSpace(phys, testCosts())
	addr, _ := a.Mmap(PageSize, ProtRead|ProtWrite, "d", true, nil)
	a.Write(addr, []byte{7}, nil)
	b := a.ForkCoW(nil)
	c := b.ForkCoW(nil)
	// Three spaces share one frame; each write isolates one of them.
	c.Write(addr, []byte{9}, nil)
	buf := make([]byte, 1)
	a.Read(addr, buf, nil)
	if buf[0] != 7 {
		t.Errorf("a = %d", buf[0])
	}
	b.Read(addr, buf, nil)
	if buf[0] != 7 {
		t.Errorf("b = %d", buf[0])
	}
	c.Read(addr, buf, nil)
	if buf[0] != 9 {
		t.Errorf("c = %d", buf[0])
	}
}
