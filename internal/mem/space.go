package mem

import (
	"fmt"
	"sync/atomic"

	"repro/internal/sim"
)

// Costs are the memory-system cost parameters, filled in from the machine
// model by the kernel layer.
type Costs struct {
	MinorFault sim.Duration // install a PTE for an anonymous page
	MajorFault sim.Duration // additionally fetch/zero backing content
	TLBMiss    sim.Duration // hardware page walk
	CopyBytePS float64      // per-byte copy cost (picoseconds)
}

// Stats counts memory events per address space.
type Stats struct {
	MinorFaults  uint64
	MajorFaults  uint64
	TLBMisses    uint64
	BytesRead    uint64
	BytesWritten uint64
}

// AddressSpace is one virtual address space: a page table plus a VMA set.
//
// PiP's address-space sharing is modeled by several tasks holding a
// pointer to the *same* AddressSpace — exactly one page table, so a page
// faulted in by one task is visible to all (minor faults happen once per
// page regardless of how many tasks share the space; contrast with the
// shared-memory model, where ShareMapping duplicates PTEs into other
// spaces and every space takes its own faults).
type AddressSpace struct {
	ID    uint64
	phys  *PhysMemory
	pt    *PageTable
	vmas  vmaSet
	costs Costs
	stats Stats
	tlb   *TLB

	attached int // tasks currently using this space
}

// nextSpaceID is atomic: independent simulations may stand up kernels
// concurrently (the bench sweep pool). IDs only need to be unique — they
// key futex words within one kernel and are never ordered or printed.
var nextSpaceID atomic.Uint64

// NewAddressSpace creates an empty space over the given physical memory.
func NewAddressSpace(phys *PhysMemory, costs Costs) *AddressSpace {
	return &AddressSpace{
		ID:    nextSpaceID.Add(1),
		phys:  phys,
		pt:    NewPageTable(),
		costs: costs,
		tlb:   NewTLB(64),
	}
}

// Attach records that one more task uses this space.
func (as *AddressSpace) Attach() { as.attached++ }

// Detach records that a task stopped using this space.
func (as *AddressSpace) Detach() {
	if as.attached <= 0 {
		panic("mem: Detach without Attach")
	}
	as.attached--
}

// Attached reports the number of tasks sharing the space.
func (as *AddressSpace) Attached() int { return as.attached }

// Stats returns a copy of the space's counters.
func (as *AddressSpace) Stats() Stats { return as.stats }

// PageTable exposes the underlying table (read-mostly, for tests and the
// loader).
func (as *AddressSpace) PageTable() *PageTable { return as.pt }

// VMAs returns the areas in address order.
func (as *AddressSpace) VMAs() []*VMA {
	out := make([]*VMA, len(as.vmas.areas))
	copy(out, as.vmas.areas)
	return out
}

// FindVMA returns the area containing addr, or nil.
func (as *AddressSpace) FindVMA(addr uint64) *VMA { return as.vmas.find(addr) }

// MapRegion creates a VMA at a fixed address (loader use). If populated,
// all pages are faulted in immediately and the per-page fault cost is
// charged to c.
func (as *AddressSpace) MapRegion(start, size uint64, prot Prot, kind VMAKind, label string, populated bool, c Charger) (*VMA, error) {
	return as.mapRegion(start, size, prot, kind, label, populated, false, c)
}

func (as *AddressSpace) mapRegion(start, size uint64, prot Prot, kind VMAKind, label string, populated, huge bool, c Charger) (*VMA, error) {
	align := uint64(PageSize)
	if huge {
		align = HugePageSize
	}
	if start%align != 0 || size == 0 {
		return nil, ErrBadRange
	}
	size = (size + align - 1) &^ (align - 1)
	end := start + size
	if end > AddrLimit || end <= start {
		return nil, ErrBadRange
	}
	if as.vmas.overlaps(start, end) {
		return nil, fmt.Errorf("%w: %s+%#x", ErrOverlap, fmtAddr(start), size)
	}
	v := &VMA{Start: start, End: end, Prot: prot, Kind: kind, Label: label, Populated: populated, Huge: huge}
	as.vmas.insert(v)
	if populated {
		for va := start; va < end; va += v.FaultGranularity() {
			if err := as.populate(va, v, c); err != nil {
				return nil, err
			}
		}
	}
	return v, nil
}

// Mmap creates an anonymous mapping of size bytes in the mmap region,
// searching downward from MmapBase, and returns its start address.
func (as *AddressSpace) Mmap(size uint64, prot Prot, label string, populated bool, c Charger) (uint64, error) {
	size = PageCeil(size)
	if size == 0 {
		return 0, ErrBadRange
	}
	start := as.vmas.gapBelow(MmapBase, size)
	if start == 0 {
		return 0, ErrNoMemory
	}
	if _, err := as.MapRegion(start, size, prot, VMAAnon, label, populated, c); err != nil {
		return 0, err
	}
	return start, nil
}

// MmapHuge creates an anonymous MAP_HUGETLB mapping backed by 2 MiB
// pages. Size and placement are huge-page aligned.
func (as *AddressSpace) MmapHuge(size uint64, prot Prot, label string, populated bool, c Charger) (uint64, error) {
	size = (size + HugePageSize - 1) &^ uint64(HugePageSize-1)
	if size == 0 {
		return 0, ErrBadRange
	}
	start := as.vmas.gapBelow(MmapBase, size+HugePageSize)
	if start == 0 {
		return 0, ErrNoMemory
	}
	start = start &^ uint64(HugePageSize-1) // align down inside the gap
	if as.vmas.overlaps(start, start+size) {
		return 0, ErrNoMemory
	}
	if _, err := as.mapRegion(start, size, prot, VMAAnon, label, populated, true, c); err != nil {
		return 0, err
	}
	return start, nil
}

// Munmap removes the VMA exactly covering [start, start+size) and frees
// its frames.
func (as *AddressSpace) Munmap(start, size uint64) error {
	v := as.vmas.find(start)
	if v == nil || v.Start != start || v.Len() != PageCeil(size) {
		return ErrBadRange
	}
	for va := v.Start; va < v.End; va += PageSize {
		if pte := as.pt.Unmap(va); pte != nil {
			as.tlb.Invalidate(va)
			as.phys.Put(pte.Frame)
		}
	}
	if v.Huge {
		// Huge-page areas cache huge-granule TLB keys.
		for va := v.Start; va < v.End; va += HugePageSize {
			as.tlb.Invalidate(va)
		}
	}
	as.vmas.remove(v)
	return nil
}

// Protect changes the protection of the VMA containing addr (whole-VMA
// mprotect; sufficient for the loader's needs).
func (as *AddressSpace) Protect(addr uint64, prot Prot) error {
	v := as.vmas.find(addr)
	if v == nil {
		return ErrSegfault
	}
	v.Prot = prot
	for va := v.Start; va < v.End; va += PageSize {
		if pte := as.pt.Lookup(va); pte != nil {
			pte.Prot = prot
		}
	}
	return nil
}

// populate services one fault at va inside VMA v: it maps the whole
// fault granule (one base page, or 512 of them under a huge-page VMA)
// and charges a single minor fault (anonymous) or major fault
// (file-backed) — huge pages exist precisely to amortize faults.
func (as *AddressSpace) populate(va uint64, v *VMA, c Charger) error {
	gran := v.FaultGranularity()
	base := va &^ (gran - 1)
	for page := base; page < base+gran && page < v.End; page += PageSize {
		if as.pt.Lookup(page) != nil {
			continue
		}
		frame, err := as.phys.Alloc()
		if err != nil {
			return err
		}
		as.phys.Get(frame)
		as.pt.Map(page, &PTE{Frame: frame, Prot: v.Prot})
	}
	if v.Kind == VMAFile {
		as.stats.MajorFaults++
		charge(c, as.costs.MajorFault)
	} else {
		as.stats.MinorFaults++
		charge(c, as.costs.MinorFault)
	}
	return nil
}

// Translate resolves va to its PTE, faulting the page in on demand. The
// write flag selects the required permission. TLB hits are free; misses
// charge a page walk.
func (as *AddressSpace) Translate(va uint64, write bool, c Charger) (*PTE, error) {
	v := as.vmas.find(va)
	if v == nil {
		return nil, fmt.Errorf("%w at %s", ErrSegfault, fmtAddr(va))
	}
	need := ProtRead
	if write {
		need = ProtWrite
	}
	if v.Prot&need == 0 {
		return nil, fmt.Errorf("%w: %s access to %s VMA at %s", ErrProtViolation, need, v.Prot, fmtAddr(va))
	}
	// One TLB entry covers the VMA's translation granule: huge-page
	// areas need 512x fewer entries (and walks).
	gran := v.FaultGranularity()
	tlbKey := va &^ (gran - 1)
	if !as.tlb.Hit(tlbKey) {
		as.stats.TLBMisses++
		charge(c, as.costs.TLBMiss)
		as.tlb.Insert(tlbKey)
	}
	page := PageFloor(va)
	pte := as.pt.Lookup(page)
	if pte == nil {
		if err := as.populate(page, v, c); err != nil {
			return nil, err
		}
		pte = as.pt.Lookup(page)
	}
	pte.Accessed = true
	if write {
		if pte.COW {
			if err := as.breakCoW(pte, c); err != nil {
				return nil, err
			}
		}
		pte.Dirty = true
	}
	return pte, nil
}

// Write copies data into the space at va, faulting pages as needed and
// charging copy time.
func (as *AddressSpace) Write(va uint64, data []byte, c Charger) error {
	off := 0
	for off < len(data) {
		cur := va + uint64(off)
		pte, err := as.Translate(cur, true, c)
		if err != nil {
			return err
		}
		pageOff := cur & (PageSize - 1)
		n := copy(pte.Frame.Data()[pageOff:], data[off:])
		off += n
	}
	as.stats.BytesWritten += uint64(len(data))
	charge(c, sim.Duration(as.costs.CopyBytePS*float64(len(data))))
	return nil
}

// Read copies len(buf) bytes from the space at va into buf.
func (as *AddressSpace) Read(va uint64, buf []byte, c Charger) error {
	off := 0
	for off < len(buf) {
		cur := va + uint64(off)
		pte, err := as.Translate(cur, false, c)
		if err != nil {
			return err
		}
		pageOff := cur & (PageSize - 1)
		n := copy(buf[off:], pte.Frame.Data()[pageOff:])
		off += n
	}
	as.stats.BytesRead += uint64(len(buf))
	charge(c, sim.Duration(as.costs.CopyBytePS*float64(len(buf))))
	return nil
}

// WriteU64 stores a little-endian uint64 at va.
func (as *AddressSpace) WriteU64(va uint64, val uint64, c Charger) error {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(val >> (8 * i))
	}
	return as.Write(va, b[:], c)
}

// ReadU64 loads a little-endian uint64 from va.
func (as *AddressSpace) ReadU64(va uint64, c Charger) (uint64, error) {
	var b [8]byte
	if err := as.Read(va, b[:], c); err != nil {
		return 0, err
	}
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v, nil
}

// ForkCoW creates a copy-on-write duplicate of the address space — the
// classical fork(2) semantics PiP's shared-space spawn is an alternative
// to. Every mapped page is shared read-only between parent and child;
// the first write on either side (while the frame is still shared)
// copies the page. The fork itself charges only the page-table copy
// (one walk-cost per mapped page), which is why fork is cheap and the
// copies are lazy.
func (as *AddressSpace) ForkCoW(c Charger) *AddressSpace {
	dst := NewAddressSpace(as.phys, as.costs)
	for _, v := range as.vmas.areas {
		cp := *v
		dst.vmas.insert(&cp)
	}
	as.pt.Range(func(va uint64, pte *PTE) bool {
		pte.COW = true
		as.phys.Get(pte.Frame)
		dst.pt.Map(va, &PTE{Frame: pte.Frame, Prot: pte.Prot, COW: true})
		charge(c, as.costs.TLBMiss) // copying one PTE ~ one table walk
		return true
	})
	// Writable cached translations of the parent are now stale (writes
	// must trap to break COW).
	as.tlb.Flush()
	return dst
}

// breakCoW gives the PTE a private copy of its frame (or exclusive
// ownership if nobody else references it anymore).
func (as *AddressSpace) breakCoW(pte *PTE, c Charger) error {
	if pte.Frame.Refs() == 1 {
		pte.COW = false
		return nil
	}
	fresh, err := as.phys.Alloc()
	if err != nil {
		return err
	}
	as.phys.Get(fresh)
	copy(fresh.Data(), pte.Frame.Data())
	as.phys.Put(pte.Frame)
	pte.Frame = fresh
	pte.COW = false
	as.stats.MinorFaults++ // the COW write fault
	charge(c, as.costs.MinorFault+sim.Duration(as.costs.CopyBytePS*PageSize))
	return nil
}

// ShareMapping maps the frames backing [start, start+size) of this space
// into dst at the address dstStart, modeling POSIX shared memory: the
// physical pages are shared but dst gets its *own* PTEs, so dst pays its
// own minor faults (charged immediately here, per the shared-memory
// behaviour the paper contrasts with address-space sharing). The source
// range must be fully populated.
func (as *AddressSpace) ShareMapping(dst *AddressSpace, start, size, dstStart uint64, prot Prot, c Charger) error {
	size = PageCeil(size)
	if as.vmas.find(start) == nil {
		return ErrSegfault
	}
	if dst.vmas.overlaps(dstStart, dstStart+size) {
		return ErrOverlap
	}
	v := &VMA{Start: dstStart, End: dstStart + size, Prot: prot, Kind: VMAAnon, Label: "shm", Populated: true}
	dst.vmas.insert(v)
	for off := uint64(0); off < size; off += PageSize {
		pte := as.pt.Lookup(start + off)
		if pte == nil {
			return fmt.Errorf("%w: source page %s not populated", ErrSegfault, fmtAddr(start+off))
		}
		dst.phys.Get(pte.Frame)
		dst.pt.Map(dstStart+off, &PTE{Frame: pte.Frame, Prot: prot})
		dst.stats.MinorFaults++
		charge(c, dst.costs.MinorFault)
	}
	return nil
}
