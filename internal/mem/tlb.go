package mem

// TLB is a small fully-associative translation lookaside buffer with FIFO
// replacement, used for page-walk cost accounting. One TLB per address
// space is a simplification (real TLBs are per-core) but preserves the
// property the paper cares about: address-space sharing keeps one set of
// translations hot, while separate address spaces each warm their own.
type TLB struct {
	capacity int
	fifo     []uint64
	present  map[uint64]int // page -> index in fifo
	hits     uint64
	misses   uint64
}

// NewTLB creates a TLB holding up to capacity page translations.
func NewTLB(capacity int) *TLB {
	if capacity <= 0 {
		capacity = 1
	}
	return &TLB{capacity: capacity, present: make(map[uint64]int, capacity)}
}

// Hit reports whether the page translation is cached, updating stats.
func (t *TLB) Hit(page uint64) bool {
	if _, ok := t.present[page]; ok {
		t.hits++
		return true
	}
	t.misses++
	return false
}

// Insert caches a page translation, evicting the oldest entry when full.
func (t *TLB) Insert(page uint64) {
	if _, ok := t.present[page]; ok {
		return
	}
	if len(t.fifo) >= t.capacity {
		old := t.fifo[0]
		t.fifo = t.fifo[1:]
		delete(t.present, old)
	}
	t.present[page] = len(t.fifo)
	t.fifo = append(t.fifo, page)
}

// Invalidate drops a page translation (on unmap).
func (t *TLB) Invalidate(page uint64) {
	if _, ok := t.present[page]; !ok {
		return
	}
	delete(t.present, page)
	for i, p := range t.fifo {
		if p == page {
			t.fifo = append(t.fifo[:i], t.fifo[i+1:]...)
			break
		}
	}
}

// Flush drops all translations (on address-space switch — this is why
// process context switches cost more than thread switches).
func (t *TLB) Flush() {
	t.fifo = t.fifo[:0]
	t.present = make(map[uint64]int, t.capacity)
}

// Stats reports cumulative hits and misses.
func (t *TLB) Stats() (hits, misses uint64) { return t.hits, t.misses }
