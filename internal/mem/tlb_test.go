package mem

import (
	"testing"
	"testing/quick"
)

func TestTLBHitAfterInsert(t *testing.T) {
	tlb := NewTLB(4)
	if tlb.Hit(0x1000) {
		t.Error("hit in empty TLB")
	}
	tlb.Insert(0x1000)
	if !tlb.Hit(0x1000) {
		t.Error("miss after insert")
	}
	hits, misses := tlb.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = (%d,%d), want (1,1)", hits, misses)
	}
}

func TestTLBFIFOEviction(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Insert(0x1000)
	tlb.Insert(0x2000)
	tlb.Insert(0x3000) // evicts 0x1000
	if tlb.Hit(0x1000) {
		t.Error("oldest entry not evicted")
	}
	if !tlb.Hit(0x2000) || !tlb.Hit(0x3000) {
		t.Error("younger entries evicted")
	}
}

func TestTLBInvalidateAndFlush(t *testing.T) {
	tlb := NewTLB(4)
	tlb.Insert(0x1000)
	tlb.Insert(0x2000)
	tlb.Invalidate(0x1000)
	if tlb.Hit(0x1000) {
		t.Error("hit after invalidate")
	}
	tlb.Flush()
	if tlb.Hit(0x2000) {
		t.Error("hit after flush")
	}
}

func TestTLBNeverExceedsCapacity(t *testing.T) {
	f := func(pages []uint16, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		tlb := NewTLB(capacity)
		for _, p := range pages {
			tlb.Insert(uint64(p) << PageShift)
			if len(tlb.fifo) > capacity || len(tlb.present) > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTLBDuplicateInsertNoGrowth(t *testing.T) {
	tlb := NewTLB(4)
	tlb.Insert(0x1000)
	tlb.Insert(0x1000)
	if len(tlb.fifo) != 1 {
		t.Errorf("fifo len = %d after duplicate insert, want 1", len(tlb.fifo))
	}
}

func TestVMAKindAndProtStrings(t *testing.T) {
	if (ProtRead | ProtWrite).String() != "rw-" {
		t.Errorf("Prot string = %q", (ProtRead | ProtWrite).String())
	}
	if VMAText.String() != "text" || VMAFile.String() != "file" {
		t.Error("VMAKind strings wrong")
	}
	v := &VMA{Start: 0x1000, End: 0x3000}
	if v.Len() != 0x2000 || !v.Contains(0x1000) || v.Contains(0x3000) {
		t.Error("VMA geometry wrong")
	}
}

func TestGapBelowFindsSpace(t *testing.T) {
	var s vmaSet
	s.insert(&VMA{Start: MmapBase - 2*PageSize, End: MmapBase})
	got := s.gapBelow(MmapBase, PageSize)
	if got == 0 || got+PageSize > MmapBase-2*PageSize {
		t.Errorf("gapBelow returned %x inside occupied range", got)
	}
}
