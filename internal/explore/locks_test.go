package explore

import (
	"testing"

	"repro/internal/arch"
	usync "repro/internal/sync"
)

// TestLockScenariosDFS runs bounded exhaustive DFS over every lock
// algorithm's scenario: mutual exclusion, the fairness discipline and
// futex conservation must hold on every enumerated schedule.
func TestLockScenariosDFS(t *testing.T) {
	depth := 4
	if testing.Short() {
		depth = 3
	}
	for _, algo := range usync.Names() {
		t.Run(algo, func(t *testing.T) {
			s := LockScenario(arch.Wallaby, algo)
			res := Explore(s, Config{Policy: DFS, Depth: depth})
			if res.Failure != nil {
				t.Fatalf("oracle violation on schedule %v: %s", res.Failure.Trace, res.Failure.Err)
			}
			if !res.Complete {
				t.Errorf("bounded DFS did not exhaust the space")
			}
			if res.MaxWidth < 2 {
				t.Errorf("max branching factor %d — the scenario exposes no decision points", res.MaxWidth)
			}
		})
	}
}

// TestLockScenariosRandomWalks drives seeded random walks deeper into
// each lock scenario's schedule space than the DFS prefix cap reaches.
func TestLockScenariosRandomWalks(t *testing.T) {
	runs := 6
	if testing.Short() {
		runs = 2
	}
	for _, algo := range usync.Names() {
		t.Run(algo, func(t *testing.T) {
			s := LockScenario(arch.Wallaby, algo)
			res := Explore(s, Config{Policy: RandomWalk, Runs: runs, Seed: 0x10c5})
			if res.Failure != nil {
				t.Fatalf("oracle violation (seed %d, run %d): %s\ntrace: %s",
					res.Failure.Seed, res.Failure.Run, res.Failure.Err, TraceString(res.Failure.Trace))
			}
			if res.Decisions == 0 {
				t.Errorf("no decision points across all walks")
			}
		})
	}
}

// TestByNameResolvesLockScenarios pins the registry: every lock-<algo>
// name resolves and an unknown algorithm is rejected.
func TestByNameResolvesLockScenarios(t *testing.T) {
	for _, algo := range usync.Names() {
		s, err := ByName("lock-"+algo, arch.Wallaby, 0)
		if err != nil {
			t.Fatalf("ByName(lock-%s): %v", algo, err)
		}
		if s.Name != "lock-"+algo {
			t.Fatalf("ByName(lock-%s) = %q", algo, s.Name)
		}
	}
	if _, err := ByName("lock-peterson", arch.Wallaby, 0); err == nil {
		t.Fatalf("ByName(lock-peterson) resolved, want error")
	}
}
