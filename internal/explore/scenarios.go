package explore

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/blt"
	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/loader"
	"repro/internal/probe"
	"repro/internal/schedpolicy"
	"repro/internal/sim"
	"repro/internal/supervise"
	"repro/internal/timeline"
)

// ProbeSpecs, when non-empty (ulpsim -explore -probe), attaches the
// stock probes to every scenario kernel the explorer builds. Probes run
// under controlled scheduling like everything else: observe-only probes
// must leave the decision digest of every schedule untouched (pinned by
// TestProbesDoNotPerturbExploration), and a perturbing probe (throttle)
// shifts schedules deterministically, so replay commands stay exact.
var ProbeSpecs []probe.Spec

// PolicySpec, when non-empty (ulpsim -explore -sched-policy), installs
// the named scheduler policy on every scenario kernel — a *fresh*
// instance per run, since policies carry per-run state. Every policy
// thereby inherits the scenarios' invariant oracles (futex and timeline
// conservation, syscall consistency, deadlock detection) over every
// explored schedule. The FIFO policy must additionally leave every
// decision trace byte-identical to a policy-less run. The spec must
// parse (the CLI validates before exploring); a bad spec panics here.
var PolicySpec string

// newKernel is kernel.New plus the exploration-wide probe attachments
// and the kernel half of the scheduler policy. Every scenario builds
// its kernel through here so -probe and -sched-policy cover the whole
// stock suite; BLT scenarios pull the ULT half back off the kernel for
// their core.Config.
func newKernel(e *sim.Engine, m *arch.Machine) *kernel.Kernel {
	k := kernel.New(e, m)
	probe.AttachSpecs(k.Probes(), ProbeSpecs)
	if PolicySpec != "" {
		pol, err := schedpolicy.New(PolicySpec)
		if err != nil {
			panic(err)
		}
		k.SetSchedPolicy(pol)
	}
	return k
}

// ultPolicy recovers the ULT half of the kernel's installed policy, if
// it has one (schedpolicy objects implement both halves).
func ultPolicy(k *kernel.Kernel) blt.ULTPolicy {
	if pol, ok := k.SchedPolicy().(blt.ULTPolicy); ok {
		return pol
	}
	return nil
}

// horizon bounds each explored run in virtual time: an adversarial
// schedule that livelocks the protocol (busy-waiting schedulers keep
// virtual time advancing forever) must surface as a failing run, not a
// hung explorer. Fault-free runs of every scenario finish in well under
// a virtual second.
const horizon = sim.Time(0) + sim.Time(sim.Second)

// drain runs the engine to quiescence under the horizon, converting
// livelock (events still pending at the horizon) and deadlock (procs
// parked with nothing scheduled) into oracle failures.
func drain(e *sim.Engine, what string) error {
	if err := e.RunUntil(horizon); err != nil {
		return err // trapped proc panic
	}
	if n := e.PendingEvents(); n > 0 {
		return fmt.Errorf("%s: livelock: %d events still pending at virtual horizon %v", what, n, horizon)
	}
	if n := e.LiveProcs(); n > 0 {
		return fmt.Errorf("%s: deadlock: %d procs parked with no pending events", what, n)
	}
	return nil
}

// ScenarioNames lists the scenarios ByName accepts.
func ScenarioNames() []string {
	return append([]string{"pingpong", "blt-nn", "blt-mn", "deadlock"}, lockScenarioNames()...)
}

// ByName builds the named exploration scenario. mk constructs a fresh
// machine per run (scenarios must share no state between runs); idle
// applies to the BLT scenarios only.
func ByName(name string, mk func() *arch.Machine, idle blt.IdlePolicy) (Scenario, error) {
	switch name {
	case "pingpong":
		return PingPong(mk, 4), nil
	case "blt-nn":
		return BLT(mk, idle, false), nil
	case "blt-mn":
		return BLT(mk, idle, true), nil
	case "deadlock":
		return DeadlockScenario(mk), nil
	}
	if s, ok := lockByName(name, mk); ok {
		return s, nil
	}
	return Scenario{}, fmt.Errorf("explore: unknown scenario %q (want one of %v)", name, ScenarioNames())
}

// PingPong is the futex stress scenario: two threads hand a baton back
// and forth through a pair of semaphores for the given number of
// rounds, while a third thread sleeps in a timed futex wait on a word
// nobody ever posts (it must time out — never hang, never wake
// normally). Oracles: exact handoff count, the timed waiter's
// ErrTimedOut, futex conservation, timeline conservation.
func PingPong(mk func() *arch.Machine, rounds int) Scenario {
	return Scenario{
		Name: "pingpong",
		Run: func(ch sim.Chooser) error {
			e := sim.New()
			e.SetChooser(ch)
			e.SetTrapPanics(true)
			defer e.Shutdown()
			k := newKernel(e, mk())
			tl := timeline.New()
			k.SetTimeline(tl)
			handoffs := 0
			var timedErr error
			root := k.NewTask("pingpong-root", k.NewAddressSpace(), func(t *kernel.Task) int {
				semA, err := t.NewSemaphore(1)
				if err != nil {
					return 1
				}
				semB, err := t.NewSemaphore(0)
				if err != nil {
					return 1
				}
				dead, err := t.NewSemaphore(0)
				if err != nil {
					return 1
				}
				relay := func(in, out *kernel.Semaphore) func(*kernel.Task) int {
					return func(t *kernel.Task) int {
						for i := 0; i < rounds; i++ {
							if err := in.Wait(t); err != nil {
								return 1
							}
							t.Compute(2 * sim.Microsecond)
							handoffs++
							if err := out.Post(t); err != nil {
								return 1
							}
						}
						return 0
					}
				}
				ping := t.Clone("ping", kernel.PThreadFlags, relay(semA, semB))
				pong := t.Clone("pong", kernel.PThreadFlags, relay(semB, semA))
				timed := t.Clone("timed", kernel.PThreadFlags, func(t *kernel.Task) int {
					timedErr = t.FutexWaitTimeout(dead.Addr(), 0, 150*sim.Microsecond)
					return 0
				})
				if t.Join(ping)+t.Join(pong)+t.Join(timed) != 0 {
					return 1
				}
				return 0
			})
			k.Start(root, 0)
			if err := drain(e, "pingpong"); err != nil {
				return err
			}
			if !root.Exited() || root.ExitCode() != 0 {
				return fmt.Errorf("pingpong: root exit %d (exited=%v)", root.ExitCode(), root.Exited())
			}
			if want := 2 * rounds; handoffs != want {
				return fmt.Errorf("pingpong: %d handoffs, want %d", handoffs, want)
			}
			if timedErr != kernel.ErrTimedOut {
				return fmt.Errorf("pingpong: timed waiter returned %v, want ErrTimedOut", timedErr)
			}
			if err := CheckFutexConservation(k); err != nil {
				return err
			}
			return CheckTimelineConservation(k, tl)
		},
	}
}

// DeadlockScenario hand-builds the classic ABBA futex deadlock and
// asserts the supervision plane's watchdog catches it: two threads each
// sleep on a futex word holding the *other* thread's PID (the
// FUTEX_LOCK_PI owner convention the wait-for graph understands), so
// the graph contains the two-task cycle A→B→A with the joining root
// hanging off it. The run is EXPECTED to park forever — the oracle is
// that the watchdog flagged the stalls and recorded exactly that cycle
// before the engine drained into deadlock.
func DeadlockScenario(mk func() *arch.Machine) Scenario {
	return Scenario{
		Name: "deadlock",
		Run: func(ch sim.Chooser) error {
			e := sim.New()
			e.SetChooser(ch)
			e.SetTrapPanics(true)
			defer e.Shutdown()
			k := newKernel(e, mk())
			sup := supervise.New(k, supervise.Config{
				Tick:         1 * sim.Millisecond,
				StallHorizon: 200 * sim.Microsecond,
			})
			sup.Install()
			var aPID, bPID int
			root := k.NewTask("dl-root", k.NewAddressSpace(), func(t *kernel.Task) int {
				wordA, err := t.Mmap(8, true)
				if err != nil {
					return 1
				}
				wordB, err := t.Mmap(8, true)
				if err != nil {
					return 1
				}
				start, err := t.Mmap(8, true)
				if err != nil {
					return 1
				}
				locker := func(word uint64) func(*kernel.Task) int {
					return func(t *kernel.Task) int {
						// Gate until the owner PIDs are published; the
						// post-write start=1 makes a late arrival fall
						// through with ErrFutexAgain instead of missing
						// the wake.
						switch t.FutexWait(start, 0) {
						case nil, kernel.ErrFutexAgain, kernel.ErrInterrupted:
						default:
							return 1
						}
						v, err := t.Space().ReadU64(word, nil)
						if err != nil {
							return 1
						}
						for {
							// The word holds the owner's PID; the owner
							// never unlocks.
							switch t.FutexWait(word, v) {
							case nil, kernel.ErrFutexAgain, kernel.ErrInterrupted:
							default:
								return 1
							}
						}
					}
				}
				a := t.Clone("dl-a", kernel.PThreadFlags, locker(wordB))
				b := t.Clone("dl-b", kernel.PThreadFlags, locker(wordA))
				aPID, bPID = a.PID(), b.PID()
				t.Space().WriteU64(wordA, uint64(aPID), nil)
				t.Space().WriteU64(wordB, uint64(bPID), nil)
				t.Nanosleep(10 * sim.Microsecond) // let both park on the gate
				t.Space().WriteU64(start, 1, nil)
				t.FutexWake(start, 2) // release them in lockstep
				t.Join(a)
				t.Join(b)
				return 0
			})
			k.Start(root, 0)
			if err := drain(e, "deadlock"); err == nil {
				return fmt.Errorf("deadlock: run drained cleanly; the ABBA cycle never formed")
			}
			if sup.StallCount() == 0 {
				return fmt.Errorf("deadlock: tasks parked past the horizon but the watchdog flagged no stalls")
			}
			return CheckDeadlockDetected(sup, aPID, bPID)
		},
	}
}

// bltULPs is the rank count of the BLT scenarios.
const bltULPs = 4

// BLT is the Table I scenario: a booted ULP-PiP runtime (audit in
// collect mode) running bltULPs ranks through a fixed per-rank op mix —
// compute, user-level yields, couple/decouple churn with coupled-getpid
// probes at both sync points, and consistent open-write-close brackets.
// mn deploys the §VII M:N extension: the upper ranks share the lower
// ranks' original KCs and idle schedulers steal work. Oracles: per-rank
// exit statuses (a wrong status means a lost, double-run or corrupted
// UC), zero audited-syscall violations, zero coupled-getpid
// inconsistencies, no orphans, futex + timeline conservation.
func BLT(mk func() *arch.Machine, idle blt.IdlePolicy, mn bool) Scenario {
	name := "blt-nn"
	if mn {
		name = "blt-mn"
	}
	return Scenario{
		Name: name,
		Run: func(ch sim.Chooser) error {
			e := sim.New()
			e.SetChooser(ch)
			e.SetTrapPanics(true)
			defer e.Shutdown()
			k := newKernel(e, mk())
			tl := timeline.New()
			k.SetTimeline(tl)
			// Ranks hold at a start gate until every Spawn has returned:
			// the M:N sharers adopt the lower ranks' original KCs, and a
			// primary that exits before its sharer is adopted makes Spawn
			// fail with ErrHostDead (by design — the host-death check the
			// coupling TOCTOU fix added).
			released := false
			img := &loader.Image{
				Name: "xplr", PIE: true, TextSize: 4096,
				Symbols: []loader.Symbol{
					{Name: "data", Size: 64},
					{Name: "errno", Size: 8, TLS: true},
				},
				Main: func(envI interface{}) int {
					env := envI.(*core.Env)
					env.Decouple()
					for !released {
						env.Yield()
					}
					return exploreMain(env)
				},
			}
			var statuses []int
			var waitErr error
			violations, orphans := 0, 0
			_, bootErr := core.Boot(k, core.Config{
				ProgCores:    []int{0, 1},
				SyscallCores: []int{2, 3},
				Idle:         idle,
				Audit:        true,
				WorkStealing: mn,
				SchedPolicy:  ultPolicy(k),
			}, func(rt *core.Runtime) int {
				// Shutdown unconditionally: an early return that leaves the
				// pool running strands busy-wait schedulers in a livelock.
				defer rt.Shutdown()
				ulps := make([]*core.ULP, 0, bltULPs)
				for i := 0; i < bltULPs; i++ {
					opts := core.SpawnOpts{Name: fmt.Sprintf("xplr.%d", i), Scheduler: -1}
					if mn && i >= bltULPs/2 {
						opts.ShareKCWith = ulps[i-bltULPs/2]
					}
					u, err := rt.Spawn(img, opts)
					if err != nil {
						waitErr = err
						return 1
					}
					ulps = append(ulps, u)
				}
				released = true
				statuses, waitErr = rt.WaitAll()
				violations = len(rt.Violations())
				for _, u := range ulps {
					if u.Orphaned() {
						orphans++
					}
				}
				return 0
			})
			if bootErr != nil {
				return bootErr
			}
			if err := drain(e, name); err != nil {
				return err
			}
			if waitErr != nil {
				return fmt.Errorf("%s: WaitAll: %v", name, waitErr)
			}
			if len(statuses) != bltULPs {
				return fmt.Errorf("%s: lost BLTs: %d statuses for %d ULPs", name, len(statuses), bltULPs)
			}
			for i, s := range statuses {
				if s != 40+i {
					return fmt.Errorf("%s: rank %d exit status %d, want %d (lost/double-run/inconsistent UC)", name, i, s, 40+i)
				}
			}
			if violations != 0 {
				return fmt.Errorf("%s: %d system-call consistency violations", name, violations)
			}
			if orphans != 0 {
				return fmt.Errorf("%s: %d orphaned ULPs without fault injection", name, orphans)
			}
			if err := CheckFutexConservation(k); err != nil {
				return err
			}
			return CheckTimelineConservation(k, tl)
		},
	}
}

// exploreMain is the per-rank program of the BLT scenarios. The op mix
// is a pure function of the rank (no RNG: the schedule explorer is the
// only source of variation). The coupled-getpid probes assert the
// paper's consistency property at both Table I sync points: right
// after couple() returns (sync point 1) and immediately after
// decouple() hands the UC back to the scheduler (sync point 2), a
// consistent getpid must still observe the owner KC's PID.
func exploreMain(env *core.Env) int {
	rank := env.U.Rank
	kcPID := env.U.KC().TGID()
	buf := []byte("explore-op-payload")
	for i := 0; i < 6; i++ {
		switch (rank + i) % 4 {
		case 0:
			env.Compute(sim.Duration(1+rank) * sim.Microsecond)
		case 1:
			env.Yield()
		case 2:
			if err := env.Couple(); err != nil {
				return 80 + rank
			}
			if pid := env.Getpid(); pid != kcPID {
				return 90 + rank
			}
			env.Decouple()
			if pid := env.Getpid(); pid != kcPID {
				return 95 + rank
			}
		case 3:
			fd, err := env.Open(fmt.Sprintf("/xplr.%d", rank), fs.OCreate|fs.OWrOnly)
			if err == nil {
				env.Write(fd, buf)
				env.Close(fd)
			}
		}
	}
	return 40 + rank
}
