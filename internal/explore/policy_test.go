package explore

// Explorer coverage for the pluggable scheduler plane: every stock
// policy must (a) leave the invariant oracles intact on every stock
// scenario — the whole point of routing policies through the explorer —
// and (b) produce a deterministic decision trace. The fifo policy
// additionally must leave the decision trace byte-identical to the
// policy-off run on both machines under both idle policies, pinning the
// tentpole's "policy-off path unchanged" contract at the schedule level.

import (
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/blt"
)

// TestPoliciesPassOraclesOnStockScenarios replays the default schedule
// and a seeded random exploration of every scenario under every stock
// policy: the verdict (oracle pass/fail) must match the bare run's, and
// repeated replays must produce identical decision traces.
func TestPoliciesPassOraclesOnStockScenarios(t *testing.T) {
	defer func() { PolicySpec = "" }()
	specs := []string{"fifo", "locality", "cosched", "tenant", "tenant:weights=kc.u0.0:3"}
	for _, name := range ScenarioNames() {
		s, err := ByName(name, arch.Wallaby, blt.BusyWait)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		PolicySpec = ""
		_, bareErr := Replay(s, nil)
		bareRes := Explore(s, Config{Policy: RandomWalk, Runs: 4, Seed: 0xd16e57})
		for _, spec := range specs {
			PolicySpec = spec
			ds1, err1 := Replay(s, nil)
			ds2, err2 := Replay(s, nil)
			if (err1 == nil) != (bareErr == nil) {
				t.Errorf("%s under %s: verdict changed: bare %v, policy %v", name, spec, bareErr, err1)
			}
			if (err1 == nil) != (err2 == nil) || !reflect.DeepEqual(ds1, ds2) {
				t.Errorf("%s under %s: repeated replays diverge:\n  %v (%v)\n  %v (%v)",
					name, spec, ds1, err1, ds2, err2)
			}
			if len(ds1) == 0 {
				t.Errorf("%s under %s: no decision points recorded", name, spec)
			}
			res := Explore(s, Config{Policy: RandomWalk, Runs: 4, Seed: 0xd16e57})
			if (res.Failure == nil) != (bareRes.Failure == nil) {
				t.Errorf("%s under %s: exploration verdict changed: bare failure=%v, policy failure=%v",
					name, spec, bareRes.Failure, res.Failure)
			}
		}
	}
}

// TestFIFOPolicyTraceByteIdentical pins the identity contract at its
// strongest observation point: the explorer's decision trace — every
// same-instant tie the engine ever resolved — must be byte-identical
// with the fifo policy installed, over both machines and both idle
// policies.
func TestFIFOPolicyTraceByteIdentical(t *testing.T) {
	defer func() { PolicySpec = "" }()
	for _, mk := range []func() *arch.Machine{arch.Wallaby, arch.Albireo} {
		for _, idle := range []blt.IdlePolicy{blt.BusyWait, blt.Blocking} {
			for _, name := range ScenarioNames() {
				s, err := ByName(name, mk, idle)
				if err != nil {
					t.Fatalf("ByName(%q): %v", name, err)
				}
				PolicySpec = ""
				bare, bareErr := Replay(s, nil)
				PolicySpec = "fifo"
				fifo, fifoErr := Replay(s, nil)
				PolicySpec = ""
				if (bareErr == nil) != (fifoErr == nil) ||
					(bareErr != nil && bareErr.Error() != fifoErr.Error()) {
					t.Errorf("%s/%s/%s: fifo changed the verdict: bare %v, fifo %v",
						mk().Name, idle, name, bareErr, fifoErr)
				}
				if !reflect.DeepEqual(bare, fifo) {
					t.Errorf("%s/%s/%s: fifo perturbed the decision trace:\n  bare: %v\n  fifo: %v",
						mk().Name, idle, name, bare, fifo)
				}
			}
		}
	}
}
