package explore

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/supervise"
	"repro/internal/timeline"
)

// CheckFutexClaims checks the unconditional futex conservation law:
// every wake slot FutexWake claims was either delivered to a waiter or
// eaten by the lost-wake fault site. Valid mid-run and under task
// kills.
func CheckFutexClaims(k *kernel.Kernel) error {
	st := k.FutexStats()
	if st.Claimed != st.Delivered+st.Lost {
		return fmt.Errorf("futex claims not conserved: claimed=%d != delivered=%d + lost=%d",
			st.Claimed, st.Delivered, st.Lost)
	}
	return nil
}

// CheckFutexConservation checks the full futex ledger at clean
// quiescence (engine drained, no tasks killed mid-sleep): claims
// conserved, every sleep accounted for by exactly one wake cause, every
// delivered wake actually resumed its waiter, and no waiter left
// behind on any futex word.
func CheckFutexConservation(k *kernel.Kernel) error {
	if err := CheckFutexClaims(k); err != nil {
		return err
	}
	st := k.FutexStats()
	if st.Blocked != st.Resumed+st.Timeouts+st.Interrupted {
		return fmt.Errorf("futex sleeps not conserved: blocked=%d != resumed=%d + timeouts=%d + interrupted=%d",
			st.Blocked, st.Resumed, st.Timeouts, st.Interrupted)
	}
	if st.Delivered != st.Resumed {
		return fmt.Errorf("futex wakes leaked: delivered=%d != resumed=%d", st.Delivered, st.Resumed)
	}
	if n := k.ResidualFutexWaiters(); n != 0 {
		return fmt.Errorf("futex waiters left asleep at quiescence: %d", n)
	}
	if n := k.FutexTableSize(); n != 0 {
		return fmt.Errorf("futex table retains %d drained queues at quiescence", n)
	}
	return nil
}

// CheckDeadlockDetected asserts the supervision plane's watchdog
// recorded a wait-for cycle over exactly the given PIDs (in any cycle
// rotation). The chaos fuzzer and the deadlock scenario consume it: a
// run that parks forever without the watchdog naming the cycle is a
// detection failure, not just a hang.
func CheckDeadlockDetected(p *supervise.Plane, pids ...int) error {
	want := make(map[int]bool, len(pids))
	for _, pid := range pids {
		want[pid] = true
	}
	for _, d := range p.Deadlocks() {
		if len(d.PIDs) != len(pids) {
			continue
		}
		match := true
		for _, pid := range d.PIDs {
			if !want[pid] {
				match = false
				break
			}
		}
		if match {
			return nil
		}
	}
	return fmt.Errorf("supervise: watchdog recorded no wait-for cycle over PIDs %v (deadlocks: %v)",
		pids, p.Deadlocks())
}

// CheckTimelineConservation checks that the scheduling timeline and the
// kernel's per-core busy accounting agree exactly: the sum of recorded
// span durations on each core equals that core's cumulative busy time.
// The recorder must have been installed before the first dispatch.
func CheckTimelineConservation(k *kernel.Kernel, rec *timeline.Recorder) error {
	perCore := make(map[int]int64)
	for _, sp := range rec.Spans() {
		perCore[sp.Core] += int64(sp.Dur())
	}
	for i := 0; i < k.Cores(); i++ {
		if got, want := perCore[i], int64(k.Core(i).Busy()); got != want {
			return fmt.Errorf("timeline busy mismatch on core %d: spans sum %d ps, core busy %d ps", i, got, want)
		}
	}
	return nil
}
